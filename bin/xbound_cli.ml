(* xbound — determine application-specific peak power and energy
   requirements for the bundled ULP processor.

   Subcommands: list, netlist, analyze, analyze-file, profile, coi,
   explain, optimize, disasm, trace, wcec, stressmark, cache, serve,
   export-*.

   The request-oriented subcommands (list, analyze, explain, trace,
   optimize, cache stats) are thin builders of [Wire.Request.t]
   values: each builds a request, dispatches it — in-process through
   [Serve.Exec], or to a running [xbound serve] daemon with
   [--connect ADDR] — and prints the decoded response through
   [Serve.Render]. Output is byte-identical on both paths.

   All heavy subcommands share one set of knobs, defined once in
   [Cliterm]: -j/--jobs, --cache-dir, --no-cache, --trace, --stats
   (plus --seed where concrete inputs are generated). User-facing
   failures are typed [Xbound.Error.t] values rendered as one-line
   diagnostics with a nonzero exit code. Telemetry output (the Chrome
   trace file, the --stats summary) never touches stdout, so reported
   bounds are byte-identical with tracing on or off. *)

open Cmdliner

(* The one --seed flag, shared by every subcommand that generates
   concrete input sets. *)
let seed_term =
  let doc = "Input-set seed for concrete input generation." in
  Arg.(value & opt int 8 & info [ "seed" ] ~docv:"SEED" ~doc)

(* The benchmark name, as a positional argument or --bench NAME —
   the two spellings are equivalent. *)
let bench_term =
  let pos =
    let doc = "Benchmark name (try: xbound list)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let named =
    let doc = "Benchmark name (equivalent to the positional argument)." in
    Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"BENCH" ~doc)
  in
  let pick named pos =
    match (named, pos) with
    | Some n, _ -> Ok n
    | None, Some p -> Ok p
    | None, None ->
      Error (`Msg "required benchmark name: a BENCH argument or --bench")
  in
  Term.term_result ~usage:true Term.(const pick $ named $ pos)

(* Render a typed error as a clean diagnostic and a nonzero exit. *)
let handle = function
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "xbound: %s\n" (Xbound.Error.to_string e);
    exit 1

let ( let* ) = Result.bind

let report_ctx c = Report.Context.create ?cache:(Cliterm.cache c) ()

(* ---------------- request dispatch ---------------- *)

(* The one --connect flag: dispatch the request to a daemon instead of
   executing in-process. *)
let connect_term =
  let doc =
    "Send the request to a running $(b,xbound serve) daemon at $(docv) \
     (a unix socket path, or HOST:PORT for --tcp daemons) instead of \
     executing in-process. Output is byte-identical either way."
  in
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR" ~doc)

let dispatch ~ctx connect req =
  match connect with
  | None -> Serve.Exec.exec ~ctx req
  | Some addr -> (
    match Serve.Client.connect (Serve.Addr.of_string addr) with
    | Error m -> Error (Xbound.Error.Protocol m)
    | Ok client ->
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () -> Serve.Client.rpc client req))

(* Build, dispatch, render: the whole life of a request-oriented
   subcommand. *)
let run_request ~ctx connect req =
  handle
    (let* resp = dispatch ~ctx connect req in
     Telemetry.span "render" @@ fun () ->
     print_string (Serve.Render.to_string resp);
     Ok ())

let find_bench name =
  match
    List.find_opt
      (fun b -> String.equal b.Benchprogs.Bench.name name)
      (Benchprogs.Bench.all @ Benchprogs.Extended.all)
  with
  | Some b -> Ok b
  | None ->
    Error
      (Xbound.Error.Unknown_benchmark
         { name; available = List.map fst (Xbound.benchmarks ()) })

(* ---------------- light subcommands ---------------- *)

let list_cmd =
  let run connect =
    run_request ~ctx:Xbound.Ctx.default connect Wire.Request.Bench_list
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled benchmark applications")
    Term.(const run $ connect_term)

let netlist_cmd =
  let run c =
    let ctx = report_ctx c in
    let stats = Netlist.Stats.compute ctx.Report.Context.cpu.Cpu.netlist in
    Format.printf "%a" Netlist.Stats.pp stats;
    Printf.printf "base power: %s mW (leakage + clock tree)\n"
      (Report.Render.mw (Poweran.base_power ctx.Report.Context.pa));
    Printf.printf "design-tool rated peak: %s mW\n"
      (Report.Render.mw (Report.Context.design_peak ctx))
  in
  Cmd.v
    (Cmd.info "netlist" ~doc:"Show the processor netlist statistics")
    Term.(const run $ Cliterm.term)

(* ---------------- analysis subcommands (via the Xbound facade) ------- *)

let analyze_cmd =
  let run c connect name =
    run_request ~ctx:(Cliterm.ctx c) connect
      (Wire.Request.Analyze { bench = name; tier = Cliterm.tier c })
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Peak power and energy bounds for a benchmark (exact symbolic \
          execution, or the static CFG/IPET tier with --tier)")
    Term.(const run $ Cliterm.term $ connect_term $ bench_term)

let analyze_file_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE.s" ~doc:"MSP430-subset assembly source file.")
  in
  let run c path =
    handle
      (let text = In_channel.with_open_text path In_channel.input_all in
       let* program = Xbound.of_source ~name:path text in
       let* a = Xbound.analyze ~ctx:(Cliterm.ctx c) program in
       Printf.printf "%s:\n" path;
       (match a.Xbound.tier with
       | Xbound.Tier.Static ->
         Printf.printf "static tier: CFG/IPET bound over <=%d cycles\n"
           a.Xbound.peak_energy_cycles
       | _ ->
         Printf.printf "symbolic execution: %d paths, %d forks, %d cycles\n"
           a.Xbound.paths a.Xbound.forks a.Xbound.total_cycles);
       Printf.printf "peak power bound:  %s mW\n"
         (Report.Render.mw (Xbound.peak_power_w a));
       Printf.printf "peak energy bound: %.3f nJ (%s pJ/cycle)\n"
         (Xbound.peak_energy_j a *. 1e9)
         (Report.Render.npe_pj a.Xbound.npe_j_per_cycle);
       Ok ())
  in
  Cmd.v
    (Cmd.info "analyze-file"
       ~doc:"Assemble an .s source file and bound its peak power/energy")
    Term.(const run $ Cliterm.term $ file_arg)

let coi_cmd =
  let run c name =
    handle
      (let* program = Xbound.bench name in
       let* a = Xbound.analyze ~ctx:(Cliterm.ctx c) program in
       List.iter
         (fun coi -> Format.printf "%a" Xbound.pp_coi coi)
         (Xbound.cois ~top:4 ~min_gap:4 a);
       Ok ())
  in
  Cmd.v
    (Cmd.info "coi" ~doc:"Report the cycles of interest (peak power spikes)")
    Term.(const run $ Cliterm.term $ bench_term)

let explain_cmd =
  let format_arg =
    let doc =
      "Report format: $(b,table) (human-readable), $(b,json) (everything, \
       including the per-cycle X-density series), or $(b,csv) (per-COI \
       module attribution rows)."
    in
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("json", `Json); ("csv", `Csv) ]) `Table
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let out_arg =
    let doc = "Write the report to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let top_arg =
    let doc = "Number of cycles of interest to attribute." in
    Arg.(value & opt int 4 & info [ "top" ] ~docv:"N" ~doc)
  in
  let min_gap_arg =
    let doc = "Minimum cycle distance between reported COIs." in
    Arg.(value & opt int 5 & info [ "min-gap" ] ~docv:"N" ~doc)
  in
  let run c connect name fmt out top min_gap =
    let fmt =
      match fmt with
      | `Table -> Wire.Request.Table
      | `Json -> Wire.Request.Json
      | `Csv -> Wire.Request.Csv
    in
    handle
      (let* resp =
         dispatch ~ctx:(Cliterm.ctx c) connect
           (Wire.Request.Explain
              { bench = name; fmt; top; min_gap; tier = Cliterm.tier c })
       in
       let text = Serve.Render.to_string resp in
       (match out with
       | None -> print_string text
       | Some file ->
         Out_channel.with_open_text file (fun oc -> output_string oc text);
         Printf.eprintf "wrote %s\n" file);
       Ok ())
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Bound provenance: per-COI module/gate-class power attribution and \
          execution-tree observability (X-density, fork/merge and seen-set \
          statistics)")
    Term.(
      const run $ Cliterm.term $ connect_term $ bench_term $ format_arg
      $ out_arg $ top_arg $ min_gap_arg)

let optimize_cmd =
  let run c connect name =
    run_request ~ctx:(Cliterm.ctx c) connect
      (Wire.Request.Optimize { bench = name })
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Apply the peak-power software optimizations to a benchmark")
    Term.(const run $ Cliterm.term $ connect_term $ bench_term)

let trace_cmd =
  let run c connect name seed =
    run_request ~ctx:(Cliterm.ctx c) connect
      (Wire.Request.Run_concrete { bench = name; seed })
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Concrete power trace of a benchmark run")
    Term.(const run $ Cliterm.term $ connect_term $ bench_term $ seed_term)

(* ---------------- report-layer subcommands ---------------- *)

let profile_cmd =
  let run c name =
    handle
      (let* b = find_bench name in
       let ctx = report_ctx c in
       let p = Report.Context.profile ctx b in
       Printf.printf "%s input-based profiling over %d input sets:\n" name
         (List.length p.Baselines.Profiling.peaks);
       Printf.printf "  peak power: %s .. %s mW  (guardbanded: %s mW)\n"
         (Report.Render.mw p.Baselines.Profiling.min_peak)
         (Report.Render.mw p.Baselines.Profiling.max_peak)
         (Report.Render.mw p.Baselines.Profiling.gb_peak);
       Printf.printf "  NPE: %s .. %s pJ/cycle (guardbanded: %s)\n"
         (Report.Render.npe_pj p.Baselines.Profiling.min_npe)
         (Report.Render.npe_pj p.Baselines.Profiling.max_npe)
         (Report.Render.npe_pj p.Baselines.Profiling.gb_npe);
       Ok ())
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Input-based profiling baseline for a benchmark")
    Term.(const run $ Cliterm.term $ bench_term)

let wcec_cmd =
  let run c name seed =
    handle
      (let* b = find_bench name in
       let ctx = report_ctx c in
       let img = Benchprogs.Bench.assemble b in
       let w =
         Baselines.Wcec.of_program ctx.Report.Context.pa img
           ~input_sets:
             [
               b.Benchprogs.Bench.gen_inputs ~seed:2;
               b.Benchprogs.Bench.gen_inputs ~seed;
             ]
       in
       let a = Report.Context.analysis ctx b in
       let x_npe = a.Core.Analyze.peak_energy.Core.Peak_energy.npe in
       Printf.printf
         "%s: instruction-level WCEC model %s pJ/cycle vs gate-level bound %s \
          pJ/cycle (%.1f%% tighter)\n"
         name
         (Report.Render.npe_pj w.Baselines.Wcec.npe)
         (Report.Render.npe_pj x_npe)
         (100. *. (1. -. (x_npe /. w.Baselines.Wcec.npe)));
       Ok ())
  in
  Cmd.v
    (Cmd.info "wcec"
       ~doc:"Compare the instruction-level WCEC model with the gate-level bound")
    Term.(const run $ Cliterm.term $ bench_term $ seed_term)

let stressmark_cmd =
  let run c =
    let ctx = report_ctx c in
    let s = Report.Context.stressmark_peak ctx in
    Printf.printf
      "GA stressmark (peak-power fitness): %s mW peak, %s mW average, %d \
       evaluations\n"
      (Report.Render.mw s.Baselines.Stressmark.peak_power)
      (Report.Render.mw s.Baselines.Stressmark.avg_power)
      s.Baselines.Stressmark.evaluations;
    print_endline "best genome as assembly:";
    List.iter
      (function
        | Isa.Asm.I i -> Printf.printf "  %s\n" (Isa.Insn.to_string i)
        | Isa.Asm.Label l -> Printf.printf "%s:\n" l
        | _ -> ())
      (Baselines.Stressmark.phenotype Baselines.Stressmark.default_config
         s.Baselines.Stressmark.best_genome)
  in
  Cmd.v
    (Cmd.info "stressmark"
       ~doc:"Run the genetic stressmark search and print the result")
    Term.(const run $ Cliterm.term)

(* ---------------- cache management ---------------- *)

let cache_stats_cmd =
  let run c connect =
    run_request ~ctx:(Cliterm.ctx c) connect Wire.Request.Cache_stats
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Show persistent cache location, entry count and size (the \
          daemon's cache with --connect)")
    Term.(const run $ Cliterm.term $ connect_term)

let cache_clear_cmd =
  let run c =
    match Cliterm.cache c with
    | None -> handle (Error (Xbound.Error.Cache "cache disabled (--no-cache)"))
    | Some cache ->
      let entries, _ = Cache.disk_stats cache in
      Cache.clear cache;
      Printf.printf "removed %d cache entr%s from %s\n" entries
        (if entries = 1 then "y" else "ies")
        (Option.value (Cache.dir cache) ~default:"(memory)")
  in
  Cmd.v
    (Cmd.info "clear" ~doc:"Delete every persistent cache entry")
    Term.(const run $ Cliterm.term)

let cache_migrate_cmd =
  let run c =
    match Cliterm.cache c with
    | None -> handle (Error (Xbound.Error.Cache "cache disabled (--no-cache)"))
    | Some cache ->
      let moved = Cache.migrate cache in
      Printf.printf "migrated %d entr%s into shard subdirectories\n" moved
        (if moved = 1 then "y" else "ies")
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:
         "Move flat legacy cache entries into the sharded on-disk layout \
          (entries are also adopted lazily on first access; this migrates \
          everything at once)")
    Term.(const run $ Cliterm.term)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect, migrate or clear the persistent analysis cache")
    [ cache_stats_cmd; cache_clear_cmd; cache_migrate_cmd ]

(* ---------------- the daemon ---------------- *)

let serve_cmd =
  let socket_arg =
    let doc =
      "Unix-domain socket path to listen on (default: xbound.sock in the \
       system temporary directory)."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp_arg =
    let doc = "Listen on TCP $(docv) instead of a unix socket." in
    Arg.(
      value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)
  in
  let workers_arg =
    let doc =
      "Executor threads: how many requests run concurrently (each still \
       parallelizes internally across the -j worker domains)."
    in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc =
      "Admission bound: requests beyond $(docv) queued are rejected with a \
       typed overloaded error instead of queuing without limit."
    in
    Arg.(value & opt int 64 & info [ "queue-capacity" ] ~docv:"N" ~doc)
  in
  let access_log_arg =
    let doc =
      "Append one JSONL entry per finished request (id, client, op, tier, \
       priority, queue wait, exec time, per-request counters, outcome) to \
       $(docv)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE" ~doc)
  in
  let slow_ms_arg =
    let doc =
      "Log requests slower than $(docv) milliseconds at warn level with \
       their per-phase timings (0 disables)."
    in
    Arg.(value & opt int 0 & info [ "slow-ms" ] ~docv:"MS" ~doc)
  in
  let trace_sample_arg =
    let doc =
      "Dump a Chrome trace of every $(docv)-th request into the trace \
       spool directory (0 disables)."
    in
    Arg.(value & opt int 0 & info [ "trace-sample" ] ~docv:"N" ~doc)
  in
  let trace_dir_arg =
    let doc = "Spool directory for sampled request traces." in
    Arg.(
      value
      & opt string "xbound-traces"
      & info [ "trace-dir" ] ~docv:"DIR" ~doc)
  in
  let run c socket tcp workers queue_capacity access_log slow_ms trace_sample
      trace_dir =
    let listen =
      match (tcp, socket) with
      | Some hp, _ -> (
        match Serve.Addr.of_string hp with
        | Serve.Addr.Tcp _ as a -> Ok a
        | Serve.Addr.Unix_sock _ ->
          Error (Printf.sprintf "--tcp expects HOST:PORT, got %s" hp))
      | None, Some path -> Ok (Serve.Addr.Unix_sock path)
      | None, None ->
        Ok
          (Serve.Addr.Unix_sock
             (Filename.concat (Filename.get_temp_dir_name ()) "xbound.sock"))
    in
    match listen with
    | Error m ->
      Printf.eprintf "xbound: %s\n" m;
      exit 1
    | Ok listen -> (
      let config =
        Serve.Server.config ~workers ~queue_capacity ?access_log ~slow_ms
          ~trace_sample ~trace_dir ~listen ~ctx:(Cliterm.ctx c) ()
      in
      match Serve.Server.start config with
      | Error m ->
        Printf.eprintf "xbound: %s\n" m;
        exit 1
      | Ok server ->
        Printf.eprintf "xbound serve: listening on %s (%d worker(s), queue %d)\n%!"
          (Serve.Addr.to_string listen) (max 1 workers) (max 1 queue_capacity);
        (* Run until SIGINT/SIGTERM, then stop gracefully — through a
           normal exit, so Cliterm's at_exit trace/stats export runs. *)
        let stop = Atomic.make false in
        let on_signal _ = Atomic.set stop true in
        List.iter
          (fun s ->
            try Sys.set_signal s (Sys.Signal_handle on_signal)
            with Invalid_argument _ | Sys_error _ -> ())
          [ Sys.sigint; Sys.sigterm ];
        while not (Atomic.get stop) do
          Unix.sleepf 0.2
        done;
        prerr_endline "xbound serve: shutting down";
        Serve.Server.stop server)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived analysis daemon: a socket server scheduling \
          requests across shared worker domains with one shared cache, so \
          repeated and concurrent analyses cost one execution")
    Term.(
      const run $ Cliterm.term $ socket_arg $ tcp_arg $ workers_arg
      $ queue_arg $ access_log_arg $ slow_ms_arg $ trace_sample_arg
      $ trace_dir_arg)

(* ---------------- observability subcommands ---------------- *)

let stats_fmt_term =
  let doc =
    "Exposition format: $(b,table) (human-readable), $(b,json) \
     (structured snapshot) or $(b,prometheus) (text exposition for \
     scrapers)."
  in
  let fmt_conv =
    Arg.conv ~docv:"FMT"
      ( (fun s ->
          match Wire.Request.stats_fmt_of_string s with
          | Some f -> Ok f
          | None ->
            Error (`Msg (Printf.sprintf "unknown stats format %S" s))),
        fun ppf f ->
          Format.pp_print_string ppf (Wire.Request.stats_fmt_to_string f) )
  in
  Arg.(
    value
    & opt fmt_conv Wire.Request.Stats_table
    & info [ "format" ] ~docv:"FMT" ~doc)

let stats_cmd =
  let run c connect fmt =
    run_request ~ctx:(Cliterm.ctx c) connect (Wire.Request.Stats { fmt })
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Point-in-time telemetry snapshot: counters, gauges and latency \
          histograms — of a running daemon with --connect, or of this \
          process otherwise (mostly useful with --connect)")
    Term.(const run $ Cliterm.term $ connect_term $ stats_fmt_term)

let health_cmd =
  let run connect =
    run_request ~ctx:Xbound.Ctx.default connect Wire.Request.Health
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Cheap daemon liveness check (served from the admin lane, so it \
          answers even when the work queue is full)")
    Term.(const run $ connect_term)

let top_cmd =
  let interval_arg =
    let doc = "Refresh interval in milliseconds." in
    Arg.(value & opt int 1000 & info [ "interval-ms" ] ~docv:"MS" ~doc)
  in
  let count_arg =
    let doc = "Stop after $(docv) frames (0 = run until interrupted)." in
    Arg.(value & opt int 0 & info [ "count" ] ~docv:"N" ~doc)
  in
  let run connect interval_ms count =
    match connect with
    | None ->
      Printf.eprintf "xbound: top requires --connect ADDR\n";
      exit 1
    | Some addr -> (
      match Serve.Client.connect (Serve.Addr.of_string addr) with
      | Error m ->
        Printf.eprintf "xbound: %s\n" m;
        exit 1
      | Ok client ->
        (* Ctrl-C must restore the terminal state cleanly: cmdliner
           installs nothing, so default SIGINT termination is fine —
           each frame is written whole, starting with a clear. *)
        let n = ref 0 in
        let on_frame resp =
          (match resp with
          | Wire.Response.Stats { snapshot; _ } ->
            incr n;
            (* First frame is the full snapshot since daemon start;
               later frames are per-interval diffs — rates only make
               sense for the latter, but the header works for both. *)
            print_string "\027[2J\027[H";
            print_string (Serve.Render.top snapshot);
            flush stdout
          | _ -> ());
          true
        in
        let r =
          Fun.protect
            ~finally:(fun () -> Serve.Client.close client)
            (fun () -> Serve.Client.watch client ~interval_ms ~count ~on_frame)
        in
        handle r)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live daemon view: poll a running daemon's Watch stream and \
          redraw requests/s, queue depth, inflight, cache hit ratio, tier \
          mix and per-phase latency percentiles every interval")
    Term.(const run $ connect_term $ interval_arg $ count_arg)

(* ---------------- export subcommands ---------------- *)

let disasm_cmd =
  let run name =
    handle
      (let* b = find_bench name in
       print_string (Isa.Listing.to_string (Benchprogs.Bench.assemble b));
       Ok ())
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassembly listing of a benchmark image")
    Term.(const run $ bench_term)

let export_verilog_cmd =
  let run () =
    let cpu = Cpu.build () in
    print_string (Verilog_export.file_text cpu.Cpu.netlist)
  in
  Cmd.v
    (Cmd.info "export-verilog"
       ~doc:"Dump the processor as flat gate-level Verilog")
    Term.(const run $ const ())

let export_liberty_cmd =
  let run () = print_string (Stdcell.liberty_text Stdcell.default) in
  Cmd.v
    (Cmd.info "export-liberty"
       ~doc:"Dump the synthetic standard-cell library in Liberty format")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "xbound" ~version:"1.2.0"
      ~doc:
        "Application-specific peak power and energy requirements for \
         ultra-low-power processors (ASPLOS'17 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; netlist_cmd; analyze_cmd; analyze_file_cmd; profile_cmd;
            coi_cmd; explain_cmd; optimize_cmd; disasm_cmd; trace_cmd;
            wcec_cmd; stressmark_cmd; cache_cmd; serve_cmd; stats_cmd;
            health_cmd; top_cmd; export_verilog_cmd; export_liberty_cmd;
          ]))
