(* xbound — determine application-specific peak power and energy
   requirements for the bundled ULP processor.

   Subcommands: list, netlist, analyze, analyze-file, profile, coi,
   explain, optimize, disasm, trace, wcec, stressmark, cache, export-*.

   All heavy subcommands share one set of knobs, defined once in
   [Cliterm]: -j/--jobs, --cache-dir, --no-cache, --trace, --stats
   (plus --seed where concrete inputs are generated). User-facing
   failures are typed [Xbound.Error.t] values rendered as one-line
   diagnostics with a nonzero exit code. Telemetry output (the Chrome
   trace file, the --stats summary) never touches stdout, so reported
   bounds are byte-identical with tracing on or off. *)

open Cmdliner

(* The one --seed flag, shared by every subcommand that generates
   concrete input sets. *)
let seed_term =
  let doc = "Input-set seed for concrete input generation." in
  Arg.(value & opt int 8 & info [ "seed" ] ~docv:"SEED" ~doc)

(* The benchmark name, as a positional argument or --bench NAME —
   the two spellings are equivalent. *)
let bench_term =
  let pos =
    let doc = "Benchmark name (try: xbound list)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)
  in
  let named =
    let doc = "Benchmark name (equivalent to the positional argument)." in
    Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"BENCH" ~doc)
  in
  let pick named pos =
    match (named, pos) with
    | Some n, _ -> Ok n
    | None, Some p -> Ok p
    | None, None ->
      Error (`Msg "required benchmark name: a BENCH argument or --bench")
  in
  Term.term_result ~usage:true Term.(const pick $ named $ pos)

(* Render a typed error as a clean diagnostic and a nonzero exit. *)
let handle = function
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "xbound: %s\n" (Xbound.Error.to_string e);
    exit 1

let ( let* ) = Result.bind

let report_ctx c = Report.Context.create ?cache:(Cliterm.cache c) ()

let find_bench name =
  match
    List.find_opt
      (fun b -> String.equal b.Benchprogs.Bench.name name)
      (Benchprogs.Bench.all @ Benchprogs.Extended.all)
  with
  | Some b -> Ok b
  | None ->
    Error
      (Xbound.Error.Unknown_benchmark
         { name; available = List.map fst (Xbound.benchmarks ()) })

(* ---------------- light subcommands ---------------- *)

let list_cmd =
  let run () =
    print_endline "paper suite (Table 4.1):";
    List.iter
      (fun b ->
        Printf.printf "  %-10s %s\n" b.Benchprogs.Bench.name
          b.Benchprogs.Bench.description)
      Benchprogs.Bench.all;
    print_endline "extended kernels:";
    List.iter
      (fun b ->
        Printf.printf "  %-10s %s\n" b.Benchprogs.Bench.name
          b.Benchprogs.Bench.description)
      Benchprogs.Extended.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled benchmark applications")
    Term.(const run $ const ())

let netlist_cmd =
  let run c =
    let ctx = report_ctx c in
    let stats = Netlist.Stats.compute ctx.Report.Context.cpu.Cpu.netlist in
    Format.printf "%a" Netlist.Stats.pp stats;
    Printf.printf "base power: %s mW (leakage + clock tree)\n"
      (Report.Render.mw (Poweran.base_power ctx.Report.Context.pa));
    Printf.printf "design-tool rated peak: %s mW\n"
      (Report.Render.mw (Report.Context.design_peak ctx))
  in
  Cmd.v
    (Cmd.info "netlist" ~doc:"Show the processor netlist statistics")
    Term.(const run $ Cliterm.term)

(* ---------------- analysis subcommands (via the Xbound facade) ------- *)

let analyze_cmd =
  let run c name =
    handle
      (let* program = Xbound.bench name in
       let* a = Xbound.analyze ~ctx:(Cliterm.ctx c) program in
       Telemetry.span "render" @@ fun () ->
       Printf.printf "%s:\n" name;
       Printf.printf
         "symbolic execution: %d paths, %d forks, %d dedup hits, %d cycles\n"
         a.Xbound.paths a.Xbound.forks a.Xbound.dedup_hits a.Xbound.total_cycles;
       Printf.printf
         "peak power bound:  %s mW (cycle %d of the flattened trace)\n"
         (Report.Render.mw a.Xbound.peak_power_w)
         a.Xbound.peak_index;
       Printf.printf "peak energy bound: %.3f nJ over %d cycles (%s pJ/cycle)\n"
         (a.Xbound.peak_energy_j *. 1e9)
         a.Xbound.peak_energy_cycles
         (Report.Render.npe_pj a.Xbound.npe_j_per_cycle);
       Printf.printf "trace: %s\n" (Report.Render.series a.Xbound.power_trace_w);
       (* Per-phase timings land on stderr with --stats, never stdout. *)
       if c.Cliterm.stats && a.Xbound.phase_timings <> [] then begin
         Printf.eprintf "phases (s):";
         List.iter
           (fun (p, s) -> Printf.eprintf " %s=%.4f" p s)
           a.Xbound.phase_timings;
         prerr_newline ()
       end;
       Ok ())
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"X-based peak power and energy bounds for a benchmark")
    Term.(const run $ Cliterm.term $ bench_term)

let analyze_file_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE.s" ~doc:"MSP430-subset assembly source file.")
  in
  let run c path =
    handle
      (let text = In_channel.with_open_text path In_channel.input_all in
       let* program = Xbound.of_source ~name:path text in
       let* a = Xbound.analyze ~ctx:(Cliterm.ctx c) program in
       Printf.printf "%s:\n" path;
       Printf.printf "symbolic execution: %d paths, %d forks, %d cycles\n"
         a.Xbound.paths a.Xbound.forks a.Xbound.total_cycles;
       Printf.printf "peak power bound:  %s mW\n"
         (Report.Render.mw a.Xbound.peak_power_w);
       Printf.printf "peak energy bound: %.3f nJ (%s pJ/cycle)\n"
         (a.Xbound.peak_energy_j *. 1e9)
         (Report.Render.npe_pj a.Xbound.npe_j_per_cycle);
       Ok ())
  in
  Cmd.v
    (Cmd.info "analyze-file"
       ~doc:"Assemble an .s source file and bound its peak power/energy")
    Term.(const run $ Cliterm.term $ file_arg)

let coi_cmd =
  let run c name =
    handle
      (let* program = Xbound.bench name in
       let* a = Xbound.analyze ~ctx:(Cliterm.ctx c) program in
       List.iter
         (fun coi -> Format.printf "%a" Xbound.pp_coi coi)
         (Xbound.cois ~top:4 ~min_gap:4 a);
       Ok ())
  in
  Cmd.v
    (Cmd.info "coi" ~doc:"Report the cycles of interest (peak power spikes)")
    Term.(const run $ Cliterm.term $ bench_term)

let explain_cmd =
  let format_arg =
    let doc =
      "Report format: $(b,table) (human-readable), $(b,json) (everything, \
       including the per-cycle X-density series), or $(b,csv) (per-COI \
       module attribution rows)."
    in
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("json", `Json); ("csv", `Csv) ]) `Table
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let out_arg =
    let doc = "Write the report to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let top_arg =
    let doc = "Number of cycles of interest to attribute." in
    Arg.(value & opt int 4 & info [ "top" ] ~docv:"N" ~doc)
  in
  let min_gap_arg =
    let doc = "Minimum cycle distance between reported COIs." in
    Arg.(value & opt int 5 & info [ "min-gap" ] ~docv:"N" ~doc)
  in
  let run c name fmt out top min_gap =
    handle
      (let* program = Xbound.bench name in
       let* a = Xbound.analyze ~ctx:(Cliterm.ctx c) program in
       let ex = Xbound.explain ~ctx:(Cliterm.ctx c) ~top ~min_gap a in
       let text =
         Telemetry.span "render" @@ fun () ->
         match fmt with
         | `Table -> Explain.Report.to_table ex
         | `Json -> Explain.Report.to_json_string ex ^ "\n"
         | `Csv -> Explain.Report.to_csv ex
       in
       (match out with
       | None -> print_string text
       | Some file ->
         Out_channel.with_open_text file (fun oc -> output_string oc text);
         Printf.eprintf "wrote %s\n" file);
       Ok ())
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Bound provenance: per-COI module/gate-class power attribution and \
          execution-tree observability (X-density, fork/merge and seen-set \
          statistics)")
    Term.(
      const run $ Cliterm.term $ bench_term $ format_arg $ out_arg $ top_arg
      $ min_gap_arg)

let optimize_cmd =
  let run c name =
    handle
      (let* o = Xbound.optimize ~ctx:(Cliterm.ctx c) name in
       Printf.printf "%s: applied %s\n" name
         (match o.Xbound.chosen with
         | [] -> "(no transform reduced the bound)"
         | opts -> String.concat ", " opts);
       Printf.printf "  peak power: %s -> %s mW (%.1f%% reduction)\n"
         (Report.Render.mw o.Xbound.base_peak_w)
         (Report.Render.mw o.Xbound.opt_peak_w)
         o.Xbound.peak_reduction_pct;
       Printf.printf "  dynamic range reduction: %.1f%%\n"
         o.Xbound.range_reduction_pct;
       Printf.printf "  performance cost: %.2f%%, energy cost: %.2f%%\n"
         o.Xbound.perf_degradation_pct o.Xbound.energy_overhead_pct;
       Ok ())
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Apply the peak-power software optimizations to a benchmark")
    Term.(const run $ Cliterm.term $ bench_term)

let trace_cmd =
  let run c name seed =
    handle
      (let* b = find_bench name in
       let* program = Xbound.bench name in
       let* t =
         Xbound.run_concrete ~ctx:(Cliterm.ctx c) program
           ~inputs:
             [
               (Benchprogs.Bench.input_base, b.Benchprogs.Bench.gen_inputs ~seed);
             ]
       in
       Printf.printf "%s seed %d: %d cycles, peak %s mW at cycle %d\n" name seed
         t.Xbound.cycles
         (Report.Render.mw t.Xbound.peak_w)
         t.Xbound.peak_cycle;
       print_endline (Report.Render.series t.Xbound.trace_w);
       Ok ())
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Concrete power trace of a benchmark run")
    Term.(const run $ Cliterm.term $ bench_term $ seed_term)

(* ---------------- report-layer subcommands ---------------- *)

let profile_cmd =
  let run c name =
    handle
      (let* b = find_bench name in
       let ctx = report_ctx c in
       let p = Report.Context.profile ctx b in
       Printf.printf "%s input-based profiling over %d input sets:\n" name
         (List.length p.Baselines.Profiling.peaks);
       Printf.printf "  peak power: %s .. %s mW  (guardbanded: %s mW)\n"
         (Report.Render.mw p.Baselines.Profiling.min_peak)
         (Report.Render.mw p.Baselines.Profiling.max_peak)
         (Report.Render.mw p.Baselines.Profiling.gb_peak);
       Printf.printf "  NPE: %s .. %s pJ/cycle (guardbanded: %s)\n"
         (Report.Render.npe_pj p.Baselines.Profiling.min_npe)
         (Report.Render.npe_pj p.Baselines.Profiling.max_npe)
         (Report.Render.npe_pj p.Baselines.Profiling.gb_npe);
       Ok ())
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Input-based profiling baseline for a benchmark")
    Term.(const run $ Cliterm.term $ bench_term)

let wcec_cmd =
  let run c name seed =
    handle
      (let* b = find_bench name in
       let ctx = report_ctx c in
       let img = Benchprogs.Bench.assemble b in
       let w =
         Baselines.Wcec.of_program ctx.Report.Context.pa img
           ~input_sets:
             [
               b.Benchprogs.Bench.gen_inputs ~seed:2;
               b.Benchprogs.Bench.gen_inputs ~seed;
             ]
       in
       let a = Report.Context.analysis ctx b in
       let x_npe = a.Core.Analyze.peak_energy.Core.Peak_energy.npe in
       Printf.printf
         "%s: instruction-level WCEC model %s pJ/cycle vs gate-level bound %s \
          pJ/cycle (%.1f%% tighter)\n"
         name
         (Report.Render.npe_pj w.Baselines.Wcec.npe)
         (Report.Render.npe_pj x_npe)
         (100. *. (1. -. (x_npe /. w.Baselines.Wcec.npe)));
       Ok ())
  in
  Cmd.v
    (Cmd.info "wcec"
       ~doc:"Compare the instruction-level WCEC model with the gate-level bound")
    Term.(const run $ Cliterm.term $ bench_term $ seed_term)

let stressmark_cmd =
  let run c =
    let ctx = report_ctx c in
    let s = Report.Context.stressmark_peak ctx in
    Printf.printf
      "GA stressmark (peak-power fitness): %s mW peak, %s mW average, %d \
       evaluations\n"
      (Report.Render.mw s.Baselines.Stressmark.peak_power)
      (Report.Render.mw s.Baselines.Stressmark.avg_power)
      s.Baselines.Stressmark.evaluations;
    print_endline "best genome as assembly:";
    List.iter
      (function
        | Isa.Asm.I i -> Printf.printf "  %s\n" (Isa.Insn.to_string i)
        | Isa.Asm.Label l -> Printf.printf "%s:\n" l
        | _ -> ())
      (Baselines.Stressmark.phenotype Baselines.Stressmark.default_config
         s.Baselines.Stressmark.best_genome)
  in
  Cmd.v
    (Cmd.info "stressmark"
       ~doc:"Run the genetic stressmark search and print the result")
    Term.(const run $ Cliterm.term)

(* ---------------- cache management ---------------- *)

let cache_stats_cmd =
  let run c =
    match Cliterm.cache c with
    | None -> handle (Error (Xbound.Error.Cache "cache disabled (--no-cache)"))
    | Some cache ->
      let dir = Option.value (Cache.dir cache) ~default:"(memory only)" in
      let entries, bytes = Cache.disk_stats cache in
      Printf.printf "cache directory: %s\n" dir;
      Printf.printf "entries: %d\n" entries;
      Printf.printf "size: %.1f KiB\n" (float_of_int bytes /. 1024.)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Show persistent cache location, entry count and size")
    Term.(const run $ Cliterm.term)

let cache_clear_cmd =
  let run c =
    match Cliterm.cache c with
    | None -> handle (Error (Xbound.Error.Cache "cache disabled (--no-cache)"))
    | Some cache ->
      let entries, _ = Cache.disk_stats cache in
      Cache.clear cache;
      Printf.printf "removed %d cache entr%s from %s\n" entries
        (if entries = 1 then "y" else "ies")
        (Option.value (Cache.dir cache) ~default:"(memory)")
  in
  Cmd.v
    (Cmd.info "clear" ~doc:"Delete every persistent cache entry")
    Term.(const run $ Cliterm.term)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect or clear the persistent analysis cache")
    [ cache_stats_cmd; cache_clear_cmd ]

(* ---------------- export subcommands ---------------- *)

let disasm_cmd =
  let run name =
    handle
      (let* b = find_bench name in
       print_string (Isa.Listing.to_string (Benchprogs.Bench.assemble b));
       Ok ())
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassembly listing of a benchmark image")
    Term.(const run $ bench_term)

let export_verilog_cmd =
  let run () =
    let cpu = Cpu.build () in
    print_string (Verilog_export.file_text cpu.Cpu.netlist)
  in
  Cmd.v
    (Cmd.info "export-verilog"
       ~doc:"Dump the processor as flat gate-level Verilog")
    Term.(const run $ const ())

let export_liberty_cmd =
  let run () = print_string (Stdcell.liberty_text Stdcell.default) in
  Cmd.v
    (Cmd.info "export-liberty"
       ~doc:"Dump the synthetic standard-cell library in Liberty format")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "xbound" ~version:"1.2.0"
      ~doc:
        "Application-specific peak power and energy requirements for \
         ultra-low-power processors (ASPLOS'17 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; netlist_cmd; analyze_cmd; analyze_file_cmd; profile_cmd;
            coi_cmd; explain_cmd; optimize_cmd; disasm_cmd; trace_cmd;
            wcec_cmd; stressmark_cmd; cache_cmd; export_verilog_cmd;
            export_liberty_cmd;
          ]))
