(* xbound — determine application-specific peak power and energy
   requirements for the bundled ULP processor.

   Subcommands: list, netlist, analyze, profile, coi, optimize. *)

open Cmdliner
module Parse = Isa.Parse

let ctx = lazy (Report.Context.create ())

(* paper suite plus the extended kernels *)
let all_benches = Benchprogs.Bench.all @ Benchprogs.Extended.all

let find_bench name =
  match
    List.find_opt (fun b -> String.equal b.Benchprogs.Bench.name name) all_benches
  with
  | Some b -> b
  | None ->
    Printf.eprintf "unknown benchmark %S (try: xbound list)\n" name;
    exit 1

let bench_arg =
  let names = List.map (fun b -> b.Benchprogs.Bench.name) all_benches in
  let doc =
    Printf.sprintf "Benchmark name (one of: %s)." (String.concat ", " names)
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

(* Evaluated before each command body: set the domain-pool size. Results
   are bit-identical at any job count, so this only affects wall-clock
   time. *)
let jobs_term =
  let doc =
    "Number of worker domains for parallel analysis (default: the \
     machine's recommended domain count; 1 = fully sequential)."
  in
  let arg = Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc) in
  Term.(const (function None -> () | Some j -> Parallel.set_default_jobs j) $ arg)

let list_cmd =
  let run () =
    print_endline "paper suite (Table 4.1):";
    List.iter
      (fun b ->
        Printf.printf "  %-10s %s\n" b.Benchprogs.Bench.name
          b.Benchprogs.Bench.description)
      Benchprogs.Bench.all;
    print_endline "extended kernels:";
    List.iter
      (fun b ->
        Printf.printf "  %-10s %s\n" b.Benchprogs.Bench.name
          b.Benchprogs.Bench.description)
      Benchprogs.Extended.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled benchmark applications")
    Term.(const run $ const ())

let netlist_cmd =
  let run () =
    let c = Lazy.force ctx in
    let stats = Netlist.Stats.compute c.Report.Context.cpu.Cpu.netlist in
    Format.printf "%a" Netlist.Stats.pp stats;
    Printf.printf "base power: %s mW (leakage + clock tree)\n"
      (Report.Render.mw (Poweran.base_power c.Report.Context.pa));
    Printf.printf "design-tool rated peak: %s mW\n"
      (Report.Render.mw (Report.Context.design_peak c))
  in
  Cmd.v
    (Cmd.info "netlist" ~doc:"Show the processor netlist statistics")
    Term.(const run $ const ())

let analyze_cmd =
  let run () name =
    let c = Lazy.force ctx in
    let b = find_bench name in
    let a = Report.Context.analysis c b in
    let st = a.Core.Analyze.sym_stats in
    Printf.printf "%s: %s\n" name b.Benchprogs.Bench.description;
    Printf.printf
      "symbolic execution: %d paths, %d forks, %d dedup hits, %d cycles\n"
      st.Gatesim.Sym.paths st.Gatesim.Sym.forks st.Gatesim.Sym.dedup_hits
      st.Gatesim.Sym.total_cycles;
    Printf.printf "peak power bound:  %s mW (cycle %d of the flattened trace)\n"
      (Report.Render.mw a.Core.Analyze.peak_power)
      a.Core.Analyze.peak_index;
    let pe = a.Core.Analyze.peak_energy in
    Printf.printf "peak energy bound: %.3f nJ over %d cycles (%s pJ/cycle)\n"
      (pe.Core.Peak_energy.energy *. 1e9)
      pe.Core.Peak_energy.cycles
      (Report.Render.npe_pj pe.Core.Peak_energy.npe);
    Printf.printf "trace: %s\n"
      (Report.Render.series a.Core.Analyze.power_trace)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"X-based peak power and energy bounds for a benchmark")
    Term.(const run $ jobs_term $ bench_arg)

let profile_cmd =
  let run () name =
    let c = Lazy.force ctx in
    let b = find_bench name in
    let p = Report.Context.profile c b in
    Printf.printf "%s input-based profiling over %d input sets:\n" name
      (List.length p.Baselines.Profiling.peaks);
    Printf.printf "  peak power: %s .. %s mW  (guardbanded: %s mW)\n"
      (Report.Render.mw p.Baselines.Profiling.min_peak)
      (Report.Render.mw p.Baselines.Profiling.max_peak)
      (Report.Render.mw p.Baselines.Profiling.gb_peak);
    Printf.printf "  NPE: %s .. %s pJ/cycle (guardbanded: %s)\n"
      (Report.Render.npe_pj p.Baselines.Profiling.min_npe)
      (Report.Render.npe_pj p.Baselines.Profiling.max_npe)
      (Report.Render.npe_pj p.Baselines.Profiling.gb_npe)
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Input-based profiling baseline for a benchmark")
    Term.(const run $ jobs_term $ bench_arg)

let coi_cmd =
  let run () name =
    let c = Lazy.force ctx in
    let b = find_bench name in
    let a = Report.Context.analysis c b in
    let cois = Core.Analyze.cois c.Report.Context.pa a ~top:4 ~min_gap:4 in
    List.iter (fun coi -> Format.printf "%a" Core.Coi.pp coi) cois
  in
  Cmd.v
    (Cmd.info "coi" ~doc:"Report the cycles of interest (peak power spikes)")
    Term.(const run $ jobs_term $ bench_arg)

let optimize_cmd =
  let run () name =
    let c = Lazy.force ctx in
    let b = find_bench name in
    let o = Report.Context.optimization c b in
    Printf.printf "%s: applied %s\n" name
      (match o.Report.Optrun.chosen with
      | [] -> "(no transform reduced the bound)"
      | opts -> String.concat ", " (List.map Core.Optimize.name opts));
    Printf.printf "  peak power: %s -> %s mW (%.1f%% reduction)\n"
      (Report.Render.mw o.Report.Optrun.base_peak)
      (Report.Render.mw o.Report.Optrun.opt_peak)
      (Report.Optrun.peak_reduction_pct o);
    Printf.printf "  dynamic range reduction: %.1f%%\n"
      (Report.Optrun.range_reduction_pct o);
    Printf.printf "  performance cost: %.2f%%, energy cost: %.2f%%\n"
      (Report.Optrun.perf_degradation_pct o)
      (Report.Optrun.energy_overhead_pct o)
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Apply the peak-power software optimizations to a benchmark")
    Term.(const run $ jobs_term $ bench_arg)

let analyze_file_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s"
           ~doc:"MSP430-subset assembly source file.")
  in
  let run () path =
    let text = In_channel.with_open_text path In_channel.input_all in
    let program =
      try Parse.program ~name:(Filename.basename path) text
      with Parse.Syntax_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" path line msg;
        exit 1
    in
    let img = Isa.Asm.assemble program in
    let c = Lazy.force ctx in
    let a = Core.Analyze.run c.Report.Context.pa c.Report.Context.cpu img in
    Printf.printf "%s:\n" path;
    Printf.printf
      "symbolic execution: %d paths, %d forks, %d cycles\n"
      a.Core.Analyze.sym_stats.Gatesim.Sym.paths
      a.Core.Analyze.sym_stats.Gatesim.Sym.forks
      a.Core.Analyze.sym_stats.Gatesim.Sym.total_cycles;
    Printf.printf "peak power bound:  %s mW\n"
      (Report.Render.mw a.Core.Analyze.peak_power);
    Printf.printf "peak energy bound: %.3f nJ (%s pJ/cycle)\n"
      (a.Core.Analyze.peak_energy.Core.Peak_energy.energy *. 1e9)
      (Report.Render.npe_pj a.Core.Analyze.peak_energy.Core.Peak_energy.npe)
  in
  Cmd.v
    (Cmd.info "analyze-file"
       ~doc:"Assemble an .s source file and bound its peak power/energy")
    Term.(const run $ jobs_term $ file_arg)

let disasm_cmd =
  let run name =
    let b = find_bench name in
    print_string (Isa.Listing.to_string (Benchprogs.Bench.assemble b))
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassembly listing of a benchmark image")
    Term.(const run $ bench_arg)

let export_verilog_cmd =
  let run () =
    let c = Lazy.force ctx in
    print_string (Verilog_export.file_text c.Report.Context.cpu.Cpu.netlist)
  in
  Cmd.v
    (Cmd.info "export-verilog"
       ~doc:"Dump the processor as flat gate-level Verilog")
    Term.(const run $ const ())

let export_liberty_cmd =
  let run () = print_string (Stdcell.liberty_text Stdcell.default) in
  Cmd.v
    (Cmd.info "export-liberty"
       ~doc:"Dump the synthetic standard-cell library in Liberty format")
    Term.(const run $ const ())

let trace_cmd =
  let seed_arg =
    Arg.(value & opt int 8 & info [ "seed" ] ~doc:"Input-set seed.")
  in
  let run () name seed =
    let c = Lazy.force ctx in
    let b = find_bench name in
    let img = Benchprogs.Bench.assemble b in
    let cycles, trace =
      Core.Analyze.run_concrete c.Report.Context.pa c.Report.Context.cpu img
        ~inputs:
          [ (Benchprogs.Bench.input_base, b.Benchprogs.Bench.gen_inputs ~seed) ]
    in
    let peak, at = Poweran.peak_of trace in
    Printf.printf "%s seed %d: %d cycles, peak %s mW at cycle %d\n" name seed
      (Array.length cycles) (Report.Render.mw peak) at;
    print_endline (Report.Render.series trace)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Concrete power trace of a benchmark run")
    Term.(const run $ jobs_term $ bench_arg $ seed_arg)

let wcec_cmd =
  let run () name =
    let c = Lazy.force ctx in
    let b = find_bench name in
    let img = Benchprogs.Bench.assemble b in
    let w =
      Baselines.Wcec.of_program c.Report.Context.pa img
        ~input_sets:
          [
            b.Benchprogs.Bench.gen_inputs ~seed:2;
            b.Benchprogs.Bench.gen_inputs ~seed:8;
          ]
    in
    let a =
      Core.Analyze.run
        ~config:
          {
            Core.Analyze.default_config with
            Core.Analyze.max_paths = b.Benchprogs.Bench.max_paths;
            loop_bound = b.Benchprogs.Bench.loop_bound;
          }
        c.Report.Context.pa c.Report.Context.cpu img
    in
    Printf.printf
      "%s: instruction-level WCEC model %s pJ/cycle vs gate-level bound %s        pJ/cycle (%.1f%% tighter)\n"
      name
      (Report.Render.npe_pj w.Baselines.Wcec.npe)
      (Report.Render.npe_pj a.Core.Analyze.peak_energy.Core.Peak_energy.npe)
      (100.
      *. (1.
         -. a.Core.Analyze.peak_energy.Core.Peak_energy.npe
            /. w.Baselines.Wcec.npe))
  in
  Cmd.v
    (Cmd.info "wcec"
       ~doc:"Compare the instruction-level WCEC model with the gate-level bound")
    Term.(const run $ jobs_term $ bench_arg)

let stressmark_cmd =
  let run () () =
    let c = Lazy.force ctx in
    let s = Report.Context.stressmark_peak c in
    Printf.printf
      "GA stressmark (peak-power fitness): %s mW peak, %s mW average, %d        evaluations\n"
      (Report.Render.mw s.Baselines.Stressmark.peak_power)
      (Report.Render.mw s.Baselines.Stressmark.avg_power)
      s.Baselines.Stressmark.evaluations;
    print_endline "best genome as assembly:";
    List.iter
      (function
        | Isa.Asm.I i -> Printf.printf "  %s\n" (Isa.Insn.to_string i)
        | Isa.Asm.Label l -> Printf.printf "%s:\n" l
        | _ -> ())
      (Baselines.Stressmark.phenotype Baselines.Stressmark.default_config
         s.Baselines.Stressmark.best_genome)
  in
  Cmd.v
    (Cmd.info "stressmark"
       ~doc:"Run the genetic stressmark search and print the result")
    Term.(const run $ jobs_term $ const ())

let () =
  let info =
    Cmd.info "xbound" ~version:"1.0.0"
      ~doc:
        "Application-specific peak power and energy requirements for \
         ultra-low-power processors (ASPLOS'17 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; netlist_cmd; analyze_cmd; analyze_file_cmd; profile_cmd;
            coi_cmd; optimize_cmd; disasm_cmd; trace_cmd; wcec_cmd;
            stressmark_cmd;
            export_verilog_cmd; export_liberty_cmd;
          ]))
