(* Guided peak-power optimization (paper, Sections 3.5 and 5.1),
   through the stable public API.

   The analysis identifies the cycles of interest (power spikes), the
   instruction in flight and the per-module breakdown at each; the
   optimizer then applies the matching software transforms and keeps
   only those that provably reduce the bound without hurting
   performance.

   Run with: dune exec examples/optimize_app.exe *)

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline (Xbound.Error.to_string e);
    exit 1

let () =
  (* One execution context shared by the analysis and the optimizer, so
     the optimizer's re-analyses reuse the analysis cache. *)
  let ctx =
    Xbound.Ctx.create ~cache:(Cache.create ~dir:(Cache.default_dir ()) ()) ()
  in
  let program = or_die (Xbound.bench "mult") in
  let a = or_die (Xbound.analyze ~ctx program) in

  print_endline "--- cycles of interest before optimization ---";
  List.iter
    (fun coi -> Format.printf "%a" Xbound.pp_coi coi)
    (Xbound.cois ~top:2 ~min_gap:4 a);

  print_endline "--- greedy optimization ---";
  let o = or_die (Xbound.optimize ~ctx "mult") in
  (match o.Xbound.chosen with
  | [] -> print_endline "no transform reduced the bound"
  | opts -> List.iter (fun opt -> Printf.printf "applied: %s\n" opt) opts);
  Printf.printf "peak power: %.4f mW -> %.4f mW (%.1f%% lower)\n"
    (o.Xbound.base_peak_w *. 1e3)
    (o.Xbound.opt_peak_w *. 1e3)
    o.Xbound.peak_reduction_pct;
  Printf.printf "dynamic range reduction: %.1f%%\n" o.Xbound.range_reduction_pct;
  Printf.printf "performance cost: %.2f%%, energy cost: %.2f%%\n"
    o.Xbound.perf_degradation_pct o.Xbound.energy_overhead_pct;

  print_endline "--- traces ---";
  Printf.printf "before: %s\n" (Report.Render.series o.Xbound.base_trace_w);
  Printf.printf "after:  %s\n" (Report.Render.series o.Xbound.opt_trace_w)
