(* Quickstart: bound the peak power and energy of a small application,
   through the stable public API.

   Pipeline (paper, Figure 3.1):
     application binary + processor netlist
       -> symbolic (X-propagating) gate-level simulation
       -> activity-annotated execution tree
       -> peak power / peak energy computation
   all behind [Xbound.analyze].

   Run with: dune exec examples/quickstart.exe *)

let or_die = function
  | Ok v -> v
  | Error e ->
    prerr_endline (Xbound.Error.to_string e);
    exit 1

let () =
  (* 1. Write an application. This one reads a sensor sample from RAM
     (never initialized by the binary, so the analysis treats it as
     unknown), scales it with the hardware multiplier, and stores the
     result. *)
  let open Benchprogs.Bench.E in
  let sample_addr = Benchprogs.Bench.input_base in
  let result_addr = Benchprogs.Bench.output_base in
  let app =
    prologue
    @ [
        mov (abs sample_addr) (dreg 4);
        mov (reg 4) (dabs Isa.Memmap.mpy);
        mov (imm 25) (dabs Isa.Memmap.op2);
        mul_reslo 5;
        mov (reg 5) (dabs result_addr);
      ]
  in
  let program =
    or_die
      (Xbound.of_ast
         {
           Isa.Asm.name = "quickstart";
           entry = "start";
           sections =
             [
               {
                 Isa.Asm.org = Isa.Memmap.rom_base;
                 items = (Isa.Asm.Label "start" :: app) @ Isa.Asm.halt_items;
               };
             ];
         })
  in

  (* 2. Build one execution context for every call: an optional cache
     (re-running this example is then a disk hit) and a telemetry sink
     (per-phase timings land on the result). *)
  let ctx =
    Xbound.Ctx.create
      ~cache:(Cache.create ~dir:(Cache.default_dir ()) ())
      ~telemetry:(Telemetry.create ())
      ()
  in
  let a = or_die (Xbound.analyze ~ctx program) in
  Printf.printf "symbolic execution explored %d path(s), %d cycles\n"
    a.Xbound.paths a.Xbound.total_cycles;
  Printf.printf "guaranteed peak power:  %.4f mW [%s tier]\n"
    (Xbound.peak_power_w a *. 1e3)
    (Xbound.Tier.to_string a.Xbound.tier);
  Printf.printf "guaranteed peak energy: %.4f nJ (%.3f pJ/cycle)\n"
    (Xbound.peak_energy_j a *. 1e9)
    (a.Xbound.npe_j_per_cycle *. 1e12);
  List.iter
    (fun (phase, s) -> Printf.printf "  phase %-12s %.4f s\n" phase s)
    a.Xbound.phase_timings;

  (* 3. Sanity: a concrete run with a specific input must stay below the
     bound for every cycle. *)
  let c =
    or_die
      (Xbound.run_concrete ~ctx program ~inputs:[ (sample_addr, [ 1234 ]) ])
  in
  Printf.printf "concrete run peak:      %.4f mW (bound holds: %b)\n"
    (c.Xbound.peak_w *. 1e3)
    (c.Xbound.peak_w <= Xbound.peak_power_w a)
