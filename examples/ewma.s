; EWMA smoother over six unknown samples — the text-assembler twin of
; examples/custom_kernel.ml. Analyze with:
;   dune exec bin/xbound.exe -- analyze-file examples/ewma.s
        .org 0xE000
start:
        mov   #0x05f0, sp
        mov   #0x5A80, &0x0120      ; stop the watchdog
        nop                         ; initialize r3 (cheap NOPs later)
        clr   r5                    ; y = 0
        mov   #0x0300, r4           ; sample pointer (uninitialized RAM = X)
        mov   #6, r10
ewma:
        mov   @r4+, r6
        sub   r5, r6                ; x - y
        rra   r6
        rra   r6                    ; (x - y) / 4
        add   r6, r5
        dec   r10
        jne   ewma
        mov   r5, &0x0400           ; result
