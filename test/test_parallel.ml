(* The parallel layer: pool combinator sanity, engine snapshot/replica
   round-trips, and the central determinism guarantee — parallel
   [Sym.run] / [Analyze.run] produce results bit-identical to the
   sequential run on fork-heavy kernels. A multi-worker pool works (just
   without speedup) on a single-core host, so these tests are
   machine-independent. *)

open Gatesim

(* One shared multi-worker pool; per-test pools would spawn domains over
   and over. *)
let pool4 = lazy (Parallel.Pool.create ~jobs:4)

(* ---------------- pool combinators ---------------- *)

let test_map_ordered () =
  let p = Lazy.force pool4 in
  let xs = Array.init 200 (fun i -> i) in
  let ys = Parallel.Pool.map_array p (fun i -> i * i) xs in
  Alcotest.(check (array int)) "squares in order"
    (Array.map (fun i -> i * i) xs)
    ys;
  let l = Parallel.Pool.map_list p string_of_int [ 5; 4; 3; 2; 1 ] in
  Alcotest.(check (list string)) "list in order" [ "5"; "4"; "3"; "2"; "1" ] l

let test_init_chunked () =
  let p = Lazy.force pool4 in
  let n = 1000 in
  let ys = Parallel.Pool.init_chunked p ~chunk:64 n (fun i -> (3 * i) + 1) in
  Alcotest.(check (array int)) "init equal" (Array.init n (fun i -> (3 * i) + 1)) ys

let test_both () =
  let p = Lazy.force pool4 in
  let a, b = Parallel.Pool.both p (fun () -> 6 * 7) (fun () -> "ok") in
  Alcotest.(check int) "left" 42 a;
  Alcotest.(check string) "right" "ok" b

exception Boom

let test_exception_propagates () =
  let p = Lazy.force pool4 in
  let fut = Parallel.Pool.async p (fun () -> raise Boom) in
  Alcotest.check_raises "exception re-raised at await" Boom (fun () ->
      ignore (Parallel.Pool.await p fut))

let test_nested_fork_join () =
  let p = Lazy.force pool4 in
  (* recursive fork/join summation: exercises helping-await under
     nesting deeper than the worker count *)
  let rec sum lo hi =
    if hi - lo <= 4 then
      let s = ref 0 in
      for i = lo to hi - 1 do
        s := !s + i
      done;
      !s
    else
      let mid = (lo + hi) / 2 in
      let l, r =
        Parallel.Pool.both p (fun () -> sum lo mid) (fun () -> sum mid hi)
      in
      l + r
  in
  Alcotest.(check int) "sum 0..999" (999 * 1000 / 2) (sum 0 1000)

let test_sequential_pool_inline () =
  let p = Parallel.Pool.create ~jobs:1 in
  let order = ref [] in
  let fut = Parallel.Pool.async p (fun () -> order := "a" :: !order) in
  order := "b" :: !order;
  Parallel.Pool.await p fut;
  (* eager inline execution: "a" happened before "b" *)
  Alcotest.(check (list string)) "eager order" [ "b"; "a" ] !order

(* ---------------- engine snapshot / replica round-trips ---------------- *)

let cycle_equal (a : Trace.cycle) (b : Trace.cycle) =
  a.Trace.deltas = b.Trace.deltas
  && a.Trace.x_active = b.Trace.x_active
  && Tri.Word.equal a.Trace.pc b.Trace.pc
  && Tri.Word.equal a.Trace.state b.Trace.state
  && Tri.Word.equal a.Trace.ir b.Trace.ir

let test_snapshot_restore_roundtrip () =
  let img = Tsupport.assemble_body (Tsupport.prologue @ [ Isa.Asm.I Isa.Insn.nop ]) in
  let e = Tsupport.fresh_engine img in
  Engine.set_reset e Tri.One;
  ignore (Engine.step e);
  ignore (Engine.step e);
  Engine.set_reset e Tri.Zero;
  for _ = 1 to 5 do
    ignore (Engine.step e)
  done;
  let snap = Engine.snapshot e in
  let after_a = Array.init 10 (fun _ -> Engine.step e) in
  Engine.restore e snap;
  let after_b = Array.init 10 (fun _ -> Engine.step e) in
  Alcotest.(check bool) "same cycles after restore" true
    (Array.for_all2 cycle_equal after_a after_b);
  Alcotest.(check string) "same digest" (Engine.arch_digest e)
    (let () = Engine.restore e snap in
     Array.iter (fun _ -> ignore (Engine.step e)) (Array.make 10 ());
     Engine.arch_digest e)

let test_of_snapshot_replica_equivalence () =
  let img = Tsupport.assemble_body (Tsupport.prologue @ [ Isa.Asm.I Isa.Insn.nop ]) in
  let e = Tsupport.fresh_engine img in
  Engine.set_reset e Tri.One;
  ignore (Engine.step e);
  ignore (Engine.step e);
  Engine.set_reset e Tri.Zero;
  for _ = 1 to 7 do
    ignore (Engine.step e)
  done;
  let snap = Engine.snapshot e in
  (* replica picks up mid-run state including RAM and drive levels *)
  let r = Engine.of_snapshot e snap in
  Alcotest.(check int) "same cycle index" (Engine.cycle_index e)
    (Engine.cycle_index r);
  Alcotest.(check string) "same digest at handoff" (Engine.arch_digest e)
    (Engine.arch_digest r);
  let on_orig = Array.init 15 (fun _ -> Engine.step e) in
  let on_repl = Array.init 15 (fun _ -> Engine.step r) in
  Alcotest.(check bool) "same subsequent cycle records" true
    (Array.for_all2 cycle_equal on_orig on_repl);
  Alcotest.(check string) "same digest after stepping" (Engine.arch_digest e)
    (Engine.arch_digest r)

(* ---------------- parallel == sequential determinism ---------------- *)

let rec node_equal a b =
  match (a, b) with
  | Trace.End_path, Trace.End_path -> true
  | Trace.Seen da, Trace.Seen db -> String.equal da db
  | Trace.Run { cycles = ca; next = na }, Trace.Run { cycles = cb; next = nb } ->
    Array.length ca = Array.length cb
    && Array.for_all2 cycle_equal ca cb
    && node_equal na nb
  | ( Trace.Fork { not_taken = la; taken = ta },
      Trace.Fork { not_taken = lb; taken = tb } ) ->
    node_equal la lb && node_equal ta tb
  | _ -> false

let registry_bindings reg =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) reg [])

let tree_equal (ta : Trace.tree) (tb : Trace.tree) =
  node_equal ta.Trace.root tb.Trace.root
  && ta.Trace.initial = tb.Trace.initial
  &&
  let ba = registry_bindings ta.Trace.registry
  and bb = registry_bindings tb.Trace.registry in
  List.length ba = List.length bb
  && List.for_all2
       (fun (ka, va) (kb, vb) -> String.equal ka kb && node_equal !va !vb)
       ba bb

let stats_equal (a : Sym.stats) (b : Sym.stats) =
  a.Sym.paths = b.Sym.paths && a.Sym.forks = b.Sym.forks
  && a.Sym.dedup_hits = b.Sym.dedup_hits
  && a.Sym.total_cycles = b.Sym.total_cycles

let kernels = [ "binSearch"; "Viterbi"; "tHold" ]

let sym_config (b : Benchprogs.Bench.t) img =
  {
    (Sym.default_config
       ~is_end:(Cpu.is_end_cycle ~halt_addr:img.Isa.Asm.halt_addr))
    with
    Sym.max_paths = b.Benchprogs.Bench.max_paths;
  }

let run_kernel ?pool name =
  let b = Benchprogs.Bench.find name in
  let img = Benchprogs.Bench.assemble b in
  let e = Tsupport.fresh_engine ~concrete:false img in
  Sym.run ?pool e (sym_config b img)

let test_parallel_sym_deterministic name () =
  let tree_s, stats_s = run_kernel name in
  let tree_p, stats_p = run_kernel ~pool:(Lazy.force pool4) name in
  Alcotest.(check bool)
    (name ^ ": forks explored") true
    (stats_s.Sym.forks > 0);
  Alcotest.(check bool) (name ^ ": stats identical") true
    (stats_equal stats_s stats_p);
  Alcotest.(check bool) (name ^ ": tree identical") true (tree_equal tree_s tree_p)

(* The full job-count sweep: the committed tree (every cycle record,
   every dedup digest, the registry) and the stats must be identical at
   -j1, -j4 and -j8, and independent of the gang width — including
   gang_width 1, which disables gang simulation entirely. *)
let pool8 = lazy (Parallel.Pool.create ~jobs:8)

(* CI exports XBOUND_TEST_JOBS (e.g. 2) to extend the sweep with a
   worker count the fixed -j1/-j4/-j8 grid does not cover. One pool per
   distinct count, shared across kernels. *)
let extra_pools : (int, Parallel.Pool.t) Hashtbl.t = Hashtbl.create 4

let extra_jobs () =
  match
    Option.bind (Sys.getenv_opt "XBOUND_TEST_JOBS") int_of_string_opt
  with
  | Some j when j > 0 ->
    let p =
      match Hashtbl.find_opt extra_pools j with
      | Some p -> p
      | None ->
        let p = Parallel.Pool.create ~jobs:j in
        Hashtbl.add extra_pools j p;
        p
    in
    Some (j, p)
  | _ -> None

let test_jobs_sweep name () =
  let b = Benchprogs.Bench.find name in
  let img = Benchprogs.Bench.assemble b in
  let cfg = sym_config b img in
  let run ?pool cfg =
    let e = Tsupport.fresh_engine ~concrete:false img in
    Sym.run ?pool e cfg
  in
  let tree_ref, stats_ref = run cfg in
  Alcotest.(check bool) (name ^ ": forks explored") true (stats_ref.Sym.forks > 0);
  let check label (tree, stats) =
    Alcotest.(check bool)
      (Printf.sprintf "%s: stats identical (%s)" name label)
      true (stats_equal stats_ref stats);
    Alcotest.(check bool)
      (Printf.sprintf "%s: tree identical (%s)" name label)
      true (tree_equal tree_ref tree)
  in
  check "-j1" (run ~pool:(Parallel.Pool.create ~jobs:1) cfg);
  check "-j4" (run ~pool:(Lazy.force pool4) cfg);
  check "-j8" (run ~pool:(Lazy.force pool8) cfg);
  check "-j4 gang_width=1" (run ~pool:(Lazy.force pool4) { cfg with Sym.gang_width = 1 });
  check "-j8 gang_width=32" (run ~pool:(Lazy.force pool8) { cfg with Sym.gang_width = 32 });
  match extra_jobs () with
  | Some (j, p) ->
    check (Printf.sprintf "-j%d (XBOUND_TEST_JOBS)" j) (run ~pool:p cfg)
  | None -> ()

let test_parallel_analyze_deterministic () =
  let cpu = Tsupport.the_cpu () in
  let pa = Core.Analyze.poweran_for cpu in
  let b = Benchprogs.Bench.find "binSearch" in
  let img = Benchprogs.Bench.assemble b in
  let config =
    {
      Core.Analyze.default_config with
      Core.Analyze.loop_bound = b.Benchprogs.Bench.loop_bound;
      max_paths = b.Benchprogs.Bench.max_paths;
    }
  in
  let seq = Core.Analyze.run ~config ~pool:(Parallel.Pool.create ~jobs:1) pa cpu img in
  let par = Core.Analyze.run ~config ~pool:(Lazy.force pool4) pa cpu img in
  Alcotest.(check (float 0.)) "peak power identical" seq.Core.Analyze.peak_power
    par.Core.Analyze.peak_power;
  Alcotest.(check int) "peak index identical" seq.Core.Analyze.peak_index
    par.Core.Analyze.peak_index;
  Alcotest.(check (float 0.)) "peak energy identical"
    seq.Core.Analyze.peak_energy.Core.Peak_energy.energy
    par.Core.Analyze.peak_energy.Core.Peak_energy.energy;
  Alcotest.(check (float 0.)) "NPE identical"
    seq.Core.Analyze.peak_energy.Core.Peak_energy.npe
    par.Core.Analyze.peak_energy.Core.Peak_energy.npe;
  Alcotest.(check bool) "power trace identical" true
    (seq.Core.Analyze.power_trace = par.Core.Analyze.power_trace)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "ordered map" `Quick test_map_ordered;
          Alcotest.test_case "init_chunked" `Quick test_init_chunked;
          Alcotest.test_case "both" `Quick test_both;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested fork/join" `Quick test_nested_fork_join;
          Alcotest.test_case "jobs=1 runs inline eagerly" `Quick
            test_sequential_pool_inline;
        ] );
      ( "engine-replica",
        [
          Alcotest.test_case "snapshot/restore round-trip" `Quick
            test_snapshot_restore_roundtrip;
          Alcotest.test_case "of_snapshot replica equivalence" `Quick
            test_of_snapshot_replica_equivalence;
        ] );
      ( "determinism",
        List.map
          (fun k ->
            Alcotest.test_case
              ("parallel Sym.run == sequential: " ^ k)
              `Slow
              (test_parallel_sym_deterministic k))
          kernels
        @ List.map
            (fun k ->
              Alcotest.test_case
                ("jobs/gang sweep bit-identical: " ^ k)
                `Slow (test_jobs_sweep k))
            [ "binSearch"; "tHold"; "div" ]
        @ [
            Alcotest.test_case "parallel Analyze.run == sequential" `Slow
              test_parallel_analyze_deterministic;
          ] );
    ]
