(* Tests for the content-addressed analysis cache: key discipline
   (binary / config / version perturbation), corruption tolerance,
   single-flight under the domain pool, cached-vs-fresh determinism,
   and LRU eviction. *)

let tmpdir () =
  let d = Filename.temp_file "xbound-test-cache" "" in
  Sys.remove d;
  d

let rec rm_rf d =
  if Sys.file_exists d then begin
    Array.iter
      (fun f ->
        let p = Filename.concat d f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir d);
    Sys.rmdir d
  end

(* entry containers live under two-hex-digit shard subdirectories *)
let rec entry_files d =
  Sys.readdir d |> Array.to_list
  |> List.concat_map (fun f ->
         let p = Filename.concat d f in
         if Sys.is_directory p then entry_files p else [ p ])

let env =
  lazy
    (let cpu = Tsupport.the_cpu () in
     (cpu, Core.Analyze.poweran_for cpu))

(* A small program whose binary differs in one immediate word. *)
let image k =
  let open Benchprogs.Bench.E in
  Tsupport.assemble_body ~name:"cachetest"
    (prologue
    @ [
        mov (abs Benchprogs.Bench.input_base) (dreg 4);
        mov (imm k) (dreg 5);
        mov (reg 5) (dabs Benchprogs.Bench.output_base);
      ])

let config =
  { Core.Analyze.default_config with Core.Analyze.loop_bound = 4; max_paths = 64 }

let result_digest (a : Core.Analyze.t) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( a.Core.Analyze.peak_power,
            a.Core.Analyze.peak_index,
            a.Core.Analyze.peak_energy,
            a.Core.Analyze.power_trace )
          []))

(* ---------------- key discipline ---------------- *)

let test_key_perturbation () =
  let cpu, pa = Lazy.force env in
  let img = image 25 in
  let tk = Core.Analyze.tree_key config cpu img in
  let ck = Core.Analyze.cache_key ~config pa cpu img in
  (* flipping one immediate in the binary changes both key tiers *)
  let img' = image 26 in
  Alcotest.(check bool)
    "binary flip changes tree key" true
    (tk <> Core.Analyze.tree_key config cpu img');
  Alcotest.(check bool)
    "binary flip changes cache key" true
    (ck <> Core.Analyze.cache_key ~config pa cpu img');
  (* loop_bound is an Algorithm 2 knob: the exploration (tree) key must
     NOT move, the whole-analysis key must *)
  let config' = { config with Core.Analyze.loop_bound = 8 } in
  Alcotest.(check string)
    "loop_bound keeps the tree key" tk
    (Core.Analyze.tree_key config' cpu img);
  Alcotest.(check bool)
    "loop_bound changes the cache key" true
    (ck <> Core.Analyze.cache_key ~config:config' pa cpu img);
  (* an exploration knob moves both *)
  let config'' = { config with Core.Analyze.max_paths = 65 } in
  Alcotest.(check bool)
    "max_paths changes the tree key" true
    (tk <> Core.Analyze.tree_key config'' cpu img);
  (* bumping the code version invalidates everything *)
  let v = Core.Analyze.analysis_version + 1 in
  Alcotest.(check bool)
    "version bump changes the tree key" true
    (tk <> Core.Analyze.tree_key ~version:v config cpu img);
  Alcotest.(check bool)
    "version bump changes the cache key" true
    (ck <> Core.Analyze.cache_key ~version:v ~config pa cpu img)

let test_memo_hit_miss () =
  let c = Cache.create () in
  let calls = ref 0 in
  let f () = incr calls; [ 1; 2; 3 ] in
  let k = Cache.Key.of_string "a" in
  Alcotest.(check (list int)) "computed" [ 1; 2; 3 ] (Cache.memo c ~ns:"t" ~key:k f);
  Alcotest.(check (list int)) "memoized" [ 1; 2; 3 ] (Cache.memo c ~ns:"t" ~key:k f);
  Alcotest.(check int) "f ran once" 1 !calls;
  (* a different namespace or key is a distinct entry *)
  ignore (Cache.memo c ~ns:"u" ~key:k f);
  ignore (Cache.memo c ~ns:"t" ~key:(Cache.Key.of_string "b") f);
  Alcotest.(check int) "distinct entries recompute" 3 !calls;
  let ct = Cache.counters c in
  Alcotest.(check int) "misses" 3 ct.Cache.misses;
  Alcotest.(check int) "mem hits" 1 ct.Cache.mem_hits

let test_exception_not_stored () =
  let c = Cache.create () in
  let k = Cache.Key.of_string "boom" in
  (match Cache.memo c ~ns:"t" ~key:k (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure m -> Alcotest.(check string) "propagated" "boom" m);
  (* nothing was stored: the next call computes *)
  Alcotest.(check int) "recomputed after raise" 7
    (Cache.memo c ~ns:"t" ~key:k (fun () -> 7))

(* ---------------- determinism & disk round-trip ---------------- *)

let test_determinism_and_incremental () =
  let cpu, pa = Lazy.force env in
  let img = image 25 in
  let dir = tmpdir () in
  let fresh = Core.Analyze.run ~config pa cpu img in
  (* cold: populated through the cache, bit-identical to fresh *)
  let c1 = Cache.create ~dir () in
  let cold = Core.Analyze.run ~config ~cache:c1 pa cpu img in
  Alcotest.(check string)
    "cold = fresh" (result_digest fresh) (result_digest cold);
  Alcotest.(check int) "cold run misses all tiers" 4 (Cache.counters c1).Cache.misses;
  (* warm, new Cache.t on the same directory = fresh process: whole
     result served from disk, bit-identical *)
  let c2 = Cache.create ~dir () in
  let warm = Core.Analyze.run ~config ~cache:c2 pa cpu img in
  Alcotest.(check string)
    "warm = fresh" (result_digest fresh) (result_digest warm);
  Alcotest.(check int) "warm is one disk hit" 1 (Cache.counters c2).Cache.disk_hits;
  Alcotest.(check int) "warm recomputes nothing" 0 (Cache.counters c2).Cache.misses;
  (* changing loop_bound (an Algorithm 2 knob) must reuse the stored
     exploration tree and peak-power artifacts, recompute the rest *)
  let config' = { config with Core.Analyze.loop_bound = 8 } in
  let c3 = Cache.create ~dir () in
  let warm' = Core.Analyze.run ~config:config' ~cache:c3 pa cpu img in
  let fresh' = Core.Analyze.run ~config:config' pa cpu img in
  Alcotest.(check string)
    "incremental = fresh" (result_digest fresh') (result_digest warm');
  let ct = Cache.counters c3 in
  Alcotest.(check int) "tree + peak power reused from disk" 2 ct.Cache.disk_hits;
  Alcotest.(check int) "analysis + peak energy recomputed" 2 ct.Cache.misses;
  (* clear removes every entry *)
  Cache.clear c3;
  Alcotest.(check (pair int int)) "cleared" (0, 0) (Cache.disk_stats c3);
  rm_rf dir

(* ---------------- corruption tolerance ---------------- *)

let test_corrupted_entry_is_a_miss () =
  let dir = tmpdir () in
  let k = Cache.Key.of_string "payload" in
  let c1 = Cache.create ~dir () in
  Alcotest.(check (list int)) "stored" [ 1; 2; 3 ]
    (Cache.memo c1 ~ns:"t" ~key:k (fun () -> [ 1; 2; 3 ]));
  let files = entry_files dir in
  Alcotest.(check int) "one entry on disk" 1 (List.length files);
  (* garble the container in place *)
  let path = List.hd files in
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
  output_string oc "garbage-garbage-garbage";
  close_out oc;
  (* a fresh process must treat it as a miss, recompute, and repair *)
  let c2 = Cache.create ~dir () in
  Alcotest.(check (list int)) "recomputed" [ 9 ]
    (Cache.memo c2 ~ns:"t" ~key:k (fun () -> [ 9 ]));
  let ct = Cache.counters c2 in
  Alcotest.(check int) "corrupt entry counted" 1 ct.Cache.corrupt;
  Alcotest.(check int) "recomputed as a miss" 1 ct.Cache.misses;
  (* the repaired entry round-trips again *)
  let c3 = Cache.create ~dir () in
  Alcotest.(check (list int)) "repaired" [ 9 ]
    (Cache.memo c3 ~ns:"t" ~key:k (fun () -> [ 0 ]));
  Cache.clear c3;
  rm_rf dir

(* ---------------- single-flight under the domain pool ---------------- *)

let test_single_flight () =
  let c = Cache.create () in
  let pool = Parallel.Pool.create ~jobs:4 in
  let runs = Atomic.make 0 in
  let k = Cache.Key.of_string "flight" in
  let tasks = List.init 8 (fun i -> i) in
  let results =
    Parallel.Pool.map_list pool
      (fun _ ->
        Cache.memo c ~ns:"t" ~key:k (fun () ->
            Atomic.incr runs;
            (* hold the computation open so other domains arrive while
               it is in flight *)
            Unix.sleepf 0.05;
            42))
      tasks
  in
  Alcotest.(check (list int)) "all callers get the value"
    (List.map (fun _ -> 42) tasks)
    results;
  Alcotest.(check int) "computation ran exactly once" 1 (Atomic.get runs);
  let ct = Cache.counters c in
  Alcotest.(check int) "one miss" 1 ct.Cache.misses;
  Alcotest.(check int) "everyone else joined or hit" 7
    (ct.Cache.mem_hits + ct.Cache.joined)

(* ---------------- LRU eviction ---------------- *)

let test_lru_eviction () =
  let c = Cache.create ~mem_entries:2 () in
  let key i = Cache.Key.of_string (string_of_int i) in
  let calls = ref 0 in
  let get i = Cache.memo c ~ns:"t" ~key:(key i) (fun () -> incr calls; i) in
  ignore (get 0);
  ignore (get 1);
  ignore (get 2);
  (* capacity 2: key 0 fell off the tail *)
  Alcotest.(check int) "eviction counted" 1 (Cache.counters c).Cache.evictions;
  Alcotest.(check int) "evicted key recomputes" 0 (get 0);
  Alcotest.(check int) "four computations" 4 !calls;
  (* key 2 stayed resident through the re-insert of 0 *)
  ignore (get 2);
  Alcotest.(check int) "resident key is a hit" 4 !calls

let () =
  Alcotest.run "cache"
    [
      ( "keys",
        [
          Alcotest.test_case "perturbation" `Quick test_key_perturbation;
          Alcotest.test_case "hit/miss" `Quick test_memo_hit_miss;
          Alcotest.test_case "exception" `Quick test_exception_not_stored;
        ] );
      ( "disk",
        [
          Alcotest.test_case "determinism + incremental" `Slow
            test_determinism_and_incremental;
          Alcotest.test_case "corruption" `Quick test_corrupted_entry_is_a_miss;
        ] );
      ( "concurrency",
        [ Alcotest.test_case "single-flight" `Quick test_single_flight ] );
      ( "lru", [ Alcotest.test_case "eviction" `Quick test_lru_eviction ] );
    ]
