(* Static tier: CFG extraction on hand-written listings, and the
   soundness cross-check static_bound >= exact_bound on the paper
   benchmark suite. *)

module E = Benchprogs.Bench.E

let cpu = Tsupport.the_cpu ()
let pa = lazy (Core.Analyze.poweran_for cpu)

(* {1 CFG extraction} *)

let extract_ok img =
  match Static.Cfg.extract img with
  | Ok cfg -> cfg
  | Error e -> Alcotest.fail (Static.Cfg.error_to_string e)

let term_name b =
  match b.Static.Cfg.b_term with
  | Static.Cfg.T_jump _ -> "jump"
  | Static.Cfg.T_branch _ -> "branch"
  | Static.Cfg.T_call _ -> "call"
  | Static.Cfg.T_ret -> "ret"
  | Static.Cfg.T_halt -> "halt"
  | Static.Cfg.T_fallthrough _ -> "fall"

let terms cfg = List.map term_name cfg.Static.Cfg.c_blocks

let test_cfg_fallthrough () =
  (* A diamond: branch, two straight-line arms, join, halt. *)
  let img =
    Tsupport.assemble_body
      [
        E.mov (E.imm 5) (E.dreg 4);
        E.cmp (E.imm 5) (E.dreg 4);
        E.jeq "join";
        E.add (E.imm 1) (E.dreg 4);
        E.lbl "join";
        E.nop;
      ]
  in
  let cfg = extract_ok img in
  Alcotest.(check (list string))
    "terminators" [ "branch"; "fall"; "halt" ] (terms cfg);
  (* Every block's successors are block starts. *)
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "successor 0x%04x is a block start" s)
            true
            (Static.Cfg.block_at cfg s <> None))
        (Static.Cfg.successors b))
    cfg.Static.Cfg.c_blocks;
  (* Blocks tile the code: entry is a block start. *)
  Alcotest.(check bool) "entry block" true
    (Static.Cfg.block_at cfg cfg.Static.Cfg.c_entry <> None)

let test_cfg_back_edge () =
  let img =
    Tsupport.assemble_body
      [
        E.mov (E.imm 4) (E.dreg 4);
        E.lbl "loop";
        E.sub (E.imm 1) (E.dreg 4);
        E.jne "loop";
      ]
  in
  let cfg = extract_ok img in
  Alcotest.(check (list string)) "terminators" [ "fall"; "branch"; "halt" ]
    (terms cfg);
  (* The branch block's taken edge points back at its own start. *)
  let loop_block =
    List.find
      (fun b -> term_name b = "branch")
      cfg.Static.Cfg.c_blocks
  in
  (match loop_block.Static.Cfg.b_term with
  | Static.Cfg.T_branch { taken; _ } ->
    Alcotest.(check int) "back edge" loop_block.Static.Cfg.b_start taken
  | _ -> assert false)

let test_cfg_call_ret () =
  let img =
    Tsupport.assemble_body
      [
        E.call "f";
        E.jmp "done";
        E.lbl "f";
        E.mov (E.imm 7) (E.dreg 5);
        E.ret;
        E.lbl "done";
        E.nop;
      ]
  in
  let cfg = extract_ok img in
  let call_block =
    List.find (fun b -> term_name b = "call") cfg.Static.Cfg.c_blocks
  in
  match call_block.Static.Cfg.b_term with
  | Static.Cfg.T_call { callee; link } ->
    let f = Option.get (Static.Cfg.block_at cfg callee) in
    Alcotest.(check string) "callee ends in ret" "ret" (term_name f);
    Alcotest.(check bool) "link is a block"
      true
      (Static.Cfg.block_at cfg link <> None)
  | _ -> assert false

let test_cfg_indirect_rejected () =
  let img =
    Tsupport.assemble_body
      [ E.mov (E.imm 0xE000) (E.dreg 4); E.i (Isa.Insn.br (E.reg 4)) ]
  in
  match Static.Cfg.extract img with
  | Ok _ -> Alcotest.fail "indirect branch accepted"
  | Error (Static.Cfg.Indirect_branch _) -> ()
  | Error e -> Alcotest.fail (Static.Cfg.error_to_string e)

(* {1 Static vs exact cross-check} *)

let exact_of b =
  let img = Benchprogs.Bench.assemble b in
  let config =
    {
      Core.Analyze.default_config with
      Core.Analyze.loop_bound = b.Benchprogs.Bench.loop_bound;
      max_paths = b.Benchprogs.Bench.max_paths;
    }
  in
  Core.Analyze.run ~config (Lazy.force pa) cpu img

let static_of b =
  let img = Benchprogs.Bench.assemble b in
  match
    Static.Ipet.analyze ~name:b.Benchprogs.Bench.name
      ~loop_bound:b.Benchprogs.Bench.loop_bound (Lazy.force pa) cpu img
  with
  | Ok s -> s
  | Error e ->
    Alcotest.fail
      (Printf.sprintf "%s: %s" b.Benchprogs.Bench.name
         (Static.Cfg.error_to_string e))

let test_dominates b () =
  let a = exact_of b in
  let s = static_of b in
  let name = b.Benchprogs.Bench.name in
  Alcotest.(check bool)
    (Printf.sprintf "%s: static peak power %.6f >= exact %.6f" name
       s.Static.Ipet.s_peak_power_w a.Core.Analyze.peak_power)
    true
    (s.Static.Ipet.s_peak_power_w >= a.Core.Analyze.peak_power);
  Alcotest.(check bool)
    (Printf.sprintf "%s: static peak energy %.6g >= exact %.6g" name
       s.Static.Ipet.s_peak_energy_j
       a.Core.Analyze.peak_energy.Core.Peak_energy.energy)
    true
    (s.Static.Ipet.s_peak_energy_j
    >= a.Core.Analyze.peak_energy.Core.Peak_energy.energy);
  Alcotest.(check bool)
    (Printf.sprintf "%s: static cycle bound %d >= exact worst path %d" name
       s.Static.Ipet.s_cycle_bound
       a.Core.Analyze.peak_energy.Core.Peak_energy.cycles)
    true
    (s.Static.Ipet.s_cycle_bound
    >= a.Core.Analyze.peak_energy.Core.Peak_energy.cycles)

(* {1 Block cache namespace} *)

(* Block characterizations live in their own "block" namespace: repeat
   analysis is served from it, `cache stats` can account for it, and
   `cache clear` wipes it with everything else. *)
let test_block_cache_ns () =
  let dir = Filename.temp_file "xbound-test-blockns" "" in
  Sys.remove dir;
  let cache = Cache.create ~dir () in
  let b = Benchprogs.Bench.find "tea8" in
  let img = Benchprogs.Bench.assemble b in
  let run () =
    match
      Static.Ipet.analyze ~cache ~name:"tea8"
        ~loop_bound:b.Benchprogs.Bench.loop_bound (Lazy.force pa) cpu img
    with
    | Ok s -> s
    | Error e -> Alcotest.fail (Static.Cfg.error_to_string e)
  in
  let s1 = run () in
  Alcotest.(check int) "first run computes every block" 0
    s1.Static.Ipet.s_cached_blocks;
  let s2 = run () in
  Alcotest.(check int) "second run is all cache hits"
    s2.Static.Ipet.s_blocks s2.Static.Ipet.s_cached_blocks;
  Alcotest.(check (float 0.)) "cached bound identical"
    s1.Static.Ipet.s_peak_energy_j s2.Static.Ipet.s_peak_energy_j;
  (match List.assoc_opt Static.Blockchar.cache_ns (Cache.disk_stats_by_ns cache) with
  | Some (entries, bytes) ->
    Alcotest.(check int) "one entry per block" s1.Static.Ipet.s_blocks entries;
    Alcotest.(check bool) "entries have bytes" true (bytes > 0)
  | None -> Alcotest.fail "no \"block\" namespace row in disk stats");
  Cache.clear cache;
  let entries, _ = Cache.disk_stats cache in
  Alcotest.(check int) "clear wipes the block namespace too" 0 entries;
  (try Sys.rmdir dir with Sys_error _ -> ())

(* {1 Tier dispatch through the facade} *)

(* A fork-heavy program with a starved path budget: the exact tier blows
   its exploration limit, the static tier still terminates with a
   bound. *)
let too_large_program () =
  let b = Benchprogs.Bench.find "div" in
  Xbound.of_image ~name:"div-starved"
    ~loop_bound:b.Benchprogs.Bench.loop_bound ~max_paths:2
    (Benchprogs.Bench.assemble b)

let test_static_handles_too_large () =
  let program = too_large_program () in
  (match
     Xbound.analyze ~ctx:(Xbound.Ctx.create ~tier:Xbound.Tier.Exact ()) program
   with
  | Error (Xbound.Error.Analysis _) -> ()
  | Error e ->
    Alcotest.fail ("expected a path-limit failure, got " ^ Xbound.Error.to_string e)
  | Ok _ -> Alcotest.fail "exact tier should exceed max_paths = 2");
  match
    Xbound.analyze ~ctx:(Xbound.Ctx.create ~tier:Xbound.Tier.Static ()) program
  with
  | Error e -> Alcotest.fail (Xbound.Error.to_string e)
  | Ok a ->
    Alcotest.(check bool) "static tier" true (a.Xbound.tier = Xbound.Tier.Static);
    Alcotest.(check bool) "positive power bound" true (Xbound.peak_power_w a > 0.);
    Alcotest.(check bool) "positive energy bound" true (Xbound.peak_energy_j a > 0.);
    Alcotest.(check bool) "carries the Ipet detail" true
      (Xbound.static_detail a <> None);
    Alcotest.(check bool) "no flattened trace" true
      (Array.length a.Xbound.power_trace_w = 0)

(* Auto resolves to the tier that could actually bound the program:
   exact when exploration is feasible, static when it is not. *)
let test_auto_tier () =
  let auto = Xbound.Ctx.create ~tier:Xbound.Tier.Auto () in
  (match Xbound.analyze ~ctx:auto (too_large_program ()) with
  | Ok a ->
    Alcotest.(check bool) "starved program resolves static" true
      (a.Xbound.tier = Xbound.Tier.Static)
  | Error e -> Alcotest.fail (Xbound.Error.to_string e));
  let feasible =
    match Xbound.bench "mult" with
    | Ok p -> p
    | Error e -> Alcotest.fail (Xbound.Error.to_string e)
  in
  match Xbound.analyze ~ctx:auto feasible with
  | Ok a ->
    Alcotest.(check bool) "feasible program escalates to exact" true
      (a.Xbound.tier = Xbound.Tier.Exact)
  | Error e -> Alcotest.fail (Xbound.Error.to_string e)

let () =
  let dominance =
    List.map
      (fun b ->
        Alcotest.test_case b.Benchprogs.Bench.name `Slow (test_dominates b))
      Benchprogs.Bench.all
  in
  Alcotest.run "static"
    [
      ( "cfg",
        [
          Alcotest.test_case "fallthrough+diamond" `Quick test_cfg_fallthrough;
          Alcotest.test_case "back edge" `Quick test_cfg_back_edge;
          Alcotest.test_case "call/ret" `Quick test_cfg_call_ret;
          Alcotest.test_case "indirect rejected" `Quick
            test_cfg_indirect_rejected;
        ] );
      ( "cache",
        [ Alcotest.test_case "block namespace" `Slow test_block_cache_ns ] );
      ( "tier",
        [
          Alcotest.test_case "too-large program" `Slow
            test_static_handles_too_large;
          Alcotest.test_case "auto dispatch" `Slow test_auto_tier;
        ] );
      ("dominance", dominance);
    ]
