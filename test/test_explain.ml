(* Bound provenance: Ejson round-trips, Treestat invariants against the
   exploration counters, per-COI attribution sums, exporter
   well-formedness, and the bench regression gate (an injected 20%
   phase-time regression must be flagged). *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* ---------------- Ejson ---------------- *)

let test_ejson_roundtrip () =
  let v =
    Explain.Ejson.(
      Obj
        [
          ("name", Str {|quo"ted\slash|});
          ("n", Num 42.5);
          ("neg", Num (-3.));
          ("flag", Bool true);
          ("nil", Null);
          ("xs", Arr [ Num 1.; Num 2.5e-3; Str "a\nb"; Bool false ]);
          ("nested", Obj [ ("empty_arr", Arr []); ("empty_obj", Obj []) ]);
        ])
  in
  let compact = Explain.Ejson.to_string v in
  let pretty = Explain.Ejson.to_string ~indent:2 v in
  Alcotest.(check bool) "compact is one line" false (String.contains compact '\n');
  Alcotest.(check bool)
    "compact round-trips" true
    (Explain.Ejson.parse compact = v);
  Alcotest.(check bool)
    "pretty round-trips" true
    (Explain.Ejson.parse pretty = v)

let test_ejson_parse () =
  let v = Explain.Ejson.parse {| {"a": [1, 2.5, -3e2], "b": "xA\t"} |} in
  Alcotest.(check (option (list unit)))
    "array arity"
    (Some [ (); (); () ])
    Explain.Ejson.(Option.map (List.map ignore)
                     (Option.bind (member "a" v) to_list));
  Alcotest.(check (option string))
    "escapes decoded" (Some "xA\t")
    (Explain.Ejson.string_member "b" v);
  Alcotest.(check (option (float 1e-9)))
    "exponent" (Some (-300.))
    (match Explain.Ejson.member "a" v with
    | Some (Explain.Ejson.Arr [ _; _; x ]) -> Explain.Ejson.to_float x
    | _ -> None);
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" bad)
        true
        (Explain.Ejson.parse_opt bad = None))
    [ "{"; "[1,]"; {|{"a":}|}; "tru"; {|"unterminated|}; "1 2" ]

(* ---------------- a small analyzed program ---------------- *)

let analysis =
  lazy
    (let open Benchprogs.Bench.E in
     let app =
       prologue
       @ [
           mov (abs Benchprogs.Bench.input_base) (dreg 4);
           mov (reg 4) (dabs Isa.Memmap.mpy);
           mov (imm 25) (dabs Isa.Memmap.op2);
           mul_reslo 5;
           mov (reg 5) (dabs Benchprogs.Bench.output_base);
         ]
     in
     let program =
       match
         Xbound.of_ast
           {
             Isa.Asm.name = "explain-tiny";
             entry = "start";
             sections =
               [
                 {
                   Isa.Asm.org = Isa.Memmap.rom_base;
                   items = (Isa.Asm.Label "start" :: app) @ Isa.Asm.halt_items;
                 };
               ];
           }
       with
       | Ok p -> p
       | Error e -> Alcotest.fail (Xbound.Error.to_string e)
     in
     match Xbound.analyze ~ctx:(Xbound.Ctx.create ~jobs:1 ()) program with
     | Ok a -> a
     | Error e -> Alcotest.fail (Xbound.Error.to_string e))

(* ---------------- Treestat ---------------- *)

let test_treestat_invariants () =
  let a = Lazy.force analysis in
  let raw =
    match Xbound.exact_detail a with
    | Some raw -> raw
    | None -> Alcotest.fail "expected an exact-tier analysis"
  in
  let ts = Core.Treestat.compute raw.Core.Analyze.tree in
  let st = raw.Core.Analyze.sym_stats in
  Alcotest.(check int) "fork nodes = exploration forks"
    st.Gatesim.Sym.forks ts.Core.Treestat.fork_nodes;
  Alcotest.(check int) "seen edges = dedup hits"
    st.Gatesim.Sym.dedup_hits ts.Core.Treestat.seen_edges;
  Alcotest.(check int) "every path ends or merges"
    st.Gatesim.Sym.paths
    (ts.Core.Treestat.end_paths + ts.Core.Treestat.seen_edges);
  Alcotest.(check int) "cycle count matches exploration"
    st.Gatesim.Sym.total_cycles ts.Core.Treestat.cycles;
  Alcotest.(check int) "density series covers every cycle"
    ts.Core.Treestat.cycles
    (Array.length ts.Core.Treestat.x_density);
  Alcotest.(check int) "density aligns with the flattened trace"
    (Array.length raw.Core.Analyze.flattened)
    (Array.length ts.Core.Treestat.x_density);
  Alcotest.(check bool) "max path bounded by total" true
    (ts.Core.Treestat.max_path_cycles <= ts.Core.Treestat.cycles);
  Array.iter
    (fun d ->
      Alcotest.(check bool) "density in [0,1]" true (d >= 0. && d <= 1.))
    ts.Core.Treestat.x_density;
  let mean, mx = Core.Treestat.density_stats ts in
  Alcotest.(check bool) "mean <= max" true (mean <= mx);
  Alcotest.(check bool) "input X spreads somewhere" true (mx > 0.)

(* ---------------- Report ---------------- *)

let report =
  lazy
    (let a = Lazy.force analysis in
     match Xbound.explain ~top:3 a with
     | r -> r)

let test_attribution_sums () =
  let a = Lazy.force analysis in
  let r = Lazy.force report in
  Alcotest.(check (float 0.)) "peak carried over" (Xbound.peak_power_w a)
    r.Explain.Report.peak_power_w;
  Alcotest.(check bool) "has COIs" true (r.Explain.Report.cois <> []);
  List.iter
    (fun (c : Explain.Report.coi_report) ->
      let sum l = List.fold_left (fun acc (_, w) -> acc +. w) 0. l in
      let within_1pct s =
        Float.abs (s -. c.power_w) <= 0.01 *. Float.abs c.power_w
      in
      Alcotest.(check bool) "modules sum to cycle power" true
        (within_1pct (sum c.modules));
      Alcotest.(check bool) "classes sum to cycle power" true
        (within_1pct (sum c.classes));
      Alcotest.(check bool) "share consistent" true
        (feq ~eps:1e-12 c.share_of_peak (c.power_w /. r.peak_power_w));
      (* descending order *)
      let desc l =
        fst
          (List.fold_left
             (fun (ok, prev) (_, w) -> (ok && w <= prev, w))
             (true, Float.infinity) l)
      in
      Alcotest.(check bool) "modules descending" true (desc c.modules);
      Alcotest.(check bool) "classes descending" true (desc c.classes);
      let top = Explain.Report.top_modules c in
      Alcotest.(check bool) "top-3 prefix" true
        (List.length top <= 3
        && top
           = List.filteri (fun i _ -> i < List.length top) c.modules))
    r.Explain.Report.cois;
  let peak_coi =
    List.find
      (fun (c : Explain.Report.coi_report) ->
        c.cycle_index = r.Explain.Report.peak_index)
      r.Explain.Report.cois
  in
  Alcotest.(check bool) "peak COI attribution = reported peak" true
    (feq ~eps:(0.01 *. r.peak_power_w)
       (List.fold_left (fun acc (_, w) -> acc +. w) 0. peak_coi.modules)
       r.peak_power_w)

let test_report_tree_obs () =
  let a = Lazy.force analysis in
  let r = Lazy.force report in
  let t = r.Explain.Report.tree in
  Alcotest.(check int) "paths" a.Xbound.paths t.Explain.Report.paths;
  Alcotest.(check int) "forks" a.Xbound.forks t.Explain.Report.forks;
  Alcotest.(check int) "dedup" a.Xbound.dedup_hits t.Explain.Report.dedup_hits;
  Alcotest.(check int) "cycles" a.Xbound.total_cycles
    t.Explain.Report.total_cycles;
  Alcotest.(check bool) "density at peak within series" true
    (t.Explain.Report.x_density_at_peak >= 0.
    && t.Explain.Report.x_density_at_peak <= t.Explain.Report.x_density_max)

let test_exporters () =
  let r = Lazy.force report in
  (* JSON: parses with our own parser, carries the headline numbers *)
  let j = Explain.Ejson.parse (Explain.Report.to_json_string r) in
  Alcotest.(check (option string))
    "program" (Some "explain-tiny")
    (Explain.Ejson.string_member "program" j);
  Alcotest.(check (option (float 1e-12)))
    "peak power" (Some r.Explain.Report.peak_power_w)
    (Explain.Ejson.float_member "peak_power_w" j);
  (match Explain.Ejson.(Option.bind (member "cois" j) to_list) with
  | Some l ->
    Alcotest.(check int) "one JSON entry per COI"
      (List.length r.Explain.Report.cois)
      (List.length l)
  | None -> Alcotest.fail "cois missing from JSON");
  (* CSV: header + one row per (COI, module) *)
  let csv = Explain.Report.to_csv r in
  let lines =
    List.filter (fun s -> s <> "") (String.split_on_char '\n' csv)
  in
  let rows =
    List.fold_left
      (fun acc (c : Explain.Report.coi_report) -> acc + List.length c.modules)
      0 r.Explain.Report.cois
  in
  Alcotest.(check int) "csv rows" (1 + rows) (List.length lines);
  Alcotest.(check string) "csv header"
    "program,coi_cycle,power_mw,module,module_mw,share" (List.hd lines);
  (* table: mentions the attribution sum and the tree stats *)
  let table = Explain.Report.to_table r in
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length table
      && (String.sub table i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "table shows sums" true (has "sum");
  Alcotest.(check bool) "table shows gate classes" true (has "gate classes");
  Alcotest.(check bool) "table shows X-density" true (has "X-density")

(* ---------------- Regress ---------------- *)

let base_record =
  {
    Explain.Regress.label = "base";
    timestamp = Some "2026-08-06T00:00:00Z";
    jobs = Some 4;
    results = [ ("a", 100.); ("b", 50.) ];
    phases = [ ("explore", 0.100); ("peak-power", 0.010); ("tiny", 1e-5) ];
    cache_cold_s = Some 1.0;
    cache_warm_s = Some 0.1;
    cache_speedup = Some 10.0;
    parallel_jobs = Some 4;
    parallel_speedup = Some 2.0;
    static_gap_pct = [ ("a", 40.0) ];
  }

let test_regress_detects_injection () =
  let cur =
    {
      base_record with
      Explain.Regress.label = "cur";
      phases = [ ("explore", 0.120); ("peak-power", 0.010); ("tiny", 5e-4) ];
    }
  in
  let deltas ~tol =
    Explain.Regress.compare_records ~tolerance_pct:tol ~base:base_record ~cur
      ()
  in
  let at10 = Explain.Regress.regressions (deltas ~tol:10.) in
  Alcotest.(check (list string))
    "20% slower phase flagged at 10% tolerance" [ "phase_s:explore" ]
    (List.map (fun (d : Explain.Regress.delta) -> d.metric) at10);
  Alcotest.(check bool) "positive pct = slow direction" true
    (match at10 with [ d ] -> feq ~eps:1e-6 d.pct 20. | _ -> false);
  Alcotest.(check (list string))
    "within 25% tolerance: clean" []
    (List.map
       (fun (d : Explain.Regress.delta) -> d.metric)
       (Explain.Regress.regressions (deltas ~tol:25.)));
  (* sub-millisecond phases are noise, never compared *)
  Alcotest.(check bool) "min_phase_s drops noise phases" true
    (not
       (List.exists
          (fun (d : Explain.Regress.delta) -> d.metric = "phase_s:tiny")
          (deltas ~tol:10.)))

let test_regress_direction () =
  (* faster runs and a higher speedup must not be regressions; a lower
     speedup counts in the slow direction *)
  let cur =
    {
      base_record with
      Explain.Regress.label = "cur";
      results = [ ("a", 50.); ("b", 50.) ];
      cache_speedup = Some 5.0;
      parallel_speedup = Some 1.0;
    }
  in
  let deltas =
    Explain.Regress.compare_records ~tolerance_pct:25. ~base:base_record ~cur
      ()
  in
  let find m =
    List.find (fun (d : Explain.Regress.delta) -> d.metric = m) deltas
  in
  Alcotest.(check bool) "2x faster is negative pct" true
    ((find "ns_per_run:a").pct < 0.);
  let sp = find "cache.speedup" in
  Alcotest.(check bool) "halved speedup is positive pct" true (sp.pct > 0.);
  Alcotest.(check bool) "and flagged" true sp.regression;
  let ps = find "parallel.speedup" in
  Alcotest.(check bool) "halved parallel speedup flagged" true ps.regression;
  (* a record measured at a different -jN is not comparable *)
  let other_jobs =
    Explain.Regress.compare_records ~tolerance_pct:25. ~base:base_record
      ~cur:{ cur with Explain.Regress.parallel_jobs = Some 8 }
      ()
  in
  Alcotest.(check bool) "different parallel_jobs: not compared" true
    (not
       (List.exists
          (fun (d : Explain.Regress.delta) -> d.metric = "parallel.speedup")
          other_jobs))

let test_regress_gated () =
  (* two regressions: one on a gated benchmark row, one elsewhere — only
     the gated one survives the filter *)
  let base =
    {
      base_record with
      results =
        [ ("symbolic-analysis-tea8-j1", 100.); ("cpu-elaboration", 100.) ];
    }
  in
  let cur =
    {
      base with
      Explain.Regress.label = "cur";
      results =
        [ ("symbolic-analysis-tea8-j1", 200.); ("cpu-elaboration", 200.) ];
    }
  in
  let deltas =
    Explain.Regress.compare_records ~tolerance_pct:25. ~base ~cur ()
  in
  let metrics ds =
    List.map (fun (d : Explain.Regress.delta) -> d.metric) ds
  in
  Alcotest.(check (list string))
    "gate keeps only matching regressions"
    [ "ns_per_run:symbolic-analysis-tea8-j1" ]
    (metrics
       (Explain.Regress.gated
          ~gates:[ "symbolic-analysis"; "concrete-100-cycles" ]
          deltas));
  Alcotest.(check (list string))
    "empty gate list means everything gates"
    (metrics (Explain.Regress.regressions deltas))
    (metrics (Explain.Regress.gated ~gates:[] deltas));
  Alcotest.(check (list string))
    "non-matching gate passes everything" []
    (metrics (Explain.Regress.gated ~gates:[ "no-such-row" ] deltas))

let test_regress_history_roundtrip () =
  let line =
    Explain.Ejson.to_string (Explain.Regress.to_history_json base_record)
  in
  Alcotest.(check bool) "one line" false (String.contains line '\n');
  match Explain.Regress.of_json ~label:"rt" (Explain.Ejson.parse line) with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check (option string)) "timestamp survives"
      base_record.Explain.Regress.timestamp r.Explain.Regress.timestamp;
    Alcotest.(check (list (pair string (float 1e-9)))) "results survive"
      base_record.Explain.Regress.results r.Explain.Regress.results;
    Alcotest.(check (list (pair string (float 1e-9)))) "phases survive"
      base_record.Explain.Regress.phases r.Explain.Regress.phases;
    Alcotest.(check (option (float 1e-9))) "speedup survives"
      base_record.Explain.Regress.cache_speedup
      r.Explain.Regress.cache_speedup;
    Alcotest.(check (option int)) "parallel_jobs survives"
      base_record.Explain.Regress.parallel_jobs
      r.Explain.Regress.parallel_jobs;
    Alcotest.(check (option (float 1e-9))) "parallel speedup survives"
      base_record.Explain.Regress.parallel_speedup
      r.Explain.Regress.parallel_speedup

let () =
  Alcotest.run "explain"
    [
      ( "ejson",
        [
          Alcotest.test_case "round-trip" `Quick test_ejson_roundtrip;
          Alcotest.test_case "parse" `Quick test_ejson_parse;
        ] );
      ( "treestat",
        [ Alcotest.test_case "invariants" `Quick test_treestat_invariants ] );
      ( "report",
        [
          Alcotest.test_case "attribution sums" `Quick test_attribution_sums;
          Alcotest.test_case "tree observability" `Quick test_report_tree_obs;
          Alcotest.test_case "exporters" `Quick test_exporters;
        ] );
      ( "regress",
        [
          Alcotest.test_case "detects injected regression" `Quick
            test_regress_detects_injection;
          Alcotest.test_case "direction normalization" `Quick
            test_regress_direction;
          Alcotest.test_case "gated filtering" `Quick test_regress_gated;
          Alcotest.test_case "history round-trip" `Quick
            test_regress_history_roundtrip;
        ] );
    ]
