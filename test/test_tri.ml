(* Unit and property tests for three-valued logic.

   The property that underpins the whole technique: every three-valued
   operation is a sound abstraction of the two-valued one. For any
   concretization of the X bits of the inputs, the concrete result is a
   concretization of the three-valued result. *)

let trit = Alcotest.testable Tri.pp Tri.equal

let word =
  Alcotest.testable Tri.Word.pp Tri.Word.equal

(* --- scalar connective truth tables --- *)

let test_not () =
  Alcotest.check trit "not 0" Tri.One (Tri.lnot Tri.Zero);
  Alcotest.check trit "not 1" Tri.Zero (Tri.lnot Tri.One);
  Alcotest.check trit "not x" Tri.X (Tri.lnot Tri.X)

let test_and () =
  let open Tri in
  Alcotest.check trit "0&x" Zero (Zero &&& X);
  Alcotest.check trit "x&0" Zero (X &&& Zero);
  Alcotest.check trit "1&x" X (One &&& X);
  Alcotest.check trit "x&x" X (X &&& X);
  Alcotest.check trit "1&1" One (One &&& One)

let test_or () =
  let open Tri in
  Alcotest.check trit "1|x" One (One ||| X);
  Alcotest.check trit "x|1" One (X ||| One);
  Alcotest.check trit "0|x" X (Zero ||| X);
  Alcotest.check trit "0|0" Zero (Zero ||| Zero)

let test_xor () =
  let open Tri in
  Alcotest.check trit "x^0" X (xor X Zero);
  Alcotest.check trit "x^1" X (xor X One);
  Alcotest.check trit "1^1" Zero (xor One One);
  Alcotest.check trit "1^0" One (xor One Zero)

let test_mux () =
  let open Tri in
  Alcotest.check trit "sel=0" Zero (mux Zero Zero One);
  Alcotest.check trit "sel=1" One (mux One Zero One);
  Alcotest.check trit "sel=x same" One (mux X One One);
  Alcotest.check trit "sel=x diff" X (mux X Zero One);
  Alcotest.check trit "sel=x x-branch" X (mux X X X)

let test_char_roundtrip () =
  List.iter
    (fun t -> Alcotest.check trit "roundtrip" t (Tri.of_char (Tri.to_char t)))
    [ Tri.Zero; Tri.One; Tri.X ]

let test_int_encoding_matches_variant () =
  let all = [ Tri.Zero; Tri.One; Tri.X ] in
  List.iter
    (fun a ->
      Alcotest.check trit "not"
        (Tri.lnot a)
        (Tri.of_int (Tri.I.lnot (Tri.to_int a)));
      List.iter
        (fun b ->
          let open Tri in
          Alcotest.check trit "and" (a &&& b)
            (of_int (I.land_ (to_int a) (to_int b)));
          Alcotest.check trit "or" (a ||| b)
            (of_int (I.lor_ (to_int a) (to_int b)));
          Alcotest.check trit "xor" (xor a b)
            (of_int (I.lxor_ (to_int a) (to_int b)));
          Alcotest.check trit "nand" (lnand a b)
            (of_int (I.lnand (to_int a) (to_int b)));
          Alcotest.check trit "nor" (lnor a b)
            (of_int (I.lnor (to_int a) (to_int b)));
          Alcotest.check trit "xnor" (lxnor a b)
            (of_int (I.lxnor (to_int a) (to_int b)));
          List.iter
            (fun s ->
              Alcotest.check trit "mux" (mux s a b)
                (of_int (I.mux (to_int s) (to_int a) (to_int b))))
            all)
        all)
    all

(* --- word unit tests --- *)

let w16 n = Tri.Word.of_int ~width:16 n

let m_lo v = v land 0xFFFF

let test_word_basic () =
  Alcotest.check word "add" (w16 5) (Tri.Word.add (w16 2) (w16 3));
  Alcotest.check word "sub wrap" (w16 0xFFFF) (Tri.Word.sub (w16 0) (w16 1));
  Alcotest.check word "mul" (w16 (m_lo (1234 * 567)))
    (Tri.Word.mul (w16 1234) (w16 567))

let test_word_x_bits () =
  let x = Tri.Word.all_x ~width:16 in
  Alcotest.(check bool) "all x has x" true (Tri.Word.has_x x);
  Alcotest.(check (option int)) "to_int of x" None (Tri.Word.to_int x);
  (* adding a known zero keeps X *)
  Alcotest.check word "x + 0" x (Tri.Word.add x (w16 0));
  (* X * 0 is known 0: no partial products (paper Section 5 discussion) *)
  Alcotest.check word "x * 0"
    (Tri.Word.of_int ~width:32 0)
    (Tri.Word.mul_full x (w16 0))

let test_word_merge () =
  let a = w16 0b1010 and b = w16 0b1001 in
  let m = Tri.Word.merge a b in
  Alcotest.check trit "bit0 differs" Tri.X (Tri.Word.bit m 0);
  Alcotest.check trit "bit1 differs" Tri.X (Tri.Word.bit m 1);
  Alcotest.check trit "bit3 same" Tri.One (Tri.Word.bit m 3);
  Alcotest.check trit "bit4 same" Tri.Zero (Tri.Word.bit m 4)

let test_word_shifts () =
  Alcotest.check word "sll" (w16 0xFF00)
    (Tri.Word.shift_left (w16 0x0FF0) 4);
  Alcotest.check word "srl" (w16 0x00FF)
    (Tri.Word.shift_right_logical (w16 0xFF00) 8);
  Alcotest.check word "sra neg" (w16 0xFF80)
    (Tri.Word.shift_right_arith (w16 0xF000) 5);
  Alcotest.check word "sra pos" (w16 0x0380)
    (Tri.Word.shift_right_arith (w16 0x7000) 5)

let test_word_compare () =
  Alcotest.check trit "eq yes" Tri.One (Tri.Word.eq (w16 42) (w16 42));
  Alcotest.check trit "eq no" Tri.Zero (Tri.Word.eq (w16 42) (w16 43));
  Alcotest.check trit "ltu" Tri.One (Tri.Word.lt_unsigned (w16 1) (w16 2));
  Alcotest.check trit "lts neg" Tri.One
    (Tri.Word.lt_signed (w16 0xFFFF) (w16 0));
  Alcotest.check trit "lts pos" Tri.Zero (Tri.Word.lt_signed (w16 5) (w16 0))

(* --- soundness properties --- *)

(* Generator of a 16-bit word with some X bits plus one concretization. *)
let gen_word_and_concrete =
  QCheck2.Gen.(
    let* v = int_range 0 0xFFFF in
    let* xmask = int_range 0 0xFFFF in
    let* fill = int_range 0 0xFFFF in
    let w = Tri.Word.make ~width:16 ~v ~x:xmask in
    (* concretization: known bits from v, unknown bits from fill *)
    let c = (v land lnot xmask land 0xFFFF) lor (fill land xmask) in
    return (w, c))

let refines ~concrete w =
  (* concrete value is one of the word's concretizations *)
  let ok = ref true in
  for i = 0 to 15 do
    match Tri.Word.bit w i with
    | Tri.X -> ()
    | Tri.One -> if (concrete lsr i) land 1 <> 1 then ok := false
    | Tri.Zero -> if (concrete lsr i) land 1 <> 0 then ok := false
  done;
  !ok

let trit_refines ~concrete t =
  match t with
  | Tri.X -> true
  | Tri.One -> concrete
  | Tri.Zero -> not concrete

let binop_sound name abstract concrete_op =
  QCheck2.Test.make ~count:500 ~name
    QCheck2.Gen.(pair gen_word_and_concrete gen_word_and_concrete)
    (fun ((wa, ca), (wb, cb)) ->
      refines ~concrete:(concrete_op ca cb land 0xFFFF) (abstract wa wb))

let cmp_sound name abstract concrete_op =
  QCheck2.Test.make ~count:500 ~name
    QCheck2.Gen.(pair gen_word_and_concrete gen_word_and_concrete)
    (fun ((wa, ca), (wb, cb)) ->
      trit_refines ~concrete:(concrete_op ca cb) (abstract wa wb))

let s16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let properties =
  [
    binop_sound "add sound" Tri.Word.add (fun a b -> a + b);
    binop_sound "sub sound" Tri.Word.sub (fun a b -> a - b);
    binop_sound "mul sound" Tri.Word.mul (fun a b -> a * b);
    binop_sound "and sound" Tri.Word.logand (fun a b -> a land b);
    binop_sound "or sound" Tri.Word.logor (fun a b -> a lor b);
    binop_sound "xor sound" Tri.Word.logxor (fun a b -> a lxor b);
    cmp_sound "eq sound" Tri.Word.eq (fun a b -> a = b);
    cmp_sound "ltu sound" Tri.Word.lt_unsigned (fun a b -> a < b);
    cmp_sound "lts sound" Tri.Word.lt_signed (fun a b -> s16 a < s16 b);
    QCheck2.Test.make ~count:500 ~name:"lnot sound" gen_word_and_concrete
      (fun (w, c) ->
        refines ~concrete:(lnot c land 0xFFFF) (Tri.Word.lnot w));
    QCheck2.Test.make ~count:500 ~name:"mul_full sound" gen_word_and_concrete
      (fun (w, c) ->
        let b = Tri.Word.of_int ~width:16 0xBEEF in
        let full = Tri.Word.mul_full w b in
        let conc = c * 0xBEEF in
        let ok = ref true in
        for i = 0 to 31 do
          match Tri.Word.bit full i with
          | Tri.X -> ()
          | Tri.One -> if (conc lsr i) land 1 <> 1 then ok := false
          | Tri.Zero -> if (conc lsr i) land 1 <> 0 then ok := false
        done;
        !ok);
    QCheck2.Test.make ~count:500 ~name:"merge is upper bound"
      QCheck2.Gen.(pair gen_word_and_concrete gen_word_and_concrete)
      (fun ((wa, ca), (wb, _)) ->
        let m = Tri.Word.merge wa wb in
        (* anything refining wa also refines the merge *)
        refines ~concrete:ca m);
    QCheck2.Test.make ~count:500 ~name:"trits roundtrip" gen_word_and_concrete
      (fun (w, _) -> Tri.Word.equal w (Tri.Word.of_trits (Tri.Word.to_trits w)));
    QCheck2.Test.make ~count:500 ~name:"shift sound"
      QCheck2.Gen.(pair gen_word_and_concrete (int_range 0 15))
      (fun ((w, c), n) ->
        refines ~concrete:((c lsl n) land 0xFFFF) (Tri.Word.shift_left w n)
        && refines ~concrete:(c lsr n) (Tri.Word.shift_right_logical w n)
        && refines
             ~concrete:(s16 c asr n land 0xFFFF)
             (Tri.Word.shift_right_arith w n));
  ]

(* --- lane-parallel connectives: exhaustive against the scalar tables ---

   Every lane-word operation must compute the Tri.I truth table
   independently in each bit position. We lay all code combinations out
   across the 32 lanes of one word (9 or 27 combos, repeated), so a
   single application checks every table entry in every alignment. *)

let lanes_word codes =
  (* codes.(l) = Tri.I code of lane l *)
  let v = ref 0 and x = ref 0 in
  Array.iteri
    (fun l c ->
      if c land 1 = 1 then v := !v lor (1 lsl l);
      if c lsr 1 = 1 then x := !x lor (1 lsl l))
    codes;
  (!v, !x)

let lane_code v x l = ((v lsr l) land 1) lor (((x lsr l) land 1) lsl 1)

let test_lanes_binary () =
  let ops =
    [
      ("and", Tri.Lanes.and_, Tri.I.land_);
      ("or", Tri.Lanes.or_, Tri.I.lor_);
      ("nand", Tri.Lanes.nand, Tri.I.lnand);
      ("nor", Tri.Lanes.nor, Tri.I.lnor);
      ("xor", Tri.Lanes.xor_, Tri.I.lxor_);
      ("xnor", Tri.Lanes.xnor, Tri.I.lxnor);
    ]
  in
  (* all 9 (a, b) code pairs spread across the 32 lanes *)
  let a_codes = Array.init 32 (fun l -> l mod 9 / 3) in
  let b_codes = Array.init 32 (fun l -> l mod 9 mod 3) in
  let av, ax = lanes_word a_codes and bv, bx = lanes_word b_codes in
  List.iter
    (fun (name, lanes_op, scalar_op) ->
      let rv, rx = lanes_op av ax bv bx in
      for l = 0 to 31 do
        Alcotest.(check int)
          (Printf.sprintf "%s lane %d" name l)
          (scalar_op a_codes.(l) b_codes.(l))
          (lane_code rv rx l)
      done)
    ops

let test_lanes_not () =
  let codes = Array.init 32 (fun l -> l mod 3) in
  let v, x = lanes_word codes in
  let rv, rx = Tri.Lanes.not_ v x in
  for l = 0 to 31 do
    Alcotest.(check int)
      (Printf.sprintf "not lane %d" l)
      (Tri.I.lnot codes.(l))
      (lane_code rv rx l)
  done

let test_lanes_mux () =
  (* all 27 (sel, a, b) combinations, spread over lanes in two layouts *)
  List.iter
    (fun offset ->
      let s_codes = Array.init 32 (fun l -> (l + offset) mod 27 / 9) in
      let a_codes = Array.init 32 (fun l -> (l + offset) mod 27 mod 9 / 3) in
      let b_codes = Array.init 32 (fun l -> (l + offset) mod 27 mod 3) in
      let sv, sx = lanes_word s_codes in
      let av, ax = lanes_word a_codes in
      let bv, bx = lanes_word b_codes in
      let rv, rx = Tri.Lanes.mux sv sx av ax bv bx in
      for l = 0 to 31 do
        Alcotest.(check int)
          (Printf.sprintf "mux lane %d (offset %d)" l offset)
          (Tri.I.mux s_codes.(l) a_codes.(l) b_codes.(l))
          (lane_code rv rx l)
      done)
    [ 0; 5; 13 ]

let test_lanes_dffe () =
  (* reference semantics: en=0 hold, en=1 load, en=X keep only if d=q *)
  let scalar_dffe en d q =
    if en = 0 then q else if en = 1 then d else if d = q then q else Tri.I.x
  in
  List.iter
    (fun offset ->
      let e_codes = Array.init 32 (fun l -> (l + offset) mod 27 / 9) in
      let d_codes = Array.init 32 (fun l -> (l + offset) mod 27 mod 9 / 3) in
      let q_codes = Array.init 32 (fun l -> (l + offset) mod 27 mod 3) in
      let ev, ex = lanes_word e_codes in
      let dv, dx = lanes_word d_codes in
      let qv, qx = lanes_word q_codes in
      let rv, rx = Tri.Lanes.dffe_next ev ex dv dx qv qx in
      for l = 0 to 31 do
        Alcotest.(check int)
          (Printf.sprintf "dffe lane %d (offset %d)" l offset)
          (scalar_dffe e_codes.(l) d_codes.(l) q_codes.(l))
          (lane_code rv rx l)
      done)
    [ 0; 7; 19 ]

let () =
  Alcotest.run "tri"
    [
      ( "scalar",
        [
          Alcotest.test_case "not" `Quick test_not;
          Alcotest.test_case "and" `Quick test_and;
          Alcotest.test_case "or" `Quick test_or;
          Alcotest.test_case "xor" `Quick test_xor;
          Alcotest.test_case "mux" `Quick test_mux;
          Alcotest.test_case "char roundtrip" `Quick test_char_roundtrip;
          Alcotest.test_case "int encoding" `Quick
            test_int_encoding_matches_variant;
        ] );
      ( "word",
        [
          Alcotest.test_case "basic" `Quick test_word_basic;
          Alcotest.test_case "x bits" `Quick test_word_x_bits;
          Alcotest.test_case "merge" `Quick test_word_merge;
          Alcotest.test_case "shifts" `Quick test_word_shifts;
          Alcotest.test_case "compare" `Quick test_word_compare;
        ] );
      ( "lanes",
        [
          Alcotest.test_case "binary connectives" `Quick test_lanes_binary;
          Alcotest.test_case "not" `Quick test_lanes_not;
          Alcotest.test_case "mux" `Quick test_lanes_mux;
          Alcotest.test_case "dffe next-state" `Quick test_lanes_dffe;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest properties);
    ]
