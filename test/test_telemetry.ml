(* Telemetry: span nesting (single- and multi-domain), deterministic
   counter sums, Chrome export well-formedness, and the facade-level
   guarantee that tracing never perturbs the computed bounds. *)

let sp name f = Telemetry.span name f

(* ---------------- span nesting ---------------- *)

let test_span_nesting () =
  let t = Telemetry.create () in
  Telemetry.with_ambient t (fun () ->
      sp "outer" (fun () ->
          sp "inner" (fun () -> ());
          sp "inner2" (fun () -> ())));
  let evs = Telemetry.events t in
  Alcotest.(check int) "three spans" 3 (List.length evs);
  let find n = List.find (fun (e : Telemetry.event) -> e.name = n) evs in
  let outer = find "outer" and inner = find "inner" and inner2 = find "inner2" in
  Alcotest.(check int) "outer depth" 1 outer.Telemetry.depth;
  Alcotest.(check int) "inner depth" 2 inner.Telemetry.depth;
  Alcotest.(check int) "inner2 depth" 2 inner2.Telemetry.depth;
  (* containment on the clock: children start no earlier and end no
     later than the parent *)
  let ends (e : Telemetry.event) = Int64.add e.ts_ns e.dur_ns in
  List.iter
    (fun (child : Telemetry.event) ->
      Alcotest.(check bool) "child starts inside parent" true
        (child.ts_ns >= outer.ts_ns);
      Alcotest.(check bool) "child ends inside parent" true
        (ends child <= ends outer))
    [ inner; inner2 ]

let test_span_exception () =
  let t = Telemetry.create () in
  (try
     Telemetry.with_ambient t (fun () ->
         sp "raises" (fun () -> failwith "boom"))
   with Failure _ -> ());
  match Telemetry.events t with
  | [ e ] ->
    Alcotest.(check string) "span recorded on exception" "raises"
      e.Telemetry.name;
    Alcotest.(check int) "depth unwound" 1 e.Telemetry.depth
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_spans_across_domains () =
  let t = Telemetry.create () in
  let n_domains = 3 in
  Telemetry.with_ambient t (fun () ->
      let doms =
        List.init n_domains (fun i ->
            Domain.spawn (fun () ->
                sp (Printf.sprintf "outer-%d" i) (fun () ->
                    sp (Printf.sprintf "inner-%d" i) (fun () -> ()))))
      in
      List.iter Domain.join doms);
  let evs = Telemetry.events t in
  Alcotest.(check int) "two spans per domain" (2 * n_domains)
    (List.length evs);
  let tids =
    List.sort_uniq compare (List.map (fun (e : Telemetry.event) -> e.tid) evs)
  in
  Alcotest.(check int) "one tid per domain" n_domains (List.length tids);
  (* nesting is per domain: each tid has exactly one depth-1 and one
     depth-2 span, and they agree on the index suffix *)
  List.iter
    (fun tid ->
      let mine =
        List.filter (fun (e : Telemetry.event) -> e.tid = tid) evs
      in
      let at d =
        List.find (fun (e : Telemetry.event) -> e.depth = d) mine
      in
      let outer = at 1 and inner = at 2 in
      let suffix (e : Telemetry.event) =
        List.nth (String.split_on_char '-' e.name) 1
      in
      Alcotest.(check string) "matched pair" (suffix outer) (suffix inner))
    tids

(* ---------------- counters ---------------- *)

let test_counters_sum () =
  let c = Telemetry.Counter.make "test.sum" in
  let t = Telemetry.create () in
  let n_domains = 4 and per_domain = 10_000 in
  let v0 = Telemetry.Counter.value c in
  Telemetry.with_ambient t (fun () ->
      let doms =
        List.init n_domains (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per_domain do
                  Telemetry.Counter.incr c
                done))
      in
      List.iter Domain.join doms);
  Alcotest.(check int) "no lost increments" (n_domains * per_domain)
    (Telemetry.Counter.value c - v0)

let test_disabled_is_noop () =
  Alcotest.(check (option unit)) "no ambient sink"
    None
    (Option.map ignore (Telemetry.ambient ()));
  let c = Telemetry.Counter.make "test.disabled" in
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 41;
  Alcotest.(check int) "counter frozen without sink" 0
    (Telemetry.Counter.value c);
  let h = Telemetry.Histogram.make "test.disabled_h" in
  Telemetry.Histogram.observe h 123L;
  let count, _, _ = Telemetry.Histogram.totals h in
  Alcotest.(check int) "histogram frozen without sink" 0 count;
  Alcotest.(check int) "span still runs the body" 7 (sp "off" (fun () -> 7))

let test_diff () =
  Alcotest.(check (list (pair string int)))
    "per-name deltas, zeros dropped"
    [ ("a", 2); ("c", 4) ]
    (Telemetry.diff
       ~before:[ ("a", 1); ("b", 5) ]
       ~after:[ ("a", 3); ("b", 5); ("c", 4) ])

let test_histogram () =
  let h = Telemetry.Histogram.make "test.hist" in
  let t = Telemetry.create () in
  Telemetry.with_ambient t (fun () ->
      List.iter (Telemetry.Histogram.observe h) [ 1L; 2L; 3L; 1000L ]);
  let count, sum, mx = Telemetry.Histogram.totals h in
  Alcotest.(check int) "count" 4 count;
  Alcotest.(check int64) "sum" 1006L sum;
  Alcotest.(check int64) "max" 1000L mx;
  (* Buckets are listed by inclusive upper bound: 1 -> [0,1]; 2,3 ->
     [2,3]; 1000 -> [512,1023]. *)
  Alcotest.(check (list (pair int64 int)))
    "log2 buckets"
    [ (1L, 1); (3L, 2); (1023L, 1) ]
    (Telemetry.Histogram.buckets h)

(* The published contract: each (upper, n) row covers observations
   <= upper (and > the previous row's upper), and percentile reports
   exactly these upper bounds (clamped to the recorded max). Pin the
   two against each other so neither can drift alone. *)
let test_histogram_bucket_bounds () =
  let h = Telemetry.Histogram.make "test.hist_bounds" in
  let t = Telemetry.create () in
  let obs = [ 0L; 1L; 2L; 4L; 7L; 8L; 100L; 4096L ] in
  Telemetry.with_ambient t (fun () ->
      List.iter (Telemetry.Histogram.observe h) obs);
  let buckets = Telemetry.Histogram.buckets h in
  Alcotest.(check (list (pair int64 int)))
    "upper-bound rows"
    [ (1L, 2); (3L, 1); (7L, 2); (15L, 1); (127L, 1); (8191L, 1) ]
    buckets;
  (* every observation is covered by exactly the row whose upper bound
     is the least one >= it *)
  List.iter
    (fun v ->
      match List.find_opt (fun (upper, _) -> upper >= v) buckets with
      | None -> Alcotest.failf "no bucket covers %Ld" v
      | Some _ -> ())
    obs;
  Alcotest.(check int) "rows account for every observation"
    (List.length obs)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 buckets);
  (* percentile never invents values: every quantile is a bucket upper
     bound or the recorded max *)
  let uppers = List.map fst buckets in
  List.iter
    (fun q ->
      let p = Telemetry.Histogram.percentile h q in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f is a bucket upper bound or the max"
           (q *. 100.))
        true
        (List.mem p uppers || p = 4096L))
    [ 0.; 0.25; 0.5; 0.9; 0.99; 1. ]

(* ---------------- gauges ---------------- *)

let test_gauge () =
  let g = Telemetry.Gauge.make "test.gauge" in
  Alcotest.(check int) "starts at zero" 0 (Telemetry.Gauge.value g);
  (* gauges track instantaneous state, so they move without a sink *)
  Telemetry.Gauge.set g 5;
  Telemetry.Gauge.add g 2;
  Telemetry.Gauge.add g (-3);
  Alcotest.(check int) "set/add" 4 (Telemetry.Gauge.value g);
  Alcotest.(check bool) "interned" true
    (Telemetry.Gauge.make "test.gauge" == g);
  Alcotest.(check (option int)) "listed" (Some 4)
    (List.assoc_opt "test.gauge" (Telemetry.gauges ()))

let test_histogram_percentile () =
  let h = Telemetry.Histogram.make "test.hist_pct" in
  Alcotest.(check int64) "empty histogram" 0L
    (Telemetry.Histogram.percentile h 0.5);
  let t = Telemetry.create () in
  Telemetry.with_ambient t (fun () ->
      List.iter (Telemetry.Histogram.observe h) [ 1L; 2L; 3L; 1000L ]);
  (* p50 covers the second observation: bucket [2,4) upper edge = 3 *)
  Alcotest.(check int64) "p50 upper bound" 3L
    (Telemetry.Histogram.percentile h 0.5);
  (* p99 lands in the top bucket, clamped to the recorded max *)
  Alcotest.(check int64) "p99 clamps to max" 1000L
    (Telemetry.Histogram.percentile h 0.99);
  Alcotest.(check int64) "p0 still covers one observation" 1L
    (Telemetry.Histogram.percentile h 0.);
  let mono =
    List.for_all
      (fun (lo, hi) ->
        Telemetry.Histogram.percentile h lo
        <= Telemetry.Histogram.percentile h hi)
      [ (0., 0.25); (0.25, 0.5); (0.5, 0.99); (0.99, 1.) ]
  in
  Alcotest.(check bool) "monotone in q" true mono;
  (* and the human summary surfaces them *)
  let s = Telemetry.stats_summary t in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "summary shows p50" true (contains "p50");
  Alcotest.(check bool) "summary shows p99" true (contains "p99")

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let count_sub ~sub s =
  let n = String.length sub in
  let rec go acc i =
    if i + n > String.length s then acc
    else go (if String.sub s i n = sub then acc + 1 else acc) (i + 1)
  in
  go 0 0

(* ---------------- request scopes ---------------- *)

(* A scope sees exactly the counter increments and spans made while it
   is entered on the executing thread — process-wide aggregates keep
   accumulating as before. *)
let test_scope_tally () =
  let c = Telemetry.Counter.make "test.scope_tally" in
  let t = Telemetry.create () in
  Telemetry.with_ambient t (fun () ->
      Telemetry.Counter.add c 5;
      let s1 = Telemetry.Scope.create ~id:"r1" in
      let s2 = Telemetry.Scope.create ~id:"r2" in
      Telemetry.Scope.with_scope s1 (fun () ->
          Telemetry.Counter.add c 3;
          Telemetry.span ~cat:"phase" "work" (fun () ->
              Telemetry.Counter.incr c));
      Telemetry.Scope.with_scope s2 (fun () -> Telemetry.Counter.add c 10);
      Telemetry.Counter.add c 100;
      Alcotest.(check string) "id" "r1" (Telemetry.Scope.id s1);
      Alcotest.(check (list (pair string int)))
        "s1 sees its own increments only"
        [ ("test.scope_tally", 4) ]
        (Telemetry.Scope.counter_deltas s1);
      Alcotest.(check (list (pair string int)))
        "s2 likewise"
        [ ("test.scope_tally", 10) ]
        (Telemetry.Scope.counter_deltas s2);
      Alcotest.(check int) "process-wide total unaffected" 119
        (Telemetry.Counter.value c);
      Alcotest.(check int) "s1 recorded its span" 1
        (List.length (Telemetry.Scope.events s1));
      match Telemetry.Scope.phase_totals s1 with
      | [ ("work", secs) ] ->
        Alcotest.(check bool) "phase total plausible" true (secs >= 0.)
      | l -> Alcotest.failf "expected one phase, got %d" (List.length l))

let test_scope_not_active_outside () =
  let t = Telemetry.create () in
  Telemetry.with_ambient t (fun () ->
      (match Telemetry.Scope.active () with
      | None -> ()
      | Some _ -> Alcotest.fail "no scope expected outside with_scope");
      let s = Telemetry.Scope.create ~id:"r9" in
      Telemetry.Scope.with_scope s (fun () ->
          match Telemetry.Scope.active () with
          | Some s' -> Alcotest.(check string) "active" "r9" (Telemetry.Scope.id s')
          | None -> Alcotest.fail "scope should be active");
      match Telemetry.Scope.active () with
      | None -> ()
      | Some _ -> Alcotest.fail "scope leaked past with_scope")

(* ---------------- snapshots ---------------- *)

let test_snapshot_take_and_diff () =
  let c = Telemetry.Counter.make "test.snap_ctr" in
  let h = Telemetry.Histogram.make "test.snap_hist_ns" in
  let g = Telemetry.Gauge.make "test.snap_gauge" in
  let t = Telemetry.create () in
  Telemetry.with_ambient t (fun () ->
      Telemetry.Counter.add c 2;
      Telemetry.Histogram.observe h 100L;
      let before = Telemetry.Snapshot.take () in
      Telemetry.Counter.add c 3;
      Telemetry.Histogram.observe h 5000L;
      Telemetry.Gauge.set g 7;
      let after = Telemetry.Snapshot.take () in
      Alcotest.(check (option int)) "cumulative counter" (Some 5)
        (List.assoc_opt "test.snap_ctr" after.Telemetry.Snapshot.counters);
      Alcotest.(check bool) "uptime positive" true
        (after.Telemetry.Snapshot.uptime_s > 0.);
      let d = Telemetry.Snapshot.diff ~before ~after in
      Alcotest.(check (option int)) "windowed counter delta" (Some 3)
        (List.assoc_opt "test.snap_ctr" d.Telemetry.Snapshot.counters);
      Alcotest.(check (option int)) "gauge is instantaneous" (Some 7)
        (List.assoc_opt "test.snap_gauge" d.Telemetry.Snapshot.gauges);
      let histo (s : Telemetry.Snapshot.t) =
        List.find
          (fun (x : Telemetry.Snapshot.histo) -> x.hname = "test.snap_hist_ns")
          s.Telemetry.Snapshot.histograms
      in
      let hb = histo after and hd = histo d in
      Alcotest.(check int) "cumulative count" 2 hb.Telemetry.Snapshot.count;
      Alcotest.(check int) "windowed count" 1 hd.Telemetry.Snapshot.count;
      (* the window's only observation is 5000: its percentiles must
         come from the 5000 bucket, not the cumulative distribution *)
      Alcotest.(check bool) "windowed p50 covers 5000" true
        (hd.Telemetry.Snapshot.p50 >= 4096L))

(* Satellite of the exposition tier: every line of the Prometheus text
   format is either a comment or [name{labels} value], histogram series
   are cumulative and capped by +Inf == _count, and counters carry the
   _total suffix. *)
let check_prometheus_lines body =
  let is_metric_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let lines = String.split_on_char '\n' body in
  List.iter
    (fun line ->
      if line <> "" && not (String.starts_with ~prefix:"#" line) then begin
        (* metric name: leading run of metric chars, nonempty, not
           starting with a digit *)
        let n = String.length line in
        let rec name_end i =
          if i < n && is_metric_char line.[i] then name_end (i + 1) else i
        in
        let e = name_end 0 in
        if e = 0 || (line.[0] >= '0' && line.[0] <= '9') then
          Alcotest.failf "bad metric name in %S" line;
        (* optional {labels}, then exactly one space and a float *)
        let rest =
          if e < n && line.[e] = '{' then
            match String.index_from_opt line e '}' with
            | Some close -> String.sub line (close + 1) (n - close - 1)
            | None -> Alcotest.failf "unclosed label set in %S" line
          else String.sub line e (n - e)
        in
        match String.split_on_char ' ' rest with
        | [ ""; v ] -> (
          match float_of_string_opt v with
          | Some _ -> ()
          | None ->
            if v <> "+Inf" then Alcotest.failf "bad sample value in %S" line)
        | _ -> Alcotest.failf "expected 'name value' in %S" line
      end)
    lines

let test_snapshot_prometheus () =
  let c = Telemetry.Counter.make "test.prom_ctr" in
  let h = Telemetry.Histogram.make "test.prom_hist_ns" in
  let t = Telemetry.create () in
  Telemetry.with_ambient t (fun () ->
      Telemetry.Counter.add c 4;
      List.iter (Telemetry.Histogram.observe h) [ 10L; 100L; 1000L ];
      let s = Telemetry.Snapshot.take () in
      let body = Telemetry.Snapshot.to_prometheus s in
      check_prometheus_lines body;
      Alcotest.(check bool) "counter total" true
        (contains ~sub:"xbound_test_prom_ctr_total 4" body);
      Alcotest.(check bool) "TYPE for the counter" true
        (contains ~sub:"# TYPE xbound_test_prom_ctr_total counter" body);
      (* _ns histograms export as _seconds with cumulative buckets *)
      Alcotest.(check bool) "histogram TYPE" true
        (contains ~sub:"# TYPE xbound_test_prom_hist_seconds histogram" body);
      Alcotest.(check bool) "+Inf bucket" true
        (contains ~sub:{|xbound_test_prom_hist_seconds_bucket{le="+Inf"} 3|}
           body);
      Alcotest.(check bool) "count series" true
        (contains ~sub:"xbound_test_prom_hist_seconds_count 3" body);
      (* cumulative: bucket counts never decrease through the list *)
      let counts =
        List.filter_map
          (fun line ->
            if
              String.starts_with
                ~prefix:"xbound_test_prom_hist_seconds_bucket" line
            then
              match String.rindex_opt line ' ' with
              | Some i ->
                int_of_string_opt
                  (String.sub line (i + 1) (String.length line - i - 1))
              | None -> None
            else None)
          (String.split_on_char '\n' body)
      in
      Alcotest.(check bool) "cumulative buckets" true
        (List.sort compare counts = counts))

(* ---------------- Chrome export ---------------- *)

(* Minimal structural JSON check: braces/brackets balance outside string
   literals and the document is one value. Enough to catch trailing
   commas in the wrong place, unescaped quotes and truncation. *)
let check_balanced_json s =
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  String.iter
    (fun ch ->
      if !in_str then
        if !escaped then escaped := false
        else
          match ch with
          | '\\' -> escaped := true
          | '"' -> in_str := false
          | _ -> ()
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then Alcotest.fail "unbalanced close"
        | _ -> ())
    s;
  Alcotest.(check bool) "not inside a string" false !in_str;
  Alcotest.(check int) "balanced" 0 !depth

let test_chrome_export () =
  let t = Telemetry.create () in
  let c = Telemetry.Counter.make "test.chrome" in
  Telemetry.with_ambient t (fun () ->
      Telemetry.Counter.incr c;
      sp "alpha" (fun () -> sp {|quo"ted|} (fun () -> ()));
      let d = Domain.spawn (fun () -> sp "beta" (fun () -> ())) in
      Domain.join d);
  let json = Telemetry.to_chrome_json t in
  check_balanced_json json;
  Alcotest.(check bool) "traceEvents" true (contains ~sub:"\"traceEvents\"" json);
  Alcotest.(check int) "three X events" 3 (count_sub ~sub:"\"ph\": \"X\"" json);
  Alcotest.(check bool) "thread metadata" true
    (contains ~sub:"\"thread_name\"" json);
  Alcotest.(check bool) "counter event" true (contains ~sub:"\"ph\": \"C\"" json);
  Alcotest.(check bool) "counter summary" true
    (contains ~sub:"\"xboundCounters\"" json);
  Alcotest.(check bool) "quote escaped" true (contains ~sub:{|quo\"ted|} json)

(* A scope's standalone Chrome export: its spans as X events plus the
   request-id metadata, structurally valid. *)
let test_scope_chrome_export () =
  let t = Telemetry.create () in
  let s = Telemetry.Scope.create ~id:"r42" in
  Telemetry.with_ambient t (fun () ->
      Telemetry.Scope.with_scope s (fun () ->
          sp "alpha" (fun () -> sp "beta" (fun () -> ()))));
  let json = Telemetry.Scope.to_chrome_json s in
  check_balanced_json json;
  Alcotest.(check bool) "request id" true (contains ~sub:"r42" json);
  Alcotest.(check int) "two X events" 2 (count_sub ~sub:"\"ph\": \"X\"" json)

(* ---------------- facade: tracing must not perturb results --------- *)

let tiny_program () =
  let open Benchprogs.Bench.E in
  let app =
    prologue
    @ [
        mov (abs Benchprogs.Bench.input_base) (dreg 4);
        mov (reg 4) (dabs Isa.Memmap.mpy);
        mov (imm 25) (dabs Isa.Memmap.op2);
        mul_reslo 5;
        mov (reg 5) (dabs Benchprogs.Bench.output_base);
      ]
  in
  match
    Xbound.of_ast
      {
        Isa.Asm.name = "telemetry-tiny";
        entry = "start";
        sections =
          [
            {
              Isa.Asm.org = Isa.Memmap.rom_base;
              items = (Isa.Asm.Label "start" :: app) @ Isa.Asm.halt_items;
            };
          ];
      }
  with
  | Ok p -> p
  | Error e -> Alcotest.fail (Xbound.Error.to_string e)

let test_analyze_bit_identical () =
  let p = tiny_program () in
  let plain =
    match Xbound.analyze ~ctx:(Xbound.Ctx.create ~jobs:2 ()) p with
    | Ok a -> a
    | Error e -> Alcotest.fail (Xbound.Error.to_string e)
  in
  let sink = Telemetry.create () in
  let ctx = Xbound.Ctx.create ~jobs:2 ~telemetry:sink () in
  let traced =
    match Xbound.analyze ~ctx p with
    | Ok a -> a
    | Error e -> Alcotest.fail (Xbound.Error.to_string e)
  in
  Alcotest.(check int64) "peak power bit-identical"
    (Int64.bits_of_float (Xbound.peak_power_w plain))
    (Int64.bits_of_float (Xbound.peak_power_w traced));
  Alcotest.(check int64) "peak energy bit-identical"
    (Int64.bits_of_float (Xbound.peak_energy_j plain))
    (Int64.bits_of_float (Xbound.peak_energy_j traced));
  Alcotest.(check (list (pair string int)))
    "no telemetry fields without a sink" [] plain.Xbound.counter_deltas;
  Alcotest.(check (list string)) "no phases without a sink" []
    (List.map fst plain.Xbound.phase_timings);
  let phases = List.map fst traced.Xbound.phase_timings in
  List.iter
    (fun want ->
      Alcotest.(check bool) (want ^ " phase present") true
        (List.mem want phases))
    [ "analyze"; "explore"; "peak-power"; "peak-energy" ];
  Alcotest.(check bool) "sink recorded events" true
    (Telemetry.events sink <> [])

(* The analysis record's telemetry fields are scoped to the call that
   produced them: counters are process-wide and monotonic, so a second
   analyze on the same sink must report its own deltas, not the
   cumulative totals, and phase times must stay plausible per call. *)
let test_analysis_fields_scoped_per_call () =
  let p = tiny_program () in
  let sink = Telemetry.create () in
  let ctx = Xbound.Ctx.create ~jobs:2 ~telemetry:sink () in
  let run () =
    match Xbound.analyze ~ctx p with
    | Ok a -> a
    | Error e -> Alcotest.fail (Xbound.Error.to_string e)
  in
  let a1 = run () in
  let a2 = run () in
  List.iter
    (fun (a : Xbound.analysis) ->
      List.iter
        (fun (name, s) ->
          Alcotest.(check bool) (name ^ " non-negative") true (s >= 0.))
        a.Xbound.phase_timings;
      List.iter
        (fun (name, d) ->
          Alcotest.(check bool) (name ^ " delta positive") true (d > 0))
        a.Xbound.counter_deltas)
    [ a1; a2 ];
  (* same work both times: any counter present in both calls reports a
     per-call delta, so the second is not the running total (which would
     be at least double the first) *)
  List.iter
    (fun (name, d2) ->
      match List.assoc_opt name a1.Xbound.counter_deltas with
      | Some d1 when d1 > 0 ->
        Alcotest.(check bool)
          (name ^ " scoped to the call, not cumulative")
          true
          (d2 < 2 * d1)
      | _ -> ())
    a2.Xbound.counter_deltas;
  (* the analyze phase wraps the others within each call *)
  List.iter
    (fun (a : Xbound.analysis) ->
      match List.assoc_opt "analyze" a.Xbound.phase_timings with
      | None -> Alcotest.fail "analyze phase missing"
      | Some total ->
        List.iter
          (fun (name, s) ->
            if name <> "analyze" then
              Alcotest.(check bool)
                (name ^ " nested under analyze")
                true (s <= total +. 1e-9))
          a.Xbound.phase_timings)
    [ a1; a2 ]

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception" `Quick test_span_exception;
          Alcotest.test_case "across domains" `Quick test_spans_across_domains;
        ] );
      ( "counters",
        [
          Alcotest.test_case "deterministic sum" `Quick test_counters_sum;
          Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "diff" `Quick test_diff;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentile;
          Alcotest.test_case "bucket bounds" `Quick
            test_histogram_bucket_bounds;
          Alcotest.test_case "gauge" `Quick test_gauge;
        ] );
      ( "scopes",
        [
          Alcotest.test_case "per-request tally" `Quick test_scope_tally;
          Alcotest.test_case "activation" `Quick test_scope_not_active_outside;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "take and diff" `Quick test_snapshot_take_and_diff;
          Alcotest.test_case "prometheus exposition" `Quick
            test_snapshot_prometheus;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json" `Quick test_chrome_export;
          Alcotest.test_case "scope chrome json" `Quick
            test_scope_chrome_export;
        ] );
      ( "facade",
        [
          Alcotest.test_case "tracing does not perturb bounds" `Quick
            test_analyze_bit_identical;
          Alcotest.test_case "analysis fields scoped per call" `Quick
            test_analysis_fields_scoped_per_call;
        ] );
    ]
