(* Differential tests: the compiled evaluation kernel ([Gatesim.Engine])
   against the interpreted reference evaluator ([Gatesim.Refsim]).

   The kernel claims bit-identical observable behaviour: per-cycle delta
   and X-active sets, probe samples, fork points, and — through the
   digest's *partition* of states (Zobrist vs. MD5 strings differ, their
   equivalence classes must not) — identical dedup decisions, hence
   identical trees and identical peak power/energy bounds. These tests
   check exactly that, on randomized netlists and on real programs. *)

open Isa

let i x = Asm.I x
let mov_imm n r = i (Insn.I1 (Insn.MOV, Insn.S_imm (Insn.Lit n), Insn.D_reg r))
let input_addr = Memmap.ram_base + 0x80

let branch_program =
  Tsupport.prologue
  @ [
      i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit input_addr), Insn.D_reg 4));
      i (Insn.I1 (Insn.CMP, Insn.S_imm (Insn.Lit 5), Insn.D_reg 4));
      i (Insn.J (Insn.JEQ, Insn.Sym "equal"));
      mov_imm 1 5;
      i (Insn.J (Insn.JMP, Insn.Sym "_halt"));
      Asm.Label "equal";
      mov_imm 2 5;
    ]

let polling_program =
  Tsupport.prologue
  @ [
      Asm.Label "poll";
      i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit input_addr), Insn.D_reg 4));
      i (Insn.I1 (Insn.AND, Insn.S_imm (Insn.Lit 1), Insn.D_reg 4));
      i (Insn.J (Insn.JNE, Insn.Sym "poll"));
    ]

let tri_word =
  Alcotest.testable Tri.Word.pp Tri.Word.equal

let check_cycle msg (ce : Gatesim.Trace.cycle) (cr : Gatesim.Trace.cycle) =
  Alcotest.(check (array int))
    (msg ^ ": deltas")
    cr.Gatesim.Trace.deltas ce.Gatesim.Trace.deltas;
  Alcotest.(check (array int))
    (msg ^ ": x_active")
    cr.Gatesim.Trace.x_active ce.Gatesim.Trace.x_active;
  Alcotest.check tri_word (msg ^ ": pc") cr.Gatesim.Trace.pc ce.Gatesim.Trace.pc;
  Alcotest.check tri_word (msg ^ ": state") cr.Gatesim.Trace.state
    ce.Gatesim.Trace.state;
  Alcotest.check tri_word (msg ^ ": ir") cr.Gatesim.Trace.ir ce.Gatesim.Trace.ir

(* ---------------- randomized netlists ---------------- *)

(* A random acyclic netlist with the full external interface the engine
   expects: reset, 8 port inputs, 16 memory-read-data inputs, a pool of
   random 2-input cells/muxes over everything created so far, and a few
   (enable-)flops patched to close feedback loops. *)
let random_design rng =
  let b = Netlist.Builder.create () in
  Netlist.Builder.set_module b "rand";
  let reset = Netlist.Builder.add_input b in
  let port_in = Array.init 8 (fun _ -> Netlist.Builder.add_input b) in
  let rdata = Array.init 16 (fun _ -> Netlist.Builder.add_input b) in
  let zero = Netlist.Builder.add_const b Tri.Zero in
  let one = Netlist.Builder.add_const b Tri.One in
  let pool = ref [ reset; zero; one ] in
  Array.iter (fun id -> pool := id :: !pool) port_in;
  Array.iter (fun id -> pool := id :: !pool) rdata;
  let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
  let dffs = Array.init 6 (fun _ -> Netlist.Builder.add_dff b) in
  let dffes = Array.init 4 (fun _ -> Netlist.Builder.add_dffe b) in
  Array.iter (fun id -> pool := id :: !pool) dffs;
  Array.iter (fun id -> pool := id :: !pool) dffes;
  for _ = 1 to 120 do
    let cell =
      match Random.State.int rng 9 with
      | 0 -> Netlist.Buf
      | 1 -> Netlist.Inv
      | 2 -> Netlist.And2
      | 3 -> Netlist.Or2
      | 4 -> Netlist.Nand2
      | 5 -> Netlist.Nor2
      | 6 -> Netlist.Xor2
      | 7 -> Netlist.Xnor2
      | _ -> Netlist.Mux2
    in
    let f = Array.init (Netlist.cell_arity cell) (fun _ -> pick ()) in
    pool := Netlist.Builder.add_gate b cell f :: !pool
  done;
  Array.iter (fun id -> Netlist.Builder.set_dff_input b id (pick ())) dffs;
  Array.iter
    (fun id -> Netlist.Builder.set_dffe_inputs b id ~en:(pick ()) ~d:(pick ()))
    dffes;
  let nl = Netlist.Builder.freeze b in
  let bus k = Array.init k (fun _ -> pick ()) in
  let ports =
    {
      Gatesim.Engine.reset;
      port_in;
      mem_addr = bus 16;
      mem_rdata = rdata;
      mem_wdata = bus 16;
      (* Half the designs have a live (possibly X) read enable, so the
         rdata-driving paths of begin_cycle are exercised too. *)
      mem_ren = (if Random.State.bool rng then port_in.(0) else zero);
      mem_wen = zero;
      pc = bus 4;
      state = bus 3;
      ir = bus 4;
      fork_net = None;
    }
  in
  (nl, ports)

let random_trit rng =
  match Random.State.int rng 4 with
  | 0 -> Tri.Zero
  | 1 -> Tri.One
  | _ -> Tri.X

let test_random_netlists () =
  for trial = 0 to 14 do
    let rng = Random.State.make [| 0x5eed; trial |] in
    let nl, ports = random_design rng in
    let mk () = Gatesim.Mem.create ~rom:[] ~ram_base:0x1000 ~ram_bytes:64 in
    let e = Gatesim.Engine.create nl ~ports ~mem:(mk ()) in
    let r = Gatesim.Refsim.create nl ~ports ~mem:(mk ()) in
    let digests = ref [] in
    let step_both tag cyc =
      let drives = Array.init 8 (fun _ -> random_trit rng) in
      let rst = random_trit rng in
      Gatesim.Engine.set_port_in e drives;
      Gatesim.Refsim.set_port_in r drives;
      Gatesim.Engine.set_reset e rst;
      Gatesim.Refsim.set_reset r rst;
      let ce = Gatesim.Engine.step e and cr = Gatesim.Refsim.step r in
      check_cycle (Printf.sprintf "trial %d %s cycle %d" trial tag cyc) ce cr;
      Alcotest.(check (array int))
        (Printf.sprintf "trial %d %s cycle %d: values" trial tag cyc)
        (Gatesim.Refsim.values_snapshot r)
        (Gatesim.Engine.values_snapshot e);
      digests :=
        (Gatesim.Engine.arch_digest e, Gatesim.Refsim.arch_digest r)
        :: !digests
    in
    for cyc = 1 to 20 do
      step_both "pre" cyc
    done;
    (* Snapshot both, diverge, restore, and keep comparing: the O(1)
       copy-on-write snapshots must behave exactly like the reference's
       deep copies. *)
    let se = Gatesim.Engine.snapshot e and sr = Gatesim.Refsim.snapshot r in
    for cyc = 21 to 30 do
      step_both "diverged" cyc
    done;
    Gatesim.Engine.restore e se;
    Gatesim.Refsim.restore r sr;
    for cyc = 31 to 45 do
      step_both "restored" cyc
    done;
    (* Digest partition equivalence: Zobrist strings differ from MD5
       strings, but two states must collide on one side iff they collide
       on the other. *)
    let ds = Array.of_list !digests in
    Array.iteri
      (fun a (ea, ra) ->
        Array.iteri
          (fun b (eb, rb) ->
            if a < b then
              Alcotest.(check bool)
                (Printf.sprintf "trial %d: digest partition (%d,%d)" trial a b)
                (String.equal ra rb) (String.equal ea eb))
          ds)
      ds
  done

(* ---------------- gang vs scalar lockstep ---------------- *)

(* Every gang lane is paired with a scalar twin engine started from the
   same snapshot. Each [Gang.step] must produce exactly the cycle
   records the twins produce, lanes must fork exactly when their twin
   forks, and snapshots extracted from the gang — mid-cycle at forks,
   cycle-boundary on retirement — must restore into scalar engines whose
   full net planes and arch digests match the twin bit for bit. Lanes
   retire on forks and random evictions and are refilled with freshly
   diverged warmup states, so load/retire/refill runs against lanes
   holding dead garbage. *)
let gang_lockstep ~trial ~k ~forks_seen =
  let rng = Random.State.make [| 0x9a69; trial; k |] in
  let nl, ports0 = random_design rng in
  (* A random net as branch-decision net so lanes fork and retire, and a
     (sometimes) live write enable so the per-lane memory write path is
     exercised too. *)
  let ports =
    {
      ports0 with
      Gatesim.Engine.fork_net =
        Some ports0.Gatesim.Engine.pc.(Random.State.int rng 4);
      mem_wen =
        (if Random.State.bool rng then ports0.Gatesim.Engine.port_in.(1)
         else ports0.Gatesim.Engine.mem_wen);
    }
  in
  let mk () = Gatesim.Mem.create ~rom:[] ~ram_base:0x1000 ~ram_bytes:64 in
  let proto = Gatesim.Engine.create nl ~ports ~mem:(mk ()) in
  let gang = Gatesim.Engine.Gang.create proto ~width:k in
  let twins = Array.make 32 None in
  let msg tag l cyc =
    Printf.sprintf "trial %d k=%d %s lane %d step %d" trial k tag l cyc
  in
  (* Run a fresh engine for a random number of cycles under random
     drives (resolving any forks arbitrarily), freeze its final drive
     levels, and install the resulting state in both a gang lane and a
     scalar twin. *)
  let warmup_and_load () =
    let e = Gatesim.Engine.create nl ~ports ~mem:(mk ()) in
    let drives () =
      Gatesim.Engine.set_reset e (random_trit rng);
      Gatesim.Engine.set_port_in e (Array.init 8 (fun _ -> random_trit rng))
    in
    for _ = 1 to 1 + Random.State.int rng 5 do
      drives ();
      (match Gatesim.Engine.begin_cycle e with
      | `Ok -> ()
      | `Fork ->
        Gatesim.Engine.force_fork e
          (if Random.State.bool rng then Tri.Zero else Tri.One));
      ignore (Gatesim.Engine.finish_cycle e)
    done;
    drives ();
    let s = Gatesim.Engine.snapshot e in
    let l = Gatesim.Engine.Gang.load gang s in
    twins.(l) <- Some (Gatesim.Engine.of_snapshot proto s)
  in
  let check_extract tag l step snap =
    let twin = Option.get twins.(l) in
    let a = Gatesim.Engine.of_snapshot proto snap in
    Alcotest.(check (array int))
      (msg tag l step ^ ": values")
      (Gatesim.Engine.values_snapshot twin)
      (Gatesim.Engine.values_snapshot a);
    Alcotest.(check string)
      (msg tag l step ^ ": digest")
      (Gatesim.Engine.arch_digest twin)
      (Gatesim.Engine.arch_digest a)
  in
  for _ = 1 to k do
    warmup_and_load ()
  done;
  for step = 1 to 40 do
    let outcomes = ref [] in
    Gatesim.Engine.Gang.step gang (fun l o -> outcomes := (l, o) :: !outcomes);
    List.iter
      (fun (l, o) ->
        let twin = Option.get twins.(l) in
        match o with
        | Gatesim.Engine.Gang.Cycle cg ->
          (match Gatesim.Engine.begin_cycle twin with
          | `Ok -> ()
          | `Fork -> Alcotest.fail (msg "twin forked, lane did not" l step));
          check_cycle (msg "cycle" l step) cg (Gatesim.Engine.finish_cycle twin)
        | Gatesim.Engine.Gang.Forked snap ->
          incr forks_seen;
          (match Gatesim.Engine.begin_cycle twin with
          | `Fork -> ()
          | `Ok -> Alcotest.fail (msg "lane forked, twin did not" l step));
          (* Resolve the fork both ways from the extracted mid-cycle
             snapshot and from the twin's own mid-cycle state: the
             continuations must agree bit for bit. *)
          let st = Gatesim.Engine.snapshot twin in
          List.iter
            (fun v ->
              let a = Gatesim.Engine.of_snapshot proto snap in
              Gatesim.Engine.restore twin st;
              Gatesim.Engine.force_fork a v;
              Gatesim.Engine.force_fork twin v;
              let ca = Gatesim.Engine.finish_cycle a in
              let ct = Gatesim.Engine.finish_cycle twin in
              check_cycle (msg "fork continuation" l step) ca ct;
              Alcotest.(check string)
                (msg "fork digest" l step)
                (Gatesim.Engine.arch_digest twin)
                (Gatesim.Engine.arch_digest a);
              Alcotest.(check (array int))
                (msg "fork values" l step)
                (Gatesim.Engine.values_snapshot twin)
                (Gatesim.Engine.values_snapshot a))
            [ Tri.Zero; Tri.One ];
          twins.(l) <- None;
          warmup_and_load ())
      (List.rev !outcomes);
    (* Random eviction: extract a live lane at the boundary, check it
       against its twin, retire it and refill the slot. *)
    if Random.State.int rng 4 = 0 then begin
      let live =
        Array.to_list
          (Array.mapi (fun l t -> if t = None then -1 else l) twins)
        |> List.filter (fun l -> l >= 0)
      in
      match live with
      | [] -> ()
      | _ ->
        let l = List.nth live (Random.State.int rng (List.length live)) in
        let snap = Gatesim.Engine.Gang.extract gang l in
        check_extract "evict" l step snap;
        Gatesim.Engine.Gang.retire gang l;
        twins.(l) <- None;
        warmup_and_load ()
    end
  done

let test_gang_lockstep () =
  let forks_seen = ref 0 in
  List.iter
    (fun k ->
      for trial = 0 to 3 do
        gang_lockstep ~trial ~k ~forks_seen
      done)
    [ 1; 2; 8; 32 ];
  Alcotest.(check bool)
    "fork/retire/refill exercised" true (!forks_seen > 10)

(* ---------------- real programs, forks and dedup ---------------- *)

type dual_stats = {
  mutable d_paths : int;
  mutable d_forks : int;
  mutable d_cuts : int;
  mutable d_cycles : int;
}

(* Explore every path of [img] on both evaluators in lockstep, mirroring
   Sym's DFS: resolve each fork both ways, dedup on the digest after the
   fork cycle (revisit limit 0). Checks every cycle record, that forks
   happen at the same points, that dedup decisions agree, and that the
   digest maps are mutually consistent (a bijection between Zobrist and
   MD5 equivalence classes). Returns the concatenated per-path cycles of
   both sides plus stats. *)
let dual_explore img =
  let c = Tsupport.the_cpu () in
  let e =
    Gatesim.Engine.create c.Cpu.netlist ~ports:c.Cpu.ports
      ~mem:(Cpu.mem_of_image img)
  in
  let r =
    Gatesim.Refsim.create c.Cpu.netlist ~ports:c.Cpu.ports
      ~mem:(Cpu.mem_of_image img)
  in
  let is_end = Cpu.is_end_cycle ~halt_addr:img.Asm.halt_addr in
  (* Sym.do_reset on both sides. *)
  Gatesim.Engine.set_reset e Tri.One;
  Gatesim.Refsim.set_reset r Tri.One;
  for _ = 1 to 2 do
    check_cycle "reset" (Gatesim.Engine.step e) (Gatesim.Refsim.step r)
  done;
  Gatesim.Engine.set_reset e Tri.Zero;
  Gatesim.Refsim.set_reset r Tri.Zero;
  for _ = 1 to 3 do
    check_cycle "post-reset" (Gatesim.Engine.step e) (Gatesim.Refsim.step r)
  done;
  let stats = { d_paths = 0; d_forks = 0; d_cuts = 0; d_cycles = 0 } in
  let seen_e : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let seen_r : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let e2r : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let r2e : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let flat_e = ref [] and flat_r = ref [] in
  let record ce cr =
    stats.d_cycles <- stats.d_cycles + 1;
    if stats.d_cycles > 20_000 then failwith "dual_explore: cycle budget";
    flat_e := ce :: !flat_e;
    flat_r := cr :: !flat_r
  in
  let rec explore len =
    if len > 5_000 then failwith "dual_explore: path too long";
    match (Gatesim.Engine.begin_cycle e, Gatesim.Refsim.begin_cycle r) with
    | `Ok, `Ok ->
      let ce = Gatesim.Engine.finish_cycle e in
      let cr = Gatesim.Refsim.finish_cycle r in
      check_cycle (Printf.sprintf "cycle %d" stats.d_cycles) ce cr;
      record ce cr;
      if is_end ce then stats.d_paths <- stats.d_paths + 1
      else explore (len + 1)
    | `Fork, `Fork ->
      stats.d_forks <- stats.d_forks + 1;
      let se = Gatesim.Engine.snapshot e in
      let sr = Gatesim.Refsim.snapshot r in
      List.iter
        (fun v ->
          Gatesim.Engine.restore e se;
          Gatesim.Refsim.restore r sr;
          Gatesim.Engine.force_fork e v;
          Gatesim.Refsim.force_fork r v;
          let ce = Gatesim.Engine.finish_cycle e in
          let cr = Gatesim.Refsim.finish_cycle r in
          check_cycle (Printf.sprintf "fork cycle %d" stats.d_cycles) ce cr;
          record ce cr;
          let de = Gatesim.Engine.arch_digest e in
          let dr = Gatesim.Refsim.arch_digest r in
          (match Hashtbl.find_opt e2r de with
          | Some dr' ->
            Alcotest.(check string) "digest class (engine -> refsim)" dr' dr
          | None -> Hashtbl.add e2r de dr);
          (match Hashtbl.find_opt r2e dr with
          | Some de' ->
            Alcotest.(check string) "digest class (refsim -> engine)" de' de
          | None -> Hashtbl.add r2e dr de);
          let cut_e = Hashtbl.mem seen_e de in
          Alcotest.(check bool)
            "dedup decision agrees" (Hashtbl.mem seen_r dr) cut_e;
          if cut_e then begin
            stats.d_cuts <- stats.d_cuts + 1;
            stats.d_paths <- stats.d_paths + 1
          end
          else begin
            Hashtbl.add seen_e de ();
            Hashtbl.add seen_r dr ();
            if is_end ce then stats.d_paths <- stats.d_paths + 1
            else explore (len + 1)
          end)
        [ Tri.Zero; Tri.One ]
    | _ -> Alcotest.fail "evaluators disagree on fork point"
  in
  explore 0;
  ( Array.of_list (List.rev !flat_e),
    Array.of_list (List.rev !flat_r),
    stats )

let assemble body = Tsupport.assemble_body body

let test_branch_dual () =
  let _, _, stats = dual_explore (assemble branch_program) in
  Alcotest.(check int) "two paths" 2 stats.d_paths;
  Alcotest.(check int) "one fork" 1 stats.d_forks

let test_polling_dual () =
  let _, _, stats = dual_explore (assemble polling_program) in
  Alcotest.(check bool) "dedup cut happened" true (stats.d_cuts >= 1);
  Alcotest.(check bool) "bounded paths" true (stats.d_paths <= 4)

(* tea8 through both evaluators, ending in the bounds: Algorithm 2 peak
   power over the two flattened traces must agree to the last bit. *)
let test_bench_bounds () =
  List.iter
    (fun name ->
      let b = Benchprogs.Bench.find name in
      let img = Benchprogs.Bench.assemble b in
      let fe, fr, stats = dual_explore img in
      Alcotest.(check bool)
        (name ^ ": ran") true
        (stats.d_cycles > 100);
      let cpu = Tsupport.the_cpu () in
      let pa = Core.Analyze.poweran_for cpu in
      let pe = Core.Peak_power.of_cycles pa fe in
      let pr = Core.Peak_power.of_cycles pa fr in
      Alcotest.(check (float 0.0))
        (name ^ ": peak power bound identical")
        pr.Core.Peak_power.peak pe.Core.Peak_power.peak;
      Alcotest.(check int)
        (name ^ ": peak cycle identical")
        pr.Core.Peak_power.peak_index pe.Core.Peak_power.peak_index;
      Alcotest.(check (array (float 0.0)))
        (name ^ ": per-cycle power trace identical")
        pr.Core.Peak_power.trace pe.Core.Peak_power.trace)
    [ "tea8"; "mult" ]

(* The production path: Sym.run + full analysis is deterministic across
   runs of the compiled kernel (exercises COW snapshots and the
   incremental digest under real fork/restore traffic). *)
let test_sym_deterministic () =
  let img = assemble branch_program in
  let run ?pool () =
    let e = Tsupport.fresh_engine ~concrete:false img in
    let cfg =
      Gatesim.Sym.default_config
        ~is_end:(Cpu.is_end_cycle ~halt_addr:img.Asm.halt_addr)
    in
    Gatesim.Sym.run ?pool e cfg
  in
  let t1, s1 = run () in
  let t2, s2 = run () in
  Alcotest.(check int) "same paths" s1.Gatesim.Sym.paths s2.Gatesim.Sym.paths;
  let f1 = Gatesim.Trace.flatten t1 and f2 = Gatesim.Trace.flatten t2 in
  Alcotest.(check int) "same length" (Array.length f1) (Array.length f2);
  Array.iteri (fun k c1 -> check_cycle (Printf.sprintf "flat %d" k) c1 f2.(k)) f1;
  (* CI exports XBOUND_TEST_JOBS (e.g. 2) to also demand that the run on
     a pool of that size — a worker count the in-tree sweep does not
     cover — flattens to the identical trace. *)
  match
    Option.bind (Sys.getenv_opt "XBOUND_TEST_JOBS") int_of_string_opt
  with
  | Some j when j > 0 ->
    let tj, sj = run ~pool:(Parallel.Pool.create ~jobs:j) () in
    Alcotest.(check int)
      (Printf.sprintf "-j%d: same paths" j)
      s1.Gatesim.Sym.paths sj.Gatesim.Sym.paths;
    let fj = Gatesim.Trace.flatten tj in
    Alcotest.(check int)
      (Printf.sprintf "-j%d: same length" j)
      (Array.length f1) (Array.length fj);
    Array.iteri
      (fun k c1 -> check_cycle (Printf.sprintf "-j%d flat %d" j k) c1 fj.(k))
      f1
  | _ -> ()

(* ---------------- netlist levelization ---------------- *)

let check_levels nl =
  let n = Netlist.gate_count nl in
  let topo = nl.Netlist.topo in
  let levels = nl.Netlist.levels in
  let starts = nl.Netlist.level_starts in
  for id = 0 to n - 1 do
    let g = nl.Netlist.gates.(id) in
    match g.Netlist.cell with
    | Netlist.Input | Netlist.Const _ | Netlist.Dff | Netlist.Dffe ->
      Alcotest.(check int) (Printf.sprintf "source %d level" id) 0 levels.(id)
    | _ ->
      let m =
        Array.fold_left (fun m f -> max m (levels.(f) + 1)) 1 g.Netlist.fanins
      in
      Alcotest.(check int) (Printf.sprintf "comb %d level" id) m levels.(id)
  done;
  (* topo is sorted by (level, id) and level_starts delimits the runs *)
  Array.iteri
    (fun k id ->
      if k > 0 then begin
        let pid = topo.(k - 1) in
        Alcotest.(check bool)
          (Printf.sprintf "topo sorted at %d" k)
          true
          (levels.(pid) < levels.(id)
          || (levels.(pid) = levels.(id) && pid < id))
      end)
    topo;
  Alcotest.(check int) "level_starts length"
    (Netlist.level_count nl + 1)
    (Array.length starts);
  Alcotest.(check int) "level_starts total" (Array.length topo)
    starts.(Array.length starts - 1);
  Array.iteri
    (fun l s ->
      if l < Array.length starts - 1 then
        for k = s to starts.(l + 1) - 1 do
          Alcotest.(check int)
            (Printf.sprintf "gate %d in level %d" topo.(k) l)
            l levels.(topo.(k))
        done)
    starts

let test_levels_random () =
  for trial = 0 to 9 do
    let rng = Random.State.make [| 0x1e7e1; trial |] in
    let nl, _ = random_design rng in
    check_levels nl
  done

let test_levels_cpu () = check_levels (Tsupport.the_cpu ()).Cpu.netlist

(* ---------------- Mem copy-on-write ---------------- *)

let test_mem_cow () =
  let m = Gatesim.Mem.create ~rom:[] ~ram_base:0x200 ~ram_bytes:32 in
  Gatesim.Mem.poke m 0x200 0xBEEF;
  Gatesim.Mem.poke m 0x210 0x1234;
  let d0 = Gatesim.Mem.digest m and h0 = Gatesim.Mem.content_hash m in
  let s = Gatesim.Mem.snapshot m in
  (* writes after the snapshot must not leak into it *)
  Gatesim.Mem.poke m 0x200 0x0BAD;
  Alcotest.(check bool) "hash moved" true (Gatesim.Mem.content_hash m <> h0);
  Gatesim.Mem.restore m s;
  Alcotest.(check string) "restore recovers digest" d0 (Gatesim.Mem.digest m);
  Alcotest.(check int) "restore recovers hash" h0 (Gatesim.Mem.content_hash m);
  (* a restored engine can be mutated again without corrupting the
     snapshot (copy-on-write both directions) *)
  Gatesim.Mem.poke m 0x200 0x5555;
  Gatesim.Mem.restore m s;
  Alcotest.(check string) "second restore" d0 (Gatesim.Mem.digest m);
  (* same content reached by different write orders hashes equally *)
  let a = Gatesim.Mem.create ~rom:[] ~ram_base:0x200 ~ram_bytes:32 in
  let b = Gatesim.Mem.create ~rom:[] ~ram_base:0x200 ~ram_bytes:32 in
  Gatesim.Mem.poke a 0x200 1;
  Gatesim.Mem.poke a 0x202 2;
  Gatesim.Mem.poke b 0x202 9;
  Gatesim.Mem.poke b 0x200 1;
  Gatesim.Mem.poke b 0x202 2;
  Alcotest.(check int) "order-independent hash" (Gatesim.Mem.content_hash a)
    (Gatesim.Mem.content_hash b);
  (* smear returns to the all-X hash a fresh replica has *)
  Gatesim.Mem.write a ~strobe:Tri.One (Tri.Word.all_x ~width:16)
    (Tri.Word.of_int ~width:16 0);
  Alcotest.(check int) "smear = fresh all-X"
    (Gatesim.Mem.content_hash (Gatesim.Mem.like a))
    (Gatesim.Mem.content_hash a)

(* ---------------- Seen overlay ---------------- *)

let test_seen_overlay () =
  let s = Gatesim.Seen.create () in
  Gatesim.Seen.set s "a" 1;
  Gatesim.Seen.set s "b" 2;
  Alcotest.(check int) "read back" 1 (Gatesim.Seen.visits s "a");
  Alcotest.(check int) "missing is 0" 0 (Gatesim.Seen.visits s "z");
  let child = Gatesim.Seen.fork s in
  Alcotest.(check int) "child sees parent" 2 (Gatesim.Seen.visits child "b");
  Gatesim.Seen.set s "a" 5;
  Gatesim.Seen.set child "a" 7;
  Alcotest.(check int) "parent write invisible to child" 7
    (Gatesim.Seen.visits child "a");
  Alcotest.(check int) "child write invisible to parent" 5
    (Gatesim.Seen.visits s "a");
  Gatesim.Seen.set s "c" 3;
  let child2 = Gatesim.Seen.fork s in
  Alcotest.(check int) "second fork sees later writes" 3
    (Gatesim.Seen.visits child2 "c");
  Alcotest.(check int) "second fork sees shadowed value" 5
    (Gatesim.Seen.visits child2 "a");
  (* deep chains compact without changing contents *)
  let t = Gatesim.Seen.create () in
  for k = 0 to 99 do
    Gatesim.Seen.set t (string_of_int k) (k + 1);
    ignore (Gatesim.Seen.fork t)
  done;
  Alcotest.(check bool) "chain bounded" true (Gatesim.Seen.depth t <= 27);
  for k = 0 to 99 do
    Alcotest.(check int)
      (Printf.sprintf "survives compaction (%d)" k)
      (k + 1)
      (Gatesim.Seen.visits t (string_of_int k))
  done

(* Compaction happens on the parent's side of a fork; children forked
   earlier keep reading through the shared frozen layers. This pins the
   share-safety contract: compacting (and further writing) the parent
   must never change what any previously-forked child reads — layers
   are frozen when shared, replaced, never mutated. *)
let test_seen_share_safety () =
  let module Seen = Gatesim.Seen in
  let parent = Seen.create () in
  (* retain a child per generation across > max_chain forks, so several
     compactions run while old children are still alive *)
  let children = ref [] in
  for k = 0 to 59 do
    Seen.set parent (Printf.sprintf "d%d" k) (k + 1);
    children := (k, Seen.fork parent) :: !children
  done;
  Alcotest.(check bool) "parent chain compacted" true (Seen.depth parent <= 27);
  (* every child sees exactly the digests written before its fork, and
     none written after *)
  List.iter
    (fun (gen, child) ->
      for k = 0 to 59 do
        let expect = if k <= gen then k + 1 else 0 in
        Alcotest.(check int)
          (Printf.sprintf "child %d reads d%d" gen k)
          expect
          (Seen.visits child (Printf.sprintf "d%d" k))
      done)
    !children;
  (* children forked before a compaction can still write privately *)
  let _, oldest = List.nth !children (List.length !children - 1) in
  Seen.set oldest "d59" 1000;
  Alcotest.(check int) "old child private write" 1000 (Seen.visits oldest "d59");
  Alcotest.(check int) "parent unaffected" 60 (Seen.visits parent "d59")

(* ---------------- application specialization ---------------- *)

(* The specialized gate program ([Netlist.Specialize] + the engine's
   dual-program switch) claims to be unobservable: Algorithm 1 trees,
   dedup digests, flattened traces, peak power/energy bounds and the
   explain class sums must be bit-identical with specialization on or
   off. These tests enforce that on every paper kernel, and on
   randomized netlists with injected constant cones where the folded
   set is known by construction. *)

let digest_of v = Digest.to_hex (Digest.string (Marshal.to_string v []))

(* A mode-independent digest of an execution tree: the flattened trace,
   the sorted dedup-registry keys and the initial net values. *)
let tree_digest (t : Gatesim.Trace.tree) =
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.Gatesim.Trace.registry []
    |> List.sort String.compare
  in
  digest_of (Gatesim.Trace.flatten t, keys, t.Gatesim.Trace.initial)

let run_bench ~specialize (b : Benchprogs.Bench.t) =
  let cpu = Tsupport.the_cpu () in
  let pa = Core.Analyze.poweran_for cpu in
  let config =
    {
      Core.Analyze.default_config with
      Core.Analyze.loop_bound = b.Benchprogs.Bench.loop_bound;
      max_paths = b.Benchprogs.Bench.max_paths;
    }
  in
  Core.Analyze.run ~config ~specialize pa cpu (Benchprogs.Bench.assemble b)

(* All 14 paper kernels, full Algorithm 1 + bounds, spec on vs off. *)
let test_spec_bench_identity () =
  List.iter
    (fun (b : Benchprogs.Bench.t) ->
      let name = b.Benchprogs.Bench.name in
      let on = run_bench ~specialize:true b in
      let off = run_bench ~specialize:false b in
      Alcotest.(check int)
        (name ^ ": paths")
        off.Core.Analyze.sym_stats.Gatesim.Sym.paths
        on.Core.Analyze.sym_stats.Gatesim.Sym.paths;
      Alcotest.(check int)
        (name ^ ": forks")
        off.Core.Analyze.sym_stats.Gatesim.Sym.forks
        on.Core.Analyze.sym_stats.Gatesim.Sym.forks;
      Alcotest.(check int)
        (name ^ ": dedup hits")
        off.Core.Analyze.sym_stats.Gatesim.Sym.dedup_hits
        on.Core.Analyze.sym_stats.Gatesim.Sym.dedup_hits;
      Alcotest.(check string)
        (name ^ ": tree digest")
        (tree_digest off.Core.Analyze.tree)
        (tree_digest on.Core.Analyze.tree);
      Alcotest.(check (float 0.0))
        (name ^ ": peak power bound")
        off.Core.Analyze.peak_power on.Core.Analyze.peak_power;
      Alcotest.(check int)
        (name ^ ": peak cycle")
        off.Core.Analyze.peak_index on.Core.Analyze.peak_index;
      Alcotest.(check (array (float 0.0)))
        (name ^ ": power trace")
        off.Core.Analyze.power_trace on.Core.Analyze.power_trace;
      Alcotest.(check (float 0.0))
        (name ^ ": peak energy bound")
        off.Core.Analyze.peak_energy.Core.Peak_energy.energy
        on.Core.Analyze.peak_energy.Core.Peak_energy.energy;
      Alcotest.(check int)
        (name ^ ": worst path cycles")
        off.Core.Analyze.peak_energy.Core.Peak_energy.cycles
        on.Core.Analyze.peak_energy.Core.Peak_energy.cycles;
      Alcotest.(check (float 0.0))
        (name ^ ": npe")
        off.Core.Analyze.peak_energy.Core.Peak_energy.npe
        on.Core.Analyze.peak_energy.Core.Peak_energy.npe)
    Benchprogs.Bench.all

(* Explain attribution: the folded-gate relabeling moves addends into a
   "constant" class without changing the cycle total, and the breakdown
   is identical whichever engine mode produced the trace. *)
let test_spec_class_sums () =
  let cpu = Tsupport.the_cpu () in
  let pa = Core.Analyze.poweran_for cpu in
  let b = Benchprogs.Bench.find "tea8" in
  let on = run_bench ~specialize:true b in
  let off = run_bench ~specialize:false b in
  let folded = Core.Analyze.folded_pred cpu in
  let cy_on = on.Core.Analyze.flattened.(on.Core.Analyze.peak_index) in
  let cy_off = off.Core.Analyze.flattened.(off.Core.Analyze.peak_index) in
  let bd_on = Poweran.class_breakdown ~folded pa ~mode:`Max cy_on in
  let bd_off = Poweran.class_breakdown ~folded pa ~mode:`Max cy_off in
  Alcotest.(check (list (pair string (float 0.0))))
    "breakdown identical across engine modes" bd_off bd_on;
  Alcotest.(check bool)
    "constant class present" true
    (List.mem_assoc "constant" bd_on);
  let sum l = List.fold_left (fun a (_, v) -> a +. v) 0. l in
  let plain = Poweran.class_breakdown pa ~mode:`Max cy_on in
  Alcotest.(check (float 1e-12))
    "relabeling preserves the class sum" (sum plain) (sum bd_on);
  Alcotest.(check (float 1e-12))
    "classes sum to the cycle total"
    on.Core.Analyze.power_trace.(on.Core.Analyze.peak_index)
    (sum bd_on)

(* Protocol-shaped activation on the real CPU: the engine must switch to
   the specialized program once reset deasserts and the state verifies,
   fall back when reset is re-asserted, and re-activate after. *)
let test_spec_cpu_activation () =
  let cpu = Tsupport.the_cpu () in
  let sp = Core.Analyze.specialization_for cpu in
  Alcotest.(check bool)
    "CPU netlist folds gates" true
    (Netlist.Specialize.folded_count sp > 0);
  let img = assemble branch_program in
  let e =
    Gatesim.Engine.create ~spec:sp cpu.Cpu.netlist ~ports:cpu.Cpu.ports
      ~mem:(Cpu.mem_of_image img)
  in
  (match Gatesim.Engine.specialization e with
  | Some (f, s) ->
    Alcotest.(check int)
      "engine reports folded count" (Netlist.Specialize.folded_count sp) f;
    Alcotest.(check int)
      "engine reports swept count" (Netlist.Specialize.swept sp) s
  | None -> Alcotest.fail "engine carries no specialization");
  Alcotest.(check bool)
    "starts on the full program" false
    (Gatesim.Engine.specialized_active e);
  let reset_then_run () =
    Gatesim.Engine.set_reset e Tri.One;
    for _ = 1 to 2 do
      ignore (Gatesim.Engine.step e)
    done;
    Alcotest.(check bool)
      "full program while reset is asserted" false
      (Gatesim.Engine.specialized_active e);
    Gatesim.Engine.set_reset e Tri.Zero;
    for _ = 1 to 5 do
      ignore (Gatesim.Engine.step e)
    done
  in
  reset_then_run ();
  Alcotest.(check bool)
    "activates after reset deasserts" true
    (Gatesim.Engine.specialized_active e);
  (* Re-asserting reset invalidates the invariants: the engine must
     unspecialize, then re-activate after the next reset sequence. *)
  reset_then_run ();
  Alcotest.(check bool)
    "re-activates after a second reset" true
    (Gatesim.Engine.specialized_active e)

(* Randomized netlists with an injected constant cone: gates wired to
   [Const] cells (and to the folded reset input) whose invariant values
   are known by construction. [Specialize] must fold exactly those
   values, and an engine running the specialized program must stay in
   lockstep with the reference interpreter — including activation,
   snapshot/restore and reset-induced fallback. *)
let test_spec_constant_injection () =
  for trial = 0 to 9 do
    let rng = Random.State.make [| 0xc0de; trial |] in
    let b = Netlist.Builder.create () in
    Netlist.Builder.set_module b "spec";
    let reset = Netlist.Builder.add_input b in
    let port_in = Array.init 8 (fun _ -> Netlist.Builder.add_input b) in
    let rdata = Array.init 16 (fun _ -> Netlist.Builder.add_input b) in
    let zero = Netlist.Builder.add_const b Tri.Zero in
    let one = Netlist.Builder.add_const b Tri.One in
    let pool = ref [ zero; one ] in
    Array.iter (fun id -> pool := id :: !pool) port_in;
    Array.iter (fun id -> pool := id :: !pool) rdata;
    let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
    let dffs = Array.init 4 (fun _ -> Netlist.Builder.add_dff b) in
    Array.iter (fun id -> pool := id :: !pool) dffs;
    for _ = 1 to 60 do
      let cell =
        match Random.State.int rng 8 with
        | 0 -> Netlist.Buf
        | 1 -> Netlist.Inv
        | 2 -> Netlist.And2
        | 3 -> Netlist.Or2
        | 4 -> Netlist.Nand2
        | 5 -> Netlist.Nor2
        | 6 -> Netlist.Xor2
        | _ -> Netlist.Xnor2
      in
      let f = Array.init (Netlist.cell_arity cell) (fun _ -> pick ()) in
      pool := Netlist.Builder.add_gate b cell f :: !pool
    done;
    (* The injected cone. Each gate's fold value follows from Kleene
       algebra over constants and live (unknowable) inputs; the cone is
       deliberately kept out of the live pool so it is a dead cone. *)
    let live () = port_in.(Random.State.int rng 8) in
    let expected = ref [] in
    let expect code id =
      expected := (id, code) :: !expected;
      id
    in
    let k0 = expect Tri.I.zero (Netlist.Builder.add_gate b Netlist.And2 [| zero; live () |]) in
    let k1 = expect Tri.I.one (Netlist.Builder.add_gate b Netlist.Or2 [| one; live () |]) in
    let k2 = expect Tri.I.one (Netlist.Builder.add_gate b Netlist.Xor2 [| k0; k1 |]) in
    let k3 = expect Tri.I.zero (Netlist.Builder.add_gate b Netlist.Inv [| k2 |]) in
    let _ = expect Tri.I.zero (Netlist.Builder.add_gate b Netlist.Buf [| k3 |]) in
    let _ =
      expect Tri.I.one (Netlist.Builder.add_gate b Netlist.Nand2 [| k0; live () |])
    in
    let _ =
      expect Tri.I.zero (Netlist.Builder.add_gate b Netlist.Nor2 [| k1; live () |])
    in
    (* the reset input itself folds to 0 and seeds propagation *)
    let _ =
      expect Tri.I.zero
        (Netlist.Builder.add_gate b Netlist.And2 [| reset; live () |])
    in
    (* a flop fed by a folded net folds to that value *)
    let d_const = Netlist.Builder.add_dff b in
    Netlist.Builder.set_dff_input b d_const k1;
    (* a live gate reading a folded net must keep seeing the frozen
       constant after the switch (boundary of the specialized program) *)
    let _boundary = Netlist.Builder.add_gate b Netlist.And2 [| k1; live () |] in
    let n_injected = List.length !expected in
    Array.iter (fun id -> Netlist.Builder.set_dff_input b id (pick ())) dffs;
    let nl = Netlist.Builder.freeze b in
    let bus k = Array.init k (fun _ -> pick ()) in
    let ports =
      {
        Gatesim.Engine.reset;
        port_in;
        mem_addr = bus 16;
        mem_rdata = rdata;
        mem_wdata = bus 16;
        mem_ren = zero;
        mem_wen = zero;
        pc = bus 4;
        state = bus 3;
        ir = bus 4;
        fork_net = None;
      }
    in
    let sp = Netlist.Specialize.compute nl ~reset in
    List.iter
      (fun (id, code) ->
        Alcotest.(check bool)
          (Printf.sprintf "trial %d: net %d folded" trial id)
          true
          (Netlist.Specialize.is_folded sp id);
        Alcotest.(check int)
          (Printf.sprintf "trial %d: net %d code" trial id)
          code
          (Netlist.Specialize.code sp id))
      !expected;
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: flop fed by constant folds" trial)
      true
      (Netlist.Specialize.is_folded sp d_const);
    Alcotest.(check int)
      (Printf.sprintf "trial %d: flop code" trial)
      Tri.I.one
      (Netlist.Specialize.code sp d_const);
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: at least the injected comb gates fold" trial)
      true
      (Netlist.Specialize.folded_comb sp >= n_injected);
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: dead cone swept" trial)
      true
      (Netlist.Specialize.swept sp >= 1);
    (* Lockstep under the reset protocol, across activation, fallback,
       snapshot and restore. *)
    let mk () = Gatesim.Mem.create ~rom:[] ~ram_base:0x1000 ~ram_bytes:64 in
    let e = Gatesim.Engine.create ~spec:sp nl ~ports ~mem:(mk ()) in
    let r = Gatesim.Refsim.create nl ~ports ~mem:(mk ()) in
    let cyc = ref 0 in
    let step_both tag =
      incr cyc;
      let drives = Array.init 8 (fun _ -> random_trit rng) in
      Gatesim.Engine.set_port_in e drives;
      Gatesim.Refsim.set_port_in r drives;
      check_cycle
        (Printf.sprintf "spec trial %d %s cycle %d" trial tag !cyc)
        (Gatesim.Engine.step e) (Gatesim.Refsim.step r);
      Alcotest.(check (array int))
        (Printf.sprintf "spec trial %d %s cycle %d: values" trial tag !cyc)
        (Gatesim.Refsim.values_snapshot r)
        (Gatesim.Engine.values_snapshot e)
    in
    let set_reset v =
      Gatesim.Engine.set_reset e v;
      Gatesim.Refsim.set_reset r v
    in
    set_reset Tri.One;
    step_both "reset";
    step_both "reset";
    set_reset Tri.Zero;
    for _ = 1 to 10 do
      step_both "settled"
    done;
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: specialized program activated" trial)
      true
      (Gatesim.Engine.specialized_active e);
    let se = Gatesim.Engine.snapshot e and sr = Gatesim.Refsim.snapshot r in
    for _ = 1 to 5 do
      step_both "diverged"
    done;
    Gatesim.Engine.restore e se;
    Gatesim.Refsim.restore r sr;
    for _ = 1 to 5 do
      step_both "restored"
    done;
    (* re-assert reset: the engine must fall back to the full program
       and stay in lockstep throughout *)
    set_reset Tri.One;
    step_both "re-reset";
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: fallback under reset" trial)
      false
      (Gatesim.Engine.specialized_active e);
    step_both "re-reset";
    set_reset Tri.Zero;
    for _ = 1 to 5 do
      step_both "re-settled"
    done;
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: re-activated" trial)
      true
      (Gatesim.Engine.specialized_active e)
  done

(* ---------------- telemetry hooks ---------------- *)

let test_instrumentation () =
  let hist_count name =
    let c, _, _ = Telemetry.Histogram.totals (Telemetry.Histogram.make name) in
    c
  in
  let snap0 = hist_count "engine.snapshot_ns" in
  let dig0 = hist_count "sym.digest_ns" in
  let tel = Telemetry.create () in
  Telemetry.with_ambient tel (fun () ->
      let img = assemble branch_program in
      let e = Tsupport.fresh_engine ~concrete:false img in
      let cfg =
        Gatesim.Sym.default_config
          ~is_end:(Cpu.is_end_cycle ~halt_addr:img.Asm.halt_addr)
      in
      ignore (Gatesim.Sym.run e cfg));
  let count name =
    match List.assoc_opt name (Telemetry.counters ()) with
    | Some v -> v
    | None -> Alcotest.failf "counter %s not registered" name
  in
  Alcotest.(check bool)
    "engine.words_evaluated counted" true
    (count "engine.words_evaluated" > 0);
  (* branch_program has one fork, so the run snapshots and digests *)
  Alcotest.(check bool)
    "engine.snapshot_ns observed" true
    (hist_count "engine.snapshot_ns" > snap0);
  Alcotest.(check bool)
    "sym.digest_ns observed" true
    (hist_count "sym.digest_ns" > dig0);
  (* no pool was passed, so the taken arm was kept local, not spawned *)
  Alcotest.(check bool)
    "sym.forks_inlined counted" true
    (count "sym.forks_inlined" > 0);
  Alcotest.(check int) "sym.forks_spawned zero without pool" 0
    (count "sym.forks_spawned")

let () =
  Alcotest.run "differential"
    [
      ( "kernel-vs-reference",
        [
          Alcotest.test_case "random netlists" `Quick test_random_netlists;
          Alcotest.test_case "gang lockstep" `Quick test_gang_lockstep;
          Alcotest.test_case "branch fork" `Quick test_branch_dual;
          Alcotest.test_case "polling dedup" `Quick test_polling_dual;
          Alcotest.test_case "bench bounds" `Slow test_bench_bounds;
          Alcotest.test_case "sym deterministic" `Quick test_sym_deterministic;
        ] );
      ( "specialization",
        [
          Alcotest.test_case "bench identity" `Slow test_spec_bench_identity;
          Alcotest.test_case "class sums" `Slow test_spec_class_sums;
          Alcotest.test_case "cpu activation" `Quick test_spec_cpu_activation;
          Alcotest.test_case "constant injection" `Quick
            test_spec_constant_injection;
        ] );
      ( "levelization",
        [
          Alcotest.test_case "random designs" `Quick test_levels_random;
          Alcotest.test_case "cpu netlist" `Quick test_levels_cpu;
        ] );
      ( "state",
        [
          Alcotest.test_case "mem cow" `Quick test_mem_cow;
          Alcotest.test_case "seen overlay" `Quick test_seen_overlay;
          Alcotest.test_case "seen share safety" `Quick test_seen_share_safety;
          Alcotest.test_case "instrumentation" `Quick test_instrumentation;
        ] );
    ]
