(* The serve stack: error wire codes, request/response codecs, framing,
   the admission scheduler, and an end-to-end daemon over a unix socket
   (protocol robustness, cross-client single-flight, admission
   rejection, CLI-vs-daemon byte identity). *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---------------- error wire codes ---------------- *)

(* One value per constructor. Adding a constructor without extending
   this list fails the exhaustiveness check below. *)
let error_samples =
  [
    ( "parse",
      Xbound.Error.Parse { file = "f.s"; line = 3; message = "bad operand" } );
    ( "assembly",
      Xbound.Error.Assembly { program = "p"; message = "undefined symbol" } );
    ("netlist", Xbound.Error.Netlist "elaboration failed");
    ( "analysis",
      Xbound.Error.Analysis { program = "p"; message = "path limit" } );
    ( "static-cfg",
      Xbound.Error.Static_cfg
        { program = "p"; message = "indirect branch at e012" } );
    ("cache", Xbound.Error.Cache "cache dir unusable");
    ( "unknown-benchmark",
      Xbound.Error.Unknown_benchmark
        { name = "tee8"; available = [ "tea8"; "div" ] } );
    ("overloaded", Xbound.Error.Overloaded { queued = 64; capacity = 64 });
    ("protocol", Xbound.Error.Protocol "bad frame");
  ]

let test_error_codes () =
  List.iter
    (fun (code, e) ->
      checks ("code " ^ code) code (Xbound.Error.code e);
      match Xbound.Error.of_wire (Xbound.Error.to_wire e) with
      | Some e' -> checkb ("round-trip " ^ code) true (e = e')
      | None -> Alcotest.failf "of_wire failed for %s" code)
    error_samples;
  (* Exhaustive: every constructor appears in the samples. *)
  let covered e =
    List.exists (fun (_, s) -> Xbound.Error.code s = Xbound.Error.code e)
      error_samples
  in
  List.iter
    (fun (_, e) -> checkb "covered" true (covered e))
    error_samples;
  (* Garbage degrades to None, not an exception. *)
  checkb "unknown code" true
    (Xbound.Error.of_wire
       (Explain.Ejson.Obj [ ("code", Explain.Ejson.Str "nonsense") ])
    = None);
  checkb "missing fields" true
    (Xbound.Error.of_wire
       (Explain.Ejson.Obj [ ("code", Explain.Ejson.Str "parse") ])
    = None);
  checkb "not an object" true (Xbound.Error.of_wire (Explain.Ejson.Num 3.) = None)

(* ---------------- request/response codecs ---------------- *)

let request_samples =
  [
    Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Exact };
    Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Static };
    Wire.Request.Analyze { bench = "div"; tier = Xbound.Tier.Auto };
    Wire.Request.Explain
      {
        bench = "div";
        fmt = Wire.Request.Json;
        top = 4;
        min_gap = 5;
        tier = Xbound.Tier.Exact;
      };
    Wire.Request.Explain
      {
        bench = "div";
        fmt = Wire.Request.Csv;
        top = 1;
        min_gap = 0;
        tier = Xbound.Tier.Static;
      };
    Wire.Request.Run_concrete { bench = "mult"; seed = 42 };
    Wire.Request.Optimize { bench = "tea8" };
    Wire.Request.Bench_list;
    Wire.Request.Cache_stats;
    Wire.Request.Stats { fmt = Wire.Request.Stats_table };
    Wire.Request.Stats { fmt = Wire.Request.Stats_json };
    Wire.Request.Stats { fmt = Wire.Request.Stats_prometheus };
    Wire.Request.Health;
    Wire.Request.Watch { interval_ms = 500; count = 10 };
    Wire.Request.Watch { interval_ms = 1000; count = 0 };
  ]

(* taken_ns is process-local monotonic time: the codec does not ship it
   (it decodes as 0), so wire samples carry 0 to round-trip exactly. *)
let sample_snapshot =
  {
    Telemetry.Snapshot.taken_ns = 0L;
    uptime_s = 12.5;
    rss_bytes = 1_048_576;
    active_spans = 2;
    counters = [ ("serve.requests", 42); ("cache.misses", 7) ];
    gauges = [ ("serve.inflight", 1); ("serve.queue_len", 3) ];
    histograms =
      [
        {
          Telemetry.Snapshot.hname = "serve.exec_ns";
          count = 3;
          sum_ns = 3000L;
          max_ns = 2000L;
          p50 = 1023L;
          p90 = 2000L;
          p99 = 2000L;
          buckets = [ (1023L, 2); (2047L, 1) ];
        };
      ];
  }

let response_samples =
  [
    Wire.Response.Analysis
      {
        name = "tea8";
        tier = Xbound.Tier.Exact;
        paths = 1;
        forks = 0;
        dedup_hits = 2;
        total_cycles = 1234;
        peak_power = Xbound.Bound.exact 2.6375e-3;
        peak_index = 17;
        peak_energy = Xbound.Bound.exact 1.25e-9;
        peak_energy_cycles = 16;
        npe_j_per_cycle = 0.81e-12;
        power_trace_w = [| 1.0e-3; 2.5e-3; 0.3e-3 |];
      };
    Wire.Response.Analysis
      {
        name = "tea8";
        tier = Xbound.Tier.Static;
        paths = 0;
        forks = 0;
        dedup_hits = 0;
        total_cycles = 4096;
        peak_power = Xbound.Bound.static 3.1e-3;
        peak_index = 0;
        peak_energy = Xbound.Bound.static 2.5e-9;
        peak_energy_cycles = 4096;
        npe_j_per_cycle = 0.61e-12;
        power_trace_w = [||];
      };
    Wire.Response.Explanation
      { name = "tea8"; fmt = Wire.Request.Table; text = "line1\nline2\n" };
    Wire.Response.Concrete
      {
        name = "div";
        seed = 8;
        cycles = 100;
        peak_w = 2.2e-3;
        peak_cycle = 31;
        trace_w = [| 0.5e-3; 2.2e-3 |];
      };
    Wire.Response.Optimization
      {
        name = "tea8";
        chosen = [ "strength-reduce"; "nop-pad" ];
        base_peak_w = 2.6e-3;
        opt_peak_w = 2.1e-3;
        peak_reduction_pct = 19.2;
        range_reduction_pct = 7.5;
        perf_degradation_pct = 0.8;
        energy_overhead_pct = 1.1;
      };
    Wire.Response.Optimization
      {
        name = "x";
        chosen = [];
        base_peak_w = 1.;
        opt_peak_w = 1.;
        peak_reduction_pct = 0.;
        range_reduction_pct = 0.;
        perf_degradation_pct = 0.;
        energy_overhead_pct = 0.;
      };
    Wire.Response.Benchmarks
      [ ("tea8", "TEA cipher", false); ("fancy", "extended", true) ];
    Wire.Response.Cache_stats
      {
        dir = Some "/tmp/c";
        entries = 12;
        bytes = 4096;
        by_ns = [ ("analysis", (4, 1024)); ("block", (8, 3072)) ];
      };
    Wire.Response.Cache_stats { dir = None; entries = 0; bytes = 0; by_ns = [] };
    Wire.Response.Stats
      { fmt = Wire.Request.Stats_prometheus; snapshot = sample_snapshot };
    Wire.Response.Stats
      {
        fmt = Wire.Request.Stats_json;
        snapshot =
          {
            sample_snapshot with
            Telemetry.Snapshot.counters = [];
            gauges = [];
            histograms = [];
          };
      };
    Wire.Response.Health
      {
        ok = true;
        uptime_s = 3.25;
        queue_len = 2;
        queue_capacity = 64;
        inflight = 1;
        workers = 2;
      };
  ]

let test_request_codec () =
  List.iter
    (fun r ->
      match Wire.Request.of_json (Wire.Request.to_json r) with
      | Ok r' -> checkb "request round-trip" true (r = r')
      | Error m -> Alcotest.failf "request codec: %s" m)
    request_samples;
  checkb "bad op" true
    (Result.is_error
       (Wire.Request.of_json
          (Explain.Ejson.Obj [ ("op", Explain.Ejson.Str "nonsense") ])))

let test_response_codec () =
  List.iter
    (fun r ->
      match Wire.Response.of_json (Wire.Response.to_json r) with
      | Ok r' -> checkb "response round-trip" true (r = r')
      | Error m -> Alcotest.failf "response codec: %s" m)
    response_samples

(* v1 peers keep working against a v2 endpoint: absent tier means exact,
   bare bound numbers mean exact-tier bounds, absent by_ns means no
   breakdown. *)
let test_wire_v1_compat () =
  checkb "v2 > v1" true (Wire.proto_version > 1);
  checki "still speaks v1" 1 Wire.min_proto_version;
  (* v1 analyze request: no "tier" member. *)
  (match
     Wire.Request.of_json
       (Explain.Ejson.parse
          {|{"op": "analyze", "bench": "tea8"}|})
   with
  | Ok (Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Exact }) -> ()
  | Ok _ -> Alcotest.fail "v1 analyze decoded to the wrong value"
  | Error m -> Alcotest.failf "v1 analyze rejected: %s" m);
  (* An unknown tier string is malformed, not silently exact. *)
  checkb "bad tier rejected" true
    (Result.is_error
       (Wire.Request.of_json
          (Explain.Ejson.parse
             {|{"op": "analyze", "bench": "tea8", "tier": "psychic"}|})));
  (* v1 analysis response: bare numbers for the bounds, no tier. *)
  (match
     Wire.Response.of_json
       (Explain.Ejson.parse
          {|{"op": "analysis", "name": "tea8", "paths": 1, "forks": 0,
             "dedup_hits": 2, "total_cycles": 10, "peak_power_w": 0.002,
             "peak_index": 3, "peak_energy_j": 1e-9,
             "peak_energy_cycles": 8, "npe_j_per_cycle": 1e-13,
             "power_trace_w": [0.001, 0.002]}|})
   with
  | Ok
      (Wire.Response.Analysis
         { tier = Xbound.Tier.Exact; peak_power; peak_energy; _ }) ->
    checkb "bound tier exact" true
      (peak_power.Xbound.Bound.tier = Xbound.Tier.Exact
      && peak_energy.Xbound.Bound.tier = Xbound.Tier.Exact);
    checkb "bound values" true
      (peak_power.Xbound.Bound.value = 0.002
      && peak_energy.Xbound.Bound.value = 1e-9)
  | Ok _ -> Alcotest.fail "v1 analysis decoded to the wrong shape"
  | Error m -> Alcotest.failf "v1 analysis rejected: %s" m);
  (* v1 cache_stats response: no by_ns member. *)
  match
    Wire.Response.of_json
      (Explain.Ejson.parse
         {|{"op": "cache_stats", "dir": "/tmp/c", "entries": 3, "bytes": 99}|})
  with
  | Ok (Wire.Response.Cache_stats { by_ns = []; entries = 3; _ }) -> ()
  | Ok _ -> Alcotest.fail "v1 cache_stats decoded to the wrong shape"
  | Error m -> Alcotest.failf "v1 cache_stats rejected: %s" m

let test_envelopes () =
  let rf =
    {
      Wire.id = 7;
      priority = Wire.Batch;
      request = Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Exact };
    }
  in
  (match Wire.decode_request (Wire.encode_request rf) with
  | Ok rf' ->
    checki "id" 7 rf'.Wire.id;
    checkb "priority" true (rf'.Wire.priority = Wire.Batch);
    checkb "request" true (rf'.Wire.request = rf.Wire.request)
  | Error (_, e) -> Alcotest.fail (Xbound.Error.to_string e));
  (* Version mismatch is a typed protocol error that still reports the
     envelope id, so the server can address its reply. *)
  (match
     Wire.decode_request
       {|{"proto_version": 999, "id": 3, "request": {"op": "bench_list"}}|}
   with
  | Error (Some 3, Xbound.Error.Protocol _) -> ()
  | Error (id, e) ->
    Alcotest.failf "unexpected: id=%s %s"
      (match id with Some i -> string_of_int i | None -> "none")
      (Xbound.Error.to_string e)
  | Ok _ -> Alcotest.fail "bad version accepted");
  (* Unparsable JSON: protocol error, no id. *)
  (match Wire.decode_request "{nope" with
  | Error (None, Xbound.Error.Protocol _) -> ()
  | _ -> Alcotest.fail "garbage accepted");
  List.iter
    (fun result ->
      let f = { Wire.rid = 9; result } in
      match Wire.decode_response (Wire.encode_response f) with
      | Ok f' ->
        checki "rid" 9 f'.Wire.rid;
        checkb "result" true (f'.Wire.result = result)
      | Error e -> Alcotest.fail (Xbound.Error.to_string e))
    [
      Ok (Wire.Response.Benchmarks [ ("a", "b", false) ]);
      Error (Xbound.Error.Overloaded { queued = 1; capacity = 1 });
    ]

(* ---------------- framing ---------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair @@ fun a b ->
  let payload = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  Serve.Frame.write a payload;
  Serve.Frame.write a "";
  (match Serve.Frame.read b with
  | Ok p -> checks "payload" payload p
  | Error e -> Alcotest.fail (Serve.Frame.read_error_to_string e));
  (match Serve.Frame.read b with
  | Ok p -> checks "empty payload" "" p
  | Error e -> Alcotest.fail (Serve.Frame.read_error_to_string e));
  Unix.close a;
  match Serve.Frame.read b with
  | Error Serve.Frame.Eof -> ()
  | _ -> Alcotest.fail "expected Eof after close"

let test_frame_truncated () =
  with_socketpair @@ fun a b ->
  (* A length prefix promising 100 bytes, then only 10, then close. *)
  let buf = Bytes.create 4 in
  Bytes.set_int32_be buf 0 100l;
  ignore (Unix.write a buf 0 4);
  ignore (Unix.write_substring a "0123456789" 0 10);
  Unix.close a;
  (match Serve.Frame.read b with
  | Error Serve.Frame.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated");
  (* A partial prefix alone is also a truncation, not an Eof. *)
  with_socketpair @@ fun a b ->
  ignore (Unix.write_substring a "\x00\x00" 0 2);
  Unix.close a;
  match Serve.Frame.read b with
  | Error Serve.Frame.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated on partial prefix"

let test_frame_oversized () =
  with_socketpair @@ fun a b ->
  let buf = Bytes.create 4 in
  Bytes.set_int32_be buf 0 0x7fff_ffffl;
  ignore (Unix.write a buf 0 4);
  match Serve.Frame.read b with
  | Error (Serve.Frame.Oversized n) ->
    checkb "reported length" true (n > Serve.Frame.max_payload)
  | _ -> Alcotest.fail "expected Oversized"

(* ---------------- scheduler ---------------- *)

let test_scheduler_admission () =
  let s = Serve.Scheduler.create ~capacity:2 in
  let submit p = Serve.Scheduler.submit s { Serve.Scheduler.priority = p; run = ignore } in
  checkb "1st admitted" true (submit Wire.Batch = Ok ());
  checkb "2nd admitted" true (submit Wire.Interactive = Ok ());
  (match submit Wire.Interactive with
  | Error depth -> checki "rejection reports depth" 2 depth
  | Ok () -> Alcotest.fail "over-capacity submit admitted");
  checki "depth" 2 (Serve.Scheduler.depth s);
  checki "capacity" 2 (Serve.Scheduler.capacity s);
  (* Interactive drains before the earlier-submitted batch job. *)
  (match Serve.Scheduler.next s with
  | Some j -> checkb "interactive first" true (j.Serve.Scheduler.priority = Wire.Interactive)
  | None -> Alcotest.fail "empty");
  (match Serve.Scheduler.next s with
  | Some j -> checkb "then batch" true (j.Serve.Scheduler.priority = Wire.Batch)
  | None -> Alcotest.fail "empty");
  Serve.Scheduler.stop s;
  checkb "stopped next" true (Serve.Scheduler.next s = None);
  checkb "stopped submit" true (Result.is_error (submit Wire.Interactive))

(* ---------------- end-to-end daemon ---------------- *)

let fresh_sock () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "xbound-test-serve-%d-%d.sock" (Unix.getpid ())
       (Random.int 100000))

let with_server ?(workers = 2) ?(queue_capacity = 64) ?access_log ?slow_ms
    ?trace_sample ?trace_dir ?ctx f =
  let ctx = match ctx with Some c -> c | None -> Xbound.Ctx.default in
  let sock = fresh_sock () in
  let server =
    match
      Serve.Server.start
        (Serve.Server.config ~workers ~queue_capacity ?access_log ?slow_ms
           ?trace_sample ?trace_dir ~listen:(Serve.Addr.Unix_sock sock) ~ctx
           ())
    with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      try Sys.remove sock with Sys_error _ -> ())
    (fun () -> f (Serve.Addr.Unix_sock sock))

let with_client addr f =
  match Serve.Client.connect addr with
  | Error m -> Alcotest.fail m
  | Ok c -> Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let test_serve_basic () =
  with_server @@ fun addr ->
  with_client addr @@ fun c ->
  (match Serve.Client.rpc c Wire.Request.Bench_list with
  | Ok (Wire.Response.Benchmarks bs) ->
    checkb "has tea8" true (List.exists (fun (n, _, _) -> n = "tea8") bs)
  | Ok _ -> Alcotest.fail "wrong response shape"
  | Error e -> Alcotest.fail (Xbound.Error.to_string e));
  (* A typed error crosses the wire as the same typed value. *)
  match
    Serve.Client.rpc c
      (Wire.Request.Analyze { bench = "no-such"; tier = Xbound.Tier.Exact })
  with
  | Error (Xbound.Error.Unknown_benchmark { name; _ }) ->
    checks "error name" "no-such" name
  | Error e -> Alcotest.fail ("wrong error: " ^ Xbound.Error.to_string e)
  | Ok _ -> Alcotest.fail "bogus benchmark analyzed"

let test_serve_protocol_errors () =
  with_server @@ fun addr ->
  match Serve.Addr.connect addr with
  | Error m -> Alcotest.fail m
  | Ok fd ->
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    (* Bad JSON in a well-formed frame: typed error, connection lives. *)
    Serve.Frame.write fd "{this is not json";
    (match Serve.Frame.read fd with
    | Ok reply -> (
      match Wire.decode_response reply with
      | Ok { Wire.result = Error (Xbound.Error.Protocol _); _ } -> ()
      | Ok _ -> Alcotest.fail "expected a protocol error"
      | Error e -> Alcotest.fail (Xbound.Error.to_string e))
    | Error e -> Alcotest.fail (Serve.Frame.read_error_to_string e));
    (* Valid JSON, wrong shape: same story, and the id is echoed. *)
    Serve.Frame.write fd
      {|{"proto_version": 1, "id": 41, "request": {"op": "launch_missiles"}}|};
    (match Serve.Frame.read fd with
    | Ok reply -> (
      match Wire.decode_response reply with
      | Ok { Wire.rid = 41; result = Error (Xbound.Error.Protocol _) } -> ()
      | Ok _ -> Alcotest.fail "expected protocol error with id 41"
      | Error e -> Alcotest.fail (Xbound.Error.to_string e))
    | Error e -> Alcotest.fail (Serve.Frame.read_error_to_string e));
    (* The connection survived both: a real request still works. *)
    Serve.Frame.write fd
      (Wire.encode_request
         { Wire.id = 42; priority = Wire.Interactive;
           request = Wire.Request.Bench_list });
    (match Serve.Frame.read fd with
    | Ok reply -> (
      match Wire.decode_response reply with
      | Ok { Wire.rid = 42; result = Ok (Wire.Response.Benchmarks _) } -> ()
      | Ok _ -> Alcotest.fail "expected benchmarks after protocol errors"
      | Error e -> Alcotest.fail (Xbound.Error.to_string e))
    | Error e -> Alcotest.fail (Serve.Frame.read_error_to_string e))

let test_serve_oversized_closes () =
  with_server @@ fun addr ->
  match Serve.Addr.connect addr with
  | Error m -> Alcotest.fail m
  | Ok fd ->
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    (* A nonsense length prefix breaks framing: one final protocol
       error, then the server closes the connection. *)
    let buf = Bytes.create 4 in
    Bytes.set_int32_be buf 0 0x7fff_ffffl;
    ignore (Unix.write fd buf 0 4);
    (match Serve.Frame.read fd with
    | Ok reply -> (
      match Wire.decode_response reply with
      | Ok { Wire.result = Error (Xbound.Error.Protocol _); _ } -> ()
      | _ -> Alcotest.fail "expected protocol error")
    | Error e -> Alcotest.fail (Serve.Frame.read_error_to_string e));
    match Serve.Frame.read fd with
    | Error Serve.Frame.Eof -> ()
    | Ok _ -> Alcotest.fail "server kept a broken connection open"
    | Error _ -> ()

(* Two clients ask the identical question concurrently: the shared
   cache's single-flight table must compute it once. One analysis is
   several memo calls (analysis, symtree, peak-power, peak-energy), so
   "computed once" means the concurrent pair produces exactly as many
   misses as one solo analysis — not twice as many. *)
let test_serve_single_flight () =
  let solo_misses =
    let cache = Cache.create () in
    (match
       Serve.Exec.exec
         ~ctx:(Xbound.Ctx.create ~cache ~jobs:2 ())
         (Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Exact })
     with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Xbound.Error.to_string e));
    (Cache.counters cache).Cache.misses
  in
  checkb "solo analysis misses" true (solo_misses >= 1);
  let cache = Cache.create () in
  let ctx = Xbound.Ctx.create ~cache ~jobs:2 () in
  with_server ~ctx @@ fun addr ->
  let results = Array.make 2 None in
  let drive i =
    with_client addr @@ fun c ->
    results.(i) <- Some (Serve.Client.rpc c (Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Exact }))
  in
  let ths = List.init 2 (fun i -> Thread.create drive i) in
  List.iter Thread.join ths;
  let texts =
    Array.to_list results
    |> List.map (function
         | Some (Ok r) -> Serve.Render.to_string r
         | Some (Error e) -> Alcotest.fail (Xbound.Error.to_string e)
         | None -> Alcotest.fail "client did not run")
  in
  (match texts with
  | [ a; b ] -> checks "identical results" a b
  | _ -> assert false);
  let c = Cache.counters cache in
  checki "computed once across clients" solo_misses c.Cache.misses;
  checkb "second request joined or hit" true
    (c.Cache.joined + c.Cache.mem_hits >= 1)

(* workers=1 and capacity=1: with one request running and one queued,
   the third is rejected with the typed 429. *)
let test_serve_admission_reject () =
  let cache = Cache.create () in
  let ctx = Xbound.Ctx.create ~cache ~jobs:2 () in
  with_server ~workers:1 ~queue_capacity:1 ~ctx @@ fun addr ->
  match Serve.Addr.connect addr with
  | Error m -> Alcotest.fail m
  | Ok fd ->
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    (* Three different analyses so single-flight cannot collapse them.
       The first (div, the slow fork-heavy one) gets a head start so it
       is dequeued and occupying the one worker; then the second fills
       the one queue slot and the third must be rejected. *)
    let send i bench =
      Serve.Frame.write fd
        (Wire.encode_request
           { Wire.id = i; priority = Wire.Batch;
             request =
               Wire.Request.Analyze { bench; tier = Xbound.Tier.Exact } })
    in
    send 1 "div";
    Unix.sleepf 0.3;
    send 2 "tea8";
    send 3 "mult";
    let replies = List.init 3 (fun _ ->
        match Serve.Frame.read fd with
        | Ok r -> (
          match Wire.decode_response r with
          | Ok f -> f
          | Error e -> Alcotest.fail (Xbound.Error.to_string e))
        | Error e -> Alcotest.fail (Serve.Frame.read_error_to_string e))
    in
    let rejected =
      List.filter
        (fun f ->
          match f.Wire.result with
          | Error (Xbound.Error.Overloaded { capacity; _ }) ->
            checki "capacity reported" 1 capacity;
            true
          | _ -> false)
        replies
    in
    let succeeded =
      List.filter (fun f -> Result.is_ok f.Wire.result) replies
    in
    checki "one rejection" 1 (List.length rejected);
    checki "two successes" 2 (List.length succeeded);
    (* The rejected one is the last-submitted request. *)
    match rejected with
    | [ f ] -> checki "rejected id" 3 f.Wire.rid
    | _ -> assert false

(* The acceptance criterion in one test: render(exec(req)) in-process
   and render(rpc(req)) through the daemon are the same bytes. *)
let test_serve_byte_identical () =
  let cache = Cache.create () in
  let ctx = Xbound.Ctx.create ~cache ~jobs:2 () in
  let requests =
    [
      Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Exact };
      Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Static };
      Wire.Request.Explain
        {
          bench = "tea8";
          fmt = Wire.Request.Csv;
          top = 4;
          min_gap = 5;
          tier = Xbound.Tier.Exact;
        };
      Wire.Request.Explain
        {
          bench = "tea8";
          fmt = Wire.Request.Table;
          top = 4;
          min_gap = 5;
          tier = Xbound.Tier.Static;
        };
      Wire.Request.Run_concrete { bench = "mult"; seed = 8 };
      Wire.Request.Bench_list;
    ]
  in
  let local =
    List.map
      (fun r ->
        match Serve.Exec.exec ~ctx r with
        | Ok resp -> Serve.Render.to_string resp
        | Error e -> Alcotest.fail (Xbound.Error.to_string e))
      requests
  in
  with_server ~ctx @@ fun addr ->
  with_client addr @@ fun c ->
  List.iter2
    (fun r expected ->
      match Serve.Client.rpc c r with
      | Ok resp -> checks "byte-identical" expected (Serve.Render.to_string resp)
      | Error e -> Alcotest.fail (Xbound.Error.to_string e))
    requests local

(* ---------------- the admin lane ---------------- *)

(* Health and Stats are served inline on the reader thread, never
   through the scheduler: with one worker wedged on a slow analysis and
   the one queue slot taken, batch work is rejected with Overloaded —
   and the admin ops still answer. *)
let test_serve_admin_lane () =
  let cache = Cache.create () in
  let ctx = Xbound.Ctx.create ~cache ~jobs:2 () in
  with_server ~workers:1 ~queue_capacity:1 ~ctx @@ fun addr ->
  match Serve.Addr.connect addr with
  | Error m -> Alcotest.fail m
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let send i bench =
      Serve.Frame.write fd
        (Wire.encode_request
           { Wire.id = i; priority = Wire.Batch;
             request =
               Wire.Request.Analyze { bench; tier = Xbound.Tier.Exact } })
    in
    (* Wedge: div occupies the worker, tea8 fills the queue slot. *)
    send 1 "div";
    Unix.sleepf 0.3;
    send 2 "tea8";
    (* The scheduler is now saturated; the admin lane must not care.
       Health is served by a different reader thread than the one
       admitting request 2, so poll until the queue shows full. *)
    with_client addr @@ fun admin ->
    let health () =
      match Serve.Client.rpc admin Wire.Request.Health with
      | Ok
          (Wire.Response.Health
             { ok; uptime_s; queue_len; queue_capacity; inflight = _; workers })
        ->
        (ok, uptime_s, queue_len, queue_capacity, workers)
      | Ok _ -> Alcotest.fail "wrong response shape"
      | Error e -> Alcotest.fail (Xbound.Error.to_string e)
    in
    let deadline = Unix.gettimeofday () +. 5. in
    let rec wait_full () =
      let ((_, _, queue_len, _, _) as h) = health () in
      if queue_len = 1 || Unix.gettimeofday () > deadline then h
      else begin
        Thread.yield ();
        wait_full ()
      end
    in
    let ok, uptime_s, queue_len, queue_capacity, workers = wait_full () in
    checkb "ok" true ok;
    checki "workers" 1 workers;
    checki "capacity" 1 queue_capacity;
    checki "queue full" 1 queue_len;
    checkb "uptime sane" true (uptime_s > 0.);
    (match
       Serve.Client.rpc admin
         (Wire.Request.Stats { fmt = Wire.Request.Stats_prometheus })
     with
    | Ok (Wire.Response.Stats { snapshot; _ } as resp) ->
      let body = Serve.Render.to_string resp in
      checkb "prometheus body" true
        (String.length body > 0 && String.starts_with ~prefix:"# " body);
      checkb "gauge present" true
        (List.mem_assoc "serve.queue_len" snapshot.Telemetry.Snapshot.gauges)
    | Ok _ -> Alcotest.fail "wrong response shape"
    | Error e -> Alcotest.fail (Xbound.Error.to_string e));
    (* ... while batch work is genuinely being rejected. *)
    send 3 "mult";
    let replies =
      List.init 3 (fun _ ->
          match Serve.Frame.read fd with
          | Ok r -> (
            match Wire.decode_response r with
            | Ok f -> f
            | Error e -> Alcotest.fail (Xbound.Error.to_string e))
          | Error e -> Alcotest.fail (Serve.Frame.read_error_to_string e))
    in
    checki "one rejection" 1
      (List.length
         (List.filter
            (fun f ->
              match f.Wire.result with
              | Error (Xbound.Error.Overloaded _) -> true
              | _ -> false)
            replies))

(* A bounded Watch delivers exactly count frames: a full snapshot, then
   diffs. *)
let test_serve_watch_bounded () =
  with_server @@ fun addr ->
  with_client addr @@ fun c ->
  let frames = ref 0 in
  match
    Serve.Client.watch c ~interval_ms:20 ~count:3 ~on_frame:(fun resp ->
        (match resp with
        | Wire.Response.Stats { snapshot; _ } ->
          incr frames;
          checkb "window length sane" true
            (snapshot.Telemetry.Snapshot.uptime_s >= 0.)
        | _ -> Alcotest.fail "non-stats frame in watch stream");
        true)
  with
  | Ok () -> checki "exactly three frames" 3 !frames
  | Error e -> Alcotest.fail (Xbound.Error.to_string e)

(* An unbounded Watch ends cleanly when the client hangs up — and the
   server keeps serving other connections afterwards. *)
let test_serve_watch_client_disconnect () =
  with_server @@ fun addr ->
  (match Serve.Client.connect addr with
  | Error m -> Alcotest.fail m
  | Ok c ->
    let frames = ref 0 in
    let watcher =
      Thread.create
        (fun () ->
          ignore
            (Serve.Client.watch c ~interval_ms:20 ~count:0
               ~on_frame:(fun _ ->
                 incr frames;
                 true)))
        ()
    in
    let deadline = Unix.gettimeofday () +. 5. in
    while !frames < 2 && Unix.gettimeofday () < deadline do
      Thread.yield ()
    done;
    checkb "stream was flowing" true (!frames >= 2);
    Serve.Client.close c;
    Thread.join watcher);
  (* The server shrugged off the disconnect. *)
  with_client addr @@ fun c2 ->
  match Serve.Client.rpc c2 Wire.Request.Health with
  | Ok (Wire.Response.Health _) -> ()
  | Ok _ -> Alcotest.fail "wrong response shape"
  | Error e -> Alcotest.fail (Xbound.Error.to_string e)

(* An unbounded Watch also ends cleanly (Ok, not an error) when the
   server shuts down mid-stream. *)
let test_serve_watch_server_stop () =
  let result = ref None in
  let frames = ref 0 in
  let watcher = ref None in
  with_server (fun addr ->
      match Serve.Client.connect addr with
      | Error m -> Alcotest.fail m
      | Ok c ->
        watcher :=
          Some
            ( c,
              Thread.create
                (fun () ->
                  result :=
                    Some
                      (Serve.Client.watch c ~interval_ms:20 ~count:0
                         ~on_frame:(fun _ ->
                           incr frames;
                           true)))
                () );
        let deadline = Unix.gettimeofday () +. 5. in
        while !frames < 1 && Unix.gettimeofday () < deadline do
          Thread.yield ()
        done;
        checkb "stream started" true (!frames >= 1));
  (* with_server has stopped the daemon; the stream must have ended
     with Ok. *)
  match !watcher with
  | None -> Alcotest.fail "no watcher"
  | Some (c, th) ->
    Thread.join th;
    Serve.Client.close c;
    (match !result with
    | Some (Ok ()) -> ()
    | Some (Error e) ->
      Alcotest.fail ("watch errored on shutdown: " ^ Xbound.Error.to_string e)
    | None -> Alcotest.fail "watch did not return")

(* ---------------- access log exactness ---------------- *)

(* Per-request attribution is exact, not sampled: for a single client,
   the access log's exec-time and cache counter columns sum to the
   process-wide snapshot diff over the same window. *)
let test_serve_access_log_exact () =
  let log = Filename.temp_file "xbound-test-alog" ".jsonl" in
  let cache = Cache.create () in
  let ctx = Xbound.Ctx.create ~cache ~jobs:2 () in
  with_server ~access_log:log ~ctx @@ fun addr ->
  with_client addr @@ fun c ->
  let snap () =
    match
      Serve.Client.rpc c (Wire.Request.Stats { fmt = Wire.Request.Stats_json })
    with
    | Ok (Wire.Response.Stats { snapshot; _ }) -> snapshot
    | Ok _ -> Alcotest.fail "wrong response shape"
    | Error e -> Alcotest.fail (Xbound.Error.to_string e)
  in
  let before = snap () in
  for _ = 1 to 3 do
    match
      Serve.Client.rpc c
        (Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Exact })
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Xbound.Error.to_string e)
  done;
  let after = snap () in
  let d = Telemetry.Snapshot.diff ~before ~after in
  let entries =
    In_channel.with_open_text log In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
    |> List.map Explain.Ejson.parse
  in
  checki "one entry per request" 3 (List.length entries);
  List.iter
    (fun e ->
      Alcotest.(check (option string))
        "op" (Some "analyze")
        (Explain.Ejson.string_member "op" e);
      Alcotest.(check (option string))
        "outcome" (Some "ok")
        (Explain.Ejson.string_member "outcome" e);
      Alcotest.(check (option string))
        "tier" (Some "exact")
        (Explain.Ejson.string_member "tier" e);
      checkb "has id" true (Explain.Ejson.string_member "id" e <> None))
    entries;
  (* the log's exec times are the very values observed into the
     serve.exec_ns histogram — equal sums, not approximately *)
  let logged_exec_ns =
    List.fold_left
      (fun acc e ->
        match Explain.Ejson.float_member "exec_ns" e with
        | Some v -> Int64.add acc (Int64.of_float v)
        | None -> Alcotest.fail "entry without exec_ns")
      0L entries
  in
  (match
     List.find_opt
       (fun (h : Telemetry.Snapshot.histo) -> h.hname = "serve.exec_ns")
       d.Telemetry.Snapshot.histograms
   with
  | Some h ->
    checki "exec observations" 3 h.Telemetry.Snapshot.count;
    check Alcotest.int64 "exec time attribution is exact"
      h.Telemetry.Snapshot.sum_ns logged_exec_ns
  | None -> Alcotest.fail "no serve.exec_ns in the window");
  (* every process-wide cache counter move in the window is accounted
     to some request's scope tally *)
  let logged_counter name =
    List.fold_left
      (fun acc e ->
        match Explain.Ejson.member "counters" e with
        | Some cs ->
          acc
          + int_of_float
              (Option.value ~default:0.
                 (Explain.Ejson.float_member name cs))
        | None -> acc)
      0 entries
  in
  let cache_counters =
    List.filter
      (fun (name, _) -> String.starts_with ~prefix:"cache." name)
      d.Telemetry.Snapshot.counters
  in
  checkb "window saw cache traffic" true (cache_counters <> []);
  List.iter
    (fun (name, total) ->
      checki ("exact attribution for " ^ name) total (logged_counter name))
    cache_counters

(* ---------------- observability does not perturb bounds ---------- *)

(* The second acceptance criterion: with the access log and 1-in-1
   trace sampling on, rendered bounds are byte-identical to the plain
   in-process run — and the spool dir actually received traces. *)
let test_serve_observability_byte_identical () =
  let cache = Cache.create () in
  let ctx = Xbound.Ctx.create ~cache ~jobs:2 () in
  let requests =
    [
      Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Exact };
      Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Static };
      Wire.Request.Run_concrete { bench = "mult"; seed = 8 };
    ]
  in
  let plain =
    List.map
      (fun r ->
        match Serve.Exec.exec ~ctx r with
        | Ok resp -> Serve.Render.to_string resp
        | Error e -> Alcotest.fail (Xbound.Error.to_string e))
      requests
  in
  let log = Filename.temp_file "xbound-test-alog2" ".jsonl" in
  let trace_dir = Filename.temp_file "xbound-test-traces" "" in
  Sys.remove trace_dir;
  with_server ~access_log:log ~slow_ms:1 ~trace_sample:1 ~trace_dir ~ctx
  @@ fun addr ->
  with_client addr @@ fun c ->
  List.iter2
    (fun r expected ->
      match Serve.Client.rpc c r with
      | Ok resp ->
        checks "byte-identical under full observability" expected
          (Serve.Render.to_string resp)
      | Error e -> Alcotest.fail (Xbound.Error.to_string e))
    requests plain;
  let traces = Sys.readdir trace_dir in
  checki "every request sampled" (List.length requests)
    (Array.length traces);
  Array.iter
    (fun f ->
      let body =
        In_channel.with_open_text (Filename.concat trace_dir f)
          In_channel.input_all
      in
      checkb (f ^ " looks like a chrome trace") true
        (String.length body > 0 && body.[0] = '{'))
    traces

(* ---------------- cache sharding / migration ---------------- *)

let temp_dir () =
  let d = Filename.temp_file "xbound-test-shard" "" in
  Sys.remove d;
  d

let test_cache_migrate () =
  let dir = temp_dir () in
  let cache = Cache.create ~dir () in
  let keys =
    List.init 8 (fun i -> Cache.Key.of_string (Printf.sprintf "entry-%d" i))
  in
  List.iter
    (fun key -> ignore (Cache.memo cache ~ns:"t" ~key (fun () -> key)))
    keys;
  let entries, _ = Cache.disk_stats cache in
  checki "stored sharded" 8 entries;
  (* Flatten everything back into the legacy layout by hand. *)
  Array.iter
    (fun shard ->
      let sdir = Filename.concat dir shard in
      if Sys.file_exists sdir && Sys.is_directory sdir then begin
        Array.iter
          (fun f ->
            Sys.rename (Filename.concat sdir f) (Filename.concat dir f))
          (Sys.readdir sdir);
        Sys.rmdir sdir
      end)
    (Sys.readdir dir);
  let flat = Cache.create ~dir () in
  let entries, _ = Cache.disk_stats flat in
  checki "flat entries still counted" 8 entries;
  (* A fresh cache finds (and adopts) a legacy flat entry on load. *)
  let hit =
    Cache.memo flat ~ns:"t" ~key:(List.hd keys) (fun () ->
        Alcotest.fail "legacy entry not found")
  in
  checks "adopted value" (List.hd keys) hit;
  (* Bulk migration moves the rest; nothing is lost. *)
  let moved = Cache.migrate flat in
  checki "migrated the remaining flat entries" 7 moved;
  checkb "no flat entries left" true
    (Array.for_all
       (fun f -> Sys.is_directory (Filename.concat dir f))
       (Sys.readdir dir));
  let entries, _ = Cache.disk_stats flat in
  checki "all entries after migrate" 8 entries;
  let again = Cache.create ~dir () in
  List.iter
    (fun key ->
      let v =
        Cache.memo again ~ns:"t" ~key (fun () ->
            Alcotest.fail "entry lost by migration")
      in
      checks "value after migration" key v)
    keys;
  checki "second migrate is a no-op" 0 (Cache.migrate again);
  Cache.clear again;
  (try Sys.rmdir dir with Sys_error _ -> ());
  check Alcotest.bool "dir removed" false (Sys.file_exists dir)

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "error codes" `Quick test_error_codes;
          Alcotest.test_case "request codec" `Quick test_request_codec;
          Alcotest.test_case "response codec" `Quick test_response_codec;
          Alcotest.test_case "v1 compat" `Quick test_wire_v1_compat;
          Alcotest.test_case "envelopes" `Quick test_envelopes;
        ] );
      ( "frame",
        [
          Alcotest.test_case "round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "truncated" `Quick test_frame_truncated;
          Alcotest.test_case "oversized" `Quick test_frame_oversized;
        ] );
      ( "scheduler",
        [ Alcotest.test_case "admission" `Quick test_scheduler_admission ] );
      ( "daemon",
        [
          Alcotest.test_case "basic rpc" `Quick test_serve_basic;
          Alcotest.test_case "protocol errors" `Quick test_serve_protocol_errors;
          Alcotest.test_case "oversized closes" `Quick test_serve_oversized_closes;
          Alcotest.test_case "single flight" `Quick test_serve_single_flight;
          Alcotest.test_case "admission reject" `Quick test_serve_admission_reject;
          Alcotest.test_case "byte identical" `Quick test_serve_byte_identical;
        ] );
      ( "observability",
        [
          Alcotest.test_case "admin lane under saturation" `Quick
            test_serve_admin_lane;
          Alcotest.test_case "watch bounded" `Quick test_serve_watch_bounded;
          Alcotest.test_case "watch client disconnect" `Quick
            test_serve_watch_client_disconnect;
          Alcotest.test_case "watch server stop" `Quick
            test_serve_watch_server_stop;
          Alcotest.test_case "access log exactness" `Quick
            test_serve_access_log_exact;
          Alcotest.test_case "byte identical under observability" `Quick
            test_serve_observability_byte_identical;
        ] );
      ( "cache",
        [ Alcotest.test_case "shard migrate" `Quick test_cache_migrate ] );
    ]
