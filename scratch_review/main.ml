let () =
  let t = Telemetry.create () in
  print_string (Telemetry.to_chrome_json t)
