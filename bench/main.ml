(* Experiment harness: regenerates every table and figure of the paper
   (see DESIGN.md §4), plus Bechamel micro-benchmarks of the tool itself
   and the ablation studies.

   Usage:
     bench/main.exe                 run every table/figure
     bench/main.exe fig-5.1 ...     run selected experiments
     bench/main.exe micro           Bechamel micro-benchmarks
     bench/main.exe micro --smoke   tiny quota, for CI smoke runs
     bench/main.exe compare A B     diff two bench records (regression gate)
     bench/main.exe ablate          ablation studies
     bench/main.exe list            list experiment ids

   `micro` writes the machine-readable BENCH_micro.json snapshot and
   appends a timestamped record to BENCH_history.jsonl, so the perf
   trajectory accumulates across runs; `compare` diffs two such records
   (ns/run, phase seconds, cache and parallel speedup) against
   --tolerance and exits nonzero on a regression — CI runs it against
   the committed baseline.

   The knobs (-j/--jobs, --cache-dir, --no-cache, --trace, --stats) are
   the same ones the xbound CLI takes, defined once in [Cliterm]. *)

open Cmdliner

let list_experiments () =
  print_endline "experiments:";
  List.iter
    (fun (id, title, _) -> Printf.printf "  %-10s %s\n" id title)
    Report.Experiments.all;
  print_endline "  micro      bechamel micro-benchmarks (--smoke: tiny quota)";
  print_endline "  serve      daemon throughput/latency (--smoke: tiny quota)";
  print_endline "  compare    diff two bench records with --tolerance";
  print_endline "  ablate     ablation studies"

(* ---------------- micro-benchmarks ---------------- *)

(* Machine-readable mirror of the console output, so the perf trajectory
   is trackable across commits: run with -j 1 and -j N and compare the
   two files. *)
let write_bench_json entries cycles_per_run ~row_extras ~cache_json
    ~phases_json ~static_json ~gaps_json ~parallel_jobs ~parallel_speedup =
  let oc = open_out "BENCH_micro.json" in
  Printf.fprintf oc "{\n  \"jobs\": %d,\n  \"results\": [\n"
    (Parallel.default_jobs ());
  let last = List.length entries - 1 in
  List.iteri
    (fun i (name, ns) ->
      let runs_per_s = if ns > 0. then 1e9 /. ns else 0. in
      let cyc =
        match List.assoc_opt name cycles_per_run with
        | Some c -> Printf.sprintf ", \"cycles_per_s\": %.1f" (c *. runs_per_s)
        | None -> ""
      in
      let extra =
        match List.assoc_opt name row_extras with Some s -> s | None -> ""
      in
      Printf.fprintf oc
        "    {\"name\": %S, \"ns_per_run\": %.1f, \"runs_per_s\": %.3f%s%s}%s\n"
        name ns runs_per_s cyc extra
        (if i = last then "" else ","))
    entries;
  Printf.fprintf oc
    "  ],\n\
    \  \"phases\": %s,\n\
    \  \"cache\": %s,\n\
    \  \"static\": %s,\n\
    \  \"static_gap_pct\": %s,\n\
    \  \"parallel_jobs\": %d,\n\
    \  \"parallel_speedup\": %s\n\
     }\n"
    phases_json cache_json static_json gaps_json parallel_jobs
    (match parallel_speedup with
    | Some s -> Printf.sprintf "%.3f" s
    | None -> "null");
  close_out oc;
  prerr_endline "wrote BENCH_micro.json"

let iso8601_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* One record per micro run, newest last: the perf trajectory across
   commits/machines that BENCH_micro.json (a single snapshot) cannot
   show. `bench compare` reads the last record of a .jsonl file. *)
let append_history record =
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_history.jsonl"
  in
  output_string oc (Explain.Ejson.to_string (Explain.Regress.to_history_json record));
  output_char oc '\n';
  close_out oc;
  prerr_endline "appended BENCH_history.jsonl"

(* Cold vs warm full-analysis timing through the content-addressed
   cache. The warm pass uses a second Cache.t on the same directory, so
   it measures a fresh process hitting the disk layer, not the in-memory
   LRU. Returns the JSON blob for BENCH_micro.json. *)
let bench_cache pa cpu img =
  let dir = Filename.temp_file "xbound-bench-cache" "" in
  Sys.remove dir;
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let digest_of (a : Core.Analyze.t) =
    Digest.to_hex
      (Digest.string
         (Marshal.to_string
            ( a.Core.Analyze.peak_power,
              a.Core.Analyze.peak_index,
              a.Core.Analyze.peak_energy,
              a.Core.Analyze.power_trace )
            []))
  in
  let cold_cache = Cache.create ~dir () in
  let cold, cold_s = time (fun () -> Core.Analyze.run ~cache:cold_cache pa cpu img) in
  let warm_cache = Cache.create ~dir () in
  let warm, warm_s = time (fun () -> Core.Analyze.run ~cache:warm_cache pa cpu img) in
  let identical = String.equal (digest_of cold) (digest_of warm) in
  let speedup = if warm_s > 0. then cold_s /. warm_s else infinity in
  Printf.printf
    "%-28s cold %.3f s, warm %.3f s (%.0fx), bounds byte-identical: %b\n"
    "cache-analysis-tea8" cold_s warm_s speedup identical;
  print_endline ("cache counters (warm): " ^ Cache.counters_json warm_cache);
  let json =
    Printf.sprintf
      "{\"cold_s\": %.4f, \"warm_s\": %.5f, \"speedup\": %.1f, \
       \"bounds_identical\": %b, \"warm_counters\": %s}"
      cold_s warm_s speedup identical
      (Cache.counters_json warm_cache)
  in
  Cache.clear warm_cache;
  (try Sys.rmdir dir with Sys_error _ -> ());
  (json, cold_s, warm_s, speedup)

(* Cold vs warm static-tier timing through the "block" cache namespace,
   same two-Cache.t protocol as [bench_cache]. Returns the JSON blob and
   the warm ns/run for the results row that `bench compare` gates. *)
let bench_static pa cpu img (b : Benchprogs.Bench.t) =
  let dir = Filename.temp_file "xbound-bench-static" "" in
  Sys.remove dir;
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let run cache () =
    match
      Static.Ipet.analyze ~cache ~name:b.Benchprogs.Bench.name
        ~loop_bound:b.Benchprogs.Bench.loop_bound pa cpu img
    with
    | Ok s -> s
    | Error e -> failwith ("bench static: " ^ Static.Cfg.error_to_string e)
  in
  let cold_cache = Cache.create ~dir () in
  let _, cold_s = time (run cold_cache) in
  let warm_cache = Cache.create ~dir () in
  let s, warm_s = time (run warm_cache) in
  let speedup = if warm_s > 0. then cold_s /. warm_s else infinity in
  Printf.printf "%-28s cold %.3f s, warm %.4f s (%.0fx), %d blocks, %d loops\n"
    ("static-analysis-" ^ b.Benchprogs.Bench.name)
    cold_s warm_s speedup s.Static.Ipet.s_blocks s.Static.Ipet.s_loops;
  Cache.clear warm_cache;
  (try Sys.rmdir dir with Sys_error _ -> ());
  (cold_s, warm_s, speedup)

(* Static-vs-exact bound gap across the whole paper suite: the measured
   looseness of the static tier, and (as a side effect) a cross-check
   that the static bound dominates on every benchmark. *)
let static_gaps pa cpu =
  print_endline
    "static vs exact bound gap (paper suite; + means static is looser):";
  Printf.printf "  %-10s %12s %12s %8s %8s\n" "benchmark" "exact nJ"
    "static nJ" "e-gap%" "p-gap%";
  List.filter_map
    (fun (b : Benchprogs.Bench.t) ->
      let img = Benchprogs.Bench.assemble b in
      let a = Core.Analyze.run pa cpu img in
      match
        Static.Ipet.analyze ~name:b.Benchprogs.Bench.name
          ~loop_bound:b.Benchprogs.Bench.loop_bound pa cpu img
      with
      | Error e ->
        Printf.printf "  %-10s (static tier unavailable: %s)\n"
          b.Benchprogs.Bench.name
          (Static.Cfg.error_to_string e);
        None
      | Ok s ->
        let exact_e = a.Core.Analyze.peak_energy.Core.Peak_energy.energy in
        let exact_p = a.Core.Analyze.peak_power in
        let gap stat exact =
          if exact = 0. then 0. else (stat -. exact) /. exact *. 100.
        in
        let e_gap = gap s.Static.Ipet.s_peak_energy_j exact_e in
        let p_gap = gap s.Static.Ipet.s_peak_power_w exact_p in
        Printf.printf "  %-10s %12.3f %12.3f %+7.1f%% %+7.1f%%\n"
          b.Benchprogs.Bench.name (exact_e *. 1e9)
          (s.Static.Ipet.s_peak_energy_j *. 1e9)
          e_gap p_gap;
        if e_gap < 0. || p_gap < 0. then
          failwith
            (Printf.sprintf
               "bench static: static bound below exact on %s (soundness bug)"
               b.Benchprogs.Bench.name);
        Some (b.Benchprogs.Bench.name, e_gap))
    Benchprogs.Bench.all

let micro ~smoke () =
  let open Bechamel in
  let cpu = Cpu.build () in
  let pa = Core.Analyze.poweran_for cpu in
  let b = Benchprogs.Bench.find "tea8" in
  let img = Benchprogs.Bench.assemble b in
  let concrete_step =
    Test.make ~name:"concrete-100-cycles"
      (Staged.stage (fun () ->
           let mem = Cpu.mem_of_image img in
           Cpu.zero_ram mem;
           let e = Gatesim.Engine.create cpu.Cpu.netlist ~ports:cpu.Cpu.ports ~mem in
           Gatesim.Engine.set_port_in e (Array.make 16 Tri.Zero);
           Gatesim.Engine.set_reset e Tri.One;
           ignore (Gatesim.Engine.step e);
           ignore (Gatesim.Engine.step e);
           Gatesim.Engine.set_reset e Tri.Zero;
           for _ = 1 to 100 do
             ignore (Gatesim.Engine.step e)
           done))
  in
  let symbolic_tree =
    Test.make ~name:"symbolic-analysis-tea8"
      (Staged.stage (fun () -> ignore (Core.Analyze.run pa cpu img)))
  in
  (* Specialization ablation control: the identical analysis on the full
     gate program. The gap between this row and symbolic-analysis-tea8
     is the measured value of constant folding + program repacking. *)
  let symbolic_tree_nospec =
    Test.make ~name:"symbolic-analysis-tea8-nospec"
      (Staged.stage (fun () ->
           ignore (Core.Analyze.run ~specialize:false pa cpu img)))
  in
  (* Sequential tree exploration on an explicit one-worker pool: the
     in-process baseline the parallel variant above is compared to. *)
  let seq_pool = Parallel.Pool.create ~jobs:1 in
  let symbolic_tree_seq =
    Test.make ~name:"symbolic-analysis-tea8-j1"
      (Staged.stage (fun () -> ignore (Core.Analyze.run ~pool:seq_pool pa cpu img)))
  in
  (* Task-parallel exploration at the machine's worker count. The row
     name is a fixed literal ("-jN", not "-j8") so records from
     machines with different core counts still pair up in `bench
     compare`; the actual N travels as parallel_jobs, and compare only
     diffs parallel_speedup when both records used the same N. *)
  let par_jobs = Parallel.default_jobs () in
  let par_pool = Parallel.Pool.create ~jobs:par_jobs in
  let symbolic_tree_par =
    Test.make ~name:"symbolic-analysis-tea8-jN"
      (Staged.stage (fun () -> ignore (Core.Analyze.run ~pool:par_pool pa cpu img)))
  in
  (* div is the fork-heavy benchmark (tea8 never forks), so this is the
     one row whose inner loop actually exercises fork spawning and the
     gang-stepped sibling lanes. *)
  let img_div = Benchprogs.Bench.assemble (Benchprogs.Bench.find "div") in
  let symbolic_div =
    Test.make ~name:"symbolic-analysis-div-j1"
      (Staged.stage (fun () ->
           ignore (Core.Analyze.run ~pool:seq_pool pa cpu img_div)))
  in
  (* One fully instrumented, uncached reference analysis: its per-phase
     wall-time breakdown is mirrored into BENCH_micro.json, and the same
     run is exported as a Chrome trace for the CI artifact. *)
  let words_per_cycle ~specialize =
    (* counters are no-ops without an ambient sink, so install one for
       the measured run *)
    Telemetry.with_ambient (Telemetry.create ()) @@ fun () ->
    let before = Telemetry.counters () in
    let a = Core.Analyze.run ~specialize pa cpu img in
    let d = Telemetry.diff ~before ~after:(Telemetry.counters ()) in
    let get name = Option.value ~default:0 (List.assoc_opt name d) in
    ( a,
      float_of_int (get "engine.words_evaluated")
      /. float_of_int (max 1 (get "engine.cycles")) )
  in
  let _, wpc_spec = words_per_cycle ~specialize:true in
  let _, wpc_nospec = words_per_cycle ~specialize:false in
  let sp = Core.Analyze.specialization_for cpu in
  let gate_count = Netlist.gate_count cpu.Cpu.netlist in
  let spec_gate_count = gate_count - Netlist.Specialize.folded_count sp in
  Printf.printf
    "%-28s %d gates -> %d specialized (%d folded, %d swept), %.1f -> %.1f \
     words/cycle\n"
    "specialization-tea8" gate_count spec_gate_count
    (Netlist.Specialize.folded_count sp)
    (Netlist.Specialize.swept sp) wpc_nospec wpc_spec;
  let row_extras =
    let spec_row wpc spec_gates =
      Printf.sprintf
        ", \"gate_count\": %d, \"specialized_gate_count\": %d, \
         \"words_per_cycle\": %.1f"
        gate_count spec_gates wpc
    in
    [
      ("symbolic-analysis-tea8", spec_row wpc_spec spec_gate_count);
      ("symbolic-analysis-tea8-j1", spec_row wpc_spec spec_gate_count);
      ("symbolic-analysis-tea8-jN", spec_row wpc_spec spec_gate_count);
      ("symbolic-analysis-tea8-nospec", spec_row wpc_nospec gate_count);
      ("symbolic-analysis-div-j1", spec_row wpc_spec spec_gate_count);
    ]
  in
  let tel = Telemetry.create () in
  let a = Telemetry.with_ambient tel (fun () -> Core.Analyze.run pa cpu img) in
  Telemetry.write_chrome tel ~file:"BENCH_micro_trace.json";
  prerr_endline "wrote BENCH_micro_trace.json";
  let phases = Telemetry.phase_totals tel in
  let phases_json =
    "{"
    ^ String.concat ", "
        (List.map (fun (name, s) -> Printf.sprintf "%S: %.4f" name s) phases)
    ^ "}"
  in
  Printf.printf "%-28s %s\n" "phase-breakdown-tea8"
    (String.concat ", "
       (List.map (fun (name, s) -> Printf.sprintf "%s %.3fs" name s) phases));
  let peak_power =
    Test.make ~name:"algorithm2-peak-power"
      (Staged.stage (fun () ->
           ignore (Core.Peak_power.of_tree pa a.Core.Analyze.tree)))
  in
  let cpu_build =
    Test.make ~name:"cpu-elaboration" (Staged.stage (fun () -> ignore (Cpu.build ())))
  in
  (* Smoke mode trades estimate quality for wall time: one-twentieth of
     the quota still runs every benchmark at least once, which is what
     CI needs to catch crashes and gross regressions. *)
  let cfg =
    if smoke then Benchmark.cfg ~limit:3 ~quota:(Time.second 0.05) ()
    else Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let sym_cycles = float_of_int a.Core.Analyze.sym_stats.Gatesim.Sym.total_cycles in
  let cycles_per_run =
    [
      (* 2 reset + 100 stepped cycles *)
      ("concrete-100-cycles", 102.);
      ("symbolic-analysis-tea8", sym_cycles);
      ("symbolic-analysis-tea8-nospec", sym_cycles);
      ("symbolic-analysis-tea8-j1", sym_cycles);
      ("symbolic-analysis-tea8-jN", sym_cycles);
      ("algorithm2-peak-power", float_of_int (Array.length a.Core.Analyze.flattened));
    ]
  in
  let collected = ref [] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
        |> Analyze.all
             (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
             Toolkit.Instance.monotonic_clock
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
            Printf.printf "%-28s %12.1f ns/run\n" name est;
            collected := (name, est) :: !collected
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        results)
    [
      concrete_step; symbolic_tree; symbolic_tree_nospec; symbolic_tree_seq;
      symbolic_tree_par; symbolic_div; peak_power; cpu_build;
    ];
  let cache_json, cold_s, warm_s, speedup = bench_cache pa cpu img in
  let st_cold_s, st_warm_s, st_speedup = bench_static pa cpu img b in
  let gaps = static_gaps pa cpu in
  let entries =
    List.rev !collected @ [ ("static-analysis-tea8", st_warm_s *. 1e9) ]
  in
  (* The headline speedup of the static tier: warm static analysis vs
     one exact symbolic exploration of the same program. *)
  let static_vs_exact =
    match List.assoc_opt "symbolic-analysis-tea8" entries with
    | Some exact_ns when st_warm_s > 0. -> exact_ns /. 1e9 /. st_warm_s
    | _ -> 0.
  in
  Printf.printf "%-28s %.0fx (warm static vs exact)\n" "static-vs-exact-tea8"
    static_vs_exact;
  let static_json =
    Printf.sprintf
      "{\"cold_s\": %.4f, \"warm_s\": %.5f, \"speedup\": %.1f, \
       \"vs_exact_speedup\": %.1f}"
      st_cold_s st_warm_s st_speedup static_vs_exact
  in
  let gaps_json =
    "{"
    ^ String.concat ", "
        (List.map (fun (n, g) -> Printf.sprintf "%S: %.2f" n g) gaps)
    ^ "}"
  in
  let parallel_speedup =
    match
      ( List.assoc_opt "symbolic-analysis-tea8-j1" entries,
        List.assoc_opt "symbolic-analysis-tea8-jN" entries )
    with
    | Some j1, Some jn when jn > 0. -> Some (j1 /. jn)
    | _ -> None
  in
  (match parallel_speedup with
  | Some s ->
    Printf.printf "%-28s %.2fx at -j%d\n" "parallel-speedup-tea8" s par_jobs
  | None -> ());
  write_bench_json entries cycles_per_run ~row_extras ~cache_json ~phases_json
    ~static_json ~gaps_json ~parallel_jobs:par_jobs ~parallel_speedup;
  append_history
    {
      Explain.Regress.label = "micro";
      timestamp = Some (iso8601_now ());
      jobs = Some (Parallel.default_jobs ());
      results = entries;
      phases;
      cache_cold_s = Some cold_s;
      cache_warm_s = Some warm_s;
      cache_speedup = Some speedup;
      parallel_jobs = Some par_jobs;
      parallel_speedup;
      static_gap_pct = gaps;
    }

(* ---------------- serve throughput ---------------- *)

(* Throughput and latency of the xbound serve daemon, measured in
   process: a server on a temp unix socket, N concurrent clients each
   firing repeated `analyze tea8` requests. After the first request
   warms the shared cache, every further one is an LRU hit — the number
   this records is the service overhead (framing, scheduling, cache
   lookup), which is exactly what the daemon exists to make cheap. The
   cold single-shot time is the CLI baseline the daemon is compared
   to. *)
let bench_serve ~smoke () =
  let clients = if smoke then 2 else 4 in
  let per_client = if smoke then 10 else 50 in
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xbound-bench-serve-%d.sock" (Unix.getpid ()))
  in
  let cache_dir = Filename.temp_file "xbound-bench-serve" "" in
  Sys.remove cache_dir;
  (* Cold single-shot baseline: what one CLI invocation pays, including
     the analysis itself (fresh cache, nothing warm). *)
  let cold_ctx = Xbound.Ctx.create ~cache:(Cache.create ~dir:cache_dir ()) () in
  let t0 = Unix.gettimeofday () in
  (match Serve.Exec.exec ~ctx:cold_ctx (Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Exact }) with
  | Ok _ -> ()
  | Error e -> failwith (Xbound.Error.to_string e));
  let cold_s = Unix.gettimeofday () -. t0 in
  let tel = Telemetry.create () in
  let h_rtt = Telemetry.Histogram.make "bench.serve.rtt_ns" in
  let reqs_per_s, p50_ms, p99_ms =
    Telemetry.with_ambient tel @@ fun () ->
    let server =
      match
        Serve.Server.start
          (Serve.Server.config ~workers:2 ~queue_capacity:64
             ~listen:(Serve.Addr.Unix_sock sock)
             ~ctx:
               (Xbound.Ctx.create ~cache:(Cache.create ~dir:cache_dir ()) ())
             ())
      with
      | Ok s -> s
      | Error m -> failwith ("bench serve: " ^ m)
    in
    Fun.protect ~finally:(fun () -> Serve.Server.stop server) @@ fun () ->
    let drive () =
      match Serve.Client.connect (Serve.Addr.Unix_sock sock) with
      | Error m -> failwith ("bench serve: " ^ m)
      | Ok client ->
        Fun.protect ~finally:(fun () -> Serve.Client.close client)
        @@ fun () ->
        for _ = 1 to per_client do
          let r0 = Telemetry.now_ns () in
          (match
             Serve.Client.rpc client (Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Exact })
           with
          | Ok _ -> ()
          | Error e -> failwith (Xbound.Error.to_string e));
          Telemetry.Histogram.observe h_rtt
            (Int64.sub (Telemetry.now_ns ()) r0)
        done
    in
    (* One warming request so the measured window is steady-state. *)
    (match Serve.Client.connect (Serve.Addr.Unix_sock sock) with
    | Error m -> failwith ("bench serve: " ^ m)
    | Ok client ->
      ignore (Serve.Client.rpc client (Wire.Request.Analyze { bench = "tea8"; tier = Xbound.Tier.Exact }));
      Serve.Client.close client);
    let t0 = Unix.gettimeofday () in
    let threads = List.init clients (fun _ -> Thread.create drive ()) in
    List.iter Thread.join threads;
    let dt = Unix.gettimeofday () -. t0 in
    let total = clients * per_client in
    let ms q =
      Int64.to_float (Telemetry.Histogram.percentile h_rtt q) /. 1e6
    in
    (float_of_int total /. dt, ms 0.5, ms 0.99)
  in
  let speedup = reqs_per_s *. cold_s in
  (* The server ran in-process under the same ambient sink, so its
     admission histograms are readable here: how deep the queue got and
     how long requests waited in it. *)
  let queue_depth_p99 =
    Int64.to_float
      (Telemetry.Histogram.percentile
         (Telemetry.Histogram.make "serve.queue_depth")
         0.99)
  in
  let queue_wait = Telemetry.Histogram.make "serve.queue_wait_ns" in
  let queue_wait_p50_ms =
    Int64.to_float (Telemetry.Histogram.percentile queue_wait 0.5) /. 1e6
  in
  let queue_wait_p99_ms =
    Int64.to_float (Telemetry.Histogram.percentile queue_wait 0.99) /. 1e6
  in
  Printf.printf
    "%-28s %.1f req/s (%d clients), rtt p50 %.2f ms, p99 %.2f ms\n"
    "serve-analyze-tea8" reqs_per_s clients p50_ms p99_ms;
  Printf.printf
    "%-28s depth p99 %.0f, wait p50 %.2f ms, p99 %.2f ms\n"
    "serve-queue" queue_depth_p99 queue_wait_p50_ms queue_wait_p99_ms;
  Printf.printf
    "%-28s %.3f s cold single-shot -> %.0fx warm daemon rate\n"
    "serve-vs-cold" cold_s speedup;
  (* Merge the serve row into BENCH_micro.json without disturbing the
     micro rows (bench compare ignores unknown members). *)
  let serve_json =
    Explain.Ejson.Obj
      [
        ("clients", Explain.Ejson.Num (float_of_int clients));
        ("requests", Explain.Ejson.Num (float_of_int (clients * per_client)));
        ("requests_per_s", Explain.Ejson.Num reqs_per_s);
        ("rtt_p50_ms", Explain.Ejson.Num p50_ms);
        ("rtt_p99_ms", Explain.Ejson.Num p99_ms);
        ("queue_depth_p99", Explain.Ejson.Num queue_depth_p99);
        ("queue_wait_p50_ms", Explain.Ejson.Num queue_wait_p50_ms);
        ("queue_wait_p99_ms", Explain.Ejson.Num queue_wait_p99_ms);
        ("cold_single_shot_s", Explain.Ejson.Num cold_s);
        ("speedup_vs_cold", Explain.Ejson.Num speedup);
      ]
  in
  let doc =
    match
      if Sys.file_exists "BENCH_micro.json" then
        Explain.Ejson.parse_opt
          (In_channel.with_open_text "BENCH_micro.json" In_channel.input_all)
      else None
    with
    | Some (Explain.Ejson.Obj members) ->
      Explain.Ejson.Obj
        (List.remove_assoc "serve" members @ [ ("serve", serve_json) ])
    | _ -> Explain.Ejson.Obj [ ("serve", serve_json) ]
  in
  Out_channel.with_open_text "BENCH_micro.json" (fun oc ->
      output_string oc (Explain.Ejson.to_string ~indent:2 doc);
      output_char oc '\n');
  prerr_endline "merged serve row into BENCH_micro.json";
  append_history
    {
      Explain.Regress.label = "serve";
      timestamp = Some (iso8601_now ());
      jobs = Some (Parallel.default_jobs ());
      results =
        [
          ("serve-analyze-tea8-warm", 1e9 /. reqs_per_s);
          ("serve-rtt-p50", p50_ms *. 1e6);
          ("serve-rtt-p99", p99_ms *. 1e6);
          ("serve-queue-depth-p99", queue_depth_p99);
          ("serve-queue-wait-p50", queue_wait_p50_ms *. 1e6);
          ("serve-queue-wait-p99", queue_wait_p99_ms *. 1e6);
        ];
      phases = [];
      cache_cold_s = Some cold_s;
      cache_warm_s = None;
      cache_speedup = Some speedup;
      parallel_jobs = None;
      parallel_speedup = None;
      static_gap_pct = [];
    };
  (* Leave no temp state behind. *)
  let cache = Cache.create ~dir:cache_dir () in
  Cache.clear cache;
  (try Sys.rmdir cache_dir with Sys_error _ -> ());
  try Sys.remove sock with Sys_error _ -> ()

(* ---------------- ablations (DESIGN.md §5) ---------------- *)

let ablate () =
  let cpu = Cpu.build () in
  let pa = Core.Analyze.poweran_for cpu in
  let lib = Stdcell.default in
  print_endline "Ablation 1: even/odd double-VCD vs naive single-file maximization";
  let b = Benchprogs.Bench.find "intAVG" in
  let img = Benchprogs.Bench.assemble b in
  let a = Core.Analyze.run pa cpu img in
  let path = a.Core.Analyze.flattened in
  let tree = a.Core.Analyze.tree in
  let via_vcd, _, _ =
    Core.Evenodd.peak_power_via_vcd pa lib ~initial:tree.Gatesim.Trace.initial path
  in
  let replayed = Core.Evenodd.replay ~initial:tree.Gatesim.Trace.initial path in
  let nl = cpu.Cpu.netlist in
  let both =
    Core.Evenodd.maximize lib nl ~parity:1
      (Core.Evenodd.maximize lib nl ~parity:0 replayed path)
      path
  in
  let single =
    Core.Evenodd.power_from_vcd pa ~n_cycles:(Array.length path)
      (Core.Evenodd.to_vcd nl both)
  in
  let pk s = fst (Poweran.peak_of s) in
  Printf.printf
    "  double-VCD peak %.4f mW; naive single-file peak %.4f mW (a single file\n\
    \  cannot maximize adjacent cycles simultaneously); direct bound %.4f mW\n"
    (pk via_vcd *. 1e3) (pk single *. 1e3)
    (a.Core.Analyze.peak_power *. 1e3);
  print_endline
    "Ablation 2: state dedup (Algorithm 1 line 19) on an input-dependent loop";
  (* a polling loop: without the seen-state cut, exploration would never
     terminate; higher revisit limits unroll it further *)
  let open Benchprogs.Bench.E in
  let poll_body =
    prologue
    @ [
        lbl "poll";
        mov (abs (Benchprogs.Bench.input_base)) (dreg 4);
        and_ (imm 1) (dreg 4);
        i (Isa.Insn.J (Isa.Insn.JNE, Isa.Insn.Sym "poll"));
      ]
  in
  let img2 =
    Isa.Asm.assemble
      {
        Isa.Asm.name = "poll";
        entry = "start";
        sections =
          [
            {
              Isa.Asm.org = Isa.Memmap.rom_base;
              items = (Isa.Asm.Label "start" :: poll_body) @ Isa.Asm.halt_items;
            };
          ];
      }
  in
  let run_with revisit =
    let mem = Cpu.mem_of_image img2 in
    let e = Gatesim.Engine.create cpu.Cpu.netlist ~ports:cpu.Cpu.ports ~mem in
    let t0 = Unix.gettimeofday () in
    let _, stats =
      Gatesim.Sym.run e
        {
          (Gatesim.Sym.default_config
             ~is_end:(Cpu.is_end_cycle ~halt_addr:img2.Isa.Asm.halt_addr))
          with
          Gatesim.Sym.revisit_limit = revisit;
          max_paths = 8192;
        }
    in
    (stats, Unix.gettimeofday () -. t0)
  in
  List.iter
    (fun revisit ->
      let st, dt = run_with revisit in
      Printf.printf
        "  revisit=%d: %d paths, %d cycles, %d dedup hits, %.2fs (without the\n\
        \  cut the loop would explore forever)\n"
        revisit st.Gatesim.Sym.paths st.Gatesim.Sym.total_cycles
        st.Gatesim.Sym.dedup_hits dt)
    [ 0; 3 ];
  print_endline "Ablation 3: conservative X-activity marking contribution";
  let b4 = Benchprogs.Bench.find "mult" in
  let a4 = Core.Analyze.run pa cpu (Benchprogs.Bench.assemble b4) in
  let without_x =
    Array.map (fun cy -> Poweran.cycle_power_observed pa cy) a4.Core.Analyze.flattened
  in
  Printf.printf
    "  mult: bound with X-activity %.4f mW; transitions-only (unsound!) %.4f mW\n"
    (a4.Core.Analyze.peak_power *. 1e3)
    (fst (Poweran.peak_of without_x) *. 1e3)

(* ---------------- bench compare (regression gate) ---------------- *)

(* Exit codes: 0 clean, 1 regression beyond tolerance, 2 usage/parse
   error — so CI can distinguish "slower" from "broken". With --gate,
   only regressions on matching metrics are fatal; the rest are
   reported but warn-only (noisy rows stay visible without flaking
   the build). *)
let compare_records ~tolerance ~gates = function
  | [ base_path; cur_path ] -> (
    match (Explain.Regress.load base_path, Explain.Regress.load cur_path) with
    | Ok base, Ok cur ->
      let deltas =
        Explain.Regress.compare_records ~tolerance_pct:tolerance ~base ~cur ()
      in
      print_string (Explain.Regress.to_table ~tolerance_pct:tolerance deltas);
      let all = Explain.Regress.regressions deltas in
      let fatal = Explain.Regress.gated ~gates deltas in
      if gates <> [] && List.length all > List.length fatal then
        Printf.printf "%d ungated regression(s) reported warn-only\n"
          (List.length all - List.length fatal);
      if fatal <> [] then exit 1
    | Error m, _ | _, Error m ->
      prerr_endline ("bench compare: " ^ m);
      exit 2)
  | _ ->
    prerr_endline
      "usage: bench compare BASE.json CURRENT.json [--tolerance PCT] \
       [--gate SUBSTR]... (a .jsonl history file means its last record)";
    exit 2

(* ---------------- entry point ---------------- *)

let () =
  let ids_arg =
    let doc =
      "Experiment ids to run (default: every table/figure). Special ids: \
       $(b,micro), $(b,serve), $(b,compare) $(i,BASE) $(i,CURRENT), \
       $(b,ablate), $(b,list)."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let smoke_arg =
    let doc =
      "Tiny measurement quota for the micro benchmarks — runs everything at \
       least once, for CI smoke coverage rather than stable estimates."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let tolerance_arg =
    let doc =
      "Allowed slowdown for $(b,compare), in percent: a metric that got \
       slower (or a cache speedup that dropped) by more than this is a \
       regression and the exit code is 1."
    in
    Arg.(value & opt float 25. & info [ "tolerance" ] ~docv:"PCT" ~doc)
  in
  let gate_arg =
    let doc =
      "Hard-gate $(b,compare) on metrics whose name contains $(docv) \
       (repeatable). With at least one gate, only matching regressions \
       set the exit code; others are reported warn-only. Without gates, \
       every regression is fatal."
    in
    Arg.(value & opt_all string [] & info [ "gate" ] ~docv:"SUBSTR" ~doc)
  in
  let run c smoke tolerance gates ids =
    let report_ctx () = Report.Context.create ?cache:(Cliterm.cache c) () in
    match ids with
    | [ "list" ] -> list_experiments ()
    | "compare" :: files -> compare_records ~tolerance ~gates files
    | [] ->
      print_string (Report.Experiments.run_all (report_ctx ()));
      print_newline ()
    | ids ->
      List.iter
        (fun id ->
          match id with
          | "micro" -> micro ~smoke ()
          | "serve" -> bench_serve ~smoke ()
          | "ablate" -> ablate ()
          | "list" -> list_experiments ()
          | id ->
            print_string (Report.Experiments.find id (report_ctx ()));
            print_newline ())
        ids
  in
  let info =
    Cmd.info "bench" ~version:"1.2.0"
      ~doc:"Regenerate the paper's tables/figures and micro-benchmark the tool"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const run $ Cliterm.term $ smoke_arg $ tolerance_arg $ gate_arg
            $ ids_arg)))
