(** The stable public API of the xbound analysis tool.

    Everything the examples, the CLI, the bench harness and external
    users need, without reaching into [Core.*] / [Report.*] internals:
    build a {!program} (from a benchmark name, an assembly AST, assembly
    source text, or an assembled image), then {!analyze} it into
    guaranteed peak power/energy bounds. All failures are values — a
    typed {!Error.t} instead of [failwith] escapes — and every heavy
    entry point takes one consolidated {!Ctx.t} execution context
    bundling the standard knobs: an optional content-addressed
    {!Cache.t}, a worker-domain count, and an optional {!Telemetry.t}
    sink for spans/counters/trace export.

    The processor (netlist + power context) is elaborated once per
    process, lazily, and shared by every call. *)

(** {1 Bound tiers}

    Every bound carries the tier that produced it:

    - [Exact] — Algorithm 1 whole-program symbolic execution; the tight
      bound, but exploration cost grows with the program's path space.
    - [Static] — CFG extraction + per-block characterization + an
      IPET-style loop-nest longest-path combiner ({!Static.Ipet}).
      Always terminates, always dominates the exact bound for the same
      [loop_bound], and is typically much looser on energy.
    - [Auto] — static first; escalate to exact when the static cycle
      bound says exact exploration is feasible. A returned analysis
      never carries [Auto] — it resolves to the tier that produced it. *)

module Tier = Core.Tier

(** A bound value with its provenance: the producing tier and the
    analysis version it was computed under. *)
module Bound : sig
  type t = { value : float; tier : Tier.t; analysis_version : int }

  (** Tag a value as exact-tier, at the current analysis version. *)
  val exact : float -> t

  (** Tag a value as static-tier, at the current analysis version. *)
  val static : float -> t
end

module Error : sig
  type t =
    | Parse of { file : string; line : int; message : string }
        (** assembly source text rejected by the parser *)
    | Assembly of { program : string; message : string }
        (** AST rejected by the assembler (layout, undefined symbol...) *)
    | Netlist of string  (** processor elaboration failed *)
    | Analysis of { program : string; message : string }
        (** symbolic analysis failed (path limit, unbounded loop...) *)
    | Static_cfg of { program : string; message : string }
        (** the static tier cannot bound this program (indirect branch,
            irreducible loop, recursion...) — see {!Static.Cfg.error} *)
    | Cache of string  (** cache directory unusable *)
    | Unknown_benchmark of { name : string; available : string list }
    | Overloaded of { queued : int; capacity : int }
        (** the serve scheduler's admission queue was full — the
            429-style typed rejection; retry later or as batch *)
    | Protocol of string
        (** malformed wire traffic: bad frame, bad JSON, unsupported
            protocol version *)

  (** One-line diagnostic, suitable for stderr. For
      [Unknown_benchmark] with more than ~10 bundled benchmarks the
      message suggests the closest name by edit distance instead of
      dumping the whole list. *)
  val to_string : t -> string

  val pp : Format.formatter -> t -> unit

  (** The stable wire discriminant for this constructor (["parse"],
      ["overloaded"], ...). Part of the serve protocol: never renamed. *)
  val code : t -> string

  (** JSON image shipped by the serve protocol: a [code] member plus the
      constructor's fields. [of_wire (to_wire e) = Some e] for every
      error value. *)
  val to_wire : t -> Explain.Ejson.t

  (** [None] on an unknown code or missing fields (the caller degrades
      to {!Protocol}). *)
  val of_wire : Explain.Ejson.t -> t option
end

(** {1 Execution context}

    Every heavy entry point takes one consolidated {!Ctx.t}. (The
    pre-[Ctx] per-call [?cache]/[?jobs] optionals are gone: [Ctx.t] is
    the only way to pass options.) *)

module Ctx : sig
  type t = {
    cache : Cache.t option;
        (** content-addressed result cache (memory + optional disk) *)
    jobs : int option;
        (** process-wide worker-domain count; [None] keeps the current
            setting (the [--jobs] flag / recommended count) *)
    telemetry : Telemetry.t option;
        (** when set, installed as the ambient sink for the duration of
            the call: spans, counters and histograms are recorded and
            the call's per-phase timings appear on the result *)
    tier : Tier.t;
        (** which bound tier {!analyze} runs (default [Exact]) *)
    specialize : bool;
        (** run engines on the application-specialized gate program
            (default [true]). Bounds, trees and reports are bit-identical
            either way — the flag exists for differential testing and as
            an escape hatch, not as a precision trade-off. *)
  }

  (** No cache, inherited job count, no telemetry, exact tier,
      specialization on. *)
  val default : t

  val create :
    ?cache:Cache.t ->
    ?jobs:int ->
    ?telemetry:Telemetry.t ->
    ?tier:Tier.t ->
    ?specialize:bool ->
    unit ->
    t
end

(** {1 Programs} *)

(** An analyzable application: an assembled image plus its analysis
    knobs. *)
type program

val name : program -> string
val image : program -> Isa.Asm.image

(** [of_image ?name ?loop_bound ?max_paths image] — wrap an already
    assembled image. [loop_bound] is the Seen-edge unroll bound for
    energy analysis (default 16); [max_paths] bounds Algorithm 1's
    exploration (default 4096). *)
val of_image :
  ?name:string -> ?loop_bound:int -> ?max_paths:int -> Isa.Asm.image -> program

(** [of_ast ?loop_bound ?max_paths ast] — assemble an {!Isa.Asm.program}
    AST. *)
val of_ast :
  ?loop_bound:int ->
  ?max_paths:int ->
  Isa.Asm.program ->
  (program, Error.t) Stdlib.result

(** [of_source ?name ?loop_bound ?max_paths text] — parse and assemble
    MSP430-subset assembly source text ([name] is used in
    diagnostics). *)
val of_source :
  ?name:string ->
  ?loop_bound:int ->
  ?max_paths:int ->
  string ->
  (program, Error.t) Stdlib.result

(** [bench name] — a bundled benchmark (paper suite + extended kernels),
    with its tuned per-benchmark analysis knobs. *)
val bench : string -> (program, Error.t) Stdlib.result

(** All bundled benchmarks as [(name, description)]. *)
val benchmarks : unit -> (string * string) list

(** {1 Analysis} *)

(** Tier-specific escape hatch to the full result. *)
type detail =
  | Exact_detail of Core.Analyze.t
  | Static_detail of Static.Ipet.t

type analysis = {
  program : program;
  tier : Tier.t;  (** the tier that produced this result (never [Auto]) *)
  peak_power : Bound.t;  (** guaranteed peak power bound, W *)
  peak_index : int;
      (** peaking cycle in the flattened trace (0 for static tier) *)
  peak_energy : Bound.t;  (** guaranteed peak energy bound, J *)
  peak_energy_cycles : int;
      (** length of the worst-case path (static tier: the cycle bound) *)
  npe_j_per_cycle : float;  (** normalized peak energy, J/cycle *)
  paths : int;  (** explored execution paths (0 for static tier) *)
  forks : int;
  dedup_hits : int;  (** Algorithm 1 line-19 seen-state cuts *)
  total_cycles : int;  (** simulated cycles across all segments *)
  power_trace_w : float array;
      (** per-cycle peak power bound, W ([[||]] for static tier) *)
  phase_timings : (string * float) list;
      (** seconds per analysis phase (explore, peak-power, flatten,
          peak-energy, ...) recorded during this call; [[]] when no
          telemetry sink was active. Process-wide deltas: with
          concurrent analyses the phases of overlapping calls are
          attributed to all of them. *)
  counter_deltas : (string * int) list;
      (** pool/cache counter deltas over this call (same caveat);
          [[]] when no telemetry sink was active *)
  detail : detail;  (** escape hatch to the full tier-specific result *)
}

(** The bound values, unwrapped. *)
val peak_power_w : analysis -> float

val peak_energy_j : analysis -> float

(** The tier-specific details, as options. *)
val exact_detail : analysis -> Core.Analyze.t option

val static_detail : analysis -> Static.Ipet.t option

(** [analyze ?ctx program] — the paper's flow end to end under the
    context's {!Ctx.t.tier}: Algorithm 1 symbolic exploration (exact),
    the CFG/IPET pipeline (static), or static-then-exact (auto). [ctx]
    carries the standard knobs ({!Ctx.t}). Exact results are
    bit-identical at any job count and with telemetry on or off; the
    static bound always dominates the exact bound for the same
    [loop_bound]. *)
val analyze : ?ctx:Ctx.t -> program -> (analysis, Error.t) Stdlib.result

(** A concrete (input-based) execution, for profiling and for validating
    the bound. *)
type concrete = {
  cycles : int;
  peak_w : float;  (** observed peak power, W *)
  peak_cycle : int;
  trace_w : float array;
}

(** [run_concrete ?ctx program ~inputs] — simulate with concrete input
    words poked into RAM ([(address, words)] pairs). *)
val run_concrete :
  ?ctx:Ctx.t ->
  program ->
  inputs:(int * int list) list ->
  (concrete, Error.t) Stdlib.result

(** [cois analysis] — the cycles of interest (peak power spikes with
    instruction and per-module attribution, Section 3.5). [[]] for a
    static-tier analysis, which has no flattened trace. *)
val cois : ?top:int -> ?min_gap:int -> analysis -> Core.Coi.t list

val pp_coi : Format.formatter -> Core.Coi.t -> unit

(** {1 Bound provenance}

    Why the bound is what it is: per-COI module/gate-class power
    attribution, the instructions in flight at each COI, and
    execution-tree observability (per-cycle X-density, fork/merge and
    seen-set statistics). See {!Explain.Report} for the exporters
    (table, JSON, CSV) the [xbound explain] subcommand uses. *)

type explanation = Explain.Report.t

(** [explain analysis] — assemble the provenance report for an already
    computed exact-tier analysis. [top]/[min_gap] select the COIs as in
    {!cois}; the analysis's own [phase_timings]/[counter_deltas] are
    attached. Pure over the analysis — no re-exploration.

    @raise Invalid_argument on a static-tier analysis — its provenance
    is the per-block table in {!static_detail} (see
    {!Static.Ipet.to_table}). *)
val explain :
  ?ctx:Ctx.t -> ?top:int -> ?min_gap:int -> analysis -> explanation

(** {1 Optimization} *)

type optimization = {
  bench_name : string;
  chosen : string list;  (** names of the transforms kept *)
  base_peak_w : float;
  opt_peak_w : float;
  peak_reduction_pct : float;
  range_reduction_pct : float;
  perf_degradation_pct : float;
  energy_overhead_pct : float;
  base_trace_w : float array;
  opt_trace_w : float array;
  raw_opt : Report.Optrun.t;  (** escape hatch *)
}

(** [optimize ?ctx name] — greedy guided peak-power optimization of a
    bundled benchmark (Section 5.1): apply each transform, keep it only
    if it provably lowers the bound at acceptable cost. *)
val optimize : ?ctx:Ctx.t -> string -> (optimization, Error.t) Stdlib.result
