(* Typed request/response surface of the analysis service, with JSON
   codecs. See wire.mli for the envelope grammar. *)

module J = Explain.Ejson

(* v2: tiered bounds. Requests gain an optional "tier" member (absent =
   exact), Analysis responses carry Bound objects and a tier, and
   Cache_stats gains per-namespace rows. v1 frames still decode: every
   addition has a v1 default.

   v3: observability. New admin ops Stats {fmt}, Health and Watch
   {interval_ms; count} (the server streams [count] snapshot-diff
   response frames, all carrying the request's id), and Stats/Health
   responses carrying a Telemetry.Snapshot. Pure additions: every v1/v2
   frame still decodes unchanged. *)
let proto_version = 3

(* Lowest request version this server still accepts. *)
let min_proto_version = 1

type priority = Interactive | Batch

let priority_to_string = function
  | Interactive -> "interactive"
  | Batch -> "batch"

let priority_of_string = function
  | "interactive" -> Some Interactive
  | "batch" -> Some Batch
  | _ -> None

(* Shared codec helpers: every of_json path is total — a shape mismatch
   is an [Error reason], never an exception. *)
let num i = J.Num (float_of_int i)
let int_member k j = Option.map int_of_float (J.float_member k j)

let float_array_member k j =
  match Option.bind (J.member k j) J.to_list with
  | None -> None
  | Some items ->
    let floats = List.filter_map J.to_float items in
    if List.length floats = List.length items then
      Some (Array.of_list floats)
    else None

let require what = function Some v -> Ok v | None -> Error ("missing or ill-typed " ^ what)

let ( let* ) = Result.bind

(* A Bound.t ships as {value, tier, analysis_version}; a bare number (the
   v1 shape) decodes as an exact-tier bound. *)
let bound_to_json (b : Xbound.Bound.t) =
  J.Obj
    [
      ("value", J.Num b.Xbound.Bound.value);
      ("tier", J.Str (Xbound.Tier.to_string b.Xbound.Bound.tier));
      ("analysis_version", num b.Xbound.Bound.analysis_version);
    ]

let bound_member k j =
  match J.member k j with
  | Some (J.Num v) -> Some (Xbound.Bound.exact v)
  | Some (J.Obj _ as o) -> (
    match
      ( J.float_member "value" o,
        J.string_member "tier" o,
        int_member "analysis_version" o )
    with
    | Some value, Some ts, Some analysis_version ->
      Option.map
        (fun tier -> { Xbound.Bound.value; tier; analysis_version })
        (Xbound.Tier.of_string ts)
    | _ -> None)
  | _ -> None

(* Optional "tier" member: absent (v1) means exact. *)
let tier_member j =
  match J.string_member "tier" j with
  | None -> Some Xbound.Tier.Exact
  | Some s -> Xbound.Tier.of_string s

(* Int64 over JSON numbers: bucket upper bounds can be Int64.max_int
   (the open-topped last bucket), which a float cannot represent —
   round-trip by clamping anything at or above 2^62 back to max_int. *)
let i64_to_json v = J.Num (Int64.to_float v)

let i64_of_float f =
  if f >= 4.611686018427387904e18 then Int64.max_int
  else if f <= 0. then 0L
  else Int64.of_float f

let i64_member k j = Option.map i64_of_float (J.float_member k j)

module Request = struct
  type fmt = Table | Json | Csv

  let fmt_to_string = function Table -> "table" | Json -> "json" | Csv -> "csv"

  let fmt_of_string = function
    | "table" -> Some Table
    | "json" -> Some Json
    | "csv" -> Some Csv
    | _ -> None

  type stats_fmt = Stats_table | Stats_json | Stats_prometheus

  let stats_fmt_to_string = function
    | Stats_table -> "table"
    | Stats_json -> "json"
    | Stats_prometheus -> "prometheus"

  let stats_fmt_of_string = function
    | "table" -> Some Stats_table
    | "json" -> Some Stats_json
    | "prometheus" -> Some Stats_prometheus
    | _ -> None

  type t =
    | Analyze of { bench : string; tier : Xbound.Tier.t }
    | Explain of {
        bench : string;
        fmt : fmt;
        top : int;
        min_gap : int;
        tier : Xbound.Tier.t;
      }
    | Run_concrete of { bench : string; seed : int }
    | Optimize of { bench : string }
    | Bench_list
    | Cache_stats
    | Stats of { fmt : stats_fmt }
    | Health
    | Watch of { interval_ms : int; count : int }

  let to_json = function
    | Analyze { bench; tier } ->
      J.Obj
        [
          ("op", J.Str "analyze"); ("bench", J.Str bench);
          ("tier", J.Str (Xbound.Tier.to_string tier));
        ]
    | Explain { bench; fmt; top; min_gap; tier } ->
      J.Obj
        [
          ("op", J.Str "explain"); ("bench", J.Str bench);
          ("fmt", J.Str (fmt_to_string fmt)); ("top", num top);
          ("min_gap", num min_gap);
          ("tier", J.Str (Xbound.Tier.to_string tier));
        ]
    | Run_concrete { bench; seed } ->
      J.Obj
        [ ("op", J.Str "run_concrete"); ("bench", J.Str bench);
          ("seed", num seed) ]
    | Optimize { bench } ->
      J.Obj [ ("op", J.Str "optimize"); ("bench", J.Str bench) ]
    | Bench_list -> J.Obj [ ("op", J.Str "bench_list") ]
    | Cache_stats -> J.Obj [ ("op", J.Str "cache_stats") ]
    | Stats { fmt } ->
      J.Obj [ ("op", J.Str "stats"); ("fmt", J.Str (stats_fmt_to_string fmt)) ]
    | Health -> J.Obj [ ("op", J.Str "health") ]
    | Watch { interval_ms; count } ->
      J.Obj
        [
          ("op", J.Str "watch"); ("interval_ms", num interval_ms);
          ("count", num count);
        ]

  let of_json j =
    let str k = require k (J.string_member k j) in
    let int k = require k (int_member k j) in
    match J.string_member "op" j with
    | Some "analyze" ->
      let* bench = str "bench" in
      let* tier = require "tier" (tier_member j) in
      Ok (Analyze { bench; tier })
    | Some "explain" ->
      let* bench = str "bench" in
      let* fmt_s = str "fmt" in
      let* fmt = require "fmt" (fmt_of_string fmt_s) in
      let* top = int "top" in
      let* min_gap = int "min_gap" in
      let* tier = require "tier" (tier_member j) in
      Ok (Explain { bench; fmt; top; min_gap; tier })
    | Some "run_concrete" ->
      let* bench = str "bench" in
      let* seed = int "seed" in
      Ok (Run_concrete { bench; seed })
    | Some "optimize" ->
      let* bench = str "bench" in
      Ok (Optimize { bench })
    | Some "bench_list" -> Ok Bench_list
    | Some "cache_stats" -> Ok Cache_stats
    | Some "stats" ->
      let* fmt_s = str "fmt" in
      let* fmt = require "fmt" (stats_fmt_of_string fmt_s) in
      Ok (Stats { fmt })
    | Some "health" -> Ok Health
    | Some "watch" ->
      let* interval_ms = int "interval_ms" in
      let* count = int "count" in
      Ok (Watch { interval_ms; count })
    | Some op -> Error ("unknown request op " ^ op)
    | None -> Error "missing request op"
end

(* A Telemetry.Snapshot over the wire. [taken_ns] is a process-local
   monotonic reading, meaningless to a peer — it is not shipped and
   decodes as 0. Counts survive exactly up to 2^53 (an int64 rides a
   JSON number); bucket upper bounds at Int64.max_int round-trip via
   the clamp in [i64_of_float]. *)
let snapshot_to_json (s : Telemetry.Snapshot.t) =
  let pairs l = J.Obj (List.map (fun (k, v) -> (k, num v)) l) in
  J.Obj
    [
      ("uptime_s", J.Num s.Telemetry.Snapshot.uptime_s);
      ("rss_bytes", num s.rss_bytes);
      ("active_spans", num s.active_spans);
      ("counters", pairs s.counters);
      ("gauges", pairs s.gauges);
      ( "histograms",
        J.Arr
          (List.map
             (fun (h : Telemetry.Snapshot.histo) ->
               J.Obj
                 [
                   ("name", J.Str h.hname); ("count", num h.count);
                   ("sum_ns", i64_to_json h.sum_ns);
                   ("max_ns", i64_to_json h.max_ns);
                   ("p50", i64_to_json h.p50); ("p90", i64_to_json h.p90);
                   ("p99", i64_to_json h.p99);
                   ( "buckets",
                     J.Arr
                       (List.map
                          (fun (upper, n) ->
                            J.Arr [ i64_to_json upper; num n ])
                          h.buckets) );
                 ])
             s.histograms) );
    ]

let snapshot_of_json j : (Telemetry.Snapshot.t, string) result =
  let pairs k =
    match J.member k j with
    | Some (J.Obj kvs) ->
      let rows =
        List.filter_map
          (fun (name, v) -> Option.map (fun f -> (name, int_of_float f)) (J.to_float v))
          kvs
      in
      if List.length rows = List.length kvs then Ok rows
      else Error ("ill-typed " ^ k)
    | _ -> Error ("missing or ill-typed " ^ k)
  in
  let* uptime_s = require "uptime_s" (J.float_member "uptime_s" j) in
  let* rss_bytes = require "rss_bytes" (int_member "rss_bytes" j) in
  let* active_spans = require "active_spans" (int_member "active_spans" j) in
  let* counters = pairs "counters" in
  let* gauges = pairs "gauges" in
  let* histograms =
    match Option.bind (J.member "histograms" j) J.to_list with
    | None -> Error "missing or ill-typed histograms"
    | Some items ->
      let parse h =
        let bucket = function
          | J.Arr [ u; n ] -> (
            match (J.to_float u, J.to_float n) with
            | Some u, Some n -> Some (i64_of_float u, int_of_float n)
            | _ -> None)
          | _ -> None
        in
        match
          ( J.string_member "name" h,
            int_member "count" h,
            i64_member "sum_ns" h,
            i64_member "max_ns" h,
            i64_member "p50" h,
            i64_member "p90" h,
            i64_member "p99" h,
            Option.bind (J.member "buckets" h) J.to_list )
        with
        | ( Some hname, Some count, Some sum_ns, Some max_ns, Some p50,
            Some p90, Some p99, Some bs ) ->
          let buckets = List.filter_map bucket bs in
          if List.length buckets = List.length bs then
            Some
              {
                Telemetry.Snapshot.hname; count; sum_ns; max_ns; p50; p90;
                p99; buckets;
              }
          else None
        | _ -> None
      in
      let rows = List.filter_map parse items in
      if List.length rows = List.length items then Ok rows
      else Error "ill-typed histogram entry"
  in
  Ok
    {
      Telemetry.Snapshot.taken_ns = 0L;
      uptime_s;
      rss_bytes;
      active_spans;
      counters;
      gauges;
      histograms;
    }

module Response = struct
  type t =
    | Analysis of {
        name : string;
        tier : Xbound.Tier.t;
        paths : int;
        forks : int;
        dedup_hits : int;
        total_cycles : int;
        peak_power : Xbound.Bound.t;
        peak_index : int;
        peak_energy : Xbound.Bound.t;
        peak_energy_cycles : int;
        npe_j_per_cycle : float;
        power_trace_w : float array;
      }
    | Explanation of { name : string; fmt : Request.fmt; text : string }
    | Concrete of {
        name : string;
        seed : int;
        cycles : int;
        peak_w : float;
        peak_cycle : int;
        trace_w : float array;
      }
    | Optimization of {
        name : string;
        chosen : string list;
        base_peak_w : float;
        opt_peak_w : float;
        peak_reduction_pct : float;
        range_reduction_pct : float;
        perf_degradation_pct : float;
        energy_overhead_pct : float;
      }
    | Benchmarks of (string * string * bool) list
    | Cache_stats of {
        dir : string option;
        entries : int;
        bytes : int;
        by_ns : (string * (int * int)) list;
            (** per-namespace (entries, bytes) rows; [[]] from v1 peers *)
      }
    | Stats of { fmt : Request.stats_fmt; snapshot : Telemetry.Snapshot.t }
    | Health of {
        ok : bool;
        uptime_s : float;
        queue_len : int;
        queue_capacity : int;
        inflight : int;
        workers : int;
      }

  let to_json = function
    | Analysis a ->
      J.Obj
        [
          ("op", J.Str "analysis"); ("name", J.Str a.name);
          ("tier", J.Str (Xbound.Tier.to_string a.tier));
          ("paths", num a.paths); ("forks", num a.forks);
          ("dedup_hits", num a.dedup_hits);
          ("total_cycles", num a.total_cycles);
          (* the keys keep their v1 names; the values became Bound
             objects (a plain number still decodes, as exact tier) *)
          ("peak_power_w", bound_to_json a.peak_power);
          ("peak_index", num a.peak_index);
          ("peak_energy_j", bound_to_json a.peak_energy);
          ("peak_energy_cycles", num a.peak_energy_cycles);
          ("npe_j_per_cycle", J.Num a.npe_j_per_cycle);
          ( "power_trace_w",
            J.Arr
              (Array.to_list (Array.map (fun w -> J.Num w) a.power_trace_w)) );
        ]
    | Explanation { name; fmt; text } ->
      J.Obj
        [
          ("op", J.Str "explanation"); ("name", J.Str name);
          ("fmt", J.Str (Request.fmt_to_string fmt)); ("text", J.Str text);
        ]
    | Concrete c ->
      J.Obj
        [
          ("op", J.Str "concrete"); ("name", J.Str c.name);
          ("seed", num c.seed); ("cycles", num c.cycles);
          ("peak_w", J.Num c.peak_w); ("peak_cycle", num c.peak_cycle);
          ( "trace_w",
            J.Arr (Array.to_list (Array.map (fun w -> J.Num w) c.trace_w)) );
        ]
    | Optimization o ->
      J.Obj
        [
          ("op", J.Str "optimization"); ("name", J.Str o.name);
          ("chosen", J.Arr (List.map (fun s -> J.Str s) o.chosen));
          ("base_peak_w", J.Num o.base_peak_w);
          ("opt_peak_w", J.Num o.opt_peak_w);
          ("peak_reduction_pct", J.Num o.peak_reduction_pct);
          ("range_reduction_pct", J.Num o.range_reduction_pct);
          ("perf_degradation_pct", J.Num o.perf_degradation_pct);
          ("energy_overhead_pct", J.Num o.energy_overhead_pct);
        ]
    | Benchmarks bs ->
      J.Obj
        [
          ("op", J.Str "benchmarks");
          ( "benchmarks",
            J.Arr
              (List.map
                 (fun (name, description, extended) ->
                   J.Obj
                     [
                       ("name", J.Str name);
                       ("description", J.Str description);
                       ("extended", J.Bool extended);
                     ])
                 bs) );
        ]
    | Cache_stats { dir; entries; bytes; by_ns } ->
      J.Obj
        [
          ("op", J.Str "cache_stats");
          ("dir", match dir with Some d -> J.Str d | None -> J.Null);
          ("entries", num entries); ("bytes", num bytes);
          ( "by_ns",
            J.Arr
              (List.map
                 (fun (ns, (e, b)) ->
                   J.Obj
                     [ ("ns", J.Str ns); ("entries", num e); ("bytes", num b) ])
                 by_ns) );
        ]
    | Stats { fmt; snapshot } ->
      J.Obj
        [
          ("op", J.Str "stats");
          ("fmt", J.Str (Request.stats_fmt_to_string fmt));
          ("snapshot", snapshot_to_json snapshot);
        ]
    | Health { ok; uptime_s; queue_len; queue_capacity; inflight; workers } ->
      J.Obj
        [
          ("op", J.Str "health"); ("ok", J.Bool ok);
          ("uptime_s", J.Num uptime_s); ("queue_len", num queue_len);
          ("queue_capacity", num queue_capacity); ("inflight", num inflight);
          ("workers", num workers);
        ]

  let of_json j =
    let str k = require k (J.string_member k j) in
    let int k = require k (int_member k j) in
    let flt k = require k (J.float_member k j) in
    let arr k = require k (float_array_member k j) in
    match J.string_member "op" j with
    | Some "analysis" ->
      let* name = str "name" in
      let* tier = require "tier" (tier_member j) in
      let* paths = int "paths" in
      let* forks = int "forks" in
      let* dedup_hits = int "dedup_hits" in
      let* total_cycles = int "total_cycles" in
      let* peak_power = require "peak_power_w" (bound_member "peak_power_w" j) in
      let* peak_index = int "peak_index" in
      let* peak_energy =
        require "peak_energy_j" (bound_member "peak_energy_j" j)
      in
      let* peak_energy_cycles = int "peak_energy_cycles" in
      let* npe_j_per_cycle = flt "npe_j_per_cycle" in
      let* power_trace_w = arr "power_trace_w" in
      Ok
        (Analysis
           {
             name; tier; paths; forks; dedup_hits; total_cycles; peak_power;
             peak_index; peak_energy; peak_energy_cycles; npe_j_per_cycle;
             power_trace_w;
           })
    | Some "explanation" ->
      let* name = str "name" in
      let* fmt_s = str "fmt" in
      let* fmt = require "fmt" (Request.fmt_of_string fmt_s) in
      let* text = str "text" in
      Ok (Explanation { name; fmt; text })
    | Some "concrete" ->
      let* name = str "name" in
      let* seed = int "seed" in
      let* cycles = int "cycles" in
      let* peak_w = flt "peak_w" in
      let* peak_cycle = int "peak_cycle" in
      let* trace_w = arr "trace_w" in
      Ok (Concrete { name; seed; cycles; peak_w; peak_cycle; trace_w })
    | Some "optimization" ->
      let* name = str "name" in
      let* chosen =
        match Option.bind (J.member "chosen" j) J.to_list with
        | None -> Error "missing or ill-typed chosen"
        | Some items ->
          let ss = List.filter_map J.to_str items in
          if List.length ss = List.length items then Ok ss
          else Error "missing or ill-typed chosen"
      in
      let* base_peak_w = flt "base_peak_w" in
      let* opt_peak_w = flt "opt_peak_w" in
      let* peak_reduction_pct = flt "peak_reduction_pct" in
      let* range_reduction_pct = flt "range_reduction_pct" in
      let* perf_degradation_pct = flt "perf_degradation_pct" in
      let* energy_overhead_pct = flt "energy_overhead_pct" in
      Ok
        (Optimization
           {
             name; chosen; base_peak_w; opt_peak_w; peak_reduction_pct;
             range_reduction_pct; perf_degradation_pct; energy_overhead_pct;
           })
    | Some "benchmarks" ->
      let* items =
        require "benchmarks" (Option.bind (J.member "benchmarks" j) J.to_list)
      in
      let parsed =
        List.filter_map
          (fun b ->
            match
              ( J.string_member "name" b,
                J.string_member "description" b,
                J.member "extended" b )
            with
            | Some n, Some d, Some (J.Bool e) -> Some (n, d, e)
            | _ -> None)
          items
      in
      if List.length parsed = List.length items then Ok (Benchmarks parsed)
      else Error "ill-typed benchmarks entry"
    | Some "cache_stats" ->
      let dir =
        match J.member "dir" j with Some (J.Str d) -> Some d | _ -> None
      in
      let* entries = int "entries" in
      let* bytes = int "bytes" in
      let* by_ns =
        (* absent (v1 peer) means no namespace breakdown *)
        match Option.bind (J.member "by_ns" j) J.to_list with
        | None when J.member "by_ns" j = None -> Ok []
        | None -> Error "missing or ill-typed by_ns"
        | Some items ->
          let rows =
            List.filter_map
              (fun r ->
                match
                  ( J.string_member "ns" r,
                    int_member "entries" r,
                    int_member "bytes" r )
                with
                | Some ns, Some e, Some b -> Some (ns, (e, b))
                | _ -> None)
              items
          in
          if List.length rows = List.length items then Ok rows
          else Error "ill-typed by_ns entry"
      in
      Ok (Cache_stats { dir; entries; bytes; by_ns })
    | Some "stats" ->
      let* fmt_s = str "fmt" in
      let* fmt = require "fmt" (Request.stats_fmt_of_string fmt_s) in
      let* snapshot =
        match J.member "snapshot" j with
        | None -> Error "missing snapshot"
        | Some s -> snapshot_of_json s
      in
      Ok (Stats { fmt; snapshot })
    | Some "health" ->
      let* ok =
        match J.member "ok" j with
        | Some (J.Bool b) -> Ok b
        | _ -> Error "missing or ill-typed ok"
      in
      let* uptime_s = flt "uptime_s" in
      let* queue_len = int "queue_len" in
      let* queue_capacity = int "queue_capacity" in
      let* inflight = int "inflight" in
      let* workers = int "workers" in
      Ok (Health { ok; uptime_s; queue_len; queue_capacity; inflight; workers })
    | Some op -> Error ("unknown response op " ^ op)
    | None -> Error "missing response op"
end

(* ---------------- envelopes ---------------- *)

type request_frame = { id : int; priority : priority; request : Request.t }

type response_frame = {
  rid : int;
  result : (Response.t, Xbound.Error.t) Stdlib.result;
}

let encode_request { id; priority; request } =
  J.to_string
    (J.Obj
       [
         ("proto_version", num proto_version); ("id", num id);
         ("priority", J.Str (priority_to_string priority));
         ("request", Request.to_json request);
       ])

let decode_request text =
  match J.parse_opt text with
  | None -> Error (None, Xbound.Error.Protocol "request is not valid JSON")
  | Some j -> (
    let id = int_member "id" j in
    let fail m = Error (id, Xbound.Error.Protocol m) in
    match int_member "proto_version" j with
    | None -> fail "missing proto_version"
    | Some v when v < min_proto_version || v > proto_version ->
      fail
        (Printf.sprintf "unsupported proto_version %d (server speaks %d-%d)" v
           min_proto_version proto_version)
    | Some _ -> (
      match id with
      | None -> fail "missing request id"
      | Some id -> (
        let priority =
          (* absent priority defaults to interactive; an unknown string
             is a malformed request *)
          match J.string_member "priority" j with
          | None -> Some Interactive
          | Some s -> priority_of_string s
        in
        match priority with
        | None -> fail "unknown priority"
        | Some priority -> (
          match J.member "request" j with
          | None -> fail "missing request body"
          | Some body -> (
            match Request.of_json body with
            | Ok request -> Ok { id; priority; request }
            | Error m -> fail m)))))

let encode_response { rid; result } =
  let payload =
    match result with
    | Ok r -> ("result", Response.to_json r)
    | Error e -> ("error", Xbound.Error.to_wire e)
  in
  J.to_string (J.Obj [ ("id", num rid); payload ])

let decode_response text =
  match J.parse_opt text with
  | None -> Error (Xbound.Error.Protocol "response is not valid JSON")
  | Some j -> (
    match int_member "id" j with
    | None -> Error (Xbound.Error.Protocol "missing response id")
    | Some rid -> (
      match (J.member "result" j, J.member "error" j) with
      | Some r, _ -> (
        match Response.of_json r with
        | Ok resp -> Ok { rid; result = Ok resp }
        | Error m -> Error (Xbound.Error.Protocol m))
      | None, Some e -> (
        match Xbound.Error.of_wire e with
        | Some err -> Ok { rid; result = Error err }
        | None ->
          Ok
            {
              rid;
              result =
                Error
                  (Xbound.Error.Protocol
                     ("unrecognized error payload " ^ J.to_string e));
            })
      | None, None ->
        Error (Xbound.Error.Protocol "response has neither result nor error")))
