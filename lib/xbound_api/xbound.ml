(* The stable public facade over the analysis stack. See xbound.mli. *)

module Tier = Core.Tier

module Bound = struct
  type t = { value : float; tier : Tier.t; analysis_version : int }

  let exact value =
    { value; tier = Tier.Exact; analysis_version = Core.Analyze.analysis_version }

  let static value =
    {
      value;
      tier = Tier.Static;
      analysis_version = Core.Analyze.analysis_version;
    }
end

module Error = struct
  type t =
    | Parse of { file : string; line : int; message : string }
    | Assembly of { program : string; message : string }
    | Netlist of string
    | Analysis of { program : string; message : string }
    | Static_cfg of { program : string; message : string }
    | Cache of string
    | Unknown_benchmark of { name : string; available : string list }
    | Overloaded of { queued : int; capacity : int }
    | Protocol of string

  (* Standard Levenshtein distance, case-insensitive: typing "TEA8" or
     "tae8" should still land on "tea8". *)
  let edit_distance a b =
    let a = String.lowercase_ascii a and b = String.lowercase_ascii b in
    let la = String.length a and lb = String.length b in
    let prev = Array.init (lb + 1) Fun.id in
    let cur = Array.make (lb + 1) 0 in
    for i = 1 to la do
      cur.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (lb + 1)
    done;
    prev.(lb)

  let closest name available =
    List.fold_left
      (fun best cand ->
        let d = edit_distance name cand in
        match best with
        | Some (_, bd) when bd <= d -> best
        | _ -> Some (cand, d))
      None available

  let to_string = function
    | Parse { file; line; message } -> Printf.sprintf "%s:%d: %s" file line message
    | Assembly { program; message } ->
      Printf.sprintf "%s: assembly error: %s" program message
    | Netlist m -> Printf.sprintf "processor elaboration failed: %s" m
    | Analysis { program; message } ->
      Printf.sprintf "%s: analysis failed: %s" program message
    | Static_cfg { program; message } ->
      Printf.sprintf "%s: static tier cannot bound this program: %s" program
        message
    | Cache m -> Printf.sprintf "cache error: %s" m
    | Unknown_benchmark { name; available } -> (
      (* A short list is worth printing; past ~10 entries, suggest the
         closest name instead of flooding the terminal. *)
      match closest name available with
      | Some (best, _) when List.length available > 10 ->
        Printf.sprintf
          "unknown benchmark %S (did you mean %S? `list` shows all %d)" name
          best (List.length available)
      | _ ->
        Printf.sprintf "unknown benchmark %S (available: %s)" name
          (String.concat ", " available))
    | Overloaded { queued; capacity } ->
      Printf.sprintf
        "server overloaded: %d request(s) queued (capacity %d), retry later"
        queued capacity
    | Protocol m -> Printf.sprintf "protocol error: %s" m

  let pp fmt t = Format.pp_print_string fmt (to_string t)

  (* One stable code string per constructor: the wire discriminant the
     serve protocol ships, so a server-side error reconstructs as the
     same typed value client-side. Never rename these. *)
  let code = function
    | Parse _ -> "parse"
    | Assembly _ -> "assembly"
    | Netlist _ -> "netlist"
    | Analysis _ -> "analysis"
    | Static_cfg _ -> "static-cfg"
    | Cache _ -> "cache"
    | Unknown_benchmark _ -> "unknown-benchmark"
    | Overloaded _ -> "overloaded"
    | Protocol _ -> "protocol"

  let to_wire t =
    let open Explain.Ejson in
    let fields =
      match t with
      | Parse { file; line; message } ->
        [ ("file", Str file); ("line", Num (float_of_int line));
          ("message", Str message) ]
      | Assembly { program; message } ->
        [ ("program", Str program); ("message", Str message) ]
      | Netlist m | Cache m | Protocol m -> [ ("message", Str m) ]
      | Analysis { program; message } | Static_cfg { program; message } ->
        [ ("program", Str program); ("message", Str message) ]
      | Unknown_benchmark { name; available } ->
        [ ("name", Str name);
          ("available", Arr (List.map (fun n -> Str n) available)) ]
      | Overloaded { queued; capacity } ->
        [ ("queued", Num (float_of_int queued));
          ("capacity", Num (float_of_int capacity)) ]
    in
    Obj (("code", Str (code t)) :: fields)

  let of_wire j =
    let open Explain.Ejson in
    let str k = string_member k j in
    let int k = Option.map int_of_float (float_member k j) in
    match string_member "code" j with
    | Some "parse" -> (
      match (str "file", int "line", str "message") with
      | Some file, Some line, Some message -> Some (Parse { file; line; message })
      | _ -> None)
    | Some "assembly" -> (
      match (str "program", str "message") with
      | Some program, Some message -> Some (Assembly { program; message })
      | _ -> None)
    | Some "netlist" -> Option.map (fun m -> Netlist m) (str "message")
    | Some "analysis" -> (
      match (str "program", str "message") with
      | Some program, Some message -> Some (Analysis { program; message })
      | _ -> None)
    | Some "static-cfg" -> (
      match (str "program", str "message") with
      | Some program, Some message -> Some (Static_cfg { program; message })
      | _ -> None)
    | Some "cache" -> Option.map (fun m -> Cache m) (str "message")
    | Some "unknown-benchmark" -> (
      match (str "name", Option.bind (member "available" j) to_list) with
      | Some name, Some items ->
        let available = List.filter_map to_str items in
        if List.length available = List.length items then
          Some (Unknown_benchmark { name; available })
        else None
      | _ -> None)
    | Some "overloaded" -> (
      match (int "queued", int "capacity") with
      | Some queued, Some capacity -> Some (Overloaded { queued; capacity })
      | _ -> None)
    | Some "protocol" -> Option.map (fun m -> Protocol m) (str "message")
    | _ -> None
end

module Ctx = struct
  type t = {
    cache : Cache.t option;
    jobs : int option;
    telemetry : Telemetry.t option;
    tier : Tier.t;
    specialize : bool;
  }

  let default =
    {
      cache = None;
      jobs = None;
      telemetry = None;
      tier = Tier.Exact;
      specialize = true;
    }

  let create ?cache ?jobs ?telemetry ?(tier = Tier.Exact)
      ?(specialize = true) () =
    { cache; jobs; telemetry; tier; specialize }
end

type program = {
  p_name : string;
  p_image : Isa.Asm.image;
  loop_bound : int;
  max_paths : int;
}

let name p = p.p_name
let image p = p.p_image

let of_image ?(name = "program") ?(loop_bound = 16) ?(max_paths = 4096) image =
  { p_name = name; p_image = image; loop_bound; max_paths }

let of_ast ?loop_bound ?max_paths (ast : Isa.Asm.program) =
  match Isa.Asm.assemble ast with
  | image -> Ok (of_image ~name:ast.Isa.Asm.name ?loop_bound ?max_paths image)
  | exception Isa.Asm.Asm_error m ->
    Error (Error.Assembly { program = ast.Isa.Asm.name; message = m })

let of_source ?(name = "<source>") ?loop_bound ?max_paths text =
  match Isa.Parse.program ~name text with
  | ast -> of_ast ?loop_bound ?max_paths ast
  | exception Isa.Parse.Syntax_error (line, message) ->
    Error (Error.Parse { file = name; line; message })

let all_benches = Benchprogs.Bench.all @ Benchprogs.Extended.all

let benchmarks () =
  List.map
    (fun b -> (b.Benchprogs.Bench.name, b.Benchprogs.Bench.description))
    all_benches

let find_bench bname =
  match
    List.find_opt (fun b -> String.equal b.Benchprogs.Bench.name bname) all_benches
  with
  | Some b -> Ok b
  | None ->
    Error
      (Error.Unknown_benchmark
         {
           name = bname;
           available = List.map (fun b -> b.Benchprogs.Bench.name) all_benches;
         })

let bench bname =
  Result.map
    (fun (b : Benchprogs.Bench.t) ->
      of_image ~name:b.Benchprogs.Bench.name
        ~loop_bound:b.Benchprogs.Bench.loop_bound
        ~max_paths:b.Benchprogs.Bench.max_paths
        (Telemetry.span "assemble" (fun () -> Benchprogs.Bench.assemble b)))
    (find_bench bname)

(* The processor is elaborated once per process and shared; elaboration
   failures surface as Error.Netlist on every call. *)
let env =
  lazy
    (Telemetry.span "elaborate" @@ fun () ->
     let cpu = Cpu.build () in
     (cpu, Core.Analyze.poweran_for cpu))

let with_env f =
  match Lazy.force env with
  | cpu, pa -> f cpu pa
  | exception Netlist.Combinational_loop _ ->
    Error (Error.Netlist "combinational loop in the elaborated netlist")
  | exception e -> Error (Error.Netlist (Printexc.to_string e))

let set_jobs jobs = Option.iter Parallel.set_default_jobs jobs

(* Fix the job count and install the context's telemetry sink (if any)
   for the duration of [f]. *)
let in_ctx (ctx : Ctx.t) f =
  set_jobs ctx.Ctx.jobs;
  match ctx.Ctx.telemetry with
  | Some s -> Telemetry.with_ambient s f
  | None -> f ()

type detail =
  | Exact_detail of Core.Analyze.t
  | Static_detail of Static.Ipet.t

type analysis = {
  program : program;
  tier : Tier.t;
  peak_power : Bound.t;
  peak_index : int;
  peak_energy : Bound.t;
  peak_energy_cycles : int;
  npe_j_per_cycle : float;
  paths : int;
  forks : int;
  dedup_hits : int;
  total_cycles : int;
  power_trace_w : float array;
  phase_timings : (string * float) list;
  counter_deltas : (string * int) list;
  detail : detail;
}

let peak_power_w a = a.peak_power.Bound.value
let peak_energy_j a = a.peak_energy.Bound.value

let exact_detail a =
  match a.detail with Exact_detail r -> Some r | Static_detail _ -> None

let static_detail a =
  match a.detail with Static_detail s -> Some s | Exact_detail _ -> None

(* Per-call telemetry scoping: the sink's span totals and the process
   counters are monotonic, so the call's share is the before/after
   delta. *)
let phase_diff ~before ~after =
  List.filter_map
    (fun (name, s) ->
      let s0 = Option.value (List.assoc_opt name before) ~default:0. in
      if s -. s0 > 0. then Some (name, s -. s0) else None)
    after

let config_of p =
  {
    Core.Analyze.default_config with
    Core.Analyze.loop_bound = p.loop_bound;
    max_paths = p.max_paths;
  }

(* Auto-tier feasibility guess: the exact tier is attempted when the
   static cycle bound stays under this (the exact explorer's work grows
   with the real path lengths, which the static bound dominates). *)
let auto_exact_threshold = 50_000

let analyze ?(ctx = Ctx.default) p =
  in_ctx ctx @@ fun () ->
  let sink = Telemetry.ambient () in
  let phases0 =
    match sink with Some s -> Telemetry.phase_totals s | None -> []
  in
  let counters0 = match sink with Some _ -> Telemetry.counters () | None -> [] in
  let observed () =
    match sink with
    | None -> ([], [])
    | Some s ->
      ( phase_diff ~before:phases0 ~after:(Telemetry.phase_totals s),
        Telemetry.diff ~before:counters0 ~after:(Telemetry.counters ()) )
  in
  with_env (fun cpu pa ->
      let exact () =
        match
          Core.Analyze.run ~config:(config_of p) ?cache:ctx.Ctx.cache
            ~specialize:ctx.Ctx.specialize pa cpu p.p_image
        with
        | a ->
          let pe = a.Core.Analyze.peak_energy in
          let st = a.Core.Analyze.sym_stats in
          let phase_timings, counter_deltas = observed () in
          Ok
            {
              program = p;
              tier = Tier.Exact;
              peak_power = Bound.exact a.Core.Analyze.peak_power;
              peak_index = a.Core.Analyze.peak_index;
              peak_energy = Bound.exact pe.Core.Peak_energy.energy;
              peak_energy_cycles = pe.Core.Peak_energy.cycles;
              npe_j_per_cycle = pe.Core.Peak_energy.npe;
              paths = st.Gatesim.Sym.paths;
              forks = st.Gatesim.Sym.forks;
              dedup_hits = st.Gatesim.Sym.dedup_hits;
              total_cycles = st.Gatesim.Sym.total_cycles;
              power_trace_w = a.Core.Analyze.power_trace;
              phase_timings;
              counter_deltas;
              detail = Exact_detail a;
            }
        | exception Gatesim.Sym.Path_limit m ->
          Error
            (Error.Analysis { program = p.p_name; message = "path limit: " ^ m })
        | exception Core.Peak_energy.Unbounded d ->
          Error
            (Error.Analysis
               {
                 program = p.p_name;
                 message =
                   "input-dependent loop with loop_bound 0 (state " ^ d
                   ^ "): peak energy is not computable";
               })
      in
      let static () =
        match
          Static.Ipet.analyze ?cache:ctx.Ctx.cache
            ~specialize:ctx.Ctx.specialize ~name:p.p_name
            ~loop_bound:p.loop_bound pa cpu p.p_image
        with
        | Error e ->
          Error
            (Error.Static_cfg
               { program = p.p_name; message = Static.Cfg.error_to_string e })
        | Ok s ->
          let phase_timings, counter_deltas = observed () in
          Ok
            {
              program = p;
              tier = Tier.Static;
              peak_power = Bound.static s.Static.Ipet.s_peak_power_w;
              peak_index = 0;
              peak_energy = Bound.static s.Static.Ipet.s_peak_energy_j;
              peak_energy_cycles = s.Static.Ipet.s_cycle_bound;
              npe_j_per_cycle =
                (if s.Static.Ipet.s_cycle_bound > 0 then
                   s.Static.Ipet.s_peak_energy_j
                   /. float_of_int s.Static.Ipet.s_cycle_bound
                 else 0.0);
              paths = 0;
              forks = 0;
              dedup_hits = 0;
              total_cycles = s.Static.Ipet.s_cycle_bound;
              power_trace_w = [||];
              phase_timings;
              counter_deltas;
              detail = Static_detail s;
            }
        | exception Gatesim.Sym.Path_limit m ->
          Error
            (Error.Analysis
               {
                 program = p.p_name;
                 message = "block characterization path limit: " ^ m;
               })
      in
      match ctx.Ctx.tier with
      | Tier.Exact -> exact ()
      | Tier.Static -> static ()
      | Tier.Auto -> (
        (* Static first — it always terminates. Escalate to the exact
           tier when the static cycle bound says it is feasible; if the
           CFG defeats the static tier, exact is the only option. *)
        match static () with
        | Error (Error.Static_cfg _) -> exact ()
        | Error _ as e -> e
        | Ok s when s.peak_energy_cycles <= auto_exact_threshold -> (
          match exact () with Ok a -> Ok a | Error _ -> Ok s)
        | Ok s -> Ok s))

type concrete = {
  cycles : int;
  peak_w : float;
  peak_cycle : int;
  trace_w : float array;
}

let run_concrete ?(ctx = Ctx.default) p ~inputs =
  in_ctx ctx @@ fun () ->
  with_env (fun cpu pa ->
      match
        Core.Analyze.run_concrete ~specialize:ctx.Ctx.specialize pa cpu
          p.p_image ~inputs
      with
      | cycles, trace ->
        let peak_w, peak_cycle = Poweran.peak_of trace in
        Ok { cycles = Array.length cycles; peak_w; peak_cycle; trace_w = trace }
      | exception Failure m ->
        Error (Error.Analysis { program = p.p_name; message = m }))

let cois ?(top = 4) ?(min_gap = 5) a =
  match a.detail with
  | Static_detail _ -> []
  | Exact_detail raw -> (
    match Lazy.force env with
    | _, pa -> Core.Analyze.cois ~top ~min_gap pa raw
    | exception _ -> [])

let pp_coi = Core.Coi.pp

type explanation = Explain.Report.t

let explain ?ctx ?(top = 4) ?(min_gap = 5) a =
  match a.detail with
  | Static_detail _ ->
    invalid_arg
      "Xbound.explain: a static-tier analysis has no COI report; render its \
       Static.Ipet detail instead"
  | Exact_detail raw ->
    let ctx = Option.value ctx ~default:Ctx.default in
    in_ctx ctx @@ fun () ->
    (* [a] exists, so the environment was already elaborated. *)
    let cpu, pa = Lazy.force env in
    (* [folded] is passed regardless of [ctx.specialize] — the class
       labeling comes from the netlist analysis, not the engine mode, so
       reports are byte-identical with specialization on or off. *)
    Explain.Report.build ~top ~min_gap ~phases:a.phase_timings
      ~counters:a.counter_deltas
      ~folded:(Core.Analyze.folded_pred cpu)
      ~name:(name a.program) pa raw

type optimization = {
  bench_name : string;
  chosen : string list;
  base_peak_w : float;
  opt_peak_w : float;
  peak_reduction_pct : float;
  range_reduction_pct : float;
  perf_degradation_pct : float;
  energy_overhead_pct : float;
  base_trace_w : float array;
  opt_trace_w : float array;
  raw_opt : Report.Optrun.t;
}

let optimize ?(ctx = Ctx.default) bname =
  in_ctx ctx @@ fun () ->
  let cache = ctx.Ctx.cache in
  match find_bench bname with
  | Error e -> Error e
  | Ok b ->
    with_env (fun cpu pa ->
        let config =
          {
            Core.Analyze.default_config with
            Core.Analyze.loop_bound = b.Benchprogs.Bench.loop_bound;
            max_paths = b.Benchprogs.Bench.max_paths;
          }
        in
        match
          let base =
            Core.Analyze.run ~config ?cache pa cpu (Benchprogs.Bench.assemble b)
          in
          (base, Report.Optrun.greedy ~analysis:base ?cache pa cpu b)
        with
        | base, o ->
          Ok
            {
              bench_name = bname;
              chosen = List.map Core.Optimize.name o.Report.Optrun.chosen;
              base_peak_w = o.Report.Optrun.base_peak;
              opt_peak_w = o.Report.Optrun.opt_peak;
              peak_reduction_pct = Report.Optrun.peak_reduction_pct o;
              range_reduction_pct = Report.Optrun.range_reduction_pct o;
              perf_degradation_pct = Report.Optrun.perf_degradation_pct o;
              energy_overhead_pct = Report.Optrun.energy_overhead_pct o;
              base_trace_w = base.Core.Analyze.power_trace;
              opt_trace_w =
                o.Report.Optrun.opt_analysis.Core.Analyze.power_trace;
              raw_opt = o;
            }
        | exception Gatesim.Sym.Path_limit m ->
          Error (Error.Analysis { program = bname; message = "path limit: " ^ m })
        | exception Core.Peak_energy.Unbounded d ->
          Error
            (Error.Analysis
               { program = bname; message = "unbounded loop (state " ^ d ^ ")" }))
