(* The stable public facade over the analysis stack. See xbound.mli. *)

module Error = struct
  type t =
    | Parse of { file : string; line : int; message : string }
    | Assembly of { program : string; message : string }
    | Netlist of string
    | Analysis of { program : string; message : string }
    | Cache of string
    | Unknown_benchmark of { name : string; available : string list }

  let to_string = function
    | Parse { file; line; message } -> Printf.sprintf "%s:%d: %s" file line message
    | Assembly { program; message } ->
      Printf.sprintf "%s: assembly error: %s" program message
    | Netlist m -> Printf.sprintf "processor elaboration failed: %s" m
    | Analysis { program; message } ->
      Printf.sprintf "%s: analysis failed: %s" program message
    | Cache m -> Printf.sprintf "cache error: %s" m
    | Unknown_benchmark { name; available } ->
      Printf.sprintf "unknown benchmark %S (available: %s)" name
        (String.concat ", " available)

  let pp fmt t = Format.pp_print_string fmt (to_string t)
end

type program = {
  p_name : string;
  p_image : Isa.Asm.image;
  loop_bound : int;
  max_paths : int;
}

let name p = p.p_name
let image p = p.p_image

let of_image ?(name = "program") ?(loop_bound = 16) ?(max_paths = 4096) image =
  { p_name = name; p_image = image; loop_bound; max_paths }

let of_ast ?loop_bound ?max_paths (ast : Isa.Asm.program) =
  match Isa.Asm.assemble ast with
  | image -> Ok (of_image ~name:ast.Isa.Asm.name ?loop_bound ?max_paths image)
  | exception Isa.Asm.Asm_error m ->
    Error (Error.Assembly { program = ast.Isa.Asm.name; message = m })

let of_source ?(name = "<source>") ?loop_bound ?max_paths text =
  match Isa.Parse.program ~name text with
  | ast -> of_ast ?loop_bound ?max_paths ast
  | exception Isa.Parse.Syntax_error (line, message) ->
    Error (Error.Parse { file = name; line; message })

let all_benches = Benchprogs.Bench.all @ Benchprogs.Extended.all

let benchmarks () =
  List.map
    (fun b -> (b.Benchprogs.Bench.name, b.Benchprogs.Bench.description))
    all_benches

let find_bench bname =
  match
    List.find_opt (fun b -> String.equal b.Benchprogs.Bench.name bname) all_benches
  with
  | Some b -> Ok b
  | None ->
    Error
      (Error.Unknown_benchmark
         {
           name = bname;
           available = List.map (fun b -> b.Benchprogs.Bench.name) all_benches;
         })

let bench bname =
  Result.map
    (fun (b : Benchprogs.Bench.t) ->
      of_image ~name:b.Benchprogs.Bench.name
        ~loop_bound:b.Benchprogs.Bench.loop_bound
        ~max_paths:b.Benchprogs.Bench.max_paths
        (Benchprogs.Bench.assemble b))
    (find_bench bname)

(* The processor is elaborated once per process and shared; elaboration
   failures surface as Error.Netlist on every call. *)
let env = lazy (let cpu = Cpu.build () in (cpu, Core.Analyze.poweran_for cpu))

let with_env f =
  match Lazy.force env with
  | cpu, pa -> f cpu pa
  | exception Netlist.Combinational_loop _ ->
    Error (Error.Netlist "combinational loop in the elaborated netlist")
  | exception e -> Error (Error.Netlist (Printexc.to_string e))

let set_jobs jobs = Option.iter Parallel.set_default_jobs jobs

type analysis = {
  program : program;
  peak_power_w : float;
  peak_index : int;
  peak_energy_j : float;
  peak_energy_cycles : int;
  npe_j_per_cycle : float;
  paths : int;
  forks : int;
  dedup_hits : int;
  total_cycles : int;
  power_trace_w : float array;
  raw : Core.Analyze.t;
}

let config_of p =
  {
    Core.Analyze.default_config with
    Core.Analyze.loop_bound = p.loop_bound;
    max_paths = p.max_paths;
  }

let analyze ?cache ?jobs p =
  set_jobs jobs;
  with_env (fun cpu pa ->
      match Core.Analyze.run ~config:(config_of p) ?cache pa cpu p.p_image with
      | a ->
        let pe = a.Core.Analyze.peak_energy in
        let st = a.Core.Analyze.sym_stats in
        Ok
          {
            program = p;
            peak_power_w = a.Core.Analyze.peak_power;
            peak_index = a.Core.Analyze.peak_index;
            peak_energy_j = pe.Core.Peak_energy.energy;
            peak_energy_cycles = pe.Core.Peak_energy.cycles;
            npe_j_per_cycle = pe.Core.Peak_energy.npe;
            paths = st.Gatesim.Sym.paths;
            forks = st.Gatesim.Sym.forks;
            dedup_hits = st.Gatesim.Sym.dedup_hits;
            total_cycles = st.Gatesim.Sym.total_cycles;
            power_trace_w = a.Core.Analyze.power_trace;
            raw = a;
          }
      | exception Gatesim.Sym.Path_limit m ->
        Error (Error.Analysis { program = p.p_name; message = "path limit: " ^ m })
      | exception Core.Peak_energy.Unbounded d ->
        Error
          (Error.Analysis
             {
               program = p.p_name;
               message =
                 "input-dependent loop with loop_bound 0 (state " ^ d
                 ^ "): peak energy is not computable";
             }))

type concrete = {
  cycles : int;
  peak_w : float;
  peak_cycle : int;
  trace_w : float array;
}

let run_concrete ?jobs p ~inputs =
  set_jobs jobs;
  with_env (fun cpu pa ->
      match Core.Analyze.run_concrete pa cpu p.p_image ~inputs with
      | cycles, trace ->
        let peak_w, peak_cycle = Poweran.peak_of trace in
        Ok { cycles = Array.length cycles; peak_w; peak_cycle; trace_w = trace }
      | exception Failure m ->
        Error (Error.Analysis { program = p.p_name; message = m }))

let cois ?(top = 4) ?(min_gap = 5) a =
  match Lazy.force env with
  | _, pa -> Core.Analyze.cois ~top ~min_gap pa a.raw
  | exception _ -> []

let pp_coi = Core.Coi.pp

type optimization = {
  bench_name : string;
  chosen : string list;
  base_peak_w : float;
  opt_peak_w : float;
  peak_reduction_pct : float;
  range_reduction_pct : float;
  perf_degradation_pct : float;
  energy_overhead_pct : float;
  base_trace_w : float array;
  opt_trace_w : float array;
  raw_opt : Report.Optrun.t;
}

let optimize ?cache ?jobs bname =
  set_jobs jobs;
  match find_bench bname with
  | Error e -> Error e
  | Ok b ->
    with_env (fun cpu pa ->
        let config =
          {
            Core.Analyze.default_config with
            Core.Analyze.loop_bound = b.Benchprogs.Bench.loop_bound;
            max_paths = b.Benchprogs.Bench.max_paths;
          }
        in
        match
          let base =
            Core.Analyze.run ~config ?cache pa cpu (Benchprogs.Bench.assemble b)
          in
          (base, Report.Optrun.greedy ~analysis:base ?cache pa cpu b)
        with
        | base, o ->
          Ok
            {
              bench_name = bname;
              chosen = List.map Core.Optimize.name o.Report.Optrun.chosen;
              base_peak_w = o.Report.Optrun.base_peak;
              opt_peak_w = o.Report.Optrun.opt_peak;
              peak_reduction_pct = Report.Optrun.peak_reduction_pct o;
              range_reduction_pct = Report.Optrun.range_reduction_pct o;
              perf_degradation_pct = Report.Optrun.perf_degradation_pct o;
              energy_overhead_pct = Report.Optrun.energy_overhead_pct o;
              base_trace_w = base.Core.Analyze.power_trace;
              opt_trace_w =
                o.Report.Optrun.opt_analysis.Core.Analyze.power_trace;
              raw_opt = o;
            }
        | exception Gatesim.Sym.Path_limit m ->
          Error (Error.Analysis { program = bname; message = "path limit: " ^ m })
        | exception Core.Peak_energy.Unbounded d ->
          Error
            (Error.Analysis
               { program = bname; message = "unbounded loop (state " ^ d ^ ")" }))
