(** The request-oriented wire surface of the analysis service.

    One closed request variant and one response variant, with JSON
    codecs, shared by every dispatch path: the [xbound serve] daemon
    loop, the [Serve.Client] RPC stub, and the CLI subcommands (which
    are thin builders of {!Request.t}, executed either in-process or
    over a socket — byte-identical output either way).

    The framing on the socket is length-prefixed JSON ({!Serve.Frame}):
    each request frame is the envelope
    [{"proto_version": v, "id": n, "priority": p, "request": {...}}]
    and each response frame is [{"id": n, "result": {...}}] or
    [{"id": n, "error": {"code": ..., ...}}] — errors are
    {!Xbound.Error.t} values shipped through
    {!Xbound.Error.to_wire}/[of_wire], so the client reconstructs the
    same typed value the server produced.

    Every codec here is total in both directions: [of_json (to_json v)]
    re-reads [v] exactly ({!Explain.Ejson} prints shortest
    round-tripping floats). *)

(** Bumped on any incompatible change to the envelope or the
    request/response schemas; a server rejects versions outside
    [[min_proto_version, proto_version]] with a typed [Protocol] error.

    v2 (bound tiers): [Analyze]/[Explain] requests gained an optional
    ["tier"] member (absent means exact — the v1 behaviour);
    [Analysis] responses carry a ["tier"] member and ship
    ["peak_power_w"]/["peak_energy_j"] as {!Xbound.Bound.t} objects
    [{value, tier, analysis_version}] (a bare v1 number still decodes,
    as an exact-tier bound); [Cache_stats] responses gained a
    ["by_ns"] per-namespace breakdown (absent means none).

    v3 (observability): new admin ops — [Stats {fmt}] returns a
    {!Telemetry.Snapshot} (rendered client-side, like every other
    response), [Health] a cheap liveness summary, and
    [Watch {interval_ms; count}] makes the server stream [count]
    response frames (one initial full snapshot, then snapshot diffs per
    interval), every frame carrying the request's id. Pure additions:
    v1/v2 frames decode unchanged. *)
val proto_version : int

(** Lowest request version the server still accepts (currently 1). *)
val min_proto_version : int

(** The two scheduling classes. The serve scheduler always drains
    [Interactive] requests before [Batch] ones. *)
type priority = Interactive | Batch

val priority_to_string : priority -> string
val priority_of_string : string -> priority option

module Request : sig
  (** Report flavour for [Explain] (mirrors the CLI's [--format]). *)
  type fmt = Table | Json | Csv

  (** Exposition flavour for [Stats]. *)
  type stats_fmt = Stats_table | Stats_json | Stats_prometheus

  val stats_fmt_to_string : stats_fmt -> string
  val stats_fmt_of_string : string -> stats_fmt option

  type t =
    | Analyze of { bench : string; tier : Xbound.Tier.t }
        (** full paper flow on a bundled benchmark, at the given bound
            tier *)
    | Explain of {
        bench : string;
        fmt : fmt;
        top : int;
        min_gap : int;
        tier : Xbound.Tier.t;
      }  (** bound provenance report, rendered server-side *)
    | Run_concrete of { bench : string; seed : int }
        (** concrete simulation with the benchmark's generated inputs *)
    | Optimize of { bench : string }  (** greedy peak-power optimization *)
    | Bench_list  (** the bundled benchmark inventory *)
    | Cache_stats  (** the executing side's persistent-cache statistics *)
    | Stats of { fmt : stats_fmt }
        (** a point-in-time telemetry snapshot of the executing side *)
    | Health  (** cheap liveness check, served from the admin lane *)
    | Watch of { interval_ms : int; count : int }
        (** stream [count] snapshot frames, one per interval (daemon
            only: the in-process executor rejects it) *)

  val to_json : t -> Explain.Ejson.t

  (** [Error] carries a human-readable reason (shipped as
      [Xbound.Error.Protocol] by the server). *)
  val of_json : Explain.Ejson.t -> (t, string) result
end

module Response : sig
  type t =
    | Analysis of {
        name : string;
        tier : Xbound.Tier.t;
            (** the tier that produced the result (never [Auto]) *)
        paths : int;
        forks : int;
        dedup_hits : int;
        total_cycles : int;
        peak_power : Xbound.Bound.t;
        peak_index : int;
        peak_energy : Xbound.Bound.t;
        peak_energy_cycles : int;
        npe_j_per_cycle : float;
        power_trace_w : float array;
      }
    | Explanation of { name : string; fmt : Request.fmt; text : string }
    | Concrete of {
        name : string;
        seed : int;
        cycles : int;
        peak_w : float;
        peak_cycle : int;
        trace_w : float array;
      }
    | Optimization of {
        name : string;
        chosen : string list;
        base_peak_w : float;
        opt_peak_w : float;
        peak_reduction_pct : float;
        range_reduction_pct : float;
        perf_degradation_pct : float;
        energy_overhead_pct : float;
      }
    | Benchmarks of (string * string * bool) list
        (** (name, description, extended?) — [false] = paper suite *)
    | Cache_stats of {
        dir : string option;
        entries : int;
        bytes : int;
        by_ns : (string * (int * int)) list;
            (** per-namespace (entries, bytes) rows; [[]] from v1
                peers *)
      }
    | Stats of { fmt : Request.stats_fmt; snapshot : Telemetry.Snapshot.t }
        (** the snapshot rides the wire structurally; {!Serve.Render}
            turns it into the requested exposition format client-side.
            For [Watch], the first frame is a full snapshot and every
            further frame a {!Telemetry.Snapshot.diff} over the
            interval. *)
    | Health of {
        ok : bool;
        uptime_s : float;
        queue_len : int;
        queue_capacity : int;
        inflight : int;
        workers : int;
      }

  val to_json : t -> Explain.Ejson.t
  val of_json : Explain.Ejson.t -> (t, string) result
end

(** {1 Snapshot codec}

    A {!Telemetry.Snapshot.t} as JSON — the payload of [Stats]
    responses, also the CLI's [stats --format json] output. [taken_ns]
    is process-local monotonic time and is not shipped; it decodes
    as [0]. *)

val snapshot_to_json : Telemetry.Snapshot.t -> Explain.Ejson.t
val snapshot_of_json : Explain.Ejson.t -> (Telemetry.Snapshot.t, string) result

(** {1 Envelopes} *)

type request_frame = { id : int; priority : priority; request : Request.t }

type response_frame = {
  rid : int;
  result : (Response.t, Xbound.Error.t) Stdlib.result;
}

(** One-line JSON (no trailing newline), ready for {!Serve.Frame}. *)
val encode_request : request_frame -> string

(** Decodes and checks [proto_version]. All failures — unparsable JSON,
    missing members, version mismatch — come back as
    [Xbound.Error.Protocol]. When the envelope carried a readable [id],
    it is returned alongside the error so the server can address its
    error response. *)
val decode_request : string -> (request_frame, int option * Xbound.Error.t) result

val encode_response : response_frame -> string
val decode_response : string -> (response_frame, Xbound.Error.t) result
