(** Reference (interpreted) three-valued evaluator.

    The original per-gate-record engine, kept verbatim as the oracle for
    differential testing of the compiled kernel in {!Engine}: same
    netlist semantics, same cycle protocol, same trace records — but
    straight-line loops over gate records with a variant match per gate,
    and an MD5 digest over the serialized architectural state. Slow by
    design; used only by the test suite. *)

type t

val create : Netlist.t -> ports:Engine.ports -> mem:Mem.t -> t
val mem : t -> Mem.t
val cycle_index : t -> int
val set_reset : t -> Tri.t -> unit
val set_port_in : t -> Tri.t array -> unit
val begin_cycle : t -> [ `Ok | `Fork ]
val force_fork : t -> Tri.t -> unit
val finish_cycle : t -> Trace.cycle
val step : t -> Trace.cycle
val value : t -> int -> Tri.t
val sample : t -> int array -> Tri.Word.t

(** MD5 digest of the serialized architectural state. Not comparable to
    {!Engine.arch_digest} strings — only its {e partition} of states is
    (equal states get equal digests in both). *)
val arch_digest : t -> string

val values_snapshot : t -> int array

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
