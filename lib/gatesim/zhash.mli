(** Zobrist-style incremental hashing for dedup digests.

    XOR-accumulate {!key}/{!word_key} values per state slot; updating a
    slot is two XORs, so a full-state digest is maintained in O(changed
    slots) per cycle instead of rehashing the state. Key generation is
    deterministic — engine replicas on other domains compute identical
    digests without sharing tables. *)

(** Splitmix-shaped finalizer on the native int domain. *)
val mix : int -> int

(** [key slot v] — key of small value [v] (a trit code) in [slot]. *)
val key : int -> int -> int

(** [word_key i w] — key of packed word payload [w] in slot [i]. *)
val word_key : int -> int -> int

(** Stable printable digest of an accumulated hash. *)
val to_digest : int -> string
