(* Compiled three-valued evaluation kernel.

   [create] compiles the netlist into a struct-of-arrays gate program:
   one flat int array of stride-4 records [op|out<<4; f0; f1; f2] in
   topological order (the netlist's level-partitioned [topo]), so
   [eval_pass] is a tight loop over unboxed ints — no gate records, no
   variant matches. Gate values live in packed ternary bit-planes (two
   parallel bit arrays, 32 trits per word; see {!Tri.Plane}), which
   turns the per-cycle whole-netlist work — change detection, activity
   marking, delta collection, state blits — into word-wide xor/popcount
   passes.

   Buf/Inv compile to And/Nand with a duplicated fanin (a AND a = a,
   a NAND a = NOT a in Kleene logic), so the runtime op set is just the
   six binary connectives plus mux, all evaluated by lookup tables
   generated from {!Tri.I} — the compiled kernel cannot disagree with
   the reference semantics ({!Refsim}) on any truth table entry.

   Dirty tracking is a bit-plane over *program positions*: the scanner
   skips clean words, pops set bits with ctz, and fanout marks are
   forward-only (a combinational reader's level is strictly greater, so
   its position is later), which is what makes the single forward scan a
   fixpoint.

   The architectural-state digest is a Zobrist hash maintained
   incrementally (two XORs per changed flop/input slot, plus the RAM
   hash {!Mem.content_hash} keeps on its own), and snapshots are
   copy-on-write: taking or restoring one is O(1) — it freezes the
   current planes and the next mutation clones them. *)

type ports = {
  reset : int;
  port_in : int array;
  mem_addr : int array;
  mem_rdata : int array;
  mem_wdata : int array;
  mem_ren : int;
  mem_wen : int;
  pc : int array;
  state : int array;
  ir : int array;
  fork_net : int option;
}

let xcode = Tri.I.x
let word_mask = 0xFFFFFFFF

(* Runtime opcodes. Binary connectives are 0..5 and index [bin_tbl];
   mux is 6. *)
let op_and = 0
let op_or = 1
let op_nand = 2
let op_nor = 3
let op_xor = 4
let op_xnor = 5
let op_mux = 6

(* Truth tables generated from Tri.I so the compiled kernel is
   semantically identical to the interpreted reference by construction.
   Index: (op lsl 4) lor (a lsl 2) lor b. *)
let bin_tbl =
  let ops =
    [| Tri.I.land_; Tri.I.lor_; Tri.I.lnand; Tri.I.lnor; Tri.I.lxor_;
       Tri.I.lxnor |]
  in
  let t = Array.make 96 0 in
  Array.iteri
    (fun op f ->
      for a = 0 to 2 do
        for b = 0 to 2 do
          t.((op lsl 4) lor (a lsl 2) lor b) <- f a b
        done
      done)
    ops;
  t

(* Index: (sel lsl 4) lor (a lsl 2) lor b. *)
let mux_tbl =
  let t = Array.make 48 0 in
  for s = 0 to 2 do
    for a = 0 to 2 do
      for b = 0 to 2 do
        t.((s lsl 4) lor (a lsl 2) lor b) <- Tri.I.mux s a b
      done
    done
  done;
  t

(* Plane accessors, hand-inlined for the hot loops. Codes are the Tri.I
   encoding with X normalized to v=0 (so only 0, 1, 2 occur). *)
let[@inline] pget vv vx i =
  let w = i lsr 5 and b = i land 31 in
  ((Array.unsafe_get vv w lsr b) land 1)
  lor (((Array.unsafe_get vx w lsr b) land 1) lsl 1)

let[@inline] pset vv vx i code =
  let w = i lsr 5 and b = i land 31 in
  let m = lnot (1 lsl b) in
  Array.unsafe_set vv w
    ((Array.unsafe_get vv w land m) lor ((code land 1) lsl b));
  Array.unsafe_set vx w
    ((Array.unsafe_get vx w land m) lor ((code lsr 1) lsl b))

let[@inline] bit_set pl i =
  (Array.unsafe_get pl (i lsr 5) lsr (i land 31)) land 1 = 1

let c_words = Telemetry.Counter.make "engine.words_evaluated"
let c_cycles = Telemetry.Counter.make "engine.cycles"
let h_snapshot_ns = Telemetry.Histogram.make "engine.snapshot_ns"

(* One compiled gate program. The engine carries two: [full] over every
   combinational gate, and optionally a specialized program over the
   gates that {!Netlist.Specialize} could not fold. Both address the
   same net-indexed value planes — only program positions (and hence
   the dirty plane and fanout lists) are renumbered. *)
type compiled = {
  c_prog : int array;  (* stride 4: [op|out<<4; f0; f1; f2], topo order *)
  c_fo_off : int array;  (* per net: offset into c_fo_pos, length n+1 *)
  c_fo_pos : int array;  (* program positions of combinational readers *)
  c_ncomb : int;  (* gates in this program *)
  c_pw : int;  (* words in the program-position dirty plane *)
}

(* Specialized-program state, shared by every engine over the same
   specialization (immutable). [sfv]/[sfx]/[sfmask] are the invariant
   value vector as net planes; the engine verifies the live state
   against them before switching programs, so activation can never
   change observable behaviour. *)
type spec_state = {
  sc : compiled;
  sfv : int array;
  sfx : int array;
  sfmask : int array;  (* bit set = net is folded *)
  scand : int array;  (* folded flops, packed (dff_index lsl 2) lor code *)
  s_folded : int;
  s_swept : int;
}

(* Per-netlist immutable compile results, memoized by physical identity:
   the static tier creates one engine per characterized block over the
   same netlist, and worker domains one replica each, so recompiling
   these per engine is pure waste. A concurrent recompute is harmless
   (last write wins, same tables). *)
type tables = {
  tb_nl : Netlist.t;
  tb_full : compiled;
  tb_gkind : Bytes.t;  (* 1=Input, 2=Dff, 3=Dffe, 0 otherwise *)
  tb_gf0 : int array;  (* fanin 0 of Input/Dff/Dffe gates (en for Dffe) *)
  tb_xsp : int array;  (* bit-plane over net ids: Input|Dff|Dffe *)
  tb_islot : int array;  (* net id -> Zobrist slot of inputs, -1 otherwise *)
  tb_dff_e : Bytes.t;  (* per dff index: 1 iff Dffe *)
  tb_dff_f0 : int array;  (* d for Dff, en for Dffe *)
  tb_dff_f1 : int array;  (* d for Dffe *)
  tb_nw : int;  (* words per net-id plane *)
  tb_init_vv : int array;  (* initial planes: all X, constants folded in *)
  tb_init_vx : int array;
  tb_init_hash : int;
}

type t = {
  nl : Netlist.t;
  ports : ports;
  mem_ : Mem.t;
  tb : tables;
  (* Compiled programs — immutable after [create]. [cur] switches
     between [full] and the specialized program; the switch is only
     taken at a settled cycle boundary after verifying the state against
     the invariant vector, so it is unobservable. *)
  full : compiled;
  spec : spec_state option;
  mutable cur : compiled;
  mutable spec_on : bool;
  gkind : Bytes.t;
  gf0 : int array;
  xsp : int array;
  islot : int array;
  dff_e : Bytes.t;
  dff_f0 : int array;
  dff_f1 : int array;
  nw : int;  (* words per net-id plane *)
  (* Mutable simulation state. The arrays are copy-on-write: [snapshot]
     freezes them ([shared]), the next mutating entry point clones. *)
  mutable vv : int array;  (* value plane *)
  mutable vx : int array;  (* unknown plane *)
  mutable pv : int array;  (* previous-cycle value plane *)
  mutable px : int array;
  mutable av : int array;  (* activity bit-plane *)
  mutable pav : int array;  (* previous-cycle activity *)
  mutable dirty : int array;  (* dirty bit-plane over [cur] positions *)
  mutable dff_next : int array;  (* pending flop codes, indexed like nl.dffs *)
  mutable shared : bool;
  mutable hash : int;  (* Zobrist hash over dff_next + input values *)
  mutable reset_drive : int;
  port_drive : int array;
  mutable cycle : int;
  mutable mid : bool;  (* between begin_cycle and finish_cycle *)
  (* Per-engine scratch for finish_cycle's delta/X-active collection;
     not part of the observable state (excluded from snapshots). *)
  scratch_deltas : int array;
  scratch_x : int array;
}

let netlist t = t.nl
let mem t = t.mem_
let cycle_index t = t.cycle

let unshare t =
  if t.shared then begin
    t.vv <- Array.copy t.vv;
    t.vx <- Array.copy t.vx;
    t.pv <- Array.copy t.pv;
    t.px <- Array.copy t.px;
    t.av <- Array.copy t.av;
    t.pav <- Array.copy t.pav;
    t.dirty <- Array.copy t.dirty;
    t.dff_next <- Array.copy t.dff_next;
    t.shared <- false
  end

(* Compile the gate program over the combinational gates satisfying
   [keep], preserving (level, id) order — a subsequence of a levelized
   topological order is itself one, so the forward-only dirty-scan
   fixpoint argument is untouched. *)
let compile_program nl ~keep =
  let n = Netlist.gate_count nl in
  let gates = nl.Netlist.gates in
  let surv = Array.of_seq (Seq.filter keep (Array.to_seq nl.Netlist.topo)) in
  let ncomb = Array.length surv in
  let pw = Tri.Plane.words ncomb in
  let prog = Array.make (ncomb * 4) 0 in
  let pos_of = Array.make n (-1) in
  Array.iteri
    (fun k id ->
      pos_of.(id) <- k;
      let g = gates.(id) in
      let f = g.Netlist.fanins in
      let op, f0, f1, f2 =
        match g.Netlist.cell with
        | Netlist.Buf -> (op_and, f.(0), f.(0), 0)
        | Netlist.Inv -> (op_nand, f.(0), f.(0), 0)
        | Netlist.And2 -> (op_and, f.(0), f.(1), 0)
        | Netlist.Or2 -> (op_or, f.(0), f.(1), 0)
        | Netlist.Nand2 -> (op_nand, f.(0), f.(1), 0)
        | Netlist.Nor2 -> (op_nor, f.(0), f.(1), 0)
        | Netlist.Xor2 -> (op_xor, f.(0), f.(1), 0)
        | Netlist.Xnor2 -> (op_xnor, f.(0), f.(1), 0)
        | Netlist.Mux2 -> (op_mux, f.(0), f.(1), f.(2))
        | Netlist.Input | Netlist.Const _ | Netlist.Dff | Netlist.Dffe ->
          assert false
      in
      let p = k lsl 2 in
      prog.(p) <- (id lsl 4) lor op;
      prog.(p + 1) <- f0;
      prog.(p + 2) <- f1;
      prog.(p + 3) <- f2)
    surv;
  (* Fanout lists in program space: per net, the positions of its
     combinational readers (flop readers are sampled at cycle
     boundaries, not re-evaluated, so they don't appear). *)
  let fo_off = Array.make (n + 1) 0 in
  Array.iter
    (fun (g : Netlist.gate) ->
      if pos_of.(g.Netlist.id) >= 0 then
        Array.iter
          (fun f -> fo_off.(f + 1) <- fo_off.(f + 1) + 1)
          g.Netlist.fanins)
    gates;
  for i = 0 to n - 1 do
    fo_off.(i + 1) <- fo_off.(i + 1) + fo_off.(i)
  done;
  let fo_pos = Array.make fo_off.(n) 0 in
  let cursor = Array.copy fo_off in
  Array.iter
    (fun (g : Netlist.gate) ->
      let pos = pos_of.(g.Netlist.id) in
      if pos >= 0 then
        Array.iter
          (fun f ->
            fo_pos.(cursor.(f)) <- pos;
            cursor.(f) <- cursor.(f) + 1)
          g.Netlist.fanins)
    gates;
  { c_prog = prog; c_fo_off = fo_off; c_fo_pos = fo_pos; c_ncomb = ncomb;
    c_pw = pw }

let build_tables nl =
  let n = Netlist.gate_count nl in
  let ndffs = Netlist.dff_count nl in
  let gates = nl.Netlist.gates in
  let nw = Tri.Plane.words n in
  let full = compile_program nl ~keep:(fun _ -> true) in
  (* Per-gate metadata for activity marking and digest maintenance. *)
  let gkind = Bytes.make n '\000' in
  let gf0 = Array.make n 0 in
  let xsp = Array.make nw 0 in
  let islot = Array.make n (-1) in
  let mark_xsp id = xsp.(id lsr 5) <- xsp.(id lsr 5) lor (1 lsl (id land 31)) in
  Array.iteri
    (fun j id ->
      Bytes.set gkind id '\001';
      islot.(id) <- ndffs + j;
      mark_xsp id)
    nl.Netlist.inputs;
  let dff_e = Bytes.make ndffs '\000' in
  let dff_f0 = Array.make ndffs 0 in
  let dff_f1 = Array.make ndffs 0 in
  Array.iteri
    (fun i id ->
      let g = gates.(id) in
      (match g.Netlist.cell with
      | Netlist.Dff ->
        Bytes.set gkind id '\002';
        dff_f0.(i) <- g.Netlist.fanins.(0)
      | Netlist.Dffe ->
        Bytes.set gkind id '\003';
        Bytes.set dff_e i '\001';
        dff_f0.(i) <- g.Netlist.fanins.(0);
        dff_f1.(i) <- g.Netlist.fanins.(1)
      | _ -> assert false);
      gf0.(id) <- gates.(id).Netlist.fanins.(0);
      mark_xsp id)
    nl.Netlist.dffs;
  (* All nets start X; constants get their value and are never dirty. *)
  let vv, vx = Tri.Plane.make n in
  for w = 0 to nw - 1 do
    vx.(w) <- word_mask
  done;
  if n land 31 <> 0 && nw > 0 then vx.(nw - 1) <- (1 lsl (n land 31)) - 1;
  Array.iter
    (fun (g : Netlist.gate) ->
      match g.Netlist.cell with
      | Netlist.Const c -> pset vv vx g.Netlist.id (Tri.to_int c)
      | _ -> ())
    gates;
  (* Initial digest: every flop slot and input slot holds X. *)
  let h = ref 0 in
  for i = 0 to ndffs - 1 do
    h := !h lxor Zhash.key i xcode
  done;
  for j = 0 to Array.length nl.Netlist.inputs - 1 do
    h := !h lxor Zhash.key (ndffs + j) xcode
  done;
  {
    tb_nl = nl;
    tb_full = full;
    tb_gkind = gkind;
    tb_gf0 = gf0;
    tb_xsp = xsp;
    tb_islot = islot;
    tb_dff_e = dff_e;
    tb_dff_f0 = dff_f0;
    tb_dff_f1 = dff_f1;
    tb_nw = nw;
    tb_init_vv = vv;
    tb_init_vx = vx;
    tb_init_hash = !h;
  }

let tables_memo : (Netlist.t * tables) option ref = ref None

let tables_for nl =
  match !tables_memo with
  | Some (nl', tb) when nl' == nl -> tb
  | _ ->
    let tb = build_tables nl in
    tables_memo := Some (nl, tb);
    tb

let build_spec_state tb sp =
  if not (Netlist.Specialize.netlist sp == tb.tb_nl) then
    invalid_arg "Engine.create: specialization is for a different netlist";
  let nl = tb.tb_nl in
  let n = Netlist.gate_count nl in
  let sc =
    compile_program nl ~keep:(fun id -> not (Netlist.Specialize.is_folded sp id))
  in
  let sfv = Array.make tb.tb_nw 0 in
  let sfx = Array.make tb.tb_nw 0 in
  let sfmask = Array.make tb.tb_nw 0 in
  for id = 0 to n - 1 do
    if Netlist.Specialize.is_folded sp id then begin
      let w = id lsr 5 and b = id land 31 in
      sfmask.(w) <- sfmask.(w) lor (1 lsl b);
      let c = Netlist.Specialize.code sp id in
      sfv.(w) <- sfv.(w) lor ((c land 1) lsl b);
      sfx.(w) <- sfx.(w) lor (((c lsr 1) land 1) lsl b)
    end
  done;
  {
    sc;
    sfv;
    sfx;
    sfmask;
    scand = Netlist.Specialize.folded_dffs sp;
    s_folded = Netlist.Specialize.folded_count sp;
    s_swept = Netlist.Specialize.swept sp;
  }

let spec_memo : (Netlist.Specialize.t * spec_state) option ref = ref None

let spec_state_for tb sp =
  match !spec_memo with
  | Some (sp', st) when sp' == sp -> st
  | _ ->
    let st = build_spec_state tb sp in
    spec_memo := Some (sp, st);
    st

let make nl ~ports ~mem tb spec =
  let ndffs = Netlist.dff_count nl in
  let n = Netlist.gate_count nl in
  let full = tb.tb_full in
  let dirty = Array.make full.c_pw 0 in
  for w = 0 to full.c_pw - 1 do
    dirty.(w) <- word_mask
  done;
  if full.c_ncomb land 31 <> 0 && full.c_pw > 0 then
    dirty.(full.c_pw - 1) <- (1 lsl (full.c_ncomb land 31)) - 1;
  {
    nl;
    ports;
    mem_ = mem;
    tb;
    full;
    spec;
    cur = full;
    spec_on = false;
    gkind = tb.tb_gkind;
    gf0 = tb.tb_gf0;
    xsp = tb.tb_xsp;
    islot = tb.tb_islot;
    dff_e = tb.tb_dff_e;
    dff_f0 = tb.tb_dff_f0;
    dff_f1 = tb.tb_dff_f1;
    nw = tb.tb_nw;
    vv = Array.copy tb.tb_init_vv;
    vx = Array.copy tb.tb_init_vx;
    pv = Array.copy tb.tb_init_vv;
    px = Array.copy tb.tb_init_vx;
    av = Array.make tb.tb_nw 0;
    pav = Array.make tb.tb_nw 0;
    dirty;
    dff_next = Array.make ndffs xcode;
    shared = false;
    hash = tb.tb_init_hash;
    reset_drive = xcode;
    port_drive = Array.make (Array.length ports.port_in) xcode;
    cycle = 0;
    mid = false;
    scratch_deltas = Array.make n 0;
    scratch_x = Array.make n 0;
  }

let create ?spec nl ~ports ~mem =
  let tb = tables_for nl in
  let sp = Option.map (spec_state_for tb) spec in
  make nl ~ports ~mem tb sp

let set_reset t level = t.reset_drive <- Tri.to_int level

let set_port_in t trits =
  if Array.length trits <> Array.length t.port_drive then
    invalid_arg
      (Printf.sprintf
         "Engine.set_port_in: width mismatch (expected %d trits, got %d)"
         (Array.length t.port_drive) (Array.length trits));
  Array.iteri (fun i v -> t.port_drive.(i) <- Tri.to_int v) trits

let[@inline] mark_fanouts t id =
  let cur = t.cur in
  let dirty = t.dirty in
  let stop = Array.unsafe_get cur.c_fo_off (id + 1) in
  for k = Array.unsafe_get cur.c_fo_off id to stop - 1 do
    let pos = Array.unsafe_get cur.c_fo_pos k in
    let w = pos lsr 5 in
    Array.unsafe_set dirty w
      (Array.unsafe_get dirty w lor (1 lsl (pos land 31)))
  done

(* Only entry point that writes a net value outside eval_pass. Keeps the
   Zobrist digest current when the net is a primary input. *)
let drive t id v =
  let old = pget t.vv t.vx id in
  if old <> v then begin
    pset t.vv t.vx id v;
    let slot = Array.unsafe_get t.islot id in
    if slot >= 0 then
      t.hash <- t.hash lxor Zhash.key slot old lxor Zhash.key slot v;
    mark_fanouts t id
  end

let eval_pass t =
  let cur = t.cur in
  let dirty = t.dirty
  and prog = cur.c_prog
  and vv = t.vv
  and vx = t.vx in
  let pw = cur.c_pw in
  let words = ref 0 in
  let w = ref 0 in
  while !w < pw do
    let bits = Array.unsafe_get dirty !w in
    incr words;
    if bits = 0 then incr w
    else begin
      (* Clear the lowest set bit *before* evaluating: the evaluation
         may re-mark bits in this very word (forward fanouts), which the
         next iteration picks up by re-reading it. *)
      Array.unsafe_set dirty !w (bits land (bits - 1));
      let p = ((!w lsl 5) lor Tri.Plane.ctz bits) lsl 2 in
      let hd = Array.unsafe_get prog p in
      let op = hd land 15 in
      let out = hd lsr 4 in
      let a = pget vv vx (Array.unsafe_get prog (p + 1)) in
      let b = pget vv vx (Array.unsafe_get prog (p + 2)) in
      let nv =
        if op < 6 then
          Array.unsafe_get bin_tbl ((op lsl 4) lor (a lsl 2) lor b)
        else
          let c = pget vv vx (Array.unsafe_get prog (p + 3)) in
          Array.unsafe_get mux_tbl ((a lsl 4) lor (b lsl 2) lor c)
      in
      if nv <> pget vv vx out then begin
        pset vv vx out nv;
        mark_fanouts t out
      end
    end
  done;
  Telemetry.Counter.add c_words !words

let sample t bus =
  Tri.Word.of_trits (Array.map (fun id -> Tri.of_int (pget t.vv t.vx id)) bus)

let value t id = Tri.of_int (pget t.vv t.vx id)

(* Program-switch points. Both run only at a settled cycle boundary
   (dirty plane all-zero), so swapping the program and its dirty plane
   is a pure representation change: every folded gate's output already
   holds its proven-invariant value, every surviving gate computes
   exactly what the full program would, and the value planes, digest and
   delta/X-active collection are untouched — behaviour is bit-identical
   whether or when the switch happens.

   Activation verifies the live state against the invariant vector
   (folded nets at their codes, folded flops' pending values at their
   codes, reset deasserted); the check fails harmlessly during the reset
   settle cycles and passes from the first steady-state cycle on. *)
let try_specialize t =
  match t.spec with
  | None -> ()
  | Some s ->
    if t.reset_drive = 0 then begin
      let vv = t.vv and vx = t.vx in
      let sfv = s.sfv and sfx = s.sfx and sfmask = s.sfmask in
      let nw = t.nw in
      let ok = ref true in
      let w = ref 0 in
      while !ok && !w < nw do
        if
          ((Array.unsafe_get vv !w lxor Array.unsafe_get sfv !w)
          lor (Array.unsafe_get vx !w lxor Array.unsafe_get sfx !w))
          land Array.unsafe_get sfmask !w
          <> 0
        then ok := false;
        incr w
      done;
      let dn = t.dff_next and sc = s.scand in
      let m = Array.length sc in
      let i = ref 0 in
      while !ok && !i < m do
        let e = Array.unsafe_get sc !i in
        if Array.unsafe_get dn (e lsr 2) <> e land 3 then ok := false;
        incr i
      done;
      if !ok then begin
        t.spec_on <- true;
        t.cur <- s.sc;
        (* Fresh (not mutated): snapshots sharing the old plane keep it. *)
        t.dirty <- Array.make s.sc.c_pw 0
      end
    end

let unspecialize t =
  t.spec_on <- false;
  t.cur <- t.full;
  t.dirty <- Array.make t.full.c_pw 0

let begin_cycle t =
  if t.mid then invalid_arg "Engine.begin_cycle: already mid-cycle";
  if t.spec_on then begin
    if t.reset_drive <> 0 then unspecialize t
  end
  else try_specialize t;
  unshare t;
  t.mid <- true;
  (* Clock edge: flops take their pending values. *)
  Array.iteri (fun i id -> drive t id t.dff_next.(i)) t.nl.Netlist.dffs;
  (* External drives. *)
  drive t t.ports.reset t.reset_drive;
  Array.iteri (fun i id -> drive t id t.port_drive.(i)) t.ports.port_in;
  eval_pass t;
  (* Combinational memory read. *)
  let ren = Tri.of_int (pget t.vv t.vx t.ports.mem_ren) in
  (match ren with
  | Tri.Zero -> () (* bus keeper: rdata holds its previous value *)
  | Tri.One ->
    let addr = sample t t.ports.mem_addr in
    let data = Mem.read t.mem_ addr in
    Array.iteri
      (fun i id -> drive t id (Tri.to_int (Tri.Word.bit data i)))
      t.ports.mem_rdata
  | Tri.X ->
    Array.iter (fun id -> drive t id xcode) t.ports.mem_rdata);
  eval_pass t;
  match t.ports.fork_net with
  | Some f when pget t.vv t.vx f = xcode -> `Fork
  | Some _ | None -> `Ok

let force_fork t v =
  if not t.mid then invalid_arg "Engine.force_fork: not mid-cycle";
  (match v with
  | Tri.X -> invalid_arg "Engine.force_fork: cannot force X"
  | Tri.Zero | Tri.One -> ());
  unshare t;
  (match t.ports.fork_net with
  | None -> invalid_arg "Engine.force_fork: no fork net"
  | Some f -> drive t f (Tri.to_int v));
  eval_pass t

let finish_cycle t =
  if not t.mid then invalid_arg "Engine.finish_cycle: begin_cycle first";
  (match t.ports.fork_net with
  | Some f when pget t.vv t.vx f = xcode ->
    invalid_arg "Engine.finish_cycle: unresolved fork"
  | Some _ | None -> ());
  unshare t;
  t.mid <- false;
  let nl = t.nl in
  let vv = t.vv and vx = t.vx and pv = t.pv and px = t.px in
  let nw = t.nw in
  (* Pending flop values (visible next cycle). An enable-flop holds when
     its enable is 0, loads on 1, and on X keeps its value only if old
     and new agree. Each change is two XORs into the running digest. *)
  let dffs = nl.Netlist.dffs in
  let dff_next = t.dff_next in
  for i = 0 to Array.length dffs - 1 do
    let nv =
      if Bytes.unsafe_get t.dff_e i = '\000' then
        pget vv vx (Array.unsafe_get t.dff_f0 i)
      else begin
        let en = pget vv vx (Array.unsafe_get t.dff_f0 i) in
        let d = pget vv vx (Array.unsafe_get t.dff_f1 i) in
        let q = pget vv vx (Array.unsafe_get dffs i) in
        if en = 0 then q else if en = 1 then d else if d = q then q else xcode
      end
    in
    let ov = Array.unsafe_get dff_next i in
    if nv <> ov then begin
      t.hash <- t.hash lxor Zhash.key i ov lxor Zhash.key i nv;
      Array.unsafe_set dff_next i nv
    end
  done;
  (* Memory write (synchronous). *)
  let wen = Tri.of_int (pget vv vx t.ports.mem_wen) in
  (match wen with
  | Tri.Zero -> ()
  | Tri.One | Tri.X ->
    let addr = sample t t.ports.mem_addr in
    let data = sample t t.ports.mem_wdata in
    Mem.write t.mem_ ~strobe:wen addr data);
  (* Activity marking. Base case, word-wide: a gate that changed value
     is active (constants never change, so they never set a bit). *)
  let av = t.av in
  for w = 0 to nw - 1 do
    Array.unsafe_set av w
      ((Array.unsafe_get vv w lxor Array.unsafe_get pv w)
      lor (Array.unsafe_get vx w lxor Array.unsafe_get px w))
  done;
  (* X-special cases, scanning only X-valued Input/Dff/Dffe bits: an X
     input is always (potentially) switching; an X flop only if its data
     could have moved — Dff when the data net was active last cycle,
     Dffe when the enable wasn't known-0 last cycle (a held unknown
     cannot toggle). *)
  let pav = t.pav in
  for w = 0 to nw - 1 do
    let cand =
      Array.unsafe_get vx w
      land Array.unsafe_get t.xsp w
      land lnot (Array.unsafe_get av w)
    in
    if cand <> 0 then begin
      let c = ref cand in
      while !c <> 0 do
        let b = Tri.Plane.ctz !c in
        c := !c land (!c - 1);
        let id = (w lsl 5) lor b in
        let act =
          match Bytes.unsafe_get t.gkind id with
          | '\001' -> true
          | '\002' -> bit_set pav (Array.unsafe_get t.gf0 id)
          | _ -> pget pv px (Array.unsafe_get t.gf0 id) <> 0
        in
        if act then
          Array.unsafe_set av w (Array.unsafe_get av w lor (1 lsl b))
      done
    end
  done;
  (* X-propagated activity in dependency (program) order: an X-valued
     gate is active when an active fanin can actually reach its output.
     For and/or/xor-class cells an X output already implies every fanin
     is potentially controlling, so any active fanin suffices; a mux
     with a stable known select is only sensitive to the selected input
     (this sensitization matters: without it, every idle X register
     whose write-data bus toggles would be counted as potentially
     switching each cycle, grossly inflating the bound). *)
  let cur = t.cur in
  let prog = cur.c_prog in
  let ncomb = cur.c_ncomb in
  for k = 0 to ncomb - 1 do
    let p = k lsl 2 in
    let hd = Array.unsafe_get prog p in
    let out = hd lsr 4 in
    let ow = out lsr 5 and ob = out land 31 in
    if
      (Array.unsafe_get vx ow lsr ob) land 1 = 1
      && (Array.unsafe_get av ow lsr ob) land 1 = 0
    then begin
      let f0 = Array.unsafe_get prog (p + 1) in
      let any =
        if hd land 15 < 6 then
          bit_set av f0 || bit_set av (Array.unsafe_get prog (p + 2))
        else
          bit_set av f0
          ||
          let sel = pget vv vx f0 in
          if sel = 0 then bit_set av (Array.unsafe_get prog (p + 2))
          else if sel = 1 then bit_set av (Array.unsafe_get prog (p + 3))
          else
            bit_set av (Array.unsafe_get prog (p + 2))
            || bit_set av (Array.unsafe_get prog (p + 3))
      in
      if any then Array.unsafe_set av ow (Array.unsafe_get av ow lor (1 lsl ob))
    end
  done;
  (* Collect deltas and X-active sets word by word into per-engine
     scratch: changed bits become packed deltas, active-but-unchanged
     bits the X-active list, both in ascending net order. *)
  let nd = ref 0 and nx = ref 0 in
  let sd = t.scratch_deltas and sx = t.scratch_x in
  for w = 0 to nw - 1 do
    let diff =
      (Array.unsafe_get vv w lxor Array.unsafe_get pv w)
      lor (Array.unsafe_get vx w lxor Array.unsafe_get px w)
    in
    if diff <> 0 then begin
      let d = ref diff in
      while !d <> 0 do
        let b = Tri.Plane.ctz !d in
        d := !d land (!d - 1);
        let id = (w lsl 5) lor b in
        Array.unsafe_set sd !nd
          (Trace.pack ~net:id ~old_v:(pget pv px id) ~new_v:(pget vv vx id));
        incr nd
      done
    end;
    let xact = Array.unsafe_get av w land lnot diff in
    if xact <> 0 then begin
      let d = ref xact in
      while !d <> 0 do
        let b = Tri.Plane.ctz !d in
        d := !d land (!d - 1);
        Array.unsafe_set sx !nx ((w lsl 5) lor b);
        incr nx
      done
    end
  done;
  let rec_ =
    {
      Trace.deltas = Array.sub sd 0 !nd;
      x_active = Array.sub sx 0 !nx;
      pc = sample t t.ports.pc;
      state = sample t t.ports.state;
      ir = sample t t.ports.ir;
    }
  in
  Array.blit vv 0 pv 0 nw;
  Array.blit vx 0 px 0 nw;
  Array.blit av 0 t.pav 0 nw;
  t.cycle <- t.cycle + 1;
  Telemetry.Counter.add c_cycles 1;
  rec_

let step t =
  match begin_cycle t with
  | `Ok -> finish_cycle t
  | `Fork -> failwith "Engine.step: unexpected fork (X on branch decision)"

(* O(1): the flop/input hash is maintained incrementally, the RAM hash
   by Mem. Zobrist equality mirrors content equality (collisions are
   negligible — 63-bit keys), so dedup decisions match the old
   full-serialization MD5 digest. *)
let arch_digest t = Zhash.to_digest (t.hash lxor Mem.content_hash t.mem_)

let values_snapshot t = Array.init (Netlist.gate_count t.nl) (pget t.vv t.vx)

type snapshot = {
  s_vv : int array;
  s_vx : int array;
  s_pv : int array;
  s_px : int array;
  s_av : int array;
  s_pav : int array;
  s_dirty : int array;
  s_dff_next : int array;
  s_mem : Mem.snapshot;
  s_hash : int;
  s_reset_drive : int;
  s_port_drive : int array;
  s_cycle : int;
  s_mid : bool;
  s_spec_on : bool;  (* which program s_dirty is positioned over *)
}

let snapshot_ t =
  t.shared <- true;
  {
    s_vv = t.vv;
    s_vx = t.vx;
    s_pv = t.pv;
    s_px = t.px;
    s_av = t.av;
    s_pav = t.pav;
    s_dirty = t.dirty;
    s_dff_next = t.dff_next;
    s_mem = Mem.snapshot t.mem_;
    s_hash = t.hash;
    s_reset_drive = t.reset_drive;
    s_port_drive = Array.copy t.port_drive;
    s_cycle = t.cycle;
    s_mid = t.mid;
    s_spec_on = t.spec_on;
  }

let snapshot t =
  if Telemetry.enabled () then begin
    let t0 = Telemetry.now_ns () in
    let s = snapshot_ t in
    Telemetry.Histogram.observe h_snapshot_ns
      (Int64.sub (Telemetry.now_ns ()) t0);
    s
  end
  else snapshot_ t

let restore t s =
  (match (s.s_spec_on, t.spec) with
  | true, None ->
    invalid_arg "Engine.restore: specialized snapshot, unspecialized engine"
  | true, Some sp ->
    t.spec_on <- true;
    t.cur <- sp.sc
  | false, _ ->
    t.spec_on <- false;
    t.cur <- t.full);
  t.vv <- s.s_vv;
  t.vx <- s.s_vx;
  t.pv <- s.s_pv;
  t.px <- s.s_px;
  t.av <- s.s_av;
  t.pav <- s.s_pav;
  t.dirty <- s.s_dirty;
  t.dff_next <- s.s_dff_next;
  t.shared <- true;
  Mem.restore t.mem_ s.s_mem;
  t.hash <- s.s_hash;
  t.reset_drive <- s.s_reset_drive;
  Array.blit s.s_port_drive 0 t.port_drive 0 (Array.length t.port_drive);
  t.cycle <- s.s_cycle;
  t.mid <- s.s_mid

(* Replica for a worker domain: shares the read-only netlist, compiled
   tables, specialization and ROM with [t]; owns fresh planes and RAM.
   The external drive levels are carried by [snapshot]/[restore], so a
   replica becomes interchangeable with the original the moment a
   snapshot is restored into it. *)
let create_like t = make t.nl ~ports:t.ports ~mem:(Mem.like t.mem_) t.tb t.spec

let specialization t =
  Option.map (fun s -> (s.s_folded, s.s_swept)) t.spec

let specialized_active t = t.spec_on

let of_snapshot t s =
  let e = create_like t in
  restore e s;
  e

(* ---------------------------------------------------------------------
   Gang simulation: up to 32 independent simulations of the SAME netlist
   evaluated in one pass of the compiled kernel.

   Sibling branches of the symbolic execution tree run the same gate
   program on slightly divergent state, so the per-cycle costs that are
   O(netlist) regardless of how much changed — the X-propagation
   sensitization pass, dirty scanning, fanout traversal — can be
   amortized across a whole gang. The layout transposes the scalar
   engine's packing: where the scalar engine stores 32 *nets* per word,
   the gang stores one word per net holding 32 *lanes* (bit [l] of the
   value/unknown word of net [i] is lane [l]'s trit, X normalized to
   v = 0). Gate evaluation then runs on {!Tri.Lanes} formulas: a handful
   of word-wide boolean ops compute the Kleene connective for all lanes
   at once, and the dirty plane is shared — a gate is re-evaluated when
   *any* lane marked it, which costs nothing extra because evaluation is
   word-parallel anyway.

   Memory, the Zobrist digest, cycle counters and external drive levels
   stay per-lane. Lanes are loaded from ordinary (cycle-boundary) engine
   snapshots and extracted back into snapshots either mid-cycle (when a
   lane hits a fork, so a scalar engine can resolve both arms) or at a
   boundary (truncation); an extracted snapshot restored into a scalar
   engine continues bit-identically, which the differential suite checks
   in lockstep.

   Per-cycle record collection matches the scalar engine exactly: the
   [mark] plane (nets touched this cycle, by stores or activity setting)
   is a superset of every net with a delta or X-active bit, and since
   untouched nets provably equal their previous-cycle values, scanning
   marked nets in ascending order yields the same delta/X-active lists
   the scalar full-plane scan produces. *)

module Gang = struct
  type outcome = Cycle of Trace.cycle | Forked of snapshot

  type g = {
    e : t;  (* prototype: compiled tables only; its mutable state is unused *)
    width : int;
    mutable live : int;  (* lane bitmask *)
    (* lane-word state: one word per net (or per flop), bit l = lane l *)
    lvv : int array;
    lvx : int array;
    lpv : int array;  (* previous-cycle values *)
    lpx : int array;
    mutable lav : int array;  (* this-cycle activity *)
    mutable lpav : int array;  (* previous-cycle activity *)
    ldnv : int array;  (* pending flop values, indexed like nl.dffs *)
    ldnx : int array;
    gdirty : int array;  (* program-position dirty plane, shared scan *)
    ldirty : int array;
        (* per-gate pending lane mask, indexed by program position. A
           gate output is recomputed ONLY in lanes whose fanins changed:
           lanes are independent event-driven simulations, so a lane
           whose inputs are quiet must keep its stale value — the scalar
           engine relies on exactly this to hold forced fork decisions
           (out <> f(in) until an input event), and boundary snapshots
           carry such states. A full-word recompute would clobber
           them. *)
    mutable mark : int array;  (* net-id plane: nets touched this cycle *)
    mutable markp : int array;  (* nets touched previous cycle *)
    (* per-lane simulation identity *)
    mems : Mem.t array;
    hash : int array;
    rdrive : int array;
    pdrive : int array array;
    cyc : int array;
    (* cached external drive lane-words: slot 0 = reset, j+1 = port j *)
    drv_v : int array;
    drv_x : int array;
    (* scratch *)
    rtmp_v : int array;  (* per rdata bit, during the memory read *)
    rtmp_x : int array;
    dbuf : int array array;  (* per-lane delta collection *)
    xbuf : int array array;
    dn : int array;
    xn : int array;
  }

  let width g = g.width
  let live_count g = Tri.Plane.popcount g.live
  let has_free g = g.live <> (1 lsl g.width) - 1

  let create e ~width =
    let width = max 1 (min 32 width) in
    let n = Netlist.gate_count e.nl in
    let ndffs = Netlist.dff_count e.nl in
    {
      e;
      width;
      live = 0;
      lvv = Array.make n 0;
      lvx = Array.make n 0;
      lpv = Array.make n 0;
      lpx = Array.make n 0;
      lav = Array.make n 0;
      lpav = Array.make n 0;
      ldnv = Array.make ndffs 0;
      ldnx = Array.make ndffs 0;
      (* Lanes always run the full program: gang state mixes lanes from
         arbitrary snapshots, and the per-gate merge-store already
         amortizes the program walk across the whole gang. Extracted
         snapshots are marked unspecialized; a scalar engine restoring
         one re-activates its specialized program at the next verified
         cycle boundary. *)
      gdirty = Array.make e.full.c_pw 0;
      ldirty = Array.make e.full.c_ncomb 0;
      mark = Array.make e.nw 0;
      markp = Array.make e.nw 0;
      mems = Array.init width (fun _ -> Mem.like e.mem_);
      hash = Array.make width 0;
      rdrive = Array.make width xcode;
      pdrive =
        Array.init width (fun _ ->
            Array.make (Array.length e.ports.port_in) xcode);
      cyc = Array.make width 0;
      drv_v = Array.make (1 + Array.length e.ports.port_in) 0;
      drv_x = Array.make (1 + Array.length e.ports.port_in) 0;
      rtmp_v = Array.make (Array.length e.ports.mem_rdata) 0;
      rtmp_x = Array.make (Array.length e.ports.mem_rdata) 0;
      dbuf = Array.init width (fun _ -> Array.make n 0);
      xbuf = Array.init width (fun _ -> Array.make n 0);
      dn = Array.make width 0;
      xn = Array.make width 0;
    }

  let[@inline] lane_code g id l =
    ((Array.unsafe_get g.lvv id lsr l) land 1)
    lor (((Array.unsafe_get g.lvx id lsr l) land 1) lsl 1)

  let[@inline] mark_net g id =
    let w = id lsr 5 in
    Array.unsafe_set g.mark w
      (Array.unsafe_get g.mark w lor (1 lsl (id land 31)))

  (* Mark fanouts dirty in exactly the [lanes] whose driver changed. *)
  let[@inline] mark_fanouts_g g id lanes =
    let dirty = g.gdirty and ldirty = g.ldirty in
    let full = g.e.full in
    let stop = Array.unsafe_get full.c_fo_off (id + 1) in
    for k = Array.unsafe_get full.c_fo_off id to stop - 1 do
      let pos = Array.unsafe_get full.c_fo_pos k in
      let w = pos lsr 5 in
      Array.unsafe_set dirty w
        (Array.unsafe_get dirty w lor (1 lsl (pos land 31)));
      Array.unsafe_set ldirty pos (Array.unsafe_get ldirty pos lor lanes)
    done

  (* Write a lane word into net [id]: store + dirty marks only when a
     live lane actually changed; [hash_slot >= 0] folds each changed
     live lane's old/new codes into that lane's Zobrist hash (external
     drives — mirrors the scalar [drive]). *)
  let store_lanes g id nv nx ~hash_slot =
    let ov = Array.unsafe_get g.lvv id and ox = Array.unsafe_get g.lvx id in
    let changed = ((ov lxor nv) lor (ox lxor nx)) land g.live in
    if changed <> 0 then begin
      if hash_slot >= 0 then begin
        let c = ref changed in
        while !c <> 0 do
          let l = Tri.Plane.ctz !c in
          c := !c land (!c - 1);
          let oc = ((ov lsr l) land 1) lor (((ox lsr l) land 1) lsl 1) in
          let nc = ((nv lsr l) land 1) lor (((nx lsr l) land 1) lsl 1) in
          g.hash.(l) <-
            g.hash.(l) lxor Zhash.key hash_slot oc lxor Zhash.key hash_slot nc
        done
      end;
      Array.unsafe_set g.lvv id nv;
      Array.unsafe_set g.lvx id nx;
      mark_fanouts_g g id changed;
      mark_net g id
    end

  (* Word-parallel settle over the shared dirty plane — the scalar
     [eval_pass] with {!Tri.Lanes} formulas instead of table lookups. *)
  let eval_g g =
    let e = g.e in
    let dirty = g.gdirty and prog = e.full.c_prog in
    let lvv = g.lvv and lvx = g.lvx in
    let live = g.live in
    let pw = e.full.c_pw in
    let words = ref 0 in
    let w = ref 0 in
    while !w < pw do
      let bits = Array.unsafe_get dirty !w in
      incr words;
      if bits = 0 then incr w
      else begin
        Array.unsafe_set dirty !w (bits land (bits - 1));
        let k = (!w lsl 5) lor Tri.Plane.ctz bits in
        let lmask = Array.unsafe_get g.ldirty k land live in
        Array.unsafe_set g.ldirty k 0;
        if lmask <> 0 then begin
          let p = k lsl 2 in
          let hd = Array.unsafe_get prog p in
          let op = hd land 15 in
          let out = hd lsr 4 in
          let f0 = Array.unsafe_get prog (p + 1) in
          let f1 = Array.unsafe_get prog (p + 2) in
          let av = Array.unsafe_get lvv f0 and ax = Array.unsafe_get lvx f0 in
          let bv = Array.unsafe_get lvv f1 and bx = Array.unsafe_get lvx f1 in
          let nv, nx =
            if op = op_and then Tri.Lanes.and_ av ax bv bx
            else if op = op_or then Tri.Lanes.or_ av ax bv bx
            else if op = op_nand then Tri.Lanes.nand av ax bv bx
            else if op = op_nor then Tri.Lanes.nor av ax bv bx
            else if op = op_xor then Tri.Lanes.xor_ av ax bv bx
            else if op = op_xnor then Tri.Lanes.xnor av ax bv bx
            else
              let f2 = Array.unsafe_get prog (p + 3) in
              Tri.Lanes.mux av ax bv bx
                (Array.unsafe_get lvv f2)
                (Array.unsafe_get lvx f2)
          in
          let ov = Array.unsafe_get lvv out and ox = Array.unsafe_get lvx out in
          (* Merge-store: only lanes with an input event take the fresh
             value; quiet lanes keep theirs (see [ldirty]). *)
          let nv = (ov land lnot lmask) lor (nv land lmask) in
          let nx = (ox land lnot lmask) lor (nx land lmask) in
          let changed = (ov lxor nv) lor (ox lxor nx) in
          if changed <> 0 then begin
            Array.unsafe_set lvv out nv;
            Array.unsafe_set lvx out nx;
            mark_fanouts_g g out changed;
            mark_net g out
          end
        end
      end
    done;
    Telemetry.Counter.add c_words !words

  let lane_sample g l bus =
    Tri.Word.of_trits (Array.map (fun id -> Tri.of_int (lane_code g id l)) bus)

  (* The scalar [begin_cycle] for all live lanes: clock edge, external
     drives, settle, combinational memory read, settle. Returns the mask
     of live lanes whose branch-decision net settled to X. *)
  let begin_g g =
    let e = g.e in
    let dffs = e.nl.Netlist.dffs in
    for i = 0 to Array.length dffs - 1 do
      store_lanes g
        (Array.unsafe_get dffs i)
        (Array.unsafe_get g.ldnv i)
        (Array.unsafe_get g.ldnx i)
        ~hash_slot:(-1)
    done;
    store_lanes g e.ports.reset g.drv_v.(0) g.drv_x.(0)
      ~hash_slot:e.islot.(e.ports.reset);
    Array.iteri
      (fun j id ->
        store_lanes g id g.drv_v.(j + 1) g.drv_x.(j + 1) ~hash_slot:e.islot.(id))
      e.ports.port_in;
    eval_g g;
    (* Combinational memory read. Per lane: ren 0 = bus keeper (lane
       bits keep their value), 1 = read through the map, X = all-X. *)
    let renv = g.lvv.(e.ports.mem_ren) and renx = g.lvx.(e.ports.mem_ren) in
    let need = (renv lor renx) land g.live in
    if need <> 0 then begin
      let rd = e.ports.mem_rdata in
      let nrd = Array.length rd in
      for j = 0 to nrd - 1 do
        g.rtmp_v.(j) <- g.lvv.(rd.(j));
        g.rtmp_x.(j) <- g.lvx.(rd.(j))
      done;
      let lanes = ref need in
      while !lanes <> 0 do
        let l = Tri.Plane.ctz !lanes in
        lanes := !lanes land (!lanes - 1);
        let bit = 1 lsl l and nbit = lnot (1 lsl l) in
        if (renv lsr l) land 1 = 1 then begin
          let addr = lane_sample g l e.ports.mem_addr in
          let data = Mem.read g.mems.(l) addr in
          for j = 0 to nrd - 1 do
            match Tri.Word.bit data j with
            | Tri.Zero ->
              g.rtmp_v.(j) <- g.rtmp_v.(j) land nbit;
              g.rtmp_x.(j) <- g.rtmp_x.(j) land nbit
            | Tri.One ->
              g.rtmp_v.(j) <- g.rtmp_v.(j) lor bit;
              g.rtmp_x.(j) <- g.rtmp_x.(j) land nbit
            | Tri.X ->
              g.rtmp_v.(j) <- g.rtmp_v.(j) land nbit;
              g.rtmp_x.(j) <- g.rtmp_x.(j) lor bit
          done
        end
        else
          for j = 0 to nrd - 1 do
            g.rtmp_v.(j) <- g.rtmp_v.(j) land nbit;
            g.rtmp_x.(j) <- g.rtmp_x.(j) lor bit
          done
      done;
      for j = 0 to nrd - 1 do
        store_lanes g rd.(j) g.rtmp_v.(j) g.rtmp_x.(j)
          ~hash_slot:e.islot.(rd.(j))
      done
    end;
    eval_g g;
    match e.ports.fork_net with
    | Some f -> g.lvx.(f) land g.live
    | None -> 0

  (* The scalar [finish_cycle] for all live lanes. [emit l cycle] is
     called for each live lane in ascending order. *)
  let finish_g g emit =
    let e = g.e in
    let nl = e.nl in
    let live = g.live in
    let lvv = g.lvv and lvx = g.lvx and lpv = g.lpv and lpx = g.lpx in
    (* Pending flop values; two XORs per changed live lane and slot. *)
    let dffs = nl.Netlist.dffs in
    for i = 0 to Array.length dffs - 1 do
      let nv, nx =
        if Bytes.unsafe_get e.dff_e i = '\000' then
          let d = Array.unsafe_get e.dff_f0 i in
          (Array.unsafe_get lvv d, Array.unsafe_get lvx d)
        else
          let en = Array.unsafe_get e.dff_f0 i in
          let d = Array.unsafe_get e.dff_f1 i in
          let q = Array.unsafe_get dffs i in
          Tri.Lanes.dffe_next
            (Array.unsafe_get lvv en) (Array.unsafe_get lvx en)
            (Array.unsafe_get lvv d) (Array.unsafe_get lvx d)
            (Array.unsafe_get lvv q) (Array.unsafe_get lvx q)
      in
      let ov = Array.unsafe_get g.ldnv i and ox = Array.unsafe_get g.ldnx i in
      let changed = ((ov lxor nv) lor (ox lxor nx)) land live in
      if changed <> 0 then begin
        let c = ref changed in
        while !c <> 0 do
          let l = Tri.Plane.ctz !c in
          c := !c land (!c - 1);
          let oc = ((ov lsr l) land 1) lor (((ox lsr l) land 1) lsl 1) in
          let nc = ((nv lsr l) land 1) lor (((nx lsr l) land 1) lsl 1) in
          g.hash.(l) <- g.hash.(l) lxor Zhash.key i oc lxor Zhash.key i nc
        done;
        Array.unsafe_set g.ldnv i nv;
        Array.unsafe_set g.ldnx i nx
      end
    done;
    (* Synchronous memory write, per live lane. *)
    let wen = e.ports.mem_wen in
    let lanes = ref live in
    while !lanes <> 0 do
      let l = Tri.Plane.ctz !lanes in
      lanes := !lanes land (!lanes - 1);
      let wc = lane_code g wen l in
      if wc <> 0 then
        Mem.write g.mems.(l) ~strobe:(Tri.of_int wc)
          (lane_sample g l e.ports.mem_addr)
          (lane_sample g l e.ports.mem_wdata)
    done;
    (* Activity. Base case over marked nets (unmarked nets cannot have
       changed), then the X-special and X-propagation passes — all
       word-parallel across lanes. *)
    let lav = g.lav and lpav = g.lpav in
    let mark = g.mark in
    let nw = e.nw in
    for w = 0 to nw - 1 do
      let b = ref (Array.unsafe_get mark w) in
      while !b <> 0 do
        let i = (w lsl 5) lor Tri.Plane.ctz !b in
        b := !b land (!b - 1);
        Array.unsafe_set lav i
          ((Array.unsafe_get lvv i lxor Array.unsafe_get lpv i)
          lor (Array.unsafe_get lvx i lxor Array.unsafe_get lpx i))
      done
    done;
    Array.iter
      (fun id ->
        let cand = Array.unsafe_get lvx id land lnot (Array.unsafe_get lav id) in
        if cand <> 0 then begin
          Array.unsafe_set lav id (Array.unsafe_get lav id lor cand);
          mark_net g id
        end)
      nl.Netlist.inputs;
    for i = 0 to Array.length dffs - 1 do
      let id = Array.unsafe_get dffs i in
      let cand = Array.unsafe_get lvx id land lnot (Array.unsafe_get lav id) in
      if cand <> 0 then begin
        let f0 = Array.unsafe_get e.gf0 id in
        let act =
          if Bytes.unsafe_get e.dff_e i = '\000' then Array.unsafe_get lpav f0
          else Array.unsafe_get lpv f0 lor Array.unsafe_get lpx f0
        in
        let add = cand land act in
        if add <> 0 then begin
          Array.unsafe_set lav id (Array.unsafe_get lav id lor add);
          mark_net g id
        end
      end
    done;
    let prog = e.full.c_prog in
    let ncomb = e.full.c_ncomb in
    for k = 0 to ncomb - 1 do
      let p = k lsl 2 in
      let hd = Array.unsafe_get prog p in
      let out = hd lsr 4 in
      let cand =
        Array.unsafe_get lvx out land lnot (Array.unsafe_get lav out)
      in
      if cand <> 0 then begin
        let f0 = Array.unsafe_get prog (p + 1) in
        let any =
          if hd land 15 < 6 then
            Array.unsafe_get lav f0
            lor Array.unsafe_get lav (Array.unsafe_get prog (p + 2))
          else begin
            let sv = Array.unsafe_get lvv f0 and sx = Array.unsafe_get lvx f0 in
            let a1 = Array.unsafe_get lav (Array.unsafe_get prog (p + 2)) in
            let a2 = Array.unsafe_get lav (Array.unsafe_get prog (p + 3)) in
            Array.unsafe_get lav f0
            lor (lnot (sv lor sx) land a1)
            lor (sv land a2)
            lor (sx land (a1 lor a2))
          end
        in
        let add = cand land any in
        if add <> 0 then begin
          Array.unsafe_set lav out (Array.unsafe_get lav out lor add);
          mark_net g out
        end
      end
    done;
    (* Delta / X-active collection: ascending marked nets, fanned out
       into per-lane buffers — same element order as the scalar scan. *)
    let lanes = ref live in
    while !lanes <> 0 do
      let l = Tri.Plane.ctz !lanes in
      lanes := !lanes land (!lanes - 1);
      g.dn.(l) <- 0;
      g.xn.(l) <- 0
    done;
    for w = 0 to nw - 1 do
      let b = ref (Array.unsafe_get mark w) in
      while !b <> 0 do
        let i = (w lsl 5) lor Tri.Plane.ctz !b in
        b := !b land (!b - 1);
        let diff =
          (Array.unsafe_get lvv i lxor Array.unsafe_get lpv i)
          lor (Array.unsafe_get lvx i lxor Array.unsafe_get lpx i)
        in
        let dl = ref (diff land live) in
        while !dl <> 0 do
          let l = Tri.Plane.ctz !dl in
          dl := !dl land (!dl - 1);
          let old_c =
            ((Array.unsafe_get lpv i lsr l) land 1)
            lor (((Array.unsafe_get lpx i lsr l) land 1) lsl 1)
          in
          let buf = Array.unsafe_get g.dbuf l in
          Array.unsafe_set buf g.dn.(l)
            (Trace.pack ~net:i ~old_v:old_c ~new_v:(lane_code g i l));
          g.dn.(l) <- g.dn.(l) + 1
        done;
        let xl = ref (Array.unsafe_get lav i land lnot diff land live) in
        while !xl <> 0 do
          let l = Tri.Plane.ctz !xl in
          xl := !xl land (!xl - 1);
          let buf = Array.unsafe_get g.xbuf l in
          Array.unsafe_set buf g.xn.(l) i;
          g.xn.(l) <- g.xn.(l) + 1
        done
      done
    done;
    (* Commit previous-cycle planes for touched nets, rotate activity
       (this cycle's [lav] becomes [lpav]; the incoming [lav] is zeroed
       on its old support) and swap the mark planes. *)
    for w = 0 to nw - 1 do
      let b = ref (Array.unsafe_get mark w) in
      while !b <> 0 do
        let i = (w lsl 5) lor Tri.Plane.ctz !b in
        b := !b land (!b - 1);
        Array.unsafe_set lpv i (Array.unsafe_get lvv i);
        Array.unsafe_set lpx i (Array.unsafe_get lvx i)
      done
    done;
    let fresh_av = g.lpav in
    g.lpav <- g.lav;
    g.lav <- fresh_av;
    let mp = g.markp in
    for w = 0 to nw - 1 do
      let b = ref (Array.unsafe_get mp w) in
      if !b <> 0 then begin
        while !b <> 0 do
          let i = (w lsl 5) lor Tri.Plane.ctz !b in
          b := !b land (!b - 1);
          Array.unsafe_set fresh_av i 0
        done;
        Array.unsafe_set mp w 0
      end
    done;
    g.markp <- g.mark;
    g.mark <- mp;
    (* Per-lane cycle records. *)
    Telemetry.Counter.add c_cycles (Tri.Plane.popcount live);
    let lanes = ref live in
    while !lanes <> 0 do
      let l = Tri.Plane.ctz !lanes in
      lanes := !lanes land (!lanes - 1);
      g.cyc.(l) <- g.cyc.(l) + 1;
      emit l
        {
          Trace.deltas = Array.sub g.dbuf.(l) 0 g.dn.(l);
          x_active = Array.sub g.xbuf.(l) 0 g.xn.(l);
          pc = lane_sample g l e.ports.pc;
          state = lane_sample g l e.ports.state;
          ir = lane_sample g l e.ports.ir;
        }
    done

  let retire g l = g.live <- g.live land lnot (1 lsl l)

  (* Lane -> scalar snapshot. Mid-cycle extraction (at a fork) carries
     the settled mid-cycle values; a scalar engine restoring it can
     [force_fork] + [finish_cycle] exactly as if it had simulated the
     whole cycle itself. *)
  let extract_lane g l ~mid =
    let e = g.e in
    let n = Netlist.gate_count e.nl in
    let nw = e.nw in
    let vv = Array.make nw 0 and vx = Array.make nw 0 in
    let pv = Array.make nw 0 and px = Array.make nw 0 in
    let pav = Array.make nw 0 in
    for i = 0 to n - 1 do
      let w = i lsr 5 and b = i land 31 in
      let set pl src =
        Array.unsafe_set pl w
          (Array.unsafe_get pl w
          lor (((Array.unsafe_get src i lsr l) land 1) lsl b))
      in
      set vv g.lvv;
      set vx g.lvx;
      set pv g.lpv;
      set px g.lpx;
      set pav g.lpav
    done;
    {
      s_vv = vv;
      s_vx = vx;
      s_pv = pv;
      s_px = px;
      s_av = Array.make nw 0;  (* rewritten wholesale by finish_cycle *)
      s_pav = pav;
      s_dirty = Array.make e.full.c_pw 0;  (* settled *)
      s_dff_next =
        Array.init (Netlist.dff_count e.nl) (fun i ->
            ((g.ldnv.(i) lsr l) land 1) lor (((g.ldnx.(i) lsr l) land 1) lsl 1));
      s_mem = Mem.snapshot g.mems.(l);
      s_hash = g.hash.(l);
      s_reset_drive = g.rdrive.(l);
      s_port_drive = Array.copy g.pdrive.(l);
      s_cycle = g.cyc.(l);
      s_mid = mid;
      s_spec_on = false;  (* gang lanes run the full program *)
    }

  let extract g l = extract_lane g l ~mid:false

  (* Load a cycle-boundary snapshot into a free lane. O(nets). *)
  let load g (s : snapshot) =
    if s.s_mid then invalid_arg "Engine.Gang.load: mid-cycle snapshot";
    let free = lnot g.live land ((1 lsl g.width) - 1) in
    if free = 0 then invalid_arg "Engine.Gang.load: no free lane";
    let l = Tri.Plane.ctz free in
    let bit = 1 lsl l in
    let nbit = lnot bit in
    let e = g.e in
    let n = Netlist.gate_count e.nl in
    for i = 0 to n - 1 do
      let w = i lsr 5 and b = i land 31 in
      let put dst src =
        if (Array.unsafe_get src w lsr b) land 1 = 1 then
          Array.unsafe_set dst i (Array.unsafe_get dst i lor bit)
        else Array.unsafe_set dst i (Array.unsafe_get dst i land nbit)
      in
      put g.lvv s.s_vv;
      put g.lvx s.s_vx;
      put g.lpv s.s_pv;
      put g.lpx s.s_px;
      (* [lpav] rotates into [lav] next cycle; record its new support in
         [markp] so the rotation zeroes these bits on schedule. *)
      if (Array.unsafe_get s.s_pav w lsr b) land 1 = 1 then begin
        g.lpav.(i) <- g.lpav.(i) lor bit;
        g.markp.(w) <- g.markp.(w) lor (1 lsl b)
      end
      else g.lpav.(i) <- g.lpav.(i) land nbit
    done;
    for i = 0 to Netlist.dff_count e.nl - 1 do
      let c = Array.unsafe_get s.s_dff_next i in
      g.ldnv.(i) <-
        (g.ldnv.(i) land nbit) lor ((c land 1) lsl l);
      g.ldnx.(i) <- (g.ldnx.(i) land nbit) lor ((c lsr 1) lsl l)
    done;
    Mem.restore g.mems.(l) s.s_mem;
    g.hash.(l) <- s.s_hash;
    g.rdrive.(l) <- s.s_reset_drive;
    Array.blit s.s_port_drive 0 g.pdrive.(l) 0 (Array.length s.s_port_drive);
    g.cyc.(l) <- s.s_cycle;
    let set_drv k c =
      g.drv_v.(k) <- (g.drv_v.(k) land nbit) lor ((c land 1) lsl l);
      g.drv_x.(k) <- (g.drv_x.(k) land nbit) lor ((c lsr 1) lsl l)
    in
    set_drv 0 s.s_reset_drive;
    Array.iteri (fun j c -> set_drv (j + 1) c) s.s_port_drive;
    g.live <- g.live lor bit;
    l

  (* One synchronized cycle for every live lane. Lanes whose
     branch-decision net settles to X are extracted mid-cycle and
     retired ([Forked]); the rest complete the cycle ([Cycle]). *)
  let step g emit =
    if g.live = 0 then invalid_arg "Engine.Gang.step: no live lanes";
    let fmask = begin_g g in
    let forked = ref [] in
    let f = ref fmask in
    while !f <> 0 do
      let l = Tri.Plane.ctz !f in
      f := !f land (!f - 1);
      let snap = extract_lane g l ~mid:true in
      retire g l;
      forked := (l, snap) :: !forked
    done;
    finish_g g (fun l c -> emit l (Cycle c));
    List.iter (fun (l, s) -> emit l (Forked s)) (List.rev !forked)
end
