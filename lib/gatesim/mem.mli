(** Symbolic memory model.

    Program/data memories are macros outside the synthesized netlist (as
    in the paper's openMSP430 flow); the simulator models them as arrays
    of three-valued words. RAM words not initialized by the binary start
    as X — which is exactly how application input regions become
    symbolic. Reads at unknown addresses return all-X; writes at unknown
    addresses conservatively smear X over the whole RAM (sound for any
    alias). *)

type t

(** [create ~rom ~ram_base ~ram_bytes] builds a memory with the given
    initialized ROM words (address/value pairs; addresses outside RAM)
    and an all-X RAM of [ram_bytes] starting at [ram_base]. *)
val create : rom:(int * int) list -> ram_base:int -> ram_bytes:int -> t

(** [like t] is a fresh memory with the same geometry and ROM as [t]
    and an all-X RAM. The immutable ROM table is shared, so this is safe
    (and cheap) for building per-domain engine replicas. *)
val like : t -> t

(** [poke t addr w] stores a concrete word in RAM (input loading for
    profiling runs). *)
val poke : t -> int -> int -> unit

(** [poke_tri t addr w] stores an arbitrary trit word in RAM. *)
val poke_tri : t -> int -> Tri.Word.t -> unit

val peek : t -> int -> Tri.Word.t

(** [read t addr] — three-valued read through the map. *)
val read : t -> Tri.Word.t -> Tri.Word.t

(** [write t ~strobe addr data] — [strobe] is the write-enable trit: [One]
    writes, [Zero] does nothing, [X] merges (the write may or may not
    happen). Writes to ROM addresses are ignored (bus masters cannot
    write flash); writes to unknown addresses X the whole RAM. *)
val write : t -> strobe:Tri.t -> Tri.Word.t -> Tri.Word.t -> unit

(** [digest t] — stable digest of RAM contents (ROM is immutable). A
    full rehash on every call; the dedup hot path uses {!content_hash}
    instead. *)
val digest : t -> string

(** Zobrist hash of the RAM contents, maintained incrementally: each
    write costs two XOR-mixes, so reading the hash is O(1). Equal
    contents hash equally; distinct contents collide with negligible
    probability. Folded into {!Engine.arch_digest}. *)
val content_hash : t -> int

type snapshot

(** [snapshot t] is O(1): it shares the RAM arrays and freezes them —
    the next write to [t] copies first (copy-on-write), so the snapshot
    stays immutable (and is safe to ship to another domain). *)
val snapshot : t -> snapshot

(** [restore t s] is O(1): [t] adopts the snapshot's (frozen) arrays;
    its next write copies. A snapshot may be restored any number of
    times, into any engine replica's memory of the same geometry. *)
val restore : t -> snapshot -> unit

(** Number of RAM words currently holding any X bit. *)
val x_word_count : t -> int
