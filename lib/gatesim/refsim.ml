(* The original interpreted evaluator, kept as the reference
   implementation for differential testing of the compiled kernel in
   [Engine]. Straight-line per-gate loops over the gate records — slow
   but obviously faithful to the netlist semantics. Not used on any
   production path. *)

type t = {
  nl : Netlist.t;
  ports : Engine.ports;
  mem_ : Mem.t;
  values : int array;
  prev : int array;
  active : Bytes.t;
  prev_active : Bytes.t;
  dirty : Bytes.t;
  dff_next : int array;  (* indexed like nl.dffs *)
  mutable reset_drive : int;
  port_drive : int array;
  mutable cycle : int;
  mutable mid : bool;  (* between begin_cycle and finish_cycle *)
}

let mem t = t.mem_
let cycle_index t = t.cycle

let xcode = Tri.I.x

let create nl ~ports ~mem =
  let n = Netlist.gate_count nl in
  let values = Array.make n xcode in
  (* Constants have their value from the start and are never dirty. *)
  Array.iter
    (fun (g : Netlist.gate) ->
      match g.Netlist.cell with
      | Netlist.Const c -> values.(g.Netlist.id) <- Tri.to_int c
      | _ -> ())
    nl.Netlist.gates;
  let t =
    {
      nl;
      ports;
      mem_ = mem;
      values;
      prev = Array.copy values;
      active = Bytes.make n '\000';
      prev_active = Bytes.make n '\000';
      dirty = Bytes.make n '\000';
      dff_next = Array.make (Netlist.dff_count nl) xcode;
      reset_drive = xcode;
      port_drive = Array.make (Array.length ports.Engine.port_in) xcode;
      cycle = 0;
      mid = false;
    }
  in
  (* Everything needs one initial evaluation. *)
  Array.iter (fun id -> Bytes.unsafe_set t.dirty id '\001') nl.Netlist.topo;
  t

let set_reset t level = t.reset_drive <- Tri.to_int level

let set_port_in t trits =
  if Array.length trits <> Array.length t.port_drive then
    invalid_arg "Refsim.set_port_in: width mismatch";
  Array.iteri (fun i v -> t.port_drive.(i) <- Tri.to_int v) trits

let mark_fanouts t id =
  let fo = t.nl.Netlist.fanouts.(id) in
  for k = 0 to Array.length fo - 1 do
    Bytes.unsafe_set t.dirty (Array.unsafe_get fo k) '\001'
  done

let drive t id v =
  if t.values.(id) <> v then begin
    t.values.(id) <- v;
    mark_fanouts t id
  end

let eval_gate t (g : Netlist.gate) =
  let v = t.values in
  let f = g.Netlist.fanins in
  match g.Netlist.cell with
  | Netlist.Buf -> v.(f.(0))
  | Netlist.Inv -> Tri.I.lnot v.(f.(0))
  | Netlist.And2 -> Tri.I.land_ v.(f.(0)) v.(f.(1))
  | Netlist.Or2 -> Tri.I.lor_ v.(f.(0)) v.(f.(1))
  | Netlist.Nand2 -> Tri.I.lnand v.(f.(0)) v.(f.(1))
  | Netlist.Nor2 -> Tri.I.lnor v.(f.(0)) v.(f.(1))
  | Netlist.Xor2 -> Tri.I.lxor_ v.(f.(0)) v.(f.(1))
  | Netlist.Xnor2 -> Tri.I.lxnor v.(f.(0)) v.(f.(1))
  | Netlist.Mux2 -> Tri.I.mux v.(f.(0)) v.(f.(1)) v.(f.(2))
  | Netlist.Input | Netlist.Const _ | Netlist.Dff | Netlist.Dffe -> assert false

let eval_pass t =
  let topo = t.nl.Netlist.topo in
  let gates = t.nl.Netlist.gates in
  for k = 0 to Array.length topo - 1 do
    let id = Array.unsafe_get topo k in
    if Bytes.unsafe_get t.dirty id = '\001' then begin
      Bytes.unsafe_set t.dirty id '\000';
      let nv = eval_gate t (Array.unsafe_get gates id) in
      if nv <> Array.unsafe_get t.values id then begin
        Array.unsafe_set t.values id nv;
        mark_fanouts t id
      end
    end
  done

let sample t bus =
  Tri.Word.of_trits (Array.map (fun id -> Tri.of_int t.values.(id)) bus)

let value t id = Tri.of_int t.values.(id)

let begin_cycle t =
  if t.mid then invalid_arg "Refsim.begin_cycle: already mid-cycle";
  t.mid <- true;
  (* Clock edge: flops take their pending values. *)
  Array.iteri (fun i id -> drive t id t.dff_next.(i)) t.nl.Netlist.dffs;
  (* External drives. *)
  drive t t.ports.Engine.reset t.reset_drive;
  Array.iteri (fun i id -> drive t id t.port_drive.(i)) t.ports.Engine.port_in;
  eval_pass t;
  (* Combinational memory read. *)
  let ren = Tri.of_int t.values.(t.ports.Engine.mem_ren) in
  (match ren with
  | Tri.Zero -> () (* bus keeper: rdata holds its previous value *)
  | Tri.One ->
    let addr = sample t t.ports.Engine.mem_addr in
    let data = Mem.read t.mem_ addr in
    Array.iteri
      (fun i id -> drive t id (Tri.to_int (Tri.Word.bit data i)))
      t.ports.Engine.mem_rdata
  | Tri.X ->
    Array.iter (fun id -> drive t id xcode) t.ports.Engine.mem_rdata);
  eval_pass t;
  match t.ports.Engine.fork_net with
  | Some f when t.values.(f) = xcode -> `Fork
  | Some _ | None -> `Ok

let force_fork t v =
  if not t.mid then invalid_arg "Refsim.force_fork: not mid-cycle";
  (match v with
  | Tri.X -> invalid_arg "Refsim.force_fork: cannot force X"
  | Tri.Zero | Tri.One -> ());
  (match t.ports.Engine.fork_net with
  | None -> invalid_arg "Refsim.force_fork: no fork net"
  | Some f -> drive t f (Tri.to_int v));
  eval_pass t

let finish_cycle t =
  if not t.mid then invalid_arg "Refsim.finish_cycle: begin_cycle first";
  (match t.ports.Engine.fork_net with
  | Some f when t.values.(f) = xcode ->
    invalid_arg "Refsim.finish_cycle: unresolved fork"
  | Some _ | None -> ());
  t.mid <- false;
  let nl = t.nl in
  let n = Netlist.gate_count nl in
  (* Pending flop values (visible next cycle). An enable-flop holds when
     its enable is 0, loads on 1, and on X keeps its value only if old
     and new agree. *)
  Array.iteri
    (fun i id ->
      let g = nl.Netlist.gates.(id) in
      match g.Netlist.cell with
      | Netlist.Dff -> t.dff_next.(i) <- t.values.(g.Netlist.fanins.(0))
      | Netlist.Dffe ->
        let en = t.values.(g.Netlist.fanins.(0)) in
        let d = t.values.(g.Netlist.fanins.(1)) in
        let q = t.values.(id) in
        t.dff_next.(i) <-
          (if en = 0 then q
           else if en = 1 then d
           else if d = q then q
           else xcode)
      | _ -> assert false)
    nl.Netlist.dffs;
  (* Memory write (synchronous). *)
  let wen = Tri.of_int t.values.(t.ports.Engine.mem_wen) in
  (match wen with
  | Tri.Zero -> ()
  | Tri.One | Tri.X ->
    let addr = sample t t.ports.Engine.mem_addr in
    let data = sample t t.ports.Engine.mem_wdata in
    Mem.write t.mem_ ~strobe:wen addr data);
  (* Activity marking, in topo order so combinational X-activity
     propagates forward. *)
  let gates = nl.Netlist.gates in
  for id = 0 to n - 1 do
    let changed = t.values.(id) <> t.prev.(id) in
    let act =
      match gates.(id).Netlist.cell with
      | Netlist.Const _ -> false
      | Netlist.Input -> changed || t.values.(id) = xcode
      | Netlist.Dff ->
        changed
        || t.values.(id) = xcode
           && Bytes.get t.prev_active gates.(id).Netlist.fanins.(0) = '\001'
      | Netlist.Dffe ->
        (* A held unknown cannot toggle: only a (possibly) enabled write
           of an unknown value makes the flop potentially active. *)
        changed
        || t.values.(id) = xcode
           && t.prev.(gates.(id).Netlist.fanins.(0)) <> 0
      | Netlist.Buf | Netlist.Inv | Netlist.And2 | Netlist.Or2 | Netlist.Nand2
      | Netlist.Nor2 | Netlist.Xor2 | Netlist.Xnor2 | Netlist.Mux2 ->
        changed
    in
    Bytes.unsafe_set t.active id (if act then '\001' else '\000')
  done;
  (* X-propagated activity in dependency order: an X-valued gate is
     active when an active fanin can actually reach its output. *)
  Array.iter
    (fun id ->
      if Bytes.unsafe_get t.active id = '\000' && t.values.(id) = xcode then begin
        let g = gates.(id) in
        let f = g.Netlist.fanins in
        let act k = Bytes.unsafe_get t.active f.(k) = '\001' in
        let any =
          match g.Netlist.cell with
          | Netlist.Mux2 ->
            act 0
            ||
            let sel = t.values.(f.(0)) in
            if sel = 0 then act 1
            else if sel = 1 then act 2
            else act 1 || act 2
          | Netlist.Buf | Netlist.Inv -> act 0
          | Netlist.And2 | Netlist.Or2 | Netlist.Nand2 | Netlist.Nor2
          | Netlist.Xor2 | Netlist.Xnor2 ->
            act 0 || act 1
          | Netlist.Input | Netlist.Const _ | Netlist.Dff | Netlist.Dffe ->
            false
        in
        if any then Bytes.unsafe_set t.active id '\001'
      end)
    nl.Netlist.topo;
  (* Collect deltas and X-active sets. *)
  let deltas = ref [] and x_active = ref [] in
  for id = n - 1 downto 0 do
    if t.values.(id) <> t.prev.(id) then
      deltas :=
        Trace.pack ~net:id ~old_v:t.prev.(id) ~new_v:t.values.(id) :: !deltas
    else if Bytes.unsafe_get t.active id = '\001' then x_active := id :: !x_active
  done;
  let rec_ =
    {
      Trace.deltas = Array.of_list !deltas;
      x_active = Array.of_list !x_active;
      pc = sample t t.ports.Engine.pc;
      state = sample t t.ports.Engine.state;
      ir = sample t t.ports.Engine.ir;
    }
  in
  Array.blit t.values 0 t.prev 0 n;
  Bytes.blit t.active 0 t.prev_active 0 n;
  t.cycle <- t.cycle + 1;
  rec_

let step t =
  match begin_cycle t with
  | `Ok -> finish_cycle t
  | `Fork -> failwith "Refsim.step: unexpected fork (X on branch decision)"

let arch_digest t =
  let buf = Buffer.create 4096 in
  Array.iter (fun v -> Buffer.add_char buf (Char.chr v)) t.dff_next;
  Array.iter
    (fun id -> Buffer.add_char buf (Char.chr t.values.(id)))
    t.nl.Netlist.inputs;
  Buffer.add_string buf (Mem.digest t.mem_);
  Digest.string (Buffer.contents buf)

let values_snapshot t = Array.copy t.values

type snapshot = {
  s_values : int array;
  s_prev : int array;
  s_active : bytes;
  s_prev_active : bytes;
  s_dirty : bytes;
  s_dff_next : int array;
  s_mem : Mem.snapshot;
  s_reset_drive : int;
  s_port_drive : int array;
  s_cycle : int;
  s_mid : bool;
}

let snapshot t =
  {
    s_values = Array.copy t.values;
    s_prev = Array.copy t.prev;
    s_active = Bytes.copy t.active;
    s_prev_active = Bytes.copy t.prev_active;
    s_dirty = Bytes.copy t.dirty;
    s_dff_next = Array.copy t.dff_next;
    s_mem = Mem.snapshot t.mem_;
    s_reset_drive = t.reset_drive;
    s_port_drive = Array.copy t.port_drive;
    s_cycle = t.cycle;
    s_mid = t.mid;
  }

let restore t s =
  Array.blit s.s_values 0 t.values 0 (Array.length t.values);
  Array.blit s.s_prev 0 t.prev 0 (Array.length t.prev);
  Bytes.blit s.s_active 0 t.active 0 (Bytes.length t.active);
  Bytes.blit s.s_prev_active 0 t.prev_active 0 (Bytes.length t.prev_active);
  Bytes.blit s.s_dirty 0 t.dirty 0 (Bytes.length t.dirty);
  Array.blit s.s_dff_next 0 t.dff_next 0 (Array.length t.dff_next);
  Mem.restore t.mem_ s.s_mem;
  t.reset_drive <- s.s_reset_drive;
  Array.blit s.s_port_drive 0 t.port_drive 0 (Array.length t.port_drive);
  t.cycle <- s.s_cycle;
  t.mid <- s.s_mid
