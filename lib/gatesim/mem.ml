type t = {
  rom : (int, int) Hashtbl.t;
  mutable ram_v : int array;  (* value bits per word *)
  mutable ram_x : int array;  (* unknown mask per word *)
  ram_base : int;
  ram_words : int;
  mutable hash : int;  (* XOR of per-word Zobrist keys, incremental *)
  all_x_hash : int;  (* hash of the fully-smeared RAM, precomputed *)
  mutable shared : bool;  (* arrays are referenced by a live snapshot *)
}

(* Key of RAM word [i] holding value bits [v] under unknown mask [x]. *)
let wkey i v x = Zhash.word_key i ((v lsl 16) lor x)

let all_x_hash_of words =
  let h = ref 0 in
  for i = 0 to words - 1 do
    h := !h lxor wkey i 0 0xFFFF
  done;
  !h

let create ~rom ~ram_base ~ram_bytes =
  let tbl = Hashtbl.create (List.length rom * 2) in
  List.iter
    (fun (a, w) ->
      if a land 1 <> 0 then invalid_arg "Mem.create: odd ROM address";
      if a >= ram_base && a < ram_base + ram_bytes then
        invalid_arg "Mem.create: ROM word inside RAM range";
      Hashtbl.replace tbl (a land 0xFFFF) (w land 0xFFFF))
    rom;
  let words = ram_bytes / 2 in
  let h = all_x_hash_of words in
  {
    rom = tbl;
    ram_v = Array.make words 0;
    ram_x = Array.make words 0xFFFF;
    ram_base;
    ram_words = words;
    hash = h;
    all_x_hash = h;
    shared = false;
  }

(* The ROM table is immutable after [create] (writes never touch it), so
   replicas on other domains can share it; only the RAM arrays are
   per-instance. *)
let like t =
  {
    rom = t.rom;
    ram_v = Array.make t.ram_words 0;
    ram_x = Array.make t.ram_words 0xFFFF;
    ram_base = t.ram_base;
    ram_words = t.ram_words;
    hash = t.all_x_hash;
    all_x_hash = t.all_x_hash;
    shared = false;
  }

(* Copy-on-write: a snapshot shares the RAM arrays and freezes them; the
   first write after a snapshot/restore clones them, so the arrays a
   snapshot holds are immutable for its whole lifetime (which also makes
   shipping snapshots to worker domains safe). *)
let unshare t =
  if t.shared then begin
    t.ram_v <- Array.copy t.ram_v;
    t.ram_x <- Array.copy t.ram_x;
    t.shared <- false
  end

let set_word t i v x =
  let ov = t.ram_v.(i) and ox = t.ram_x.(i) in
  if ov <> v || ox <> x then begin
    unshare t;
    t.hash <- t.hash lxor wkey i ov ox lxor wkey i v x;
    t.ram_v.(i) <- v;
    t.ram_x.(i) <- x
  end

let ram_index t a =
  let i = (a - t.ram_base) / 2 in
  if a >= t.ram_base && i < t.ram_words && a land 1 = 0 then Some i else None

let poke_tri t addr (w : Tri.Word.t) =
  match ram_index t addr with
  | Some i -> set_word t i w.Tri.Word.v w.Tri.Word.x
  | None -> invalid_arg (Printf.sprintf "Mem.poke: 0x%04x not in RAM" addr)

let poke t addr w = poke_tri t addr (Tri.Word.of_int ~width:16 w)

let peek t addr =
  match ram_index t addr with
  | Some i -> Tri.Word.make ~width:16 ~v:t.ram_v.(i) ~x:t.ram_x.(i)
  | None -> invalid_arg (Printf.sprintf "Mem.peek: 0x%04x not in RAM" addr)

let all_x = Tri.Word.all_x ~width:16

let read t addr =
  match Tri.Word.to_int addr with
  | None -> all_x
  | Some a -> begin
    let a = a land lnot 1 in
    (* word-aligned bus *)
    match ram_index t a with
    | Some i -> Tri.Word.make ~width:16 ~v:t.ram_v.(i) ~x:t.ram_x.(i)
    | None -> (
      match Hashtbl.find_opt t.rom a with
      | Some w -> Tri.Word.of_int ~width:16 w
      | None -> all_x)
  end

let smear_all t =
  if t.hash <> t.all_x_hash then begin
    unshare t;
    Array.fill t.ram_x 0 t.ram_words 0xFFFF;
    Array.fill t.ram_v 0 t.ram_words 0;
    t.hash <- t.all_x_hash
  end

let write t ~strobe addr (data : Tri.Word.t) =
  match strobe with
  | Tri.Zero -> ()
  | Tri.One -> begin
    match Tri.Word.to_int addr with
    | None -> smear_all t
    | Some a -> (
      let a = a land lnot 1 in
      match ram_index t a with
      | Some i -> set_word t i data.Tri.Word.v data.Tri.Word.x
      | None -> () (* peripheral and ROM writes are handled in the netlist *))
  end
  | Tri.X -> begin
    match Tri.Word.to_int addr with
    | None -> smear_all t
    | Some a -> (
      let a = a land lnot 1 in
      match ram_index t a with
      | Some i ->
        let old = Tri.Word.make ~width:16 ~v:t.ram_v.(i) ~x:t.ram_x.(i) in
        let merged = Tri.Word.merge old data in
        set_word t i merged.Tri.Word.v merged.Tri.Word.x
      | None -> ())
  end

let digest t =
  let buf = Buffer.create (t.ram_words * 4) in
  Array.iter (fun v -> Buffer.add_int32_le buf (Int32.of_int v)) t.ram_v;
  Array.iter (fun x -> Buffer.add_int32_le buf (Int32.of_int x)) t.ram_x;
  Digest.string (Buffer.contents buf)

let content_hash t = t.hash

type snapshot = { s_v : int array; s_x : int array; s_hash : int }

let snapshot t =
  t.shared <- true;
  { s_v = t.ram_v; s_x = t.ram_x; s_hash = t.hash }

let restore t s =
  t.ram_v <- s.s_v;
  t.ram_x <- s.s_x;
  t.hash <- s.s_hash;
  t.shared <- true

let x_word_count t =
  Array.fold_left (fun acc x -> if x <> 0 then acc + 1 else acc) 0 t.ram_x
