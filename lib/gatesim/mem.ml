type t = {
  rom : (int, int) Hashtbl.t;
  ram_v : int array;  (* value bits per word *)
  ram_x : int array;  (* unknown mask per word *)
  ram_base : int;
  ram_words : int;
}

let create ~rom ~ram_base ~ram_bytes =
  let tbl = Hashtbl.create (List.length rom * 2) in
  List.iter
    (fun (a, w) ->
      if a land 1 <> 0 then invalid_arg "Mem.create: odd ROM address";
      if a >= ram_base && a < ram_base + ram_bytes then
        invalid_arg "Mem.create: ROM word inside RAM range";
      Hashtbl.replace tbl (a land 0xFFFF) (w land 0xFFFF))
    rom;
  {
    rom = tbl;
    ram_v = Array.make (ram_bytes / 2) 0;
    ram_x = Array.make (ram_bytes / 2) 0xFFFF;
    ram_base;
    ram_words = ram_bytes / 2;
  }

(* The ROM table is immutable after [create] (writes never touch it), so
   replicas on other domains can share it; only the RAM arrays are
   per-instance. *)
let like t =
  {
    rom = t.rom;
    ram_v = Array.make t.ram_words 0;
    ram_x = Array.make t.ram_words 0xFFFF;
    ram_base = t.ram_base;
    ram_words = t.ram_words;
  }

let ram_index t a =
  let i = (a - t.ram_base) / 2 in
  if a >= t.ram_base && i < t.ram_words && a land 1 = 0 then Some i else None

let poke_tri t addr (w : Tri.Word.t) =
  match ram_index t addr with
  | Some i ->
    t.ram_v.(i) <- w.Tri.Word.v;
    t.ram_x.(i) <- w.Tri.Word.x
  | None -> invalid_arg (Printf.sprintf "Mem.poke: 0x%04x not in RAM" addr)

let poke t addr w = poke_tri t addr (Tri.Word.of_int ~width:16 w)

let peek t addr =
  match ram_index t addr with
  | Some i -> Tri.Word.make ~width:16 ~v:t.ram_v.(i) ~x:t.ram_x.(i)
  | None -> invalid_arg (Printf.sprintf "Mem.peek: 0x%04x not in RAM" addr)

let all_x = Tri.Word.all_x ~width:16

let read t addr =
  match Tri.Word.to_int addr with
  | None -> all_x
  | Some a -> begin
    let a = a land lnot 1 in
    (* word-aligned bus *)
    match ram_index t a with
    | Some i -> Tri.Word.make ~width:16 ~v:t.ram_v.(i) ~x:t.ram_x.(i)
    | None -> (
      match Hashtbl.find_opt t.rom a with
      | Some w -> Tri.Word.of_int ~width:16 w
      | None -> all_x)
  end

let smear_all t =
  Array.fill t.ram_x 0 t.ram_words 0xFFFF;
  Array.fill t.ram_v 0 t.ram_words 0

let write t ~strobe addr (data : Tri.Word.t) =
  match strobe with
  | Tri.Zero -> ()
  | Tri.One -> begin
    match Tri.Word.to_int addr with
    | None -> smear_all t
    | Some a -> (
      let a = a land lnot 1 in
      match ram_index t a with
      | Some i ->
        t.ram_v.(i) <- data.Tri.Word.v;
        t.ram_x.(i) <- data.Tri.Word.x
      | None -> () (* peripheral and ROM writes are handled in the netlist *))
  end
  | Tri.X -> begin
    match Tri.Word.to_int addr with
    | None -> smear_all t
    | Some a -> (
      let a = a land lnot 1 in
      match ram_index t a with
      | Some i ->
        let old = Tri.Word.make ~width:16 ~v:t.ram_v.(i) ~x:t.ram_x.(i) in
        let merged = Tri.Word.merge old data in
        t.ram_v.(i) <- merged.Tri.Word.v;
        t.ram_x.(i) <- merged.Tri.Word.x
      | None -> ())
  end

let digest t =
  let buf = Buffer.create (t.ram_words * 4) in
  Array.iter (fun v -> Buffer.add_int32_le buf (Int32.of_int v)) t.ram_v;
  Array.iter (fun x -> Buffer.add_int32_le buf (Int32.of_int x)) t.ram_x;
  Digest.string (Buffer.contents buf)

type snapshot = { s_v : int array; s_x : int array }

let snapshot t = { s_v = Array.copy t.ram_v; s_x = Array.copy t.ram_x }

let restore t s =
  Array.blit s.s_v 0 t.ram_v 0 t.ram_words;
  Array.blit s.s_x 0 t.ram_x 0 t.ram_words

let x_word_count t =
  Array.fold_left (fun acc x -> if x <> 0 then acc + 1 else acc) 0 t.ram_x
