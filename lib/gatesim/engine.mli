(** Levelized three-valued gate simulator (compiled kernel).

    [create] compiles the netlist into a flat struct-of-arrays gate
    program in level-partitioned topological order and packs net values
    into ternary bit-planes ({!Tri.Plane}), so the per-cycle hot path is
    a word-skipping scan over unboxed ints; change detection, activity
    marking and delta collection are word-wide passes. The same engine
    serves both concrete simulation
    (profiling baselines, validation) and symbolic simulation with X
    propagation (Algorithm 1) — the only difference is what the inputs
    and memory are driven with.

    A cycle is split in two phases so external memory can respond
    combinationally: {!begin_cycle} latches the flops, drives inputs,
    settles logic, performs the memory read and settles again;
    {!finish_cycle} computes activity, samples probes, commits the
    memory write and advances time. Between the two, the driver may be
    told that the branch-decision net is X ([`Fork]) and must resolve it
    with {!force_fork} (possibly exploring both choices via
    {!snapshot}/{!restore}). *)

(** Net-id bindings of the processor's external interface and probes.
    Constructed by {!Cpu.build}. *)
type ports = {
  reset : int;
  port_in : int array;  (** peripheral input pins (X under symbolic sim) *)
  mem_addr : int array;
  mem_rdata : int array;  (** input nets driven from {!Mem} *)
  mem_wdata : int array;
  mem_ren : int;
  mem_wen : int;
  pc : int array;
  state : int array;
  ir : int array;
  fork_net : int option;  (** the jump-decision net; X here forks *)
}

type t

(** [create ?spec nl ~ports ~mem] — compile tables are memoized by
    netlist identity, so repeated creation over the same netlist (one
    engine per characterized block, one replica per worker domain) is
    cheap. With [spec], the engine additionally carries a specialized
    program over the gates {!Netlist.Specialize} could not fold; it
    switches to it automatically at the first settled cycle boundary
    whose state verifies against the invariant vector (reset
    deasserted), and back whenever reset is re-asserted. The switch is
    unobservable: cycle records, digests, forks and snapshots are
    bit-identical with and without [spec]. *)
val create : ?spec:Netlist.Specialize.t -> Netlist.t -> ports:ports -> mem:Mem.t -> t

val netlist : t -> Netlist.t
val mem : t -> Mem.t
val cycle_index : t -> int

(** [(folded, swept)] of the engine's specialization, if any. *)
val specialization : t -> (int * int) option

(** True while the specialized program is the active one. *)
val specialized_active : t -> bool

(** [set_reset t level] drives the reset input from the next cycle on. *)
val set_reset : t -> Tri.t -> unit

(** [set_port_in t trits] drives the peripheral input pins; default all
    X. *)
val set_port_in : t -> Tri.t array -> unit

val begin_cycle : t -> [ `Ok | `Fork ]

(** Only legal after [`Fork]; overrides the fork net and re-settles. *)
val force_fork : t -> Tri.t -> unit

val finish_cycle : t -> Trace.cycle

(** [step t] = [begin_cycle] + [finish_cycle]; raises [Failure] on
    [`Fork] (concrete runs must never fork). *)
val step : t -> Trace.cycle

(** Current value of an arbitrary net / bus. *)
val value : t -> int -> Tri.t

val sample : t -> int array -> Tri.Word.t

(** Digest of the architectural state (pending flop values, inputs,
    memory) — Algorithm 1's "(PC, processor state)" dedup key. Valid
    after {!finish_cycle}. O(1): a Zobrist hash maintained incrementally
    as flops, inputs and RAM words change. *)
val arch_digest : t -> string

(** Trit codes of all net values right now (used as a trace's initial
    vector). *)
val values_snapshot : t -> int array

type snapshot

(** Captures the simulator state (including the external drive levels);
    used at forks and to ship work to other domains. O(1): the state
    planes are frozen copy-on-write — the engine's next mutating call
    clones them, so the snapshot stays immutable for its lifetime. *)
val snapshot : t -> snapshot

(** O(1): adopts the snapshot's frozen planes (the engine's next
    mutating call clones). A snapshot may be restored any number of
    times, into any replica. *)
val restore : t -> snapshot -> unit

(** [create_like t] is a fresh engine sharing [t]'s immutable netlist,
    ports and ROM, with its own value/activity arrays and an all-X RAM —
    a worker-domain replica. Restoring any snapshot of [t] into it makes
    it behave identically to [t] at that point. *)
val create_like : t -> t

(** [of_snapshot t s] = [create_like t] + [restore] of [s]. *)
val of_snapshot : t -> snapshot -> t

(** Gang simulation: up to 32 independent simulations of the same
    netlist advanced one synchronized cycle at a time in a single pass
    of the compiled kernel.

    The gang transposes the engine's plane packing: one word per net,
    bit [l] carrying lane [l]'s trit ({!Tri.Lanes}), so gate evaluation,
    dirty scanning, fanout traversal and the X-propagation pass are
    word-parallel across lanes and their O(netlist) costs amortize over
    the gang. Memory, Zobrist digests, cycle counts and drive levels
    stay per-lane. The symbolic explorer uses a gang to settle sibling
    branches of the execution tree together; the differential suite
    checks gang lanes in lockstep against scalar engines.

    Lanes are loaded from cycle-boundary {!snapshot}s and extracted back
    as snapshots, either at a boundary ({!extract}) or mid-cycle when
    the lane's branch-decision net went X ([Forked]); restoring an
    extracted snapshot into a scalar engine continues bit-identically
    (after a fork: [force_fork] + [finish_cycle]). *)
module Gang : sig
  type g

  type outcome =
    | Cycle of Trace.cycle  (** the lane completed the cycle *)
    | Forked of snapshot
        (** the lane's branch net settled to X: mid-cycle snapshot,
            lane auto-retired *)

  (** [create e ~width] — a gang of [width] lanes (clamped to 1..32),
      all free, sharing [e]'s compiled tables. *)
  val create : t -> width:int -> g

  val width : g -> int
  val live_count : g -> int
  val has_free : g -> bool

  (** [load g s] installs cycle-boundary snapshot [s] into the lowest
      free lane and returns its index. O(nets). Raises
      [Invalid_argument] if [s] is mid-cycle or no lane is free. *)
  val load : g -> snapshot -> int

  (** [extract g l] — boundary snapshot of live lane [l] (the lane stays
      live; pair with {!retire} to evict). O(nets). *)
  val extract : g -> int -> snapshot

  val retire : g -> int -> unit

  (** [step g emit] advances every live lane one cycle. [emit] is called
      once per (initially) live lane, [Cycle] lanes first then [Forked]
      lanes, each group in ascending lane order. Raises
      [Invalid_argument] if no lane is live. *)
  val step : g -> (int -> outcome -> unit) -> unit
end
