(** Input-independent gate activity analysis (paper, Algorithm 1).

    Drives an {!Engine} through reset and then depth-first through every
    execution path of the application: straight-line cycles are
    simulated once; when the branch-decision net goes to X (an
    input-dependent branch reached the PC logic), the state is
    snapshotted and both choices are explored. A branch target whose
    post-branch architectural state has already been explored is not
    re-simulated (dedup on state digest), which terminates
    input-dependent loops. *)

type config = {
  is_end : Trace.cycle -> bool;
      (** has the application reached its halt self-jump? *)
  max_cycles_per_path : int;
  max_paths : int;
  revisit_limit : int;
      (** how many times a previously-seen state may be re-explored
          (bounded unrolling for input-dependent loops); 0 = always cut *)
  gang_width : int;
      (** how many sibling branches one task packs into an
          {!Engine.Gang} and settles per compiled-kernel pass (clamped
          to 1..32; 1 disables gang simulation) *)
}

val default_config : is_end:(Trace.cycle -> bool) -> config

type stats = {
  paths : int;
  forks : int;
  dedup_hits : int;
  total_cycles : int;  (** across all explored segments *)
}

exception Path_limit of string

(** [run ?pool engine config] — symbolic execution from reset to the end
    of every path. The engine must be fresh (cycle 0).

    Exploration is task-parallel: every fork arm is a stealable task
    (O(1) snapshot + O(1) dedup-overlay fork) and a task's local sibling
    branches are gang-simulated in the lanes of one compiled kernel
    pass. Dedup decisions taken during exploration are speculative; a
    sequential commit walk then replays the tree in DFS order against
    an authoritative table — demoting over-explored arms and sequentially
    patching up under-explored ones — so the returned tree, registry,
    stats and limit raises are bit-identical to the sequential run
    regardless of [pool] size or scheduling. *)
val run : ?pool:Parallel.Pool.t -> Engine.t -> config -> Trace.tree * stats

(** [run_concrete engine ~is_end ~max_cycles] — single-path concrete
    simulation from reset (profiling baseline / validation runs). RAM
    should have been concretized first (see {!Mem.poke}); any X reaching
    the branch-decision net is an error. Returns the trace and the
    initial net values. *)
val run_concrete :
  Engine.t ->
  is_end:(Trace.cycle -> bool) ->
  max_cycles:int ->
  Trace.cycle array * int array
