(** Dedup visit counts as a parent-chained overlay with O(1) fork.

    Behaves like a [(digest -> visit count)] table, but {!fork} is O(1):
    it freezes the writer's current layer and starts fresh private tops
    for both parties over the shared frozen chain. Frozen layers are
    immutable, so a forked-off handle can be read from another domain
    while the parent keeps writing. Chains are compacted transparently
    to keep lookups bounded. *)

type t

val create : unit -> t

(** [visits t d] — current visit count of digest [d] (0 if never seen). *)
val visits : t -> string -> int

(** [set t d v] — record visit count [v] for [d] (full count, not an
    increment; shadows any frozen entry). *)
val set : t -> string -> int -> unit

(** [fork t] — an independent handle seeing exactly [t]'s current
    contents. Writes to either side are invisible to the other. O(1)
    (amortized: long chains trigger a compaction of the parent). *)
val fork : t -> t

(** Number of layers (the private top included); for tests. *)
val depth : t -> int
