(* Zobrist-style incremental state hashing over OCaml's native ints.

   The dedup digest of Algorithm 1 only needs a hash that (a) is equal
   for equal architectural states and (b) collides with negligible
   probability for distinct ones. XOR-accumulating one well-mixed key
   per (slot, value) pair gives exactly that, and makes the digest
   maintainable in O(changed slots) per cycle: flipping slot [s] from
   [a] to [b] is [h lxor key s a lxor key s b].

   Mixing is a splitmix64-shaped finalizer restricted to 62-bit odd
   multipliers (OCaml int literals cannot carry the canonical 64-bit
   constants); native int multiplication wraps modulo 2^63, which is
   all a hash needs. *)

let mix z =
  let z = z lxor (z lsr 30) in
  let z = z * 0x2545F4914F6CDD1D in
  let z = z lxor (z lsr 27) in
  let z = z * 0x1A85EC53B87A6E55 in
  z lxor (z lsr 31)

(* [key slot v] — the Zobrist key of value [v] in slot [slot]. Distinct
   (slot, v) pairs get independent-looking keys; generation is
   deterministic, so engine replicas agree without sharing tables. *)
let key slot v = mix (((slot * 3) + v) lxor 0x51CC517CC1B7)

(* [word_key i w] — key of a packed word-sized payload [w] in slot [i]
   (used for RAM words, where tabulating every value is impossible). *)
let word_key i w = mix ((i lsl 33) lxor w lxor 0x3EA3A37EA3)

(* Render a combined hash as a stable digest string. [%x] prints the
   two's-complement 63-bit pattern, so negatives round-trip fine. *)
let to_digest h = Printf.sprintf "%016x" (mix h)
