(* Visit counts for dedup digests, as a parent-chained overlay.

   The speculative scheduler in [Sym] hands the taken branch of every
   fork to the pool together with the dedup state at that point. Copying
   the whole table per fork made fork cost scale with the number of
   distinct states visited; instead, [fork] freezes the current top
   layer and pushes a fresh one (O(1)), and the child chains a fresh top
   of its own over the same frozen layers.

   Frozen layers are never written again, so sharing them with a child
   running on another domain is race-free by construction — the parent's
   subsequent writes land in its new private top. Lookups walk top-down
   and the first hit wins (a layer always stores the full visit count at
   the time of the write, not an increment). Long chains are compacted
   by merging the frozen layers into one fresh table, newest-first, so
   lookup cost stays bounded without mutating anything shared. *)

type t = {
  mutable top : (string, int) Hashtbl.t;  (* private, mutable layer *)
  mutable parents : (string, int) Hashtbl.t list;  (* frozen, newest first *)
}

let max_chain = 24

let create () = { top = Hashtbl.create 256; parents = [] }

let visits t d =
  match Hashtbl.find_opt t.top d with
  | Some v -> v
  | None ->
    let rec go = function
      | [] -> 0
      | layer :: rest -> (
        match Hashtbl.find_opt layer d with
        | Some v -> v
        | None -> go rest)
    in
    go t.parents

let set t d v = Hashtbl.replace t.top d v

let depth t = 1 + List.length t.parents

(* Merge the frozen chain into one fresh table (newest layer wins); the
   old layers may still be referenced by live children, so they are
   read, never touched. *)
let compact t =
  if List.length t.parents > max_chain then begin
    let merged = Hashtbl.create 256 in
    List.iter
      (fun layer ->
        Hashtbl.iter
          (fun k v -> if not (Hashtbl.mem merged k) then Hashtbl.add merged k v)
          layer)
      t.parents;
    t.parents <- [ merged ]
  end

let fork t =
  let chain = t.top :: t.parents in
  t.top <- Hashtbl.create 64;
  t.parents <- chain;
  compact t;
  { top = Hashtbl.create 64; parents = chain }
