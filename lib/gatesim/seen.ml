(* Visit counts for dedup digests, as a parent-chained overlay.

   The task-parallel explorer in [Sym] hands the taken branch of every
   fork to the pool together with the dedup state at that point. Copying
   the whole table per fork made fork cost scale with the number of
   distinct states visited; instead, [fork] freezes the current top
   layer and pushes a fresh one (O(1)), and the child chains a fresh top
   of its own over the same frozen layers.

   Frozen layers are never written again, so sharing them with a child
   running on another domain is race-free by construction — the parent's
   subsequent writes land in its new private top. The freeze is explicit
   and checked: every layer carries a [frozen] flag set at the moment it
   becomes shared, [set] refuses to write a frozen layer, and compaction
   asserts that everything it merges is frozen and that the merged
   result — which sits in the (shareable) parent chain — is born frozen.
   A future refactor that accidentally mutated a shared layer would trip
   these checks deterministically instead of racing.

   Lookups walk top-down and the first hit wins (a layer always stores
   the full visit count at the time of the write, not an increment).
   Long chains are compacted by merging the frozen layers into one fresh
   table, newest-first, so lookup cost stays bounded without mutating
   anything shared. *)

type layer = {
  tbl : (string, int) Hashtbl.t;
  mutable frozen : bool;  (* set once, when the layer becomes shared *)
}

type t = {
  mutable top : layer;  (* private, mutable layer *)
  mutable parents : layer list;  (* frozen, newest first *)
}

let max_chain = 24

let fresh_layer n = { tbl = Hashtbl.create n; frozen = false }

let create () = { top = fresh_layer 256; parents = [] }

let visits t d =
  match Hashtbl.find_opt t.top.tbl d with
  | Some v -> v
  | None ->
    let rec go = function
      | [] -> 0
      | layer :: rest -> (
        match Hashtbl.find_opt layer.tbl d with
        | Some v -> v
        | None -> go rest)
    in
    go t.parents

let set t d v =
  if t.top.frozen then
    invalid_arg "Seen.set: top layer is frozen (shared with a fork)";
  Hashtbl.replace t.top.tbl d v

let depth t = 1 + List.length t.parents

(* Merge the frozen chain into one fresh table (newest layer wins); the
   old layers may still be referenced by live children, so they are
   read, never touched — the merged replacement is a new table. *)
let compact t =
  if List.length t.parents > max_chain then begin
    let merged = Hashtbl.create 256 in
    List.iter
      (fun layer ->
        assert layer.frozen;
        Hashtbl.iter
          (fun k v -> if not (Hashtbl.mem merged k) then Hashtbl.add merged k v)
          layer.tbl)
      t.parents;
    (* Born frozen: it lives in the parent chain, which any later
       [fork] shares wholesale. *)
    t.parents <- [ { tbl = merged; frozen = true } ]
  end

let fork t =
  t.top.frozen <- true;
  let chain = t.top :: t.parents in
  t.top <- fresh_layer 64;
  t.parents <- chain;
  compact t;
  { top = fresh_layer 64; parents = chain }
