type config = {
  is_end : Trace.cycle -> bool;
  max_cycles_per_path : int;
  max_paths : int;
  revisit_limit : int;
}

let default_config ~is_end =
  { is_end; max_cycles_per_path = 20_000; max_paths = 4_096; revisit_limit = 0 }

type stats = {
  paths : int;
  forks : int;
  dedup_hits : int;
  total_cycles : int;
}

exception Path_limit of string

let reset_cycles = 2

(* Hold reset, then step through the RESET and VECTOR states so the
   recorded trace starts at the application's first fetch — the
   one-time power-on transient is a system event, not part of the
   application's power profile. *)
let do_reset e =
  Engine.set_reset e Tri.One;
  for _ = 1 to reset_cycles do
    ignore (Engine.step e : Trace.cycle)
  done;
  Engine.set_reset e Tri.Zero;
  (* RESET state, VECTOR fetch, and the first instruction fetch (whose
     IR transition from the unknown power-on value is likewise part of
     the start-up transient, not steady-state application behaviour). *)
  for _ = 1 to 3 do
    ignore (Engine.step e : Trace.cycle)
  done

(* ---------------------------------------------------------------------
   Parallel exploration.

   The DFS is parallelized by speculation: at every fork the taken
   branch is packaged as a task (an O(1) engine snapshot + an O(1)
   {!Seen.fork} of the dedup table) and handed to the pool while the
   not-taken branch is explored inline — exactly the sequential order. A speculative task simulates
   on a private engine replica and records an *event log*: every cycle
   count, fork, path end and — crucially — every dedup decision (digest,
   cut-or-expand). Because the simulation itself is deterministic, the
   only way a speculative subtree can diverge from the sequential run is
   through the [seen] table (a digest first reached by an *earlier*
   sibling would have been a dedup cut). So at the join point the parent
   validates the log against its authoritative table: if every decision
   replays identically, the speculative subtree IS the sequential
   subtree and its log is committed (counters bumped, table updated,
   registry filled) without re-simulating anything; otherwise the log is
   discarded and the branch re-explored inline. Either way the resulting
   tree, stats and registry are bit-identical to the sequential run.

   Speculative tasks cannot know the global path count, so they truncate
   themselves once their *local* count crosses [max_paths] (the global
   count is at least the local one, so the authoritative replay below is
   guaranteed to raise [Path_limit] at or before the truncation point —
   a truncated tree is never consumed). *)

type decision = {
  d_digest : string;
  d_cut : bool;  (* dedup cut vs. expanded *)
  mutable d_cont : Trace.node;
      (* for expanded first visits: the continuation minus the fork
         cycle, as stored in the registry; filled after exploration *)
}

type ev =
  | E_cycles of int
  | E_fork
  | E_path_end
  | E_decision of decision
  | E_raised of exn  (* deterministic raise (cycle limit) at this point *)

type spec_result = {
  sr_events : ev list;  (* in DFS order *)
  sr_node : Trace.node option;  (* None when truncated *)
}

(* Spec-local: abandon the speculation; the events so far stand. *)
exception Cut_short

type sched = {
  pool : Parallel.Pool.t;
  replicas : Engine.t option array;  (* one slot per pool worker *)
  proto : Engine.t;  (* prototype for Engine.create_like *)
}

(* Digest computation is O(1) now (incremental Zobrist), but it sits on
   the per-fork hot path — keep it observable. *)
let h_digest_ns = Telemetry.Histogram.make "sym.digest_ns"

let arch_digest e =
  if Telemetry.enabled () then begin
    let t0 = Telemetry.now_ns () in
    let d = Engine.arch_digest e in
    Telemetry.Histogram.observe h_digest_ns
      (Int64.sub (Telemetry.now_ns ()) t0);
    d
  end
  else Engine.arch_digest e

type ctx = {
  auth : bool;  (* authoritative (sequential-order) context *)
  cfg : config;
  engine : Engine.t;
  seen : Seen.t;
  registry : (string, Trace.node ref) Hashtbl.t option;  (* auth only *)
  mutable paths : int;
  mutable forks : int;
  mutable dedup_hits : int;
  mutable total_cycles : int;
  mutable events : ev list;  (* reversed; speculative contexts only *)
  sched : sched option;
}

let emit ctx e = if not ctx.auth then ctx.events <- e :: ctx.events

let bump_cycles ctx n =
  ctx.total_cycles <- ctx.total_cycles + n;
  emit ctx (E_cycles n)

let count_fork ctx =
  ctx.forks <- ctx.forks + 1;
  emit ctx E_fork

let end_of_path ctx =
  ctx.paths <- ctx.paths + 1;
  emit ctx E_path_end;
  if ctx.paths > ctx.cfg.max_paths then
    if ctx.auth then
      raise (Path_limit (Printf.sprintf "more than %d paths" ctx.cfg.max_paths))
    else raise Cut_short

(* A deterministic raise: authoritative contexts raise it for real;
   speculative ones record it and stop. *)
let stop_raise ctx e =
  if ctx.auth then raise e
  else begin
    emit ctx (E_raised e);
    raise Cut_short
  end

(* Lazily build this worker's private engine replica. Each slot is only
   ever touched by its own domain, so no locking is needed. *)
let replica_of sched =
  let i = Parallel.Pool.worker_index sched.pool in
  match sched.replicas.(i) with
  | Some e -> e
  | None ->
    let e = Engine.create_like sched.proto in
    sched.replicas.(i) <- Some e;
    e

(* Pass 1 (read-only): would the sibling's dedup decisions replay
   identically on top of our current [seen] table? The overlay records
   the visit counts the replay itself adds. Scanning stops early at a
   path-count crossing or recorded raise — the commit pass will raise
   there, so later events are unreachable either way. *)
let validate ctx events =
  let overlay : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let lookup d =
    match Hashtbl.find_opt overlay d with
    | Some v -> v
    | None -> Seen.visits ctx.seen d
  in
  let rec go paths = function
    | [] -> true
    | E_cycles _ :: rest | E_fork :: rest -> go paths rest
    | E_path_end :: rest ->
      let paths = paths + 1 in
      if paths > ctx.cfg.max_paths then true else go paths rest
    | E_raised _ :: _ -> true
    | E_decision d :: rest ->
      let visits = lookup d.d_digest in
      let cut = visits > ctx.cfg.revisit_limit in
      if cut <> d.d_cut then false
      else begin
        if not cut then Hashtbl.replace overlay d.d_digest (visits + 1);
        go paths rest
      end
  in
  go ctx.paths events

(* Pass 2: replay the validated events for real — counters, [seen]
   updates, registry fills, and (in a parent speculation) re-emission
   into its own log. [end_of_path]/[stop_raise] fire here exactly where
   the sequential run would have raised. *)
let commit ctx events =
  List.iter
    (fun ev ->
      match ev with
      | E_cycles n -> bump_cycles ctx n
      | E_fork -> count_fork ctx
      | E_path_end -> end_of_path ctx
      | E_raised e -> stop_raise ctx e
      | E_decision d ->
        if d.d_cut then begin
          ctx.dedup_hits <- ctx.dedup_hits + 1;
          emit ctx (E_decision d)
        end
        else begin
          let visits = Seen.visits ctx.seen d.d_digest in
          Seen.set ctx.seen d.d_digest (visits + 1);
          (match ctx.registry with
          | Some reg when visits = 0 ->
            Hashtbl.replace reg d.d_digest (ref d.d_cont)
          | _ -> ());
          emit ctx (E_decision d)
        end)
    events

(* Explore from the current engine state. [acc] is the reversed list of
   cycles of the current straight-line segment; [len] the path length so
   far. Returns the node for this segment onward. *)
let rec explore ctx acc len =
  if len > ctx.cfg.max_cycles_per_path then
    stop_raise ctx
      (Path_limit
         (Printf.sprintf "path exceeded %d cycles" ctx.cfg.max_cycles_per_path));
  match Engine.begin_cycle ctx.engine with
  | `Ok ->
    let c = Engine.finish_cycle ctx.engine in
    bump_cycles ctx 1;
    let acc = c :: acc in
    if ctx.cfg.is_end c then begin
      end_of_path ctx;
      Trace.Run { cycles = Array.of_list (List.rev acc); next = Trace.End_path }
    end
    else explore ctx acc (len + 1)
  | `Fork ->
    count_fork ctx;
    let snap = Engine.snapshot ctx.engine in
    (* Hand the taken branch to the pool before diving into the
       not-taken branch (the sequential order) inline. *)
    let spec =
      match ctx.sched with
      | Some s when Parallel.Pool.size s.pool > 1 ->
        (* O(1) freeze-push: the child reads the frozen chain, the
           parent keeps writing into a fresh private layer. *)
        let seen_child = Seen.fork ctx.seen in
        Some
          ( s.pool,
            Parallel.Pool.async s.pool (fun () ->
                run_spec ctx.cfg s seen_child snap len) )
      | _ -> None
    in
    let not_taken = branch ctx snap Tri.Zero len in
    let taken =
      match spec with
      | None -> branch ctx snap Tri.One len
      | Some (pool, fut) ->
        let r = Parallel.Pool.await pool fut in
        if validate ctx r.sr_events then begin
          commit ctx r.sr_events;
          (* [commit] raises at any truncation point, so a surviving
             speculation always carries its tree. *)
          match r.sr_node with
          | Some n -> n
          | None -> assert false
        end
        else branch ctx snap Tri.One len
    in
    Trace.Run
      { cycles = Array.of_list (List.rev acc); next = Trace.Fork { not_taken; taken } }

(* Resolve one fork arm from [snap] and explore it to completion. *)
and branch ctx snap v len =
  let e = ctx.engine in
  Engine.restore e snap;
  Engine.force_fork e v;
  let c = Engine.finish_cycle e in
  bump_cycles ctx 1;
  let d = arch_digest e in
  let visits = Seen.visits ctx.seen d in
  if visits > ctx.cfg.revisit_limit then begin
    emit ctx (E_decision { d_digest = d; d_cut = true; d_cont = Trace.End_path });
    ctx.dedup_hits <- ctx.dedup_hits + 1;
    end_of_path ctx;
    Trace.Run { cycles = [| c |]; next = Trace.Seen d }
  end
  else begin
    Seen.set ctx.seen d (visits + 1);
    let dec = { d_digest = d; d_cut = false; d_cont = Trace.End_path } in
    emit ctx (E_decision dec);
    let node =
      if ctx.cfg.is_end c then begin
        end_of_path ctx;
        Trace.Run { cycles = [| c |]; next = Trace.End_path }
      end
      else explore ctx [ c ] (len + 1)
    in
    (* The registered continuation starts after cycle [c]; store the
       subtree minus this first cycle so peak-energy lookups do not
       double-count it. *)
    let cont =
      match node with
      | Trace.Run { cycles; next } when Array.length cycles >= 1 ->
        Trace.Run
          { cycles = Array.sub cycles 1 (Array.length cycles - 1); next }
      | other -> other
    in
    dec.d_cont <- cont;
    (match ctx.registry with
    | Some reg when visits = 0 -> Hashtbl.replace reg d (ref cont)
    | _ -> ());
    node
  end

(* Speculative taken-branch exploration on a worker domain. *)
and run_spec cfg sched seen_child snap len =
  let ctx =
    {
      auth = false;
      cfg;
      engine = replica_of sched;
      seen = seen_child;
      registry = None;
      paths = 0;
      forks = 0;
      dedup_hits = 0;
      total_cycles = 0;
      events = [];
      sched = Some sched;
    }
  in
  let node = try Some (branch ctx snap Tri.One len) with Cut_short -> None in
  { sr_events = List.rev ctx.events; sr_node = node }

let run ?pool e config =
  if Engine.cycle_index e <> 0 then invalid_arg "Sym.run: engine not fresh";
  do_reset e;
  (* Initial vector for trace replay: the net values at the end of reset,
     i.e. the previous-cycle baseline of the first recorded cycle. *)
  let initial = Engine.values_snapshot e in
  let registry : (string, Trace.node ref) Hashtbl.t = Hashtbl.create 256 in
  let sched =
    match pool with
    | Some p when Parallel.Pool.size p > 1 ->
      Some
        { pool = p; replicas = Array.make (Parallel.Pool.size p) None; proto = e }
    | _ -> None
  in
  let ctx =
    {
      auth = true;
      cfg = config;
      engine = e;
      seen = Seen.create ();
      registry = Some registry;
      paths = 0;
      forks = 0;
      dedup_hits = 0;
      total_cycles = 0;
      events = [];
      sched;
    }
  in
  let root = explore ctx [] 0 in
  ( { Trace.root; registry; initial },
    {
      paths = ctx.paths;
      forks = ctx.forks;
      dedup_hits = ctx.dedup_hits;
      total_cycles = ctx.total_cycles;
    } )

let run_concrete e ~is_end ~max_cycles =
  if Engine.cycle_index e <> 0 then invalid_arg "Sym.run_concrete: engine not fresh";
  do_reset e;
  let initial = Engine.values_snapshot e in
  let acc = ref [] in
  let rec go n =
    if n > max_cycles then
      raise (Path_limit (Printf.sprintf "concrete run exceeded %d cycles" max_cycles));
    let c = Engine.step e in
    acc := c :: !acc;
    if not (is_end c) then go (n + 1)
  in
  go 0;
  (Array.of_list (List.rev !acc), initial)
