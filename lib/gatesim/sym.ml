type config = {
  is_end : Trace.cycle -> bool;
  max_cycles_per_path : int;
  max_paths : int;
  revisit_limit : int;
  gang_width : int;
}

let default_config ~is_end =
  {
    is_end;
    max_cycles_per_path = 20_000;
    max_paths = 4_096;
    revisit_limit = 0;
    gang_width = 16;
  }

type stats = {
  paths : int;
  forks : int;
  dedup_hits : int;
  total_cycles : int;
}

exception Path_limit of string

let reset_cycles = 2

(* Hold reset, then step through the RESET and VECTOR states so the
   recorded trace starts at the application's first fetch — the
   one-time power-on transient is a system event, not part of the
   application's power profile. *)
let do_reset e =
  Engine.set_reset e Tri.One;
  for _ = 1 to reset_cycles do
    ignore (Engine.step e : Trace.cycle)
  done;
  Engine.set_reset e Tri.Zero;
  (* RESET state, VECTOR fetch, and the first instruction fetch (whose
     IR transition from the unknown power-on value is likewise part of
     the start-up transient, not steady-state application behaviour). *)
  for _ = 1 to 3 do
    ignore (Engine.step e : Trace.cycle)
  done

(* Digest computation is O(1) now (incremental Zobrist), but it sits on
   the per-fork hot path — keep it observable. *)
let h_digest_ns = Telemetry.Histogram.make "sym.digest_ns"

let arch_digest e =
  if Telemetry.enabled () then begin
    let t0 = Telemetry.now_ns () in
    let d = Engine.arch_digest e in
    Telemetry.Histogram.observe h_digest_ns
      (Int64.sub (Telemetry.now_ns ()) t0);
    d
  end
  else Engine.arch_digest e

(* Fork-arm scheduling: spawned = handed to the pool as a stealable
   task, inlined = kept on the spawning task's local stack. The
   gang-width histogram records how many sibling branches each compiled
   gang pass settled together. *)
let c_spawned = Telemetry.Counter.make "sym.forks_spawned"
let c_stolen = Telemetry.Counter.make "sym.forks_stolen"
let c_inlined = Telemetry.Counter.make "sym.forks_inlined"
let h_gang_width = Telemetry.Histogram.make "sym.gang_width"

(* ---------------------------------------------------------------------
   Task-parallel exploration with deferred sequential commit.

   The exploration phase builds a *speculative arm tree*: every fork is
   resolved immediately (both arms simulated one cycle on a scratch
   engine, digested, and given a provisional cut-or-expand decision
   against the exploring task's [Seen] overlay), and every expanded arm
   becomes a [work] item — an O(1) boundary snapshot plus the tree node
   it will fill in. Work items are directly stealable: when the pool is
   hungry the taken arm is spawned as a task (with an O(1) {!Seen.fork}
   of the overlay); otherwise both arms stay on the task's local LIFO
   stack, which preserves depth-first order. A task with several local
   branches packs them into the lanes of an {!Engine.Gang} and settles
   them with one pass of the compiled kernel per cycle; a lone branch
   runs on the scalar fast path. Tasks never block — they only simulate
   and spawn — so every pool worker is either simulating or stealing.

   Speculative dedup decisions may differ from the sequential run's
   (each task only sees its own overlay chain), so after exploration a
   *sequential commit walk* replays the tree in exact DFS order against
   an authoritative digest table: an arm the table cuts is demoted (its
   speculative subtree discarded — over-exploration costs wall-clock,
   never correctness) and an arm the table expands but speculation cut
   is patched up by sequential re-exploration from the arm's boundary
   snapshot. The walk bumps all counters, fills the registry, and
   raises the cycle/path limits exactly where the sequential explorer
   would have, so the returned tree, registry, stats and exceptions are
   bit-identical to the sequential run.

   Global truncation is cooperative: a shared estimated-path counter
   and a stop flag. Once the estimate crosses [max_paths] (or any
   branch hits the cycle limit) tasks drain their remaining branches to
   [T_unexplored] boundary snapshots and exit; the commit walk
   re-explores any such snapshot it reaches before the (deterministic)
   limit raise. *)

type seg = {
  mutable s_cycles_rev : Trace.cycle list;  (* newest first *)
  mutable s_term : term;
}

and term =
  | T_open  (* still being explored; never seen by the commit walk *)
  | T_end  (* reached the application's halt cycle *)
  | T_raise of exn  (* deterministic limit raise at this point *)
  | T_fork of fork
  | T_unexplored of { u_snap : Engine.snapshot; u_len : int }
      (* drained by the stop flag; commit re-explores sequentially *)

and fork = {
  f_nt : arm;
  f_tk : arm;
  mutable f_fut : unit Parallel.Pool.future option;
      (* the taken arm's task when it was spawned; awaited by the
         commit walk before reading [f_tk.a_seg] *)
}

and arm = {
  a_entry : Trace.cycle;  (* the resolved fork cycle *)
  a_digest : string;  (* architectural digest after [a_entry] *)
  a_snap : Engine.snapshot;  (* boundary state after [a_entry] *)
  a_len : int;  (* path length including [a_entry] *)
  a_cut : bool;  (* the speculative dedup decision *)
  a_seg : seg;  (* continuation; only explored when [not a_cut] *)
}

(* An expanded arm (or the root) awaiting simulation. *)
type work = { w_seg : seg; w_snap : Engine.snapshot; w_len : int }

type sched = {
  cfg : config;
  pool : Parallel.Pool.t option;
  proto : Engine.t;
  (* Per-worker scratch state, lazily built, each slot only ever touched
     by its own domain (tasks never block, so a worker runs one task at
     a time and helping cannot re-enter a slot mid-use). *)
  scratch : Engine.t option array;
  gangs : Engine.Gang.g option array;
  stop : bool Atomic.t;
  est_paths : int Atomic.t;
      (* speculative path-end count; an over-estimate of the committed
         count (demotions only shrink it), so crossing [max_paths] here
         can only stop exploration the commit walk would truncate — or
         patch up sequentially — anyway *)
}

(* Exploration state of one task: a Seen overlay shared by all its
   local branches and a LIFO stack of pending arms. *)
type tstate = {
  t_seen : Seen.t;
  mutable t_pending : work list;
  mutable t_npending : int;
}

type lane = { l_seg : seg; mutable l_len : int }

let gang_width_of cfg = max 1 (min 32 cfg.gang_width)

let cycle_limit_exn cfg =
  Path_limit
    (Printf.sprintf "path exceeded %d cycles" cfg.max_cycles_per_path)

let worker_slot sd =
  match sd.pool with Some p -> Parallel.Pool.worker_index p | None -> 0

let scratch_of sd =
  let i = worker_slot sd in
  match sd.scratch.(i) with
  | Some e -> e
  | None ->
    let e = Engine.create_like sd.proto in
    sd.scratch.(i) <- Some e;
    e

let gang_of sd =
  let i = worker_slot sd in
  match sd.gangs.(i) with
  | Some g -> g
  | None ->
    let g = Engine.Gang.create sd.proto ~width:(gang_width_of sd.cfg) in
    sd.gangs.(i) <- Some g;
    g

let note_path sd =
  Atomic.incr sd.est_paths;
  if Atomic.get sd.est_paths > sd.cfg.max_paths then Atomic.set sd.stop true

let push_work ts w =
  ts.t_pending <- w :: ts.t_pending;
  ts.t_npending <- ts.t_npending + 1

let pop_work ts =
  match ts.t_pending with
  | [] -> None
  | w :: rest ->
    ts.t_pending <- rest;
    ts.t_npending <- ts.t_npending - 1;
    Some w

let drain_pending ts =
  List.iter
    (fun w ->
      w.w_seg.s_term <- T_unexplored { u_snap = w.w_snap; u_len = w.w_len })
    ts.t_pending;
  ts.t_pending <- [];
  ts.t_npending <- 0

(* Resolve one arm of a fork on [e] (positioned at the fork's settled
   mid-cycle state): force the decision net, finish the cycle, take the
   speculative dedup decision against the task's overlay. *)
let resolve_arm sd ts e v len_at_fork =
  Engine.force_fork e v;
  let c = Engine.finish_cycle e in
  let d = arch_digest e in
  let snap = Engine.snapshot e in
  let visits = Seen.visits ts.t_seen d in
  let cut = visits > sd.cfg.revisit_limit in
  if not cut then Seen.set ts.t_seen d (visits + 1);
  let a =
    {
      a_entry = c;
      a_digest = d;
      a_snap = snap;
      a_len = len_at_fork + 1;
      a_cut = cut;
      a_seg = { s_cycles_rev = []; s_term = T_open };
    }
  in
  if cut then note_path sd
  else if sd.cfg.is_end c then begin
    a.a_seg.s_term <- T_end;
    note_path sd
  end;
  a

let needs_work a = (not a.a_cut) && a.a_seg.s_term == T_open

(* A branch hit a fork: resolve both arms on the scratch engine, record
   the fork node, and queue the arms — the taken arm first (spawned to
   the pool when it is hungry), so the local LIFO pops the not-taken arm
   next, preserving depth-first order. *)
let rec resolve_fork sd ts seg mid_snap len_at_fork =
  let e = scratch_of sd in
  Engine.restore e mid_snap;
  let nt = resolve_arm sd ts e Tri.Zero len_at_fork in
  Engine.restore e mid_snap;
  let tk = resolve_arm sd ts e Tri.One len_at_fork in
  let fork = { f_nt = nt; f_tk = tk; f_fut = None } in
  seg.s_term <- T_fork fork;
  let work_of a = { w_seg = a.a_seg; w_snap = a.a_snap; w_len = a.a_len } in
  if needs_work tk then begin
    match sd.pool with
    | Some p
      when Parallel.Pool.size p > 1
           && Parallel.Pool.queued p < Parallel.Pool.size p
           && not (Atomic.get sd.stop) ->
      Telemetry.Counter.incr c_spawned;
      let child_seen = Seen.fork ts.t_seen in
      let w = work_of tk in
      let origin = Parallel.Pool.worker_index p in
      fork.f_fut <-
        Some
          (Parallel.Pool.async p (fun () ->
               if Parallel.Pool.worker_index p <> origin then
                 Telemetry.Counter.incr c_stolen;
               spawn_task sd child_seen w))
    | _ ->
      Telemetry.Counter.incr c_inlined;
      push_work ts (work_of tk)
  end;
  if needs_work nt then push_work ts (work_of nt)

(* Straight-line fast path: a lone branch simulates on the scalar
   scratch engine with no gang overhead. *)
and run_scalar sd ts w =
  let e = scratch_of sd in
  Engine.restore e w.w_snap;
  let seg = w.w_seg in
  let len = ref w.w_len in
  let rec go () =
    if Atomic.get sd.stop then
      seg.s_term <- T_unexplored { u_snap = Engine.snapshot e; u_len = !len }
    else if !len > sd.cfg.max_cycles_per_path then begin
      seg.s_term <- T_raise (cycle_limit_exn sd.cfg);
      Atomic.set sd.stop true
    end
    else
      match Engine.begin_cycle e with
      | `Ok ->
        let c = Engine.finish_cycle e in
        seg.s_cycles_rev <- c :: seg.s_cycles_rev;
        if sd.cfg.is_end c then begin
          seg.s_term <- T_end;
          note_path sd
        end
        else begin
          incr len;
          go ()
        end
      | `Fork -> resolve_fork sd ts seg (Engine.snapshot e) !len
  in
  go ()

(* Gang path: pack the pending branches into lanes and settle them all
   with one compiled-kernel pass per cycle. Lanes retire on path end,
   limit, or fork (forks re-queue their arms, refilling the gang). *)
and run_gang sd ts =
  let g = gang_of sd in
  let lanes : lane option array = Array.make (Engine.Gang.width g) None in
  let drain_lanes () =
    Array.iteri
      (fun i st ->
        match st with
        | Some st ->
          st.l_seg.s_term <-
            T_unexplored { u_snap = Engine.Gang.extract g i; u_len = st.l_len };
          Engine.Gang.retire g i;
          lanes.(i) <- None
        | None -> ())
      lanes
  in
  let refill () =
    while
      Engine.Gang.has_free g
      && ts.t_npending > 0
      && Engine.Gang.live_count g + ts.t_npending >= 2
      && not (Atomic.get sd.stop)
    do
      match pop_work ts with
      | None -> assert false
      | Some w ->
        if w.w_len > sd.cfg.max_cycles_per_path then begin
          w.w_seg.s_term <- T_raise (cycle_limit_exn sd.cfg);
          Atomic.set sd.stop true
        end
        else begin
          let l = Engine.Gang.load g w.w_snap in
          lanes.(l) <- Some { l_seg = w.w_seg; l_len = w.w_len }
        end
    done
  in
  let rec loop () =
    if Atomic.get sd.stop then begin
      drain_lanes ();
      drain_pending ts
    end
    else begin
      refill ();
      let live = Engine.Gang.live_count g in
      if live = 0 then ()  (* pending (if any) handled by the caller *)
      else if live = 1 && ts.t_npending = 0 then
        (* Lone survivor: evict to the scalar fast path. *)
        Array.iteri
          (fun i st ->
            match st with
            | Some st ->
              push_work ts
                {
                  w_seg = st.l_seg;
                  w_snap = Engine.Gang.extract g i;
                  w_len = st.l_len;
                };
              Engine.Gang.retire g i;
              lanes.(i) <- None
            | None -> ())
          lanes
      else begin
        if Telemetry.enabled () then
          Telemetry.Histogram.observe h_gang_width (Int64.of_int live);
        Engine.Gang.step g (fun l o ->
            match lanes.(l) with
            | None -> assert false
            | Some st -> (
              match o with
              | Engine.Gang.Cycle c ->
                st.l_seg.s_cycles_rev <- c :: st.l_seg.s_cycles_rev;
                if sd.cfg.is_end c then begin
                  st.l_seg.s_term <- T_end;
                  note_path sd;
                  Engine.Gang.retire g l;
                  lanes.(l) <- None
                end
                else begin
                  st.l_len <- st.l_len + 1;
                  if st.l_len > sd.cfg.max_cycles_per_path then begin
                    st.l_seg.s_term <- T_raise (cycle_limit_exn sd.cfg);
                    Atomic.set sd.stop true;
                    Engine.Gang.retire g l;
                    lanes.(l) <- None
                  end
                end
              | Engine.Gang.Forked snap ->
                (* the gang auto-retired the lane *)
                lanes.(l) <- None;
                resolve_fork sd ts st.l_seg snap st.l_len));
        loop ()
      end
    end
  in
  loop ()

and task_loop sd ts =
  if Atomic.get sd.stop then drain_pending ts
  else if ts.t_npending = 0 then ()
  else if ts.t_npending = 1 || gang_width_of sd.cfg < 2 then begin
    (match pop_work ts with
    | Some w -> run_scalar sd ts w
    | None -> ());
    task_loop sd ts
  end
  else begin
    run_gang sd ts;
    task_loop sd ts
  end

and spawn_task sd seen w =
  Telemetry.span ~cat:"sym" "explore" (fun () ->
      let ts = { t_seen = seen; t_pending = []; t_npending = 0 } in
      push_work ts w;
      task_loop sd ts)

(* ---------------------------------------------------------------------
   Sequential commit walk: replays the speculative arm tree in exact
   DFS order against an authoritative digest table, producing the same
   tree, registry, stats and limit raises as the sequential explorer. *)

type cctx = {
  c_cfg : config;
  c_engine : Engine.t;  (* the caller's engine, used for patch-ups *)
  c_pool : Parallel.Pool.t option;
  c_table : (string, int) Hashtbl.t;
  c_registry : (string, Trace.node ref) Hashtbl.t;
  mutable c_paths : int;
  mutable c_forks : int;
  mutable c_dedup : int;
  mutable c_cycles : int;
}

let path_end cctx =
  cctx.c_paths <- cctx.c_paths + 1;
  if cctx.c_paths > cctx.c_cfg.max_paths then
    raise
      (Path_limit (Printf.sprintf "more than %d paths" cctx.c_cfg.max_paths))

let table_visits cctx d =
  match Hashtbl.find_opt cctx.c_table d with Some v -> v | None -> 0

(* The registered continuation starts after the fork cycle; store the
   subtree minus that first cycle so peak-energy lookups do not
   double-count it. *)
let register cctx d visits node =
  if visits = 0 then begin
    let cont =
      match node with
      | Trace.Run { cycles; next } when Array.length cycles >= 1 ->
        Trace.Run
          { cycles = Array.sub cycles 1 (Array.length cycles - 1); next }
      | other -> other
    in
    Hashtbl.replace cctx.c_registry d (ref cont)
  end

(* Sequential exploration on the main engine — re-explores subtrees the
   parallel phase drained ([T_unexplored]) or under-explored (a
   speculative cut the committed table expands). [acc] is the reversed
   list of cycles of the current straight-line segment. *)
let rec explore_seq cctx acc len =
  if len > cctx.c_cfg.max_cycles_per_path then raise (cycle_limit_exn cctx.c_cfg);
  match Engine.begin_cycle cctx.c_engine with
  | `Ok ->
    let c = Engine.finish_cycle cctx.c_engine in
    cctx.c_cycles <- cctx.c_cycles + 1;
    let acc = c :: acc in
    if cctx.c_cfg.is_end c then begin
      path_end cctx;
      Trace.Run { cycles = Array.of_list (List.rev acc); next = Trace.End_path }
    end
    else explore_seq cctx acc (len + 1)
  | `Fork ->
    cctx.c_forks <- cctx.c_forks + 1;
    let snap = Engine.snapshot cctx.c_engine in
    let not_taken = branch_seq cctx snap Tri.Zero len in
    let taken = branch_seq cctx snap Tri.One len in
    Trace.Run
      {
        cycles = Array.of_list (List.rev acc);
        next = Trace.Fork { not_taken; taken };
      }

and branch_seq cctx snap v len =
  let e = cctx.c_engine in
  Engine.restore e snap;
  Engine.force_fork e v;
  let c = Engine.finish_cycle e in
  cctx.c_cycles <- cctx.c_cycles + 1;
  let d = arch_digest e in
  let visits = table_visits cctx d in
  if visits > cctx.c_cfg.revisit_limit then begin
    cctx.c_dedup <- cctx.c_dedup + 1;
    path_end cctx;
    Trace.Run { cycles = [| c |]; next = Trace.Seen d }
  end
  else begin
    Hashtbl.replace cctx.c_table d (visits + 1);
    let node =
      if cctx.c_cfg.is_end c then begin
        path_end cctx;
        Trace.Run { cycles = [| c |]; next = Trace.End_path }
      end
      else explore_seq cctx [ c ] (len + 1)
    in
    register cctx d visits node;
    node
  end

let rec commit_seg cctx seg ~pre =
  let own = List.rev seg.s_cycles_rev in
  cctx.c_cycles <- cctx.c_cycles + List.length own;
  let all = pre @ own in
  match seg.s_term with
  | T_open -> assert false
  | T_raise e -> raise e
  | T_end ->
    path_end cctx;
    Trace.Run { cycles = Array.of_list all; next = Trace.End_path }
  | T_unexplored { u_snap; u_len } ->
    Engine.restore cctx.c_engine u_snap;
    explore_seq cctx (List.rev all) u_len
  | T_fork f ->
    cctx.c_forks <- cctx.c_forks + 1;
    let not_taken = commit_arm cctx f.f_nt in
    (* Join the spawned taken-arm task (helping while it runs) before
       reading its tree; demoted subtrees are never awaited. *)
    (match (f.f_fut, cctx.c_pool) with
    | Some fut, Some p -> Parallel.Pool.await p fut
    | _ -> ());
    let taken = commit_arm cctx f.f_tk in
    Trace.Run
      { cycles = Array.of_list all; next = Trace.Fork { not_taken; taken } }

and commit_arm cctx a =
  cctx.c_cycles <- cctx.c_cycles + 1 (* the arm's entry cycle *);
  let visits = table_visits cctx a.a_digest in
  if visits > cctx.c_cfg.revisit_limit then begin
    (* Possibly a demotion: the committed table cuts here even though
       speculation expanded; the speculative subtree is discarded. *)
    cctx.c_dedup <- cctx.c_dedup + 1;
    path_end cctx;
    Trace.Run { cycles = [| a.a_entry |]; next = Trace.Seen a.a_digest }
  end
  else begin
    Hashtbl.replace cctx.c_table a.a_digest (visits + 1);
    let node =
      if a.a_cut then
        (* Speculation cut here but the committed table expands (the
           overlay entries it relied on were demoted): patch up by
           exploring sequentially from the arm's boundary snapshot. *)
        if cctx.c_cfg.is_end a.a_entry then begin
          path_end cctx;
          Trace.Run { cycles = [| a.a_entry |]; next = Trace.End_path }
        end
        else begin
          Engine.restore cctx.c_engine a.a_snap;
          explore_seq cctx [ a.a_entry ] a.a_len
        end
      else commit_seg cctx a.a_seg ~pre:[ a.a_entry ]
    in
    register cctx a.a_digest visits node;
    node
  end

let run ?pool e config =
  if Engine.cycle_index e <> 0 then invalid_arg "Sym.run: engine not fresh";
  do_reset e;
  (* Initial vector for trace replay: the net values at the end of reset,
     i.e. the previous-cycle baseline of the first recorded cycle. *)
  let initial = Engine.values_snapshot e in
  let registry : (string, Trace.node ref) Hashtbl.t = Hashtbl.create 256 in
  let nslots = match pool with Some p -> Parallel.Pool.size p | None -> 1 in
  let sd =
    {
      cfg = config;
      pool;
      proto = e;
      scratch = Array.make nslots None;
      gangs = Array.make nslots None;
      stop = Atomic.make false;
      est_paths = Atomic.make 0;
    }
  in
  let root_seg = { s_cycles_rev = []; s_term = T_open } in
  (* Ensure abandoned speculative tasks (demoted subtrees are never
     joined) drain promptly once the result — or a limit raise — is
     decided. *)
  Fun.protect ~finally:(fun () -> Atomic.set sd.stop true) @@ fun () ->
  spawn_task sd (Seen.create ())
    { w_seg = root_seg; w_snap = Engine.snapshot e; w_len = 0 };
  let cctx =
    {
      c_cfg = config;
      c_engine = e;
      c_pool = pool;
      c_table = Hashtbl.create 256;
      c_registry = registry;
      c_paths = 0;
      c_forks = 0;
      c_dedup = 0;
      c_cycles = 0;
    }
  in
  let root = commit_seg cctx root_seg ~pre:[] in
  ( { Trace.root; registry; initial },
    {
      paths = cctx.c_paths;
      forks = cctx.c_forks;
      dedup_hits = cctx.c_dedup;
      total_cycles = cctx.c_cycles;
    } )

let run_concrete e ~is_end ~max_cycles =
  if Engine.cycle_index e <> 0 then invalid_arg "Sym.run_concrete: engine not fresh";
  do_reset e;
  let initial = Engine.values_snapshot e in
  let acc = ref [] in
  let rec go n =
    if n > max_cycles then
      raise (Path_limit (Printf.sprintf "concrete run exceeded %d cycles" max_cycles));
    let c = Engine.step e in
    acc := c :: !acc;
    if not (is_end c) then go (n + 1)
  in
  go 0;
  (Array.of_list (List.rev !acc), initial)
