(* Per-block characterization from the conservative all-X entry state.
   See blockchar.mli. *)

type cost = {
  peak_w : float;
  energy_j : float;
  cycles : int;
  boot_peak_w : float;
  boot_energy_j : float;
  boot_cycles : int;
  from_cache : bool;
}

let static_version = 1
let cache_ns = "block"

let is_end_of_block (b : Cfg.block) (cy : Gatesim.Trace.cycle) =
  match b.Cfg.b_term with
  | Cfg.T_halt ->
    (* the self-jump is the block's last instruction; end on its fetch *)
    let halt_addr = fst (List.hd (List.rev b.Cfg.b_insns)) in
    Cpu.is_end_cycle ~halt_addr cy
  | _ ->
    if Tri.Word.has_x cy.Gatesim.Trace.state then true
    else if Tri.Word.to_int cy.Gatesim.Trace.state <> Some Cpu.st_fetch then false
    else (
      match Tri.Word.to_int cy.Gatesim.Trace.pc with
      | None -> true
      | Some p -> p < b.Cfg.b_start || p >= b.Cfg.b_limit)

(* (energy, cycles, peak) of a cycle segment. *)
let segment_cost pa cycles =
  let period = Poweran.period pa in
  let e = ref 0.0 and pk = ref 0.0 in
  Array.iter
    (fun cy ->
      let p = Poweran.cycle_power_max pa cy in
      e := !e +. (p *. period);
      if p > !pk then pk := p)
    cycles;
  (!e, Array.length cycles, !pk)

(* Worst-case (energy, cycles, peak) over the execution tree. Energy and
   cycle count are maximized independently across fork arms — each is an
   upper bound on its own. [Seen] edges contribute nothing: a revisited
   state means the block looped back on itself, and the loop-nest
   combiner (not the block cost) accounts for iteration counts. *)
let rec walk pa = function
  | Gatesim.Trace.Run { cycles; next } ->
    let e, c, pk = segment_cost pa cycles in
    let e2, c2, pk2 = walk pa next in
    (e +. e2, c + c2, Float.max pk pk2)
  | Gatesim.Trace.Fork { not_taken; taken } ->
    let e1, c1, pk1 = walk pa not_taken in
    let e2, c2, pk2 = walk pa taken in
    (Float.max e1 e2, max c1 c2, Float.max pk1 pk2)
  | Gatesim.Trace.End_path | Gatesim.Trace.Seen _ -> (0.0, 0, 0.0)

let compute ?pool ?specialize ~max_cycles_per_path ~max_paths pa cpu img
    (b : Cfg.block) =
  let tree, _stats =
    Core.Analyze.run_fragment ?pool ?specialize ~is_end:(is_end_of_block b)
      ~max_cycles_per_path ~max_paths cpu img ~entry:b.Cfg.b_start
  in
  match tree.Gatesim.Trace.root with
  | Gatesim.Trace.Run { cycles; next } ->
    (* Split off the boot prefix: everything before the first fetch at
       the block start (reset, vector and the watchdog-stop thunk). *)
    let n = Array.length cycles in
    let is_entry_fetch cy =
      Tri.Word.to_int cy.Gatesim.Trace.state = Some Cpu.st_fetch
      && Tri.Word.to_int cy.Gatesim.Trace.pc = Some b.Cfg.b_start
    in
    let i0 = ref 0 in
    while !i0 < n && not (is_entry_fetch cycles.(!i0)) do
      incr i0
    done;
    let boot_e, boot_c, boot_pk = segment_cost pa (Array.sub cycles 0 !i0) in
    let body_e, body_c, body_pk =
      segment_cost pa (Array.sub cycles !i0 (n - !i0))
    in
    let rest_e, rest_c, rest_pk = walk pa next in
    ( body_e +. rest_e,
      body_c + rest_c,
      Float.max body_pk rest_pk,
      boot_e,
      boot_c,
      boot_pk )
  | root ->
    let e, c, pk = walk pa root in
    (e, c, pk, 0.0, 0, 0.0)

(* Digesting the elaborated netlist and the power model dominates a
   cache-hit characterization (milliseconds each), and both are
   invariant across the blocks of one analysis — and, in a long-lived
   process like `xbound serve`, across analyses. Memoize the digest by
   physical identity; a concurrent recompute is harmless (last write
   wins, same digest). *)
let identity_memo (digest : 'a -> string) =
  let last = ref None in
  fun (v : 'a) ->
    match !last with
    | Some (v', d) when v' == v -> d
    | _ ->
      let d = digest v in
      last := Some (v, d);
      d

let cpu_digest =
  identity_memo (fun (cpu : Cpu.t) ->
      Cache.Key.of_value (cpu.Cpu.netlist, cpu.Cpu.ports))

let pa_digest = identity_memo (fun (pa : Poweran.t) -> Cache.Key.of_value pa)

let key ~max_cycles_per_path ~max_paths pa cpu (img : Isa.Asm.image)
    (b : Cfg.block) =
  Cache.Key.combine
    [
      string_of_int static_version;
      string_of_int Core.Analyze.analysis_version;
      string_of_int max_cycles_per_path;
      string_of_int max_paths;
      cpu_digest cpu;
      pa_digest pa;
      Cache.Key.of_value
        (img.Isa.Asm.words, b.Cfg.b_start, b.Cfg.b_limit, b.Cfg.b_term);
    ]

let characterize ?cache ?pool ?specialize ?(max_cycles_per_path = 4096)
    ?(max_paths = 64) pa cpu img b =
  Telemetry.span "blockchar" @@ fun () ->
  let computed = ref false in
  let run () =
    computed := true;
    compute ?pool ?specialize ~max_cycles_per_path ~max_paths pa cpu img b
  in
  let energy_j, cycles, peak_w, boot_energy_j, boot_cycles, boot_peak_w =
    match cache with
    | None -> run ()
    | Some c ->
      let key = key ~max_cycles_per_path ~max_paths pa cpu img b in
      Cache.memo c ~ns:cache_ns ~key run
  in
  {
    peak_w;
    energy_j;
    cycles;
    boot_peak_w;
    boot_energy_j;
    boot_cycles;
    from_cache = not !computed;
  }
