(* Loop-nest longest-path combiner over per-block costs. See ipet.mli. *)

module ISet = Set.Make (Int)

type row = {
  r_start : int;
  r_limit : int;
  r_label : string;
  r_insns : int;
  r_iters : int;
  r_cycles : int;
  r_peak_w : float;
  r_energy_j : float;
  r_cached : bool;
}

type t = {
  s_name : string;
  s_peak_power_w : float;
  s_peak_energy_j : float;
  s_cycle_bound : int;
  s_blocks : int;
  s_loops : int;
  s_cached_blocks : int;
  s_rows : row list;
}

exception E of Cfg.error

(* Memoized longest-path DP over a DAG; a gray node on the DFS stack
   means a cycle survived loop collapsing, i.e. the region has no
   natural-loop header to hang the bound on. *)
let dag_dp ~in_set ~succ ~cost ~on_cycle entry =
  let memo = Hashtbl.create 16 in
  let gray = Hashtbl.create 16 in
  let rec dp n =
    match Hashtbl.find_opt memo n with
    | Some v -> v
    | None ->
      if Hashtbl.mem gray n then on_cycle n;
      Hashtbl.replace gray n ();
      let e0, c0 = cost n in
      let be = ref 0.0 and bc = ref 0 in
      List.iter
        (fun s ->
          if in_set s then begin
            let e, c = dp s in
            if e > !be then be := e;
            if c > !bc then bc := c
          end)
        (succ n);
      Hashtbl.remove gray n;
      let v = (e0 +. !be, c0 + !bc) in
      Hashtbl.replace memo n v;
      v
  in
  dp entry

(* Iterative dominator sets over one function's blocks. *)
let dominators nodes entry ~preds =
  let all = ISet.of_list nodes in
  let dom = Hashtbl.create 16 in
  List.iter
    (fun n ->
      Hashtbl.replace dom n (if n = entry then ISet.singleton entry else all))
    nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if n <> entry then begin
          let inter =
            List.fold_left
              (fun acc p ->
                let dp = Hashtbl.find dom p in
                match acc with
                | None -> Some dp
                | Some a -> Some (ISet.inter a dp))
              None (preds n)
          in
          let nd =
            ISet.add n (Option.value ~default:(ISet.singleton n) inter)
          in
          if not (ISet.equal nd (Hashtbl.find dom n)) then begin
            Hashtbl.replace dom n nd;
            changed := true
          end
        end)
      nodes
  done;
  dom

let analyze ?cache ?pool ?specialize ?(name = "program") ~loop_bound pa cpu
    (img : Isa.Asm.image) =
  Telemetry.span "static" @@ fun () ->
  let pool = match pool with Some _ as p -> p | None -> Parallel.auto () in
  match Cfg.extract img with
  | Error e -> Error e
  | Ok cfg -> (
    try
      let block_of start =
        match Cfg.block_at cfg start with
        | Some b -> b
        | None -> raise (E (Cfg.Bad_decode { addr = start; word = 0 }))
      in
      (* Block characterizations, shared across functions. *)
      let costs : (int, Blockchar.cost) Hashtbl.t = Hashtbl.create 32 in
      let cost_of start =
        match Hashtbl.find_opt costs start with
        | Some c -> c
        | None ->
          let c =
            Blockchar.characterize ?cache ?pool ?specialize pa cpu img
              (block_of start)
          in
          Hashtbl.replace costs start c;
          c
      in
      (* The combiner below consumes block costs strictly sequentially
         (call-graph DFS -> per-function walks), so on its own the pool
         only helps inside one block's exploration. Pre-characterize
         every reachable block as an independent pool task instead —
         block characterization dominates a cold static analysis, and
         the results are order-independent (content-addressed, merged by
         block start). Reachability mirrors the walk exactly
         (intra-procedural successors plus call targets), so the cost
         table, rows and block counts match the lazy path. *)
      (match pool with
      | None -> ()
      | Some p ->
        let seen = Hashtbl.create 32 in
        let q = Queue.create () in
        Hashtbl.replace seen cfg.Cfg.c_entry ();
        Queue.add cfg.Cfg.c_entry q;
        let order = ref [] in
        while not (Queue.is_empty q) do
          let s = Queue.pop q in
          order := s :: !order;
          let b = block_of s in
          let succs =
            match b.Cfg.b_term with
            | Cfg.T_call { callee; _ } -> callee :: Cfg.successors b
            | _ -> Cfg.successors b
          in
          List.iter
            (fun s' ->
              if not (Hashtbl.mem seen s') then begin
                Hashtbl.replace seen s' ();
                Queue.add s' q
              end)
            succs
        done;
        let futs =
          List.rev_map
            (fun s ->
              ( s,
                Parallel.Pool.async p (fun () ->
                    Blockchar.characterize ?cache ~pool:p ?specialize pa cpu
                      img (block_of s)) ))
            !order
        in
        List.iter
          (fun (s, fut) -> Hashtbl.replace costs s (Parallel.Pool.await p fut))
          futs);
      let iters : (int, int) Hashtbl.t = Hashtbl.create 32 in
      let bump_iters start n =
        let cur = Option.value ~default:1 (Hashtbl.find_opt iters start) in
        Hashtbl.replace iters start (cur * n)
      in
      let n_loops = ref 0 in
      (* One function: blocks reachable intra-procedurally from [fentry],
         with callee summaries folded into their call blocks. Returns the
         worst-case (energy, cycles, peak) of one invocation. *)
      let summarize fentry ~callee_summary =
        let body = Hashtbl.create 16 in
        let q = Queue.create () in
        Queue.add fentry q;
        Hashtbl.replace body fentry ();
        while not (Queue.is_empty q) do
          let s = Queue.pop q in
          List.iter
            (fun s' ->
              if not (Hashtbl.mem body s') then begin
                Hashtbl.replace body s' ();
                Queue.add s' q
              end)
            (Cfg.successors (block_of s))
        done;
        let nodes = Hashtbl.fold (fun s () acc -> s :: acc) body [] in
        let orig_succ s =
          List.filter (Hashtbl.mem body) (Cfg.successors (block_of s))
        in
        let preds_tbl = Hashtbl.create 16 in
        List.iter
          (fun s ->
            List.iter
              (fun s' ->
                Hashtbl.replace preds_tbl s'
                  (s :: Option.value ~default:[] (Hashtbl.find_opt preds_tbl s')))
              (orig_succ s))
          nodes;
        let preds s = Option.value ~default:[] (Hashtbl.find_opt preds_tbl s) in
        let dom = dominators nodes fentry ~preds in
        (* Natural loops, grouped by header. *)
        let loops = Hashtbl.create 4 in
        List.iter
          (fun u ->
            List.iter
              (fun h ->
                if ISet.mem h (Hashtbl.find dom u) then begin
                  (* back edge u -> h: walk predecessors to the header *)
                  let bodyset =
                    ref
                      (Option.value ~default:(ISet.singleton h)
                         (Hashtbl.find_opt loops h))
                  in
                  let stack = ref [ u ] in
                  while !stack <> [] do
                    let x = List.hd !stack in
                    stack := List.tl !stack;
                    if not (ISet.mem x !bodyset) then begin
                      bodyset := ISet.add x !bodyset;
                      stack := preds x @ !stack
                    end
                  done;
                  Hashtbl.replace loops h !bodyset
                end)
              (orig_succ u))
          nodes;
        (* Current (collapsed) node state. *)
        let repr = Hashtbl.create 16 in
        let find_repr s = Option.value ~default:s (Hashtbl.find_opt repr s) in
        let members = Hashtbl.create 16 in
        let members_of n = Option.value ~default:[ n ] (Hashtbl.find_opt members n) in
        let node_cost = Hashtbl.create 16 in
        List.iter
          (fun s ->
            let c = cost_of s in
            let e, cyc, pk =
              match (block_of s).Cfg.b_term with
              | Cfg.T_call { callee; _ } ->
                let ce, cc, cp = callee_summary callee in
                (c.Blockchar.energy_j +. ce, c.Blockchar.cycles + cc,
                 Float.max c.Blockchar.peak_w cp)
              | _ -> (c.Blockchar.energy_j, c.Blockchar.cycles, c.Blockchar.peak_w)
            in
            Hashtbl.replace node_cost s (e, cyc, pk))
          nodes;
        let alive = ref (ISet.of_list nodes) in
        let cur_succ n =
          List.concat_map
            (fun x -> List.map find_repr (orig_succ x))
            (members_of n)
          |> List.filter (fun s -> s <> n)
          |> List.sort_uniq compare
        in
        let cost2 n =
          let e, c, _ = Hashtbl.find node_cost n in
          (e, c)
        in
        let n = loop_bound + 1 in
        let loop_list =
          Hashtbl.fold (fun h b acc -> (h, b) :: acc) loops []
          |> List.sort (fun (_, a) (_, b) ->
                 compare (ISet.cardinal a) (ISet.cardinal b))
        in
        List.iter
          (fun (h, body_orig) ->
            incr n_loops;
            let body_cur =
              ISet.fold (fun x acc -> ISet.add (find_repr x) acc) body_orig
                ISet.empty
            in
            let in_body s = ISet.mem s body_cur && s <> h in
            let iter_e, iter_c =
              dag_dp ~in_set:in_body ~succ:cur_succ ~cost:cost2
                ~on_cycle:(fun x -> raise (E (Cfg.Irreducible { addr = x })))
                h
            in
            let peak =
              ISet.fold
                (fun x acc ->
                  let _, _, pk = Hashtbl.find node_cost x in
                  Float.max acc pk)
                body_cur 0.0
            in
            let merged =
              ISet.fold (fun x acc -> members_of x @ acc) body_cur []
            in
            Hashtbl.replace node_cost h
              (float_of_int n *. iter_e, n * iter_c, peak);
            Hashtbl.replace members h merged;
            List.iter
              (fun x ->
                bump_iters x n;
                Hashtbl.replace repr x h)
              merged;
            ISet.iter
              (fun x -> if x <> h then alive := ISet.remove x !alive)
              body_cur)
          loop_list;
        let entry_cur = find_repr fentry in
        let e, c =
          dag_dp
            ~in_set:(fun s -> ISet.mem s !alive)
            ~succ:cur_succ ~cost:cost2
            ~on_cycle:(fun x -> raise (E (Cfg.Irreducible { addr = x })))
            entry_cur
        in
        let pk =
          ISet.fold
            (fun x acc ->
              let _, _, pk = Hashtbl.find node_cost x in
              Float.max acc pk)
            !alive 0.0
        in
        (e, c, pk)
      in
      (* Call-graph DFS from the program entry, callees summarized first;
         a gray function means recursion. *)
      let summaries = Hashtbl.create 4 in
      let on_stack = Hashtbl.create 4 in
      let rec summary_of f =
        match Hashtbl.find_opt summaries f with
        | Some s -> s
        | None ->
          if Hashtbl.mem on_stack f then raise (E (Cfg.Recursive_call { addr = f }));
          Hashtbl.replace on_stack f ();
          let s = summarize f ~callee_summary:summary_of in
          Hashtbl.remove on_stack f;
          Hashtbl.replace summaries f s;
          s
      in
      let prog_e, prog_c, prog_pk = summary_of cfg.Cfg.c_entry in
      let boot =
        match Hashtbl.find_opt costs cfg.Cfg.c_entry with
        | Some c -> c
        | None -> cost_of cfg.Cfg.c_entry
      in
      let rows =
        Hashtbl.fold
          (fun start (c : Blockchar.cost) acc ->
            let b = block_of start in
            {
              r_start = start;
              r_limit = b.Cfg.b_limit;
              r_label = Cfg.terminator_to_string b.Cfg.b_term;
              r_insns = List.length b.Cfg.b_insns;
              r_iters = Option.value ~default:1 (Hashtbl.find_opt iters start);
              r_cycles = c.Blockchar.cycles;
              r_peak_w = c.Blockchar.peak_w;
              r_energy_j = c.Blockchar.energy_j;
              r_cached = c.Blockchar.from_cache;
            }
            :: acc)
          costs []
        |> List.sort (fun a b -> compare a.r_start b.r_start)
      in
      Ok
        {
          s_name = name;
          s_peak_power_w = Float.max prog_pk boot.Blockchar.boot_peak_w;
          s_peak_energy_j = prog_e +. boot.Blockchar.boot_energy_j;
          s_cycle_bound = prog_c + boot.Blockchar.boot_cycles;
          s_blocks = Hashtbl.length costs;
          s_loops = !n_loops;
          s_cached_blocks =
            Hashtbl.fold
              (fun _ (c : Blockchar.cost) acc ->
                if c.Blockchar.from_cache then acc + 1 else acc)
              costs 0;
          s_rows = rows;
        }
    with E e -> Error e)

(* {1 Rendering} *)

let to_table t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "static bound (%s): peak power %.3f mW, peak energy %.3f nJ over %d \
        cycles\n"
       t.s_name
       (t.s_peak_power_w *. 1e3)
       (t.s_peak_energy_j *. 1e9)
       t.s_cycle_bound);
  Buffer.add_string buf
    (Printf.sprintf "blocks %d (%d cached), loops %d\n" t.s_blocks
       t.s_cached_blocks t.s_loops);
  Buffer.add_string buf
    " start   limit  insns  iters  cycles  peak mW  energy nJ  terminator\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "0x%04x  0x%04x  %5d  %5d  %6d  %7.3f  %9.3f  %s\n"
           r.r_start r.r_limit r.r_insns r.r_iters r.r_cycles
           (r.r_peak_w *. 1e3)
           (r.r_energy_j *. 1e9)
           r.r_label))
    t.s_rows;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\": \"%s\", \"tier\": \"static\", \"peak_power_w\": %.9g, \
        \"peak_energy_j\": %.9g, \"cycle_bound\": %d, \"blocks\": %d, \
        \"loops\": %d, \"cached_blocks\": %d, \"rows\": ["
       (json_escape t.s_name) t.s_peak_power_w t.s_peak_energy_j t.s_cycle_bound
       t.s_blocks t.s_loops t.s_cached_blocks);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"start\": %d, \"limit\": %d, \"insns\": %d, \"iters\": %d, \
            \"cycles\": %d, \"peak_w\": %.9g, \"energy_j\": %.9g, \"cached\": \
            %b, \"terminator\": \"%s\"}"
           r.r_start r.r_limit r.r_insns r.r_iters r.r_cycles r.r_peak_w
           r.r_energy_j r.r_cached (json_escape r.r_label)))
    t.s_rows;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "start,limit,insns,iters,cycles,peak_w,energy_j,cached,terminator\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "0x%04x,0x%04x,%d,%d,%d,%.9g,%.9g,%b,%s\n" r.r_start
           r.r_limit r.r_insns r.r_iters r.r_cycles r.r_peak_w r.r_energy_j
           r.r_cached r.r_label))
    t.s_rows;
  Buffer.contents buf
