(** Control-flow graph extraction from an assembled binary.

    A decode worklist walks the image from the entry point using the
    {!Isa.Insn} decoder, splitting code into basic blocks at jumps,
    conditional branches and calls. Every control transfer in the
    MSP430 subset carries a literal target after decoding, so the CFG
    is exact — except for indirect branches (a computed write to the
    PC, or a CALL through a register), which the static tier rejects
    with a typed error rather than guessing. *)

type terminator =
  | T_jump of int  (** unconditional jump to a block start *)
  | T_branch of { taken : int; fallthrough : int }  (** conditional *)
  | T_call of { callee : int; link : int }
      (** CALL #imm; [link] is the return address the matching RET
          resumes at *)
  | T_ret  (** MOV @SP+, PC (RET) or RETI *)
  | T_halt  (** the [_halt] self-jump: end of the application *)
  | T_fallthrough of int
      (** the block was split because the next address is a leader *)

type block = {
  b_start : int;
  b_limit : int;  (** first address past the block *)
  b_insns : (int * Isa.Insn.instr) list;  (** (address, instruction) *)
  b_term : terminator;
}

type t = {
  c_entry : int;
  c_blocks : block list;  (** sorted by [b_start] *)
}

(** Why the static tier cannot bound a program. [Recursive_call] and
    [Irreducible] are detected by the IPET combiner ({!Ipet}) but live
    here so the whole static pipeline shares one error type. *)
type error =
  | Indirect_branch of { addr : int; insn : string }
      (** a computed control transfer: target not statically known *)
  | Bad_decode of { addr : int; word : int }
      (** reachable code that does not decode *)
  | Recursive_call of { addr : int }
      (** cycle in the call graph through the function at [addr] *)
  | Irreducible of { addr : int }
      (** a cycle that is not a natural loop: no unique header to
          attach the loop bound to *)

val error_to_string : error -> string

val extract : Isa.Asm.image -> (t, error) result

val block_at : t -> int -> block option

(** Intra-procedural successor block starts ([T_call] contributes its
    link, not the callee; [T_ret]/[T_halt] none). *)
val successors : block -> int list

val terminator_to_string : terminator -> string
