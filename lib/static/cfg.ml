(* CFG extraction by decode worklist. See cfg.mli. *)

type terminator =
  | T_jump of int
  | T_branch of { taken : int; fallthrough : int }
  | T_call of { callee : int; link : int }
  | T_ret
  | T_halt
  | T_fallthrough of int

type block = {
  b_start : int;
  b_limit : int;
  b_insns : (int * Isa.Insn.instr) list;
  b_term : terminator;
}

type t = { c_entry : int; c_blocks : block list }

type error =
  | Indirect_branch of { addr : int; insn : string }
  | Bad_decode of { addr : int; word : int }
  | Recursive_call of { addr : int }
  | Irreducible of { addr : int }

let error_to_string = function
  | Indirect_branch { addr; insn } ->
    Printf.sprintf "indirect branch at 0x%04x (%s): target not statically known"
      addr insn
  | Bad_decode { addr; word } ->
    Printf.sprintf "reachable word 0x%04x at 0x%04x does not decode" word addr
  | Recursive_call { addr } ->
    Printf.sprintf "recursive call through function at 0x%04x" addr
  | Irreducible { addr } ->
    Printf.sprintf "irreducible control flow around 0x%04x (no natural loop header)"
      addr

let terminator_to_string = function
  | T_jump t -> Printf.sprintf "jmp 0x%04x" t
  | T_branch { taken; fallthrough } ->
    Printf.sprintf "branch 0x%04x / 0x%04x" taken fallthrough
  | T_call { callee; link } -> Printf.sprintf "call 0x%04x -> 0x%04x" callee link
  | T_ret -> "ret"
  | T_halt -> "halt"
  | T_fallthrough n -> Printf.sprintf "fall 0x%04x" n

exception Err of error

(* Classification of one decoded instruction: either it falls through,
   or it ends the block. Decoded instructions carry [Lit] values only,
   so every well-formed transfer has a literal target. *)
let classify addr (d : Isa.Insn.decoded) ~next =
  let indirect () =
    raise (Err (Indirect_branch { addr; insn = Isa.Insn.to_string d.Isa.Insn.instr }))
  in
  match d.Isa.Insn.instr with
  | Isa.Insn.J (Isa.Insn.JMP, Isa.Insn.Lit t) ->
    Some (if t = addr then T_halt else T_jump t)
  | Isa.Insn.J (_, Isa.Insn.Lit t) -> Some (T_branch { taken = t; fallthrough = next })
  | Isa.Insn.J (_, _) -> indirect ()
  | Isa.Insn.I1 (Isa.Insn.MOV, Isa.Insn.S_ind_inc r, Isa.Insn.D_reg 0)
    when r = Isa.Insn.sp ->
    Some T_ret
  | Isa.Insn.RETI -> Some T_ret
  | Isa.Insn.I1 (op, _, Isa.Insn.D_reg 0) when Isa.Insn.op1_writes_dst op ->
    indirect ()
  | Isa.Insn.I2 (Isa.Insn.CALL, Isa.Insn.S_imm (Isa.Insn.Lit t)) ->
    Some (T_call { callee = t; link = next })
  | Isa.Insn.I2 (Isa.Insn.CALL, _) -> indirect ()
  | _ -> None

let extract (img : Isa.Asm.image) =
  let word_at = Hashtbl.create 256 in
  List.iter (fun (a, w) -> Hashtbl.replace word_at a w) img.Isa.Asm.words;
  let decode_at a =
    match Hashtbl.find_opt word_at a with
    | None -> raise (Err (Bad_decode { addr = a; word = 0 }))
    | Some w -> (
      let ext k = Option.value ~default:0 (Hashtbl.find_opt word_at (a + (2 * k))) in
      match Isa.Insn.decode w ~ext1:(ext 1) ~ext2:(ext 2) ~pc:a with
      | d ->
        let have_exts =
          List.for_all
            (fun k -> Hashtbl.mem word_at (a + (2 * k)))
            (List.init d.Isa.Insn.n_ext (fun k -> k + 1))
        in
        if have_exts then d else raise (Err (Bad_decode { addr = a; word = w }))
      | exception Isa.Insn.Decode_error w ->
        raise (Err (Bad_decode { addr = a; word = w })))
  in
  match
    let insns = Hashtbl.create 256 in
    let leaders = Hashtbl.create 64 in
    let work = Queue.create () in
    let mark_leader a =
      if not (Hashtbl.mem leaders a) then begin
        Hashtbl.replace leaders a ();
        Queue.add a work
      end
    in
    mark_leader img.Isa.Asm.entry_addr;
    let enqueue a = if not (Hashtbl.mem insns a) then Queue.add a work in
    while not (Queue.is_empty work) do
      let a = Queue.pop work in
      if not (Hashtbl.mem insns a) then begin
        let d = decode_at a in
        let next = a + (2 * (d.Isa.Insn.n_ext + 1)) in
        let cls = classify a d ~next in
        Hashtbl.replace insns a (d, cls);
        match cls with
        | None -> enqueue next
        | Some T_halt | Some T_ret -> ()
        | Some (T_jump t) -> mark_leader t
        | Some (T_branch { taken; fallthrough }) ->
          mark_leader taken;
          mark_leader fallthrough
        | Some (T_call { callee; link }) ->
          mark_leader callee;
          mark_leader link
        | Some (T_fallthrough _) -> assert false
      end
    done;
    (* A block per leader: follow the fall-through chain until a
       terminator or the next leader. *)
    let starts =
      Hashtbl.fold (fun a () acc -> a :: acc) leaders [] |> List.sort compare
    in
    let block_of start =
      let rec go a acc =
        let d, cls = Hashtbl.find insns a in
        let next = a + (2 * (d.Isa.Insn.n_ext + 1)) in
        let acc = (a, d.Isa.Insn.instr) :: acc in
        match cls with
        | Some term ->
          { b_start = start; b_limit = next; b_insns = List.rev acc; b_term = term }
        | None ->
          if Hashtbl.mem leaders next then
            {
              b_start = start;
              b_limit = next;
              b_insns = List.rev acc;
              b_term = T_fallthrough next;
            }
          else go next acc
      in
      go start []
    in
    { c_entry = img.Isa.Asm.entry_addr; c_blocks = List.map block_of starts }
  with
  | cfg -> Ok cfg
  | exception Err e -> Error e

let block_at t addr = List.find_opt (fun b -> b.b_start = addr) t.c_blocks

let successors b =
  match b.b_term with
  | T_jump t -> [ t ]
  | T_branch { taken; fallthrough } -> [ taken; fallthrough ]
  | T_call { link; _ } -> [ link ]
  | T_fallthrough n -> [ n ]
  | T_ret | T_halt -> []
