(** The static-tier combiner: whole-program bounds from per-block costs.

    An ILP-free rendition of implicit path enumeration: the CFG is
    partitioned into functions (call-graph processed bottom-up, so a
    call block absorbs its callee's summary), natural loops are detected
    from dominators and collapsed innermost-first into supernodes whose
    cost is [loop_bound + 1] times the worst iteration, and the
    resulting DAG is solved by longest-path dynamic programming — once
    maximizing energy, once maximizing cycles. The peak-power bound is
    simply the maximum per-cycle bound over every reachable block.

    Soundness: every concrete execution maps to a path in the collapsed
    DAG whose energy/cycle totals dominate it, because (a) block costs
    are upper bounds from the all-X entry state, (b) the exact tier's
    per-state revisit budget never exceeds [loop_bound] iterations while
    the DP charges [loop_bound + 1], and (c) fork arms are maximized
    independently. The static bound therefore always dominates the exact
    bound for the same [loop_bound]. *)

type row = {
  r_start : int;
  r_limit : int;
  r_label : string;  (** terminator, for provenance display *)
  r_insns : int;
  r_iters : int;  (** execution-count multiplier from enclosing loops *)
  r_cycles : int;  (** worst-case cycles of one execution *)
  r_peak_w : float;
  r_energy_j : float;
  r_cached : bool;  (** characterization served from the block cache *)
}

type t = {
  s_name : string;
  s_peak_power_w : float;
  s_peak_energy_j : float;
  s_cycle_bound : int;
  s_blocks : int;
  s_loops : int;
  s_cached_blocks : int;
  s_rows : row list;  (** sorted by [r_start] *)
}

(** [analyze ~loop_bound pa cpu img] — extract the CFG, characterize
    every reachable block, and combine. [Error] carries the CFG or
    structure defect that makes the program statically unboundable. May
    raise {!Gatesim.Sym.Path_limit} if a single block fails to converge.

    [pool] defaults to the ambient {!Parallel.auto} pool; reachable
    blocks are characterized as independent pool tasks (results merged
    by block start, so the output is bit-identical at any job count).
    [specialize] (default on) selects the engines' specialized gate
    programs; bounds are bit-identical either way. *)
val analyze :
  ?cache:Cache.t ->
  ?pool:Parallel.Pool.t ->
  ?specialize:bool ->
  ?name:string ->
  loop_bound:int ->
  Poweran.t ->
  Cpu.t ->
  Isa.Asm.image ->
  (t, Cfg.error) result

val to_table : t -> string
val to_json : t -> string
val to_csv : t -> string
