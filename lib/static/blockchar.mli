(** Per-basic-block peak-power / energy characterization.

    Each block is analyzed in isolation by booting the processor with the
    reset vector re-pointed at the block start
    ({!Core.Analyze.run_fragment}): every register, the status register
    and all of RAM are X, so the block's cost is an upper bound over
    every machine state the block can actually be entered in (ternary
    simulation is monotone in X). The symbolic run ends at the first
    fetch outside [[b_start, b_limit)] — or as soon as the FSM state or
    the fetch PC goes X, which only happens past a ret-style terminator.

    The boot prefix (RESET/VECTOR cycles before the first fetch) is
    reported separately: the IPET combiner charges it once at the
    program entry, not per block.

    Results are content-addressed in {!Cache} under the ["block"]
    namespace, keyed on the netlist, the power context, the image words
    and the block extent — so re-analyzing a program (or any program
    sharing the image) reuses block characterizations. *)

type cost = {
  peak_w : float;  (** highest per-cycle maximized power in the block *)
  energy_j : float;  (** worst-case energy of one execution *)
  cycles : int;  (** worst-case cycle count of one execution *)
  boot_peak_w : float;
  boot_energy_j : float;
  boot_cycles : int;
  from_cache : bool;
}

(** Version component of every ["block"] cache key; bump when the
    characterization semantics change. *)
val static_version : int

(** The ["block"] cache namespace. *)
val cache_ns : string

(** End-of-fragment predicate for a block (exposed for tests). *)
val is_end_of_block : Cfg.block -> Gatesim.Trace.cycle -> bool

(** [characterize pa cpu img b] — the cost of one execution of [b] from
    the conservative all-X entry state. May raise
    {!Gatesim.Sym.Path_limit} if the block's symbolic exploration does
    not converge within the (generous) fragment limits. [specialize]
    (default on) selects the engine's specialized gate program; costs
    are bit-identical either way, so it does not enter the cache key. *)
val characterize :
  ?cache:Cache.t ->
  ?pool:Parallel.Pool.t ->
  ?specialize:bool ->
  ?max_cycles_per_path:int ->
  ?max_paths:int ->
  Poweran.t ->
  Cpu.t ->
  Isa.Asm.image ->
  Cfg.block ->
  cost
