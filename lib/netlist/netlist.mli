(** Gate-level netlist intermediate representation.

    A netlist is a flat array of gates; each gate drives exactly one net
    and the gate's index {e is} the net id. State elements are single-clock
    D flip-flops ([Dff]); synchronous enables and resets are built from
    muxes by the {!Rtl} layer. Every gate carries a module tag
    (e.g. ["exec_unit"], ["multiplier"]) used for per-module power
    breakdowns (paper, Fig. 3.6). *)

type cell =
  | Input  (** primary input; value driven externally each cycle *)
  | Const of Tri.t
  | Buf
  | Inv
  | And2
  | Or2
  | Nand2
  | Nor2
  | Xor2
  | Xnor2
  | Mux2  (** fanins [[|sel; a; b|]]: [a] when [sel=0], [b] when [sel=1] *)
  | Dff  (** fanins [[|d|]]; output updates to [d] at the clock edge *)
  | Dffe
      (** fanins [[|en; d|]]; loads [d] when [en]=1, holds when [en]=0.
          Holds are first-class (not a mux back to the output) so the
          symbolic activity analysis can see that a held unknown value
          cannot toggle. *)

val cell_name : cell -> string
val cell_arity : cell -> int
val is_sequential : cell -> bool

type gate = {
  id : int;  (** equals the driven net id *)
  cell : cell;
  fanins : int array;
  module_id : int;
}

type t = private {
  gates : gate array;
  module_names : string array;
  net_names : (string * int) list;  (** probe name -> net id *)
  topo : int array;
      (** combinational gates, fanins-first order, partitioned by logic
          level (see {!field-level_starts}); ids ascend within a level *)
  dffs : int array;
  inputs : int array;
  fanouts : int array array;  (** per net: ids of gates reading it *)
  levels : int array;
      (** logic level per gate: 0 for sources (inputs, constants,
          flops), [1 + max fanin level] for combinational gates *)
  level_starts : int array;
      (** level [l]'s combinational gates are
          [topo.(level_starts.(l)) .. topo.(level_starts.(l+1) - 1)];
          length is [level_count + 1] *)
}

val gate_count : t -> int
val dff_count : t -> int

(** Number of logic levels (deepest combinational level + 1). *)
val level_count : t -> int
val find_net : t -> string -> int

(** [module_of nl id] is the module name of gate [id]. *)
val module_of : t -> int -> string

exception Combinational_loop of int list

(** {1 Building}

    A mutable builder; [freeze] levelizes and checks the design.
    Raises {!Combinational_loop} (with a witness cycle) if a
    combinational path feeds back on itself. *)

module Builder : sig
  type netlist = t
  type t

  val create : unit -> t

  (** [set_module b name] makes [name] the module tag for subsequently
      added gates. *)
  val set_module : t -> string -> unit

  val add_input : t -> int
  val add_const : t -> Tri.t -> int

  (** [add_gate b cell fanins] returns the new net id. Fanin net ids may
      be forward references only for [Dff] data inputs — combinational
      fanins must already exist. [Dff] data inputs may be patched later
      with [set_dff_input]. *)
  val add_gate : t -> cell -> int array -> int

  (** [add_dff b] creates a flip-flop with a dangling data input, to be
      connected with [set_dff_input] (needed for feedback paths such as
      the PC). *)
  val add_dff : t -> int

  (** [add_dffe b] creates an enable-flop with dangling enable and data
      inputs, to be connected with [set_dffe_inputs]. *)
  val add_dffe : t -> int

  val set_dff_input : t -> int -> int -> unit
  val set_dffe_inputs : t -> int -> en:int -> d:int -> unit

  val name_net : t -> string -> int -> unit
  val freeze : t -> netlist
end

(** {1 Statistics} *)

module Stats : sig
  type counts = {
    total : int;
    sequential : int;
    combinational : int;
    by_cell : (string * int) list;
    by_module : (string * int) list;
  }

  val compute : t -> counts
  val pp : Format.formatter -> counts -> unit
end

(** {1 Application-specific constant analysis}

    A ternary reset-protocol simulation plus a greatest-fixpoint
    demotion loop computes an {e inductively invariant} partial value
    vector: every "folded" net is proven to hold a definite constant
    from the moment the real simulation reaches a state agreeing with
    the vector (with reset deasserted) — for any values on the remaining
    inputs, by Kleene monotonicity. Folded nets contribute zero
    switching activity; their leakage stays in the power model's base
    power. The result depends only on the netlist and the reset
    protocol, not on the program image, so it is computed once per
    netlist and shared across analyses. *)
module Specialize : sig
  type netlist = t
  type t

  (** [compute ?pre ?settle nl ~reset] — simulate [pre] cycles with
      [reset] asserted then [settle] cycles deasserted (matching the
      driver's reset sequence), extract fold candidates, and demote to
      the greatest inductive fixpoint. [reset] must be an [Input] net.
      O(cycles · gates). *)
  val compute : ?pre:int -> ?settle:int -> netlist -> reset:int -> t

  val netlist : t -> netlist

  (** Nets proven constant (all kinds, including [Const] cells, the
      reset input and folded flops). *)
  val folded_count : t -> int

  (** Folded combinational gates — the ones the specialized engine
      program drops. *)
  val folded_comb : t -> int

  (** Folded combinational gates whose entire fanout is also folded
      (a fully dead cone; reported as a statistic). *)
  val swept : t -> int

  val is_folded : t -> int -> bool

  (** Invariant value of a net as a {!Tri.I} code; [Tri.I.x] when the
      net is not folded. *)
  val code : t -> int -> int

  (** Folded flops, packed [(dff_index lsl 2) lor code] — the engine
    verifies these against its pending flop values before switching to
    the specialized program. *)
  val folded_dffs : t -> int array
end
