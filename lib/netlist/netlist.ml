type cell =
  | Input
  | Const of Tri.t
  | Buf
  | Inv
  | And2
  | Or2
  | Nand2
  | Nor2
  | Xor2
  | Xnor2
  | Mux2
  | Dff
  | Dffe

let cell_name = function
  | Input -> "input"
  | Const Tri.Zero -> "const0"
  | Const Tri.One -> "const1"
  | Const Tri.X -> "constx"
  | Buf -> "buf"
  | Inv -> "inv"
  | And2 -> "and2"
  | Or2 -> "or2"
  | Nand2 -> "nand2"
  | Nor2 -> "nor2"
  | Xor2 -> "xor2"
  | Xnor2 -> "xnor2"
  | Mux2 -> "mux2"
  | Dff -> "dff"
  | Dffe -> "dffe"

let cell_arity = function
  | Input | Const _ -> 0
  | Buf | Inv | Dff -> 1
  | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 | Dffe -> 2
  | Mux2 -> 3

let is_sequential = function
  | Dff | Dffe -> true
  | Input | Const _ | Buf | Inv | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2
  | Mux2 ->
    false

type gate = { id : int; cell : cell; fanins : int array; module_id : int }

type t = {
  gates : gate array;
  module_names : string array;
  net_names : (string * int) list;
  topo : int array;
  dffs : int array;
  inputs : int array;
  fanouts : int array array;
  levels : int array;
  level_starts : int array;
}

let level_count nl = Array.length nl.level_starts - 1

let gate_count nl = Array.length nl.gates
let dff_count nl = Array.length nl.dffs

let find_net nl name =
  match List.assoc_opt name nl.net_names with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Netlist.find_net: no net %S" name)

let module_of nl id = nl.module_names.(nl.gates.(id).module_id)

exception Combinational_loop of int list

module Builder = struct
  type netlist = t

  type pending = {
    mutable p_cell : cell;
    mutable p_fanins : int array;
    p_module : int;
  }

  type t = {
    mutable rev_gates : pending list;
    mutable by_id : pending array;
    mutable count : int;
    mutable modules : string list;  (* reversed *)
    mutable module_count : int;
    mutable current_module : int;
    mutable names : (string * int) list;
  }

  let create () =
    {
      rev_gates = [];
      by_id = [||];
      count = 0;
      modules = [ "top" ];
      module_count = 1;
      current_module = 0;
      names = [];
    }

  let set_module b name =
    let rec find i = function
      | [] -> None
      | m :: _ when String.equal m name -> Some (b.module_count - 1 - i)
      | _ :: rest -> find (i + 1) rest
    in
    match find 0 b.modules with
    | Some id -> b.current_module <- id
    | None ->
      b.modules <- name :: b.modules;
      b.current_module <- b.module_count;
      b.module_count <- b.module_count + 1

  let push b p =
    b.rev_gates <- p :: b.rev_gates;
    let id = b.count in
    b.count <- id + 1;
    id

  let add_raw b cell fanins =
    push b { p_cell = cell; p_fanins = fanins; p_module = b.current_module }

  let add_input b = add_raw b Input [||]
  let add_const b v = add_raw b (Const v) [||]

  let add_gate b cell fanins =
    let arity = cell_arity cell in
    if Array.length fanins <> arity then
      invalid_arg
        (Printf.sprintf "Netlist.Builder.add_gate: %s expects %d fanins, got %d"
           (cell_name cell) arity (Array.length fanins));
    if not (is_sequential cell) then
      Array.iter
        (fun f ->
          if f < 0 || f >= b.count then
            invalid_arg
              (Printf.sprintf
                 "Netlist.Builder.add_gate: forward combinational fanin %d" f))
        fanins;
    add_raw b cell fanins

  let add_dff b = add_raw b Dff [| -1 |]
  let add_dffe b = add_raw b Dffe [| -1; -1 |]

  let finalize_ids b =
    if Array.length b.by_id <> b.count then
      b.by_id <- Array.of_list (List.rev b.rev_gates)

  let set_dff_input b dff d =
    finalize_ids b;
    if dff < 0 || dff >= b.count then invalid_arg "set_dff_input: bad dff id";
    let p = b.by_id.(dff) in
    (match p.p_cell with
    | Dff -> ()
    | _ -> invalid_arg "set_dff_input: target is not a dff");
    p.p_fanins <- [| d |]

  let set_dffe_inputs b dff ~en ~d =
    finalize_ids b;
    if dff < 0 || dff >= b.count then invalid_arg "set_dffe_inputs: bad dff id";
    let p = b.by_id.(dff) in
    (match p.p_cell with
    | Dffe -> ()
    | _ -> invalid_arg "set_dffe_inputs: target is not a dffe");
    p.p_fanins <- [| en; d |]

  let name_net b name id =
    if id < 0 || id >= b.count then invalid_arg "name_net: bad net id";
    b.names <- (name, id) :: b.names

  let freeze b =
    finalize_ids b;
    let n = b.count in
    let gates =
      Array.mapi
        (fun id p ->
          Array.iter
            (fun f ->
              if f < 0 || f >= n then
                invalid_arg
                  (Printf.sprintf "Netlist.freeze: gate %d has dangling fanin"
                     id))
            p.p_fanins;
          { id; cell = p.p_cell; fanins = p.p_fanins; module_id = p.p_module })
        b.by_id
    in
    let module_names =
      let arr = Array.of_list (List.rev b.modules) in
      arr
    in
    (* Topological sort of combinational gates; Dff/Input/Const are
       sources whose values exist before combinational evaluation. *)
    let state = Array.make n 0 (* 0 unvisited, 1 in progress, 2 done *) in
    let order = ref [] in
    let rec visit id stack =
      match state.(id) with
      | 2 -> ()
      | 1 -> raise (Combinational_loop (id :: stack))
      | _ ->
        let g = gates.(id) in
        if is_sequential g.cell || g.cell = Input then state.(id) <- 2
        else begin
          state.(id) <- 1;
          Array.iter (fun f -> visit f (id :: stack)) g.fanins;
          state.(id) <- 2;
          match g.cell with
          | Const _ | Input | Dff | Dffe -> ()
          | Buf | Inv | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 | Mux2 ->
            order := id :: !order
        end
    in
    for id = 0 to n - 1 do
      visit id []
    done;
    let ncomb = List.length !order in
    (* Logic levels: sources (inputs, constants, flops) are level 0; a
       combinational gate sits one level past its deepest fanin. Ids are
       dependency-ordered for combinational gates (the builder rejects
       forward combinational fanins), so one ascending pass suffices. *)
    let levels = Array.make n 0 in
    let max_level = ref 0 in
    for id = 0 to n - 1 do
      let g = gates.(id) in
      match g.cell with
      | Input | Const _ | Dff | Dffe -> ()
      | Buf | Inv | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 | Mux2 ->
        let lv =
          Array.fold_left (fun m f -> max m (levels.(f) + 1)) 1 g.fanins
        in
        levels.(id) <- lv;
        if lv > !max_level then max_level := lv
    done;
    (* The evaluation order is partitioned by level (counting sort, ids
       ascending within a level) — still a valid topological order, and
       the compiled simulation kernel relies on the partitioning to keep
       its dirty bits clustered. [level_starts] has [max_level + 2]
       entries: level [l]'s combinational gates are
       [topo.(level_starts.(l)) .. topo.(level_starts.(l+1) - 1)]
       (levels 0 holds no combinational gate, so its range is empty). *)
    let level_starts = Array.make (!max_level + 2) 0 in
    for id = 0 to n - 1 do
      if levels.(id) > 0 then
        level_starts.(levels.(id) + 1) <- level_starts.(levels.(id) + 1) + 1
    done;
    for l = 1 to !max_level + 1 do
      level_starts.(l) <- level_starts.(l) + level_starts.(l - 1)
    done;
    let topo = Array.make ncomb 0 in
    let fill_pos = Array.copy level_starts in
    for id = 0 to n - 1 do
      if levels.(id) > 0 then begin
        topo.(fill_pos.(levels.(id))) <- id;
        fill_pos.(levels.(id)) <- fill_pos.(levels.(id)) + 1
      end
    done;
    let dffs =
      Array.of_seq
        (Seq.filter
           (fun id -> match gates.(id).cell with Dff | Dffe -> true | _ -> false)
           (Seq.init n (fun i -> i)))
    in
    let inputs =
      Array.of_seq
        (Seq.filter (fun id -> gates.(id).cell = Input)
           (Seq.init n (fun i -> i)))
    in
    let fanout_counts = Array.make n 0 in
    Array.iter
      (fun g ->
        Array.iter (fun f -> fanout_counts.(f) <- fanout_counts.(f) + 1) g.fanins)
      gates;
    let fanouts = Array.map (fun c -> Array.make c 0) fanout_counts in
    let fill = Array.make n 0 in
    Array.iter
      (fun g ->
        Array.iter
          (fun f ->
            fanouts.(f).(fill.(f)) <- g.id;
            fill.(f) <- fill.(f) + 1)
          g.fanins)
      gates;
    {
      gates;
      module_names;
      net_names = b.names;
      topo;
      dffs;
      inputs;
      fanouts;
      levels;
      level_starts;
    }
end

module Stats = struct
  type counts = {
    total : int;
    sequential : int;
    combinational : int;
    by_cell : (string * int) list;
    by_module : (string * int) list;
  }

  let bump tbl key =
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

  let compute nl =
    let cells = Hashtbl.create 16 and mods = Hashtbl.create 16 in
    let seq = ref 0 in
    Array.iter
      (fun g ->
        bump cells (cell_name g.cell);
        bump mods nl.module_names.(g.module_id);
        if is_sequential g.cell then incr seq)
      nl.gates;
    let sorted tbl =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    {
      total = Array.length nl.gates;
      sequential = !seq;
      combinational = Array.length nl.gates - !seq;
      by_cell = sorted cells;
      by_module = sorted mods;
    }

  let pp fmt c =
    Format.fprintf fmt "gates: %d (%d seq, %d comb)@." c.total c.sequential
      c.combinational;
    Format.fprintf fmt "by cell:@.";
    List.iter (fun (k, v) -> Format.fprintf fmt "  %-8s %6d@." k v) c.by_cell;
    Format.fprintf fmt "by module:@.";
    List.iter (fun (k, v) -> Format.fprintf fmt "  %-14s %6d@." k v) c.by_module
end

(* Application-specific constant analysis over the reset protocol.

   A ternary model of the netlist is simulated through the driver's
   reset sequence — every input X except reset, memory read data X (a
   sound over-approximation of the bus keeper), [pre] cycles with reset
   asserted, [settle] cycles deasserted — and every flop whose settled
   value equals its own pending next-state value becomes a fold
   *candidate*. A greatest-fixpoint demotion loop then re-evaluates the
   model from "candidates at their settled codes, everything else X,
   reset deasserted" and demotes any candidate whose next-state no
   longer reproduces its code, until the candidate set is inductively
   invariant: once the real simulation reaches a state agreeing with the
   final vector on every folded net (with reset held low), Kleene
   monotonicity guarantees it agrees forever, for *any* values on the
   remaining inputs. Every net definite in the final vector — constants,
   the reset input, surviving candidate flops and the combinational cone
   they pin — is "folded": provably invariant, hence contributing zero
   switching activity from that point on. *)
module Specialize = struct
  type netlist = t

  type t = {
    nl : netlist;
    codes : int array;  (* per net: Tri.I code of the invariant value *)
    folded_plane : int array;  (* bit-plane over net ids *)
    folded_count : int;
    folded_comb : int;
    folded_dffs : int array;  (* packed (dff_index lsl 2) lor code *)
    swept : int;
  }

  let netlist t = t.nl
  let folded_count t = t.folded_count
  let folded_comb t = t.folded_comb
  let swept t = t.swept
  let folded_dffs t = t.folded_dffs
  let code t id = t.codes.(id)

  let is_folded t id =
    (t.folded_plane.(id lsr 5) lsr (id land 31)) land 1 = 1

  let eval_cell cell (codes : int array) (f : int array) =
    let open Tri.I in
    match cell with
    | Buf -> codes.(f.(0))
    | Inv -> lnot codes.(f.(0))
    | And2 -> land_ codes.(f.(0)) codes.(f.(1))
    | Or2 -> lor_ codes.(f.(0)) codes.(f.(1))
    | Nand2 -> lnand codes.(f.(0)) codes.(f.(1))
    | Nor2 -> lnor codes.(f.(0)) codes.(f.(1))
    | Xor2 -> lxor_ codes.(f.(0)) codes.(f.(1))
    | Xnor2 -> lxnor codes.(f.(0)) codes.(f.(1))
    | Mux2 -> mux codes.(f.(0)) codes.(f.(1)) codes.(f.(2))
    | Input | Const _ | Dff | Dffe -> assert false

  let compute ?(pre = 2) ?(settle = 3) nl ~reset =
    (match nl.gates.(reset).cell with
    | Input -> ()
    | _ -> invalid_arg "Netlist.Specialize.compute: reset is not an input");
    let n = Array.length nl.gates in
    let ndffs = Array.length nl.dffs in
    let x = Tri.I.x in
    let codes = Array.make n x in
    let dnext = Array.make ndffs x in
    let seed_consts () =
      Array.iter
        (fun g ->
          match g.cell with
          | Const c -> codes.(g.id) <- Tri.to_int c
          | _ -> ())
        nl.gates
    in
    seed_consts ();
    let eval_comb () =
      Array.iter
        (fun id ->
          let g = nl.gates.(id) in
          codes.(id) <- eval_cell g.cell codes g.fanins)
        nl.topo
    in
    let compute_dnext () =
      Array.iteri
        (fun i id ->
          let g = nl.gates.(id) in
          dnext.(i) <-
            (match g.cell with
            | Dff -> codes.(g.fanins.(0))
            | Dffe ->
              Tri.I.mux codes.(g.fanins.(0)) codes.(id) codes.(g.fanins.(1))
            | _ -> assert false))
        nl.dffs
    in
    (* One protocol cycle, mirroring the engine: clock edge, external
       drives (reset at [rst], everything else X), settle, pending
       next-state. *)
    let cycle rst =
      Array.iteri (fun i id -> codes.(id) <- dnext.(i)) nl.dffs;
      Array.iter (fun id -> codes.(id) <- x) nl.inputs;
      codes.(reset) <- rst;
      eval_comb ();
      compute_dnext ()
    in
    for _ = 1 to pre do
      cycle 1
    done;
    for _ = 1 to settle do
      cycle 0
    done;
    let settled = Array.copy codes in
    let cand = Array.make ndffs false in
    Array.iteri
      (fun i id -> cand.(i) <- settled.(id) <> x && dnext.(i) = settled.(id))
      nl.dffs;
    (* Greatest-fixpoint demotion: candidates must reproduce their codes
       from the trial state alone. *)
    let changed = ref true in
    while !changed do
      changed := false;
      Array.fill codes 0 n x;
      seed_consts ();
      Array.iteri
        (fun i id -> if cand.(i) then codes.(id) <- settled.(id))
        nl.dffs;
      codes.(reset) <- Tri.I.zero;
      eval_comb ();
      compute_dnext ();
      Array.iteri
        (fun i id ->
          if cand.(i) && dnext.(i) <> settled.(id) then begin
            cand.(i) <- false;
            changed := true
          end)
        nl.dffs
    done;
    (* [codes] now holds the final (inductively invariant) vector. *)
    let folded_plane = Array.make ((n + 31) lsr 5) 0 in
    let folded_count = ref 0 in
    for id = 0 to n - 1 do
      if codes.(id) <> x then begin
        folded_plane.(id lsr 5) <-
          folded_plane.(id lsr 5) lor (1 lsl (id land 31));
        incr folded_count
      end
    done;
    let is_f id = (folded_plane.(id lsr 5) lsr (id land 31)) land 1 = 1 in
    let folded_comb = ref 0 in
    let swept = ref 0 in
    Array.iter
      (fun id ->
        if is_f id then begin
          incr folded_comb;
          if Array.for_all is_f nl.fanouts.(id) then incr swept
        end)
      nl.topo;
    let folded_dffs =
      Array.of_seq
        (Seq.filter_map
           (fun i ->
             let id = nl.dffs.(i) in
             if is_f id then Some ((i lsl 2) lor codes.(id)) else None)
           (Seq.init ndffs (fun i -> i)))
    in
    {
      nl;
      codes;
      folded_plane;
      folded_count = !folded_count;
      folded_comb = !folded_comb;
      folded_dffs;
      swept = !swept;
    }
end
