(** Bound provenance: why the peak power/energy bound is what it is.

    The paper's X-based bound is actionable because peak power is pinned
    to specific cycles (the cycles of interest), the instructions in
    flight there, and the modules that switch — that attribution is what
    the Section 5 peak-power software optimizations steer by. This
    module assembles it into one report:

    - per-COI attribution: module-level power breakdown (which sums,
      exactly, to that cycle's bounded power), the gate-class split, and
      the executing/fetching instructions;
    - execution-tree observability: per-cycle X-density, fork/merge
      counts and seen-set statistics from Algorithm 1 ({!Core.Treestat});
    - the analysis phase timings / counter deltas when telemetry was on.

    Exporters: a human-readable table, JSON (everything, including the
    density series), and CSV (the per-COI module attribution rows). *)

type coi_report = {
  cycle_index : int;
  power_w : float;  (** this cycle's bounded power *)
  share_of_peak : float;  (** [power_w /. peak_power_w] *)
  state : string;  (** FSM state name *)
  pc : int option;
  exec : string;  (** executing instruction *)
  fetching : string option;  (** on FETCH cycles: the incoming one *)
  modules : (string * float) list;  (** per-module W, descending *)
  classes : (string * float) list;  (** per gate-class W, descending *)
}

type tree_obs = {
  nets : int;
  segments : int;
  fork_nodes : int;
  seen_edges : int;  (** merges into already-explored states *)
  end_paths : int;
  distinct_states : int;  (** Algorithm 1 seen-set cardinality *)
  max_path_cycles : int;
  paths : int;  (** from {!Gatesim.Sym.stats} *)
  forks : int;
  dedup_hits : int;  (** line-19 seen-state cuts *)
  total_cycles : int;
  x_density : float array;  (** per flattened cycle *)
  x_density_mean : float;
  x_density_max : float;
  x_density_at_peak : float;  (** density at the peaking cycle *)
}

type t = {
  program : string;
  peak_power_w : float;
  peak_index : int;
  peak_energy_j : float;
  peak_energy_cycles : int;
  npe_j_per_cycle : float;
  cois : coi_report list;
  tree : tree_obs;
  phases : (string * float) list;  (** [[]] when telemetry was off *)
  counters : (string * int) list;
}

(** [build ~name pa analysis] — assemble the report. [top]/[min_gap]
    select the cycles of interest as in {!Core.Analyze.cois} (default
    4 / 5); [phases]/[counters] attach the per-call telemetry deltas
    when the caller has them. [folded] (typically
    {!Core.Analyze.folded_pred}) relabels proven-constant gates into a
    ["constant"] class in each COI's class split — sums are unchanged;
    pass it regardless of the engine's specialization mode so reports
    are identical either way. *)
val build :
  ?top:int ->
  ?min_gap:int ->
  ?phases:(string * float) list ->
  ?counters:(string * int) list ->
  ?folded:(int -> bool) ->
  name:string ->
  Poweran.t ->
  Core.Analyze.t ->
  t

(** Largest-first prefix of a COI's module attribution (default 3). *)
val top_modules : ?n:int -> coi_report -> (string * float) list

(** Human-readable report. Each COI block ends with the attribution sum
    next to the cycle's bounded power (they agree to rounding). *)
val to_table : t -> string

val to_json : t -> Ejson.t
val to_json_string : t -> string

(** One row per (COI, module):
    [program,coi_cycle,power_mw,module,module_mw,share]. *)
val to_csv : t -> string
