(* Bench-record parsing and tolerance-based comparison. See
   regress.mli. *)

type record = {
  label : string;
  timestamp : string option;
  jobs : int option;
  results : (string * float) list;
  phases : (string * float) list;
  cache_cold_s : float option;
  cache_warm_s : float option;
  cache_speedup : float option;
  parallel_jobs : int option;
  parallel_speedup : float option;
  static_gap_pct : (string * float) list;
}

let of_json ?(label = "<json>") j =
  match j with
  | Ejson.Obj _ ->
    let results =
      match Option.bind (Ejson.member "results" j) Ejson.to_list with
      | None -> []
      | Some entries ->
        List.filter_map
          (fun e ->
            match
              (Ejson.string_member "name" e, Ejson.float_member "ns_per_run" e)
            with
            | Some n, Some ns -> Some (n, ns)
            | _ -> None)
          entries
    in
    let phases =
      match Ejson.member "phases" j with
      | Some (Ejson.Obj kvs) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Ejson.to_float v))
          kvs
      | _ -> []
    in
    let cache k =
      Option.bind (Ejson.member "cache" j) (Ejson.float_member k)
    in
    let static_gap_pct =
      match Ejson.member "static_gap_pct" j with
      | Some (Ejson.Obj kvs) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun g -> (k, g)) (Ejson.to_float v))
          kvs
      | _ -> []
    in
    Ok
      {
        label;
        timestamp = Ejson.string_member "timestamp" j;
        jobs = Option.map int_of_float (Ejson.float_member "jobs" j);
        results;
        phases;
        cache_cold_s = cache "cold_s";
        cache_warm_s = cache "warm_s";
        cache_speedup = cache "speedup";
        parallel_jobs =
          Option.map int_of_float (Ejson.float_member "parallel_jobs" j);
        parallel_speedup = Ejson.float_member "parallel_speedup" j;
        static_gap_pct;
      }
  | _ -> Error (label ^ ": bench record is not a JSON object")

let last_nonempty_line text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> function
  | [] -> None
  | ls -> Some (List.nth ls (List.length ls - 1))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text -> (
    let doc =
      if Filename.check_suffix path ".jsonl" then last_nonempty_line text
      else Some text
    in
    match doc with
    | None -> Error (path ^ ": empty history file")
    | Some doc -> (
      match Ejson.parse doc with
      | j -> of_json ~label:path j
      | exception Ejson.Parse_error m -> Error (path ^ ": " ^ m)))

let to_history_json r =
  let opt_num = function Some f -> Ejson.Num f | None -> Ejson.Null in
  Ejson.Obj
    [
      ( "timestamp",
        match r.timestamp with Some t -> Ejson.Str t | None -> Ejson.Null );
      ("jobs", opt_num (Option.map float_of_int r.jobs));
      ( "results",
        Ejson.Arr
          (List.map
             (fun (n, ns) ->
               Ejson.Obj
                 [ ("name", Ejson.Str n); ("ns_per_run", Ejson.Num ns) ])
             r.results) );
      ("phases", Ejson.Obj (List.map (fun (k, s) -> (k, Ejson.Num s)) r.phases));
      ( "cache",
        Ejson.Obj
          [
            ("cold_s", opt_num r.cache_cold_s);
            ("warm_s", opt_num r.cache_warm_s);
            ("speedup", opt_num r.cache_speedup);
          ] );
      ("parallel_jobs", opt_num (Option.map float_of_int r.parallel_jobs));
      ("parallel_speedup", opt_num r.parallel_speedup);
      ( "static_gap_pct",
        Ejson.Obj
          (List.map (fun (k, g) -> (k, Ejson.Num g)) r.static_gap_pct) );
    ]

(* ---------------- comparison ---------------- *)

type delta = {
  metric : string;
  base : float;
  cur : float;
  pct : float;
  regression : bool;
}

(* [slow_is_high]: ns/run and phase seconds regress upward; cache
   speedup regresses downward. [pct] is normalized so positive always
   means "changed in the slow direction". *)
let delta_of ~tolerance_pct ~slow_is_high metric base cur =
  let pct =
    if base <> 0. then
      100. *. (if slow_is_high then cur -. base else base -. cur) /. base
    else 0.
  in
  { metric; base; cur; pct; regression = pct > tolerance_pct }

let compare_records ?(min_phase_s = 1e-3) ~tolerance_pct ~base ~cur () =
  let paired names_of r0 r1 =
    List.filter_map
      (fun (n, v0) ->
        Option.map (fun v1 -> (n, v0, v1)) (List.assoc_opt n r1))
      (names_of r0)
  in
  let results =
    List.map
      (fun (n, v0, v1) ->
        delta_of ~tolerance_pct ~slow_is_high:true ("ns_per_run:" ^ n) v0 v1)
      (paired (fun r -> r.results) base cur.results)
  in
  let phases =
    List.filter_map
      (fun (n, v0, v1) ->
        if v0 < min_phase_s && v1 < min_phase_s then None
        else
          Some
            (delta_of ~tolerance_pct ~slow_is_high:true ("phase_s:" ^ n) v0 v1))
      (paired (fun r -> r.phases) base cur.phases)
  in
  let cache =
    match (base.cache_speedup, cur.cache_speedup) with
    | Some v0, Some v1 ->
      [ delta_of ~tolerance_pct ~slow_is_high:false "cache.speedup" v0 v1 ]
    | _ -> []
  in
  (* Only comparable when both records measured the same job count. *)
  let par =
    match
      (base.parallel_speedup, cur.parallel_speedup, base.parallel_jobs,
       cur.parallel_jobs)
    with
    | Some v0, Some v1, j0, j1 when j0 = j1 ->
      [ delta_of ~tolerance_pct ~slow_is_high:false "parallel.speedup" v0 v1 ]
    | _ -> []
  in
  (* Bound-quality metric: the static tier drifting looser (gap growing)
     regresses like a slowdown. Deterministic, so same-code runs diff at
     exactly 0%. *)
  let gaps =
    List.map
      (fun (n, v0, v1) ->
        delta_of ~tolerance_pct ~slow_is_high:true ("static_gap_pct:" ^ n) v0
          v1)
      (paired (fun r -> r.static_gap_pct) base cur.static_gap_pct)
  in
  List.sort
    (fun a b -> Float.compare b.pct a.pct)
    (results @ phases @ cache @ par @ gaps)

let regressions = List.filter (fun d -> d.regression)

(* Substring match on the full metric name, so a gate can name a family
   ("symbolic-analysis" covers the -j1 variant too) or a single row. *)
let metric_matches ~gates metric =
  gates = []
  || List.exists
       (fun g ->
         let lg = String.length g and lm = String.length metric in
         let rec scan i = i + lg <= lm && (String.sub metric i lg = g || scan (i + 1)) in
         lg > 0 && scan 0)
       gates

let gated ~gates deltas =
  List.filter (fun d -> metric_matches ~gates d.metric) (regressions deltas)

let to_table ~tolerance_pct deltas =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-36s %14s %14s %9s\n" "metric" "base" "current" "change");
  List.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf "%-36s %14.4g %14.4g %+8.1f%%%s\n" d.metric d.base
           d.cur d.pct
           (if d.regression then "  REGRESSION" else "")))
    deltas;
  let n = List.length (regressions deltas) in
  Buffer.add_string b
    (if n = 0 then
       Printf.sprintf "no regression beyond %.0f%% tolerance (%d metrics)\n"
         tolerance_pct (List.length deltas)
     else
       Printf.sprintf "%d regression%s beyond %.0f%% tolerance (%d metrics)\n" n
         (if n = 1 then "" else "s")
         tolerance_pct (List.length deltas));
  Buffer.contents b
