(* Minimal JSON values: just enough for the explain exporters and for
   parsing our own BENCH_micro.json / BENCH_history.jsonl records. No
   external dependency, no streaming — the documents involved are a few
   kilobytes. Numbers are floats (like JavaScript); object member order
   is preserved on print so emitted documents are deterministic. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------------- printing ---------------- *)

let escape s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest representation that parses back to the same float, so
   emitted records (bench history, explain reports) lose no precision. *)
let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

(* [indent = None] prints the whole value on one line — the JSONL
   flavour BENCH_history.jsonl needs. *)
let to_string ?indent v =
  let b = Buffer.create 256 in
  let nl depth =
    match indent with
    | None -> ()
    | Some w ->
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (w * depth) ' ')
  in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num f -> Buffer.add_string b (number_to_string f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Arr [] -> Buffer.add_string b "[]"
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",";
          nl (depth + 1);
          go (depth + 1) x)
        xs;
      nl depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",";
          nl (depth + 1);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          go (depth + 1) x)
        kvs;
      nl depth;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* ---------------- parsing ---------------- *)

let parse text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && text.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let w = String.length word in
    if !pos + w <= n && String.sub text !pos w = word then begin
      pos := !pos + w;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
        if !pos >= n then fail "unterminated escape";
        let e = text.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub text !pos 4) in
          pos := !pos + 4;
          (* non-ASCII code points are kept as '?' — our documents are
             ASCII, this is only for robustness *)
          Buffer.add_char b (if code < 0x80 then Char.chr code else '?')
        | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let acc = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          acc := parse_value () :: !acc;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !acc)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let acc = ref [ member () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          acc := member () :: !acc;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !acc)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_opt text =
  match parse text with v -> Some v | exception Parse_error _ -> None

(* ---------------- accessors ---------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None

let float_member k v = Option.bind (member k v) to_float
let string_member k v = Option.bind (member k v) to_str
