(* Bound-provenance report: per-COI attribution + execution-tree
   observability + telemetry deltas. See report.mli. *)

type coi_report = {
  cycle_index : int;
  power_w : float;
  share_of_peak : float;
  state : string;
  pc : int option;
  exec : string;
  fetching : string option;
  modules : (string * float) list;
  classes : (string * float) list;
}

type tree_obs = {
  nets : int;
  segments : int;
  fork_nodes : int;
  seen_edges : int;
  end_paths : int;
  distinct_states : int;
  max_path_cycles : int;
  paths : int;
  forks : int;
  dedup_hits : int;
  total_cycles : int;
  x_density : float array;
  x_density_mean : float;
  x_density_max : float;
  x_density_at_peak : float;
}

type t = {
  program : string;
  peak_power_w : float;
  peak_index : int;
  peak_energy_j : float;
  peak_energy_cycles : int;
  npe_j_per_cycle : float;
  cois : coi_report list;
  tree : tree_obs;
  phases : (string * float) list;
  counters : (string * int) list;
}

let by_power_desc (_, a) (_, b) = Float.compare b a

let coi_of ?folded pa peak (c : Core.Coi.t) cycle =
  {
    cycle_index = c.Core.Coi.cycle_index;
    power_w = c.Core.Coi.power;
    share_of_peak = (if peak > 0. then c.Core.Coi.power /. peak else 0.);
    state = c.Core.Coi.state_name;
    pc = c.Core.Coi.pc;
    exec = c.Core.Coi.instr_text;
    fetching = c.Core.Coi.fetching_text;
    modules = List.sort by_power_desc c.Core.Coi.breakdown;
    classes =
      List.sort by_power_desc
        (Poweran.class_breakdown ?folded pa ~mode:`Max cycle);
  }

let build ?(top = 4) ?(min_gap = 5) ?(phases = []) ?(counters = []) ?folded
    ~name pa (a : Core.Analyze.t) =
  Telemetry.span "explain" @@ fun () ->
  let peak = a.Core.Analyze.peak_power in
  let cois =
    List.map
      (fun (c : Core.Coi.t) ->
        coi_of ?folded pa peak c
          a.Core.Analyze.flattened.(c.Core.Coi.cycle_index))
      (Core.Analyze.cois ~top ~min_gap pa a)
  in
  let ts = Core.Treestat.compute a.Core.Analyze.tree in
  let mean, mx = Core.Treestat.density_stats ts in
  let st = a.Core.Analyze.sym_stats in
  let at_peak =
    let d = ts.Core.Treestat.x_density in
    if a.Core.Analyze.peak_index < Array.length d then
      d.(a.Core.Analyze.peak_index)
    else 0.
  in
  let pe = a.Core.Analyze.peak_energy in
  {
    program = name;
    peak_power_w = peak;
    peak_index = a.Core.Analyze.peak_index;
    peak_energy_j = pe.Core.Peak_energy.energy;
    peak_energy_cycles = pe.Core.Peak_energy.cycles;
    npe_j_per_cycle = pe.Core.Peak_energy.npe;
    cois;
    tree =
      {
        nets = ts.Core.Treestat.nets;
        segments = ts.Core.Treestat.segments;
        fork_nodes = ts.Core.Treestat.fork_nodes;
        seen_edges = ts.Core.Treestat.seen_edges;
        end_paths = ts.Core.Treestat.end_paths;
        distinct_states = ts.Core.Treestat.distinct_states;
        max_path_cycles = ts.Core.Treestat.max_path_cycles;
        paths = st.Gatesim.Sym.paths;
        forks = st.Gatesim.Sym.forks;
        dedup_hits = st.Gatesim.Sym.dedup_hits;
        total_cycles = st.Gatesim.Sym.total_cycles;
        x_density = ts.Core.Treestat.x_density;
        x_density_mean = mean;
        x_density_max = mx;
        x_density_at_peak = at_peak;
      };
    phases;
    counters;
  }

let top_modules ?(n = 3) c =
  List.filteri (fun i _ -> i < n) c.modules

(* ---------------- table ---------------- *)

let mw w = w *. 1e3

let to_table t =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "bound provenance: %s\n" t.program;
  pf "peak power bound:  %.4f mW at cycle %d of %d\n" (mw t.peak_power_w)
    t.peak_index t.tree.total_cycles;
  pf "peak energy bound: %.3f nJ over %d cycles (%.2f pJ/cycle)\n"
    (t.peak_energy_j *. 1e9) t.peak_energy_cycles
    (t.npe_j_per_cycle *. 1e12);
  pf "\nexecution tree (Algorithm 1):\n";
  pf "  %d paths (%d ended, %d merged into seen states), %d forks\n"
    t.tree.paths t.tree.end_paths t.tree.seen_edges t.tree.forks;
  pf "  %d segments, %d distinct states in the seen-set, %d dedup cuts\n"
    t.tree.segments t.tree.distinct_states t.tree.dedup_hits;
  pf "  longest path %d cycles, %d recorded cycles over %d nets\n"
    t.tree.max_path_cycles t.tree.total_cycles t.tree.nets;
  pf "  X-density: mean %.3f, max %.3f, at peak cycle %.3f\n"
    t.tree.x_density_mean t.tree.x_density_max t.tree.x_density_at_peak;
  List.iter
    (fun c ->
      pf "\nCOI cycle %d: %.4f mW (%.1f%% of peak)  %-9s pc=%s\n" c.cycle_index
        (mw c.power_w)
        (100. *. c.share_of_peak)
        c.state
        (match c.pc with Some p -> Printf.sprintf "0x%04x" p | None -> "x");
      pf "  exec: %s%s\n" c.exec
        (match c.fetching with
        | Some f -> "   fetching: " ^ f
        | None -> "");
      pf "  %-14s %10s %7s\n" "module" "mW" "share";
      List.iter
        (fun (m, p) ->
          pf "  %-14s %10.4f %6.1f%%\n" m (mw p)
            (if c.power_w > 0. then 100. *. p /. c.power_w else 0.))
        c.modules;
      let sum = List.fold_left (fun acc (_, p) -> acc +. p) 0. c.modules in
      pf "  %-14s %10.4f (cycle power %.4f mW, residual %.2f%%)\n" "sum"
        (mw sum) (mw c.power_w)
        (if c.power_w > 0. then 100. *. Float.abs (sum -. c.power_w) /. c.power_w
         else 0.);
      pf "  gate classes: %s\n"
        (String.concat ", "
           (List.filteri
              (fun i _ -> i < 4)
              (List.map
                 (fun (k, p) -> Printf.sprintf "%s %.4f mW" k (mw p))
                 c.classes))))
    t.cois;
  if t.phases <> [] then begin
    pf "\nphases (s):";
    List.iter (fun (p, s) -> pf " %s=%.4f" p s) t.phases;
    pf "\n"
  end;
  if t.counters <> [] then begin
    pf "counters:";
    List.iter (fun (c, v) -> pf " %s=%d" c v) t.counters;
    pf "\n"
  end;
  Buffer.contents b

(* ---------------- JSON ---------------- *)

let json_power_list l =
  Ejson.Arr
    (List.map
       (fun (name, w) ->
         Ejson.Obj [ ("name", Ejson.Str name); ("power_w", Ejson.Num w) ])
       l)

let to_json t =
  let coi c =
    Ejson.Obj
      [
        ("cycle", Ejson.Num (float_of_int c.cycle_index));
        ("power_w", Ejson.Num c.power_w);
        ("share_of_peak", Ejson.Num c.share_of_peak);
        ("state", Ejson.Str c.state);
        ( "pc",
          match c.pc with
          | Some p -> Ejson.Str (Printf.sprintf "0x%04x" p)
          | None -> Ejson.Null );
        ("exec", Ejson.Str c.exec);
        ( "fetching",
          match c.fetching with Some f -> Ejson.Str f | None -> Ejson.Null );
        ("modules", json_power_list c.modules);
        ("classes", json_power_list c.classes);
      ]
  in
  Ejson.Obj
    [
      ("program", Ejson.Str t.program);
      ("peak_power_w", Ejson.Num t.peak_power_w);
      ("peak_index", Ejson.Num (float_of_int t.peak_index));
      ("peak_energy_j", Ejson.Num t.peak_energy_j);
      ("peak_energy_cycles", Ejson.Num (float_of_int t.peak_energy_cycles));
      ("npe_j_per_cycle", Ejson.Num t.npe_j_per_cycle);
      ("cois", Ejson.Arr (List.map coi t.cois));
      ( "tree",
        Ejson.Obj
          [
            ("nets", Ejson.Num (float_of_int t.tree.nets));
            ("segments", Ejson.Num (float_of_int t.tree.segments));
            ("fork_nodes", Ejson.Num (float_of_int t.tree.fork_nodes));
            ("seen_edges", Ejson.Num (float_of_int t.tree.seen_edges));
            ("end_paths", Ejson.Num (float_of_int t.tree.end_paths));
            ( "distinct_states",
              Ejson.Num (float_of_int t.tree.distinct_states) );
            ( "max_path_cycles",
              Ejson.Num (float_of_int t.tree.max_path_cycles) );
            ("paths", Ejson.Num (float_of_int t.tree.paths));
            ("forks", Ejson.Num (float_of_int t.tree.forks));
            ("dedup_hits", Ejson.Num (float_of_int t.tree.dedup_hits));
            ("total_cycles", Ejson.Num (float_of_int t.tree.total_cycles));
            ("x_density_mean", Ejson.Num t.tree.x_density_mean);
            ("x_density_max", Ejson.Num t.tree.x_density_max);
            ("x_density_at_peak", Ejson.Num t.tree.x_density_at_peak);
            ( "x_density",
              Ejson.Arr
                (Array.to_list
                   (Array.map (fun d -> Ejson.Num d) t.tree.x_density)) );
          ] );
      ( "phases_s",
        Ejson.Obj (List.map (fun (p, s) -> (p, Ejson.Num s)) t.phases) );
      ( "counters",
        Ejson.Obj
          (List.map (fun (c, v) -> (c, Ejson.Num (float_of_int v))) t.counters)
      );
    ]

let to_json_string t = Ejson.to_string ~indent:2 (to_json t)

(* ---------------- CSV ---------------- *)

let to_csv t =
  let b = Buffer.create 512 in
  Buffer.add_string b "program,coi_cycle,power_mw,module,module_mw,share\n";
  List.iter
    (fun c ->
      List.iter
        (fun (m, p) ->
          Buffer.add_string b
            (Printf.sprintf "%s,%d,%.6f,%s,%.6f,%.4f\n" t.program
               c.cycle_index (mw c.power_w) m (mw p)
               (if c.power_w > 0. then p /. c.power_w else 0.)))
        c.modules)
    t.cois;
  Buffer.contents b
