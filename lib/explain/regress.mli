(** Bench-record comparison: the regression gate over
    [BENCH_micro.json] / [BENCH_history.jsonl].

    A {!record} is the machine-readable output of [bench micro]
    (per-benchmark ns/run, per-phase seconds, cache cold/warm timing).
    {!compare_records} diffs two of them metric by metric with a
    percentage tolerance: slower ns/run, slower phases, or a lower
    cache speedup beyond the tolerance is a regression. The CI
    workflow runs it against the committed baseline (warn-only), and
    the test suite checks an injected regression is detected. *)

type record = {
  label : string;  (** file path or timestamp, for messages *)
  timestamp : string option;
  jobs : int option;
  results : (string * float) list;  (** benchmark name -> ns/run *)
  phases : (string * float) list;  (** phase name -> seconds *)
  cache_cold_s : float option;
  cache_warm_s : float option;
  cache_speedup : float option;
  parallel_jobs : int option;
      (** worker count of the [-jN] symbolic row, for cross-machine
          comparability of [parallel_speedup] *)
  parallel_speedup : float option;
      (** symbolic-analysis ns/run at -j1 divided by -jN (higher is
          better); regresses downward, like [cache_speedup] *)
  static_gap_pct : (string * float) list;
      (** benchmark name -> static-tier peak-energy gap over the exact
          bound, percent; a growing gap (looser static bound) regresses
          upward *)
}

val of_json : ?label:string -> Ejson.t -> (record, string) result

(** [load path] — parse a bench record file. A [.jsonl] history file
    yields its last (most recent) record. *)
val load : string -> (record, string) result

(** The single-line history flavour; includes the timestamp. *)
val to_history_json : record -> Ejson.t

type delta = {
  metric : string;  (** e.g. ["ns_per_run:symbolic-analysis-tea8"] *)
  base : float;
  cur : float;
  pct : float;  (** signed; positive = changed in the slow direction *)
  regression : bool;  (** [pct > tolerance] *)
}

(** Metrics present in both records only. [min_phase_s] (default 1 ms)
    drops phases too short to measure — smoke-quota noise, not signal. *)
val compare_records :
  ?min_phase_s:float ->
  tolerance_pct:float ->
  base:record ->
  cur:record ->
  unit ->
  delta list

val regressions : delta list -> delta list

(** [gated ~gates deltas] — the regressions whose metric name contains
    one of the [gates] substrings (e.g. ["symbolic-analysis"] matches
    both [ns_per_run:symbolic-analysis-tea8] and its [-j1] variant).
    With [gates = []] every regression gates — the ungated behaviour. *)
val gated : gates:string list -> delta list -> delta list

(** Human-readable comparison, worst first, regressions flagged. *)
val to_table : tolerance_pct:float -> delta list -> string
