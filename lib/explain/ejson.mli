(** Minimal JSON values — enough for the explain exporters and for
    parsing our own bench records ([BENCH_micro.json],
    [BENCH_history.jsonl]). Numbers are floats; object member order is
    preserved on print, so emitted documents are deterministic. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(** [to_string ?indent v] — without [indent] the whole value is printed
    on one line (the JSONL flavour); with [indent] it is pretty-printed
    with that many spaces per level. *)
val to_string : ?indent:int -> t -> string

(** Raises {!Parse_error} on malformed input (with an offset). *)
val parse : string -> t

val parse_opt : string -> t option

(** {1 Accessors} — all total, [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
val float_member : string -> t -> float option
val string_member : string -> t -> string option
