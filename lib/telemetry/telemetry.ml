(* Ambient, domain-safe telemetry: spans into per-domain buffers,
   process-wide atomic counters and histograms, Chrome trace-event
   export. See telemetry.mli for the contract.

   Lock discipline: the only mutex is per-sink and is taken once per
   (domain, sink) pair, when the domain's buffer is first registered.
   Recording an event is a cons onto a domain-private list; counters and
   histogram buckets are single atomic RMWs. Every instrumentation site
   is behind one atomic load of the ambient sink, so disabled telemetry
   costs exactly that load. *)

type event = {
  name : string;
  cat : string;
  tid : int;
  ts_ns : int64;
  dur_ns : int64;
  depth : int;
}

(* One per (domain, sink): domain-private, so no lock on record. *)
type buffer = {
  tid : int;
  mutable evs : event list;
  mutable depth : int;
}

type t = {
  id : int;
  origin : int64;  (* monotonic ns at creation *)
  m : Mutex.t;
  mutable buffers : buffer list;
  main_tid : int;
}

let ids = Atomic.make 0

let create () =
  {
    id = Atomic.fetch_and_add ids 1;
    origin = Monotonic_clock.now ();
    m = Mutex.create ();
    buffers = [];
    main_tid = (Domain.self () :> int);
  }

let now_ns () = Monotonic_clock.now ()

let the_ambient : t option Atomic.t = Atomic.make None
let ambient () = Atomic.get the_ambient
let set_ambient s = Atomic.set the_ambient s
let enabled () = Atomic.get the_ambient <> None

let with_ambient s f =
  let prev = Atomic.get the_ambient in
  Atomic.set the_ambient (Some s);
  Fun.protect ~finally:(fun () -> Atomic.set the_ambient prev) f

(* sink id -> buffer, per domain (a domain can record into several
   sinks over its lifetime). *)
let buffers_key : (int * buffer) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let buffer_for t =
  let r = Domain.DLS.get buffers_key in
  match List.assq_opt t.id !r with
  | Some b -> b
  | None ->
    let b = { tid = (Domain.self () :> int); evs = []; depth = 0 } in
    r := (t.id, b) :: !r;
    Mutex.lock t.m;
    t.buffers <- b :: t.buffers;
    Mutex.unlock t.m;
    b

let span ?(cat = "phase") name f =
  match Atomic.get the_ambient with
  | None -> f ()
  | Some t ->
    let buf = buffer_for t in
    let t0 = Monotonic_clock.now () in
    buf.depth <- buf.depth + 1;
    let depth = buf.depth in
    Fun.protect f ~finally:(fun () ->
        let t1 = Monotonic_clock.now () in
        buf.depth <- buf.depth - 1;
        buf.evs <-
          {
            name;
            cat;
            tid = buf.tid;
            ts_ns = Int64.sub t0 t.origin;
            dur_ns = Int64.sub t1 t0;
            depth;
          }
          :: buf.evs)

let events t =
  Mutex.lock t.m;
  let bufs = t.buffers in
  Mutex.unlock t.m;
  List.concat_map (fun b -> b.evs) bufs
  |> List.sort (fun a b ->
         match Int64.compare a.ts_ns b.ts_ns with
         | 0 -> compare (a.tid, a.depth) (b.tid, b.depth)
         | c -> c)

(* ---------------- counters ---------------- *)

module Counter = struct
  type c = { cname : string; v : int Atomic.t }

  let registry : (string, c) Hashtbl.t = Hashtbl.create 32
  let rm = Mutex.create ()

  let make cname =
    Mutex.lock rm;
    let c =
      match Hashtbl.find_opt registry cname with
      | Some c -> c
      | None ->
        let c = { cname; v = Atomic.make 0 } in
        Hashtbl.add registry cname c;
        c
    in
    Mutex.unlock rm;
    c

  let incr c = if enabled () then Atomic.incr c.v
  let add c n = if enabled () then ignore (Atomic.fetch_and_add c.v n)
  let value c = Atomic.get c.v
  let name c = c.cname
end

let counters () =
  Mutex.lock Counter.rm;
  let l =
    Hashtbl.fold
      (fun name c acc -> (name, Atomic.get c.Counter.v) :: acc)
      Counter.registry []
  in
  Mutex.unlock Counter.rm;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let diff ~before ~after =
  List.filter_map
    (fun (name, v) ->
      let v0 = Option.value (List.assoc_opt name before) ~default:0 in
      if v - v0 <> 0 then Some (name, v - v0) else None)
    after

(* ---------------- histograms ---------------- *)

module Histogram = struct
  type h = {
    hname : string;
    bucket : int Atomic.t array;  (* index = log2 of the observation *)
    count : int Atomic.t;
    sum_ns : int Atomic.t;
    max_ns : int Atomic.t;
  }

  let registry : (string, h) Hashtbl.t = Hashtbl.create 16
  let rm = Mutex.create ()

  let make hname =
    Mutex.lock rm;
    let h =
      match Hashtbl.find_opt registry hname with
      | Some h -> h
      | None ->
        let h =
          {
            hname;
            bucket = Array.init 64 (fun _ -> Atomic.make 0);
            count = Atomic.make 0;
            sum_ns = Atomic.make 0;
            max_ns = Atomic.make 0;
          }
        in
        Hashtbl.add registry hname h;
        h
    in
    Mutex.unlock rm;
    h

  let log2i n =
    let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
    go 0 n

  let rec store_max a v =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then store_max a v

  let observe h ns =
    if enabled () then begin
      let n = Int64.to_int (Int64.max 0L ns) in
      Atomic.incr h.bucket.(log2i n);
      Atomic.incr h.count;
      ignore (Atomic.fetch_and_add h.sum_ns n);
      store_max h.max_ns n
    end

  let totals h =
    ( Atomic.get h.count,
      Int64.of_int (Atomic.get h.sum_ns),
      Int64.of_int (Atomic.get h.max_ns) )

  let buckets h =
    let acc = ref [] in
    for i = Array.length h.bucket - 1 downto 0 do
      let n = Atomic.get h.bucket.(i) in
      if n > 0 then acc := (Int64.shift_left 1L i, n) :: !acc
    done;
    !acc

  (* Upper edge of the bucket containing the q-quantile observation,
     clamped to the recorded maximum — an upper bound on the true
     percentile, tight to within the bucket's 2x resolution. *)
  let percentile h q =
    let total = Atomic.get h.count in
    if total = 0 then 0L
    else begin
      let rank =
        max 1 (int_of_float (Float.round (q *. float_of_int total)))
      in
      let i = ref 0 and seen = ref 0 in
      while
        !i < Array.length h.bucket
        &&
        (seen := !seen + Atomic.get h.bucket.(!i);
         !seen < rank)
      do
        incr i
      done;
      let upper =
        if !i >= 62 then Int64.max_int
        else Int64.sub (Int64.shift_left 1L (!i + 1)) 1L
      in
      Int64.min upper (Int64.of_int (Atomic.get h.max_ns))
    end

  let all () =
    Mutex.lock rm;
    let l = Hashtbl.fold (fun _ h acc -> h :: acc) registry [] in
    Mutex.unlock rm;
    List.sort (fun a b -> String.compare a.hname b.hname) l
end

(* ---------------- export ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us ns = Int64.to_float ns /. 1e3

(* Chrome trace-event format (the JSON-array flavour inside an object):
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU *)
let to_chrome_json t =
  let evs = events t in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [\n";
  let tids =
    List.sort_uniq compare
      (t.main_tid :: List.map (fun (e : event) -> e.tid) evs)
  in
  List.iter
    (fun tid ->
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": \
            %d, \"args\": {\"name\": \"%s\"}},\n"
           tid
           (if tid = t.main_tid then Printf.sprintf "main (domain %d)" tid
            else Printf.sprintf "domain %d" tid)))
    tids;
  let cs = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  let last_ts = ref 0L in
  List.iteri
    (fun i e ->
      let fin = Int64.add e.ts_ns e.dur_ns in
      if fin > !last_ts then last_ts := fin;
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": 1, \
            \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}%s\n"
           (json_escape e.name) (json_escape e.cat) e.tid (us e.ts_ns)
           (us e.dur_ns)
           (if i = List.length evs - 1 && cs = [] then "" else ",")))
    evs;
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": \"%s\", \"cat\": \"counter\", \"ph\": \"C\", \"pid\": \
            1, \"tid\": %d, \"ts\": %.3f, \"args\": {\"value\": %d}}%s\n"
           (json_escape name) t.main_tid (us !last_ts) v
           (if i = List.length cs - 1 then "" else ",")))
    cs;
  Buffer.add_string b "],\n\"displayTimeUnit\": \"ms\",\n\"xboundCounters\": {";
  (* the summary object lists every registered counter, zeros included:
     "pool.spawn": 0 is information (nothing ran in parallel), absence
     is not *)
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s\"%s\": %d" (if i = 0 then "" else ", ")
           (json_escape name) v))
    (counters ());
  Buffer.add_string b "}}\n";
  Buffer.contents b

let write_chrome t ~file =
  Out_channel.with_open_text file (fun oc ->
      output_string oc (to_chrome_json t))

let span_totals ?cat t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if match cat with None -> true | Some c -> String.equal c e.cat then begin
        let s, n =
          Option.value (Hashtbl.find_opt tbl e.name) ~default:(0., 0)
        in
        Hashtbl.replace tbl e.name (s +. (Int64.to_float e.dur_ns /. 1e9), n + 1)
      end)
    (events t);
  Hashtbl.fold (fun name sn acc -> (name, sn) :: acc) tbl []
  |> List.sort (fun (an, (a, _)) (bn, (b, _)) ->
         match compare b a with 0 -> String.compare an bn | c -> c)

let phase_totals t =
  List.map (fun (name, (s, _)) -> (name, s)) (span_totals ~cat:"phase" t)

let tid_busy t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if String.equal e.cat "pool" then
        Hashtbl.replace tbl e.tid
          (Option.value (Hashtbl.find_opt tbl e.tid) ~default:0.
          +. (Int64.to_float e.dur_ns /. 1e9)))
    (events t);
  Hashtbl.fold (fun tid s acc -> (tid, s) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let stats_summary t =
  let b = Buffer.create 1024 in
  let wall = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t.origin) /. 1e9 in
  Buffer.add_string b (Printf.sprintf "telemetry (wall %.3f s)\n" wall);
  (match span_totals t with
  | [] -> ()
  | totals ->
    Buffer.add_string b "  spans (total s, count):\n";
    List.iter
      (fun (name, (s, n)) ->
        Buffer.add_string b (Printf.sprintf "    %-32s %9.4f  %6d\n" name s n))
      totals);
  (match tid_busy t with
  | [] -> ()
  | busy ->
    Buffer.add_string b "  pool busy per domain:\n";
    List.iter
      (fun (tid, s) ->
        Buffer.add_string b
          (Printf.sprintf "    domain %-4d %9.4f s (%.0f%%)\n" tid s
             (if wall > 0. then 100. *. s /. wall else 0.)))
      busy);
  (match List.filter (fun (_, v) -> v <> 0) (counters ()) with
  | [] -> ()
  | cs ->
    Buffer.add_string b "  counters:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string b (Printf.sprintf "    %-32s %d\n" name v))
      cs);
  List.iter
    (fun h ->
      let count, sum, mx = Histogram.totals h in
      if count > 0 then
        Buffer.add_string b
          (Printf.sprintf
             "  histogram %-24s %d obs, mean %.1f us, p50 %.1f us, p99 %.1f \
              us, max %.1f us\n"
             h.Histogram.hname count
             (Int64.to_float sum /. 1e3 /. float_of_int count)
             (Int64.to_float (Histogram.percentile h 0.50) /. 1e3)
             (Int64.to_float (Histogram.percentile h 0.99) /. 1e3)
             (Int64.to_float mx /. 1e3)))
    (Histogram.all ());
  Buffer.contents b
