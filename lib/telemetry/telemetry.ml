(* Ambient, domain-safe telemetry: spans into per-domain buffers,
   process-wide atomic counters/gauges/histograms, request-scoped
   attribution, snapshots and Chrome trace-event / Prometheus export.
   See telemetry.mli for the contract.

   Lock discipline: the per-sink mutex is taken once per (domain, sink)
   pair, when the domain's buffer is first registered. Recording an
   event is a cons onto a domain-private list; counters and histogram
   buckets are single atomic RMWs. Scope attribution adds one atomic
   load per counter increment when no scope is bound anywhere, and a
   short critical section on the scope's own mutex when one is. Every
   instrumentation site is behind one atomic load of the ambient sink,
   so disabled telemetry costs exactly that load. *)

type event = {
  name : string;
  cat : string;
  tid : int;
  ts_ns : int64;
  dur_ns : int64;
  depth : int;
}

(* One per (domain, sink): domain-private, so no lock on record. *)
type buffer = {
  tid : int;
  mutable evs : event list;
  mutable depth : int;
}

type t = {
  id : int;
  origin : int64;  (* monotonic ns at creation *)
  retain_events : bool;
  m : Mutex.t;
  mutable buffers : buffer list;
  main_tid : int;
}

let ids = Atomic.make 0

(* Module-load clock origin: process uptime for snapshots. *)
let process_origin = Monotonic_clock.now ()

let create ?(retain_events = true) () =
  {
    id = Atomic.fetch_and_add ids 1;
    origin = Monotonic_clock.now ();
    retain_events;
    m = Mutex.create ();
    buffers = [];
    main_tid = (Domain.self () :> int);
  }

let now_ns () = Monotonic_clock.now ()

let uptime_s () =
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) process_origin) /. 1e9

let the_ambient : t option Atomic.t = Atomic.make None
let ambient () = Atomic.get the_ambient
let set_ambient s = Atomic.set the_ambient s
let enabled () = Atomic.get the_ambient <> None

let with_ambient s f =
  let prev = Atomic.get the_ambient in
  Atomic.set the_ambient (Some s);
  Fun.protect ~finally:(fun () -> Atomic.set the_ambient prev) f

(* sink id -> buffer, per domain (a domain can record into several
   sinks over its lifetime). *)
let buffers_key : (int * buffer) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let buffer_for t =
  let r = Domain.DLS.get buffers_key in
  match List.assq_opt t.id !r with
  | Some b -> b
  | None ->
    let b = { tid = (Domain.self () :> int); evs = []; depth = 0 } in
    r := (t.id, b) :: !r;
    Mutex.lock t.m;
    t.buffers <- b :: t.buffers;
    Mutex.unlock t.m;
    b

(* Spans currently open across every domain and thread. *)
let active_spans = Atomic.make 0

(* ---------------- shared JSON helpers ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us ns = Int64.to_float ns /. 1e3

(* ---------------- scopes ---------------- *)

module Scope = struct
  type s = {
    sid : string;
    sm : Mutex.t;
    tally_tbl : (string, int) Hashtbl.t;
    mutable sevs : event list;
  }

  (* Number of (thread -> scope) bindings alive anywhere in the
     process: the fast-path gate for counter attribution. *)
  let live = Atomic.make 0

  (* Thread.id -> scope. Keyed on systhread ids, not Domain.DLS: the
     daemon's executor threads share one domain, and pool workers are
     each the main thread of their own domain — thread ids distinguish
     both. *)
  let bindings : (int, s) Hashtbl.t = Hashtbl.create 16
  let bm = Mutex.create ()

  let create ~id =
    { sid = id; sm = Mutex.create (); tally_tbl = Hashtbl.create 16; sevs = [] }

  let id s = s.sid
  let self_id () = Thread.id (Thread.self ())

  let active () =
    if Atomic.get live = 0 then None
    else begin
      let tid = self_id () in
      Mutex.lock bm;
      let r = Hashtbl.find_opt bindings tid in
      Mutex.unlock bm;
      r
    end

  let tally name n =
    if Atomic.get live > 0 then
      match active () with
      | None -> ()
      | Some s ->
        Mutex.lock s.sm;
        Hashtbl.replace s.tally_tbl name
          (Option.value (Hashtbl.find_opt s.tally_tbl name) ~default:0 + n);
        Mutex.unlock s.sm

  let record s e =
    Mutex.lock s.sm;
    s.sevs <- e :: s.sevs;
    Mutex.unlock s.sm

  let set_binding tid so =
    Mutex.lock bm;
    let had = Hashtbl.mem bindings tid in
    (match so with
    | Some s ->
      Hashtbl.replace bindings tid s;
      if not had then Atomic.incr live
    | None ->
      if had then begin
        Hashtbl.remove bindings tid;
        Atomic.decr live
      end);
    Mutex.unlock bm

  let with_binding so f =
    match (so, Atomic.get live) with
    | None, 0 -> f ()
    | _ ->
      let tid = self_id () in
      Mutex.lock bm;
      let prev = Hashtbl.find_opt bindings tid in
      Mutex.unlock bm;
      set_binding tid so;
      Fun.protect f ~finally:(fun () -> set_binding tid prev)

  let with_scope s f = with_binding (Some s) f

  let counter_deltas s =
    Mutex.lock s.sm;
    let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.tally_tbl [] in
    Mutex.unlock s.sm;
    List.sort (fun (a, _) (b, _) -> String.compare a b) l

  let events s =
    Mutex.lock s.sm;
    let evs = s.sevs in
    Mutex.unlock s.sm;
    List.sort
      (fun a b ->
        match Int64.compare a.ts_ns b.ts_ns with
        | 0 -> compare (a.tid, a.depth) (b.tid, b.depth)
        | c -> c)
      evs

  let phase_totals s =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun e ->
        if String.equal e.cat "phase" then
          Hashtbl.replace tbl e.name
            (Option.value (Hashtbl.find_opt tbl e.name) ~default:0.
            +. (Int64.to_float e.dur_ns /. 1e9)))
      (events s);
    Hashtbl.fold (fun name sec acc -> (name, sec) :: acc) tbl []
    |> List.sort (fun (an, a) (bn, b) ->
           match compare b a with 0 -> String.compare an bn | c -> c)

  (* A per-request Chrome trace: the scope's spans plus its counter
     deltas, self-contained enough for chrome://tracing. *)
  let to_chrome_json s =
    let evs = events s in
    let cs = counter_deltas s in
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\"traceEvents\": [\n";
    List.iteri
      (fun i e ->
        Buffer.add_string b
          (Printf.sprintf
             "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": 1, \
              \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}%s\n"
             (json_escape e.name) (json_escape e.cat) e.tid (us e.ts_ns)
             (us e.dur_ns)
             (if i = List.length evs - 1 then "" else ",")))
      evs;
    Buffer.add_string b "],\n\"displayTimeUnit\": \"ms\",\n";
    Buffer.add_string b
      (Printf.sprintf "\"xboundRequest\": \"%s\",\n\"xboundCounters\": {"
         (json_escape s.sid));
    List.iteri
      (fun i (name, v) ->
        Buffer.add_string b
          (Printf.sprintf "%s\"%s\": %d"
             (if i = 0 then "" else ", ")
             (json_escape name) v))
      cs;
    Buffer.add_string b "}}\n";
    Buffer.contents b
end

(* ---------------- counters ---------------- *)

module Counter = struct
  type c = { cname : string; v : int Atomic.t }

  let registry : (string, c) Hashtbl.t = Hashtbl.create 32
  let rm = Mutex.create ()

  let make cname =
    Mutex.lock rm;
    let c =
      match Hashtbl.find_opt registry cname with
      | Some c -> c
      | None ->
        let c = { cname; v = Atomic.make 0 } in
        Hashtbl.add registry cname c;
        c
    in
    Mutex.unlock rm;
    c

  let incr c =
    if enabled () then begin
      Atomic.incr c.v;
      Scope.tally c.cname 1
    end

  let add c n =
    if enabled () then begin
      ignore (Atomic.fetch_and_add c.v n);
      Scope.tally c.cname n
    end

  let value c = Atomic.get c.v
  let name c = c.cname
end

let counters () =
  Mutex.lock Counter.rm;
  let l =
    Hashtbl.fold
      (fun name c acc -> (name, Atomic.get c.Counter.v) :: acc)
      Counter.registry []
  in
  Mutex.unlock Counter.rm;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let diff ~before ~after =
  List.filter_map
    (fun (name, v) ->
      let v0 = Option.value (List.assoc_opt name before) ~default:0 in
      if v - v0 <> 0 then Some (name, v - v0) else None)
    after

(* ---------------- gauges ---------------- *)

module Gauge = struct
  type g = { gname : string; v : int Atomic.t }

  let registry : (string, g) Hashtbl.t = Hashtbl.create 16
  let rm = Mutex.create ()

  let make gname =
    Mutex.lock rm;
    let g =
      match Hashtbl.find_opt registry gname with
      | Some g -> g
      | None ->
        let g = { gname; v = Atomic.make 0 } in
        Hashtbl.add registry gname g;
        g
    in
    Mutex.unlock rm;
    g

  (* Gauges are current state, not accumulated work: they stay live
     even without an ambient sink so a snapshot taken later still sees
     the true queue depth / worker count. *)
  let set g n = Atomic.set g.v n
  let add g n = ignore (Atomic.fetch_and_add g.v n)
  let value g = Atomic.get g.v
  let name g = g.gname
end

let gauges () =
  Mutex.lock Gauge.rm;
  let l =
    Hashtbl.fold
      (fun name g acc -> (name, Atomic.get g.Gauge.v) :: acc)
      Gauge.registry []
  in
  Mutex.unlock Gauge.rm;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

(* ---------------- histograms ---------------- *)

module Histogram = struct
  type h = {
    hname : string;
    bucket : int Atomic.t array;  (* index = log2 of the observation *)
    count : int Atomic.t;
    sum_ns : int Atomic.t;
    max_ns : int Atomic.t;
  }

  let registry : (string, h) Hashtbl.t = Hashtbl.create 16
  let rm = Mutex.create ()

  let make hname =
    Mutex.lock rm;
    let h =
      match Hashtbl.find_opt registry hname with
      | Some h -> h
      | None ->
        let h =
          {
            hname;
            bucket = Array.init 64 (fun _ -> Atomic.make 0);
            count = Atomic.make 0;
            sum_ns = Atomic.make 0;
            max_ns = Atomic.make 0;
          }
        in
        Hashtbl.add registry hname h;
        h
    in
    Mutex.unlock rm;
    h

  let name h = h.hname

  let log2i n =
    let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
    go 0 n

  let rec store_max a v =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then store_max a v

  let observe h ns =
    if enabled () then begin
      let n = Int64.to_int (Int64.max 0L ns) in
      Atomic.incr h.bucket.(log2i n);
      Atomic.incr h.count;
      ignore (Atomic.fetch_and_add h.sum_ns n);
      store_max h.max_ns n
    end

  let totals h =
    ( Atomic.get h.count,
      Int64.of_int (Atomic.get h.sum_ns),
      Int64.of_int (Atomic.get h.max_ns) )

  (* Inclusive upper edge of bucket [i] = 2^(i+1)-1: bucket 0 holds
     observations 0..1, bucket i>=1 holds 2^i..2^(i+1)-1. *)
  let bucket_upper i =
    if i >= 62 then Int64.max_int
    else Int64.sub (Int64.shift_left 1L (i + 1)) 1L

  let buckets h =
    let acc = ref [] in
    for i = Array.length h.bucket - 1 downto 0 do
      let n = Atomic.get h.bucket.(i) in
      if n > 0 then acc := (bucket_upper i, n) :: !acc
    done;
    !acc

  (* Upper edge of the bucket containing the q-quantile observation,
     clamped to the recorded maximum — an upper bound on the true
     percentile, tight to within the bucket's 2x resolution. *)
  let percentile h q =
    let total = Atomic.get h.count in
    if total = 0 then 0L
    else begin
      let rank =
        max 1 (int_of_float (Float.round (q *. float_of_int total)))
      in
      let i = ref 0 and seen = ref 0 in
      while
        !i < Array.length h.bucket
        &&
        (seen := !seen + Atomic.get h.bucket.(!i);
         !seen < rank)
      do
        incr i
      done;
      Int64.min (bucket_upper !i) (Int64.of_int (Atomic.get h.max_ns))
    end

  let all () =
    Mutex.lock rm;
    let l = Hashtbl.fold (fun _ h acc -> h :: acc) registry [] in
    Mutex.unlock rm;
    List.sort (fun a b -> String.compare a.hname b.hname) l
end

(* ---------------- spans ---------------- *)

let span ?(cat = "phase") name f =
  match Atomic.get the_ambient with
  | None -> f ()
  | Some t ->
    let buf = buffer_for t in
    let t0 = Monotonic_clock.now () in
    buf.depth <- buf.depth + 1;
    let depth = buf.depth in
    Atomic.incr active_spans;
    Fun.protect f ~finally:(fun () ->
        let t1 = Monotonic_clock.now () in
        buf.depth <- buf.depth - 1;
        Atomic.decr active_spans;
        let dur_ns = Int64.sub t1 t0 in
        let e =
          { name; cat; tid = buf.tid; ts_ns = Int64.sub t0 t.origin; dur_ns;
            depth }
        in
        if t.retain_events then buf.evs <- e :: buf.evs;
        (match Scope.active () with
        | Some s -> Scope.record s e
        | None -> ());
        (* Completed-span aggregate: what snapshots report even when the
           sink drops events (the long-lived daemon). *)
        Histogram.observe
          (Histogram.make (Printf.sprintf "span.%s.%s_ns" cat name))
          dur_ns)

let events t =
  Mutex.lock t.m;
  let bufs = t.buffers in
  Mutex.unlock t.m;
  List.concat_map (fun b -> b.evs) bufs
  |> List.sort (fun a b ->
         match Int64.compare a.ts_ns b.ts_ns with
         | 0 -> compare (a.tid, a.depth) (b.tid, b.depth)
         | c -> c)

(* ---------------- export ---------------- *)

(* Chrome trace-event format (the JSON-array flavour inside an object):
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU *)
let to_chrome_json t =
  let evs = events t in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [\n";
  let tids =
    List.sort_uniq compare
      (t.main_tid :: List.map (fun (e : event) -> e.tid) evs)
  in
  List.iter
    (fun tid ->
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": \
            %d, \"args\": {\"name\": \"%s\"}},\n"
           tid
           (if tid = t.main_tid then Printf.sprintf "main (domain %d)" tid
            else Printf.sprintf "domain %d" tid)))
    tids;
  let cs = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  let last_ts = ref 0L in
  List.iteri
    (fun i e ->
      let fin = Int64.add e.ts_ns e.dur_ns in
      if fin > !last_ts then last_ts := fin;
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"pid\": 1, \
            \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}%s\n"
           (json_escape e.name) (json_escape e.cat) e.tid (us e.ts_ns)
           (us e.dur_ns)
           (if i = List.length evs - 1 && cs = [] then "" else ",")))
    evs;
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": \"%s\", \"cat\": \"counter\", \"ph\": \"C\", \"pid\": \
            1, \"tid\": %d, \"ts\": %.3f, \"args\": {\"value\": %d}}%s\n"
           (json_escape name) t.main_tid (us !last_ts) v
           (if i = List.length cs - 1 then "" else ",")))
    cs;
  Buffer.add_string b "],\n\"displayTimeUnit\": \"ms\",\n\"xboundCounters\": {";
  (* the summary object lists every registered counter, zeros included:
     "pool.spawn": 0 is information (nothing ran in parallel), absence
     is not *)
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s\"%s\": %d" (if i = 0 then "" else ", ")
           (json_escape name) v))
    (counters ());
  Buffer.add_string b "}}\n";
  Buffer.contents b

let write_chrome t ~file =
  Out_channel.with_open_text file (fun oc ->
      output_string oc (to_chrome_json t))

let span_totals ?cat t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if match cat with None -> true | Some c -> String.equal c e.cat then begin
        let s, n =
          Option.value (Hashtbl.find_opt tbl e.name) ~default:(0., 0)
        in
        Hashtbl.replace tbl e.name (s +. (Int64.to_float e.dur_ns /. 1e9), n + 1)
      end)
    (events t);
  Hashtbl.fold (fun name sn acc -> (name, sn) :: acc) tbl []
  |> List.sort (fun (an, (a, _)) (bn, (b, _)) ->
         match compare b a with 0 -> String.compare an bn | c -> c)

let phase_totals t =
  List.map (fun (name, (s, _)) -> (name, s)) (span_totals ~cat:"phase" t)

let tid_busy t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if String.equal e.cat "pool" then
        Hashtbl.replace tbl e.tid
          (Option.value (Hashtbl.find_opt tbl e.tid) ~default:0.
          +. (Int64.to_float e.dur_ns /. 1e9)))
    (events t);
  Hashtbl.fold (fun tid s acc -> (tid, s) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let stats_summary t =
  let b = Buffer.create 1024 in
  let wall = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t.origin) /. 1e9 in
  Buffer.add_string b (Printf.sprintf "telemetry (wall %.3f s)\n" wall);
  (match span_totals t with
  | [] -> ()
  | totals ->
    Buffer.add_string b "  spans (total s, count):\n";
    List.iter
      (fun (name, (s, n)) ->
        Buffer.add_string b (Printf.sprintf "    %-32s %9.4f  %6d\n" name s n))
      totals);
  (match tid_busy t with
  | [] -> ()
  | busy ->
    Buffer.add_string b "  pool busy per domain:\n";
    List.iter
      (fun (tid, s) ->
        Buffer.add_string b
          (Printf.sprintf "    domain %-4d %9.4f s (%.0f%%)\n" tid s
             (if wall > 0. then 100. *. s /. wall else 0.)))
      busy);
  (match List.filter (fun (_, v) -> v <> 0) (counters ()) with
  | [] -> ()
  | cs ->
    Buffer.add_string b "  counters:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string b (Printf.sprintf "    %-32s %d\n" name v))
      cs);
  (* Unit-aware histogram lines: *_ns histograms are nanosecond
     distributions (printed in ms); anything else is a count
     distribution (printed as integers). *)
  List.iter
    (fun h ->
      let count, sum, mx = Histogram.totals h in
      if count > 0 then
        let hname = h.Histogram.hname in
        if String.ends_with ~suffix:"_ns" hname then
          let ms ns = Int64.to_float ns /. 1e6 in
          Buffer.add_string b
            (Printf.sprintf
               "  histogram %-24s %d obs, mean %.3f ms, p50 %.3f ms, p99 %.3f \
                ms, max %.3f ms\n"
               hname count
               (Int64.to_float sum /. 1e6 /. float_of_int count)
               (ms (Histogram.percentile h 0.50))
               (ms (Histogram.percentile h 0.99))
               (ms mx))
        else
          Buffer.add_string b
            (Printf.sprintf
               "  histogram %-24s %d obs, mean %.1f, p50 %Ld, p99 %Ld, max \
                %Ld (count)\n"
               hname count
               (Int64.to_float sum /. float_of_int count)
               (Histogram.percentile h 0.50)
               (Histogram.percentile h 0.99)
               mx))
    (Histogram.all ());
  Buffer.contents b

(* ---------------- snapshots ---------------- *)

let rss_bytes () =
  match
    In_channel.with_open_text "/proc/self/status" In_channel.input_all
  with
  | exception _ -> 0
  | s ->
    let line =
      List.find_opt
        (fun l -> String.length l >= 6 && String.sub l 0 6 = "VmRSS:")
        (String.split_on_char '\n' s)
    in
    (match line with
    | None -> 0
    | Some l -> (
      try Scanf.sscanf l "VmRSS: %d kB" (fun kb -> kb * 1024)
      with _ -> 0))

module Snapshot = struct
  type histo = {
    hname : string;
    count : int;
    sum_ns : int64;
    max_ns : int64;
    p50 : int64;
    p90 : int64;
    p99 : int64;
    buckets : (int64 * int) list;
  }

  type snap = {
    taken_ns : int64;
    uptime_s : float;
    rss_bytes : int;
    active_spans : int;
    counters : (string * int) list;
    gauges : (string * int) list;
    histograms : histo list;
  }

  type t = snap

  let percentile_of ~buckets ~count q =
    if count <= 0 then 0L
    else begin
      let rank =
        max 1 (int_of_float (Float.round (q *. float_of_int count)))
      in
      let rec go seen = function
        | [] -> 0L
        | (upper, n) :: tl ->
          if seen + n >= rank then upper else go (seen + n) tl
      in
      go 0 buckets
    end

  let take () =
    let histograms =
      List.filter_map
        (fun h ->
          let count, sum_ns, max_ns = Histogram.totals h in
          if count = 0 then None
          else
            Some
              {
                hname = Histogram.name h;
                count;
                sum_ns;
                max_ns;
                p50 = Histogram.percentile h 0.50;
                p90 = Histogram.percentile h 0.90;
                p99 = Histogram.percentile h 0.99;
                buckets = Histogram.buckets h;
              })
        (Histogram.all ())
    in
    let now = Monotonic_clock.now () in
    {
      taken_ns = now;
      uptime_s = Int64.to_float (Int64.sub now process_origin) /. 1e9;
      rss_bytes = rss_bytes ();
      active_spans = Atomic.get active_spans;
      counters = counters ();
      gauges = gauges ();
      histograms;
    }

  (* Counter and histogram deltas over the window; gauges, rss and
     active-span count are instantaneous so the [after] values stand.
     [uptime_s] of a diff is the window length, so rates are
     [delta / uptime_s]. *)
  let diff ~before ~after =
    let counters = diff ~before:before.counters ~after:after.counters in
    let histograms =
      List.filter_map
        (fun ha ->
          let h0 =
            List.find_opt (fun h -> String.equal h.hname ha.hname)
              before.histograms
          in
          let count0, sum0, buckets0 =
            match h0 with
            | None -> (0, 0L, [])
            | Some h -> (h.count, h.sum_ns, h.buckets)
          in
          let count = ha.count - count0 in
          if count <= 0 then None
          else begin
            let buckets =
              List.filter_map
                (fun (u, n) ->
                  let n0 =
                    Option.value (List.assoc_opt u buckets0) ~default:0
                  in
                  if n - n0 > 0 then Some (u, n - n0) else None)
                ha.buckets
            in
            Some
              {
                hname = ha.hname;
                count;
                sum_ns = Int64.sub ha.sum_ns sum0;
                max_ns = ha.max_ns;
                p50 = percentile_of ~buckets ~count 0.50;
                p90 = percentile_of ~buckets ~count 0.90;
                p99 = percentile_of ~buckets ~count 0.99;
                buckets;
              }
          end)
        after.histograms
    in
    {
      taken_ns = after.taken_ns;
      uptime_s = after.uptime_s -. before.uptime_s;
      rss_bytes = after.rss_bytes;
      active_spans = after.active_spans;
      counters;
      gauges = after.gauges;
      histograms;
    }

  (* Prometheus text exposition: a sanitized [xbound_]-prefixed metric
     per counter (`_total`), gauge, and histogram (cumulative `le`
     buckets + `_sum`/`_count`; nanosecond histograms exported in
     seconds per Prometheus base-unit convention). *)
  let metric_name s =
    let b = Bytes.of_string s in
    Bytes.iteri
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
        | _ -> Bytes.set b i '_')
      b;
    "xbound_" ^ Bytes.to_string b

  let to_prometheus t =
    let b = Buffer.create 4096 in
    let gauge name v =
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %s\n" name name v)
    in
    gauge "xbound_uptime_seconds" (Printf.sprintf "%.6f" t.uptime_s);
    gauge "xbound_rss_bytes" (string_of_int t.rss_bytes);
    gauge "xbound_active_spans" (string_of_int t.active_spans);
    List.iter
      (fun (name, v) ->
        let m = metric_name name ^ "_total" in
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s counter\n%s %d\n" m m v))
      t.counters;
    List.iter
      (fun (name, v) -> gauge (metric_name name) (string_of_int v))
      t.gauges;
    List.iter
      (fun h ->
        let in_seconds = String.ends_with ~suffix:"_ns" h.hname in
        let m =
          if in_seconds then
            metric_name
              (String.sub h.hname 0 (String.length h.hname - 3) ^ "_seconds")
          else metric_name h.hname
        in
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" m);
        let le upper =
          if in_seconds then
            Printf.sprintf "%.9g" (Int64.to_float upper /. 1e9)
          else Int64.to_string upper
        in
        let cum = ref 0 in
        List.iter
          (fun (upper, n) ->
            cum := !cum + n;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m (le upper) !cum))
          h.buckets;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m h.count);
        if in_seconds then
          Buffer.add_string b
            (Printf.sprintf "%s_sum %.9f\n" m
               (Int64.to_float h.sum_ns /. 1e9))
        else
          Buffer.add_string b (Printf.sprintf "%s_sum %Ld\n" m h.sum_ns);
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" m h.count))
      t.histograms;
    Buffer.contents b
end
