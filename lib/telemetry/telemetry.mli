(** Lock-light, domain-safe observability for the analysis engine.

    The engine's cost structure — where cycles go between Algorithm 1
    exploration, trace flattening, the even/odd power computation and
    the peak-energy walk; how the domain pool and the single-flight
    cache behave under load — is invisible from the outside. This module
    makes it observable without perturbing it:

    - {e spans}: hierarchical wall-time intervals on the monotonic
      clock, recorded into per-domain buffers (one mutex acquisition per
      domain {e registration}, none per event);
    - {e counters}: process-wide named atomic counters (pool
      spawns/steals/joins, cache hits/misses/evictions, ...);
    - {e histograms}: log2-bucketed nanosecond distributions (task run
      times, single-flight wait times);
    - {e exporters}: Chrome trace-event JSON (load it in
      [chrome://tracing] or [ui.perfetto.dev]) and a compact stats
      summary.

    Telemetry is {e ambient}: instrumentation sites call {!span} /
    {!Counter.incr} unconditionally, and every such call is a single
    atomic load when no sink is installed — tracing off means no clock
    reads, no allocation, no contention. Instrumentation never changes
    results: bounds are bit-identical with tracing on or off, at any
    job count (asserted in the test suite). *)

(** {1 Sinks} *)

(** An event sink: per-domain span buffers plus the creation-time clock
    origin. *)
type t

val create : unit -> t

(** The installed ambient sink, if any. *)
val ambient : unit -> t option

(** [set_ambient s] installs (or, with [None], removes) the process-wide
    sink. Visible to every domain. *)
val set_ambient : t option -> unit

(** [with_ambient s f] runs [f] with [s] installed, restoring the
    previous sink afterwards (also on exceptions). *)
val with_ambient : t -> (unit -> 'a) -> 'a

(** True iff a sink is installed. One atomic load. *)
val enabled : unit -> bool

(** The raw monotonic clock (ns), for instrumentation sites that need
    interval arithmetic outside {!span} (e.g. histogram observations).
    Call only behind an {!enabled} check. *)
val now_ns : unit -> int64

(** {1 Spans} *)

(** [span ~cat name f] times [f ()] on the monotonic clock and records a
    complete-span event in the calling domain's buffer of the ambient
    sink; without a sink it is [f ()]. Spans nest: events carry their
    stack depth, and the Chrome exporter renders containment per
    domain ([cat] defaults to ["phase"], the category {!phase_totals}
    aggregates). *)
val span : ?cat:string -> string -> (unit -> 'a) -> 'a

(** A recorded span. [ts_ns] is relative to the sink's creation;
    [tid] identifies the recording domain. *)
type event = {
  name : string;
  cat : string;
  tid : int;
  ts_ns : int64;
  dur_ns : int64;
  depth : int;  (** nesting depth within this domain, 1 = outermost *)
}

(** All recorded events, in timestamp order. *)
val events : t -> event list

(** {1 Counters} *)

module Counter : sig
  type c

  (** [make name] — the process-wide counter registered under [name]
      (interned: same name, same counter). *)
  val make : string -> c

  (** One atomic increment when a sink is installed; a no-op otherwise. *)
  val incr : c -> unit

  val add : c -> int -> unit
  val value : c -> int
  val name : c -> string
end

(** Snapshot of every registered counter, sorted by name. Counters are
    process-wide and monotonic; subtract two snapshots with {!diff} to
    scope them to a run. *)
val counters : unit -> (string * int) list

(** [diff ~before ~after] — per-name deltas, dropping zero entries. *)
val diff :
  before:(string * int) list -> after:(string * int) list -> (string * int) list

(** {1 Histograms} *)

module Histogram : sig
  type h

  (** [make name] — a process-wide log2-bucketed nanosecond histogram. *)
  val make : string -> h

  (** Record one observation (ns). No-op without an installed sink. *)
  val observe : h -> int64 -> unit

  (** [(count, total_ns, max_ns)] *)
  val totals : h -> int * int64 * int64

  (** Non-empty [(bucket_lo_ns, count)] pairs, ascending. *)
  val buckets : h -> (int64 * int) list

  (** [percentile h q] ([0. <= q <= 1.]) — an upper bound on the
      q-quantile observation (ns): the upper edge of the log2 bucket
      holding it, clamped to the recorded maximum. [0L] when empty. *)
  val percentile : h -> float -> int64
end

(** {1 Export} *)

(** The sink as a Chrome trace-event JSON document: one ["X"] event per
    span, ["M"] thread-name metadata per domain, and one trailing ["C"]
    event per nonzero counter. A top-level ["xboundCounters"] object
    lists every registered counter, zeros included. *)
val to_chrome_json : t -> string

val write_chrome : t -> file:string -> unit

(** Total seconds and call count per span name, for the given category
    (default: every category), sorted by descending total. *)
val span_totals : ?cat:string -> t -> (string * (float * int)) list

(** Seconds per ["phase"]-category span name — the per-phase breakdown
    {!Xbound.analyze} reports. *)
val phase_totals : t -> (string * float) list

(** Busy seconds per domain, from ["pool"]-category task spans. *)
val tid_busy : t -> (int * float) list

(** Human-readable summary: phase breakdown, per-domain utilization,
    counter values, histogram totals with p50/p99 percentiles. *)
val stats_summary : t -> string
