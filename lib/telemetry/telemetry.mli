(** Lock-light, domain-safe observability for the analysis engine.

    The engine's cost structure — where cycles go between Algorithm 1
    exploration, trace flattening, the even/odd power computation and
    the peak-energy walk; how the domain pool and the single-flight
    cache behave under load — is invisible from the outside. This module
    makes it observable without perturbing it:

    - {e spans}: hierarchical wall-time intervals on the monotonic
      clock, recorded into per-domain buffers (one mutex acquisition per
      domain {e registration}, none per event);
    - {e counters}: process-wide named atomic counters (pool
      spawns/steals/joins, cache hits/misses/evictions, ...);
    - {e gauges}: process-wide named atomic current-state values
      (queue depth, inflight requests, ...);
    - {e histograms}: log2-bucketed distributions (task run times,
      single-flight wait times, queue depths);
    - {e scopes}: per-request attribution — every counter increment and
      span recorded by a thread with a bound scope is tallied into it;
    - {e snapshots}: a point-in-time copy of every counter, gauge and
      histogram, with diffs between snapshots and a Prometheus text
      exporter;
    - {e exporters}: Chrome trace-event JSON (load it in
      [chrome://tracing] or [ui.perfetto.dev]) and a compact stats
      summary.

    Telemetry is {e ambient}: instrumentation sites call {!span} /
    {!Counter.incr} unconditionally, and every such call is a single
    atomic load when no sink is installed — tracing off means no clock
    reads, no allocation, no contention. Instrumentation never changes
    results: bounds are bit-identical with tracing on or off, at any
    job count (asserted in the test suite). *)

(** {1 Sinks} *)

(** An event sink: per-domain span buffers plus the creation-time clock
    origin. *)
type t

(** [create ()] — a sink that retains every span event (for Chrome
    export). [create ~retain_events:false ()] enables counters,
    histograms and span aggregates but drops the per-span event list —
    the right sink for a long-lived daemon, whose event buffers would
    otherwise grow without bound. *)
val create : ?retain_events:bool -> unit -> t

(** The installed ambient sink, if any. *)
val ambient : unit -> t option

(** [set_ambient s] installs (or, with [None], removes) the process-wide
    sink. Visible to every domain. *)
val set_ambient : t option -> unit

(** [with_ambient s f] runs [f] with [s] installed, restoring the
    previous sink afterwards (also on exceptions). *)
val with_ambient : t -> (unit -> 'a) -> 'a

(** True iff a sink is installed. One atomic load. *)
val enabled : unit -> bool

(** The raw monotonic clock (ns), for instrumentation sites that need
    interval arithmetic outside {!span} (e.g. histogram observations).
    Call only behind an {!enabled} check. *)
val now_ns : unit -> int64

(** Seconds since this module was loaded — process uptime for health
    reporting. Not gated on a sink. *)
val uptime_s : unit -> float

(** {1 Spans} *)

(** [span ~cat name f] times [f ()] on the monotonic clock and records a
    complete-span event in the calling domain's buffer of the ambient
    sink; without a sink it is [f ()]. Spans nest: events carry their
    stack depth, and the Chrome exporter renders containment per
    domain ([cat] defaults to ["phase"], the category {!phase_totals}
    aggregates). Every completed span additionally feeds the
    process-wide histogram [span.<cat>.<name>_ns], which is what
    {!Snapshot.take} reports as completed-span aggregates, and is
    recorded into the calling thread's bound {!Scope}, if any. *)
val span : ?cat:string -> string -> (unit -> 'a) -> 'a

(** A recorded span. [ts_ns] is relative to the sink's creation;
    [tid] identifies the recording domain. *)
type event = {
  name : string;
  cat : string;
  tid : int;
  ts_ns : int64;
  dur_ns : int64;
  depth : int;  (** nesting depth within this domain, 1 = outermost *)
}

(** All recorded events, in timestamp order. Empty for a
    [~retain_events:false] sink. *)
val events : t -> event list

(** {1 Scopes}

    A scope attributes telemetry to one logical operation — in the
    daemon, one request. Binding is per {e thread} (systhread id, not
    domain: the daemon's executor threads share a domain), and the
    domain pool propagates the submitting thread's binding into its
    workers, so work fanned out on behalf of a request still tallies
    into that request's scope. With no scope bound anywhere in the
    process, the attribution hook in {!Counter.incr} is one atomic
    load. *)

module Scope : sig
  type s

  (** [create ~id] — a fresh scope labelled [id] (e.g. a request id). *)
  val create : id:string -> s

  val id : s -> string

  (** The scope bound to the calling thread, if any. *)
  val active : unit -> s option

  (** [with_scope s f] runs [f] with [s] bound to the calling thread,
      restoring the previous binding afterwards (also on exceptions). *)
  val with_scope : s -> (unit -> 'a) -> 'a

  (** [with_binding so f] — like {!with_scope} but can also mask an
      inherited binding with [None]. Used by the pool to install the
      {e submitting} thread's binding (or absence of one) in a worker. *)
  val with_binding : s option -> (unit -> 'a) -> 'a

  (** Counter increments tallied into this scope, sorted by name. *)
  val counter_deltas : s -> (string * int) list

  (** Spans recorded under this scope, in timestamp order. *)
  val events : s -> event list

  (** Seconds per ["phase"]-category span recorded under this scope,
      sorted by descending total. *)
  val phase_totals : s -> (string * float) list

  (** The scope as a self-contained Chrome trace-event document: its
      spans plus an ["xboundCounters"] object of its counter deltas. *)
  val to_chrome_json : s -> string
end

(** {1 Counters} *)

module Counter : sig
  type c

  (** [make name] — the process-wide counter registered under [name]
      (interned: same name, same counter). *)
  val make : string -> c

  (** One atomic increment when a sink is installed; a no-op otherwise.
      Also tallied into the calling thread's bound {!Scope}, if any. *)
  val incr : c -> unit

  val add : c -> int -> unit
  val value : c -> int
  val name : c -> string
end

(** Snapshot of every registered counter, sorted by name. Counters are
    process-wide and monotonic; subtract two snapshots with {!diff} to
    scope them to a run. *)
val counters : unit -> (string * int) list

(** [diff ~before ~after] — per-name deltas, dropping zero entries. *)
val diff :
  before:(string * int) list -> after:(string * int) list -> (string * int) list

(** {1 Gauges} *)

module Gauge : sig
  type g

  (** [make name] — the process-wide gauge registered under [name]
      (interned: same name, same gauge). *)
  val make : string -> g

  (** Gauges track current state (queue depth, configured capacity),
      not accumulated work, so unlike counters they are {e not} gated
      on an installed sink: a snapshot taken after the fact still sees
      the truth. *)
  val set : g -> int -> unit

  val add : g -> int -> unit
  val value : g -> int
  val name : g -> string
end

(** Snapshot of every registered gauge, sorted by name. *)
val gauges : unit -> (string * int) list

(** {1 Histograms} *)

module Histogram : sig
  type h

  (** [make name] — a process-wide log2-bucketed histogram. By
      convention a name ending in [_ns] holds nanosecond observations;
      exporters render those in ms/seconds and everything else as plain
      counts. *)
  val make : string -> h

  (** Record one observation. No-op without an installed sink. *)
  val observe : h -> int64 -> unit

  (** [(count, total, max)] *)
  val totals : h -> int * int64 * int64

  (** Non-empty [(bucket_upper, count)] pairs, ascending: bucket 0
      holds observations [0..1] (upper bound [1]), bucket [i >= 1]
      holds [2^i .. 2^(i+1)-1] (upper bound [2^(i+1)-1]). The upper
      bounds are exactly the values {!percentile} reports before
      max-clamping, and what the Prometheus exporter emits as [le]
      edges. *)
  val buckets : h -> (int64 * int) list

  (** [percentile h q] ([0. <= q <= 1.]) — an upper bound on the
      q-quantile observation: the upper edge of the log2 bucket
      holding it, clamped to the recorded maximum. [0L] when empty. *)
  val percentile : h -> float -> int64

  val name : h -> string
end

(** {1 Snapshots} *)

module Snapshot : sig
  (** One histogram at a point in time (or, after {!diff}, over a
      window): totals, percentile upper bounds, and the non-empty
      [(upper, count)] buckets. *)
  type histo = {
    hname : string;
    count : int;
    sum_ns : int64;
    max_ns : int64;
    p50 : int64;
    p90 : int64;
    p99 : int64;
    buckets : (int64 * int) list;
  }

  type snap = {
    taken_ns : int64;  (** monotonic clock at capture *)
    uptime_s : float;
        (** process uptime at capture; after {!diff}, the window
            length — rates are [delta / uptime_s] *)
    rss_bytes : int;  (** resident set size, [0] if unknown *)
    active_spans : int;  (** spans currently open, process-wide *)
    counters : (string * int) list;
    gauges : (string * int) list;
    histograms : histo list;  (** only histograms with observations *)
  }

  type t = snap

  (** Capture every registered counter, gauge and histogram. Lock-light:
      registry locks only, all values read with atomic loads. *)
  val take : unit -> t

  (** [diff ~before ~after] — counter and histogram deltas over the
      window (histogram percentiles recomputed from the bucket deltas);
      gauges, rss and active-span count are instantaneous, so the
      [after] values stand. Histograms and counters with no activity in
      the window are dropped. *)
  val diff : before:t -> after:t -> t

  (** Prometheus text exposition: each metric [# TYPE]-annotated,
      counters suffixed [_total], histograms with cumulative [le]
      buckets, [+Inf], [_sum] and [_count]. Metric names are sanitized
      and prefixed [xbound_]; [_ns] histograms are exported in seconds
      ([..._seconds]) per the Prometheus base-unit convention. *)
  val to_prometheus : t -> string
end

(** {1 Export} *)

(** The sink as a Chrome trace-event JSON document: one ["X"] event per
    span, ["M"] thread-name metadata per domain, and one trailing ["C"]
    event per nonzero counter. A top-level ["xboundCounters"] object
    lists every registered counter, zeros included. *)
val to_chrome_json : t -> string

val write_chrome : t -> file:string -> unit

(** Total seconds and call count per span name, for the given category
    (default: every category), sorted by descending total. *)
val span_totals : ?cat:string -> t -> (string * (float * int)) list

(** Seconds per ["phase"]-category span name — the per-phase breakdown
    {!Xbound.analyze} reports. *)
val phase_totals : t -> (string * float) list

(** Busy seconds per domain, from ["pool"]-category task spans. *)
val tid_busy : t -> (int * float) list

(** Human-readable summary: phase breakdown, per-domain utilization,
    counter values, histogram totals with p50/p99 percentiles —
    unit-aware ([_ns] histograms in ms, others as counts). *)
val stats_summary : t -> string
