(** Blocking RPC stub for the serve protocol.

    One request in flight per call; the connection itself is reusable
    (and a mutex makes concurrent {!rpc} calls from multiple threads
    safe — they serialize on the socket). Transport and protocol
    failures come back as [Xbound.Error.Protocol]; typed errors from
    the server (unknown benchmark, overloaded, ...) come back as the
    same {!Xbound.Error.t} value the server produced. *)

type t

val connect : Addr.t -> (t, string) Stdlib.result

(** [rpc ?priority c req] — send, wait, decode. [priority] defaults to
    [Wire.Interactive]. *)
val rpc :
  ?priority:Wire.priority ->
  t ->
  Wire.Request.t ->
  (Wire.Response.t, Xbound.Error.t) Stdlib.result

val close : t -> unit
