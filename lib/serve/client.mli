(** Blocking RPC stub for the serve protocol.

    One request in flight per call; the connection itself is reusable
    (and a mutex makes concurrent {!rpc} calls from multiple threads
    safe — they serialize on the socket). Transport and protocol
    failures come back as [Xbound.Error.Protocol]; typed errors from
    the server (unknown benchmark, overloaded, ...) come back as the
    same {!Xbound.Error.t} value the server produced. *)

type t

val connect : Addr.t -> (t, string) Stdlib.result

(** [rpc ?priority c req] — send, wait, decode. [priority] defaults to
    [Wire.Interactive]. *)
val rpc :
  ?priority:Wire.priority ->
  t ->
  Wire.Request.t ->
  (Wire.Response.t, Xbound.Error.t) Stdlib.result

(** [watch c ~interval_ms ~count ~on_frame] — send one
    [Wire.Request.Watch] and deliver each streamed frame (a full
    snapshot first, then per-interval diffs) to [on_frame]; stop after
    [count] frames ([<= 0] = unbounded), or earlier when [on_frame]
    returns [false]. Holds the connection for the whole stream — use a
    dedicated client. [Ok ()] on a clean end, including server
    shutdown mid-stream of an unbounded watch. *)
val watch :
  ?priority:Wire.priority ->
  t ->
  interval_ms:int ->
  count:int ->
  on_frame:(Wire.Response.t -> bool) ->
  (unit, Xbound.Error.t) Stdlib.result

val close : t -> unit
