(** The one stdout renderer for {!Wire.Response.t} values.

    Both dispatch paths — in-process execution and the daemon RPC —
    print through this module, from the same decoded response value.
    Combined with {!Explain.Ejson}'s shortest round-tripping float
    printing this is what makes CLI and daemon output byte-identical:
    there is exactly one piece of code that turns a response into
    text. *)

val to_string : Wire.Response.t -> string
