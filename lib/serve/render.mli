(** The one stdout renderer for {!Wire.Response.t} values.

    Both dispatch paths — in-process execution and the daemon RPC —
    print through this module, from the same decoded response value.
    Combined with {!Explain.Ejson}'s shortest round-tripping float
    printing this is what makes CLI and daemon output byte-identical:
    there is exactly one piece of code that turns a response into
    text. *)

val to_string : Wire.Response.t -> string

(** One [xbound top] frame from a snapshot {e diff} (a Watch stream
    payload): request/reject rates over the window, live queue/inflight
    gauges, cache hit ratio, tier mix, queue-wait/exec/latency and
    per-phase percentiles. Uses the same histogram row conventions as
    the [Stats] table. *)
val top : Telemetry.Snapshot.t -> string
