(* 4-byte big-endian length prefix + payload. See frame.mli. *)

let max_payload = 16 * 1024 * 1024

type read_error = Eof | Truncated | Oversized of int

let read_error_to_string = function
  | Eof -> "end of stream"
  | Truncated -> "truncated frame"
  | Oversized n -> Printf.sprintf "oversized frame length %d (max %d)" n max_payload

(* [read_exactly fd buf] — [`Ok] for a full buffer, [`Eof] for zero
   bytes before the first one, [`Short] for a close partway through. *)
let read_exactly fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off = len then `Ok
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then `Eof else `Short
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read fd =
  let prefix = Bytes.create 4 in
  match read_exactly fd prefix with
  | `Eof -> Error Eof
  | `Short -> Error Truncated
  | `Ok ->
    let len = Int32.to_int (Bytes.get_int32_be prefix 0) in
    if len < 0 || len > max_payload then Error (Oversized len)
    else begin
      let payload = Bytes.create len in
      match read_exactly fd payload with
      | `Ok -> Ok (Bytes.unsafe_to_string payload)
      | `Eof | `Short -> Error Truncated
    end

let write fd payload =
  let len = String.length payload in
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  let rec go off =
    if off < 4 + len then
      match Unix.write fd buf off (4 + len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0
