(** The one executor behind every dispatch path: a {!Wire.Request.t} in,
    a {!Wire.Response.t} (or typed error) out, against an execution
    context. The CLI calls this directly for in-process runs; the daemon
    calls it from its executor threads with the shared context — which
    is exactly why CLI and daemon output are byte-identical. *)

val exec :
  ctx:Xbound.Ctx.t ->
  Wire.Request.t ->
  (Wire.Response.t, Xbound.Error.t) Stdlib.result

(** Short span/metric label for a request (["analyze"], ["explain"],
    ...). *)
val op_name : Wire.Request.t -> string

(** The bound tier a request asks for, when it has one ([Analyze] and
    [Explain] do; everything else is [None]). Used for the server's
    per-tier traffic counters and the access log. *)
val tier_of_request : Wire.Request.t -> Xbound.Tier.t option
