(** Length-prefixed framing: every protocol message is a 4-byte
    big-endian payload length followed by that many bytes of JSON.
    Framing errors are values — a malicious or broken peer can produce
    {!read_error}s, never an exception, and a payload-level problem
    (bad JSON) leaves the stream in sync for the next frame. *)

(** Refuse frames above this payload size (16 MiB): a nonsense length
    prefix must not make the server allocate gigabytes. *)
val max_payload : int

type read_error =
  | Eof  (** clean close between frames *)
  | Truncated  (** peer closed mid-frame (inside the prefix or payload) *)
  | Oversized of int  (** length prefix negative or above {!max_payload} *)

val read_error_to_string : read_error -> string

(** Blocking read of one complete frame's payload. *)
val read : Unix.file_descr -> (string, read_error) Stdlib.result

(** Blocking write of one complete frame (prefix + payload). Raises
    [Unix.Unix_error] (e.g. [EPIPE]) if the peer is gone — callers
    decide whether that is fatal. *)
val write : Unix.file_descr -> string -> unit
