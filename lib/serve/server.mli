(** The [xbound serve] daemon loop.

    One accept thread hands each connection to a dedicated reader
    thread; decoded requests are admitted into the bounded two-class
    {!Scheduler} and executed by a fixed pool of executor threads, all
    sharing the server's one {!Xbound.Ctx.t} — so the in-memory LRU,
    the single-flight table and the disk cache are shared across every
    connection (two clients asking the same question cost one
    analysis), and analyses still parallelize internally on the shared
    domain pool.

    Protocol behaviour on a connection:
    - a malformed payload that leaves framing intact (bad JSON, bad
      version, unknown op) gets a typed [Protocol] error response and
      the connection stays up;
    - a broken frame (truncated, oversized length prefix) gets a final
      [Protocol] error response with id 0 and the connection is closed
      — the byte stream can no longer be trusted;
    - a full admission queue gets the 429-style [Overloaded] rejection
      immediately, without blocking the reader.

    Telemetry (ambient sink): counters [serve.requests],
    [serve.rejected], [serve.connections], [serve.protocol_errors];
    histograms [serve.queue_depth] (depth seen at admission) and
    [serve.latency_ns] (admission to response written); one
    [cat:"serve"] span per executed request. *)

type config = {
  listen : Addr.t;
  workers : int;  (** executor threads (clamped to >= 1) *)
  queue_capacity : int;  (** admission bound (clamped to >= 1) *)
  ctx : Xbound.Ctx.t;  (** shared by every request *)
}

type t

(** Bind, listen and spawn the accept/executor threads. [Error] is a
    human-readable reason (address in use, permission...). *)
val start : config -> (t, string) Stdlib.result

(** The bound address (as configured). *)
val addr : t -> Addr.t

(** Graceful shutdown: stop accepting, reject queued work, wake every
    blocked reader, join all threads, unlink the unix socket file.
    Idempotent. *)
val stop : t -> unit
