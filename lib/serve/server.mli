(** The [xbound serve] daemon loop.

    One accept thread hands each connection to a dedicated reader
    thread; decoded requests are admitted into the bounded two-class
    {!Scheduler} and executed by a fixed pool of executor threads, all
    sharing the server's one {!Xbound.Ctx.t} — so the in-memory LRU,
    the single-flight table and the disk cache are shared across every
    connection (two clients asking the same question cost one
    analysis), and analyses still parallelize internally on the shared
    domain pool.

    Protocol behaviour on a connection:
    - a malformed payload that leaves framing intact (bad JSON, bad
      version, unknown op) gets a typed [Protocol] error response and
      the connection stays up;
    - a broken frame (truncated, oversized length prefix) gets a final
      [Protocol] error response with id 0 and the connection is closed
      — the byte stream can no longer be trusted;
    - a full admission queue gets the 429-style [Overloaded] rejection
      immediately, without blocking the reader.

    {2 Admin lane}

    [Stats], [Health] and [Watch] requests never enter the scheduler:
    they are served inline on the connection's reader thread, so they
    answer even when the queue is full and batch work is being rejected
    with [Overloaded]. [Watch] streams one full snapshot and then a
    {!Telemetry.Snapshot.diff} per interval, ending cleanly on client
    disconnect or server {!stop}.

    {2 Telemetry}

    [start] installs an ambient {!Telemetry} sink (with
    [retain_events:false], so span events are dropped and memory stays
    bounded) unless one is already installed. Counters:
    [serve.requests] (scheduler work only), [serve.admin_requests],
    [serve.rejected], [serve.connections], [serve.protocol_errors],
    [serve.traces_sampled], [serve.tier.<tier>]. Histograms:
    [serve.queue_depth] (depth seen at admission), [serve.queue_wait_ns]
    (admission to execution start), [serve.exec_ns] (execution only),
    [serve.latency_ns] (admission to response written). Gauges:
    [serve.queue_len] (instantaneous, maintained by the scheduler),
    [serve.inflight], [serve.workers], [serve.queue_capacity]. One
    [cat:"serve"] span per executed request.

    Each executed request runs under a {!Telemetry.Scope} with the
    stable id ["r<seq>"]: counters and spans it produces are tallied
    per-request (for the access log and trace sampling) in addition to
    the process-wide aggregates. *)

type config = {
  listen : Addr.t;
  workers : int;  (** executor threads (clamped to >= 1) *)
  queue_capacity : int;  (** admission bound (clamped to >= 1) *)
  ctx : Xbound.Ctx.t;  (** shared by every request *)
  access_log : string option;
      (** JSONL access log path (append); [None] disables *)
  slow_ms : int;
      (** requests with exec time >= this log at [warn] with per-phase
          timings; [<= 0] disables the slow threshold *)
  trace_sample : int;
      (** every [n]-th request dumps a Chrome trace of its scope into
          [trace_dir]; [0] disables sampling *)
  trace_dir : string;  (** spool directory for sampled traces *)
}

(** Build a {!config} with the observability features off by default:
    no access log, no slow threshold, no trace sampling. *)
val config :
  ?workers:int ->
  ?queue_capacity:int ->
  ?access_log:string ->
  ?slow_ms:int ->
  ?trace_sample:int ->
  ?trace_dir:string ->
  listen:Addr.t ->
  ctx:Xbound.Ctx.t ->
  unit ->
  config

type t

(** Bind, listen and spawn the accept/executor threads. [Error] is a
    human-readable reason (address in use, permission, unwritable
    access-log path...). *)
val start : config -> (t, string) Stdlib.result

(** The bound address (as configured). *)
val addr : t -> Addr.t

(** Graceful shutdown: stop accepting, reject queued work, wake every
    blocked reader (ending any Watch streams), join all threads, close
    the access log, unlink the unix socket file. Idempotent. *)
val stop : t -> unit
