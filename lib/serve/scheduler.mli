(** Bounded two-class admission queue for the serve daemon.

    Requests are admitted into one of two FIFO queues — interactive or
    batch — sharing one capacity bound. Executors always drain
    interactive work first. When the bound is hit, {!submit} rejects
    immediately (the caller turns that into the 429-style
    [Xbound.Error.Overloaded] response) instead of letting latency grow
    without bound. *)

type job = { priority : Wire.priority; run : unit -> unit }
type t

val create : capacity:int -> t

(** Queue depth right now (both classes). *)
val depth : t -> int

val capacity : t -> int

(** [Error depth] when the queue is full (reporting the depth seen), or
    after {!stop}. *)
val submit : t -> job -> (unit, int) Stdlib.result

(** Blocks until a job is available (interactive before batch) or the
    scheduler is stopped; [None] means stop — the executor should
    exit. *)
val next : t -> job option

(** Wakes every blocked {!next} with [None] and makes further
    {!submit}s fail. Queued jobs are dropped. Idempotent. *)
val stop : t -> unit
