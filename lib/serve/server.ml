(* The serve daemon loop. See server.mli. *)

type config = {
  listen : Addr.t;
  workers : int;
  queue_capacity : int;
  ctx : Xbound.Ctx.t;
}

type conn = {
  fd : Unix.file_descr;
  wm : Mutex.t;  (* serializes response frames on the socket *)
  cm : Mutex.t;  (* guards the three fields below *)
  mutable inflight : int;
  mutable eof : bool;
  mutable closed : bool;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  sched : Scheduler.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  conns_m : Mutex.t;
  mutable accept_thread : Thread.t option;
  mutable executors : Thread.t list;
  mutable readers : Thread.t list;
  stopping : bool Atomic.t;
}

let c_requests = Telemetry.Counter.make "serve.requests"
let c_rejected = Telemetry.Counter.make "serve.rejected"
let c_connections = Telemetry.Counter.make "serve.connections"
let c_protocol_errors = Telemetry.Counter.make "serve.protocol_errors"
let h_queue_depth = Telemetry.Histogram.make "serve.queue_depth"
let h_latency = Telemetry.Histogram.make "serve.latency_ns"

let addr t = t.config.listen

(* ---------------- connection lifecycle ---------------- *)

let close_conn t c =
  Mutex.lock c.cm;
  let was_closed = c.closed in
  c.closed <- true;
  Mutex.unlock c.cm;
  if not was_closed then begin
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Mutex.lock t.conns_m;
    Hashtbl.remove t.conns c.fd;
    Mutex.unlock t.conns_m
  end

(* A write failure means the client is gone: drop the connection. *)
let send t c frame =
  let payload = Wire.encode_response frame in
  Mutex.lock c.wm;
  let ok =
    try
      Frame.write c.fd payload;
      true
    with Unix.Unix_error _ | Sys_error _ -> false
  in
  Mutex.unlock c.wm;
  if not ok then close_conn t c

(* Called when a request finishes (or is rejected) — once the reader
   has hit EOF and nothing is in flight, the connection is done. *)
let finish t c =
  Mutex.lock c.cm;
  c.inflight <- c.inflight - 1;
  let done_ = c.eof && c.inflight = 0 in
  Mutex.unlock c.cm;
  if done_ then close_conn t c

let execute t c (frame : Wire.request_frame) ~admitted_ns =
  let result =
    try
      Telemetry.span ~cat:"serve" (Exec.op_name frame.request) @@ fun () ->
      Exec.exec ~ctx:t.config.ctx frame.request
    with e ->
      Error
        (Xbound.Error.Analysis
           { program = "(serve)"; message = Printexc.to_string e })
  in
  if Telemetry.enabled () then
    Telemetry.Histogram.observe h_latency
      (Int64.sub (Telemetry.now_ns ()) admitted_ns);
  send t c { Wire.rid = frame.id; result };
  finish t c

(* ---------------- reader thread ---------------- *)

let handle_payload t c payload =
  match Wire.decode_request payload with
  | Error (id, err) ->
    Telemetry.Counter.incr c_protocol_errors;
    send t c { Wire.rid = Option.value id ~default:0; result = Error err };
    `Continue
  | Ok frame ->
    Telemetry.Counter.incr c_requests;
    if Telemetry.enabled () then
      Telemetry.Histogram.observe h_queue_depth
        (Int64.of_int (Scheduler.depth t.sched));
    let admitted_ns =
      if Telemetry.enabled () then Telemetry.now_ns () else 0L
    in
    Mutex.lock c.cm;
    c.inflight <- c.inflight + 1;
    Mutex.unlock c.cm;
    let job =
      {
        Scheduler.priority = frame.priority;
        run = (fun () -> execute t c frame ~admitted_ns);
      }
    in
    (match Scheduler.submit t.sched job with
    | Ok () -> ()
    | Error queued ->
      Telemetry.Counter.incr c_rejected;
      send t c
        {
          Wire.rid = frame.id;
          result =
            Error
              (Xbound.Error.Overloaded
                 { queued; capacity = Scheduler.capacity t.sched });
        };
      finish t c);
    `Continue

let reader t c =
  let rec loop () =
    match Frame.read c.fd with
    | exception (Unix.Unix_error _ | Sys_error _) -> `Eof
    | Error Frame.Eof -> `Eof
    | Error e ->
      (* Framing is lost: answer once, then drop the connection. *)
      Telemetry.Counter.incr c_protocol_errors;
      send t c
        {
          Wire.rid = 0;
          result =
            Error (Xbound.Error.Protocol (Frame.read_error_to_string e));
        };
      `Close
    | Ok payload -> (
      match handle_payload t c payload with `Continue -> loop ())
  in
  match loop () with
  | `Close -> close_conn t c
  | `Eof ->
    (* Keep the connection open for responses still in flight. *)
    Mutex.lock c.cm;
    c.eof <- true;
    let idle = c.inflight = 0 in
    Mutex.unlock c.cm;
    if idle then close_conn t c

(* ---------------- accept / executor threads ---------------- *)

let rec accept_loop t =
  match Unix.accept t.listen_fd with
  | fd, _ when Atomic.get t.stopping ->
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | fd, _ ->
    Telemetry.Counter.incr c_connections;
    let c =
      {
        fd;
        wm = Mutex.create ();
        cm = Mutex.create ();
        inflight = 0;
        eof = false;
        closed = false;
      }
    in
    Mutex.lock t.conns_m;
    Hashtbl.replace t.conns fd c;
    t.readers <- Thread.create (fun () -> reader t c) () :: t.readers;
    Mutex.unlock t.conns_m;
    accept_loop t
  | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
    accept_loop t
  | exception (Unix.Unix_error _ | Sys_error _) ->
    (* stop closed the listening socket — or it broke; either way the
       accept loop is over. *)
    ()

let rec executor_loop sched =
  match Scheduler.next sched with
  | None -> ()
  | Some job ->
    (try job.Scheduler.run () with _ -> ());
    executor_loop sched

(* ---------------- start / stop ---------------- *)

let start config =
  (* A client vanishing mid-write must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  match Addr.listen config.listen with
  | Error _ as e -> e
  | Ok listen_fd ->
    let t =
      {
        config;
        listen_fd;
        sched = Scheduler.create ~capacity:(max 1 config.queue_capacity);
        conns = Hashtbl.create 16;
        conns_m = Mutex.create ();
        accept_thread = None;
        executors = [];
        readers = [];
        stopping = Atomic.make false;
      }
    in
    t.executors <-
      List.init (max 1 config.workers) (fun _ ->
          Thread.create (fun () -> executor_loop t.sched) ());
    t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
    Ok t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Wake the accept thread. Closing a listening fd does not wake a
       thread blocked in accept(2) on Linux; shutdown does on most
       setups, and the self-connect covers the rest (the accept loop
       re-checks [stopping] on every wakeup). *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (match Addr.connect t.config.listen with
    | Ok fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | Error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.config.listen with
    | Addr.Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
    | Addr.Tcp _ -> ());
    (* Wake the executors; queued jobs are dropped. *)
    Scheduler.stop t.sched;
    (* Wake every blocked reader. *)
    Mutex.lock t.conns_m;
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    Mutex.unlock t.conns_m;
    List.iter (fun c -> close_conn t c) conns;
    Option.iter Thread.join t.accept_thread;
    List.iter Thread.join t.executors;
    (* The readers list is only ever appended under conns_m and accept
       has joined, so this snapshot is complete. *)
    Mutex.lock t.conns_m;
    let readers = t.readers in
    t.readers <- [];
    Mutex.unlock t.conns_m;
    List.iter Thread.join readers
  end
