(* The serve daemon loop. See server.mli. *)

module J = Explain.Ejson

type config = {
  listen : Addr.t;
  workers : int;
  queue_capacity : int;
  ctx : Xbound.Ctx.t;
  access_log : string option;
  slow_ms : int;
  trace_sample : int;
  trace_dir : string;
}

let config ?(workers = 1) ?(queue_capacity = 64) ?access_log ?(slow_ms = 0)
    ?(trace_sample = 0) ?(trace_dir = "xbound-traces") ~listen ~ctx () =
  {
    listen;
    workers;
    queue_capacity;
    ctx;
    access_log;
    slow_ms;
    trace_sample;
    trace_dir;
  }

type conn = {
  fd : Unix.file_descr;
  peer : string;
  wm : Mutex.t;  (* serializes response frames on the socket *)
  cm : Mutex.t;  (* guards the three fields below *)
  mutable inflight : int;
  mutable eof : bool;
  mutable closed : bool;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  sched : Scheduler.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  conns_m : Mutex.t;
  alog : Accesslog.t option;
  seq : int Atomic.t;  (* request sequence — the stable request ids *)
  mutable accept_thread : Thread.t option;
  mutable executors : Thread.t list;
  mutable readers : Thread.t list;
  stopping : bool Atomic.t;
}

let c_requests = Telemetry.Counter.make "serve.requests"
let c_admin_requests = Telemetry.Counter.make "serve.admin_requests"
let c_rejected = Telemetry.Counter.make "serve.rejected"
let c_connections = Telemetry.Counter.make "serve.connections"
let c_protocol_errors = Telemetry.Counter.make "serve.protocol_errors"
let c_traces_sampled = Telemetry.Counter.make "serve.traces_sampled"
let h_queue_depth = Telemetry.Histogram.make "serve.queue_depth"
let h_queue_wait = Telemetry.Histogram.make "serve.queue_wait_ns"
let h_exec = Telemetry.Histogram.make "serve.exec_ns"
let h_latency = Telemetry.Histogram.make "serve.latency_ns"
let g_inflight = Telemetry.Gauge.make "serve.inflight"
let g_workers = Telemetry.Gauge.make "serve.workers"
let g_queue_capacity = Telemetry.Gauge.make "serve.queue_capacity"

let addr t = t.config.listen

(* ---------------- connection lifecycle ---------------- *)

let close_conn t c =
  Mutex.lock c.cm;
  let was_closed = c.closed in
  c.closed <- true;
  Mutex.unlock c.cm;
  if not was_closed then begin
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Mutex.lock t.conns_m;
    Hashtbl.remove t.conns c.fd;
    Mutex.unlock t.conns_m
  end

let conn_closed c =
  Mutex.lock c.cm;
  let r = c.closed in
  Mutex.unlock c.cm;
  r

(* A write failure means the client is gone: drop the connection. *)
let send t c frame =
  let payload = Wire.encode_response frame in
  Mutex.lock c.wm;
  let ok =
    try
      Frame.write c.fd payload;
      true
    with Unix.Unix_error _ | Sys_error _ -> false
  in
  Mutex.unlock c.wm;
  if not ok then close_conn t c

(* Called when a request finishes (or is rejected) — once the reader
   has hit EOF and nothing is in flight, the connection is done. *)
let finish t c =
  Telemetry.Gauge.add g_inflight (-1);
  Mutex.lock c.cm;
  c.inflight <- c.inflight - 1;
  let done_ = c.eof && c.inflight = 0 in
  Mutex.unlock c.cm;
  if done_ then close_conn t c

(* ---------------- per-request observability ---------------- *)

(* One JSONL entry per finished (or rejected) request. The [exec_ns]
   and counter values are the exact values fed to the process-wide
   histograms/counters, so for a single client the column sums equal
   the snapshot diff over the run — per-request attribution is exact,
   not sampled. Slow requests (exec above [slow_ms]) are logged at
   warn with their per-phase timings inline. *)
let log_access t ~req_id ~peer ~(frame : Wire.request_frame) ~queue_wait_ns
    ~exec_ns ~outcome ~scope =
  match t.alog with
  | None -> ()
  | Some log ->
    let slow =
      t.config.slow_ms > 0
      && Int64.to_float exec_ns /. 1e6 >= float_of_int t.config.slow_ms
    in
    let counters =
      match scope with
      | None -> []
      | Some s -> Telemetry.Scope.counter_deltas s
    in
    let fields =
      [
        ("ts", J.Num (Unix.gettimeofday ()));
        ("level", J.Str (if slow then "warn" else "info"));
        ("id", J.Str req_id);
        ("client", J.Str peer);
        ("op", J.Str (Exec.op_name frame.request));
        ( "tier",
          match Exec.tier_of_request frame.request with
          | Some tier -> J.Str (Xbound.Tier.to_string tier)
          | None -> J.Null );
        ("priority", J.Str (Wire.priority_to_string frame.priority));
        ("queue_wait_ns", J.Num (Int64.to_float queue_wait_ns));
        ("exec_ns", J.Num (Int64.to_float exec_ns));
        ("outcome", J.Str outcome);
        ( "counters",
          J.Obj
            (List.map (fun (k, v) -> (k, J.Num (float_of_int v))) counters) );
      ]
    in
    let fields =
      if not slow then fields
      else
        fields
        @ [
            ( "phases_s",
              J.Obj
                (List.map
                   (fun (k, v) -> (k, J.Num v))
                   (match scope with
                   | None -> []
                   | Some s -> Telemetry.Scope.phase_totals s)) );
          ]
    in
    Accesslog.write log (J.Obj fields)

(* Every [trace_sample]-th request dumps its scope as a standalone
   Chrome trace under the spool dir. *)
let maybe_dump_trace t ~seq ~op ~scope =
  let n = t.config.trace_sample in
  if n > 0 && seq mod n = 0 then begin
    (try Unix.mkdir t.config.trace_dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> () | Unix.Unix_error _ -> ());
    let file =
      Filename.concat t.config.trace_dir
        (Printf.sprintf "req-%d-%s.json" seq op)
    in
    (try
       Out_channel.with_open_text file (fun oc ->
           output_string oc (Telemetry.Scope.to_chrome_json scope))
     with Sys_error _ -> ());
    Telemetry.Counter.incr c_traces_sampled
  end

let execute t c (frame : Wire.request_frame) ~admitted_ns ~seq =
  let req_id = Printf.sprintf "r%d" seq in
  let started_ns = Telemetry.now_ns () in
  let queue_wait_ns = Int64.sub started_ns admitted_ns in
  if Telemetry.enabled () then
    Telemetry.Histogram.observe h_queue_wait queue_wait_ns;
  let scope = Telemetry.Scope.create ~id:req_id in
  let result =
    try
      Telemetry.Scope.with_scope scope @@ fun () ->
      Telemetry.span ~cat:"serve" (Exec.op_name frame.request) @@ fun () ->
      Exec.exec ~ctx:t.config.ctx frame.request
    with e ->
      Error
        (Xbound.Error.Analysis
           { program = "(serve)"; message = Printexc.to_string e })
  in
  let finished_ns = Telemetry.now_ns () in
  let exec_ns = Int64.sub finished_ns started_ns in
  if Telemetry.enabled () then begin
    Telemetry.Histogram.observe h_exec exec_ns;
    Telemetry.Histogram.observe h_latency (Int64.sub finished_ns admitted_ns)
  end;
  log_access t ~req_id ~peer:c.peer ~frame ~queue_wait_ns ~exec_ns
    ~outcome:(match result with Ok _ -> "ok" | Error _ -> "error")
    ~scope:(Some scope);
  maybe_dump_trace t ~seq ~op:(Exec.op_name frame.request) ~scope;
  send t c { Wire.rid = frame.id; result };
  finish t c

(* ---------------- admin lane ---------------- *)

(* Stats, Health and Watch never enter the scheduler: they run inline
   on the connection's own reader thread, so they answer even when the
   queue is full and rejecting batch work with Overloaded — a health
   check that can be starved by load is not a health check. They are
   counted separately (serve.admin_requests) to keep serve.requests an
   accurate measure of analysis traffic. *)

let watch_loop t c ~rid ~interval_ms ~count =
  let interval_ms = max 10 interval_ms in
  let alive () = (not (Atomic.get t.stopping)) && not (conn_closed c) in
  (* Sleep in short slices so server stop and client disconnect both
     end the stream within ~50 ms. *)
  let rec sleep ms =
    if ms > 0 && alive () then begin
      let chunk = min 50 ms in
      Thread.delay (float_of_int chunk /. 1000.);
      sleep (ms - chunk)
    end
  in
  let send_snap snapshot =
    send t c
      {
        Wire.rid;
        result =
          Ok (Wire.Response.Stats { fmt = Wire.Request.Stats_table; snapshot });
      }
  in
  let prev = ref (Telemetry.Snapshot.take ()) in
  send_snap !prev;
  let remaining = ref (if count <= 0 then -1 else count - 1) in
  while !remaining <> 0 && alive () do
    sleep interval_ms;
    if alive () then begin
      let now = Telemetry.Snapshot.take () in
      send_snap (Telemetry.Snapshot.diff ~before:!prev ~after:now);
      prev := now;
      if !remaining > 0 then decr remaining
    end
  done

let handle_admin t c (frame : Wire.request_frame) =
  Telemetry.Counter.incr c_admin_requests;
  match frame.request with
  | Wire.Request.Watch { interval_ms; count } ->
    watch_loop t c ~rid:frame.id ~interval_ms ~count
  | req ->
    let result = Exec.exec ~ctx:t.config.ctx req in
    send t c { Wire.rid = frame.id; result }

(* ---------------- reader thread ---------------- *)

let handle_payload t c payload =
  match Wire.decode_request payload with
  | Error (id, err) ->
    Telemetry.Counter.incr c_protocol_errors;
    send t c { Wire.rid = Option.value id ~default:0; result = Error err };
    `Continue
  | Ok frame -> (
    match frame.request with
    | Wire.Request.Stats _ | Wire.Request.Health | Wire.Request.Watch _ ->
      handle_admin t c frame;
      `Continue
    | _ ->
      Telemetry.Counter.incr c_requests;
      (match Exec.tier_of_request frame.request with
      | Some tier ->
        Telemetry.Counter.incr
          (Telemetry.Counter.make
             ("serve.tier." ^ Xbound.Tier.to_string tier))
      | None -> ());
      if Telemetry.enabled () then
        Telemetry.Histogram.observe h_queue_depth
          (Int64.of_int (Scheduler.depth t.sched));
      let admitted_ns = Telemetry.now_ns () in
      let seq = Atomic.fetch_and_add t.seq 1 in
      Mutex.lock c.cm;
      c.inflight <- c.inflight + 1;
      Mutex.unlock c.cm;
      Telemetry.Gauge.add g_inflight 1;
      let job =
        {
          Scheduler.priority = frame.priority;
          run = (fun () -> execute t c frame ~admitted_ns ~seq);
        }
      in
      (match Scheduler.submit t.sched job with
      | Ok () -> ()
      | Error queued ->
        Telemetry.Counter.incr c_rejected;
        log_access t
          ~req_id:(Printf.sprintf "r%d" seq)
          ~peer:c.peer ~frame ~queue_wait_ns:0L ~exec_ns:0L
          ~outcome:"rejected" ~scope:None;
        send t c
          {
            Wire.rid = frame.id;
            result =
              Error
                (Xbound.Error.Overloaded
                   { queued; capacity = Scheduler.capacity t.sched });
          };
        finish t c);
      `Continue)

let reader t c =
  let rec loop () =
    match Frame.read c.fd with
    | exception (Unix.Unix_error _ | Sys_error _) -> `Eof
    | Error Frame.Eof -> `Eof
    | Error e ->
      (* Framing is lost: answer once, then drop the connection. *)
      Telemetry.Counter.incr c_protocol_errors;
      send t c
        {
          Wire.rid = 0;
          result =
            Error (Xbound.Error.Protocol (Frame.read_error_to_string e));
        };
      `Close
    | Ok payload -> (
      match handle_payload t c payload with `Continue -> loop ())
  in
  match loop () with
  | `Close -> close_conn t c
  | `Eof ->
    (* Keep the connection open for responses still in flight. *)
    Mutex.lock c.cm;
    c.eof <- true;
    let idle = c.inflight = 0 in
    Mutex.unlock c.cm;
    if idle then close_conn t c

(* ---------------- accept / executor threads ---------------- *)

let peer_string fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | exception Unix.Unix_error _ -> "?"

let rec accept_loop t =
  match Unix.accept t.listen_fd with
  | fd, _ when Atomic.get t.stopping ->
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | fd, _ ->
    Telemetry.Counter.incr c_connections;
    let c =
      {
        fd;
        peer = peer_string fd;
        wm = Mutex.create ();
        cm = Mutex.create ();
        inflight = 0;
        eof = false;
        closed = false;
      }
    in
    Mutex.lock t.conns_m;
    Hashtbl.replace t.conns fd c;
    t.readers <- Thread.create (fun () -> reader t c) () :: t.readers;
    Mutex.unlock t.conns_m;
    accept_loop t
  | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
    accept_loop t
  | exception (Unix.Unix_error _ | Sys_error _) ->
    (* stop closed the listening socket — or it broke; either way the
       accept loop is over. *)
    ()

let rec executor_loop sched =
  match Scheduler.next sched with
  | None -> ()
  | Some job ->
    (try job.Scheduler.run () with _ -> ());
    executor_loop sched

(* ---------------- start / stop ---------------- *)

let start config =
  (* A client vanishing mid-write must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (* A long-lived daemon needs counters/histograms live for Stats and
     Watch, but must not accumulate span events forever: install an
     event-dropping sink unless the operator already installed one
     (e.g. --trace, which wants the events). *)
  if not (Telemetry.enabled ()) then
    Telemetry.set_ambient (Some (Telemetry.create ~retain_events:false ()));
  Telemetry.Gauge.set g_workers (max 1 config.workers);
  Telemetry.Gauge.set g_queue_capacity (max 1 config.queue_capacity);
  let open_alog () =
    match config.access_log with
    | None -> Ok None
    | Some path -> (
      match Accesslog.open_ path with
      | Ok log -> Ok (Some log)
      | Error m -> Error ("cannot open access log: " ^ m))
  in
  match open_alog () with
  | Error _ as e -> e
  | Ok alog -> (
    match Addr.listen config.listen with
    | Error _ as e ->
      Option.iter Accesslog.close alog;
      e
    | Ok listen_fd ->
      let t =
        {
          config;
          listen_fd;
          sched = Scheduler.create ~capacity:(max 1 config.queue_capacity);
          conns = Hashtbl.create 16;
          conns_m = Mutex.create ();
          alog;
          seq = Atomic.make 1;
          accept_thread = None;
          executors = [];
          readers = [];
          stopping = Atomic.make false;
        }
      in
      t.executors <-
        List.init (max 1 config.workers) (fun _ ->
            Thread.create (fun () -> executor_loop t.sched) ());
      t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
      Ok t)

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Wake the accept thread. Closing a listening fd does not wake a
       thread blocked in accept(2) on Linux; shutdown does on most
       setups, and the self-connect covers the rest (the accept loop
       re-checks [stopping] on every wakeup). *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (match Addr.connect t.config.listen with
    | Ok fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | Error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.config.listen with
    | Addr.Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
    | Addr.Tcp _ -> ());
    (* Wake the executors; queued jobs are dropped. *)
    Scheduler.stop t.sched;
    (* Wake every blocked reader (this also ends Watch streams: their
       [alive] check sees [stopping] within one 50 ms slice). *)
    Mutex.lock t.conns_m;
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    Mutex.unlock t.conns_m;
    List.iter (fun c -> close_conn t c) conns;
    Option.iter Thread.join t.accept_thread;
    List.iter Thread.join t.executors;
    (* The readers list is only ever appended under conns_m and accept
       has joined, so this snapshot is complete. *)
    Mutex.lock t.conns_m;
    let readers = t.readers in
    t.readers <- [];
    Mutex.unlock t.conns_m;
    List.iter Thread.join readers;
    Option.iter Accesslog.close t.alog
  end
