(* Structured JSONL access log. See accesslog.mli. *)

module J = Explain.Ejson

type t = { oc : out_channel; m : Mutex.t }

let open_ path =
  match open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path with
  | exception Sys_error m -> Error m
  | oc -> Ok { oc; m = Mutex.create () }

let write t json =
  Mutex.lock t.m;
  (try
     output_string t.oc (J.to_string json);
     output_char t.oc '\n';
     (* One line per request: flush so a tail -f (or a crash) never
        sees a torn entry. *)
     flush t.oc
   with Sys_error _ -> ());
  Mutex.unlock t.m

let close t =
  Mutex.lock t.m;
  (try close_out t.oc with Sys_error _ -> ());
  Mutex.unlock t.m
