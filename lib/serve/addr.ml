type t = Unix_sock of string | Tcp of string * int

let of_string s =
  match String.rindex_opt s ':' with
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when host <> "" && not (String.contains host '/') -> Tcp (host, p)
    | _ -> Unix_sock s)
  | None -> Unix_sock s

let to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let sockaddr_of = function
  | Unix_sock path -> Ok (Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> Error ("no address for host " ^ host)
    | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), port))
    | exception Not_found -> Error ("unknown host " ^ host))

let domain_of = function Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let connect addr =
  match sockaddr_of addr with
  | Error m -> Error m
  | Ok sa -> (
    let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" (to_string addr)
           (Unix.error_message e)))

let listen ?(backlog = 64) addr =
  (* A unix socket file survives its daemon; if nothing answers on it,
     it is stale and safe to unlink. If something does answer, refuse to
     hijack the address. *)
  (match addr with
  | Unix_sock path when Sys.file_exists path -> (
    match connect addr with
    | Ok fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      ()
    | Error _ -> ( try Sys.remove path with Sys_error _ -> ()))
  | _ -> ());
  match sockaddr_of addr with
  | Error m -> Error m
  | Ok sa -> (
    let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
    (match addr with
    | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
    | Unix_sock _ -> ());
    match
      Unix.bind fd sa;
      Unix.listen fd backlog
    with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot listen on %s: %s" (to_string addr)
           (Unix.error_message e)))
