(* Request execution against the Xbound facade. See exec.mli. *)

let ( let* ) = Result.bind

let op_name = function
  | Wire.Request.Analyze _ -> "analyze"
  | Wire.Request.Explain _ -> "explain"
  | Wire.Request.Run_concrete _ -> "run_concrete"
  | Wire.Request.Optimize _ -> "optimize"
  | Wire.Request.Bench_list -> "bench_list"
  | Wire.Request.Cache_stats -> "cache_stats"
  | Wire.Request.Stats _ -> "stats"
  | Wire.Request.Health -> "health"
  | Wire.Request.Watch _ -> "watch"

(* The tier a request asks for, where that makes sense — the tier-mix
   counters and the access log report it. *)
let tier_of_request = function
  | Wire.Request.Analyze { tier; _ } | Wire.Request.Explain { tier; _ } ->
    Some tier
  | _ -> None

let all_benches = Benchprogs.Bench.all @ Benchprogs.Extended.all

let find_bench name =
  match
    List.find_opt
      (fun b -> String.equal b.Benchprogs.Bench.name name)
      all_benches
  with
  | Some b -> Ok b
  | None ->
    Error
      (Xbound.Error.Unknown_benchmark
         {
           name;
           available = List.map (fun b -> b.Benchprogs.Bench.name) all_benches;
         })

(* Auto tier under a long-lived server: when the immediate answer came
   from the static tier (the facade found exact escalation infeasible or
   failing), still attempt the exact tier on a detached thread so the
   shared cache warms up for later requests. The attempt self-limits via
   the benchmark's [max_paths]; its result (or failure) is discarded. *)
let warm_exact_in_background ~ctx ~requested program (a : Xbound.analysis) =
  if
    requested = Xbound.Tier.Auto
    && a.Xbound.tier = Xbound.Tier.Static
    && Option.is_some ctx.Xbound.Ctx.cache
  then
    ignore
      (Thread.create
         (fun () ->
           try
             ignore
               (Xbound.analyze
                  ~ctx:{ ctx with Xbound.Ctx.tier = Xbound.Tier.Exact }
                  program)
           with _ -> ())
         ())

let analyze ~ctx bench tier =
  let ctx = { ctx with Xbound.Ctx.tier } in
  let* program = Xbound.bench bench in
  let* a = Xbound.analyze ~ctx program in
  warm_exact_in_background ~ctx ~requested:tier program a;
  Ok
    (Wire.Response.Analysis
       {
         name = bench;
         tier = a.Xbound.tier;
         paths = a.Xbound.paths;
         forks = a.Xbound.forks;
         dedup_hits = a.Xbound.dedup_hits;
         total_cycles = a.Xbound.total_cycles;
         peak_power = a.Xbound.peak_power;
         peak_index = a.Xbound.peak_index;
         peak_energy = a.Xbound.peak_energy;
         peak_energy_cycles = a.Xbound.peak_energy_cycles;
         npe_j_per_cycle = a.Xbound.npe_j_per_cycle;
         power_trace_w = a.Xbound.power_trace_w;
       })

(* A static-tier explanation is the per-block provenance table plus (in
   table format) the measured gap versus the exact tier. The exact run
   shares the cache, so on a warmed server this footer is cheap; when
   exact exploration is infeasible the footer degrades to n/a. *)
let static_explanation ~ctx s fmt program =
  match fmt with
  | Wire.Request.Json -> Static.Ipet.to_json s ^ "\n"
  | Wire.Request.Csv -> Static.Ipet.to_csv s
  | Wire.Request.Table ->
    let footer =
      match
        Xbound.analyze
          ~ctx:{ ctx with Xbound.Ctx.tier = Xbound.Tier.Exact }
          program
      with
      | Ok e ->
        let gap stat exact =
          if exact = 0.0 then 0.0 else (stat -. exact) /. exact *. 100.0
        in
        Printf.sprintf
          "vs exact tier: peak power +%.1f%% (%s vs %s mW), peak energy \
           +%.1f%% (%.3f vs %.3f nJ)\n"
          (gap s.Static.Ipet.s_peak_power_w (Xbound.peak_power_w e))
          (Report.Render.mw s.Static.Ipet.s_peak_power_w)
          (Report.Render.mw (Xbound.peak_power_w e))
          (gap s.Static.Ipet.s_peak_energy_j (Xbound.peak_energy_j e))
          (s.Static.Ipet.s_peak_energy_j *. 1e9)
          (Xbound.peak_energy_j e *. 1e9)
      | Error err ->
        Printf.sprintf "vs exact tier: n/a (%s)\n" (Xbound.Error.to_string err)
    in
    Static.Ipet.to_table s ^ footer

let explain ~ctx bench fmt top min_gap tier =
  let ctx = { ctx with Xbound.Ctx.tier } in
  let* program = Xbound.bench bench in
  let* a = Xbound.analyze ~ctx program in
  let text =
    Telemetry.span "render" @@ fun () ->
    match Xbound.static_detail a with
    | Some s -> static_explanation ~ctx s fmt program
    | None -> (
      let ex = Xbound.explain ~ctx ~top ~min_gap a in
      match fmt with
      | Wire.Request.Table -> Explain.Report.to_table ex
      | Wire.Request.Json -> Explain.Report.to_json_string ex ^ "\n"
      | Wire.Request.Csv -> Explain.Report.to_csv ex)
  in
  Ok (Wire.Response.Explanation { name = bench; fmt; text })

let run_concrete ~ctx bench seed =
  let* b = find_bench bench in
  let* program = Xbound.bench bench in
  let* t =
    Xbound.run_concrete ~ctx program
      ~inputs:[ (Benchprogs.Bench.input_base, b.Benchprogs.Bench.gen_inputs ~seed) ]
  in
  Ok
    (Wire.Response.Concrete
       {
         name = bench;
         seed;
         cycles = t.Xbound.cycles;
         peak_w = t.Xbound.peak_w;
         peak_cycle = t.Xbound.peak_cycle;
         trace_w = t.Xbound.trace_w;
       })

let optimize ~ctx bench =
  let* o = Xbound.optimize ~ctx bench in
  Ok
    (Wire.Response.Optimization
       {
         name = bench;
         chosen = o.Xbound.chosen;
         base_peak_w = o.Xbound.base_peak_w;
         opt_peak_w = o.Xbound.opt_peak_w;
         peak_reduction_pct = o.Xbound.peak_reduction_pct;
         range_reduction_pct = o.Xbound.range_reduction_pct;
         perf_degradation_pct = o.Xbound.perf_degradation_pct;
         energy_overhead_pct = o.Xbound.energy_overhead_pct;
       })

let bench_list () =
  let entry extended b =
    (b.Benchprogs.Bench.name, b.Benchprogs.Bench.description, extended)
  in
  Ok
    (Wire.Response.Benchmarks
       (List.map (entry false) Benchprogs.Bench.all
       @ List.map (entry true) Benchprogs.Extended.all))

let cache_stats ~ctx () =
  match ctx.Xbound.Ctx.cache with
  | None -> Error (Xbound.Error.Cache "cache disabled (--no-cache)")
  | Some cache ->
    let entries, bytes = Cache.disk_stats cache in
    let by_ns = Cache.disk_stats_by_ns cache in
    Ok
      (Wire.Response.Cache_stats { dir = Cache.dir cache; entries; bytes; by_ns })

(* Stats and Health read only process-wide telemetry (the serve gauges
   are maintained by the running server, and are simply 0 in-process),
   so the same executor serves the CLI and the daemon's admin lane. *)
let stats fmt =
  Ok (Wire.Response.Stats { fmt; snapshot = Telemetry.Snapshot.take () })

let health () =
  let g name = Telemetry.Gauge.value (Telemetry.Gauge.make name) in
  Ok
    (Wire.Response.Health
       {
         ok = true;
         uptime_s = Telemetry.uptime_s ();
         queue_len = g "serve.queue_len";
         queue_capacity = g "serve.queue_capacity";
         inflight = g "serve.inflight";
         workers = g "serve.workers";
       })

let exec ~ctx = function
  | Wire.Request.Analyze { bench; tier } -> analyze ~ctx bench tier
  | Wire.Request.Explain { bench; fmt; top; min_gap; tier } ->
    explain ~ctx bench fmt top min_gap tier
  | Wire.Request.Run_concrete { bench; seed } -> run_concrete ~ctx bench seed
  | Wire.Request.Optimize { bench } -> optimize ~ctx bench
  | Wire.Request.Bench_list -> bench_list ()
  | Wire.Request.Cache_stats -> cache_stats ~ctx ()
  | Wire.Request.Stats { fmt } -> stats fmt
  | Wire.Request.Health -> health ()
  | Wire.Request.Watch _ ->
    (* Streaming only makes sense over a connection; the server handles
       Watch on its admin lane and never routes it here. *)
    Error (Xbound.Error.Protocol "watch requires a daemon connection")
