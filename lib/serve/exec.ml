(* Request execution against the Xbound facade. See exec.mli. *)

let ( let* ) = Result.bind

let op_name = function
  | Wire.Request.Analyze _ -> "analyze"
  | Wire.Request.Explain _ -> "explain"
  | Wire.Request.Run_concrete _ -> "run_concrete"
  | Wire.Request.Optimize _ -> "optimize"
  | Wire.Request.Bench_list -> "bench_list"
  | Wire.Request.Cache_stats -> "cache_stats"

let all_benches = Benchprogs.Bench.all @ Benchprogs.Extended.all

let find_bench name =
  match
    List.find_opt
      (fun b -> String.equal b.Benchprogs.Bench.name name)
      all_benches
  with
  | Some b -> Ok b
  | None ->
    Error
      (Xbound.Error.Unknown_benchmark
         {
           name;
           available = List.map (fun b -> b.Benchprogs.Bench.name) all_benches;
         })

let analyze ~ctx bench =
  let* program = Xbound.bench bench in
  let* a = Xbound.analyze ~ctx program in
  Ok
    (Wire.Response.Analysis
       {
         name = bench;
         paths = a.Xbound.paths;
         forks = a.Xbound.forks;
         dedup_hits = a.Xbound.dedup_hits;
         total_cycles = a.Xbound.total_cycles;
         peak_power_w = a.Xbound.peak_power_w;
         peak_index = a.Xbound.peak_index;
         peak_energy_j = a.Xbound.peak_energy_j;
         peak_energy_cycles = a.Xbound.peak_energy_cycles;
         npe_j_per_cycle = a.Xbound.npe_j_per_cycle;
         power_trace_w = a.Xbound.power_trace_w;
       })

let explain ~ctx bench fmt top min_gap =
  let* program = Xbound.bench bench in
  let* a = Xbound.analyze ~ctx program in
  let ex = Xbound.explain ~ctx ~top ~min_gap a in
  let text =
    Telemetry.span "render" @@ fun () ->
    match fmt with
    | Wire.Request.Table -> Explain.Report.to_table ex
    | Wire.Request.Json -> Explain.Report.to_json_string ex ^ "\n"
    | Wire.Request.Csv -> Explain.Report.to_csv ex
  in
  Ok (Wire.Response.Explanation { name = bench; fmt; text })

let run_concrete ~ctx bench seed =
  let* b = find_bench bench in
  let* program = Xbound.bench bench in
  let* t =
    Xbound.run_concrete ~ctx program
      ~inputs:[ (Benchprogs.Bench.input_base, b.Benchprogs.Bench.gen_inputs ~seed) ]
  in
  Ok
    (Wire.Response.Concrete
       {
         name = bench;
         seed;
         cycles = t.Xbound.cycles;
         peak_w = t.Xbound.peak_w;
         peak_cycle = t.Xbound.peak_cycle;
         trace_w = t.Xbound.trace_w;
       })

let optimize ~ctx bench =
  let* o = Xbound.optimize ~ctx bench in
  Ok
    (Wire.Response.Optimization
       {
         name = bench;
         chosen = o.Xbound.chosen;
         base_peak_w = o.Xbound.base_peak_w;
         opt_peak_w = o.Xbound.opt_peak_w;
         peak_reduction_pct = o.Xbound.peak_reduction_pct;
         range_reduction_pct = o.Xbound.range_reduction_pct;
         perf_degradation_pct = o.Xbound.perf_degradation_pct;
         energy_overhead_pct = o.Xbound.energy_overhead_pct;
       })

let bench_list () =
  let entry extended b =
    (b.Benchprogs.Bench.name, b.Benchprogs.Bench.description, extended)
  in
  Ok
    (Wire.Response.Benchmarks
       (List.map (entry false) Benchprogs.Bench.all
       @ List.map (entry true) Benchprogs.Extended.all))

let cache_stats ~ctx () =
  match ctx.Xbound.Ctx.cache with
  | None -> Error (Xbound.Error.Cache "cache disabled (--no-cache)")
  | Some cache ->
    let entries, bytes = Cache.disk_stats cache in
    Ok (Wire.Response.Cache_stats { dir = Cache.dir cache; entries; bytes })

let exec ~ctx = function
  | Wire.Request.Analyze { bench } -> analyze ~ctx bench
  | Wire.Request.Explain { bench; fmt; top; min_gap } ->
    explain ~ctx bench fmt top min_gap
  | Wire.Request.Run_concrete { bench; seed } -> run_concrete ~ctx bench seed
  | Wire.Request.Optimize { bench } -> optimize ~ctx bench
  | Wire.Request.Bench_list -> bench_list ()
  | Wire.Request.Cache_stats -> cache_stats ~ctx ()
