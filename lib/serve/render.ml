(* Response rendering. See render.mli. *)

(* Exact-tier output is byte-identical to the v1 rendering; the static
   tier has no flattened trace, so its block reads differently. *)
let analysis ~name ~tier ~paths ~forks ~dedup_hits ~total_cycles ~peak_power
    ~peak_index ~peak_energy ~peak_energy_cycles ~npe_j_per_cycle
    ~power_trace_w =
  let b = Buffer.create 512 in
  let pk_w = peak_power.Xbound.Bound.value in
  let pe_j = peak_energy.Xbound.Bound.value in
  Printf.bprintf b "%s:\n" name;
  (match tier with
  | Xbound.Tier.Static ->
    Printf.bprintf b
      "static tier: CFG + per-block characterization + IPET combiner\n";
    Printf.bprintf b "peak power bound:  %s mW [static]\n"
      (Report.Render.mw pk_w);
    Printf.bprintf b
      "peak energy bound: %.3f nJ over <=%d cycles (%s pJ/cycle) [static]\n"
      (pe_j *. 1e9) peak_energy_cycles
      (Report.Render.npe_pj npe_j_per_cycle)
  | _ ->
    Printf.bprintf b
      "symbolic execution: %d paths, %d forks, %d dedup hits, %d cycles\n"
      paths forks dedup_hits total_cycles;
    Printf.bprintf b
      "peak power bound:  %s mW (cycle %d of the flattened trace)\n"
      (Report.Render.mw pk_w) peak_index;
    Printf.bprintf b "peak energy bound: %.3f nJ over %d cycles (%s pJ/cycle)\n"
      (pe_j *. 1e9) peak_energy_cycles
      (Report.Render.npe_pj npe_j_per_cycle);
    Printf.bprintf b "trace: %s\n" (Report.Render.series power_trace_w));
  Buffer.contents b

let concrete ~name ~seed ~cycles ~peak_w ~peak_cycle ~trace_w =
  Printf.sprintf "%s seed %d: %d cycles, peak %s mW at cycle %d\n%s\n" name seed
    cycles
    (Report.Render.mw peak_w)
    peak_cycle
    (Report.Render.series trace_w)

let optimization ~name ~chosen ~base_peak_w ~opt_peak_w ~peak_reduction_pct
    ~range_reduction_pct ~perf_degradation_pct ~energy_overhead_pct =
  let b = Buffer.create 256 in
  Printf.bprintf b "%s: applied %s\n" name
    (match chosen with
    | [] -> "(no transform reduced the bound)"
    | opts -> String.concat ", " opts);
  Printf.bprintf b "  peak power: %s -> %s mW (%.1f%% reduction)\n"
    (Report.Render.mw base_peak_w)
    (Report.Render.mw opt_peak_w)
    peak_reduction_pct;
  Printf.bprintf b "  dynamic range reduction: %.1f%%\n" range_reduction_pct;
  Printf.bprintf b "  performance cost: %.2f%%, energy cost: %.2f%%\n"
    perf_degradation_pct energy_overhead_pct;
  Buffer.contents b

let benchmarks entries =
  let b = Buffer.create 512 in
  Buffer.add_string b "paper suite (Table 4.1):\n";
  List.iter
    (fun (name, descr, extended) ->
      if not extended then Printf.bprintf b "  %-10s %s\n" name descr)
    entries;
  Buffer.add_string b "extended kernels:\n";
  List.iter
    (fun (name, descr, extended) ->
      if extended then Printf.bprintf b "  %-10s %s\n" name descr)
    entries;
  Buffer.contents b

let cache_stats ~dir ~entries ~bytes ~by_ns =
  let b = Buffer.create 128 in
  Printf.bprintf b "cache directory: %s\nentries: %d\nsize: %.1f KiB\n"
    (Option.value dir ~default:"(memory only)")
    entries
    (float_of_int bytes /. 1024.);
  List.iter
    (fun (ns, (e, byt)) ->
      Printf.bprintf b "  %-12s %6d entries %10.1f KiB\n" ns e
        (float_of_int byt /. 1024.))
    by_ns;
  Buffer.contents b

(* ---------------- observability ---------------- *)

let mib n = float_of_int n /. (1024. *. 1024.)
let ms ns = Int64.to_float ns /. 1e6

(* One histogram row, unit-aware: *_ns distributions in ms, anything
   else as integer counts. Shared by the stats table and `top`. *)
let histo_row b (h : Telemetry.Snapshot.histo) =
  if String.ends_with ~suffix:"_ns" h.hname then
    Printf.bprintf b
      "  %-28s %8d obs  mean %9.3f ms  p50 %9.3f  p90 %9.3f  p99 %9.3f  max \
       %9.3f\n"
      h.hname h.count
      (Int64.to_float h.sum_ns /. 1e6 /. float_of_int h.count)
      (ms h.p50) (ms h.p90) (ms h.p99) (ms h.max_ns)
  else
    Printf.bprintf b
      "  %-28s %8d obs  mean %9.1f     p50 %9Ld  p90 %9Ld  p99 %9Ld  max \
       %9Ld\n"
      h.hname h.count
      (Int64.to_float h.sum_ns /. float_of_int h.count)
      h.p50 h.p90 h.p99 h.max_ns

let stats_table (s : Telemetry.Snapshot.t) =
  let b = Buffer.create 2048 in
  Printf.bprintf b "uptime %.3f s, rss %.1f MiB, active spans %d\n" s.uptime_s
    (mib s.rss_bytes) s.active_spans;
  (match s.gauges with
  | [] -> ()
  | gs ->
    Buffer.add_string b "gauges:\n";
    List.iter (fun (name, v) -> Printf.bprintf b "  %-28s %d\n" name v) gs);
  (match List.filter (fun (_, v) -> v <> 0) s.counters with
  | [] -> ()
  | cs ->
    Buffer.add_string b "counters:\n";
    List.iter (fun (name, v) -> Printf.bprintf b "  %-28s %d\n" name v) cs);
  (match s.histograms with
  | [] -> ()
  | hs ->
    Buffer.add_string b "histograms:\n";
    List.iter (fun h -> histo_row b h) hs);
  Buffer.contents b

let stats ~fmt ~snapshot =
  match fmt with
  | Wire.Request.Stats_table -> stats_table snapshot
  | Wire.Request.Stats_json ->
    Explain.Ejson.to_string (Wire.snapshot_to_json snapshot) ^ "\n"
  | Wire.Request.Stats_prometheus -> Telemetry.Snapshot.to_prometheus snapshot

let health ~ok ~uptime_s ~queue_len ~queue_capacity ~inflight ~workers =
  Printf.sprintf "%s: uptime %.1f s, %d workers, queue %d/%d, %d inflight\n"
    (if ok then "ok" else "degraded")
    uptime_s workers queue_len queue_capacity inflight

(* One `xbound top` frame from a snapshot diff (the Watch stream's
   per-interval payload): rates over the window, the live gauges, the
   cache hit ratio, the tier mix and per-phase latency percentiles. *)
let top (d : Telemetry.Snapshot.t) =
  let b = Buffer.create 1024 in
  let counter name =
    Option.value (List.assoc_opt name d.counters) ~default:0
  in
  let gauge name = Option.value (List.assoc_opt name d.gauges) ~default:0 in
  let histo name =
    List.find_opt
      (fun (h : Telemetry.Snapshot.histo) -> String.equal h.hname name)
      d.histograms
  in
  let window = if d.uptime_s > 0. then d.uptime_s else 1. in
  let rate n = float_of_int n /. window in
  Printf.bprintf b "xbound top — window %.1f s, rss %.1f MiB\n" d.uptime_s
    (mib d.rss_bytes);
  Printf.bprintf b
    "  requests/s %6.1f   rejected/s %6.1f   queue %d/%d   inflight %d\n"
    (rate (counter "serve.requests"))
    (rate (counter "serve.rejected"))
    (gauge "serve.queue_len")
    (gauge "serve.queue_capacity")
    (gauge "serve.inflight");
  let hits =
    counter "cache.mem_hits" + counter "cache.disk_hits"
    + counter "cache.joined"
  in
  let misses = counter "cache.misses" in
  if hits + misses > 0 then
    Printf.bprintf b "  cache hit ratio %.1f%% (%d hits, %d misses)\n"
      (100. *. float_of_int hits /. float_of_int (hits + misses))
      hits misses;
  (* Specialization effectiveness over the window: folded gates as a
     share of all gates compiled into engines. *)
  let folded = counter "engine.gates_folded" in
  let gates = counter "engine.gates_total" in
  if gates > 0 then
    Printf.bprintf b "  fold ratio %.2f%% (%d of %d gates, %d swept)\n"
      (100. *. float_of_int folded /. float_of_int gates)
      folded gates
      (counter "engine.gates_swept");
  let tiers =
    List.filter_map
      (fun (name, v) ->
        let prefix = "serve.tier." in
        if String.starts_with ~prefix name && v > 0 then
          Some
            (Printf.sprintf "%s %d"
               (String.sub name (String.length prefix)
                  (String.length name - String.length prefix))
               v)
        else None)
      d.counters
  in
  if tiers <> [] then
    Printf.bprintf b "  tier mix: %s\n" (String.concat ", " tiers);
  List.iter
    (fun name ->
      match histo name with
      | Some h ->
        Printf.bprintf b "  %-20s p50 %8.3f ms  p99 %8.3f ms  (%d obs)\n"
          (String.sub name 6 (String.length name - 6 - 3))
          (ms h.p50) (ms h.p99) h.count
      | None -> ())
    [ "serve.queue_wait_ns"; "serve.exec_ns"; "serve.latency_ns" ];
  let phases =
    List.filter
      (fun (h : Telemetry.Snapshot.histo) ->
        String.starts_with ~prefix:"span.phase." h.hname)
      d.histograms
  in
  if phases <> [] then begin
    Buffer.add_string b "  phases (p50/p99 ms):\n";
    List.iter
      (fun (h : Telemetry.Snapshot.histo) ->
        let name =
          String.sub h.hname 11 (String.length h.hname - 11 - 3)
        in
        Printf.bprintf b "    %-18s %8.3f / %8.3f  (%d)\n" name (ms h.p50)
          (ms h.p99) h.count)
      phases
  end;
  Buffer.contents b

let to_string = function
  | Wire.Response.Analysis
      {
        name;
        tier;
        paths;
        forks;
        dedup_hits;
        total_cycles;
        peak_power;
        peak_index;
        peak_energy;
        peak_energy_cycles;
        npe_j_per_cycle;
        power_trace_w;
      } ->
    analysis ~name ~tier ~paths ~forks ~dedup_hits ~total_cycles ~peak_power
      ~peak_index ~peak_energy ~peak_energy_cycles ~npe_j_per_cycle
      ~power_trace_w
  | Wire.Response.Explanation { text; _ } -> text
  | Wire.Response.Concrete { name; seed; cycles; peak_w; peak_cycle; trace_w }
    ->
    concrete ~name ~seed ~cycles ~peak_w ~peak_cycle ~trace_w
  | Wire.Response.Optimization
      {
        name;
        chosen;
        base_peak_w;
        opt_peak_w;
        peak_reduction_pct;
        range_reduction_pct;
        perf_degradation_pct;
        energy_overhead_pct;
      } ->
    optimization ~name ~chosen ~base_peak_w ~opt_peak_w ~peak_reduction_pct
      ~range_reduction_pct ~perf_degradation_pct ~energy_overhead_pct
  | Wire.Response.Benchmarks entries -> benchmarks entries
  | Wire.Response.Cache_stats { dir; entries; bytes; by_ns } ->
    cache_stats ~dir ~entries ~bytes ~by_ns
  | Wire.Response.Stats { fmt; snapshot } -> stats ~fmt ~snapshot
  | Wire.Response.Health { ok; uptime_s; queue_len; queue_capacity; inflight; workers }
    ->
    health ~ok ~uptime_s ~queue_len ~queue_capacity ~inflight ~workers
