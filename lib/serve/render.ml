(* Response rendering. See render.mli. *)

(* Exact-tier output is byte-identical to the v1 rendering; the static
   tier has no flattened trace, so its block reads differently. *)
let analysis ~name ~tier ~paths ~forks ~dedup_hits ~total_cycles ~peak_power
    ~peak_index ~peak_energy ~peak_energy_cycles ~npe_j_per_cycle
    ~power_trace_w =
  let b = Buffer.create 512 in
  let pk_w = peak_power.Xbound.Bound.value in
  let pe_j = peak_energy.Xbound.Bound.value in
  Printf.bprintf b "%s:\n" name;
  (match tier with
  | Xbound.Tier.Static ->
    Printf.bprintf b
      "static tier: CFG + per-block characterization + IPET combiner\n";
    Printf.bprintf b "peak power bound:  %s mW [static]\n"
      (Report.Render.mw pk_w);
    Printf.bprintf b
      "peak energy bound: %.3f nJ over <=%d cycles (%s pJ/cycle) [static]\n"
      (pe_j *. 1e9) peak_energy_cycles
      (Report.Render.npe_pj npe_j_per_cycle)
  | _ ->
    Printf.bprintf b
      "symbolic execution: %d paths, %d forks, %d dedup hits, %d cycles\n"
      paths forks dedup_hits total_cycles;
    Printf.bprintf b
      "peak power bound:  %s mW (cycle %d of the flattened trace)\n"
      (Report.Render.mw pk_w) peak_index;
    Printf.bprintf b "peak energy bound: %.3f nJ over %d cycles (%s pJ/cycle)\n"
      (pe_j *. 1e9) peak_energy_cycles
      (Report.Render.npe_pj npe_j_per_cycle);
    Printf.bprintf b "trace: %s\n" (Report.Render.series power_trace_w));
  Buffer.contents b

let concrete ~name ~seed ~cycles ~peak_w ~peak_cycle ~trace_w =
  Printf.sprintf "%s seed %d: %d cycles, peak %s mW at cycle %d\n%s\n" name seed
    cycles
    (Report.Render.mw peak_w)
    peak_cycle
    (Report.Render.series trace_w)

let optimization ~name ~chosen ~base_peak_w ~opt_peak_w ~peak_reduction_pct
    ~range_reduction_pct ~perf_degradation_pct ~energy_overhead_pct =
  let b = Buffer.create 256 in
  Printf.bprintf b "%s: applied %s\n" name
    (match chosen with
    | [] -> "(no transform reduced the bound)"
    | opts -> String.concat ", " opts);
  Printf.bprintf b "  peak power: %s -> %s mW (%.1f%% reduction)\n"
    (Report.Render.mw base_peak_w)
    (Report.Render.mw opt_peak_w)
    peak_reduction_pct;
  Printf.bprintf b "  dynamic range reduction: %.1f%%\n" range_reduction_pct;
  Printf.bprintf b "  performance cost: %.2f%%, energy cost: %.2f%%\n"
    perf_degradation_pct energy_overhead_pct;
  Buffer.contents b

let benchmarks entries =
  let b = Buffer.create 512 in
  Buffer.add_string b "paper suite (Table 4.1):\n";
  List.iter
    (fun (name, descr, extended) ->
      if not extended then Printf.bprintf b "  %-10s %s\n" name descr)
    entries;
  Buffer.add_string b "extended kernels:\n";
  List.iter
    (fun (name, descr, extended) ->
      if extended then Printf.bprintf b "  %-10s %s\n" name descr)
    entries;
  Buffer.contents b

let cache_stats ~dir ~entries ~bytes ~by_ns =
  let b = Buffer.create 128 in
  Printf.bprintf b "cache directory: %s\nentries: %d\nsize: %.1f KiB\n"
    (Option.value dir ~default:"(memory only)")
    entries
    (float_of_int bytes /. 1024.);
  List.iter
    (fun (ns, (e, byt)) ->
      Printf.bprintf b "  %-12s %6d entries %10.1f KiB\n" ns e
        (float_of_int byt /. 1024.))
    by_ns;
  Buffer.contents b

let to_string = function
  | Wire.Response.Analysis
      {
        name;
        tier;
        paths;
        forks;
        dedup_hits;
        total_cycles;
        peak_power;
        peak_index;
        peak_energy;
        peak_energy_cycles;
        npe_j_per_cycle;
        power_trace_w;
      } ->
    analysis ~name ~tier ~paths ~forks ~dedup_hits ~total_cycles ~peak_power
      ~peak_index ~peak_energy ~peak_energy_cycles ~npe_j_per_cycle
      ~power_trace_w
  | Wire.Response.Explanation { text; _ } -> text
  | Wire.Response.Concrete { name; seed; cycles; peak_w; peak_cycle; trace_w }
    ->
    concrete ~name ~seed ~cycles ~peak_w ~peak_cycle ~trace_w
  | Wire.Response.Optimization
      {
        name;
        chosen;
        base_peak_w;
        opt_peak_w;
        peak_reduction_pct;
        range_reduction_pct;
        perf_degradation_pct;
        energy_overhead_pct;
      } ->
    optimization ~name ~chosen ~base_peak_w ~opt_peak_w ~peak_reduction_pct
      ~range_reduction_pct ~perf_degradation_pct ~energy_overhead_pct
  | Wire.Response.Benchmarks entries -> benchmarks entries
  | Wire.Response.Cache_stats { dir; entries; bytes; by_ns } ->
    cache_stats ~dir ~entries ~bytes ~by_ns
