(* Blocking RPC stub. See client.mli. *)

type t = { fd : Unix.file_descr; m : Mutex.t; mutable next_id : int }

let connect addr =
  match Addr.connect addr with
  | Error _ as e -> e
  | Ok fd -> Ok { fd; m = Mutex.create (); next_id = 1 }

let proto msg = Error (Xbound.Error.Protocol msg)

let rpc_locked c priority request =
  let id = c.next_id in
  c.next_id <- id + 1;
  let payload = Wire.encode_request { Wire.id; priority; request } in
  match Frame.write c.fd payload with
  | exception Unix.Unix_error (e, _, _) ->
    proto ("send failed: " ^ Unix.error_message e)
  | () -> (
    match Frame.read c.fd with
    | exception Unix.Unix_error (e, _, _) ->
      proto ("receive failed: " ^ Unix.error_message e)
    | Error e -> proto ("receive failed: " ^ Frame.read_error_to_string e)
    | Ok reply -> (
      match Wire.decode_response reply with
      | Error e -> Error e
      | Ok frame ->
        if frame.Wire.rid <> id && frame.Wire.rid <> 0 then
          proto
            (Printf.sprintf "response id mismatch: sent %d, got %d" id
               frame.Wire.rid)
        else frame.Wire.result))

let rpc ?(priority = Wire.Interactive) c request =
  Mutex.lock c.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.m)
    (fun () -> rpc_locked c priority request)

(* Watch is the one streaming op: a single request, then [count]
   response frames (or an unbounded stream for count <= 0) on the same
   connection. Holds the connection mutex for the whole stream. *)
let watch ?(priority = Wire.Interactive) c ~interval_ms ~count ~on_frame =
  Mutex.lock c.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.m)
    (fun () ->
      let id = c.next_id in
      c.next_id <- id + 1;
      let payload =
        Wire.encode_request
          { Wire.id; priority;
            request = Wire.Request.Watch { interval_ms; count } }
      in
      match Frame.write c.fd payload with
      | exception Unix.Unix_error (e, _, _) ->
        proto ("send failed: " ^ Unix.error_message e)
      | () ->
        let rec loop remaining =
          if remaining = 0 then Ok ()
          else
            match Frame.read c.fd with
            | exception Unix.Unix_error (e, _, _) ->
              proto ("receive failed: " ^ Unix.error_message e)
            | Error Frame.Eof ->
              (* The server stopped (or dropped us): a clean end for an
                 unbounded stream, truncation for a bounded one. *)
              if count <= 0 then Ok () else proto "stream ended early"
            | Error e ->
              proto ("receive failed: " ^ Frame.read_error_to_string e)
            | Ok reply -> (
              match Wire.decode_response reply with
              | Error e -> Error e
              | Ok frame -> (
                match frame.Wire.result with
                | Error e -> Error e
                | Ok resp ->
                  if on_frame resp then loop (remaining - 1) else Ok ()))
        in
        loop (if count <= 0 then -1 else count))

let close c =
  (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error _ -> ()
