(* Blocking RPC stub. See client.mli. *)

type t = { fd : Unix.file_descr; m : Mutex.t; mutable next_id : int }

let connect addr =
  match Addr.connect addr with
  | Error _ as e -> e
  | Ok fd -> Ok { fd; m = Mutex.create (); next_id = 1 }

let proto msg = Error (Xbound.Error.Protocol msg)

let rpc_locked c priority request =
  let id = c.next_id in
  c.next_id <- id + 1;
  let payload = Wire.encode_request { Wire.id; priority; request } in
  match Frame.write c.fd payload with
  | exception Unix.Unix_error (e, _, _) ->
    proto ("send failed: " ^ Unix.error_message e)
  | () -> (
    match Frame.read c.fd with
    | exception Unix.Unix_error (e, _, _) ->
      proto ("receive failed: " ^ Unix.error_message e)
    | Error e -> proto ("receive failed: " ^ Frame.read_error_to_string e)
    | Ok reply -> (
      match Wire.decode_response reply with
      | Error e -> Error e
      | Ok frame ->
        if frame.Wire.rid <> id && frame.Wire.rid <> 0 then
          proto
            (Printf.sprintf "response id mismatch: sent %d, got %d" id
               frame.Wire.rid)
        else frame.Wire.result))

let rpc ?(priority = Wire.Interactive) c request =
  Mutex.lock c.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.m)
    (fun () -> rpc_locked c priority request)

let close c =
  (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close c.fd with Unix.Unix_error _ -> ()
