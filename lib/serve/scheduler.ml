(* Bounded two-priority FIFO under one mutex. See scheduler.mli. *)

type job = { priority : Wire.priority; run : unit -> unit }

type t = {
  cap : int;
  interactive : job Queue.t;
  batch : job Queue.t;
  m : Mutex.t;
  cv : Condition.t;
  mutable stopped : bool;
}

(* Live queue depth for the observability surface. One process-wide
   gauge is enough: the daemon runs one scheduler. (The histogram
   [serve.queue_depth] samples depth at admission; the gauge is the
   instantaneous value a snapshot reports.) *)
let g_queue_len = Telemetry.Gauge.make "serve.queue_len"

let create ~capacity =
  {
    cap = max 1 capacity;
    interactive = Queue.create ();
    batch = Queue.create ();
    m = Mutex.create ();
    cv = Condition.create ();
    stopped = false;
  }

let depth_unlocked t = Queue.length t.interactive + Queue.length t.batch

let depth t =
  Mutex.lock t.m;
  let d = depth_unlocked t in
  Mutex.unlock t.m;
  d

let capacity t = t.cap

let submit t job =
  Mutex.lock t.m;
  let d = depth_unlocked t in
  let r =
    if t.stopped || d >= t.cap then Error d
    else begin
      Queue.push job
        (match job.priority with
        | Wire.Interactive -> t.interactive
        | Wire.Batch -> t.batch);
      Telemetry.Gauge.set g_queue_len (depth_unlocked t);
      Condition.signal t.cv;
      Ok ()
    end
  in
  Mutex.unlock t.m;
  r

let next t =
  Mutex.lock t.m;
  while (not t.stopped) && depth_unlocked t = 0 do
    Condition.wait t.cv t.m
  done;
  let job =
    if t.stopped then None
    else if not (Queue.is_empty t.interactive) then
      Some (Queue.pop t.interactive)
    else Some (Queue.pop t.batch)
  in
  Telemetry.Gauge.set g_queue_len (depth_unlocked t);
  Mutex.unlock t.m;
  job

let stop t =
  Mutex.lock t.m;
  t.stopped <- true;
  Queue.clear t.interactive;
  Queue.clear t.batch;
  Telemetry.Gauge.set g_queue_len 0;
  Condition.broadcast t.cv;
  Mutex.unlock t.m
