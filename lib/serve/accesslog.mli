(** Append-only JSONL sink for the daemon's per-request access log.

    One JSON object per line, written and flushed atomically under a
    mutex (reader threads and executor threads share the file). The
    server writes one entry per completed or rejected request; see
    {!Server} for the entry schema. *)

type t

(** Open (create or append) the log file. [Error] is the [Sys_error]
    message. *)
val open_ : string -> (t, string) Stdlib.result

(** Write one entry as a single line and flush. Write failures are
    swallowed: logging must never take the daemon down. *)
val write : t -> Explain.Ejson.t -> unit

val close : t -> unit
