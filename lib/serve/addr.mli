(** Service addresses: a unix-domain socket path (the default) or
    [HOST:PORT] for TCP, with one string syntax shared by
    [xbound serve] and every [--connect] flag. *)

type t = Unix_sock of string | Tcp of string * int

(** ["HOST:PORT"] (rightmost colon, numeric port) parses as {!Tcp};
    anything else is a unix socket path. *)
val of_string : string -> t

val to_string : t -> string

(** Create + connect a blocking client socket. *)
val connect : t -> (Unix.file_descr, string) Stdlib.result

(** Create, bind and listen. For a unix address, a leftover socket file
    that nothing accepts on (a previous daemon died hard) is removed and
    rebound; a live one is an error. *)
val listen : ?backlog:int -> t -> (Unix.file_descr, string) Stdlib.result
