(** Synthetic standard-cell power library.

    Substitute for the TSMC 65GP liberty data + PrimeTime cell models used
    by the paper. Per cell kind it provides internal switching energies
    (rise/fall), input pin capacitance, and leakage; a linear wire-load
    model adds interconnect capacitance per fanout. Absolute values are
    calibrated so that whole-processor figures land in the paper's
    1.5–3.5 mW range at 1 V / 100 MHz (see DESIGN.md §2); all reproduced
    results depend only on the {e relative} energies. *)

type cell_power = {
  rise_energy : float;  (** J, internal energy of a 0->1 output transition *)
  fall_energy : float;  (** J, internal energy of a 1->0 output transition *)
  pin_cap : float;  (** F, capacitance presented by one input pin *)
  leakage : float;  (** W *)
}

type t = {
  lib_name : string;
  vdd : float;  (** V *)
  wire_cap_per_fanout : float;  (** F of routing per fanout pin *)
  clk_pin_energy : float;  (** J drawn by each flop's clock pin per cycle *)
  of_cell : Netlist.cell -> cell_power;
}

(** The default 65 nm-flavoured library at 1.0 V. *)
val default : t

(** A 130 nm / 3.0 V operating point standing in for the MSP430F1610 of
    the paper's Chapter 2 measurements (energies scale with the mature
    node's capacitances and V^2; used at 8 MHz). *)
val msp430f1610 : t

(** [scale lib k] multiplies every energy and leakage by [k]
    (calibration knob). *)
val scale : t -> float -> t

(** Stable identity of the library for cache keys: name plus electrical
    scalars. [t] holds a closure ([of_cell]) and must never be
    marshaled; every public constructor encodes its parameters in
    [lib_name] ([scale] appends [_x<k>]), so equal signatures imply
    equal per-cell powers. *)
val signature : t -> string

(** [load_cap lib nl net] is the total capacitance driven by [net]:
    fanout pin caps plus wire load. *)
val load_cap : t -> Netlist.t -> int -> float

(** [switch_energy lib nl net ~rising] is the energy of one output
    transition of the gate driving [net]: internal energy plus
    [1/2 C V^2] for the driven load. *)
val switch_energy : t -> Netlist.t -> int -> rising:bool -> float

(** [max_switch_energy lib nl net] is the energy of the costlier
    transition direction. *)
val max_switch_energy : t -> Netlist.t -> int -> float

(** [max_transition lib nl net] is the [(value at c-1, value at c)] pair
    that maximizes cycle-[c] power for this gate — Algorithm 2's
    [maxTransition(g,1/2)] lookup. *)
val max_transition : t -> Netlist.t -> int -> Tri.t * Tri.t

(** Static power of the whole netlist. *)
val leakage_power : t -> Netlist.t -> float

(** Clock-tree dynamic power: every flop's clock pin toggles each cycle
    whether or not data changes. *)
val clock_power : t -> Netlist.t -> period:float -> float

(** Render the library in Liberty (.lib) format, so the synthetic cell
    data can be inspected with standard EDA tooling. *)
val liberty_text : t -> string
