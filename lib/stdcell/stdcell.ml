type cell_power = {
  rise_energy : float;
  fall_energy : float;
  pin_cap : float;
  leakage : float;
}

type t = {
  lib_name : string;
  vdd : float;
  wire_cap_per_fanout : float;
  clk_pin_energy : float;
  of_cell : Netlist.cell -> cell_power;
}

let fj x = x *. 1e-15
let ff x = x *. 1e-15
let nw x = x *. 1e-9

(* Relative shape matters: XOR-class and MUX cells cost more than simple
   NAND/NOR; flops dominate; rise is slightly costlier than fall (PMOS
   stack), except for NOR-style cells where fall wins. *)
let default_of_cell : Netlist.cell -> cell_power = function
  | Netlist.Input | Netlist.Const _ ->
    { rise_energy = 0.; fall_energy = 0.; pin_cap = 0.; leakage = 0. }
  | Netlist.Buf ->
    { rise_energy = fj 1.89; fall_energy = fj 1.71; pin_cap = ff 1.1; leakage = nw 18. }
  | Netlist.Inv ->
    { rise_energy = fj 1.53; fall_energy = fj 1.35; pin_cap = ff 1.0; leakage = nw 15. }
  | Netlist.And2 ->
    { rise_energy = fj 2.88; fall_energy = fj 2.52; pin_cap = ff 1.3; leakage = nw 26. }
  | Netlist.Or2 ->
    { rise_energy = fj 2.79; fall_energy = fj 2.66; pin_cap = ff 1.3; leakage = nw 26. }
  | Netlist.Nand2 ->
    { rise_energy = fj 2.29; fall_energy = fj 2.02; pin_cap = ff 1.2; leakage = nw 22. }
  | Netlist.Nor2 ->
    { rise_energy = fj 2.07; fall_energy = fj 2.38; pin_cap = ff 1.2; leakage = nw 22. }
  | Netlist.Xor2 ->
    { rise_energy = fj 4.41; fall_energy = fj 4.09; pin_cap = ff 1.8; leakage = nw 41. }
  | Netlist.Xnor2 ->
    { rise_energy = fj 4.32; fall_energy = fj 4.19; pin_cap = ff 1.8; leakage = nw 41. }
  | Netlist.Mux2 ->
    { rise_energy = fj 5.17; fall_energy = fj 4.77; pin_cap = ff 1.6; leakage = nw 48. }
  | Netlist.Dff ->
    { rise_energy = fj 7.20; fall_energy = fj 6.66; pin_cap = ff 1.4; leakage = nw 95. }
  | Netlist.Dffe ->
    { rise_energy = fj 7.42; fall_energy = fj 6.84; pin_cap = ff 1.4; leakage = nw 102. }

let default =
  {
    lib_name = "xbound65gp_1v0";
    vdd = 1.0;
    wire_cap_per_fanout = ff 0.9;
    clk_pin_energy = fj 20.0;
    of_cell = default_of_cell;
  }

let msp430f1610 =
  (* 130 nm at 3 V: roughly 9x the 1 V switching energy (V^2) on larger
     devices; leakage is far lower on the mature node. *)
  {
    lib_name = "xbound130_3v0";
    vdd = 3.0;
    wire_cap_per_fanout = ff 1.8;
    clk_pin_energy = fj 180.0;
    of_cell =
      (fun c ->
        let p = default_of_cell c in
        {
          rise_energy = p.rise_energy *. 11.;
          fall_energy = p.fall_energy *. 11.;
          pin_cap = p.pin_cap *. 1.8;
          leakage = p.leakage *. 0.05;
        });
  }

let scale lib k =
  {
    lib with
    lib_name = Printf.sprintf "%s_x%g" lib.lib_name k;
    clk_pin_energy = lib.clk_pin_energy *. k;
    of_cell =
      (fun c ->
        let p = lib.of_cell c in
        {
          rise_energy = p.rise_energy *. k;
          fall_energy = p.fall_energy *. k;
          pin_cap = p.pin_cap;
          leakage = p.leakage *. k;
        });
  }

(* Identity for cache keys; [of_cell] is a closure, so the signature is
   the name (which every constructor parameterizes) plus the scalars. *)
let signature lib =
  Printf.sprintf "%s/%.17g/%.17g/%.17g" lib.lib_name lib.vdd
    lib.wire_cap_per_fanout lib.clk_pin_energy

let load_cap lib (nl : Netlist.t) net =
  let fanout = nl.Netlist.fanouts.(net) in
  let pins =
    Array.fold_left
      (fun acc reader -> acc +. (lib.of_cell nl.Netlist.gates.(reader).Netlist.cell).pin_cap)
      0. fanout
  in
  pins +. (float_of_int (Array.length fanout) *. lib.wire_cap_per_fanout)

let switch_energy lib nl net ~rising =
  let cell = nl.Netlist.gates.(net).Netlist.cell in
  let p = lib.of_cell cell in
  let internal = if rising then p.rise_energy else p.fall_energy in
  (* The load is charged on a rising edge and discharged (through the
     cell) on a falling one; both dissipate 1/2 C V^2. *)
  internal +. (0.5 *. load_cap lib nl net *. lib.vdd *. lib.vdd)

let max_switch_energy lib nl net =
  Float.max
    (switch_energy lib nl net ~rising:true)
    (switch_energy lib nl net ~rising:false)

let max_transition lib nl net =
  let er = switch_energy lib nl net ~rising:true in
  let ef = switch_energy lib nl net ~rising:false in
  if er >= ef then (Tri.Zero, Tri.One) else (Tri.One, Tri.Zero)

let leakage_power lib nl =
  Array.fold_left
    (fun acc g -> acc +. (lib.of_cell g.Netlist.cell).leakage)
    0. nl.Netlist.gates

let clock_power lib nl ~period =
  float_of_int (Netlist.dff_count nl) *. lib.clk_pin_energy /. period

let liberty_text lib =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "library (%s) {\n  voltage_unit : \"1V\";\n  time_unit : \"1ns\";\n\
       \  leakage_power_unit : \"1nW\";\n  capacitive_load_unit (1, ff);\n\
       \  nom_voltage : %.2f;\n" lib.lib_name lib.vdd);
  let cells =
    [
      Netlist.Buf; Netlist.Inv; Netlist.And2; Netlist.Or2; Netlist.Nand2;
      Netlist.Nor2; Netlist.Xor2; Netlist.Xnor2; Netlist.Mux2; Netlist.Dff;
      Netlist.Dffe;
    ]
  in
  List.iter
    (fun cell ->
      let p = lib.of_cell cell in
      Buffer.add_string buf
        (Printf.sprintf
           "  cell (X_%s) {\n    area : %d;\n    cell_leakage_power : %.3f;\n\
           \    pin (Y) { direction : output;\n      internal_power () {\n\
           \        rise_power : %.4f; /* fJ */\n        fall_power : %.4f; /* fJ */\n\
           \      }\n    }\n    pin (A) { direction : input; capacitance : %.3f; }\n  }\n"
           (String.uppercase_ascii (Netlist.cell_name cell))
           (Netlist.cell_arity cell + 1)
           (p.leakage /. 1e-9)
           (p.rise_energy /. 1e-15)
           (p.fall_energy /. 1e-15)
           (p.pin_cap /. 1e-15)))
    cells;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
