(** The one definition of the command-line knobs shared by the xbound
    CLI and the bench harness: [-j]/[--jobs], [--cache-dir],
    [--no-cache], [--trace], [--stats] and
    [--tier exact|static|auto].

    Evaluating {!term} builds the consolidated {!Xbound.Ctx.t}. When
    [--trace] or [--stats] is given it also creates a {!Telemetry.t}
    sink, installs it as the ambient sink for the whole command, and
    registers an [at_exit] hook that writes the Chrome trace-event file
    and/or prints the stats summary to stderr — so every subcommand gets
    tracing without touching stdout (bounds output stays byte-identical
    with tracing on or off). *)

type t = {
  ctx : Xbound.Ctx.t;
  trace_file : string option;  (** [--trace FILE] *)
  stats : bool;  (** [--stats] *)
}

val term : t Cmdliner.Term.t

(** The consolidated execution context, for [?ctx] call sites. *)
val ctx : t -> Xbound.Ctx.t

(** Shorthand for [ (ctx c).cache ]. *)
val cache : t -> Cache.t option

(** Shorthand for [ (ctx c).tier ] — the [--tier] selection. *)
val tier : t -> Xbound.Tier.t
