open Cmdliner

type t = {
  ctx : Xbound.Ctx.t;
  trace_file : string option;
  stats : bool;
}

let ctx c = c.ctx
let cache c = c.ctx.Xbound.Ctx.cache
let tier c = c.ctx.Xbound.Ctx.tier

let jobs_arg =
  let doc =
    "Number of worker domains for parallel analysis (default: the machine's \
     recommended domain count; 1 = fully sequential). Results are \
     bit-identical at any job count."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cache_dir_arg =
  let doc =
    "Directory for the persistent analysis cache (default: \
     \\$XBOUND_CACHE_DIR, else \\$XDG_CACHE_HOME/xbound, else \
     ~/.cache/xbound)."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let no_cache_arg =
  let doc = "Disable the analysis cache (memory and disk) for this run." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let trace_arg =
  let doc =
    "Record telemetry for the whole command and write it as a Chrome \
     trace-event JSON file (open in chrome://tracing or ui.perfetto.dev): \
     hierarchical phase spans per worker domain, plus pool and cache \
     counters. Tracing never changes results."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let stats_arg =
  let doc =
    "Print a telemetry summary (phase breakdown, per-domain utilization, \
     pool/cache counters) to stderr when the command finishes."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let tier_arg =
  let doc =
    "Bound tier: $(b,exact) runs Algorithm 1 whole-program symbolic \
     exploration (the tight bound), $(b,static) runs the CFG + per-block \
     characterization + IPET combiner (always terminates, dominates the \
     exact bound), $(b,auto) tries static first and escalates to exact when \
     the static cycle bound says exploration is feasible."
  in
  let tier_conv =
    Arg.conv ~docv:"TIER"
      ( (fun s ->
          match Xbound.Tier.of_string s with
          | Some t -> Ok t
          | None ->
            Error (`Msg (Printf.sprintf "unknown tier %S (expected %s)" s
                           (String.concat "|"
                              (List.map Xbound.Tier.to_string Xbound.Tier.all))))),
        fun fmt t -> Format.pp_print_string fmt (Xbound.Tier.to_string t) )
  in
  Arg.(
    value
    & opt tier_conv Xbound.Tier.Exact
    & info [ "tier" ] ~docv:"TIER" ~doc)

let no_specialize_arg =
  let doc =
    "Run engines on the full gate program instead of the \
     application-specialized one (constant-folded, dead-cone-swept, \
     repacked). Bounds and reports are bit-identical either way; the flag \
     exists for differential testing and as an escape hatch."
  in
  Arg.(value & flag & info [ "no-specialize" ] ~doc)

let make jobs cache_dir no_cache trace_file stats tier no_specialize =
  (match jobs with None -> () | Some j -> Parallel.set_default_jobs j);
  let cache =
    if no_cache then None
    else
      Some
        (Cache.create
           ~dir:(Option.value cache_dir ~default:(Cache.default_dir ()))
           ())
  in
  let telemetry =
    if trace_file = None && not stats then None
    else begin
      let s = Telemetry.create () in
      Telemetry.set_ambient (Some s);
      (* at_exit runs LIFO, and this hook is registered before any worker
         pool exists: the pool's own shutdown hook (which joins the
         domains) runs first, so every per-domain buffer is complete by
         the time the trace is exported. Exporting in at_exit also
         covers the error paths that leave via [exit 1]. *)
      at_exit (fun () ->
          Telemetry.set_ambient None;
          Option.iter
            (fun file ->
              Telemetry.write_chrome s ~file;
              Printf.eprintf "wrote trace to %s\n%!" file)
            trace_file;
          if stats then prerr_string (Telemetry.stats_summary s));
      Some s
    end
  in
  {
    ctx =
      {
        Xbound.Ctx.cache;
        jobs;
        telemetry;
        tier;
        specialize = not no_specialize;
      };
    trace_file;
    stats;
  }

let term =
  Term.(
    const make $ jobs_arg $ cache_dir_arg $ no_cache_arg $ trace_arg
    $ stats_arg $ tier_arg $ no_specialize_arg)
