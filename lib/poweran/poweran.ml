type t = {
  nl : Netlist.t;
  period_ : float;
  rise : float array;  (* per net: energy of a 0->1 output transition *)
  fall : float array;
  emax : float array;
  base : float;
  base_by_module : float array;
  module_count : int;
  base_by_class : (string * float) list;  (* leakage+clock per cell kind *)
  gate_base : float array;  (* per gate: leakage + clock power *)
}

let create ?(bus = [||]) ?(bus_cap = 450e-15) ?(module_scale = []) nl lib ~period =
  let n = Netlist.gate_count nl in
  let rise = Array.make n 0. and fall = Array.make n 0. and emax = Array.make n 0. in
  for id = 0 to n - 1 do
    let k =
      match List.assoc_opt (Netlist.module_of nl id) module_scale with
      | Some k -> k
      | None -> 1.
    in
    rise.(id) <- k *. Stdcell.switch_energy lib nl id ~rising:true;
    fall.(id) <- k *. Stdcell.switch_energy lib nl id ~rising:false;
    emax.(id) <- Float.max rise.(id) fall.(id)
  done;
  (* Lumped memory-macro access energy on the bus pins. *)
  let bus_e = 0.5 *. bus_cap *. lib.Stdcell.vdd *. lib.Stdcell.vdd in
  Array.iter
    (fun id ->
      rise.(id) <- rise.(id) +. bus_e;
      fall.(id) <- fall.(id) +. bus_e;
      emax.(id) <- emax.(id) +. bus_e)
    bus;
  let module_count = Array.length nl.Netlist.module_names in
  let base_by_module = Array.make module_count 0. in
  let gate_base = Array.make n 0. in
  Array.iter
    (fun (g : Netlist.gate) ->
      let leak = (lib.Stdcell.of_cell g.Netlist.cell).Stdcell.leakage in
      let clk =
        if Netlist.is_sequential g.Netlist.cell then
          lib.Stdcell.clk_pin_energy /. period
        else 0.
      in
      gate_base.(g.Netlist.id) <- leak +. clk;
      base_by_module.(g.Netlist.module_id) <-
        base_by_module.(g.Netlist.module_id) +. leak +. clk)
    nl.Netlist.gates;
  let base = Array.fold_left ( +. ) 0. base_by_module in
  let class_tbl : (string, float) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (g : Netlist.gate) ->
      let k = Netlist.cell_name g.Netlist.cell in
      Hashtbl.replace class_tbl k
        (Option.value (Hashtbl.find_opt class_tbl k) ~default:0.
        +. gate_base.(g.Netlist.id)))
    nl.Netlist.gates;
  let base_by_class =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) class_tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    nl;
    period_ = period;
    rise;
    fall;
    emax;
    base;
    base_by_module;
    module_count;
    base_by_class;
    gate_base;
  }

let netlist t = t.nl
let period t = t.period_
let base_power t = t.base

(* Energy of one recorded delta under each mode. *)
let delta_energy t ~max_mode packed =
  let net, old_v, new_v = Gatesim.Trace.unpack packed in
  match old_v, new_v with
  | 0, 1 -> t.rise.(net)
  | 1, 0 -> t.fall.(net)
  | 0, 2 | 2, 1 ->
    (* was/becomes unknown: the transition that may have happened is a
       rise; count it when maximizing, and also when observing (an X
       delta in an observed trace is already a modeling escape — be
       conservative). *)
    if max_mode then t.rise.(net) else t.rise.(net)
  | 1, 2 | 2, 0 -> t.fall.(net)
  | _ -> if max_mode then t.emax.(net) else 0.

let cycle_energy t ~max_mode (cy : Gatesim.Trace.cycle) =
  let e = ref 0. in
  Array.iter (fun d -> e := !e +. delta_energy t ~max_mode d) cy.Gatesim.Trace.deltas;
  if max_mode then
    Array.iter
      (fun net -> e := !e +. t.emax.(net))
      cy.Gatesim.Trace.x_active;
  !e

let cycle_power_observed t cy = t.base +. (cycle_energy t ~max_mode:false cy /. t.period_)
let cycle_power_max t cy = t.base +. (cycle_energy t ~max_mode:true cy /. t.period_)

let trace_power t ~mode cycles =
  let f =
    match mode with `Observed -> cycle_power_observed t | `Max -> cycle_power_max t
  in
  (* Per-cycle evaluation is pure over an immutable [t], so long traces
     are chunked across the domain pool; each index is computed
     independently, making the result identical at any job count. *)
  Parallel.chunked_map_auto f cycles

let peak_of series =
  let best = ref neg_infinity and at = ref 0 in
  Array.iteri
    (fun k p ->
      if p > !best then begin
        best := p;
        at := k
      end)
    series;
  (!best, !at)

let trace_energy t ~mode cycles =
  Array.fold_left ( +. ) 0. (trace_power t ~mode cycles) *. t.period_

let module_breakdown t ~mode (cy : Gatesim.Trace.cycle) =
  let max_mode = match mode with `Max -> true | `Observed -> false in
  let acc = Array.copy t.base_by_module in
  let add net e =
    let m = t.nl.Netlist.gates.(net).Netlist.module_id in
    acc.(m) <- acc.(m) +. (e /. t.period_)
  in
  Array.iter
    (fun d ->
      let net, _, _ = Gatesim.Trace.unpack d in
      add net (delta_energy t ~max_mode d))
    cy.Gatesim.Trace.deltas;
  if max_mode then
    Array.iter (fun net -> add net t.emax.(net)) cy.Gatesim.Trace.x_active;
  Array.to_list
    (Array.mapi (fun m p -> (t.nl.Netlist.module_names.(m), p)) acc)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let class_breakdown ?folded t ~mode (cy : Gatesim.Trace.cycle) =
  let max_mode = match mode with `Max -> true | `Observed -> false in
  let acc : (string, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace acc k v) t.base_by_class;
  let is_folded =
    match folded with Some f -> f | None -> fun _ -> false
  in
  (* Relabel proven-constant gates into a "constant" class: the same
     addends (their leakage/clock base power and any boot-time
     transitions below) move between classes, so the entries still sum
     exactly to the cycle's total power. *)
  if folded <> None then begin
    let moved = ref 0. in
    Array.iter
      (fun (g : Netlist.gate) ->
        if is_folded g.Netlist.id then begin
          let b = t.gate_base.(g.Netlist.id) in
          if b <> 0. then begin
            let k = Netlist.cell_name g.Netlist.cell in
            Hashtbl.replace acc k (Hashtbl.find acc k -. b);
            moved := !moved +. b
          end
        end)
      t.nl.Netlist.gates;
    Hashtbl.replace acc "constant" !moved
  end;
  let add net e =
    let k =
      if is_folded net then "constant"
      else Netlist.cell_name t.nl.Netlist.gates.(net).Netlist.cell
    in
    Hashtbl.replace acc k
      (Option.value (Hashtbl.find_opt acc k) ~default:0. +. (e /. t.period_))
  in
  Array.iter
    (fun d ->
      let net, _, _ = Gatesim.Trace.unpack d in
      add net (delta_energy t ~max_mode d))
    cy.Gatesim.Trace.deltas;
  if max_mode then
    Array.iter (fun net -> add net t.emax.(net)) cy.Gatesim.Trace.x_active;
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let default_design_activity = 0.40

let design_tool_power t ~activity =
  let sw = Array.fold_left ( +. ) 0. t.emax in
  t.base +. (activity *. sw /. t.period_)
