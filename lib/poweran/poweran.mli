(** Activity-based gate-level power analysis (the PrimeTime substitute).

    Per-cycle power is leakage + clock-tree power + the switching energy
    of that cycle's transitions divided by the clock period. Two modes:

    - {e observed} power counts only concrete transitions (used on
      concrete profiling runs and on even/odd VCD-assigned traces);
    - {e maximized} power resolves every X the way Algorithm 2 does:
      a gate with X on either side of the cycle boundary is assumed to
      take its most expensive consistent transition ([max_transition]
      when both sides are X, the forced toggle otherwise).

    The per-cycle maximized power of a cycle equals the power that
    cycle has in the even/odd VCD file that maximizes its parity —
    see {!Core.Evenodd} for the explicit file-based pipeline and the
    test that checks the equivalence. *)

type t

(** [create ?bus ?bus_cap ?module_scale nl lib ~period] — [bus] nets
    (memory address/data pins) carry an extra lumped capacitance
    [bus_cap] (default 450 fF) modelling the flash/SRAM access energy
    their transitions imply; [module_scale] multiplies the switching
    energies of whole modules (wire-dominated structures such as the
    multiplier array switch more capacitance than standard-cell
    internals suggest). *)
val create :
  ?bus:int array ->
  ?bus_cap:float ->
  ?module_scale:(string * float) list ->
  Netlist.t ->
  Stdcell.t ->
  period:float ->
  t

val netlist : t -> Netlist.t
val period : t -> float

(** Leakage + clock-tree power, burned every cycle. *)
val base_power : t -> float

val cycle_power_observed : t -> Gatesim.Trace.cycle -> float
val cycle_power_max : t -> Gatesim.Trace.cycle -> float

(** [trace_power t ~mode cycles] — per-cycle power series. *)
val trace_power :
  t -> mode:[ `Observed | `Max ] -> Gatesim.Trace.cycle array -> float array

(** Highest per-cycle power in the series and its index. *)
val peak_of : float array -> float * int

(** Energy of a trace: sum of per-cycle power times the period. *)
val trace_energy : t -> mode:[ `Observed | `Max ] -> Gatesim.Trace.cycle array -> float

(** [module_breakdown t ~mode cycle] — per-module power for one cycle
    (dynamic switching plus that module's share of leakage and clock
    power), sorted by module name. *)
val module_breakdown :
  t -> mode:[ `Observed | `Max ] -> Gatesim.Trace.cycle -> (string * float) list

(** [class_breakdown t ~mode cycle] — per gate-class (cell kind) power
    for one cycle: each class's leakage + clock power plus the dynamic
    power of this cycle's transitions on nets that class drives, sorted
    by class name. Like {!module_breakdown}, the entries sum to the
    cycle's total power.

    With [folded] (a proven-constant predicate over net ids, see
    {!Netlist.Specialize}), those gates' base power and transitions are
    relabeled into a ["constant"] class — the same addends move between
    classes, so the sum-to-total property is preserved exactly. *)
val class_breakdown :
  ?folded:(int -> bool) ->
  t ->
  mode:[ `Observed | `Max ] ->
  Gatesim.Trace.cycle ->
  (string * float) list

(** [design_tool_power t ~activity] — the design-specification rating:
    every gate assumed to toggle with probability [activity] each cycle
    at its costliest transition (the default-toggle-rate power number a
    design tool reports, Section 4.2). *)
val design_tool_power : t -> activity:float -> float

(** The default toggle rate used for the design-tool baseline. *)
val default_design_activity : float
