(* Shared experiment context: the CPU is built once, and per-benchmark
   analyses, profiles and stressmarks are computed on demand and
   cached, so one harness process can regenerate every table and
   figure without redundant simulation. *)

type t = {
  cpu : Cpu.t;
  pa : Poweran.t;
  pa_f1610 : Poweran.t;
      (** the Chapter-2 measurement stand-in: 130 nm / 3 V / 8 MHz *)
  cache : Cache.t option;
      (** content-addressed layer under the per-name tables below; adds
          persistence across processes and in-flight dedup across the
          domain pool *)
  analyses : (string, Core.Analyze.t) Hashtbl.t;
  profiles : (string, Baselines.Profiling.result) Hashtbl.t;
  profiles_f1610 : (string, Baselines.Profiling.result) Hashtbl.t;
  mutable stress_peak : Baselines.Stressmark.result option;
  mutable stress_avg : Baselines.Stressmark.result option;
  opts : (string, Optrun.t) Hashtbl.t;
  mutable log : string -> unit;
}

let create ?(log = fun s -> prerr_endline s) ?cache () =
  let cpu = Cpu.build () in
  let pa = Core.Analyze.poweran_for cpu in
  let pa_f1610 =
    Core.Analyze.poweran_for ~lib:Stdcell.msp430f1610 ~period:125e-9 cpu
  in
  {
    cpu;
    pa;
    pa_f1610;
    cache;
    analyses = Hashtbl.create 16;
    profiles = Hashtbl.create 16;
    profiles_f1610 = Hashtbl.create 16;
    stress_peak = None;
    stress_avg = None;
    opts = Hashtbl.create 16;
    log;
  }

let period t = Poweran.period t.pa

(* Experiment fan-out observability: one count per benchmark analysis
   dispatched through [prewarm_analyses]. *)
let c_fanout = Telemetry.Counter.make "report.fanout"

let analysis_config (b : Benchprogs.Bench.t) =
  {
    Core.Analyze.default_config with
    Core.Analyze.loop_bound = b.Benchprogs.Bench.loop_bound;
    max_paths = b.Benchprogs.Bench.max_paths;
  }

let analysis t (b : Benchprogs.Bench.t) =
  match Hashtbl.find_opt t.analyses b.Benchprogs.Bench.name with
  | Some a -> a
  | None ->
    t.log (Printf.sprintf "  [x-based analysis] %s" b.Benchprogs.Bench.name);
    let a =
      Telemetry.span ~cat:"report"
        ("analysis:" ^ b.Benchprogs.Bench.name)
        (fun () ->
          Core.Analyze.run ~config:(analysis_config b) ?cache:t.cache t.pa t.cpu
            (Benchprogs.Bench.assemble b))
    in
    Hashtbl.replace t.analyses b.Benchprogs.Bench.name a;
    a

(* Fan the uncached per-benchmark symbolic analyses out over the ambient
   pool. Results are collected and inserted into the cache in list order
   on this domain, so everything rendered afterwards is identical to the
   sequential run; without a pool this is a no-op and [analysis] fills
   the cache lazily as before. *)
let prewarm_analyses t benches =
  match Parallel.auto () with
  | None -> ()
  | Some pool ->
    let missing =
      List.filter
        (fun b -> not (Hashtbl.mem t.analyses b.Benchprogs.Bench.name))
        benches
    in
    if missing <> [] then begin
      t.log
        (Printf.sprintf "  [x-based analysis fan-out: %d benchmarks, %d domains]"
           (List.length missing) (Parallel.Pool.size pool));
      let results =
        Telemetry.span ~cat:"report" "prewarm" (fun () ->
            Parallel.Pool.map_list pool
              (fun b ->
                Telemetry.Counter.incr c_fanout;
                Core.Analyze.run ~config:(analysis_config b) ~pool
                  ?cache:t.cache t.pa t.cpu
                  (Benchprogs.Bench.assemble b))
              missing)
      in
      List.iter2
        (fun b a -> Hashtbl.replace t.analyses b.Benchprogs.Bench.name a)
        missing results
    end

let profile t (b : Benchprogs.Bench.t) =
  match Hashtbl.find_opt t.profiles b.Benchprogs.Bench.name with
  | Some p -> p
  | None ->
    t.log (Printf.sprintf "  [profiling] %s" b.Benchprogs.Bench.name);
    let p =
      Telemetry.span ~cat:"report"
        ("profile:" ^ b.Benchprogs.Bench.name)
        (fun () -> Baselines.Profiling.run t.pa t.cpu b)
    in
    Hashtbl.replace t.profiles b.Benchprogs.Bench.name p;
    p

(* Chapter 2's bench measurements: same netlist, the F1610 operating
   point. *)
let profile_f1610 t (b : Benchprogs.Bench.t) =
  match Hashtbl.find_opt t.profiles_f1610 b.Benchprogs.Bench.name with
  | Some p -> p
  | None ->
    t.log (Printf.sprintf "  [profiling @130nm/3V/8MHz] %s" b.Benchprogs.Bench.name);
    let p = Baselines.Profiling.run t.pa_f1610 t.cpu b in
    Hashtbl.replace t.profiles_f1610 b.Benchprogs.Bench.name p;
    p

let stressmark_peak t =
  match t.stress_peak with
  | Some s -> s
  | None ->
    t.log "  [stressmark GA, peak-power fitness]";
    let s = Baselines.Stressmark.run ~fitness:Baselines.Stressmark.Peak t.pa t.cpu in
    t.stress_peak <- Some s;
    s

let stressmark_avg t =
  match t.stress_avg with
  | Some s -> s
  | None ->
    t.log "  [stressmark GA, average-power fitness]";
    let s =
      Baselines.Stressmark.run ~fitness:Baselines.Stressmark.Average t.pa t.cpu
    in
    t.stress_avg <- Some s;
    s

let design_peak t =
  Poweran.design_tool_power t.pa ~activity:Poweran.default_design_activity

(* The design-tool peak-energy rating assumes the rated power is drawn
   every cycle: NPE = rated power * period. *)
let design_npe t = design_peak t *. period t

let optimization t (b : Benchprogs.Bench.t) =
  match Hashtbl.find_opt t.opts b.Benchprogs.Bench.name with
  | Some o -> o
  | None ->
    t.log (Printf.sprintf "  [optimizing] %s" b.Benchprogs.Bench.name);
    let o =
      Telemetry.span ~cat:"report"
        ("optimize:" ^ b.Benchprogs.Bench.name)
        (fun () ->
          Optrun.greedy ~analysis:(analysis t b) ?cache:t.cache t.pa t.cpu b)
    in
    Hashtbl.replace t.opts b.Benchprogs.Bench.name o;
    o

let x_peak a = a.Core.Analyze.peak_power
let x_npe a = a.Core.Analyze.peak_energy.Core.Peak_energy.npe

let all_benchmarks = Benchprogs.Bench.all
