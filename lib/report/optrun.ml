(* Peak-power optimization runner (paper, Section 5.1 / Figures 5.4-5.6).

   For each benchmark, try the three transforms greedily: apply one,
   verify functional equivalence on the ISS, re-run the X-based
   analysis, and keep the transform only if the peak power bound
   dropped — "we can choose to apply only the optimizations that are
   guaranteed to reduce peak power". *)

type t = {
  chosen : Core.Optimize.opt list;
  base_peak : float;
  opt_peak : float;
  base_avg : float;  (** worst-case average power (NPE / period) *)
  opt_avg : float;
  base_cycles : int;  (** ISS cycles on a fixed input set *)
  opt_cycles : int;
  base_energy : float;  (** peak energy bound, J *)
  opt_energy : float;
  optimized_body : Isa.Asm.item list;
  opt_analysis : Core.Analyze.t;
}

let scratch_reg = 13

let assemble_body (b : Benchprogs.Bench.t) body =
  Benchprogs.Bench.assemble { b with Benchprogs.Bench.body = body }

let iss_cycles (b : Benchprogs.Bench.t) body =
  let img = assemble_body b body in
  let iss = Isa.Iss.create img in
  List.iteri
    (fun k w -> Isa.Iss.write_word iss (Benchprogs.Bench.input_base + (2 * k)) w)
    (b.Benchprogs.Bench.gen_inputs ~seed:7);
  Isa.Iss.run iss;
  iss.Isa.Iss.cycles

let analyze ?cache pa cpu (b : Benchprogs.Bench.t) body =
  let config =
    {
      Core.Analyze.default_config with
      Core.Analyze.loop_bound = b.Benchprogs.Bench.loop_bound;
      max_paths = b.Benchprogs.Bench.max_paths;
    }
  in
  Core.Analyze.run ~config ?cache pa cpu (assemble_body b body)

let avg_of (a : Core.Analyze.t) pa =
  a.Core.Analyze.peak_energy.Core.Peak_energy.npe /. Poweran.period pa

let greedy ~analysis ?cache pa cpu (b : Benchprogs.Bench.t) =
  let base = analysis in
  let verify_inputs =
    [ (Benchprogs.Bench.input_base, b.Benchprogs.Bench.gen_inputs ~seed:7) ]
  in
  let outputs = [ (Benchprogs.Bench.output_base, b.Benchprogs.Bench.output_words) ] in
  let assemble body = assemble_body b body in
  let base_cycles = iss_cycles b b.Benchprogs.Bench.body in
  (* Keep a transform only if it reduces the peak bound AND its
     performance cost stays small — the paper reports <= 5% degradation,
     so a rewrite that slows the kernel more than that is rejected. *)
  let max_perf_cost = 1.06 in
  let rec go body current chosen remaining =
    match remaining with
    | [] -> (body, current, List.rev chosen)
    | opt :: rest ->
      let candidate, sites = Core.Optimize.apply opt ~scratch:scratch_reg body in
      if sites = 0 then go body current chosen rest
      else if
        not
          (Core.Optimize.verify ~assemble ~inputs:verify_inputs ~outputs body
             candidate)
      then go body current chosen rest
      else if
        float_of_int (iss_cycles b candidate)
        > max_perf_cost *. float_of_int base_cycles
      then go body current chosen rest
      else begin
        let a =
          Telemetry.span ~cat:"report"
            ("opt-try:" ^ Core.Optimize.name opt)
            (fun () -> analyze ?cache pa cpu b candidate)
        in
        if a.Core.Analyze.peak_power < current.Core.Analyze.peak_power then
          go candidate a (opt :: chosen) rest
        else go body current chosen rest
      end
  in
  let optimized_body, opt_analysis, chosen =
    go b.Benchprogs.Bench.body base [] Core.Optimize.all_opts
  in
  {
    chosen;
    base_peak = base.Core.Analyze.peak_power;
    opt_peak = opt_analysis.Core.Analyze.peak_power;
    base_avg = avg_of base pa;
    opt_avg = avg_of opt_analysis pa;
    base_cycles;
    opt_cycles = iss_cycles b optimized_body;
    base_energy = base.Core.Analyze.peak_energy.Core.Peak_energy.energy;
    opt_energy = opt_analysis.Core.Analyze.peak_energy.Core.Peak_energy.energy;
    optimized_body;
    opt_analysis;
  }

(* Figure 5.4 metrics *)
let peak_reduction_pct t = 100. *. (1. -. (t.opt_peak /. t.base_peak))

let range_reduction_pct t =
  let base_range = t.base_peak -. t.base_avg in
  let opt_range = t.opt_peak -. t.opt_avg in
  if base_range <= 0. then 0. else 100. *. (1. -. (opt_range /. base_range))

(* Figure 5.6 metrics *)
let perf_degradation_pct t =
  100. *. (float_of_int t.opt_cycles /. float_of_int t.base_cycles -. 1.)

let energy_overhead_pct t = 100. *. ((t.opt_energy /. t.base_energy) -. 1.)
