(* One runner per paper table/figure (see DESIGN.md §4). Each returns a
   rendered ASCII block; `run_all` regenerates everything in order. *)

let bname (b : Benchprogs.Bench.t) = b.Benchprogs.Bench.name

let f3 = Printf.sprintf "%.3f"
let f2 = Printf.sprintf "%.2f"

(* ---------- static tables ---------- *)

let table_1_1 _ctx =
  Render.heading "Table 1.1: battery specific energy and energy density"
  ^ Render.table
      ~header:[ "Battery"; "Specific Energy [J/g]"; "Energy Density [MJ/L]" ]
      ~rows:
        (List.map
           (fun (b : Sizing.Battery.t) ->
             [
               b.Sizing.Battery.name;
               Printf.sprintf "%.0f" b.Sizing.Battery.specific_energy;
               f3 b.Sizing.Battery.energy_density;
             ])
           Sizing.Battery.all)

let table_1_2 _ctx =
  Render.heading "Table 1.2: harvester power density"
  ^ Render.table
      ~header:[ "Harvester"; "Power density" ]
      ~rows:
        (List.map
           (fun (h : Sizing.Harvester.t) ->
             let d = h.Sizing.Harvester.power_density in
             let s =
               if d >= 1e-3 then Printf.sprintf "%.0f mW/cm^2" (d *. 1e3)
               else Printf.sprintf "%.0f uW/cm^2" (d *. 1e6)
             in
             [ h.Sizing.Harvester.name; s ])
           Sizing.Harvester.all)

let table_6_1 _ctx =
  Render.heading "Table 6.1: microarchitectural features of embedded processors"
  ^ Render.table
      ~header:[ "Processor"; "Branch Predictor"; "Cache" ]
      ~rows:
        [
          [ "ARM Cortex-M0"; "no"; "no" ];
          [ "ARM Cortex-M3"; "yes"; "no" ];
          [ "Atmel ATxmega128A4"; "no"; "no" ];
          [ "Freescale/NXP MC13224v"; "no"; "no" ];
          [ "Intel Quark-D1000"; "yes"; "yes" ];
          [ "Jennic/NXP JN5169"; "no"; "no" ];
          [ "SiLab Si2012"; "no"; "no" ];
          [ "TI MSP430"; "no"; "no" ];
        ]

(* ---------- chapter 1/2 motivation ---------- *)

let fig_1_5 ctx =
  (* active gates at each application's peak cycle, per module *)
  let row b =
    let a = Context.analysis ctx b in
    let cy = a.Core.Analyze.flattened.(a.Core.Analyze.peak_index) in
    let nl = ctx.Context.cpu.Cpu.netlist in
    let tbl = Hashtbl.create 8 in
    let bump net =
      let m = Netlist.module_of nl net in
      Hashtbl.replace tbl m (1 + Option.value ~default:0 (Hashtbl.find_opt tbl m))
    in
    Array.iter
      (fun d ->
        let net, _, _ = Gatesim.Trace.unpack d in
        bump net)
      cy.Gatesim.Trace.deltas;
    Array.iter bump cy.Gatesim.Trace.x_active;
    let total = Gatesim.Trace.activity cy in
    (bname b, total, tbl)
  in
  let thold = row (Benchprogs.Bench.find "tHold") in
  let pi = row (Benchprogs.Bench.find "PI") in
  let modules =
    [ "clk_module"; "dbg"; "exec_unit"; "frontend"; "mem_backbone";
      "multiplier"; "sfr"; "watchdog" ]
  in
  let line (name, total, tbl) =
    name :: string_of_int total
    :: List.map
         (fun m -> string_of_int (Option.value ~default:0 (Hashtbl.find_opt tbl m)))
         modules
  in
  Render.heading
    "Figure 1.5: active gates at the peak cycle are application-specific"
  ^ Render.table
      ~header:([ "app"; "active" ] @ modules)
      ~rows:[ line thold; line pi ]

let fig_2_2 ctx ~energy =
  let subset =
    List.map Benchprogs.Bench.find Benchprogs.Bench.measured_subset
  in
  let rows =
    List.map
      (fun b ->
        let p = Context.profile_f1610 ctx b in
        if energy then
          let mean =
            List.fold_left ( +. ) 0. p.Baselines.Profiling.npes
            /. float_of_int (List.length p.Baselines.Profiling.npes)
          in
          [
            bname b;
            Render.npe_pj mean;
            Render.npe_pj p.Baselines.Profiling.min_npe;
            Render.npe_pj p.Baselines.Profiling.max_npe;
          ]
        else
          let mean =
            List.fold_left ( +. ) 0. p.Baselines.Profiling.peaks
            /. float_of_int (List.length p.Baselines.Profiling.peaks)
          in
          [
            bname b;
            Render.mw mean;
            Render.mw p.Baselines.Profiling.min_peak;
            Render.mw p.Baselines.Profiling.max_peak;
          ])
      subset
  in
  let what, unit_ =
    if energy then ("normalized peak energy", "pJ/cycle") else ("peak power", "mW")
  in
  Render.heading
    (Printf.sprintf
       "Figure 2.2%s: measured %s across inputs (MSP430F1610 stand-in: 130nm, 3V, 8MHz)"
       (if energy then "b" else "a")
       what)
  ^ Render.table
      ~header:[ "app"; "mean [" ^ unit_ ^ "]"; "min"; "max" ]
      ~rows
  ^ (if energy then ""
     else
       Printf.sprintf
         "rated chip peak (design tool at this operating point): %s mW, far above any application\n"
         (Render.mw
            (Poweran.design_tool_power ctx.Context.pa_f1610
               ~activity:Poweran.default_design_activity)))

let fig_2_3 ctx =
  let b = Benchprogs.Bench.find "mult" in
  let img = Benchprogs.Bench.assemble b in
  let _, trace =
    Core.Analyze.run_concrete ctx.Context.pa_f1610 ctx.Context.cpu img
      ~inputs:[ (Benchprogs.Bench.input_base, b.Benchprogs.Bench.gen_inputs ~seed:8) ]
  in
  let mean = Array.fold_left ( +. ) 0. trace /. float_of_int (Array.length trace) in
  let peak, _ = Poweran.peak_of trace in
  Render.heading
    "Figure 2.3: instantaneous power of mult (MSP430F1610 stand-in, one input)"
  ^ Printf.sprintf "peak %s mW, mean %s mW over %d cycles\n%s\n" (Render.mw peak)
      (Render.mw mean) (Array.length trace) (Render.series trace)

(* ---------- chapter 3 ---------- *)

let fig_3_2 _ctx =
  (* the worked example: render original / even / odd tables *)
  let table_rows =
    [|
      [| '0'; '0'; '1'; 'x'; 'x'; 'x'; '0'; '0'; '0' |];
      [| '0'; 'x'; 'x'; 'x'; 'x'; 'x'; 'x'; '0'; '0' |];
      [| '0'; '0'; '0'; '1'; 'x'; 'x'; 'x'; 'x'; '0' |];
    |]
  in
  let ctx' = Rtl.create () in
  let a = Rtl.input ctx' in
  let g1 = Rtl.not_ ctx' a in
  let g2 = Rtl.not_ ctx' g1 in
  let g3 = Rtl.not_ ctx' g2 in
  let nl = Rtl.freeze ctx' in
  let gates = [| g1; g2; g3 |] in
  let nets = Netlist.gate_count nl in
  let initial = Array.make nets 0 in
  Array.iteri
    (fun g net -> initial.(net) <- Tri.to_int (Tri.of_char table_rows.(g).(0)))
    gates;
  let cycles =
    Array.init 8 (fun k ->
        let deltas = ref [] and xact = ref [] in
        Array.iteri
          (fun g net ->
            let o = Tri.of_char table_rows.(g).(k)
            and n = Tri.of_char table_rows.(g).(k + 1) in
            if not (Tri.equal o n) then
              deltas :=
                Gatesim.Trace.pack ~net ~old_v:(Tri.to_int o)
                  ~new_v:(Tri.to_int n)
                :: !deltas
            else if Tri.is_x n then xact := net :: !xact)
          gates;
        {
          Gatesim.Trace.deltas = Array.of_list !deltas;
          x_active = Array.of_list !xact;
          pc = Tri.Word.all_x ~width:16;
          state = Tri.Word.all_x ~width:16;
          ir = Tri.Word.all_x ~width:16;
        })
  in
  let replayed = Core.Evenodd.replay ~initial cycles in
  let show (label, (assigned : Core.Evenodd.assigned)) =
    let row g net =
      Printf.sprintf "g%d" (g + 1)
      :: List.init 9 (fun col ->
             String.make 1
               (Tri.to_char
                  (Tri.of_int (Char.code (Bytes.get assigned.Core.Evenodd.values.(col) net)))))
    in
    label ^ "\n"
    ^ Render.table
        ~header:("gate" :: List.init 9 (fun c -> string_of_int (c + 1)))
        ~rows:(Array.to_list (Array.mapi row gates))
  in
  let lib = Stdcell.default in
  let even = Core.Evenodd.maximize lib nl ~parity:0 replayed cycles in
  let odd = Core.Evenodd.maximize lib nl ~parity:1 replayed cycles in
  Render.heading "Figure 3.2: even/odd X assignment worked example"
  ^ show ("original activity (X = unknown):", replayed)
  ^ show ("maximize even cycles:", even)
  ^ show ("maximize odd cycles:", odd)

let fig_3_3 ctx =
  let rows =
    List.map
      (fun b ->
        let a = Context.analysis ctx b in
        let t = a.Core.Analyze.power_trace in
        let mean = Array.fold_left ( +. ) 0. t /. float_of_int (Array.length t) in
        Printf.sprintf "%-10s peak %s mW mean %s mW (%d cycles)\n  %s" (bname b)
          (Render.mw a.Core.Analyze.peak_power)
          (Render.mw mean) (Array.length t) (Render.series t))
      Context.all_benchmarks
  in
  Render.heading "Figure 3.3: per-cycle X-based peak power traces"
  ^ String.concat "\n" rows ^ "\n"

let low_high_inputs b =
  (* near-zero data (minimal toggling) vs alternating patterns *)
  ( b.Benchprogs.Bench.gen_inputs ~seed:1,
    b.Benchprogs.Bench.gen_inputs ~seed:2 )

let fig_3_4 ctx =
  let b = Benchprogs.Bench.find "mult" in
  let a = Context.analysis ctx b in
  let img = Benchprogs.Bench.assemble b in
  let nl = ctx.Context.cpu.Cpu.netlist in
  let lo, hi = low_high_inputs b in
  let render label inputs =
    let concrete, _ =
      Core.Analyze.run_concrete ctx.Context.pa ctx.Context.cpu img
        ~inputs:[ (Benchprogs.Bench.input_base, inputs) ]
    in
    let sets = Core.Validate.compare_toggles ~tree:a.Core.Analyze.tree ~concrete in
    let by_mod = Core.Validate.by_module nl in
    let common = by_mod sets.Core.Validate.common in
    let xonly = by_mod sets.Core.Validate.sym_only in
    Printf.sprintf
      "%s: common %d gates, X-only %d gates, concrete-only %d (must be 0)\n%s"
      label
      (List.length sets.Core.Validate.common)
      (List.length sets.Core.Validate.sym_only)
      (List.length sets.Core.Validate.concrete_only)
      (Render.table
         ~header:[ "module"; "common"; "x-only" ]
         ~rows:
           (List.map
              (fun (m, c) ->
                [
                  m;
                  string_of_int c;
                  string_of_int (Option.value ~default:0 (List.assoc_opt m xonly));
                ])
              common))
  in
  Render.heading
    "Figure 3.4: X-based potentially-toggled gates are a superset (mult)"
  ^ render "low-activity inputs" lo
  ^ render "high-activity inputs" hi

let fig_3_5 ctx =
  let b = Benchprogs.Bench.find "mult" in
  let a = Context.analysis ctx b in
  let img = Benchprogs.Bench.assemble b in
  let concrete, ctrace =
    Core.Analyze.run_concrete ctx.Context.pa ctx.Context.cpu img
      ~inputs:[ (Benchprogs.Bench.input_base, b.Benchprogs.Bench.gen_inputs ~seed:8) ]
  in
  match Core.Validate.check_bound ctx.Context.pa ~tree:a.Core.Analyze.tree ~concrete with
  | None -> "fig-3.5: no matching path found (unexpected)\n"
  | Some chk ->
    Render.heading "Figure 3.5: the X-based trace bounds every input-based trace (mult)"
    ^ Printf.sprintf
        "cycles checked %d, violations %d, max observed/bound ratio %.3f\n\
         X-based peak %s mW, input-based peak %s mW\n\
         X-based: %s\n\
         input:   %s\n"
        chk.Core.Validate.cycles_checked
        (List.length chk.Core.Validate.violations)
        chk.Core.Validate.max_ratio
        (Render.mw chk.Core.Validate.sym_peak)
        (Render.mw chk.Core.Validate.concrete_peak)
        (Render.series a.Core.Analyze.power_trace)
        (Render.series ctrace)

let fig_3_6 ctx =
  let b = Benchprogs.Bench.find "mult" in
  let a = Context.analysis ctx b in
  let cois = Core.Analyze.cois ctx.Context.pa a ~top:2 ~min_gap:4 in
  Render.heading "Figure 3.6: cycles of interest for mult"
  ^ String.concat ""
      (List.map (fun c -> Format.asprintf "%a" Core.Coi.pp c) cois)

(* ---------- chapter 4 ---------- *)

let fig_4_1 ctx ~energy =
  let rows =
    List.map
      (fun b ->
        let p = Context.profile ctx b in
        if energy then
          let mean =
            List.fold_left ( +. ) 0. p.Baselines.Profiling.npes
            /. float_of_int (List.length p.Baselines.Profiling.npes)
          in
          [
            bname b;
            Render.npe_pj mean;
            Render.npe_pj p.Baselines.Profiling.min_npe;
            Render.npe_pj p.Baselines.Profiling.max_npe;
          ]
        else
          let mean =
            List.fold_left ( +. ) 0. p.Baselines.Profiling.peaks
            /. float_of_int (List.length p.Baselines.Profiling.peaks)
          in
          [
            bname b;
            Render.mw mean;
            Render.mw p.Baselines.Profiling.min_peak;
            Render.mw p.Baselines.Profiling.max_peak;
          ])
      Context.all_benchmarks
  in
  Render.heading
    (Printf.sprintf
       "Figure 4.1%s: openMSP430 %s depends on application and inputs"
       (if energy then "b" else "a")
       (if energy then "normalized peak energy [pJ/cycle]" else "peak power [mW]"))
  ^ Render.table ~header:[ "app"; "mean"; "min"; "max" ] ~rows

(* ---------- chapter 5 ---------- *)

type comparison = {
  c_bench : string;
  c_design : float;
  c_input : float;  (** max observed *)
  c_gb_input : float;
  c_x : float;
}

let peak_comparisons ctx =
  List.map
    (fun b ->
      let p = Context.profile ctx b in
      let a = Context.analysis ctx b in
      {
        c_bench = bname b;
        c_design = Context.design_peak ctx;
        c_input = p.Baselines.Profiling.max_peak;
        c_gb_input = p.Baselines.Profiling.gb_peak;
        c_x = Context.x_peak a;
      })
    Context.all_benchmarks

let npe_comparisons ctx =
  List.map
    (fun b ->
      let p = Context.profile ctx b in
      let a = Context.analysis ctx b in
      {
        c_bench = bname b;
        c_design = Context.design_npe ctx;
        c_input = p.Baselines.Profiling.max_npe;
        c_gb_input = p.Baselines.Profiling.gb_npe;
        c_x = Context.x_npe a;
      })
    Context.all_benchmarks

let mean f xs = List.fold_left (fun acc x -> acc +. f x) 0. xs /. float_of_int (List.length xs)

let comparison_table ctx ~energy =
  let comps = if energy then npe_comparisons ctx else peak_comparisons ctx in
  let stress =
    Baselines.Stressmark.guardband
    *.
    if energy then
      (Context.stressmark_avg ctx).Baselines.Stressmark.avg_power
      *. Context.period ctx
    else (Context.stressmark_peak ctx).Baselines.Stressmark.peak_power
  in
  let fmt = if energy then Render.npe_pj else Render.mw in
  let rows =
    List.map
      (fun c ->
        [ c.c_bench; fmt c.c_design; fmt c.c_input; fmt c.c_gb_input; fmt c.c_x ])
      comps
    @ [
        [ "stressmark(GB)"; "-"; "-"; fmt stress; "-" ];
        [ "design_tool"; fmt (List.hd comps).c_design; "-"; "-"; "-" ];
      ]
  in
  let avg_vs f = 100. *. (1. -. mean (fun c -> c.c_x /. f c) comps) in
  let vs_design = avg_vs (fun c -> c.c_design) in
  let vs_gb_input = avg_vs (fun c -> c.c_gb_input) in
  let vs_stress = 100. *. (1. -. mean (fun c -> c.c_x /. stress) comps) in
  let unit_ = if energy then "pJ/cycle" else "mW" in
  let what = if energy then "peak energy (NPE)" else "peak power" in
  let figno = if energy then "5.2" else "5.1" in
  Render.heading
    (Printf.sprintf "Figure %s: %s requirements by technique [%s]" figno what unit_)
  ^ Render.table
      ~header:[ "app"; "design tool"; "input-based"; "GB input-based"; "X-based" ]
      ~rows
  ^ Printf.sprintf
      "\nX-based is lower than: design tool by %s%%, GB stressmark by %s%%, GB \
       input-based by %s%% (averages)\n(paper: %s)\n"
      (f2 vs_design) (f2 vs_stress) (f2 vs_gb_input)
      (if energy then "47%, 26%, 17%" else "27%, 26%, 15%")

let fig_5_1 ctx = comparison_table ctx ~energy:false
let fig_5_2 ctx = comparison_table ctx ~energy:true

let reduction_table ctx ~energy =
  let comps = if energy then npe_comparisons ctx else peak_comparisons ctx in
  let stress =
    Baselines.Stressmark.guardband
    *.
    if energy then
      (Context.stressmark_avg ctx).Baselines.Stressmark.avg_power
      *. Context.period ctx
    else (Context.stressmark_peak ctx).Baselines.Stressmark.peak_power
  in
  let avg_reduction baseline_of fraction =
    mean
      (fun c ->
        Sizing.reduction_pct ~baseline:(baseline_of c) ~ours:c.c_x ~fraction)
      comps
  in
  let row name baseline_of =
    name
    :: List.map (fun f -> f2 (avg_reduction baseline_of f)) Sizing.fractions
  in
  let what, tableno =
    if energy then ("battery volume", "5.2") else ("harvester area", "5.1")
  in
  Render.heading
    (Printf.sprintf
       "Table %s: %% %s reduction vs baselines, by processor contribution" tableno
       what)
  ^ Render.table
      ~header:
        ("Baseline"
        :: List.map (fun f -> Printf.sprintf "%.0f%%" (f *. 100.)) Sizing.fractions)
      ~rows:
        [
          row "GB-Input" (fun c -> c.c_gb_input);
          row "GB-Stress" (fun _ -> stress);
          row "Design Tool" (fun c -> c.c_design);
        ]

let table_5_1 ctx = reduction_table ctx ~energy:false
let table_5_2 ctx = reduction_table ctx ~energy:true

let fig_5_3 _ctx =
  let show items =
    String.concat "\n"
      (List.filter_map
         (function
           | Isa.Asm.I i -> Some ("  " ^ Isa.Insn.to_string i)
           | Isa.Asm.Label l -> Some (l ^ ":")
           | _ -> None)
         items)
  in
  let open Benchprogs.Bench.E in
  let opt1_before = [ mov (idx 6 4) (dreg 15) ] in
  let opt1_after, _ = Core.Optimize.apply Core.Optimize.Opt1_indexed_loads ~scratch:13 opt1_before in
  let opt2_before = [ pop 6 ] in
  let opt2_after, _ = Core.Optimize.apply Core.Optimize.Opt2_pop ~scratch:13 opt2_before in
  let opt3_before =
    [ mov (reg 5) (dabs Isa.Memmap.op2); mov (abs Isa.Memmap.reslo) (dreg 15) ]
  in
  let opt3_after, _ = Core.Optimize.apply Core.Optimize.Opt3_mult_nop ~scratch:13 opt3_before in
  Render.heading "Figure 5.3: instruction optimization transforms"
  ^ Printf.sprintf
      "OPT1 (register-indexed loads):\nbefore:\n%s\nafter:\n%s\n\n\
       OPT2 (POP split):\nbefore:\n%s\nafter:\n%s\n\n\
       OPT3 (NOP after multiplier start):\nbefore:\n%s\nafter:\n%s\n"
      (show opt1_before) (show opt1_after) (show opt2_before) (show opt2_after)
      (show opt3_before) (show opt3_after)

let fig_5_4 ctx =
  let rows =
    List.map
      (fun b ->
        let o = Context.optimization ctx b in
        [
          bname b;
          String.concat "+"
            (List.map
               (fun opt ->
                 match opt with
                 | Core.Optimize.Opt1_indexed_loads -> "1"
                 | Core.Optimize.Opt2_pop -> "2"
                 | Core.Optimize.Opt3_mult_nop -> "3")
               o.Optrun.chosen);
          Render.pct (Optrun.peak_reduction_pct o);
          Render.pct (Optrun.range_reduction_pct o);
        ])
      Context.all_benchmarks
  in
  let os = List.map (Context.optimization ctx) Context.all_benchmarks in
  Render.heading "Figure 5.4: peak power and dynamic-range reduction from optimizations"
  ^ Render.table
      ~header:[ "app"; "opts"; "peak reduction %"; "range reduction %" ]
      ~rows
  ^ Printf.sprintf "averages: peak %.1f%% (paper: 5%%, max 10%%), range %.1f%% (paper: 18%%, max 34%%)\n"
      (mean Optrun.peak_reduction_pct os)
      (mean Optrun.range_reduction_pct os)

let fig_5_5 ctx =
  let b = Benchprogs.Bench.find "mult" in
  let o = Context.optimization ctx b in
  let base = Context.analysis ctx b in
  Render.heading "Figure 5.5: mult peak power trace before/after optimization"
  ^ Printf.sprintf "before: peak %s mW\n%s\nafter:  peak %s mW (opts: %s)\n%s\n"
      (Render.mw o.Optrun.base_peak)
      (Render.series base.Core.Analyze.power_trace)
      (Render.mw o.Optrun.opt_peak)
      (String.concat ", " (List.map Core.Optimize.name o.Optrun.chosen))
      (Render.series o.Optrun.opt_analysis.Core.Analyze.power_trace)

let fig_5_6 ctx =
  let rows =
    List.map
      (fun b ->
        let o = Context.optimization ctx b in
        [
          bname b;
          Render.pct (Optrun.perf_degradation_pct o);
          Render.pct (Optrun.energy_overhead_pct o);
        ])
      Context.all_benchmarks
  in
  let os = List.map (Context.optimization ctx) Context.all_benchmarks in
  Render.heading "Figure 5.6: cost of the optimizations"
  ^ Render.table ~header:[ "app"; "perf degradation %"; "energy overhead %" ] ~rows
  ^ Printf.sprintf "averages: perf %.1f%% (paper: 1%%, max 5%%), energy %.1f%% (paper: 3%%)\n"
      (mean Optrun.perf_degradation_pct os)
      (mean Optrun.energy_overhead_pct os)

(* ---------- extensions beyond the paper's figures ---------- *)

(* WCEC comparison: the microarchitectural instruction-level energy
   model of the WCEC literature vs the gate-level co-analysis bound
   (paper, Chapter 7 discussion). *)
let extra_wcec ctx =
  let rows =
    List.map
      (fun b ->
        let img = Benchprogs.Bench.assemble b in
        let w =
          Baselines.Wcec.of_program ctx.Context.pa img
            ~input_sets:
              [
                b.Benchprogs.Bench.gen_inputs ~seed:2;
                b.Benchprogs.Bench.gen_inputs ~seed:8;
              ]
        in
        let a = Context.analysis ctx b in
        let x = Context.x_npe a in
        [
          bname b;
          Render.npe_pj w.Baselines.Wcec.npe;
          Render.npe_pj x;
          f2 (100. *. (1. -. (x /. w.Baselines.Wcec.npe)));
        ])
      Context.all_benchmarks
  in
  Render.heading
    "Extra: gate-level peak energy vs instruction-level WCEC model [pJ/cycle]"
  ^ Render.table
      ~header:[ "app"; "WCEC model"; "X-based"; "X lower by %" ]
      ~rows
  ^ "(instruction-level models cannot see pipeline state or operand values,
     so they must assume the worst class energy per instruction)
"

(* Chapter 6: multi-programming and interrupts. *)
let extra_multiprog ctx =
  let a1 = Context.analysis ctx (Benchprogs.Bench.find "intAVG") in
  let a2 = Context.analysis ctx (Benchprogs.Bench.find "tea8") in
  let union =
    Core.Multiprog.union_peak_bound ctx.Context.pa
      [ a1.Core.Analyze.tree; a2.Core.Analyze.tree ]
  in
  let isr =
    Core.Multiprog.combine_isr ~main:a1 ~isr:a2 ~max_invocations:4
      ~detection_power:2e-5
  in
  Render.heading "Extra: multi-program and interrupt analysis (Chapter 6)"
  ^ Printf.sprintf
      "intAVG peak %s mW, tea8 peak %s mW
       one-at-a-time requirement (max): %s mW
       union-of-activities bound:       %s mW (conservative)
       intAVG main + tea8 as ISR (<=4 invocations, 0.02 mW detection):
      \  peak %s mW, energy %.3f nJ
"
      (Render.mw a1.Core.Analyze.peak_power)
      (Render.mw a2.Core.Analyze.peak_power)
      (Render.mw (Core.Multiprog.max_peak [ a1; a2 ]))
      (Render.mw union)
      (Render.mw isr.Core.Multiprog.peak_power)
      (isr.Core.Multiprog.peak_energy *. 1e9)

(* ---------- registry ---------- *)

let all : (string * string * (Context.t -> string)) list =
  [
    ("table-1.1", "battery energy densities", table_1_1);
    ("table-1.2", "harvester power densities", table_1_2);
    ("fig-1.5", "active gates at peak, tHold vs PI", fig_1_5);
    ("fig-2.2a", "measured peak power per app/input", fun c -> fig_2_2 c ~energy:false);
    ("fig-2.2b", "measured NPE per app/input", fun c -> fig_2_2 c ~energy:true);
    ("fig-2.3", "instantaneous power trace, mult", fig_2_3);
    ("fig-3.2", "even/odd assignment worked example", fig_3_2);
    ("fig-3.3", "X-based peak power traces", fig_3_3);
    ("fig-3.4", "toggle-set superset validation", fig_3_4);
    ("fig-3.5", "trace bound validation", fig_3_5);
    ("fig-3.6", "cycles of interest, mult", fig_3_6);
    ("fig-4.1a", "openMSP430 peak power per app/input", fun c -> fig_4_1 c ~energy:false);
    ("fig-4.1b", "openMSP430 NPE per app/input", fun c -> fig_4_1 c ~energy:true);
    ("fig-5.1", "peak power by technique", fig_5_1);
    ("fig-5.2", "peak energy (NPE) by technique", fig_5_2);
    ("table-5.1", "harvester area reduction", table_5_1);
    ("table-5.2", "battery volume reduction", table_5_2);
    ("fig-5.3", "optimization transforms", fig_5_3);
    ("fig-5.4", "peak reduction from optimizations", fig_5_4);
    ("fig-5.5", "mult trace before/after optimization", fig_5_5);
    ("fig-5.6", "optimization costs", fig_5_6);
    ("table-6.1", "embedded processor features", table_6_1);
    ("extra-wcec", "gate-level vs instruction-level WCEC", extra_wcec);
    ("extra-multiprog", "multi-program and interrupt bounds", extra_multiprog);
  ]

let find id =
  match List.find_opt (fun (i, _, _) -> String.equal i id) all with
  | Some (_, _, f) -> f
  | None -> invalid_arg ("Experiments.find: unknown experiment " ^ id)

let run_all ctx =
  (* Most experiments consume the per-benchmark analyses; compute them
     across the pool up front so the (inherently ordered) rendering
     below finds everything cached. *)
  Context.prewarm_analyses ctx Context.all_benchmarks;
  String.concat "\n" (List.map (fun (_, _, f) -> f ctx) all)
