type t = Zero | One | X

let equal a b =
  match a, b with
  | Zero, Zero | One, One | X, X -> true
  | (Zero | One | X), _ -> false

let to_int = function Zero -> 0 | One -> 1 | X -> 2

let of_int = function
  | 0 -> Zero
  | 1 -> One
  | 2 -> X
  | n -> invalid_arg (Printf.sprintf "Tri.of_int: %d" n)

let compare a b = Int.compare (to_int a) (to_int b)
let to_char = function Zero -> '0' | One -> '1' | X -> 'x'

let of_char = function
  | '0' -> Zero
  | '1' -> One
  | 'x' | 'X' -> X
  | c -> invalid_arg (Printf.sprintf "Tri.of_char: %c" c)

let pp fmt t = Format.pp_print_char fmt (to_char t)
let of_bool b = if b then One else Zero
let to_bool = function Zero -> Some false | One -> Some true | X -> None
let is_x = function X -> true | Zero | One -> false

let lnot = function Zero -> One | One -> Zero | X -> X

let ( &&& ) a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | (One | X), (One | X) -> X

let ( ||| ) a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | (Zero | X), (Zero | X) -> X

let xor a b =
  match a, b with
  | X, _ | _, X -> X
  | Zero, Zero | One, One -> Zero
  | (Zero | One), (Zero | One) -> One

let lnand a b = lnot (a &&& b)
let lnor a b = lnot (a ||| b)
let lxnor a b = lnot (xor a b)

let mux sel a b =
  match sel with
  | Zero -> a
  | One -> b
  | X -> if equal a b then a else X

module I = struct
  let zero = 0
  let one = 1
  let x = 2
  let is_valid n = n >= 0 && n <= 2

  (* Lookup tables: index [a * 3 + b]. Branch-free inner loops matter in
     the levelized simulator. *)
  let and_tbl = [| 0; 0; 0; 0; 1; 2; 0; 2; 2 |]
  let or_tbl = [| 0; 1; 2; 1; 1; 1; 2; 1; 2 |]
  let xor_tbl = [| 0; 1; 2; 1; 0; 2; 2; 2; 2 |]
  let not_tbl = [| 1; 0; 2 |]

  let lnot a = Array.unsafe_get not_tbl a
  let land_ a b = Array.unsafe_get and_tbl ((a * 3) + b)
  let lor_ a b = Array.unsafe_get or_tbl ((a * 3) + b)
  let lxor_ a b = Array.unsafe_get xor_tbl ((a * 3) + b)
  let lnand a b = lnot (land_ a b)
  let lnor a b = lnot (lor_ a b)
  let lxnor a b = lnot (lxor_ a b)

  let mux sel a b =
    if sel = 0 then a
    else if sel = 1 then b
    else if a = b then a
    else x
end

(* Packed ternary bit-planes: a vector of trits stored as two parallel
   bit arrays (a "value" plane and an "unknown" plane), 32 trits per
   `int` word. Trit [i] lives in bit [i land 31] of word [i lsr 5];
   the code of a trit is [v_bit lor (x_bit lsl 1)] with the invariant
   that an unknown trit carries [v_bit = 0] (the same normalization as
   {!Word}), so codes are exactly {!I.zero}/{!I.one}/{!I.x} and two
   planes are element-wise equal iff the words of both planes are
   equal. Word-wide operations (diff, population counts, blits) replace
   per-trit loops in the simulator's compiled kernel. *)
module Plane = struct
  let word_bits = 32
  let words n = (n + 31) lsr 5

  let make n = (Array.make (words n) 0, Array.make (words n) 0)

  let get v x i =
    let w = i lsr 5 and b = i land 31 in
    ((Array.unsafe_get v w lsr b) land 1)
    lor (((Array.unsafe_get x w lsr b) land 1) lsl 1)

  let set v x i code =
    let w = i lsr 5 and b = i land 31 in
    let m = Stdlib.lnot (1 lsl b) in
    Array.unsafe_set v w
      ((Array.unsafe_get v w land m) lor ((code land 1) lsl b));
    Array.unsafe_set x w
      ((Array.unsafe_get x w land m) lor ((code lsr 1) lsl b))

  (* SWAR popcount of a 32-bit word. *)
  let popcount w =
    let w = w - ((w lsr 1) land 0x55555555) in
    let w = (w land 0x33333333) + ((w lsr 2) land 0x33333333) in
    let w = (w + (w lsr 4)) land 0x0F0F0F0F in
    (w * 0x01010101) lsr 24 land 0x3F

  (* Index of the lowest set bit of a nonzero 32-bit word (de Bruijn
     multiplication; branch-free). *)
  let ctz_table =
    [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
       31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

  let ctz w =
    Array.unsafe_get ctz_table (((w land -w) * 0x077CB531) lsr 27 land 31)

  (* Number of X trits among the first [n] (an X-density scan: one
     popcount per 32 trits). *)
  let count_x x ~n =
    let full = n lsr 5 in
    let acc = ref 0 in
    for w = 0 to full - 1 do
      acc := !acc + popcount (Array.unsafe_get x w)
    done;
    if n land 31 <> 0 then
      acc := !acc + popcount (x.(full) land ((1 lsl (n land 31)) - 1));
    !acc
end

(* Lane-parallel Kleene connectives: evaluate the same gate for up to 32
   independent simulations at once. A lane word pair [(v, x)] holds one
   trit per bit position — bit [l] of [v]/[x] is the value/unknown bit
   of lane [l], with the {!Plane} normalization (an X lane carries
   v = 0). Each connective is a handful of word-wide boolean ops that
   compute, bit position by bit position, exactly the {!I} truth tables;
   the test suite checks this exhaustively. The gate simulator's gang
   kernel ({!Engine.Gang}) packs sibling execution-tree branches into
   lanes and settles them in one pass with these formulas. *)
module Lanes = struct
  let m = 0xFFFFFFFF

  (* known-zero mask: lanes whose trit is 0 (not 1, not X) *)
  let[@inline] kzero v x = Stdlib.lnot (v lor x) land m

  let[@inline] and_ av ax bv bx =
    (* 0 dominates; 1 AND 1 = 1; X otherwise *)
    (av land bv, (ax lor bx) land Stdlib.lnot (kzero av ax lor kzero bv bx))

  let[@inline] or_ av ax bv bx =
    let v = av lor bv in
    (v, (ax lor bx) land Stdlib.lnot v)

  let[@inline] not_ v x = (kzero v x, x)

  let[@inline] nand av ax bv bx =
    let v, x = and_ av ax bv bx in
    not_ v x

  let[@inline] nor av ax bv bx =
    let v, x = or_ av ax bv bx in
    not_ v x

  let[@inline] xor_ av ax bv bx =
    let x = ax lor bx in
    ((av lxor bv) land Stdlib.lnot x, x)

  let[@inline] xnor av ax bv bx =
    let v, x = xor_ av ax bv bx in
    not_ v x

  (* mux sel a b: a when sel=0, b when sel=1; on sel=X the output is the
     common value when both data lanes agree (same code), else X. *)
  let[@inline] mux sv sx av ax bv bx =
    let s0 = kzero sv sx in
    let eq = Stdlib.lnot ((av lxor bv) lor (ax lxor bx)) land m in
    ( (s0 land av) lor (sv land bv) lor (sx land eq land av),
      (s0 land ax) lor (sv land bx) lor (sx land ((eq land ax) lor (Stdlib.lnot eq land m))) )

  (* Enable-flop next-state: hold q on en=0, load d on en=1; on en=X the
     flop keeps q only when d and q agree, else goes X. Same selection
     structure as [mux] with (q, d) as the data legs. *)
  let[@inline] dffe_next env enx dv dx qv qx = mux env enx qv qx dv dx
end

module Word = struct
  type tri = t

  type t = { v : int; x : int; width : int }

  let mask width = (1 lsl width) - 1

  let make ~width ~v ~x =
    if width <= 0 || width > 62 then
      invalid_arg (Printf.sprintf "Tri.Word.make: width %d" width);
    let m = mask width in
    let x = x land m in
    (* Normalize: unknown positions carry v = 0 so equal words compare
       structurally equal. *)
    { v = v land m land Stdlib.lnot x; x; width }

  let of_int ~width n = make ~width ~v:n ~x:0
  let all_x ~width = make ~width ~v:0 ~x:(mask width)
  let to_int w = if w.x = 0 then Some w.v else None
  let is_known w = w.x = 0
  let has_x w = w.x <> 0
  let equal a b = a.width = b.width && a.v = b.v && a.x = b.x
  let width w = w.width

  let bit w i =
    if i < 0 || i >= w.width then invalid_arg "Tri.Word.bit";
    if (w.x lsr i) land 1 = 1 then X
    else if (w.v lsr i) land 1 = 1 then One
    else Zero

  let set_bit w i t =
    if i < 0 || i >= w.width then invalid_arg "Tri.Word.set_bit";
    let b = 1 lsl i in
    match t with
    | Zero -> make ~width:w.width ~v:(w.v land Stdlib.lnot b) ~x:(w.x land Stdlib.lnot b)
    | One -> make ~width:w.width ~v:(w.v lor b) ~x:(w.x land Stdlib.lnot b)
    | X -> make ~width:w.width ~v:w.v ~x:(w.x lor b)

  let of_trits trits =
    let width = Array.length trits in
    let v = ref 0 and x = ref 0 in
    Array.iteri
      (fun i t ->
        match t with
        | One -> v := !v lor (1 lsl i)
        | X -> x := !x lor (1 lsl i)
        | Zero -> ())
      trits;
    make ~width ~v:!v ~x:!x

  let to_trits w = Array.init w.width (fun i -> bit w i)

  let pp fmt w =
    for i = w.width - 1 downto 0 do
      Format.pp_print_char fmt (to_char (bit w i))
    done

  let lnot w = make ~width:w.width ~v:(Stdlib.lnot w.v) ~x:w.x

  (* Bitwise AND: result bit known-0 if either side is known-0; known-1 if
     both known-1; X otherwise. *)
  let logand a b =
    if a.width <> b.width then invalid_arg "Tri.Word.logand";
    let zero_a = Stdlib.lnot a.v land Stdlib.lnot a.x
    and zero_b = Stdlib.lnot b.v land Stdlib.lnot b.x in
    let known_zero = zero_a lor zero_b in
    let known_one = a.v land b.v in
    let x = Stdlib.lnot (known_zero lor known_one) in
    make ~width:a.width ~v:known_one ~x

  let logor a b =
    if a.width <> b.width then invalid_arg "Tri.Word.logor";
    let zero_a = Stdlib.lnot a.v land Stdlib.lnot a.x
    and zero_b = Stdlib.lnot b.v land Stdlib.lnot b.x in
    let known_one = a.v lor b.v in
    let known_zero = zero_a land zero_b in
    let x = Stdlib.lnot (known_zero lor known_one) in
    make ~width:a.width ~v:known_one ~x

  let logxor a b =
    if a.width <> b.width then invalid_arg "Tri.Word.logxor";
    let x = a.x lor b.x in
    make ~width:a.width ~v:(a.v lxor b.v) ~x

  let tri_full_add a b c =
    let s = xor (xor a b) c in
    let co = (a &&& b) ||| (c &&& xor a b) in
    (s, co)

  let add_carry a b cin =
    if a.width <> b.width then invalid_arg "Tri.Word.add_carry";
    let s = ref (of_int ~width:a.width 0) in
    let c = ref cin in
    for i = 0 to a.width - 1 do
      let si, co = tri_full_add (bit a i) (bit b i) !c in
      s := set_bit !s i si;
      c := co
    done;
    (!s, !c)

  let add a b = fst (add_carry a b Zero)
  let sub a b = fst (add_carry a (lnot b) One)

  let mul_full a b =
    if a.width <> b.width then invalid_arg "Tri.Word.mul_full";
    let w2 = 2 * a.width in
    if is_known a && is_known b then of_int ~width:w2 (a.v * b.v)
    else begin
      (* Shift-add with X propagation; a known-zero multiplier bit
         contributes nothing even when the other operand is unknown. *)
      let acc = ref (of_int ~width:w2 0) in
      let a2 = make ~width:w2 ~v:a.v ~x:a.x in
      for i = 0 to b.width - 1 do
        let partial =
          match bit b i with
          | Zero -> of_int ~width:w2 0
          | One -> make ~width:w2 ~v:(a2.v lsl i) ~x:(a2.x lsl i)
          | X ->
            (* Each possibly-one position of [a] becomes unknown. *)
            make ~width:w2 ~v:0 ~x:((a2.v lor a2.x) lsl i)
        in
        acc := add !acc partial
      done;
      !acc
    end

  let mul a b =
    let full = mul_full a b in
    make ~width:a.width ~v:full.v ~x:full.x

  let shift_left w n =
    if n < 0 then invalid_arg "Tri.Word.shift_left";
    make ~width:w.width ~v:(w.v lsl n) ~x:(w.x lsl n)

  let shift_right_logical w n =
    if n < 0 then invalid_arg "Tri.Word.shift_right_logical";
    make ~width:w.width ~v:(w.v lsr n) ~x:(w.x lsr n)

  let shift_right_arith w n =
    if n < 0 then invalid_arg "Tri.Word.shift_right_arith";
    let sign = bit w (w.width - 1) in
    let shifted = shift_right_logical w n in
    let filled = ref shifted in
    for i = max 0 (w.width - n) to w.width - 1 do
      filled := set_bit !filled i sign
    done;
    !filled

  let eq a b =
    if a.width <> b.width then invalid_arg "Tri.Word.eq";
    (* Definitely unequal if some bit is known on both sides and differs. *)
    let known = Stdlib.lnot a.x land Stdlib.lnot b.x land mask a.width in
    if (a.v lxor b.v) land known <> 0 then Zero
    else if a.x lor b.x <> 0 then X
    else One

  let lt_unsigned a b =
    if a.width <> b.width then invalid_arg "Tri.Word.lt_unsigned";
    if is_known a && is_known b then of_bool (a.v < b.v)
    else begin
      (* Interval comparison: min/max of each side. *)
      let amin = a.v and amax = a.v lor a.x in
      let bmin = b.v and bmax = b.v lor b.x in
      if amax < bmin then One else if amin >= bmax then Zero else X
    end

  let signed_of w v =
    let s = 1 lsl (w.width - 1) in
    if v land s <> 0 then v - (2 * s) else v

  let lt_signed a b =
    if a.width <> b.width then invalid_arg "Tri.Word.lt_signed";
    if is_known a && is_known b then of_bool (signed_of a a.v < signed_of b b.v)
    else begin
      let bounds w =
        let s = 1 lsl (w.width - 1) in
        if w.x land s <> 0 then
          (* Sign bit unknown: minimum forces sign = 1 and all other
             unknown bits to 0; maximum forces sign = 0 and the rest
             to 1. *)
          (signed_of w (w.v lor s), signed_of w ((w.v lor w.x) land Stdlib.lnot s))
        else (signed_of w w.v, signed_of w (w.v lor w.x))
      in
      let amin, amax = bounds a and bmin, bmax = bounds b in
      if amax < bmin then One else if amin >= bmax then Zero else X
    end

  let merge a b =
    if a.width <> b.width then invalid_arg "Tri.Word.merge";
    let disagree = (a.v lxor b.v) lor a.x lor b.x in
    make ~width:a.width ~v:a.v ~x:disagree
end
