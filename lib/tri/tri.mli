(** Three-valued (Kleene) logic: the value domain of symbolic gate-level
    simulation. [X] stands for "unknown", used for every signal the
    application binary does not constrain (paper, Section 3.1). *)

type t = Zero | One | X

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_char : t -> char

(** [of_char c] parses ['0'], ['1'], ['x'], ['X']. Raises
    [Invalid_argument] otherwise. *)
val of_char : char -> t

val of_bool : bool -> t

(** [to_bool t] is [Some b] for a known value, [None] for [X]. *)
val to_bool : t -> bool option

val is_x : t -> bool

(** {1 Kleene connectives} *)

val lnot : t -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val xor : t -> t -> t
val lnand : t -> t -> t
val lnor : t -> t -> t
val lxnor : t -> t -> t

(** [mux sel a b] is [a] when [sel = Zero], [b] when [sel = One]; when
    [sel = X] it is [a] if [a = b] (the output is determined either way)
    and [X] otherwise. *)
val mux : t -> t -> t -> t

(** {1 Dense integer encoding}

    The gate simulator stores trits as unboxed ints for speed:
    [0 -> Zero], [1 -> One], [2 -> X]. The [I] module provides the same
    connectives directly on the encoding. *)

val to_int : t -> int
val of_int : int -> t

module I : sig
  val zero : int
  val one : int
  val x : int
  val is_valid : int -> bool
  val lnot : int -> int
  val land_ : int -> int -> int
  val lor_ : int -> int -> int
  val lxor_ : int -> int -> int
  val lnand : int -> int -> int
  val lnor : int -> int -> int
  val lxnor : int -> int -> int
  val mux : int -> int -> int -> int
end

(** {1 Packed ternary planes}

    A vector of trits as two parallel bit arrays ("value" and "unknown"
    planes), 32 trits per [int] word: trit [i] is bit [i land 31] of
    word [i lsr 5]. Codes are the {!I} encoding with the invariant that
    an X trit carries a 0 value bit, so planes are element-wise equal
    iff equal word by word — the representation behind the gate
    simulator's compiled kernel, where snapshots, diffs and X-density
    scans are word-wide operations. *)

module Plane : sig
  val word_bits : int

  (** [words n] — plane length in words for [n] trits. *)
  val words : int -> int

  (** [make n] — a [(v, x)] plane pair of [n] trits, all [Zero]. *)
  val make : int -> int array * int array

  (** [get v x i] — the {!I} code of trit [i]. *)
  val get : int array -> int array -> int -> int

  (** [set v x i code] — store an {!I} code (X must be normalized:
      code 2, not 3). *)
  val set : int array -> int array -> int -> int -> unit

  (** Population count of one 32-bit word. *)
  val popcount : int -> int

  (** Index of the lowest set bit of a nonzero 32-bit word. *)
  val ctz : int -> int

  (** [count_x x ~n] — how many of the first [n] trits are X. *)
  val count_x : int array -> n:int -> int
end

(** {1 Lane-parallel connectives}

    Word-parallel Kleene logic over {e lane words}: a [(v, x)] pair of
    ints holding one trit per bit position (bit [l] is lane [l], X
    normalized to [v = 0], 32 lanes per word). Each function computes
    the corresponding {!I} connective independently in every bit
    position with a few word-wide boolean operations — the evaluation
    core of the gate simulator's gang kernel, which packs sibling
    execution branches into adjacent lanes. Lanes whose inputs violate
    the normalization produce garbage in that lane only; other lanes are
    unaffected (all operations are bitwise). *)

module Lanes : sig
  val and_ : int -> int -> int -> int -> int * int
  val or_ : int -> int -> int -> int -> int * int
  val nand : int -> int -> int -> int -> int * int
  val nor : int -> int -> int -> int -> int * int
  val xor_ : int -> int -> int -> int -> int * int
  val xnor : int -> int -> int -> int -> int * int
  val not_ : int -> int -> int * int

  (** [mux sv sx av ax bv bx] — per lane: [a] when sel is 0, [b] when 1;
      on X, the common value if the data lanes agree, else X. *)
  val mux : int -> int -> int -> int -> int -> int -> int * int

  (** [dffe_next env enx dv dx qv qx] — per lane: hold [q] on enable 0,
      load [d] on 1; on X keep [q] only if [d] and [q] agree, else X. *)
  val dffe_next : int -> int -> int -> int -> int -> int -> int * int
end

(** {1 Trit words}

    Fixed-width little-endian trit vectors with X-propagating arithmetic.
    Representation: [(v, x)] bit pairs packed in two ints — bit [i] is
    unknown iff bit [i] of [x] is set; otherwise its value is bit [i] of
    [v]. Unknown positions keep [v] normalized to 0. *)

module Word : sig
  type tri = t

  type t = private { v : int; x : int; width : int }

  val make : width:int -> v:int -> x:int -> t

  (** [of_int ~width n] is the fully-known word for [n] truncated to
      [width] bits. *)
  val of_int : width:int -> int -> t

  (** [all_x ~width] is the fully-unknown word. *)
  val all_x : width:int -> t

  (** [to_int w] is [Some n] when no bit is X. *)
  val to_int : t -> int option

  val is_known : t -> bool
  val has_x : t -> bool
  val equal : t -> t -> bool
  val width : t -> int

  val bit : t -> int -> tri
  val set_bit : t -> int -> tri -> t
  val of_trits : tri array -> t
  val to_trits : t -> tri array
  val pp : Format.formatter -> t -> unit

  (** {2 Bitwise} *)

  val lnot : t -> t
  val logand : t -> t -> t
  val logor : t -> t -> t
  val logxor : t -> t -> t

  (** {2 Arithmetic (ripple X propagation)} *)

  val add : t -> t -> t

  (** [add_carry a b cin] is the sum and carry-out. *)
  val add_carry : t -> t -> tri -> t * tri

  val sub : t -> t -> t

  (** Low [width] bits of the product. *)
  val mul : t -> t -> t

  (** The [2*width]-bit product. *)
  val mul_full : t -> t -> t

  (** {2 Shifts} *)

  val shift_left : t -> int -> t
  val shift_right_logical : t -> int -> t
  val shift_right_arith : t -> int -> t

  (** {2 Comparisons (trit-valued)} *)

  val eq : t -> t -> tri
  val lt_unsigned : t -> t -> tri
  val lt_signed : t -> t -> tri

  (** [merge a b] is the least upper bound: agreeing known bits stay
      known, disagreeing or unknown bits become X. Used when joining
      memory states from different execution paths. *)
  val merge : t -> t -> t
end
