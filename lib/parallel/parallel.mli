(** Fixed-size domain pool for deterministic fork/join parallelism.

    The analysis pipeline is a collection of independent subproblems —
    execution-tree branches, even/odd power passes, per-benchmark
    experiments, GA fitness evaluations — whose results must be merged
    in a fixed order so every table, trace and bound is bit-identical to
    the sequential run. This module provides exactly that: a pool of
    [jobs - 1] worker domains (the submitting domain is worker 0) with
    per-worker work-stealing deques, futures whose [await] {e helps} by
    executing queued tasks instead of blocking, and ordered-merge
    combinators ([both], [map_array], [map_list], [init_chunked]) that
    collect results in submission order.

    With [jobs = 1] no domains are spawned and [async] runs its closure
    inline and eagerly, so the side-effect order of unparallelized code
    is preserved exactly — the sequential fallback is the sequential
    code. *)

module Pool : sig
  type t

  (** [create ~jobs] spawns [max 1 jobs - 1] worker domains. The pool is
      shut down automatically at process exit. *)
  val create : jobs:int -> t

  (** Total workers including the submitting domain; [size t = 1] means
      fully sequential. *)
  val size : t -> int

  (** Number of queued (submitted, not yet dequeued) tasks right now.
      Racy by nature — a cheap load of the pending counter, meant for
      spawn heuristics ("is the pool hungry?"), not synchronization. *)
  val queued : t -> int

  (** Number of dequeued tasks currently executing (on workers or inside
      a helping [await]). Same racy-gauge caveat as {!queued}; the serve
      layer samples it per request for utilization telemetry. *)
  val busy : t -> int

  (** Signals workers to stop (after draining their deques) and joins
      them. Idempotent. *)
  val shutdown : t -> unit

  (** Index of the calling domain within the pool: 0 for the creator,
      [1 .. size-1] for workers, 0 for any foreign domain. *)
  val worker_index : t -> int

  type 'a future

  (** [async p f] schedules [f] on the pool ([size p > 1]) or runs it
      inline immediately ([size p = 1]). Exceptions are captured and
      re-raised at [await]. *)
  val async : t -> (unit -> 'a) -> 'a future

  (** [await p fut] returns the future's value, executing other queued
      tasks while waiting (so nested fork/join never deadlocks). *)
  val await : t -> 'a future -> 'a

  (** [both p fa fb] runs the two thunks concurrently ([fa] on the pool,
      [fb] on the caller) and returns both results. Sequentially: [fa]
      first. *)
  val both : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

  (** Ordered parallel map: results are in submission (= input) order
      regardless of execution order. *)
  val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

  val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

  (** [init_chunked p ~chunk n f] = [Array.init n f] evaluated in
      [chunk]-sized blocks across the pool ([f] must be pure or
      index-independent in its effects). *)
  val init_chunked : t -> chunk:int -> int -> (int -> 'a) -> 'a array
end

(** {1 Process-wide default pool}

    The [--jobs] flag sets the requested size once at startup; library
    code then picks the shared pool up ambiently via {!auto} without
    every call-site needing plumbing. *)

(** Requested job count: the last {!set_default_jobs} value, or
    [Domain.recommended_domain_count ()] if never set. *)
val default_jobs : unit -> int

(** [set_default_jobs j] fixes the default pool size to [max 1 j]. If a
    default pool of a different size already exists it is shut down and
    recreated lazily. *)
val set_default_jobs : int -> unit

(** The lazily-created process-wide pool of {!default_jobs} workers. *)
val default_pool : unit -> Pool.t

(** [auto ()] is [Some (default_pool ())] when parallelism is enabled
    ([default_jobs () > 1]), [None] for sequential runs. *)
val auto : unit -> Pool.t option

(** {1 Ambient convenience wrappers} — sequential when [auto () = None]. *)

val both_auto : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
val map_list_auto : ('a -> 'b) -> 'a list -> 'b list
val map_array_auto : ('a -> 'b) -> 'a array -> 'b array

(** Chunked ambient map for cheap per-element work (per-cycle power
    evaluation): falls back to [Array.map] below [2 * chunk] elements.
    [f] must be pure. *)
val chunked_map_auto : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
