(* Domain pool with per-worker work-stealing deques and helping futures.

   Design notes:
   - Each worker (including the submitting domain, worker 0) owns a
     deque. The owner pushes and pops at the tail (LIFO — depth-first,
     cache-warm); thieves steal at the head (FIFO — the oldest task is
     the biggest unexplored subtree). A plain mutex per deque is fine:
     one lock acquisition costs nanoseconds against the microseconds to
     milliseconds of simulating even one gate-level cycle.
   - [await] helps: while its future is pending it pops/steals and runs
     other tasks, so nested fork/join (a task awaiting its own spawned
     subtasks) can never deadlock and idle time goes to useful work.
   - A worker with an empty deque and nothing to steal sleeps on the
     pool condvar; [submit] signals it. The [pending] counter is the
     sleep/wake predicate, so a task can never be queued while every
     worker sleeps. *)

type task = unit -> unit

(* Pool observability (all no-ops unless a Telemetry sink is installed):
   spawn = task queued, steal = task taken from another worker's deque,
   join = an [await] satisfied, inline = sequential-fallback execution.
   Each executed task is additionally recorded as a "pool"-category span,
   which is what per-domain utilization is derived from. *)
let c_spawn = Telemetry.Counter.make "pool.spawn"
let c_steal = Telemetry.Counter.make "pool.steal"
let c_join = Telemetry.Counter.make "pool.join"
let c_inline = Telemetry.Counter.make "pool.inline"
let run_task t = Telemetry.span ~cat:"pool" "task" t

module Deque = struct
  type t = {
    mutable buf : task option array;  (* circular, power-of-two length *)
    mutable head : int;  (* next steal slot; monotonically increasing *)
    mutable tail : int;  (* next push slot *)
    lock : Mutex.t;
  }

  let create () =
    { buf = Array.make 64 None; head = 0; tail = 0; lock = Mutex.create () }

  let grow d =
    let n = Array.length d.buf in
    let nb = Array.make (2 * n) None in
    for i = d.head to d.tail - 1 do
      nb.(i land ((2 * n) - 1)) <- d.buf.(i land (n - 1))
    done;
    d.buf <- nb

  let push d t =
    Mutex.lock d.lock;
    if d.tail - d.head = Array.length d.buf then grow d;
    d.buf.(d.tail land (Array.length d.buf - 1)) <- Some t;
    d.tail <- d.tail + 1;
    Mutex.unlock d.lock

  (* Owner end: newest task. *)
  let pop d =
    Mutex.lock d.lock;
    let r =
      if d.tail = d.head then None
      else begin
        d.tail <- d.tail - 1;
        let i = d.tail land (Array.length d.buf - 1) in
        let t = d.buf.(i) in
        d.buf.(i) <- None;
        t
      end
    in
    Mutex.unlock d.lock;
    r

  (* Thief end: oldest task. *)
  let steal d =
    Mutex.lock d.lock;
    let r =
      if d.tail = d.head then None
      else begin
        let i = d.head land (Array.length d.buf - 1) in
        let t = d.buf.(i) in
        d.buf.(i) <- None;
        d.head <- d.head + 1;
        t
      end
    in
    Mutex.unlock d.lock;
    r
end

module Pool = struct
  type t = {
    id : int;
    size : int;
    deques : Deque.t array;
    mutable domains : unit Domain.t array;
    m : Mutex.t;
    cv : Condition.t;
    pending : int Atomic.t;  (* queued (not yet dequeued) tasks *)
    running : int Atomic.t;  (* dequeued tasks currently executing *)
    stop : bool Atomic.t;
  }

  let ids = Atomic.make 0

  (* Which slot of which pool the current domain occupies. A domain can
     appear in several pools (the main domain creates them all), hence
     an assoc list keyed by pool id. *)
  let slot_key : (int * int) list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let register pool idx =
    let r = Domain.DLS.get slot_key in
    r := (pool.id, idx) :: !r

  let worker_index pool =
    match List.assoc_opt pool.id !(Domain.DLS.get slot_key) with
    | Some i -> i
    | None -> 0

  let size t = t.size
  let queued t = Atomic.get t.pending
  let busy t = Atomic.get t.running

  (* Every dequeued task runs through here, whether a worker took it or
     an [await] helped with it, so [busy] counts them all. *)
  let run_counted pool run_task t =
    Atomic.incr pool.running;
    Fun.protect ~finally:(fun () -> Atomic.decr pool.running) (fun () ->
        run_task t)

  (* Own deque first (LIFO), then sweep the others (FIFO steal). *)
  let find_task pool me =
    let t =
      match Deque.pop pool.deques.(me) with
      | Some _ as t -> t
      | None ->
        let n = pool.size in
        let rec scan k =
          if k = n then None
          else
            match Deque.steal pool.deques.((me + k) mod n) with
            | Some _ as t ->
              Telemetry.Counter.incr c_steal;
              t
            | None -> scan (k + 1)
        in
        scan 1
    in
    (match t with Some _ -> Atomic.decr pool.pending | None -> ());
    t

  let worker pool idx () =
    register pool idx;
    let rec loop () =
      match find_task pool idx with
      | Some t ->
        (try run_counted pool run_task t with _ -> ());
        loop ()
      | None ->
        if not (Atomic.get pool.stop) then begin
          Mutex.lock pool.m;
          while (not (Atomic.get pool.stop)) && Atomic.get pool.pending = 0 do
            Condition.wait pool.cv pool.m
          done;
          Mutex.unlock pool.m;
          loop ()
        end
    in
    loop ()

  let shutdown pool =
    if not (Atomic.get pool.stop) then begin
      Atomic.set pool.stop true;
      Mutex.lock pool.m;
      Condition.broadcast pool.cv;
      Mutex.unlock pool.m;
      Array.iter Domain.join pool.domains;
      pool.domains <- [||]
    end

  let create ~jobs =
    let size = max 1 jobs in
    let pool =
      {
        id = Atomic.fetch_and_add ids 1;
        size;
        deques = Array.init size (fun _ -> Deque.create ());
        domains = [||];
        m = Mutex.create ();
        cv = Condition.create ();
        pending = Atomic.make 0;
        running = Atomic.make 0;
        stop = Atomic.make false;
      }
    in
    register pool 0;
    if size > 1 then
      pool.domains <-
        Array.init (size - 1) (fun i -> Domain.spawn (worker pool (i + 1)));
    (* Workers must be joined before the runtime tears down. *)
    at_exit (fun () -> shutdown pool);
    pool

  type 'a state =
    | Pending
    | Done of 'a
    | Err of exn * Printexc.raw_backtrace

  type 'a future = { mutable st : 'a state; fm : Mutex.t; fc : Condition.t }

  let fulfil fut st =
    Mutex.lock fut.fm;
    fut.st <- st;
    Condition.broadcast fut.fc;
    Mutex.unlock fut.fm

  let submit pool task =
    Telemetry.Counter.incr c_spawn;
    (* Carry the submitting thread's request scope (or its absence)
       into whichever worker runs the task, so telemetry fired on
       behalf of a request stays attributed to it — and a helping
       worker's own scope never bleeds into someone else's task. *)
    let binding = Telemetry.Scope.active () in
    let task () = Telemetry.Scope.with_binding binding task in
    Deque.push pool.deques.(worker_index pool) task;
    Atomic.incr pool.pending;
    Mutex.lock pool.m;
    Condition.signal pool.cv;
    Mutex.unlock pool.m

  let run_to_state f =
    try Done (f ()) with e -> Err (e, Printexc.get_raw_backtrace ())

  let async pool f =
    if pool.size <= 1 then begin
      (* Sequential fallback: run inline and eagerly, preserving the
         exact side-effect order of the unparallelized code. *)
      Telemetry.Counter.incr c_inline;
      { st = run_to_state f; fm = Mutex.create (); fc = Condition.create () }
    end
    else begin
      let fut = { st = Pending; fm = Mutex.create (); fc = Condition.create () } in
      submit pool (fun () -> fulfil fut (run_to_state f));
      fut
    end

  let is_pending fut = match fut.st with Pending -> true | _ -> false

  let rec await_loop pool fut =
    match fut.st with
    (* Unsynchronized peek: a stale [Pending] just sends us through the
       locked path below. *)
    | Done v -> v
    | Err (e, bt) -> Printexc.raise_with_backtrace e bt
    | Pending -> (
      match find_task pool (worker_index pool) with
      | Some t ->
        run_counted pool run_task t;
        await_loop pool fut
      | None ->
        (* Nothing to help with. The future's own task is necessarily
           held by another worker (it was in our deque or stolen), so
           blocking is deadlock-free. *)
        Mutex.lock fut.fm;
        while is_pending fut do
          Condition.wait fut.fc fut.fm
        done;
        Mutex.unlock fut.fm;
        await_loop pool fut)

  let await pool fut =
    Telemetry.Counter.incr c_join;
    await_loop pool fut

  let both pool fa fb =
    let fut = async pool fa in
    let b = fb () in
    let a = await pool fut in
    (a, b)

  let map_array pool f xs =
    if pool.size <= 1 then Array.map f xs
    else begin
      let futs = Array.map (fun x -> async pool (fun () -> f x)) xs in
      Array.map (fun fut -> await pool fut) futs
    end

  let map_list pool f xs =
    if pool.size <= 1 then List.map f xs
    else begin
      let futs = List.map (fun x -> async pool (fun () -> f x)) xs in
      List.map (fun fut -> await pool fut) futs
    end

  let init_chunked pool ~chunk n f =
    let chunk = max 1 chunk in
    if pool.size <= 1 || n <= chunk then Array.init n f
    else begin
      let nchunks = (n + chunk - 1) / chunk in
      let parts =
        map_array pool
          (fun ci ->
            let lo = ci * chunk in
            let hi = min n (lo + chunk) in
            Array.init (hi - lo) (fun k -> f (lo + k)))
          (Array.init nchunks (fun i -> i))
      in
      Array.concat (Array.to_list parts)
    end
end

(* ---- process-wide default pool ---- *)

let requested_jobs : int option ref = ref None
let the_pool : Pool.t option ref = ref None

let default_jobs () =
  match !requested_jobs with
  | Some j -> j
  | None -> Domain.recommended_domain_count ()

let set_default_jobs j =
  let j = max 1 j in
  (match !the_pool with
  | Some p when Pool.size p <> j ->
    Pool.shutdown p;
    the_pool := None
  | _ -> ());
  requested_jobs := Some j

let default_pool () =
  match !the_pool with
  | Some p -> p
  | None ->
    let p = Pool.create ~jobs:(default_jobs ()) in
    the_pool := Some p;
    p

let auto () =
  if default_jobs () <= 1 then None
  else
    let p = default_pool () in
    if Pool.size p > 1 then Some p else None

let both_auto fa fb =
  match auto () with
  | Some p -> Pool.both p fa fb
  | None ->
    let a = fa () in
    let b = fb () in
    (a, b)

let map_list_auto f xs =
  match auto () with Some p -> Pool.map_list p f xs | None -> List.map f xs

let map_array_auto f xs =
  match auto () with Some p -> Pool.map_array p f xs | None -> Array.map f xs

let chunked_map_auto ?(chunk = 128) f xs =
  let n = Array.length xs in
  match auto () with
  | Some p when n > 2 * chunk -> Pool.init_chunked p ~chunk n (fun i -> f xs.(i))
  | _ -> Array.map f xs
