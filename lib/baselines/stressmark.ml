(* Genetic stressmark generation (paper, Section 4.2; after Kim et al.,
   MICRO'12 "AUDIT").

   A genome is a short instruction sequence drawn from an alphabet of
   high-activity templates (alternating-pattern ALU ops, memory
   traffic, hardware-multiplier bursts, stack ops). Fitness is measured
   on the gate-level simulator: either the peak per-cycle power or the
   average power of the phenotype's execution. Tournament selection,
   single-point crossover, per-gene mutation, elitism. *)

type gene =
  | G_alu_imm of Isa.Insn.op1 * int * int  (** op, pattern, reg *)
  | G_alu_rr of Isa.Insn.op1 * int * int
  | G_load_abs of int  (** scratch slot *)
  | G_store_abs of int * int  (** reg, slot *)
  | G_load_idx of int  (** offset slot, via r12 *)
  | G_mul of int * int  (** pattern indexes for op1/op2 *)
  | G_mul_flip  (** back-to-back complementary multiplies: max array toggling *)
  | G_mul_read
  | G_push of int
  | G_pop of int
  | G_swpb of int
  | G_nop

type genome = gene array

type config = {
  genome_len : int;
  population : int;
  generations : int;
  tournament : int;
  mutation_rate : float;
  elite : int;
  repeats : int;  (** times the genome body is repeated in the phenotype *)
  seed : int;
}

let default_config =
  {
    genome_len = 32;
    population = 20;
    generations = 12;
    tournament = 3;
    mutation_rate = 0.15;
    elite = 2;
    repeats = 3;
    seed = 0xC0FFEE;
  }

(* deterministic PRNG (xorshift) so stressmark results are reproducible *)
type rng = { mutable s : int }

let mk_rng seed = { s = (seed lor 1) land 0x3FFFFFFFFFFFFFF }

let next r =
  let x = r.s in
  let x = x lxor (x lsl 13) land 0x3FFFFFFFFFFFFFF in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) land 0x3FFFFFFFFFFFFFF in
  r.s <- x;
  x

let rand_int r n = next r mod n
let rand_float r = float_of_int (next r land 0xFFFFFF) /. float_of_int 0x1000000

let patterns = [| 0xAAAA; 0x5555; 0xFFFF; 0x0000; 0xA5A5; 0x7FFF; 0xCCCC; 0x3333 |]
let work_regs = [| 4; 5; 6; 7; 8; 9; 10; 11 |]
let alu_ops = Isa.Insn.[| ADD; SUB; XOR; AND; BIS; ADDC; BIC |]
let scratch = Benchprogs.Bench.input_base

let random_gene r =
  match rand_int r 11 with
  | 0 | 1 ->
    G_alu_imm
      ( alu_ops.(rand_int r (Array.length alu_ops)),
        rand_int r (Array.length patterns),
        work_regs.(rand_int r (Array.length work_regs)) )
  | 2 ->
    G_alu_rr
      ( alu_ops.(rand_int r (Array.length alu_ops)),
        work_regs.(rand_int r (Array.length work_regs)),
        work_regs.(rand_int r (Array.length work_regs)) )
  | 3 -> G_load_abs (rand_int r 8)
  | 4 -> G_store_abs (work_regs.(rand_int r (Array.length work_regs)), rand_int r 8)
  | 5 -> G_load_idx (rand_int r 8)
  | 6 -> G_mul (rand_int r (Array.length patterns), rand_int r (Array.length patterns))
  | 7 -> G_mul_flip
  | 8 -> G_mul_read
  | 9 -> G_push work_regs.(rand_int r (Array.length work_regs))
  | _ -> G_pop work_regs.(rand_int r (Array.length work_regs))

let items_of_gene g =
  let open Benchprogs.Bench.E in
  match g with
  | G_alu_imm (op, p, rd) ->
    [ i (Isa.Insn.I1 (op, imm patterns.(p), dreg rd)) ]
  | G_alu_rr (op, rs, rd) -> [ i (Isa.Insn.I1 (op, reg rs, dreg rd)) ]
  | G_load_abs slot -> [ mov (abs (scratch + (2 * slot))) (dreg 14) ]
  | G_store_abs (r, slot) -> [ mov (reg r) (dabs (scratch + (2 * slot))) ]
  | G_load_idx slot -> [ mov (idx (2 * slot) 12) (dreg 14) ]
  | G_mul (p1, p2) ->
    [
      mov (imm patterns.(p1)) (dabs Isa.Memmap.mpy);
      mov (imm patterns.(p2)) (dabs Isa.Memmap.op2);
    ]
  | G_mul_flip ->
    [
      mov (imm 0xAAAA) (dabs Isa.Memmap.mpy);
      mov (imm 0x5555) (dabs Isa.Memmap.op2);
      mov (imm 0x5555) (dabs Isa.Memmap.mpy);
      mov (imm 0xAAAA) (dabs Isa.Memmap.op2);
    ]
  | G_mul_read -> [ mov (abs Isa.Memmap.reslo) (dreg 14); mov (abs Isa.Memmap.reshi) (dreg 15) ]
  | G_push r -> [ push (reg r) ]
  | G_pop r -> [ pop r ]
  | G_swpb r -> [ swpb r ]
  | G_nop -> [ nop ]

(* Balanced stack: count pushes/pops and pad so SP ends where it
   started (keeps repeats bounded in RAM). *)
let phenotype config genome =
  let open Benchprogs.Bench.E in
  let body_once =
    let items = List.concat_map items_of_gene (Array.to_list genome) in
    let pushes =
      Array.fold_left
        (fun a g -> match g with G_push _ -> a + 1 | G_pop _ -> a - 1 | _ -> a)
        0 genome
    in
    let fixup =
      if pushes > 0 then List.init pushes (fun _ -> pop 15)
      else if pushes < 0 then List.init (-pushes) (fun _ -> push (reg 15))
      else []
    in
    items @ fixup
  in
  let init =
    [ mov (imm scratch) (dreg 12) ]
    @ List.concat
        (List.mapi
           (fun k r -> [ mov (imm patterns.(k mod Array.length patterns)) (dreg r) ])
           (Array.to_list work_regs))
    @ List.concat (List.init 8 (fun k -> [ mov (imm patterns.(k)) (dabs (scratch + (2 * k))) ]))
    @ [ mov (imm 0) (dreg 14); mov (imm 0) (dreg 15) ]
  in
  init @ List.concat (List.init config.repeats (fun _ -> body_once))

type fitness = Peak | Average

(* The paper reports stressmark baselines guardbanded ("GB-Stress",
   Figure 4); we apply the same 4/3 factor as the profiling baseline
   (margin for operating conditions — a stressmark has no inputs, but a
   deployed system still needs headroom over bench conditions). *)
let guardband = 4. /. 3.

type result = {
  best_genome : genome;
  best_fitness : float;  (** W *)
  peak_power : float;
  avg_power : float;
  evaluations : int;
}

let evaluate pa cpu config genome =
  let body = phenotype config genome in
  let img =
    Isa.Asm.assemble
      {
        Isa.Asm.name = "stressmark";
        entry = "start";
        sections =
          [
            {
              Isa.Asm.org = Isa.Memmap.rom_base;
              items =
                ((Isa.Asm.Label "start" :: Benchprogs.Bench.E.prologue) @ body)
                @ Isa.Asm.halt_items;
            };
          ];
      }
  in
  let cycles, trace = Core.Analyze.run_concrete pa cpu img ~inputs:[] in
  ignore cycles;
  let peak, _ = Poweran.peak_of trace in
  (* average power over the steady-state tail (the register/scratch
     initialization prologue would otherwise dilute the average) *)
  let n = Array.length trace in
  let from = n / 3 in
  let tail = Array.sub trace from (n - from) in
  let avg = Array.fold_left ( +. ) 0. tail /. float_of_int (Array.length tail) in
  (peak, avg)

let run ?(config = default_config) ~fitness pa cpu =
  let r = mk_rng config.seed in
  let evals = ref 0 in
  let score genome =
    let peak, avg = evaluate pa cpu config genome in
    match fitness with Peak -> (peak, avg) | Average -> (avg, peak)
  in
  (* Fitness evaluation — a full concrete gate-level run per genome — is
     the expensive, independent part: map it over the pool in submission
     order. The RNG only ever advances on this domain (selection,
     crossover, mutation), so the generation sequence and therefore the
     whole GA trajectory is identical at any job count. *)
  let score_all pop =
    evals := !evals + Array.length pop;
    Parallel.map_array_auto score pop
  in
  let random_genome () = Array.init config.genome_len (fun _ -> random_gene r) in
  let pop = Array.init config.population (fun _ -> random_genome ()) in
  let fitnesses = score_all pop in
  let by_fitness () =
    let idx = Array.init config.population (fun k -> k) in
    Array.sort (fun a b -> Float.compare (fst fitnesses.(b)) (fst fitnesses.(a))) idx;
    idx
  in
  for _gen = 1 to config.generations do
    let order = by_fitness () in
    let tournament () =
      let best = ref (rand_int r config.population) in
      for _ = 2 to config.tournament do
        let c = rand_int r config.population in
        if fst fitnesses.(c) > fst fitnesses.(!best) then best := c
      done;
      pop.(!best)
    in
    let next_pop =
      Array.init config.population (fun k ->
          if k < config.elite then Array.copy pop.(order.(k))
          else begin
            let a = tournament () and b = tournament () in
            let cut = rand_int r config.genome_len in
            let child =
              Array.init config.genome_len (fun j ->
                  if j < cut then a.(j) else b.(j))
            in
            Array.map
              (fun g -> if rand_float r < config.mutation_rate then random_gene r else g)
              child
          end)
    in
    Array.blit next_pop 0 pop 0 config.population;
    Array.blit (score_all pop) 0 fitnesses 0 config.population
  done;
  let order = by_fitness () in
  let best = order.(0) in
  let fit, other = fitnesses.(best) in
  let peak, avg = match fitness with Peak -> (fit, other) | Average -> (other, fit) in
  {
    best_genome = Array.copy pop.(best);
    best_fitness = fit;
    peak_power = peak;
    avg_power = avg;
    evaluations = !evals;
  }
