(* Input-based profiling baseline (paper, Section 4.2).

   Power and energy are measured over several concrete input sets; the
   reported requirement is the observed maximum inflated by a 4/3
   guardband (same factor as the prior studies the paper cites),
   because profiling cannot cover all input sets. *)

let guardband = 4. /. 3.

type result = {
  peaks : float list;  (** observed per-input peak power, W *)
  npes : float list;  (** observed per-input energy/cycle, J/cycle *)
  max_peak : float;
  min_peak : float;
  max_npe : float;
  min_npe : float;
  gb_peak : float;  (** guardbanded requirement *)
  gb_npe : float;
}

let default_seeds = [ 1; 2; 3; 5; 8; 13; 21; 42 ]

let run ?(seeds = default_seeds) pa cpu (b : Benchprogs.Bench.t) =
  let img = Benchprogs.Bench.assemble b in
  (* One independent concrete gate-level run per seed; the ordered map
     keeps the result lists in seed order at any job count. *)
  let results =
    Parallel.map_list_auto
      (fun seed ->
        let inputs = b.Benchprogs.Bench.gen_inputs ~seed in
        let cycles, trace =
          Core.Analyze.run_concrete pa cpu img
            ~inputs:[ (Benchprogs.Bench.input_base, inputs) ]
        in
        let peak, _ = Poweran.peak_of trace in
        let energy = Array.fold_left ( +. ) 0. trace *. Poweran.period pa in
        (peak, energy /. float_of_int (Array.length cycles)))
      seeds
  in
  let peaks = List.map fst results and npes = List.map snd results in
  let fmax = List.fold_left Float.max neg_infinity in
  let fmin = List.fold_left Float.min infinity in
  {
    peaks;
    npes;
    max_peak = fmax peaks;
    min_peak = fmin peaks;
    max_npe = fmax npes;
    min_npe = fmin npes;
    gb_peak = fmax peaks *. guardband;
    gb_npe = fmax npes *. guardband;
  }
