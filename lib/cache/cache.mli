(** Content-addressed, two-layer analysis result cache.

    The analysis pipeline is deterministic in its inputs — an assembled
    binary image, a netlist/power context, and a handful of knobs — so
    every result can be memoized under a digest of exactly those inputs.
    This module provides the substrate:

    - an {e in-memory LRU layer} shared across the domain pool, with
      {e single-flight} semantics: concurrent requests for the same key
      block on the one in-flight computation instead of duplicating it;
    - an optional {e persistent disk layer}: entries are written
      atomically (write-to-temp then rename) in a versioned container
      format with an embedded payload digest, and any unreadable, stale
      or corrupted entry is treated as a miss — never a crash. Entries
      are {e sharded} by the first two hex digits of their key
      ([dir/ab/<ns>.abcd….v1]) so concurrent writers spread over 256
      subdirectories; flat entries written by pre-shard versions are
      still found (and adopted into their shard) on load, or relocated
      in bulk with {!migrate}.

    Typing discipline: {!memo} stores values via [Marshal], so the
    [ns] (namespace) string given to [memo] must uniquely determine the
    stored type, and {!format_version} / the caller's own version
    component of the key must be bumped whenever a stored type or the
    semantics producing it change. All callers in this repository go
    through {!Core.Analyze}, which keys on
    (image, netlist, config, analysis version). *)

module Key : sig
  (** A stable content digest in lowercase hex. *)
  type t = string

  (** Digest of a string. *)
  val of_string : string -> t

  (** Digest of any marshalable value (its [Marshal] image). *)
  val of_value : 'a -> t

  (** Order-sensitive combination of components. *)
  val combine : string list -> t
end

(** Bumped when the on-disk container layout changes; stale containers
    load as misses. *)
val format_version : int

type counters = {
  mutable mem_hits : int;  (** served from the in-memory LRU *)
  mutable disk_hits : int;  (** deserialized from the disk layer *)
  mutable misses : int;  (** computed fresh *)
  mutable stores : int;  (** entries written to disk *)
  mutable evictions : int;  (** LRU entries dropped for capacity *)
  mutable corrupt : int;  (** unreadable disk entries discarded *)
  mutable joined : int;  (** single-flight waits on another computation *)
}

type t

(** [create ?dir ?mem_entries ()] — a cache with an in-memory LRU of at
    most [mem_entries] values (default 64) and, when [dir] is given, a
    persistent layer in that directory (created on demand). Without
    [dir] the cache is memory-only. *)
val create : ?dir:string -> ?mem_entries:int -> unit -> t

(** The disk directory, if persistent. *)
val dir : t -> string option

(** The standard persistent location: [$XBOUND_CACHE_DIR], else
    [$XDG_CACHE_HOME/xbound], else [$HOME/.cache/xbound], else
    [_xbound_cache] in the working directory. *)
val default_dir : unit -> string

(** [memo t ~ns ~key f] — the cached value for [(ns, key)], computing
    [f ()] (and storing the result in both layers) on a miss. Safe to
    call concurrently from any domain; concurrent calls for the same
    [(ns, key)] run [f] once. If [f] raises, the exception propagates to
    the caller that ran it, waiters retry (one of them becomes the new
    computer), and nothing is stored. *)
val memo : t -> ns:string -> key:Key.t -> (unit -> 'a) -> 'a

(** Live counters (aggregated across both layers). *)
val counters : t -> counters

val reset_counters : t -> unit

(** Counters as a JSON object (for [BENCH_micro.json]). *)
val counters_json : t -> string

(** [(entries, bytes)] currently in the disk layer, summed across the
    shard subdirectories and any remaining flat legacy entries (0 when
    memory-only). *)
val disk_stats : t -> int * int

(** Per-namespace [(ns, (entries, bytes))] rows for the disk layer,
    sorted by namespace — the breakdown behind {!disk_stats}, so the
    [xbound cache stats] output can attribute entries to their kind
    (analysis, symtree, block, peak-energy, ...). Empty when
    memory-only. *)
val disk_stats_by_ns : t -> (string * (int * int)) list

(** Move flat legacy entries into their shard subdirectories (atomic
    renames, safe under concurrent readers); returns the number moved.
    The [xbound cache migrate] subcommand calls this. *)
val migrate : t -> int

(** Drop every in-memory entry and delete every disk entry this cache
    format owns (files named [<ns>.<digest>.v<version>], flat or
    sharded; emptied shard subdirectories are removed). *)
val clear : t -> unit
