(* Content-addressed, two-layer (memory LRU + disk) result cache with
   single-flight memoization. See cache.mli for the contract. *)

module Key = struct
  type t = string

  let of_string s = Digest.to_hex (Digest.string s)
  let of_value v = Digest.to_hex (Digest.string (Marshal.to_string v []))
  let combine parts = of_string (String.concat "\x00" parts)
end

let format_version = 1
let magic = "XBCACHE\x01"

(* Telemetry mirrors of the per-cache counters (process-wide, no-ops
   unless a sink is installed), plus a histogram of how long callers
   block on another domain's in-flight computation. *)
let c_mem_hits = Telemetry.Counter.make "cache.mem_hits"
let c_disk_hits = Telemetry.Counter.make "cache.disk_hits"
let c_misses = Telemetry.Counter.make "cache.misses"
let c_stores = Telemetry.Counter.make "cache.stores"
let c_evictions = Telemetry.Counter.make "cache.evictions"
let c_corrupt = Telemetry.Counter.make "cache.corrupt"
let c_joined = Telemetry.Counter.make "cache.joined"
let h_wait = Telemetry.Histogram.make "cache.wait_ns"

type counters = {
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable corrupt : int;
  mutable joined : int;
}

(* Intrusive doubly-linked LRU list; [head] is most recently used. *)
type entry = {
  ekey : string;
  value : Obj.t;
  mutable prev : entry option;  (* toward head *)
  mutable next : entry option;  (* toward tail *)
}

type slot = Ready of entry | In_flight

type t = {
  dir_ : string option;
  capacity : int;
  table : (string, slot) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  mutable count : int;
  m : Mutex.t;
  cv : Condition.t;
  c : counters;
}

let create ?dir ?(mem_entries = 64) () =
  {
    dir_ = dir;
    capacity = max 1 mem_entries;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    count = 0;
    m = Mutex.create ();
    cv = Condition.create ();
    c =
      {
        mem_hits = 0;
        disk_hits = 0;
        misses = 0;
        stores = 0;
        evictions = 0;
        corrupt = 0;
        joined = 0;
      };
  }

let dir t = t.dir_
let counters t = t.c

let reset_counters t =
  Mutex.lock t.m;
  t.c.mem_hits <- 0;
  t.c.disk_hits <- 0;
  t.c.misses <- 0;
  t.c.stores <- 0;
  t.c.evictions <- 0;
  t.c.corrupt <- 0;
  t.c.joined <- 0;
  Mutex.unlock t.m

let counters_json t =
  Printf.sprintf
    "{\"mem_hits\": %d, \"disk_hits\": %d, \"misses\": %d, \"stores\": %d, \
     \"evictions\": %d, \"corrupt\": %d, \"joined\": %d}"
    t.c.mem_hits t.c.disk_hits t.c.misses t.c.stores t.c.evictions t.c.corrupt
    t.c.joined

let default_dir () =
  match Sys.getenv_opt "XBOUND_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "xbound"
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "xbound"
      | _ -> "_xbound_cache"))

(* ---------------- LRU list (all under t.m) ---------------- *)

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  if t.head != Some e then begin
    unlink t e;
    push_front t e
  end

let insert_ready t full_key v =
  let e = { ekey = full_key; value = v; prev = None; next = None } in
  Hashtbl.replace t.table full_key (Ready e);
  push_front t e;
  t.count <- t.count + 1;
  while t.count > t.capacity do
    match t.tail with
    | None -> t.count <- t.capacity (* unreachable *)
    | Some victim ->
      unlink t victim;
      Hashtbl.remove t.table victim.ekey;
      t.count <- t.count - 1;
      t.c.evictions <- t.c.evictions + 1;
      Telemetry.Counter.incr c_evictions
  done

(* ---------------- disk layer ---------------- *)

let rec mkdir_p d =
  if d = "" || d = "/" || d = "." || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(* Entries are sharded by the first two hex digits of the key
   (dir/ab/<ns>.abcd....v1), so 256 concurrent writers rename into 256
   directories instead of contending on one. Entries written by older
   versions live flat in [dir]; they are still found on load (and moved
   into their shard as a side effect), and [migrate] relocates them in
   bulk. *)
let shard_of key = if String.length key >= 2 then String.sub key 0 2 else "00"

let entry_name ~ns ~key = Printf.sprintf "%s.%s.v%d" ns key format_version

let entry_file dir ~ns ~key =
  Filename.concat (Filename.concat dir (shard_of key)) (entry_name ~ns ~key)

let legacy_entry_file dir ~ns ~key = Filename.concat dir (entry_name ~ns ~key)

(* An on-disk entry is: magic, namespace (length-prefixed), the MD5 of
   the payload, then the marshaled payload. Anything that fails to read
   back — wrong magic, wrong namespace, digest mismatch, truncation,
   Marshal failure — is a miss; the bad file is deleted. *)
let disk_load t ~ns ~key =
  match t.dir_ with
  | None -> None
  | Some dir -> (
    let sharded = entry_file dir ~ns ~key in
    let legacy = legacy_entry_file dir ~ns ~key in
    let file =
      if Sys.file_exists sharded then Some sharded
      else if Sys.file_exists legacy then begin
        (* Found where a pre-shard version wrote it: adopt it into its
           shard (atomic rename; best-effort) and read from wherever it
           now is. *)
        (try
           mkdir_p (Filename.dirname sharded);
           Sys.rename legacy sharded
         with Sys_error _ -> ());
        if Sys.file_exists sharded then Some sharded
        else if Sys.file_exists legacy then Some legacy
        else None
      end
      else None
    in
    match file with
    | None -> None
    | Some file ->
      let parse ic =
        let len = in_channel_length ic in
        let m = really_input_string ic (String.length magic) in
        if m <> magic then failwith "bad magic";
        let nslen = input_binary_int ic in
        if nslen <> String.length ns then failwith "bad ns";
        let file_ns = really_input_string ic nslen in
        if file_ns <> ns then failwith "bad ns";
        let digest = really_input_string ic 16 in
        let header = String.length magic + 4 + nslen + 16 in
        let payload = really_input_string ic (len - header) in
        if Digest.string payload <> digest then failwith "bad digest";
        Marshal.from_string payload 0
      in
      match
        Telemetry.span ~cat:"cache" "cache.disk_load" (fun () ->
            In_channel.with_open_bin file parse)
      with
      | v -> Some v
      | exception _ ->
        (try Sys.remove file with Sys_error _ -> ());
        Mutex.lock t.m;
        t.c.corrupt <- t.c.corrupt + 1;
        Mutex.unlock t.m;
        Telemetry.Counter.incr c_corrupt;
        None)

(* Atomic publish: write the full entry to a temp file in the same
   directory, then rename over the final name. A concurrent reader sees
   either no file or a complete one. Best-effort: a full disk or
   unwritable directory silently degrades to no persistence. *)
let disk_store t ~ns ~key v =
  match t.dir_ with
  | None -> ()
  | Some dir -> (
    try
      Telemetry.span ~cat:"cache" "cache.disk_store" (fun () ->
          let file = entry_file dir ~ns ~key in
          let shard_dir = Filename.dirname file in
          mkdir_p shard_dir;
          let payload = Marshal.to_string v [] in
          let tmp = Filename.temp_file ~temp_dir:shard_dir "xbcache" ".tmp" in
          Out_channel.with_open_bin tmp (fun oc ->
              output_string oc magic;
              output_binary_int oc (String.length ns);
              output_string oc ns;
              output_string oc (Digest.string payload);
              output_string oc payload);
          Sys.rename tmp file);
      Mutex.lock t.m;
      t.c.stores <- t.c.stores + 1;
      Mutex.unlock t.m;
      Telemetry.Counter.incr c_stores
    with Sys_error _ | Sys_blocked_io -> ())

let is_hex s =
  String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let is_entry_name name =
  (* <ns>.<32-hex>.v<version> for the current format version *)
  match String.split_on_char '.' name with
  | [ _ns; digest; v ] ->
    v = Printf.sprintf "v%d" format_version
    && String.length digest = 32
    && is_hex digest
  | _ -> false

let is_shard_name name = String.length name = 2 && is_hex name

(* Every entry directory this cache format owns: the root (legacy flat
   entries) plus each two-hex-digit shard subdirectory. *)
let entry_dirs dir =
  if not (Sys.file_exists dir) then []
  else
    dir
    :: (Sys.readdir dir |> Array.to_list
       |> List.filter_map (fun name ->
              let sub = Filename.concat dir name in
              if
                is_shard_name name
                && (try Sys.is_directory sub with Sys_error _ -> false)
              then Some sub
              else None))

let disk_stats t =
  match t.dir_ with
  | None -> (0, 0)
  | Some dir ->
    List.fold_left
      (fun acc d ->
        Array.fold_left
          (fun (n, bytes) name ->
            if is_entry_name name then
              let sz =
                try
                  In_channel.with_open_bin (Filename.concat d name)
                    in_channel_length
                with Sys_error _ -> 0
              in
              (n + 1, bytes + sz)
            else (n, bytes))
          acc (Sys.readdir d))
      (0, 0) (entry_dirs dir)

(* Same walk as [disk_stats], bucketed by the namespace component of
   the entry name — one row per entry kind ("analysis", "symtree",
   "block", ...), so `cache stats` can show where the bytes live and
   namespace-scoped semantics stay auditable. *)
let disk_stats_by_ns t =
  match t.dir_ with
  | None -> []
  | Some dir ->
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun d ->
        Array.iter
          (fun name ->
            if is_entry_name name then
              match String.split_on_char '.' name with
              | ns :: _ ->
                let sz =
                  try
                    In_channel.with_open_bin (Filename.concat d name)
                      in_channel_length
                  with Sys_error _ -> 0
                in
                let n0, b0 =
                  Option.value (Hashtbl.find_opt tbl ns) ~default:(0, 0)
                in
                Hashtbl.replace tbl ns (n0 + 1, b0 + sz)
              | [] -> ())
          (Sys.readdir d))
      (entry_dirs dir);
    Hashtbl.fold (fun ns stats acc -> (ns, stats) :: acc) tbl []
    |> List.sort compare

(* Relocate legacy flat entries into their shard subdirectories (atomic
   renames); returns how many moved. Safe to run concurrently with
   readers — they look in both places. *)
let migrate t =
  match t.dir_ with
  | None -> 0
  | Some dir ->
    if not (Sys.file_exists dir) then 0
    else
      Array.fold_left
        (fun moved name ->
          if not (is_entry_name name) then moved
          else
            match String.split_on_char '.' name with
            | [ _ns; digest; _v ] -> (
              let shard = Filename.concat dir (shard_of digest) in
              (try mkdir_p shard with Sys_error _ -> ());
              match
                Sys.rename (Filename.concat dir name)
                  (Filename.concat shard name)
              with
              | () -> moved + 1
              | exception Sys_error _ -> moved)
            | _ -> moved)
        0 (Sys.readdir dir)

let clear t =
  (match t.dir_ with
  | Some dir ->
    List.iter
      (fun d ->
        Array.iter
          (fun name ->
            if is_entry_name name then
              try Sys.remove (Filename.concat d name) with Sys_error _ -> ())
          (Sys.readdir d);
        (* drop shard directories once empty; the root stays *)
        if d <> dir then try Sys.rmdir d with Sys_error _ -> ())
      (entry_dirs dir)
  | None -> ());
  Mutex.lock t.m;
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.count <- 0;
  Mutex.unlock t.m

(* ---------------- memoization ---------------- *)

(* Under t.m: either return the ready value, or claim the key for this
   caller (returns None), waiting out any other domain's in-flight
   computation first. *)
let acquire t full_key =
  let waited = ref false in
  let wait_t0 = ref 0L in
  let observe_wait () =
    if !waited && Telemetry.enabled () then
      Telemetry.Histogram.observe h_wait (Int64.sub (Telemetry.now_ns ()) !wait_t0)
  in
  let rec go () =
    match Hashtbl.find_opt t.table full_key with
    | Some (Ready e) ->
      touch t e;
      (* a caller that waited is already counted in [joined]; the
         counters partition memo calls *)
      if not !waited then begin
        t.c.mem_hits <- t.c.mem_hits + 1;
        Telemetry.Counter.incr c_mem_hits
      end
      else observe_wait ();
      Some e.value
    | Some In_flight ->
      if not !waited then begin
        waited := true;
        if Telemetry.enabled () then wait_t0 := Telemetry.now_ns ();
        t.c.joined <- t.c.joined + 1;
        Telemetry.Counter.incr c_joined
      end;
      Condition.wait t.cv t.m;
      go ()
    | None ->
      observe_wait ();
      Hashtbl.replace t.table full_key In_flight;
      None
  in
  go ()

let publish t full_key v =
  Mutex.lock t.m;
  (* In_flight -> Ready; count the slot only once. *)
  (match Hashtbl.find_opt t.table full_key with
  | Some In_flight -> Hashtbl.remove t.table full_key
  | _ -> ());
  insert_ready t full_key v;
  Condition.broadcast t.cv;
  Mutex.unlock t.m

let abandon t full_key =
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.table full_key with
  | Some In_flight -> Hashtbl.remove t.table full_key
  | _ -> ());
  Condition.broadcast t.cv;
  Mutex.unlock t.m

let memo t ~ns ~key f =
  let full_key = ns ^ ":" ^ key in
  Mutex.lock t.m;
  match acquire t full_key with
  | Some v ->
    Mutex.unlock t.m;
    Obj.obj v
  | None -> (
    Mutex.unlock t.m;
    match disk_load t ~ns ~key with
    | Some v ->
      Mutex.lock t.m;
      t.c.disk_hits <- t.c.disk_hits + 1;
      Mutex.unlock t.m;
      Telemetry.Counter.incr c_disk_hits;
      publish t full_key (Obj.repr v);
      v
    | None -> (
      Mutex.lock t.m;
      t.c.misses <- t.c.misses + 1;
      Mutex.unlock t.m;
      Telemetry.Counter.incr c_misses;
      match f () with
      | v ->
        disk_store t ~ns ~key v;
        publish t full_key (Obj.repr v);
        v
      | exception e ->
        abandon t full_key;
        raise e))
