(* Structural statistics of the execution tree, plus the per-cycle
   X-density series. See treestat.mli. *)

type t = {
  nets : int;
  cycles : int;
  segments : int;
  fork_nodes : int;
  seen_edges : int;
  end_paths : int;
  distinct_states : int;
  max_path_cycles : int;
  x_density : float array;
}

let compute (tree : Gatesim.Trace.tree) =
  let nets = Array.length tree.Gatesim.Trace.initial in
  let fnets = float_of_int (max nets 1) in
  let x = Tri.I.x in
  (* Replay state: current net values and a running X count, maintained
     incrementally from the recorded deltas (x_active nets are X on both
     sides of the boundary, so they never move the count). *)
  let values = Array.copy tree.Gatesim.Trace.initial in
  let xs =
    ref (Array.fold_left (fun acc v -> if v = x then acc + 1 else acc) 0 values)
  in
  let densities = ref [] in
  let segments = ref 0
  and fork_nodes = ref 0
  and seen_edges = ref 0
  and end_paths = ref 0
  and cycles = ref 0
  and max_depth = ref 0 in
  let apply (cy : Gatesim.Trace.cycle) =
    Array.iter
      (fun packed ->
        let net, old_v, new_v = Gatesim.Trace.unpack packed in
        values.(net) <- new_v;
        if old_v = x && new_v <> x then decr xs
        else if old_v <> x && new_v = x then incr xs)
      cy.Gatesim.Trace.deltas;
    incr cycles;
    densities := (float_of_int !xs /. fnets) :: !densities
  in
  (* Same traversal order as [Trace.flatten]: Run cycles, then the
     continuation; at a fork, not-taken before taken, restoring the
     fork-point values for the second child. *)
  let rec go depth = function
    | Gatesim.Trace.Run { cycles = cs; next } ->
      incr segments;
      Array.iter apply cs;
      go (depth + Array.length cs) next
    | Gatesim.Trace.Fork { not_taken; taken } ->
      incr fork_nodes;
      let snap = Array.copy values and snap_xs = !xs in
      go depth not_taken;
      Array.blit snap 0 values 0 nets;
      xs := snap_xs;
      go depth taken
    | Gatesim.Trace.End_path ->
      incr end_paths;
      if depth > !max_depth then max_depth := depth
    | Gatesim.Trace.Seen _ ->
      incr seen_edges;
      if depth > !max_depth then max_depth := depth
  in
  go 0 tree.Gatesim.Trace.root;
  {
    nets;
    cycles = !cycles;
    segments = !segments;
    fork_nodes = !fork_nodes;
    seen_edges = !seen_edges;
    end_paths = !end_paths;
    distinct_states = Hashtbl.length tree.Gatesim.Trace.registry;
    max_path_cycles = !max_depth;
    x_density = Array.of_list (List.rev !densities);
  }

let density_stats t =
  let n = Array.length t.x_density in
  if n = 0 then (0., 0.)
  else
    let sum = Array.fold_left ( +. ) 0. t.x_density in
    let mx = Array.fold_left Float.max neg_infinity t.x_density in
    (sum /. float_of_int n, mx)
