(* Analysis tier selection. See tier.mli. *)

type t = Exact | Static | Auto

let to_string = function
  | Exact -> "exact"
  | Static -> "static"
  | Auto -> "auto"

let of_string = function
  | "exact" -> Some Exact
  | "static" -> Some Static
  | "auto" -> Some Auto
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)

let all = [ Exact; Static; Auto ]
