(** Input-independent peak power (paper, Section 3.2 / Algorithm 2).

    The execution tree is flattened into a trace; every cycle's
    remaining Xs are resolved in the direction that maximizes that
    cycle's switching power. This closed form equals evaluating each
    cycle in the even/odd VCD file that maximizes its parity (see
    {!Evenodd}; the equivalence is asserted by tests). *)

type result = {
  flattened : Gatesim.Trace.cycle array;
  trace : float array;  (** per-cycle peak power bound, W *)
  peak : float;  (** the application's peak power requirement, W *)
  peak_index : int;
}

val of_cycles : Poweran.t -> Gatesim.Trace.cycle array -> result

(** [of_tree ?cache pa tree] — with [cache = (c, key)], the result is
    memoized in [c] under [key]; the caller must derive [key] from
    everything the result depends on (the tree's inputs and the power
    context — see {!Analyze.cache_key}). *)
val of_tree : ?cache:Cache.t * Cache.Key.t -> Poweran.t -> Gatesim.Trace.tree -> result
