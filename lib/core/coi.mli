(** Cycle-of-interest analysis (paper, Section 3.5 / Figure 3.6).

    Finds the peak power spikes, names the instruction executing at
    each (and, on fetch cycles, the instruction being fetched —
    mirroring the paper's two-row pipeline display), and reports the
    per-module power breakdown that guides optimization choice. *)

type t = {
  cycle_index : int;  (** position in the flattened trace *)
  power : float;  (** W *)
  state : int option;  (** FSM state, if known *)
  state_name : string;
  pc : int option;
  instr : Isa.Insn.instr option;  (** decoded from the IR word *)
  instr_text : string;  (** executing instruction (image-accurate when
                            an image is supplied) *)
  fetching_text : string option;  (** on FETCH cycles: the incoming one *)
  breakdown : (string * float) list;  (** per module, W; sums to power *)
}

val of_cycle :
  ?image:Isa.Asm.image ->
  Poweran.t ->
  flattened:Gatesim.Trace.cycle array ->
  trace:float array ->
  int ->
  t

(** [find ?image pa ~flattened ~trace ~top ~min_gap] — the [top]
    highest spikes, no two closer than [min_gap] cycles. *)
val find :
  ?image:Isa.Asm.image ->
  Poweran.t ->
  flattened:Gatesim.Trace.cycle array ->
  trace:float array ->
  top:int ->
  min_gap:int ->
  t list

(** Largest-first prefix of the module breakdown (default 3) — the
    attribution line both [xbound cois] and [xbound explain] print. *)
val top_modules : ?n:int -> t -> (string * float) list

val pp : Format.formatter -> t -> unit
