(** Input-independent peak energy (paper, Section 3.3).

    The worst root-to-leaf sum of per-cycle peak power times the clock
    period. Forks take the costlier side. A [Seen] edge (a branch into
    an already-explored state) continues into the registered subtree; a
    cyclic reference — an input-dependent loop — is unrolled up to
    [loop_bound] times, the paper's "static analysis or user input"
    iteration bound. Choose [loop_bound] at least one more than the
    loop's true maximum iteration count. *)

type result = {
  energy : float;  (** J, over the worst path *)
  cycles : int;  (** length of the worst path in cycles *)
  npe : float;  (** normalized peak energy, J/cycle *)
  bounded_loops : int;  (** how many Seen edges hit the unroll bound *)
}

(** Raised when the tree contains an input-dependent loop and
    [loop_bound] is 0 — "it may not be possible to compute the peak
    energy of the application" (Section 3.3). The argument is the
    looping state's digest. *)
exception Unbounded of string

(** [of_tree ?cache pa tree ~loop_bound] — with [cache = (c, key)],
    the result is memoized in [c]; [key] must cover the tree's inputs
    and the power context (see {!Analyze.cache_key}), and this module
    appends [loop_bound] itself — so reruns that only change the loop
    bound reuse the same execution tree. *)
val of_tree :
  ?cache:Cache.t * Cache.Key.t ->
  Poweran.t ->
  Gatesim.Trace.tree ->
  loop_bound:int ->
  result
