(** The explicit even/odd double-VCD construction of Algorithm 2.

    Two VCD files are produced from a path's activity trace: one
    assigns the Xs of every even cycle (and its preceding boundary) so
    switching power is maximized in even cycles, the other does the
    same for odd cycles; power analysis runs on both and the peak trace
    interleaves even samples from the even file with odd samples from
    the odd file.

    {!Peak_power} computes the same numbers in closed form; this module
    exists because the paper's pipeline is file-based, for the worked
    example of Figure 3.2, and as a validation/ablation target. *)

type assigned = {
  values : Bytes.t array;  (** per cycle boundary: trit code per net *)
  nets : int;
}

(** [replay ~initial cycles] — dense per-cycle value vectors; index 0
    is the pre-trace state, index [k+1] the values after cycle [k]. *)
val replay : initial:int array -> Gatesim.Trace.cycle array -> assigned

(** [maximize lib nl ~parity a cycles] — resolve the Xs of every cycle
    with index of the given [parity] (0 = even) toward maximum
    switching: forced toggles for half-known transitions,
    [Stdcell.max_transition] for X-to-X activity. *)
val maximize :
  Stdcell.t -> Netlist.t -> parity:int -> assigned -> Gatesim.Trace.cycle array -> assigned

(** Render an assigned trace as a VCD document. *)
val to_vcd : Netlist.t -> assigned -> string

(** [power_from_vcd pa ~n_cycles text] — per-cycle observed power of a
    VCD document (unassigned Xs are inactive gates). *)
val power_from_vcd : Poweran.t -> n_cycles:int -> string -> float array

val interleave : even:float array -> odd:float array -> float array

(** The full pipeline for one path: returns the interleaved peak power
    trace and the two VCD documents. With [cache], the whole pipeline is
    memoized under a digest of the path (initial values + cycles), the
    library and the power context, so re-running Algorithm 2 with
    different even/odd settings or on a re-analyzed path skips the VCD
    construction when nothing changed. *)
val peak_power_via_vcd :
  ?cache:Cache.t ->
  Poweran.t ->
  Stdcell.t ->
  initial:int array ->
  Gatesim.Trace.cycle array ->
  float array * string * string
