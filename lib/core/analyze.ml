(* End-to-end driver: application binary + processor netlist ->
   guaranteed application-specific peak power and energy requirements
   (the tool of Figure 3.1). *)

type config = {
  revisit_limit : int;
  loop_bound : int;
  max_paths : int;
  max_cycles_per_path : int;
}

let default_config =
  { revisit_limit = 0; loop_bound = 16; max_paths = 4096; max_cycles_per_path = 20_000 }

type t = {
  image : Isa.Asm.image;
  tree : Gatesim.Trace.tree;
  sym_stats : Gatesim.Sym.stats;
  flattened : Gatesim.Trace.cycle array;
  power_trace : float array;  (** per-cycle peak power bound, W *)
  peak_power : float;  (** W *)
  peak_index : int;
  peak_energy : Peak_energy.result;
}

(* Standard power-analysis context for a built CPU: 100 MHz, default
   library, memory-bus capacitance on the external bus pins. *)
let poweran_for ?(lib = Stdcell.default) ?(period = 1e-8) cpu =
  (* The 17x17 array's partial-product routing is wire-dominated; scale
     its switching energy accordingly (the multiplier is the paper's
     "relatively large, high-power module"). *)
  Poweran.create ~bus:cpu.Cpu.bus_nets
    ~module_scale:[ ("multiplier", 1.6) ]
    cpu.Cpu.netlist lib ~period

let c_folded = Telemetry.Counter.make "engine.gates_folded"
let c_swept = Telemetry.Counter.make "engine.gates_swept"

(* Denominator for the fold ratio (folded / total): bumped per engine,
   specialized or not, so the ratio is well-defined in both modes. *)
let c_gates = Telemetry.Counter.make "engine.gates_total"

(* The specialization depends only on the netlist and the reset
   protocol (not on the program image), so one result serves every
   analysis over a CPU — memoized by netlist identity, exactly like the
   digest memos in [Static.Blockchar]. A concurrent recompute from a
   pool worker is harmless (last write wins, same result). *)
let spec_memo : (Netlist.t * Netlist.Specialize.t) option ref = ref None

let specialization_for cpu =
  let nl = cpu.Cpu.netlist in
  match !spec_memo with
  | Some (nl', sp) when nl' == nl -> sp
  | _ ->
    let sp =
      Telemetry.span "specialize" @@ fun () ->
      Netlist.Specialize.compute nl
        ~reset:cpu.Cpu.ports.Gatesim.Engine.reset
    in
    spec_memo := Some (nl, sp);
    sp

(* Membership test for folded nets, computed regardless of whether the
   engines run specialized — [Explain] labels folded gates as a
   "constant" class, and that labeling must not depend on the engine
   mode (outputs are byte-identical with specialization on or off). *)
let folded_pred cpu =
  let sp = specialization_for cpu in
  Netlist.Specialize.is_folded sp

let engine_for ?(specialize = true) cpu image ~symbolic =
  let mem = Cpu.mem_of_image image in
  if not symbolic then Cpu.zero_ram mem;
  Telemetry.Counter.add c_gates (Netlist.gate_count cpu.Cpu.netlist);
  let spec =
    if specialize then begin
      let sp = specialization_for cpu in
      Telemetry.Counter.add c_folded (Netlist.Specialize.folded_count sp);
      Telemetry.Counter.add c_swept (Netlist.Specialize.swept sp);
      Some sp
    end
    else None
  in
  let e =
    Gatesim.Engine.create ?spec cpu.Cpu.netlist ~ports:cpu.Cpu.ports ~mem
  in
  if not symbolic then Gatesim.Engine.set_port_in e (Array.make 16 Tri.Zero);
  e

(* ---------------- cache keys ----------------

   Every analysis is deterministic in (netlist+ports, image, config) for
   Algorithm 1 and additionally the power context for the Section
   3.2/3.3 computations, so results are content-addressed by digests of
   exactly those inputs plus [analysis_version] — bump the version
   whenever analysis semantics change, and old entries become misses. *)

(* 2: compiled gate-evaluation kernel — dedup digests switched from MD5
   serialization to incremental Zobrist hashes, so cached trees from
   version 1 reference stale digest strings. *)
let analysis_version = 2

let digest_of v = Digest.to_hex (Digest.string (Marshal.to_string v []))

(* Tier-2 key: the execution tree does not depend on the power context
   or the loop bound, so reruns that only change those reuse it. *)
let tree_key ?(version = analysis_version) config cpu (image : Isa.Asm.image) =
  Cache.Key.combine
    [
      "symtree";
      string_of_int version;
      digest_of (cpu.Cpu.netlist, cpu.Cpu.ports);
      digest_of image;
      string_of_int config.revisit_limit;
      string_of_int config.max_paths;
      string_of_int config.max_cycles_per_path;
    ]

(* Tier-1 key: the whole analysis result. *)
let cache_key ?(version = analysis_version) ~config pa cpu image =
  Cache.Key.combine
    [
      "analysis";
      string_of_int version;
      tree_key ~version config cpu image;
      digest_of pa;
      string_of_int config.loop_bound;
    ]

(* Symbolic analysis: Algorithm 1 then the Section 3.2/3.3
   computations. [pool] defaults to the ambient pool (see [Parallel]);
   results are bit-identical at any job count, and — because cached
   entries are Marshal round-trips of the same floats — also bit
   identical between cached and fresh runs.

   [specialize] (default on) only selects the engine's compiled program;
   trees, digests and bounds are bit-identical either way (the
   differential suite enforces it), so it deliberately does NOT enter
   the cache keys — cached entries are shared across modes. *)
let run ?(config = default_config) ?pool ?cache ?specialize pa cpu
    (image : Isa.Asm.image) =
  Telemetry.span "analyze" @@ fun () ->
  let pool = match pool with Some _ as p -> p | None -> Parallel.auto () in
  let explore () =
    let e = engine_for ?specialize cpu image ~symbolic:true in
    let sym_config =
      {
        (Gatesim.Sym.default_config
           ~is_end:(Cpu.is_end_cycle ~halt_addr:image.Isa.Asm.halt_addr))
        with
        Gatesim.Sym.max_cycles_per_path = config.max_cycles_per_path;
        max_paths = config.max_paths;
        revisit_limit = config.revisit_limit;
      }
    in
    Gatesim.Sym.run ?pool e sym_config
  in
  let compute ~tree_memo ~algo_cache () =
    let tree, sym_stats =
      Telemetry.span "explore" (fun () -> tree_memo explore)
    in
    let pp_result =
      Telemetry.span "peak-power" (fun () ->
          Peak_power.of_tree ?cache:algo_cache pa tree)
    in
    let pe =
      Telemetry.span "peak-energy" (fun () ->
          Peak_energy.of_tree ?cache:algo_cache pa tree
            ~loop_bound:config.loop_bound)
    in
    {
      image;
      tree;
      sym_stats;
      flattened = pp_result.Peak_power.flattened;
      power_trace = pp_result.Peak_power.trace;
      peak_power = pp_result.Peak_power.peak;
      peak_index = pp_result.Peak_power.peak_index;
      peak_energy = pe;
    }
  in
  match cache with
  | None -> compute ~tree_memo:(fun f -> f ()) ~algo_cache:None ()
  | Some c ->
    let tkey = tree_key config cpu image in
    (* the peak power/energy memos hang off the tree + power context;
       Peak_energy appends the loop bound itself *)
    let pkey = Cache.Key.combine [ tkey; digest_of pa ] in
    Cache.memo c ~ns:"analysis" ~key:(cache_key ~config pa cpu image)
      (compute
         ~tree_memo:(fun f -> Cache.memo c ~ns:"symtree" ~key:tkey f)
         ~algo_cache:(Some (c, pkey)))

(* Symbolic execution of a program fragment: boot the machine with the
   reset vector pointed at [entry] and explore until [is_end]. Because
   every register, SR and RAM word starts X (only the PC has a reset
   value), booting straight into a basic block is exactly the
   conservative "entered from any machine state" entry the static tier
   needs — no prologue, no state surgery. *)
let run_fragment ?pool ?specialize ~is_end ~max_cycles_per_path ~max_paths cpu
    (image : Isa.Asm.image) ~entry =
  Telemetry.span "fragment" @@ fun () ->
  let pool = match pool with Some _ as p -> p | None -> Parallel.auto () in
  (* Boot through a thunk placed past the program's last ROM word: stop
     the watchdog, then jump to [entry]. Without it the free-running
     watchdog counter gives every cycle a distinct state digest, so a
     loop inside the fragment never dedups. Every program in this
     repository (like any real MSP430 application) stops the watchdog
     in its prologue and leaves it stopped, so the fragment bound still
     dominates every reachable entry into the fragment. *)
  let thunk_base =
    List.fold_left
      (fun m (a, _) -> if a < Isa.Memmap.reset_vector then max m (a + 2) else m)
      Isa.Memmap.rom_base image.Isa.Asm.words
  in
  let lookup _ = 0 in
  let wdt_stop =
    Isa.Insn.encode ~lookup ~pc:thunk_base
      (Isa.Insn.I1
         ( Isa.Insn.MOV,
           Isa.Insn.S_imm (Isa.Insn.Lit 0x5A80),
           Isa.Insn.D_abs (Isa.Insn.Lit Isa.Memmap.wdtctl) ))
  in
  let br_pc = thunk_base + (2 * List.length wdt_stop) in
  let br =
    Isa.Insn.encode ~lookup ~pc:br_pc
      (Isa.Insn.br (Isa.Insn.S_imm (Isa.Insn.Lit entry)))
  in
  let thunk_words =
    List.mapi (fun k w -> (thunk_base + (2 * k), w)) (wdt_stop @ br)
  in
  let thunk_limit = thunk_base + (2 * List.length (wdt_stop @ br)) in
  assert (thunk_limit <= Isa.Memmap.reset_vector);
  let image =
    {
      image with
      Isa.Asm.entry_addr = entry;
      words =
        List.map
          (fun (a, w) ->
            if a = Isa.Memmap.reset_vector then (a, thunk_base) else (a, w))
          image.Isa.Asm.words
        @ thunk_words;
    }
  in
  (* Thunk fetches must not trip the caller's end predicate. *)
  let is_end cy =
    match
      (Tri.Word.to_int cy.Gatesim.Trace.state, Tri.Word.to_int cy.Gatesim.Trace.pc)
    with
    | Some s, Some p when s = Cpu.st_fetch && p >= thunk_base && p < thunk_limit
      ->
      false
    | _ -> is_end cy
  in
  let e = engine_for ?specialize cpu image ~symbolic:true in
  let sym_config =
    {
      (Gatesim.Sym.default_config ~is_end) with
      Gatesim.Sym.max_cycles_per_path;
      max_paths;
    }
  in
  Gatesim.Sym.run ?pool e sym_config

(* Concrete (input-based) execution for profiling and validation. *)
let run_concrete ?specialize pa cpu (image : Isa.Asm.image) ~inputs =
  Telemetry.span "concrete" @@ fun () ->
  let e = engine_for ?specialize cpu image ~symbolic:false in
  List.iter
    (fun (addr, ws) ->
      List.iteri
        (fun k w -> Gatesim.Mem.poke (Gatesim.Engine.mem e) (addr + (2 * k)) w)
        ws)
    inputs;
  let cycles, _initial =
    Gatesim.Sym.run_concrete e
      ~is_end:(Cpu.is_end_cycle ~halt_addr:image.Isa.Asm.halt_addr)
      ~max_cycles:200_000
  in
  let trace = Poweran.trace_power pa ~mode:`Observed cycles in
  (cycles, trace)

let cois ?(top = 4) ?(min_gap = 5) pa t =
  Coi.find ~image:t.image pa ~flattened:t.flattened ~trace:t.power_trace ~top
    ~min_gap
