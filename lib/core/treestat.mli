(** Observability over Algorithm 1's execution tree.

    The symbolic exploration already reports path/fork/dedup counters
    ({!Gatesim.Sym.stats}); this module derives the structural view the
    bound-provenance layer reports on top of them: how many straight-line
    segments the tree has, how often paths merge back into the seen-set
    (Algorithm 1, line 19), how many distinct architectural states were
    registered, and — per recorded cycle — the {e X-density}: the
    fraction of nets whose value is unknown. X-density is the paper's
    "how symbolic is the machine here" signal: 0 right after reset on a
    concretized image, rising as input-dependent values spread. *)

type t = {
  nets : int;  (** nets in the netlist (the density denominator) *)
  cycles : int;  (** recorded cycles, = [Array.length x_density] *)
  segments : int;  (** straight-line [Run] stretches *)
  fork_nodes : int;  (** input-dependent branch points *)
  seen_edges : int;  (** merges into an already-explored state *)
  end_paths : int;  (** paths that reached the halt self-jump *)
  distinct_states : int;  (** seen-set (registry) cardinality *)
  max_path_cycles : int;  (** longest root-to-leaf cycle count *)
  x_density : float array;
      (** per cycle, in {!Gatesim.Trace.flatten} order: fraction of
          nets that are X at the end of that cycle *)
}

(** Walks the tree once, replaying deltas (with snapshot/restore at
    forks) so the density series aligns index-for-index with the
    flattened trace Algorithm 2 scores. *)
val compute : Gatesim.Trace.tree -> t

(** [(mean, max)] of the density series; [(0., 0.)] when empty. *)
val density_stats : t -> float * float
