(* Input-independent peak energy (paper, Section 3.3).

   Peak energy is the worst root-to-leaf sum of per-cycle peak power
   times the clock period. Input-dependent branches take the costlier
   side (Fork = max). A [Seen] edge returns to an already-explored
   architectural state; its continuation is the registered subtree, and
   a cyclic reference (an input-dependent loop whose state repeats
   exactly) is unrolled up to [loop_bound] times — the "static analysis
   or user input" iteration bound the paper requires for such loops. *)

module SMap = Map.Make (String)

type result = {
  energy : float;  (** J, over the worst path *)
  cycles : int;  (** length of the worst path in cycles *)
  npe : float;  (** normalized peak energy, J/cycle *)
  bounded_loops : int;  (** how many Seen edges needed the loop bound *)
}

exception Unbounded of string
(** raised when [loop_bound = 0] would be exceeded *)

let of_tree_fresh pa (tree : Gatesim.Trace.tree) ~loop_bound =
  let period = Poweran.period pa in
  let bounded = ref 0 in
  let seg_cost cycles =
    Array.fold_left
      (fun (e, n) cy -> (e +. (Poweran.cycle_power_max pa cy *. period), n + 1))
      (0., 0) cycles
  in
  (* budgets: per-digest remaining unrolls along the current path *)
  let rec go node budgets =
    match node with
    | Gatesim.Trace.Run { cycles; next } ->
      let e, n = seg_cost cycles in
      let e', n' = go next budgets in
      (e +. e', n + n')
    | Gatesim.Trace.Fork { not_taken; taken } ->
      let e0, n0 = go not_taken budgets in
      let e1, n1 = go taken budgets in
      if e1 > e0 then (e1, n1) else (e0, n0)
    | Gatesim.Trace.End_path -> (0., 0)
    | Gatesim.Trace.Seen d -> (
      let remaining =
        match SMap.find_opt d budgets with Some r -> r | None -> loop_bound
      in
      if remaining <= 0 then begin
        (* the paper: without a static or user-supplied iteration bound
           the peak energy of an input-dependent loop is not computable *)
        if loop_bound <= 0 then raise (Unbounded d);
        incr bounded;
        (0., 0)
      end
      else
        match Hashtbl.find_opt tree.Gatesim.Trace.registry d with
        | None -> (0., 0)
        | Some r -> go !r (SMap.add d (remaining - 1) budgets))
  in
  let energy, cycles = go tree.Gatesim.Trace.root SMap.empty in
  {
    energy;
    cycles;
    npe = (if cycles = 0 then 0. else energy /. float_of_int cycles);
    bounded_loops = !bounded;
  }

let of_tree ?cache pa tree ~loop_bound =
  match cache with
  | None -> of_tree_fresh pa tree ~loop_bound
  | Some (c, key) ->
    (* the caller's key covers the tree and the power context; the loop
       bound is this analysis's own knob *)
    let key = Cache.Key.combine [ key; "loop_bound"; string_of_int loop_bound ] in
    Cache.memo c ~ns:"peak-energy" ~key (fun () -> of_tree_fresh pa tree ~loop_bound)
