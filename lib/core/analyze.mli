(** End-to-end driver: application binary + processor netlist ->
    guaranteed application-specific peak power and energy requirements
    (the tool of the paper's Figure 3.1). *)

type config = {
  revisit_limit : int;
      (** extra explorations allowed per already-seen state *)
  loop_bound : int;  (** Seen-edge unroll bound for energy analysis *)
  max_paths : int;
  max_cycles_per_path : int;
}

val default_config : config

type t = {
  image : Isa.Asm.image;
  tree : Gatesim.Trace.tree;
  sym_stats : Gatesim.Sym.stats;
  flattened : Gatesim.Trace.cycle array;
  power_trace : float array;  (** per-cycle peak power bound, W *)
  peak_power : float;  (** W — guaranteed for all inputs *)
  peak_index : int;
  peak_energy : Peak_energy.result;
}

(** Standard power-analysis context for a built CPU: 100 MHz, the
    default library, memory-bus capacitance on the external pins and
    the multiplier-array wire scale (see DESIGN.md calibration notes). *)
val poweran_for : ?lib:Stdcell.t -> ?period:float -> Cpu.t -> Poweran.t

(** {1 Specialization}

    {!Netlist.Specialize} depends only on the netlist and the reset
    protocol, so one result serves every analysis over a CPU; it is
    memoized by netlist identity and computed under a ["specialize"]
    telemetry span. Engines take it via the [?specialize] flags below
    (default on); trees, digests and bounds are bit-identical with it on
    or off, which is why the flag does not enter cache keys. *)

(** The memoized specialization of a CPU's netlist. *)
val specialization_for : Cpu.t -> Netlist.Specialize.t

(** [folded_pred cpu net] — true when [net] is proven constant. Computed
    from {!specialization_for} regardless of engine mode, so reports
    using it (the [Explain] "constant" gate class) are byte-identical
    with specialization on or off. *)
val folded_pred : Cpu.t -> int -> bool

(** {1 Caching}

    Analyses are deterministic in (netlist, image, config, power
    context), so results are content-addressed. Keys always include
    {!analysis_version}; bump it when analysis semantics change and
    stale entries become misses. *)

(** Version component of every cache key. *)
val analysis_version : int

(** Tier-2 key: Algorithm 1's execution tree, which depends on the
    netlist/ports, the image and the exploration knobs — but not on the
    power context or [loop_bound], so those can change and still reuse
    the tree. *)
val tree_key : ?version:int -> config -> Cpu.t -> Isa.Asm.image -> Cache.Key.t

(** Tier-1 key: the whole analysis result. *)
val cache_key :
  ?version:int -> config:config -> Poweran.t -> Cpu.t -> Isa.Asm.image -> Cache.Key.t

(** [run pa cpu image] — Algorithm 1 (symbolic execution) followed by
    the Section 3.2/3.3 computations. [pool] (default: the ambient
    {!Parallel.auto} pool) parallelizes the tree exploration; the result
    is bit-identical at any job count. With [cache], the whole result,
    the execution tree, and the per-algorithm computations are memoized
    (memory LRU + optional disk) under the keys above; cached results
    are bit-identical to fresh ones. *)
val run :
  ?config:config ->
  ?pool:Parallel.Pool.t ->
  ?cache:Cache.t ->
  ?specialize:bool ->
  Poweran.t ->
  Cpu.t ->
  Isa.Asm.image ->
  t

(** [run_fragment ~is_end ~entry cpu image] — symbolic execution of a
    program fragment: the reset vector is re-pointed at [entry] and the
    machine boots straight into it, so the fragment is explored from the
    conservative all-X entry state (every register, SR and RAM word is
    X; only the PC resets). The static tier characterizes each basic
    block this way; [is_end] decides where the fragment stops (typically
    the first fetch outside the block). *)
val run_fragment :
  ?pool:Parallel.Pool.t ->
  ?specialize:bool ->
  is_end:(Gatesim.Trace.cycle -> bool) ->
  max_cycles_per_path:int ->
  max_paths:int ->
  Cpu.t ->
  Isa.Asm.image ->
  entry:int ->
  Gatesim.Trace.tree * Gatesim.Sym.stats

(** [run_concrete pa cpu image ~inputs] — a concrete (input-based)
    execution for profiling and validation; [inputs] are
    [(address, words)] pokes into RAM. Returns the cycle records and the
    observed per-cycle power trace. *)
val run_concrete :
  ?specialize:bool ->
  Poweran.t ->
  Cpu.t ->
  Isa.Asm.image ->
  inputs:(int * int list) list ->
  Gatesim.Trace.cycle array * float array

(** Cycles of interest of an analysis (Section 3.5). *)
val cois : ?top:int -> ?min_gap:int -> Poweran.t -> t -> Coi.t list
