(** Which bounding pipeline produces a result.

    - [Exact]: the paper's gate-level symbolic execution (Algorithm 1 +
      the Section 3.2/3.3 computations). Tight, but the execution tree
      must fit in memory and time.
    - [Static]: CFG extraction + per-basic-block gate-level
      characterization + an IPET-style longest-path combination. Looser
      (every block is entered from a conservative all-X state and loop
      iterations multiply the worst single iteration), but cost is
      linear in program size, so it handles programs whose execution
      trees the exact tier cannot hold.
    - [Auto]: resolve per call — static first, exact when feasible. A
      returned analysis never carries [Auto]; it reports the tier that
      actually produced the bound.

    Static bounds dominate exact bounds by construction ([static >=
    exact] on both peak power and peak energy); the cross-check suite
    asserts this over every paper benchmark. *)

type t = Exact | Static | Auto

(** ["exact"], ["static"], ["auto"] — the wire and CLI spellings;
    stable, never renamed. *)
val to_string : t -> string

val of_string : string -> t option
val pp : Format.formatter -> t -> unit
val all : t list
