(* Cycle-of-interest analysis (paper, Section 3.5 / Figure 3.6).

   Identifies the cycles where peak power spikes occur, the
   instruction(s) in flight — both the one executing and, on fetch
   cycles, the one being fetched, mirroring the paper's two-row
   pipeline display — and the per-module power breakdown used to pick
   which software optimization applies. *)

type t = {
  cycle_index : int;  (** position in the flattened trace *)
  power : float;
  state : int option;
  state_name : string;
  pc : int option;
  instr : Isa.Insn.instr option;  (** decoded from the IR word *)
  instr_text : string;  (** executing instruction *)
  fetching_text : string option;  (** on FETCH cycles: the incoming one *)
  breakdown : (string * float) list;  (** per module, W *)
}

let decode_ir (cy : Gatesim.Trace.cycle) =
  match Tri.Word.to_int cy.Gatesim.Trace.ir with
  | None -> None
  | Some w -> (
    try Some (Isa.Insn.decode w ~ext1:0 ~ext2:0 ~pc:0).Isa.Insn.instr
    with Isa.Insn.Decode_error _ -> None)

(* With the program image we can name instructions exactly: the line
   being executed is the one whose span (addr, addr + 2*words] contains
   the current PC (the PC advances past the opcode at FETCH and past
   each extension word as it is consumed). *)
let line_maps image =
  let lines = Isa.Listing.lines image in
  let by_addr = Hashtbl.create 64 in
  List.iter
    (fun (l : Isa.Listing.line) -> Hashtbl.replace by_addr l.Isa.Listing.addr l)
    lines;
  let executing pc =
    List.find_opt
      (fun (l : Isa.Listing.line) ->
        let len = 2 * List.length l.Isa.Listing.words in
        pc > l.Isa.Listing.addr && pc <= l.Isa.Listing.addr + len)
      lines
  in
  (by_addr, executing)

let of_cycle ?image pa ~flattened ~trace k =
  let cy = flattened.(k) in
  let state = Tri.Word.to_int cy.Gatesim.Trace.state in
  let pc = Tri.Word.to_int cy.Gatesim.Trace.pc in
  let instr = decode_ir cy in
  let default_text =
    match instr with Some i -> Isa.Insn.to_string i | None -> "?"
  in
  let instr_text, fetching_text =
    match image, pc with
    | Some image, Some pc_v ->
      let by_addr, executing = line_maps image in
      let exec_text =
        match executing pc_v with
        | Some l -> l.Isa.Listing.text
        | None -> default_text
      in
      let fetching =
        if state = Some Cpu.st_fetch then
          Option.map
            (fun (l : Isa.Listing.line) -> l.Isa.Listing.text)
            (Hashtbl.find_opt by_addr pc_v)
        else None
      in
      let exec_text =
        (* on a fetch cycle the IR still holds the previous instruction *)
        if state = Some Cpu.st_fetch then default_text else exec_text
      in
      (exec_text, fetching)
    | _ -> (default_text, None)
  in
  {
    cycle_index = k;
    power = trace.(k);
    state;
    state_name = (match state with Some s -> Cpu.state_name s | None -> "?");
    pc;
    instr;
    instr_text;
    fetching_text;
    breakdown = Poweran.module_breakdown pa ~mode:`Max cy;
  }

(* Top [n] spikes, separated by at least [min_gap] cycles so one broad
   peak is not reported n times. *)
let find ?image pa ~flattened ~trace ~top ~min_gap =
  let order =
    List.sort
      (fun a b -> Float.compare trace.(b) trace.(a))
      (List.init (Array.length trace) (fun k -> k))
  in
  let chosen = ref [] in
  let far_enough k = List.for_all (fun j -> abs (k - j) >= min_gap) !chosen in
  List.iter
    (fun k ->
      if List.length !chosen < top && far_enough k then chosen := k :: !chosen)
    order;
  List.rev_map (of_cycle ?image pa ~flattened ~trace) !chosen
  |> List.sort (fun a b -> compare a.cycle_index b.cycle_index)

(* Largest power contributors first — the modules the Section 5
   optimizations would target. *)
let top_modules ?(n = 3) c =
  List.filteri
    (fun i _ -> i < n)
    (List.sort (fun (_, a) (_, b) -> Float.compare b a) c.breakdown)

let pp fmt c =
  Format.fprintf fmt "COI %d: %.3f mW  %-9s pc=%s  exec: %s%s@." c.cycle_index
    (c.power *. 1e3) c.state_name
    (match c.pc with Some p -> Printf.sprintf "0x%04x" p | None -> "x")
    c.instr_text
    (match c.fetching_text with
    | Some f -> Printf.sprintf "  fetching: %s" f
    | None -> "");
  Format.fprintf fmt "    top: %s@."
    (String.concat ", "
       (List.map
          (fun (m, p) -> Printf.sprintf "%s %.4f mW" m (p *. 1e3))
          (top_modules c)));
  List.iter
    (fun (m, p) -> Format.fprintf fmt "    %-13s %8.4f mW@." m (p *. 1e3))
    c.breakdown
