(* The explicit even/odd double-VCD construction of Algorithm 2.

   Two VCD files are produced from a path's activity trace: one assigns
   the Xs of every even cycle (and its preceding boundary) so switching
   power is maximized in even cycles, the other does the same for odd
   cycles. Power analysis runs on each file, and the peak power trace
   interleaves even samples from the even file with odd samples from
   the odd file.

   [Peak_power] computes the same numbers directly; this module exists
   because the paper's pipeline is file-based, for the worked example of
   Figure 3.2, and as an ablation/validation target (the equivalence is
   asserted in the test suite). *)

type assigned = {
  values : Bytes.t array;  (** per cycle: trit code per net *)
  nets : int;
}

(* Replay a path (initial values + per-cycle deltas) into dense
   per-cycle value vectors. Index 0 is the pre-trace state. *)
let replay ~initial (cycles : Gatesim.Trace.cycle array) =
  let nets = Array.length initial in
  let mk src = Bytes.init nets (fun i -> Char.chr src.(i)) in
  let first = mk initial in
  let out = Array.make (Array.length cycles + 1) first in
  let cur = ref (Bytes.copy first) in
  Array.iteri
    (fun k cy ->
      let b = Bytes.copy !cur in
      Array.iter
        (fun d ->
          let net, _, nv = Gatesim.Trace.unpack d in
          Bytes.set b net (Char.chr nv))
        cy.Gatesim.Trace.deltas;
      out.(k + 1) <- b;
      cur := b)
    cycles;
  { values = out; nets }


(* Maximize the switching of cycles with parity [parity] (0 = even). The
   transition of cycle k lives between vectors k and k+1. *)
let maximize lib nl ~parity (a : assigned) (cycles : Gatesim.Trace.cycle array) =
  let v = Array.map Bytes.copy a.values in
  let flip c = if c = '\000' then '\001' else '\000' in
  Array.iteri
    (fun k cy ->
      if k mod 2 = parity then begin
        let prev = v.(k) and cur = v.(k + 1) in
        let assign_max net =
          let t1, t2 = Stdcell.max_transition lib nl net in
          Bytes.set prev net (Char.chr (Tri.to_int t1));
          Bytes.set cur net (Char.chr (Tri.to_int t2))
        in
        Array.iter
          (fun d ->
            let net, old_v, new_v = Gatesim.Trace.unpack d in
            if old_v = 2 && new_v = 2 then assign_max net
            else if new_v = 2 then Bytes.set cur net (flip (Bytes.get prev net))
            else if old_v = 2 then Bytes.set prev net (flip (Bytes.get cur net)))
          cy.Gatesim.Trace.deltas;
        Array.iter assign_max cy.Gatesim.Trace.x_active
      end)
    cycles;
  { a with values = v }

(* Render an assigned trace as a VCD document. *)
let to_vcd nl (a : assigned) =
  let names =
    Array.init a.nets (fun id ->
        Printf.sprintf "n%d_%s" id
          (Netlist.cell_name nl.Netlist.gates.(id).Netlist.cell))
  in
  let initial =
    Array.init a.nets (fun i -> Tri.of_int (Char.code (Bytes.get a.values.(0) i)))
  in
  let changes =
    Array.init
      (Array.length a.values - 1)
      (fun k ->
        let prev = a.values.(k) and cur = a.values.(k + 1) in
        let acc = ref [] in
        for i = a.nets - 1 downto 0 do
          if Bytes.get prev i <> Bytes.get cur i then
            acc := (i, Tri.of_int (Char.code (Bytes.get cur i))) :: !acc
        done;
        !acc)
  in
  Vcd.write_trace ~names ~initial ~changes

(* Per-cycle observed power of a VCD document: only concrete transitions
   burn energy (unassigned Xs are inactive gates). [n_cycles] is needed
   because change-free trailing cycles leave no trace in the file. *)
let power_from_vcd pa ~n_cycles text =
  let nl = Poweran.netlist pa in
  let nets = Netlist.gate_count nl in
  let doc = Vcd.parse text in
  let steps = Vcd.replay doc ~nets in
  let dense = Array.make (n_cycles + 1) [||] in
  let current = Array.make nets Tri.X in
  List.iter (fun (net, v) -> if net < nets then current.(net) <- v) doc.Vcd.initial;
  let remaining = ref steps in
  for t = 0 to n_cycles do
    (match !remaining with
    | (time, v) :: rest when time = t ->
      Array.blit v 0 current 0 nets;
      remaining := rest
    | _ -> ());
    dense.(t) <- Array.copy current
  done;
  Array.init n_cycles (fun k ->
      (* fabricate a cycle record containing just the concrete deltas *)
      let deltas = ref [] in
      for i = nets - 1 downto 0 do
        let o = dense.(k).(i) and n = dense.(k + 1).(i) in
        if not (Tri.equal o n) then
          deltas :=
            Gatesim.Trace.pack ~net:i ~old_v:(Tri.to_int o) ~new_v:(Tri.to_int n)
            :: !deltas
      done;
      let cy =
        {
          Gatesim.Trace.deltas = Array.of_list !deltas;
          x_active = [||];
          pc = Tri.Word.all_x ~width:16;
          state = Tri.Word.all_x ~width:16;
          ir = Tri.Word.all_x ~width:16;
        }
      in
      Poweran.cycle_power_observed pa cy)

let interleave ~even ~odd =
  Array.init (Array.length even) (fun k -> if k mod 2 = 0 then even.(k) else odd.(k))

(* The full pipeline for one path. The two maximizations read the shared
   [replayed] vectors but mutate only their own copies, so the even and
   odd legs run as concurrent futures; interleaving picks fixed indices
   from each, keeping the result independent of the schedule. *)
let peak_power_via_vcd ?cache pa lib ~initial cycles =
  let compute () =
    Telemetry.span "evenodd-vcd" @@ fun () ->
    let nl = Poweran.netlist pa in
    let replayed = replay ~initial cycles in
    let n_cycles = Array.length cycles in
    let leg parity =
      let doc = to_vcd nl (maximize lib nl ~parity replayed cycles) in
      (power_from_vcd pa ~n_cycles doc, doc)
    in
    let (even, even_doc), (odd, odd_doc) =
      Parallel.both_auto (fun () -> leg 0) (fun () -> leg 1)
    in
    let trace = interleave ~even ~odd in
    (trace, even_doc, odd_doc)
  in
  match cache with
  | None -> compute ()
  | Some c ->
    (* [lib] holds a closure — key on its signature, not the value *)
    let key = Cache.Key.of_value (initial, cycles, Stdcell.signature lib, pa) in
    Cache.memo c ~ns:"evenodd-vcd" ~key compute
