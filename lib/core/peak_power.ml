(* Input-independent peak power (paper, Section 3.2 / Algorithm 2).

   The execution tree is flattened and every cycle's remaining Xs are
   resolved in the direction that maximizes that cycle's switching
   power; the bound is the highest per-cycle value. The per-cycle
   maximization here is the closed form of the even/odd double-VCD
   construction — [Evenodd] implements the explicit file-based pipeline
   and the test suite checks that both agree cycle by cycle. *)

type result = {
  flattened : Gatesim.Trace.cycle array;
  trace : float array;  (** per-cycle peak power bound, W *)
  peak : float;
  peak_index : int;
}

let of_cycles pa cycles =
  let trace = Poweran.trace_power pa ~mode:`Max cycles in
  let peak, peak_index = Poweran.peak_of trace in
  { flattened = cycles; trace; peak; peak_index }

let of_tree ?cache pa tree =
  let compute () =
    let cycles =
      Telemetry.span "flatten" (fun () -> Gatesim.Trace.flatten tree)
    in
    Telemetry.span "power-trace" (fun () -> of_cycles pa cycles)
  in
  match cache with
  | None -> compute ()
  | Some (c, key) -> Cache.memo c ~ns:"peak-power" ~key compute
