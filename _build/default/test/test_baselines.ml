(* Baseline-technique tests: guardbanded profiling, the GA stressmark,
   and design-tool rating, plus the orderings the paper's comparison
   depends on. *)

let cpu = Tsupport.the_cpu ()
let pa = lazy (Core.Analyze.poweran_for cpu)

let small_bench = Benchprogs.Bench.find "intAVG"

let test_profiling_guardband () =
  let p = Baselines.Profiling.run ~seeds:[ 1; 2; 3 ] (Lazy.force pa) cpu small_bench in
  Alcotest.(check int) "three peaks" 3 (List.length p.Baselines.Profiling.peaks);
  Alcotest.(check bool) "max >= min" true
    (p.Baselines.Profiling.max_peak >= p.Baselines.Profiling.min_peak);
  let expect = p.Baselines.Profiling.max_peak *. (4. /. 3.) in
  Alcotest.(check bool) "guardband is 4/3 of max" true
    (Float.abs (p.Baselines.Profiling.gb_peak -. expect) < 1e-12);
  Alcotest.(check bool) "npe guardband" true
    (Float.abs
       (p.Baselines.Profiling.gb_npe
       -. (p.Baselines.Profiling.max_npe *. (4. /. 3.)))
    < 1e-18)

let test_profiling_deterministic () =
  let p1 = Baselines.Profiling.run ~seeds:[ 5 ] (Lazy.force pa) cpu small_bench in
  let p2 = Baselines.Profiling.run ~seeds:[ 5 ] (Lazy.force pa) cpu small_bench in
  Alcotest.(check (list (float 1e-15))) "same peaks"
    p1.Baselines.Profiling.peaks p2.Baselines.Profiling.peaks

let test_input_variation_visible () =
  (* adversarial seeds must produce a visible peak-power spread on a
     data-driven benchmark (the Chapter 2 motivation) *)
  let b = Benchprogs.Bench.find "mult" in
  let p = Baselines.Profiling.run ~seeds:[ 1; 2; 3; 8 ] (Lazy.force pa) cpu b in
  let spread =
    (p.Baselines.Profiling.max_peak -. p.Baselines.Profiling.min_peak)
    /. p.Baselines.Profiling.max_peak
  in
  Alcotest.(check bool)
    (Printf.sprintf "input-induced spread %.1f%% is over 2%%" (spread *. 100.))
    true (spread > 0.02)

let tiny_ga =
  {
    Baselines.Stressmark.default_config with
    Baselines.Stressmark.genome_len = 10;
    population = 6;
    generations = 2;
    repeats = 1;
  }

let test_stressmark_runs_and_is_deterministic () =
  let s1 =
    Baselines.Stressmark.run ~config:tiny_ga ~fitness:Baselines.Stressmark.Peak
      (Lazy.force pa) cpu
  in
  let s2 =
    Baselines.Stressmark.run ~config:tiny_ga ~fitness:Baselines.Stressmark.Peak
      (Lazy.force pa) cpu
  in
  Alcotest.(check (float 1e-12)) "deterministic"
    s1.Baselines.Stressmark.best_fitness s2.Baselines.Stressmark.best_fitness;
  Alcotest.(check int) "evaluations counted"
    (6 * 3) (* initial population + 2 generations *)
    s1.Baselines.Stressmark.evaluations;
  Alcotest.(check bool) "peak above base" true
    (s1.Baselines.Stressmark.peak_power > Poweran.base_power (Lazy.force pa))

let test_stressmark_improves_over_generations () =
  let short =
    Baselines.Stressmark.run
      ~config:{ tiny_ga with Baselines.Stressmark.generations = 0 }
      ~fitness:Baselines.Stressmark.Peak (Lazy.force pa) cpu
  in
  let long =
    Baselines.Stressmark.run
      ~config:{ tiny_ga with Baselines.Stressmark.generations = 4 }
      ~fitness:Baselines.Stressmark.Peak (Lazy.force pa) cpu
  in
  Alcotest.(check bool) "GA does not regress" true
    (long.Baselines.Stressmark.best_fitness
    >= short.Baselines.Stressmark.best_fitness -. 1e-12)

let test_stressmark_avg_fitness () =
  let s =
    Baselines.Stressmark.run ~config:tiny_ga ~fitness:Baselines.Stressmark.Average
      (Lazy.force pa) cpu
  in
  Alcotest.(check bool) "avg <= peak" true
    (s.Baselines.Stressmark.avg_power <= s.Baselines.Stressmark.peak_power)

let test_design_tool_monotonic () =
  let p = Lazy.force pa in
  let d1 = Poweran.design_tool_power p ~activity:0.1 in
  let d2 = Poweran.design_tool_power p ~activity:0.3 in
  Alcotest.(check bool) "monotonic in activity" true (d2 > d1);
  Alcotest.(check bool) "activity 0 = base" true
    (Float.abs (Poweran.design_tool_power p ~activity:0. -. Poweran.base_power p)
    < 1e-15)

let test_orderings () =
  (* the orderings the paper's figures depend on, for one benchmark *)
  let b = Benchprogs.Bench.find "tea8" in
  let p = Baselines.Profiling.run ~seeds:[ 2; 8 ] (Lazy.force pa) cpu b in
  let img = Benchprogs.Bench.assemble b in
  let a = Core.Analyze.run (Lazy.force pa) cpu img in
  let x = a.Core.Analyze.peak_power in
  Alcotest.(check bool) "input max <= X" true (p.Baselines.Profiling.max_peak <= x);
  Alcotest.(check bool) "X <= GB input" true (x <= p.Baselines.Profiling.gb_peak);
  let design =
    Poweran.design_tool_power (Lazy.force pa)
      ~activity:Poweran.default_design_activity
  in
  Alcotest.(check bool) "X <= design rating" true (x <= design)

let () =
  Alcotest.run "baselines"
    [
      ( "profiling",
        [
          Alcotest.test_case "guardband" `Quick test_profiling_guardband;
          Alcotest.test_case "deterministic" `Quick test_profiling_deterministic;
          Alcotest.test_case "input variation" `Quick test_input_variation_visible;
        ] );
      ( "stressmark",
        [
          Alcotest.test_case "runs deterministically" `Quick
            test_stressmark_runs_and_is_deterministic;
          Alcotest.test_case "no regression" `Quick
            test_stressmark_improves_over_generations;
          Alcotest.test_case "average fitness" `Quick test_stressmark_avg_fitness;
        ] );
      ( "design-tool",
        [
          Alcotest.test_case "monotonic" `Quick test_design_tool_monotonic;
          Alcotest.test_case "orderings" `Quick test_orderings;
        ] );
    ]
