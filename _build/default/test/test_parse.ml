(* Text-assembler tests: instruction syntax, whole-program parsing,
   error reporting, and agreement with the EDSL path (same image, same
   ISS results). *)

open Isa

let check_instr text expect =
  Alcotest.(check string) text (Insn.to_string expect) (Insn.to_string (Parse.instr text))

let test_format1 () =
  check_instr "mov #0x1234, r4"
    (Insn.I1 (Insn.MOV, Insn.S_imm (Insn.Lit 0x1234), Insn.D_reg 4));
  check_instr "add r5, r6" (Insn.I1 (Insn.ADD, Insn.S_reg 5, Insn.D_reg 6));
  check_instr "cmp &0x0120, r7"
    (Insn.I1 (Insn.CMP, Insn.S_abs (Insn.Lit 0x120), Insn.D_reg 7));
  check_instr "mov @r4+, r5" (Insn.I1 (Insn.MOV, Insn.S_ind_inc 4, Insn.D_reg 5));
  check_instr "mov @r4, r5" (Insn.I1 (Insn.MOV, Insn.S_ind 4, Insn.D_reg 5));
  check_instr "mov 6(r4), r5"
    (Insn.I1 (Insn.MOV, Insn.S_idx (Insn.Lit 6, 4), Insn.D_reg 5));
  check_instr "mov r5, 8(r4)"
    (Insn.I1 (Insn.MOV, Insn.S_reg 5, Insn.D_idx (Insn.Lit 8, 4)));
  check_instr "xor.w #-1, r9"
    (Insn.I1 (Insn.XOR, Insn.S_imm (Insn.Lit (-1)), Insn.D_reg 9));
  check_instr "mov #label, sp"
    (Insn.I1 (Insn.MOV, Insn.S_imm (Insn.Sym "label"), Insn.D_reg 1))

let test_format2_jumps_emulated () =
  check_instr "rra r4" (Insn.I2 (Insn.RRA, Insn.S_reg 4));
  check_instr "push #8" (Insn.I2 (Insn.PUSH, Insn.S_imm (Insn.Lit 8)));
  check_instr "call #fn" (Insn.I2 (Insn.CALL, Insn.S_imm (Insn.Sym "fn")));
  check_instr "jne loop" (Insn.J (Insn.JNE, Insn.Sym "loop"));
  check_instr "jz done" (Insn.J (Insn.JEQ, Insn.Sym "done"));
  check_instr "nop" Insn.nop;
  check_instr "ret" Insn.ret;
  check_instr "pop r7" (Insn.pop 7);
  check_instr "clr r4" (Insn.clr 4);
  check_instr "tst r4" (Insn.tst 4);
  check_instr "clrc" (Insn.I1 (Insn.BIC, Insn.S_imm (Insn.Lit 1), Insn.D_reg 2));
  check_instr "reti" Insn.RETI

let expect_error text =
  match Parse.instr text with
  | exception Parse.Syntax_error _ -> ()
  | i -> Alcotest.failf "expected syntax error for %S, got %s" text (Insn.to_string i)

let test_errors () =
  expect_error "mov.b #1, r4";
  expect_error "frob r4";
  expect_error "mov #1";
  expect_error "mov #1, #2";
  expect_error "mov r16, r4";
  expect_error "jmp";
  expect_error "mov 4(r4, r5"

let sample_source =
  {|
; sample program: conditional increment
        .org 0xE000
start:
        mov   #0x05f0, sp
        mov   #0x5A80, &0x0120
        nop
        mov   &0x0300, r4      ; the input
        cmp   #5, r4
        jeq   equal
        mov   #1, r5
        jmp   done
equal:  mov   #2, r5
done:   mov   r5, &0x0400
|}

let test_program_parse_and_run () =
  let p = Parse.program ~name:"sample" sample_source in
  let img = Asm.assemble p in
  Alcotest.(check int) "entry at org" 0xE000 img.Asm.entry_addr;
  (* _halt was appended automatically *)
  Alcotest.(check bool) "halt exists" true (Asm.lookup img "_halt" > 0);
  let run input =
    let t = Iss.create img in
    Iss.write_word t 0x0300 input;
    Iss.run t;
    Iss.read_word t 0x0400
  in
  Alcotest.(check int) "taken" 2 (run 5);
  Alcotest.(check int) "not taken" 1 (run 99)

let test_program_matches_edsl () =
  (* the same kernel written in text and via the EDSL must assemble to
     the same image *)
  let open Benchprogs.Bench.E in
  let edsl =
    [
      mov (imm 0x1234) (dreg 4);
      add (reg 4) (dreg 5);
      i (Insn.J (Insn.JMP, Insn.Sym "_halt"));
    ]
  in
  let p_edsl =
    {
      Asm.name = "x";
      entry = "start";
      sections =
        [
          {
            Asm.org = Memmap.rom_base;
            items = (Asm.Label "start" :: edsl) @ Asm.halt_items;
          };
        ];
    }
  in
  let text = {|
start:
    mov #0x1234, r4
    add r4, r5
    jmp _halt
|} in
  let p_text = Parse.program ~name:"x" text in
  let w_of p = (Asm.assemble p).Asm.words in
  Alcotest.(check (list (pair int int))) "same image" (w_of p_edsl) (w_of p_text)

let test_word_directive_and_sections () =
  let text = {|
start:
    mov &table, r4
    jmp _halt
table:
    .word 0x1111, 0x2222, start
    .org 0xF000
more:
    .word more
|} in
  let img = Asm.assemble (Parse.program ~name:"w" text) in
  let at a = List.assoc a img.Asm.words in
  let table = Asm.lookup img "table" in
  Alcotest.(check int) "word 1" 0x1111 (at table);
  Alcotest.(check int) "word 2" 0x2222 (at (table + 2));
  Alcotest.(check int) "symbol word" img.Asm.entry_addr (at (table + 4));
  Alcotest.(check int) "second section" 0xF000 (Asm.lookup img "more");
  Alcotest.(check int) "self reference" 0xF000 (at 0xF000)

let test_line_numbers_in_errors () =
  let text = "start:\n  nop\n  frob r4\n" in
  match Parse.program ~name:"e" text with
  | exception Parse.Syntax_error (3, _) -> ()
  | exception Parse.Syntax_error (n, m) ->
    Alcotest.failf "wrong line %d (%s)" n m
  | _ -> Alcotest.fail "expected error"

(* property: pretty-printed instructions reparse to themselves *)
let qgen_reg = QCheck2.Gen.int_range 4 12

let qgen_printable_instr =
  QCheck2.Gen.(
    oneof
      [
        map3
          (fun op s d -> Insn.I1 (op, s, d))
          (oneofl Insn.[ MOV; ADD; SUB; CMP; XOR; AND; BIS; BIC ])
          (oneof
             [
               map (fun r -> Insn.S_reg r) qgen_reg;
               map (fun v -> Insn.S_imm (Insn.Lit v)) (int_range 0 0xFFFF);
               map2 (fun v r -> Insn.S_idx (Insn.Lit v, r)) (int_range 0 0xFF) qgen_reg;
               map (fun r -> Insn.S_ind r) qgen_reg;
               map (fun v -> Insn.S_abs (Insn.Lit v)) (int_range 0 0xFFFF);
             ])
          (oneof
             [
               map (fun r -> Insn.D_reg r) qgen_reg;
               map2 (fun v r -> Insn.D_idx (Insn.Lit v, r)) (int_range 0 0xFF) qgen_reg;
               map (fun v -> Insn.D_abs (Insn.Lit v)) (int_range 0 0xFFFF);
             ]);
        map2
          (fun op r -> Insn.I2 (op, Insn.S_reg r))
          (oneofl Insn.[ RRC; SWPB; RRA; SXT; PUSH ])
          qgen_reg;
      ])

let print_parse_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"to_string |> parse = id"
    qgen_printable_instr (fun i ->
      Parse.instr (Insn.to_string i) = i)

let () =
  Alcotest.run "parse"
    [
      ( "instructions",
        [
          Alcotest.test_case "format I" `Quick test_format1;
          Alcotest.test_case "format II / jumps / emulated" `Quick
            test_format2_jumps_emulated;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "programs",
        [
          Alcotest.test_case "parse and run" `Quick test_program_parse_and_run;
          Alcotest.test_case "matches EDSL" `Quick test_program_matches_edsl;
          Alcotest.test_case "words and sections" `Quick
            test_word_directive_and_sections;
          Alcotest.test_case "error line numbers" `Quick
            test_line_numbers_in_errors;
        ] );
      ("roundtrip", [ QCheck_alcotest.to_alcotest print_parse_roundtrip ]);
    ]
