(* The central soundness property, tested on random netlists rather
   than just the CPU: for any circuit, any X-driven symbolic evaluation
   refines every concrete evaluation obtained by concretizing the X
   inputs — per gate, per cycle. This exercises the levelized
   evaluator, Dff/Dffe latching and X-merge semantics independently of
   the processor. *)

type rcell =
  | RInv of int
  | RAnd of int * int
  | ROr of int * int
  | RXor of int * int
  | RMux of int * int * int
  | RDff of int  (* d, connected later *)
  | RDffe of int * int

(* A random netlist description: [n_in] primary inputs then cells whose
   fanins point at any earlier node (flops may point anywhere). *)
type rnet = { n_in : int; cells : rcell array }

let gen_rnet =
  QCheck2.Gen.(
    let* n_in = int_range 1 5 in
    let* n_cells = int_range 3 40 in
    let* cells =
      let cell_at idx =
        let earlier = int_range 0 (n_in + idx - 1) in
        let anywhere = int_range 0 (n_in + n_cells - 1) in
        oneof
          [
            map (fun a -> RInv a) earlier;
            map2 (fun a b -> RAnd (a, b)) earlier earlier;
            map2 (fun a b -> ROr (a, b)) earlier earlier;
            map2 (fun a b -> RXor (a, b)) earlier earlier;
            map3 (fun s a b -> RMux (s, a, b)) earlier earlier earlier;
            map (fun d -> RDff d) anywhere;
            map2 (fun en d -> RDffe (en, d)) earlier anywhere;
          ]
      in
      (* build sequentially so "earlier" grows *)
      let rec go idx acc =
        if idx = n_cells then return (Array.of_list (List.rev acc))
        else
          let* c = cell_at idx in
          go (idx + 1) (c :: acc)
      in
      go 0 []
    in
    return { n_in; cells })

(* Three-valued reference evaluation of the random netlist, entirely
   independent of the Gatesim engine: full re-evaluation each cycle. *)
let eval_reference (r : rnet) ~(inputs : int array array) ~cycles =
  let n = r.n_in + Array.length r.cells in
  let state = Array.make n Tri.I.x in
  let out = Array.make cycles [||] in
  for c = 0 to cycles - 1 do
    (* drive inputs *)
    for k = 0 to r.n_in - 1 do
      state.(k) <- inputs.(c).(k)
    done;
    (* settle combinational in definition order (acyclic by construction) *)
    let next_flops = ref [] in
    Array.iteri
      (fun i cell ->
        let id = r.n_in + i in
        match cell with
        | RInv a -> state.(id) <- Tri.I.lnot state.(a)
        | RAnd (a, b) -> state.(id) <- Tri.I.land_ state.(a) state.(b)
        | ROr (a, b) -> state.(id) <- Tri.I.lor_ state.(a) state.(b)
        | RXor (a, b) -> state.(id) <- Tri.I.lxor_ state.(a) state.(b)
        | RMux (s, a, b) -> state.(id) <- Tri.I.mux state.(s) state.(a) state.(b)
        | RDff _ | RDffe _ -> ())
      r.cells;
    out.(c) <- Array.copy state;
    (* latch flops from the settled values *)
    Array.iteri
      (fun i cell ->
        let id = r.n_in + i in
        match cell with
        | RDff d -> next_flops := (id, state.(d)) :: !next_flops
        | RDffe (en, d) ->
          let nv =
            if state.(en) = 0 then state.(id)
            else if state.(en) = 1 then state.(d)
            else if state.(d) = state.(id) then state.(id)
            else Tri.I.x
          in
          next_flops := (id, nv) :: !next_flops
        | _ -> ())
      r.cells;
    List.iter (fun (id, v) -> state.(id) <- v) !next_flops
  done;
  out

(* Build the same circuit through Netlist.Builder and run it on the
   Engine; flop feedback is resolved with the two-phase builder API. *)
let build_engine (r : rnet) =
  let b = Netlist.Builder.create () in
  let ids = Array.make (r.n_in + Array.length r.cells) (-1) in
  for k = 0 to r.n_in - 1 do
    ids.(k) <- Netlist.Builder.add_input b
  done;
  (* first pass: create flops so forward references resolve *)
  Array.iteri
    (fun i cell ->
      match cell with
      | RDff _ -> ids.(r.n_in + i) <- Netlist.Builder.add_dff b
      | RDffe _ -> ids.(r.n_in + i) <- Netlist.Builder.add_dffe b
      | _ -> ())
    r.cells;
  Array.iteri
    (fun i cell ->
      let mk cell fanins = Netlist.Builder.add_gate b cell fanins in
      match cell with
      | RInv a -> ids.(r.n_in + i) <- mk Netlist.Inv [| ids.(a) |]
      | RAnd (a, c) -> ids.(r.n_in + i) <- mk Netlist.And2 [| ids.(a); ids.(c) |]
      | ROr (a, c) -> ids.(r.n_in + i) <- mk Netlist.Or2 [| ids.(a); ids.(c) |]
      | RXor (a, c) -> ids.(r.n_in + i) <- mk Netlist.Xor2 [| ids.(a); ids.(c) |]
      | RMux (s, a, c) ->
        ids.(r.n_in + i) <- mk Netlist.Mux2 [| ids.(s); ids.(a); ids.(c) |]
      | RDff _ | RDffe _ -> ())
    r.cells;
  Array.iteri
    (fun i cell ->
      match cell with
      | RDff d -> Netlist.Builder.set_dff_input b ids.(r.n_in + i) ids.(d)
      | RDffe (en, d) ->
        Netlist.Builder.set_dffe_inputs b ids.(r.n_in + i) ~en:ids.(en) ~d:ids.(d)
      | _ -> ())
    r.cells;
  let const0 = Netlist.Builder.add_const b Tri.Zero in
  let nl = Netlist.Builder.freeze b in
  (nl, ids, const0)

(* Drive the circuit's inputs through the engine's port_in machinery
   (the memory interface is tied off to a constant-0 strobe). *)
let run_engine (r : rnet) ~(inputs : int array array) ~cycles =
  let nl, ids, const0 = build_engine r in
  let in_nets = Array.sub ids 0 r.n_in in
  let ports =
    {
      Gatesim.Engine.reset = const0;
      port_in = in_nets;
      mem_addr = Array.make 16 const0;
      mem_rdata = [||];
      mem_wdata = Array.make 16 const0;
      mem_ren = const0;
      mem_wen = const0;
      pc = [| const0 |];
      state = [| const0 |];
      ir = [| const0 |];
      fork_net = None;
    }
  in
  let mem =
    Gatesim.Mem.create ~rom:[ (0xFFFE, 0xE000) ] ~ram_base:0x200 ~ram_bytes:64
  in
  let e = Gatesim.Engine.create nl ~ports ~mem in
  let out = Array.make cycles [||] in
  for c = 0 to cycles - 1 do
    Gatesim.Engine.set_port_in e (Array.map Tri.of_int inputs.(c));
    ignore (Gatesim.Engine.begin_cycle e);
    let snapshot =
      Array.init (r.n_in + Array.length r.cells) (fun k ->
          Tri.to_int (Gatesim.Engine.value e ids.(k)))
    in
    ignore (Gatesim.Engine.finish_cycle e);
    out.(c) <- snapshot
  done;
  out

let refines sym conc =
  sym = Tri.I.x || sym = conc

let gen_case =
  QCheck2.Gen.(
    let* r = gen_rnet in
    let* cycles = int_range 2 8 in
    (* symbolic input stream: trits; concrete stream: a concretization *)
    let* sym_inputs =
      array_size (return cycles)
        (array_size (return r.n_in) (int_range 0 2))
    in
    let* fills =
      array_size (return cycles) (array_size (return r.n_in) (int_range 0 1))
    in
    let conc_inputs =
      Array.mapi
        (fun c row ->
          Array.mapi (fun k v -> if v = Tri.I.x then fills.(c).(k) else v) row)
        sym_inputs
    in
    return (r, cycles, sym_inputs, conc_inputs))

let reference_refinement =
  QCheck2.Test.make ~count:300 ~name:"3-valued reference refines concrete"
    gen_case (fun (r, cycles, sym_inputs, conc_inputs) ->
      let sym = eval_reference r ~inputs:sym_inputs ~cycles in
      let conc = eval_reference r ~inputs:conc_inputs ~cycles in
      let ok = ref true in
      for c = 0 to cycles - 1 do
        Array.iteri
          (fun k s -> if not (refines s conc.(c).(k)) then ok := false)
          sym.(c)
      done;
      !ok)

let engine_matches_reference =
  QCheck2.Test.make ~count:300 ~name:"engine = reference evaluator"
    QCheck2.Gen.(
      let* r = gen_rnet in
      let* cycles = int_range 2 8 in
      let* inputs =
        array_size (return cycles)
          (array_size (return r.n_in) (int_range 0 2))
      in
      return (r, cycles, inputs))
    (fun (r, cycles, inputs) ->
      let ref_out = eval_reference r ~inputs ~cycles in
      let eng_out = run_engine r ~inputs ~cycles in
      let ok = ref true in
      for c = 0 to cycles - 1 do
        Array.iteri
          (fun k v -> if v <> ref_out.(c).(k) then ok := false)
          eng_out.(c)
      done;
      !ok)

let () =
  Alcotest.run "refinement"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest reference_refinement;
          QCheck_alcotest.to_alcotest engine_matches_reference;
        ] );
    ]
