(* Symbolic simulation (Algorithm 1) tests on the real CPU netlist:
   fork exploration, input-dependent loop termination via state dedup,
   and the central validation property — gates toggled by any concrete
   execution are a subset of the gates marked active by X-based
   analysis. Also functional checks of RTL combinators via simulation. *)

open Isa

let i x = Asm.I x
let mov_imm n r = i (Insn.I1 (Insn.MOV, Insn.S_imm (Insn.Lit n), Insn.D_reg r))
let input_addr = Memmap.ram_base + 0x80

(* a program whose control flow depends on an uninitialized (X) RAM word *)
let branch_program =
  Tsupport.prologue
  @ [
      i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit input_addr), Insn.D_reg 4));
      i (Insn.I1 (Insn.CMP, Insn.S_imm (Insn.Lit 5), Insn.D_reg 4));
      i (Insn.J (Insn.JEQ, Insn.Sym "equal"));
      mov_imm 1 5;
      i (Insn.J (Insn.JMP, Insn.Sym "_halt"));
      Asm.Label "equal";
      mov_imm 2 5;
    ]

let sym_run ?(revisit = 0) body =
  let img = Tsupport.assemble_body body in
  let e = Tsupport.fresh_engine ~concrete:false img in
  let cfg =
    {
      (Gatesim.Sym.default_config
         ~is_end:(Cpu.is_end_cycle ~halt_addr:img.Asm.halt_addr))
      with
      Gatesim.Sym.revisit_limit = revisit;
    }
  in
  Gatesim.Sym.run e cfg

let concrete_run body ~input =
  let img = Tsupport.assemble_body body in
  let e = Tsupport.fresh_engine ~concrete:true img in
  (match input with
  | Some v -> Gatesim.Mem.poke (Gatesim.Engine.mem e) input_addr v
  | None -> ());
  Gatesim.Sym.run_concrete e
    ~is_end:(Cpu.is_end_cycle ~halt_addr:img.Asm.halt_addr)
    ~max_cycles:20_000

let test_fork_two_paths () =
  let tree, stats = sym_run branch_program in
  Alcotest.(check int) "two paths" 2 stats.Gatesim.Sym.paths;
  Alcotest.(check int) "one fork" 1 stats.Gatesim.Sym.forks;
  Alcotest.(check int) "tree path count" 2 (Gatesim.Trace.count_paths tree)

let test_straightline_no_fork () =
  let tree, stats = sym_run (Tsupport.prologue @ [ mov_imm 42 4 ]) in
  Alcotest.(check int) "one path" 1 stats.Gatesim.Sym.paths;
  Alcotest.(check int) "no forks" 0 stats.Gatesim.Sym.forks;
  Alcotest.(check bool) "has cycles" true (Gatesim.Trace.count_cycles tree > 5)

let test_input_dependent_loop_terminates () =
  (* poll an X flag: without state dedup this would never terminate *)
  let body =
    Tsupport.prologue
    @ [
        Asm.Label "poll";
        i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit input_addr), Insn.D_reg 4));
        i (Insn.I1 (Insn.AND, Insn.S_imm (Insn.Lit 1), Insn.D_reg 4));
        i (Insn.J (Insn.JNE, Insn.Sym "poll"));
      ]
  in
  let _tree, stats = sym_run body in
  Alcotest.(check bool) "dedup happened" true (stats.Gatesim.Sym.dedup_hits >= 1);
  Alcotest.(check bool) "bounded paths" true (stats.Gatesim.Sym.paths <= 4)

let test_data_dependent_no_fork () =
  (* X data flowing through arithmetic, but control flow concrete *)
  let body =
    Tsupport.prologue
    @ [
        i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit input_addr), Insn.D_reg 4));
        i (Insn.I1 (Insn.ADD, Insn.S_reg 4, Insn.D_reg 4));
        i (Insn.I1 (Insn.XOR, Insn.S_imm (Insn.Lit 0xFFFF), Insn.D_reg 4));
        i (Insn.I1 (Insn.MOV, Insn.S_reg 4, Insn.D_abs (Insn.Lit (input_addr + 2))));
      ]
  in
  let _tree, stats = sym_run body in
  Alcotest.(check int) "single path" 1 stats.Gatesim.Sym.paths

let active_nets_of_tree tree =
  let set = Hashtbl.create 4096 in
  Gatesim.Trace.iter_segments tree (fun seg ->
      Array.iter
        (fun cy ->
          Array.iter
            (fun d ->
              let net, _, _ = Gatesim.Trace.unpack d in
              Hashtbl.replace set net ())
            cy.Gatesim.Trace.deltas;
          Array.iter (fun n -> Hashtbl.replace set n ()) cy.Gatesim.Trace.x_active)
        seg);
  set

let toggled_nets_of_run cycles =
  let set = Hashtbl.create 4096 in
  Array.iter
    (fun cy ->
      Array.iter
        (fun d ->
          let net, _, _ = Gatesim.Trace.unpack d in
          Hashtbl.replace set net ())
        cy.Gatesim.Trace.deltas)
    cycles;
  set

(* Paper Section 3.4 / Figure 3.4: input-based toggles are a subset of
   X-based potentially-toggled gates. *)
let test_superset_validation () =
  let tree, _ = sym_run branch_program in
  let sym_active = active_nets_of_tree tree in
  List.iter
    (fun input ->
      let cycles, _ = concrete_run branch_program ~input:(Some input) in
      let conc = toggled_nets_of_run cycles in
      let missing = ref [] in
      Hashtbl.iter
        (fun net () ->
          if not (Hashtbl.mem sym_active net) then missing := net :: !missing)
        conc;
      Alcotest.(check (list int))
        (Printf.sprintf "no concrete-only toggles (input=%d)" input)
        [] !missing)
    [ 5; 7; 0; 0xFFFF ]

let test_concrete_matches_iss_flow () =
  (* end-to-end: the flattened concrete trace ends at the halt fetch *)
  let cycles, _ = concrete_run branch_program ~input:(Some 5) in
  let last = cycles.(Array.length cycles - 1) in
  Alcotest.(check bool) "last cycle is halt fetch" true
    (Cpu.is_end_cycle
       ~halt_addr:
         (Tsupport.assemble_body branch_program).Asm.halt_addr
       last)

let test_determinism () =
  let t1, s1 = sym_run branch_program in
  let t2, s2 = sym_run branch_program in
  Alcotest.(check int) "same cycles" (Gatesim.Trace.count_cycles t1)
    (Gatesim.Trace.count_cycles t2);
  Alcotest.(check int) "same paths" s1.Gatesim.Sym.paths s2.Gatesim.Sym.paths;
  let f1 = Gatesim.Trace.flatten t1 and f2 = Gatesim.Trace.flatten t2 in
  Alcotest.(check int) "same flattened length" (Array.length f1) (Array.length f2);
  Array.iteri
    (fun k c1 ->
      let c2 = f2.(k) in
      Alcotest.(check int)
        (Printf.sprintf "same deltas at %d" k)
        (Array.length c1.Gatesim.Trace.deltas)
        (Array.length c2.Gatesim.Trace.deltas))
    f1

(* ---- RTL combinator functional tests (simulated) ---- *)

let eval_comb build n_inputs f_expected =
  (* build: ctx -> input bus -> output bus; checked against f_expected by
     direct topological evaluation *)
  let ctx = Rtl.create () in
  let ins = Rtl.input_bus ctx n_inputs in
  let out = build ctx ins in
  Rtl.name_bus ctx "out" out;
  let nl = Rtl.freeze ctx in
  let eval inputs_value =
    let values = Array.make (Netlist.gate_count nl) Tri.I.x in
    Array.iter
      (fun (g : Netlist.gate) ->
        match g.Netlist.cell with
        | Netlist.Const t -> values.(g.Netlist.id) <- Tri.to_int t
        | _ -> ())
      nl.Netlist.gates;
    Array.iteri
      (fun k id -> values.(id) <- (inputs_value lsr k) land 1)
      nl.Netlist.inputs;
    Array.iter
      (fun id ->
        let g = nl.Netlist.gates.(id) in
        let v j = values.(g.Netlist.fanins.(j)) in
        values.(id) <-
          (match g.Netlist.cell with
          | Netlist.Buf -> v 0
          | Netlist.Inv -> Tri.I.lnot (v 0)
          | Netlist.And2 -> Tri.I.land_ (v 0) (v 1)
          | Netlist.Or2 -> Tri.I.lor_ (v 0) (v 1)
          | Netlist.Nand2 -> Tri.I.lnand (v 0) (v 1)
          | Netlist.Nor2 -> Tri.I.lnor (v 0) (v 1)
          | Netlist.Xor2 -> Tri.I.lxor_ (v 0) (v 1)
          | Netlist.Xnor2 -> Tri.I.lxnor (v 0) (v 1)
          | Netlist.Mux2 -> Tri.I.mux (v 0) (v 1) (v 2)
          | Netlist.Input | Netlist.Const _ | Netlist.Dff | Netlist.Dffe ->
            values.(id)))
      nl.Netlist.topo;
    let result = ref 0 in
    Array.iteri
      (fun k net ->
        if values.(net) = 1 then result := !result lor (1 lsl k))
      (Array.init (Array.length out) (fun k ->
           Netlist.find_net nl (Printf.sprintf "out[%d]" k)));
    !result
  in
  for trial = 0 to 199 do
    let inputs_value = (trial * 2654435761) land ((1 lsl n_inputs) - 1) in
    let got = eval inputs_value in
    let want = f_expected inputs_value in
    if got <> want then
      Alcotest.failf "combinator mismatch: inputs=%x got=%x want=%x"
        inputs_value got want
  done

let test_rtl_adder () =
  eval_comb
    (fun ctx ins ->
      let a = Array.sub ins 0 8 and b = Array.sub ins 8 8 in
      Rtl.add ctx a b)
    16
    (fun v ->
      let a = v land 0xFF and b = (v lsr 8) land 0xFF in
      (a + b) land 0xFF)

let test_rtl_sub () =
  eval_comb
    (fun ctx ins ->
      let a = Array.sub ins 0 8 and b = Array.sub ins 8 8 in
      Rtl.sub ctx a b)
    16
    (fun v ->
      let a = v land 0xFF and b = (v lsr 8) land 0xFF in
      (a - b) land 0xFF)

let test_rtl_mul_unsigned () =
  eval_comb
    (fun ctx ins ->
      let a = Array.sub ins 0 6 and b = Array.sub ins 6 6 in
      Rtl.mul_array ctx a b)
    12
    (fun v ->
      let a = v land 0x3F and b = (v lsr 6) land 0x3F in
      a * b)

let test_rtl_mul_signed () =
  eval_comb
    (fun ctx ins ->
      let a = Array.sub ins 0 6 and b = Array.sub ins 6 6 in
      Rtl.mul_array_signed ctx a b)
    12
    (fun v ->
      let s6 x = if x land 0x20 <> 0 then x - 64 else x in
      let a = s6 (v land 0x3F) and b = s6 ((v lsr 6) land 0x3F) in
      a * b land 0xFFF)

let test_rtl_comparators () =
  eval_comb
    (fun ctx ins ->
      let a = Array.sub ins 0 6 and b = Array.sub ins 6 6 in
      [| Rtl.lt_unsigned ctx a b; Rtl.eq ctx a b; Rtl.is_zero ctx a |])
    12
    (fun v ->
      let a = v land 0x3F and b = (v lsr 6) land 0x3F in
      (if a < b then 1 else 0)
      lor (if a = b then 2 else 0)
      lor if a = 0 then 4 else 0)

let test_rtl_mux_tree () =
  eval_comb
    (fun ctx ins ->
      let sel = Array.sub ins 0 2 and x = Array.sub ins 2 4 in
      let cases = Array.init 4 (fun k -> [| x.(k) |]) in
      Rtl.mux_tree ctx sel cases)
    6
    (fun v ->
      let sel = v land 3 and x = (v lsr 2) land 0xF in
      (x lsr sel) land 1)

let test_rtl_decode () =
  eval_comb
    (fun ctx ins ->
      let sel = Array.sub ins 0 3 in
      Rtl.decode ctx sel)
    3
    (fun v -> 1 lsl (v land 7))

let () =
  Alcotest.run "gatesim"
    [
      ( "symbolic",
        [
          Alcotest.test_case "fork two paths" `Quick test_fork_two_paths;
          Alcotest.test_case "straight line" `Quick test_straightline_no_fork;
          Alcotest.test_case "loop terminates" `Quick
            test_input_dependent_loop_terminates;
          Alcotest.test_case "data X no fork" `Quick test_data_dependent_no_fork;
          Alcotest.test_case "superset validation" `Quick
            test_superset_validation;
          Alcotest.test_case "halt detection" `Quick
            test_concrete_matches_iss_flow;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "rtl-sim",
        [
          Alcotest.test_case "adder" `Quick test_rtl_adder;
          Alcotest.test_case "sub" `Quick test_rtl_sub;
          Alcotest.test_case "mul unsigned" `Quick test_rtl_mul_unsigned;
          Alcotest.test_case "mul signed" `Quick test_rtl_mul_signed;
          Alcotest.test_case "comparators" `Quick test_rtl_comparators;
          Alcotest.test_case "mux tree" `Quick test_rtl_mux_tree;
          Alcotest.test_case "decode" `Quick test_rtl_decode;
        ] );
    ]
