(* Tests for the paper's core algorithms: peak power bounds, peak
   energy, the even/odd VCD construction (incl. the Figure 3.2 worked
   example), COI analysis, and the software optimizations. *)

open Isa

let i x = Asm.I x
let mov_imm n r = i (Insn.I1 (Insn.MOV, Insn.S_imm (Insn.Lit n), Insn.D_reg r))
let input_addr = Memmap.ram_base + 0x80

let cpu = Tsupport.the_cpu ()
let period = 1e-8 (* 100 MHz *)

let pa = lazy (Core.Analyze.poweran_for ~period cpu)

let branch_program =
  Tsupport.prologue
  @ [
      i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit input_addr), Insn.D_reg 4));
      i (Insn.I1 (Insn.CMP, Insn.S_imm (Insn.Lit 5), Insn.D_reg 4));
      i (Insn.J (Insn.JEQ, Insn.Sym "equal"));
      mov_imm 1 5;
      i (Insn.J (Insn.JMP, Insn.Sym "_halt"));
      Asm.Label "equal";
      mov_imm 2 5;
    ]

let analyze body =
  let img = Tsupport.assemble_body body in
  (img, Core.Analyze.run (Lazy.force pa) cpu img)

let test_peak_above_base () =
  let _, a = analyze branch_program in
  let base = Poweran.base_power (Lazy.force pa) in
  Alcotest.(check bool) "peak above base" true (a.Core.Analyze.peak_power > base);
  Alcotest.(check bool) "peak in mW range" true
    (a.Core.Analyze.peak_power > 1e-4 && a.Core.Analyze.peak_power < 1e-1);
  Alcotest.(check bool) "trace nonempty" true
    (Array.length a.Core.Analyze.power_trace > 10)

let test_bound_dominates_concrete () =
  let img, a = analyze branch_program in
  List.iter
    (fun input ->
      let concrete, ctrace =
        Core.Analyze.run_concrete (Lazy.force pa) cpu img
          ~inputs:[ (input_addr, [ input ]) ]
      in
      let cpk, _ = Poweran.peak_of ctrace in
      Alcotest.(check bool)
        (Printf.sprintf "peak bound >= concrete (input %d)" input)
        true
        (a.Core.Analyze.peak_power >= cpk -. 1e-15);
      match
        Core.Validate.check_bound (Lazy.force pa) ~tree:a.Core.Analyze.tree
          ~concrete
      with
      | None -> Alcotest.fail "no matching path for concrete run"
      | Some chk ->
        Alcotest.(check int) "no pointwise violations" 0
          (List.length chk.Core.Validate.violations);
        Alcotest.(check bool) "ratio <= 1" true
          (chk.Core.Validate.max_ratio <= 1. +. 1e-9))
    [ 5; 1234 ]

let test_superset () =
  let img, a = analyze branch_program in
  let concrete, _ =
    Core.Analyze.run_concrete (Lazy.force pa) cpu img
      ~inputs:[ (input_addr, [ 99 ]) ]
  in
  let sets =
    Core.Validate.compare_toggles ~tree:a.Core.Analyze.tree ~concrete
  in
  Alcotest.(check int) "no concrete-only nets" 0
    (List.length sets.Core.Validate.concrete_only);
  Alcotest.(check bool) "common nonempty" true
    (List.length sets.Core.Validate.common > 100)

let test_peak_energy_straightline () =
  (* no forks: peak energy equals the trace sum *)
  let _, a = analyze (Tsupport.prologue @ [ mov_imm 42 4; mov_imm 7 5 ]) in
  let expect =
    Array.fold_left ( +. ) 0. a.Core.Analyze.power_trace *. period
  in
  let got = a.Core.Analyze.peak_energy.Core.Peak_energy.energy in
  Alcotest.(check bool) "energy = sum(trace)*T" true
    (Float.abs (got -. expect) < 1e-18);
  Alcotest.(check int) "cycles = trace length"
    (Array.length a.Core.Analyze.power_trace)
    a.Core.Analyze.peak_energy.Core.Peak_energy.cycles

let test_peak_energy_fork_takes_max () =
  (* the two sides of the branch have different lengths; the bound must
     follow the costlier one *)
  let body =
    Tsupport.prologue
    @ [
        i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit input_addr), Insn.D_reg 4));
        i (Insn.tst 4);
        i (Insn.J (Insn.JEQ, Insn.Sym "short"));
        (* long side: several multiplies *)
        mov_imm 0x7777 5;
        i (Insn.I1 (Insn.MOV, Insn.S_reg 5, Insn.D_abs (Insn.Lit Memmap.mpy)));
        mov_imm 0x1234 6;
        i (Insn.I1 (Insn.MOV, Insn.S_reg 6, Insn.D_abs (Insn.Lit Memmap.op2)));
        mov_imm 0 7;
        mov_imm 1 7;
        mov_imm 2 7;
        Asm.Label "short";
        mov_imm 1 8;
      ]
  in
  let _, a = analyze body in
  (* worst path must be at least as long as the long side *)
  Alcotest.(check bool) "worst path cycles reflect long side" true
    (a.Core.Analyze.peak_energy.Core.Peak_energy.cycles
    > Array.length a.Core.Analyze.power_trace / 2)

let test_evenodd_equivalence () =
  let img = Tsupport.assemble_body (Tsupport.prologue @ [
      i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit input_addr), Insn.D_reg 4));
      i (Insn.I1 (Insn.ADD, Insn.S_reg 4, Insn.D_reg 4));
      i (Insn.I1 (Insn.MOV, Insn.S_reg 4, Insn.D_abs (Insn.Lit (input_addr + 2))));
    ])
  in
  let e =
    let mem = Cpu.mem_of_image img in
    Gatesim.Engine.create cpu.Cpu.netlist ~ports:cpu.Cpu.ports ~mem
  in
  let tree, _ =
    Gatesim.Sym.run e
      (Gatesim.Sym.default_config
         ~is_end:(Cpu.is_end_cycle ~halt_addr:img.Asm.halt_addr))
  in
  let path = Gatesim.Trace.flatten tree in
  let pa = Lazy.force pa in
  let direct = Poweran.trace_power pa ~mode:`Max path in
  let via_vcd, _, _ =
    Core.Evenodd.peak_power_via_vcd pa Stdcell.default
      ~initial:tree.Gatesim.Trace.initial path
  in
  Alcotest.(check int) "same length" (Array.length direct) (Array.length via_vcd);
  Array.iteri
    (fun k d ->
      if Float.abs (d -. via_vcd.(k)) > 1e-9 *. Float.max 1. d then
        Alcotest.failf "cycle %d: direct %.6e vs vcd %.6e" k d via_vcd.(k))
    direct

(* The Figure 3.2 worked example: three equal gates, X assignments must
   make cycle 6 (1-based) of the even trace an all-gates 0->1 cycle. *)
let test_figure_3_2 () =
  let ctx = Rtl.create () in
  let a = Rtl.input ctx in
  let g1 = Rtl.not_ ctx a in
  let g2 = Rtl.not_ ctx g1 in
  let g3 = Rtl.not_ ctx g2 in
  let nl = Rtl.freeze ctx in
  let gates = [| g1; g2; g3 |] in
  (* value table from the paper, columns = cycles 1..9 *)
  let table =
    [|
      [| '0'; '0'; '1'; 'x'; 'x'; 'x'; '0'; '0'; '0' |];
      [| '0'; 'x'; 'x'; 'x'; 'x'; 'x'; 'x'; '0'; '0' |];
      [| '0'; '0'; '0'; '1'; 'x'; 'x'; 'x'; 'x'; '0' |];
    |]
  in
  let nets = Netlist.gate_count nl in
  let initial = Array.make nets (Tri.to_int Tri.Zero) in
  Array.iteri (fun g net -> initial.(net) <- Tri.to_int (Tri.of_char table.(g).(0))) gates;
  let cycles =
    Array.init 8 (fun k ->
        (* transition from column k to k+1 *)
        let deltas = ref [] and xact = ref [] in
        Array.iteri
          (fun g net ->
            let o = Tri.of_char table.(g).(k) and n = Tri.of_char table.(g).(k + 1) in
            if not (Tri.equal o n) then
              deltas :=
                Gatesim.Trace.pack ~net ~old_v:(Tri.to_int o) ~new_v:(Tri.to_int n)
                :: !deltas
            else if Tri.is_x n then xact := net :: !xact)
          gates;
        {
          Gatesim.Trace.deltas = Array.of_list !deltas;
          x_active = Array.of_list !xact;
          pc = Tri.Word.all_x ~width:16;
          state = Tri.Word.all_x ~width:16;
          ir = Tri.Word.all_x ~width:16;
        })
  in
  let lib = Stdcell.default in
  let replayed = Core.Evenodd.replay ~initial cycles in
  (* our cycle index k covers the transition from column k+1 to column
     k+2, so the paper's even cycles (2, 4, 6, 8) are k = 0, 2, 4, 6 *)
  let even = Core.Evenodd.maximize lib nl ~parity:0 replayed cycles in
  (* paper cycle 6 = our k = 4, between value vectors 4 and 5; all three
     gates must get the maximum (0 -> 1) transition there *)
  Array.iter
    (fun net ->
      let before = Bytes.get even.Core.Evenodd.values.(4) net in
      let after = Bytes.get even.Core.Evenodd.values.(5) net in
      Alcotest.(check char) "before is 0" '\000' before;
      Alcotest.(check char) "after is 1" '\001' after)
    gates

let test_coi () =
  let _, a = analyze branch_program in
  let cois = Core.Analyze.cois (Lazy.force pa) a ~top:2 ~min_gap:3 in
  Alcotest.(check int) "two cois" 2 (List.length cois);
  List.iter
    (fun c ->
      Alcotest.(check bool) "has breakdown" true
        (List.length c.Core.Coi.breakdown >= 8);
      let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. c.Core.Coi.breakdown in
      Alcotest.(check bool) "breakdown sums to power" true
        (Float.abs (total -. c.Core.Coi.power) < 1e-9))
    cois

(* ---- optimizations ---- *)

let output_addr = Memmap.ram_base + 0x20

let pop_program =
  Tsupport.prologue
  @ [
      mov_imm 0x1111 4;
      mov_imm 0x2222 5;
      i (Insn.I2 (Insn.PUSH, Insn.S_reg 4));
      i (Insn.I2 (Insn.PUSH, Insn.S_reg 5));
      i (Insn.pop 6);
      i (Insn.pop 7);
      i (Insn.I1 (Insn.ADD, Insn.S_reg 6, Insn.D_reg 7));
      i (Insn.I1 (Insn.MOV, Insn.S_reg 7, Insn.D_abs (Insn.Lit output_addr)));
    ]

let test_opt2_rewrites_and_preserves () =
  let transformed, n = Core.Optimize.apply Core.Optimize.Opt2_pop ~scratch:13 pop_program in
  Alcotest.(check int) "two pops rewritten" 2 n;
  let assemble items = Tsupport.assemble_body items in
  Alcotest.(check bool) "functionally equivalent" true
    (Core.Optimize.verify ~assemble ~inputs:[] ~outputs:[ (output_addr, 1) ]
       pop_program transformed)

let test_opt1_rewrites_and_preserves () =
  let body =
    Tsupport.prologue
    @ [
        mov_imm input_addr 4;
        i (Insn.I1 (Insn.MOV, Insn.S_idx (Insn.Lit 2, 4), Insn.D_reg 5));
        i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit input_addr), Insn.D_reg 6));
        i (Insn.I1 (Insn.ADD, Insn.S_reg 6, Insn.D_reg 5));
        i (Insn.I1 (Insn.MOV, Insn.S_reg 5, Insn.D_abs (Insn.Lit output_addr)));
      ]
  in
  let transformed, n =
    Core.Optimize.apply Core.Optimize.Opt1_indexed_loads ~scratch:13 body
  in
  Alcotest.(check int) "two loads rewritten" 2 n;
  let assemble items = Tsupport.assemble_body items in
  Alcotest.(check bool) "functionally equivalent" true
    (Core.Optimize.verify ~assemble
       ~inputs:[ (input_addr, [ 123; 456 ]) ]
       ~outputs:[ (output_addr, 1) ]
       body transformed)

let test_opt3_inserts_nop () =
  let body =
    Tsupport.prologue
    @ [
        mov_imm 0x4444 4;
        i (Insn.I1 (Insn.MOV, Insn.S_reg 4, Insn.D_abs (Insn.Lit Memmap.mpy)));
        mov_imm 0x7FFF 5;
        i (Insn.I1 (Insn.MOV, Insn.S_reg 5, Insn.D_abs (Insn.Lit Memmap.op2)));
        i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.reslo), Insn.D_reg 6));
        i (Insn.I1 (Insn.MOV, Insn.S_reg 6, Insn.D_abs (Insn.Lit output_addr)));
      ]
  in
  let transformed, n = Core.Optimize.apply Core.Optimize.Opt3_mult_nop ~scratch:13 body in
  Alcotest.(check int) "one nop inserted" 1 n;
  let assemble items = Tsupport.assemble_body items in
  Alcotest.(check bool) "functionally equivalent" true
    (Core.Optimize.verify ~assemble ~inputs:[] ~outputs:[ (output_addr, 1) ]
       body transformed);
  (* OPT3 must strictly reduce the peak of this multiplier-bound kernel *)
  let _, a0 = analyze body in
  let _, a1 = analyze transformed in
  Alcotest.(check bool) "peak reduced" true
    (a1.Core.Analyze.peak_power < a0.Core.Analyze.peak_power)

let test_design_tool_above_xbased () =
  let _, a = analyze branch_program in
  let dt =
    Poweran.design_tool_power (Lazy.force pa)
      ~activity:Poweran.default_design_activity
  in
  Alcotest.(check bool) "design tool above x-based" true
    (dt > a.Core.Analyze.peak_power)

let test_loop_bound_scales_energy () =
  (* polling an unknown flag: the energy bound must grow with the
     permitted iteration count (Section 3.3's user-supplied bound) *)
  let body =
    Tsupport.prologue
    @ [
        Asm.Label "poll";
        i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit input_addr), Insn.D_reg 4));
        i (Insn.I1 (Insn.AND, Insn.S_imm (Insn.Lit 1), Insn.D_reg 4));
        i (Insn.J (Insn.JNE, Insn.Sym "poll"));
      ]
  in
  let img = Tsupport.assemble_body body in
  let run loop_bound =
    Core.Analyze.run
      ~config:{ Core.Analyze.default_config with Core.Analyze.loop_bound }
      (Lazy.force pa) cpu img
  in
  let e k = (run k).Core.Analyze.peak_energy.Core.Peak_energy.energy in
  let e2 = e 2 and e8 = e 8 in
  Alcotest.(check bool) "more iterations, more energy" true (e8 > e2);
  (* but the peak power bound is iteration-independent *)
  Alcotest.(check (float 1e-15)) "peak power unaffected"
    (run 2).Core.Analyze.peak_power (run 8).Core.Analyze.peak_power

let test_unbounded_loop_energy () =
  let body =
    Tsupport.prologue
    @ [
        Asm.Label "poll2";
        i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit input_addr), Insn.D_reg 4));
        i (Insn.I1 (Insn.AND, Insn.S_imm (Insn.Lit 1), Insn.D_reg 4));
        i (Insn.J (Insn.JNE, Insn.Sym "poll2"));
      ]
  in
  let img = Tsupport.assemble_body body in
  match
    Core.Analyze.run
      ~config:{ Core.Analyze.default_config with Core.Analyze.loop_bound = 0 }
      (Lazy.force pa) cpu img
  with
  | exception Core.Peak_energy.Unbounded _ -> ()
  | _ -> Alcotest.fail "expected Unbounded for loop_bound = 0"

let test_path_limit_raised () =
  let img = Tsupport.assemble_body branch_program in
  match
    Core.Analyze.run
      ~config:{ Core.Analyze.default_config with Core.Analyze.max_paths = 1 }
      (Lazy.force pa) cpu img
  with
  | exception Gatesim.Sym.Path_limit _ -> ()
  | _ -> Alcotest.fail "expected Path_limit"

let test_opt_no_sites () =
  (* a program with nothing to rewrite: zero sites, unchanged items *)
  let body = Tsupport.prologue @ [ mov_imm 1 4 ] in
  List.iter
    (fun opt ->
      let out, n = Core.Optimize.apply opt ~scratch:13 body in
      match opt with
      | Core.Optimize.Opt1_indexed_loads ->
        (* the watchdog store is absolute but a store, not a load *)
        Alcotest.(check int) "opt1 no load sites" 0 n;
        Alcotest.(check int) "unchanged" (List.length body) (List.length out)
      | Core.Optimize.Opt2_pop | Core.Optimize.Opt3_mult_nop ->
        Alcotest.(check int) "no sites" 0 n)
    Core.Optimize.all_opts

let () =
  Alcotest.run "core"
    [
      ( "peak-power",
        [
          Alcotest.test_case "above base" `Quick test_peak_above_base;
          Alcotest.test_case "bound dominates" `Quick test_bound_dominates_concrete;
          Alcotest.test_case "superset" `Quick test_superset;
          Alcotest.test_case "design tool above" `Quick test_design_tool_above_xbased;
        ] );
      ( "peak-energy",
        [
          Alcotest.test_case "straight line" `Quick test_peak_energy_straightline;
          Alcotest.test_case "fork takes max" `Quick test_peak_energy_fork_takes_max;
        ] );
      ( "evenodd",
        [
          Alcotest.test_case "equivalence" `Quick test_evenodd_equivalence;
          Alcotest.test_case "figure 3.2" `Quick test_figure_3_2;
        ] );
      ("coi", [ Alcotest.test_case "spikes" `Quick test_coi ]);
      ( "optimize",
        [
          Alcotest.test_case "opt1" `Quick test_opt1_rewrites_and_preserves;
          Alcotest.test_case "opt2" `Quick test_opt2_rewrites_and_preserves;
          Alcotest.test_case "opt3" `Quick test_opt3_inserts_nop;
          Alcotest.test_case "no sites" `Quick test_opt_no_sites;
        ] );
      ( "limits",
        [
          Alcotest.test_case "loop bound scales energy" `Quick
            test_loop_bound_scales_energy;
          Alcotest.test_case "unbounded loop rejected" `Quick
            test_unbounded_loop_energy;
          Alcotest.test_case "path limit" `Quick test_path_limit_raised;
        ] );
    ]
