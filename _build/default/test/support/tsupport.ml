(* Shared test harness: builds the CPU once, runs programs on the
   gate-level engine and on the reference ISS, and compares architectural
   state. *)

let cpu = lazy (Cpu.build ())

let the_cpu () = Lazy.force cpu

let assemble_body ?(name = "test") body =
  Isa.Asm.assemble
    {
      Isa.Asm.name;
      entry = "start";
      sections =
        [
          {
            Isa.Asm.org = Isa.Memmap.rom_base;
            items = (Isa.Asm.Label "start" :: body) @ Isa.Asm.halt_items;
          };
        ];
    }

(* Standard prologue: set up the stack and stop the watchdog, as every
   benchmark does. *)
let prologue =
  [
    Isa.Asm.I
      (Isa.Insn.I1
         ( Isa.Insn.MOV,
           Isa.Insn.S_imm (Isa.Insn.Lit (Isa.Memmap.ram_limit - 0x80)),
           Isa.Insn.D_reg 1 ));
    Isa.Asm.I
      (Isa.Insn.I1
         ( Isa.Insn.MOV,
           Isa.Insn.S_imm (Isa.Insn.Lit 0x5A80),
           Isa.Insn.D_abs (Isa.Insn.Lit Isa.Memmap.wdtctl) ));
    (* one NOP initializes r3 so later NOPs are zero-activity writes *)
    Isa.Asm.I Isa.Insn.nop;
  ]

let fresh_engine ?(concrete = true) img =
  let c = the_cpu () in
  let mem = Cpu.mem_of_image img in
  if concrete then Cpu.zero_ram mem;
  let e = Gatesim.Engine.create c.Cpu.netlist ~ports:c.Cpu.ports ~mem in
  if concrete then
    Gatesim.Engine.set_port_in e (Array.make 16 Tri.Zero);
  e

(* Step the engine to the next cycle whose state is FETCH; returns the
   cycle record. *)
let step_to_fetch e =
  let rec go n =
    if n > 100 then failwith "no FETCH within 100 cycles";
    let cy = Gatesim.Engine.step e in
    match Tri.Word.to_int cy.Gatesim.Trace.state with
    | Some s when s = Cpu.st_fetch -> cy
    | _ -> go (n + 1)
  in
  go 0

type lockstep_result = {
  insns : int;
  reg_compares : int;
  reg_skips : int;
  cpu_cycles : int;
  iss_cycles : int;
  ram_compares : int;
  ram_skips : int;
}

let sr_mask = 0x0107 (* C, Z, N, V *)

(* Run the program on both models in lockstep, comparing registers at
   every instruction boundary and RAM at the end. [fail] is called with
   a message on divergence. *)
let lockstep ?(max_insns = 20_000) ~fail img =
  let c = the_cpu () in
  let e = fresh_engine img in
  let iss = Isa.Iss.create img in
  Gatesim.Engine.set_reset e Tri.One;
  ignore (Gatesim.Engine.step e);
  ignore (Gatesim.Engine.step e);
  Gatesim.Engine.set_reset e Tri.Zero;
  (* skip the VECTOR state *)
  let compares = ref 0 and skips = ref 0 and insns = ref 0 in
  let compare_state () =
    for r = 0 to 15 do
      if r <> 2 then begin
        let w = Gatesim.Engine.sample e c.Cpu.reg_nets.(r) in
        match Tri.Word.to_int w with
        | Some v ->
          incr compares;
          if v <> iss.Isa.Iss.regs.(r) then
            fail
              (Printf.sprintf "after %d insns: r%d cpu=0x%04x iss=0x%04x"
                 !insns r v iss.Isa.Iss.regs.(r))
        | None -> incr skips
      end
    done;
    (* SR: compare the flag bits when known *)
    let w = Gatesim.Engine.sample e c.Cpu.sr_nets in
    let all_known =
      List.for_all
        (fun bit -> not (Tri.is_x (Tri.Word.bit w bit)))
        [ 0; 1; 2; 8 ]
    in
    if all_known then begin
      incr compares;
      let bit b =
        match Tri.Word.bit w b with Tri.One -> 1 lsl b | _ -> 0
      in
      let v = bit 0 lor bit 1 lor bit 2 lor bit 8 in
      if v <> iss.Isa.Iss.regs.(2) land sr_mask then
        fail
          (Printf.sprintf "after %d insns: SR cpu=0x%04x iss=0x%04x" !insns v
             (iss.Isa.Iss.regs.(2) land sr_mask))
    end
    else incr skips
  in
  let rec go () =
    let cy = step_to_fetch e in
    compare_state ();
    let pc = Tri.Word.to_int cy.Gatesim.Trace.pc in
    match pc with
    | Some p when p = img.Isa.Asm.halt_addr -> ()
    | Some _ ->
      if !insns >= max_insns then failwith "lockstep: instruction budget";
      Isa.Iss.step iss;
      incr insns;
      go ()
    | None -> fail "PC became X in concrete lockstep run"
  in
  go ();
  (* final RAM comparison *)
  let mem = Gatesim.Engine.mem e in
  let ram_compares = ref 0 and ram_skips = ref 0 in
  let a = ref Isa.Memmap.ram_base in
  while !a < Isa.Memmap.ram_limit do
    let w = Gatesim.Mem.peek mem !a in
    (match Tri.Word.to_int w with
    | Some v ->
      incr ram_compares;
      let iv = iss.Isa.Iss.ram.((!a - Isa.Memmap.ram_base) / 2) in
      if v <> iv then
        fail (Printf.sprintf "ram[0x%04x] cpu=0x%04x iss=0x%04x" !a v iv)
    | None -> incr ram_skips);
    a := !a + 2
  done;
  {
    insns = !insns;
    reg_compares = !compares;
    reg_skips = !skips;
    cpu_cycles = Gatesim.Engine.cycle_index e;
    iss_cycles = iss.Isa.Iss.cycles;
    ram_compares = !ram_compares;
    ram_skips = !ram_skips;
  }
