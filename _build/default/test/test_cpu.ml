(* Gate-level CPU validation against the reference ISS.

   The headline test is randomized lockstep equivalence: arbitrary
   programs drawn from the full instruction/addressing-mode space run on
   both models, with registers compared at every instruction boundary
   and RAM at halt. *)

open Isa

let mov_imm n r = Asm.I (Insn.I1 (Insn.MOV, Insn.S_imm (Insn.Lit n), Insn.D_reg r))
let i x = Asm.I x

let fail_test msg = Alcotest.fail msg

let lockstep_body ?name body =
  Tsupport.lockstep ~fail:fail_test
    (Tsupport.assemble_body ?name (Tsupport.prologue @ body))

let test_netlist_shape () =
  let c = Tsupport.the_cpu () in
  let s = Netlist.Stats.compute c.Cpu.netlist in
  Alcotest.(check bool) "has a few thousand gates" true (s.Netlist.Stats.total > 3000);
  Alcotest.(check bool) "has flops" true (s.Netlist.Stats.sequential > 300);
  let modules = List.map fst s.Netlist.Stats.by_module in
  List.iter
    (fun m ->
      Alcotest.(check bool) (m ^ " present") true (List.mem m modules))
    [
      "clk_module"; "dbg"; "exec_unit"; "frontend"; "mem_backbone";
      "multiplier"; "sfr"; "watchdog";
    ]

let test_basic_alu () =
  let r =
    lockstep_body
      [
        mov_imm 40 4;
        mov_imm 2 5;
        i (Insn.I1 (Insn.ADD, Insn.S_reg 5, Insn.D_reg 4));
        i (Insn.I1 (Insn.SUB, Insn.S_imm (Insn.Lit 12), Insn.D_reg 4));
        i (Insn.I1 (Insn.XOR, Insn.S_imm (Insn.Lit 0xFFFF), Insn.D_reg 4));
        i (Insn.I1 (Insn.AND, Insn.S_imm (Insn.Lit 0x0F0F), Insn.D_reg 4));
        i (Insn.I1 (Insn.BIS, Insn.S_imm (Insn.Lit 0x8000), Insn.D_reg 4));
        i (Insn.I1 (Insn.BIC, Insn.S_imm (Insn.Lit 0x0001), Insn.D_reg 4));
      ]
  in
  Alcotest.(check bool) "compared registers" true (r.Tsupport.reg_compares > 0);
  Alcotest.(check int) "cycles cpu = iss + 1" (r.Tsupport.iss_cycles + 1)
    r.Tsupport.cpu_cycles

let test_memory_modes () =
  let base = Memmap.ram_base + 0x40 in
  ignore
    (lockstep_body
       [
         mov_imm base 12;
         mov_imm 0x1234 4;
         i (Insn.I1 (Insn.MOV, Insn.S_reg 4, Insn.D_abs (Insn.Lit base)));
         i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit base), Insn.D_reg 5));
         i (Insn.I1 (Insn.MOV, Insn.S_reg 5, Insn.D_idx (Insn.Lit 8, 12)));
         i (Insn.I1 (Insn.ADD, Insn.S_idx (Insn.Lit 8, 12), Insn.D_reg 5));
         i (Insn.I1 (Insn.MOV, Insn.S_ind 12, Insn.D_reg 6));
         i (Insn.I1 (Insn.MOV, Insn.S_ind_inc 12, Insn.D_reg 7));
         i (Insn.I1 (Insn.ADD, Insn.S_reg 7, Insn.D_idx (Insn.Lit 0, 12)));
         i (Insn.I1 (Insn.CMP, Insn.S_imm (Insn.Lit 99), Insn.D_idx (Insn.Lit 0, 12)));
       ])

let test_stack_and_call () =
  ignore
    (lockstep_body
       [
         mov_imm 0xAAAA 4;
         i (Insn.I2 (Insn.PUSH, Insn.S_reg 4));
         i (Insn.I2 (Insn.PUSH, Insn.S_imm (Insn.Lit 0x5555)));
         i (Insn.pop 5);
         i (Insn.pop 6);
         i (Insn.I2 (Insn.CALL, Insn.S_imm (Insn.Sym "sub")));
         mov_imm 1 8;
         i (Insn.J (Insn.JMP, Insn.Sym "_halt"));
         Asm.Label "sub";
         mov_imm 77 7;
         i Insn.ret;
       ])

let test_jumps_loop () =
  ignore
    (lockstep_body
       [
         mov_imm 5 4;
         mov_imm 0 5;
         Asm.Label "loop";
         i (Insn.I1 (Insn.ADD, Insn.S_reg 4, Insn.D_reg 5));
         i (Insn.dec_r 4);
         i (Insn.J (Insn.JNE, Insn.Sym "loop"));
         (* signed comparisons *)
         mov_imm 0xFFF0 6;
         i (Insn.I1 (Insn.CMP, Insn.S_imm (Insn.Lit 3), Insn.D_reg 6));
         i (Insn.J (Insn.JL, Insn.Sym "was_less"));
         mov_imm 0 7;
         i (Insn.J (Insn.JMP, Insn.Sym "_halt"));
         Asm.Label "was_less";
         mov_imm 1 7;
       ])

let test_fmt2_ops () =
  ignore
    (lockstep_body
       [
         mov_imm 0x8005 4;
         i (Insn.I2 (Insn.RRA, Insn.S_reg 4));
         i (Insn.I2 (Insn.RRC, Insn.S_reg 4));
         mov_imm 0x1234 5;
         i (Insn.I2 (Insn.SWPB, Insn.S_reg 5));
         mov_imm 0x0080 6;
         i (Insn.I2 (Insn.SXT, Insn.S_reg 6));
         (* memory-operand RMW *)
         mov_imm (Memmap.ram_base + 0x10) 12;
         mov_imm 0x00F1 7;
         i (Insn.I1 (Insn.MOV, Insn.S_reg 7, Insn.D_idx (Insn.Lit 0, 12)));
         i (Insn.I2 (Insn.RRA, Insn.S_ind 12));
         i (Insn.I1 (Insn.MOV, Insn.S_ind 12, Insn.D_reg 8));
       ])

let test_multiplier () =
  ignore
    (lockstep_body
       [
         mov_imm 1234 4;
         i (Insn.I1 (Insn.MOV, Insn.S_reg 4, Insn.D_abs (Insn.Lit Memmap.mpy)));
         mov_imm 5678 5;
         i (Insn.I1 (Insn.MOV, Insn.S_reg 5, Insn.D_abs (Insn.Lit Memmap.op2)));
         i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.reslo), Insn.D_reg 6));
         i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.reshi), Insn.D_reg 7));
         (* signed multiply: -2 * 3 *)
         mov_imm 0xFFFE 4;
         i (Insn.I1 (Insn.MOV, Insn.S_reg 4, Insn.D_abs (Insn.Lit Memmap.mpys)));
         mov_imm 3 5;
         i (Insn.I1 (Insn.MOV, Insn.S_reg 5, Insn.D_abs (Insn.Lit Memmap.op2)));
         i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.reslo), Insn.D_reg 8));
         i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.reshi), Insn.D_reg 9));
         i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.sumext), Insn.D_reg 10));
       ])

let test_sr_as_dst () =
  ignore
    (lockstep_body
       [
         (* set and clear carry via SR writes *)
         i (Insn.I1 (Insn.BIS, Insn.S_imm (Insn.Lit 1), Insn.D_reg 2));
         i (Insn.J (Insn.JC, Insn.Sym "carry_set"));
         mov_imm 0 4;
         i (Insn.J (Insn.JMP, Insn.Sym "_halt"));
         Asm.Label "carry_set";
         i (Insn.I1 (Insn.BIC, Insn.S_imm (Insn.Lit 1), Insn.D_reg 2));
         i (Insn.J (Insn.JNC, Insn.Sym "carry_clear"));
         mov_imm 0 4;
         i (Insn.J (Insn.JMP, Insn.Sym "_halt"));
         Asm.Label "carry_clear";
         mov_imm 3 4;
       ])

let test_watchdog_and_ports () =
  ignore
    (lockstep_body
       [
         (* read WDTCTL back (0x69xx), write P1OUT, read it back *)
         i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.wdtctl), Insn.D_reg 4));
         mov_imm 0x00FF 5;
         i (Insn.I1 (Insn.MOV, Insn.S_reg 5, Insn.D_abs (Insn.Lit Memmap.p1out)));
         i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.p1out), Insn.D_reg 6));
         i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.p1in), Insn.D_reg 7));
       ])

(* ---- randomized lockstep equivalence ---- *)

let scratch = Memmap.ram_base + 0x100

let gen_program =
  let open QCheck2.Gen in
  let reg = int_range 4 11 in
  let off = map (fun k -> 2 * k) (int_range 0 7) in
  let scratch_addr = map (fun k -> scratch + (2 * k)) (int_range 0 7) in
  let src =
    oneof
      [
        map (fun r -> Insn.S_reg r) reg;
        map (fun v -> Insn.S_imm (Insn.Lit v)) (int_range 0 0xFFFF);
        map (fun v -> Insn.S_imm (Insn.Lit v)) (oneofl [ 0; 1; 2; 4; 8; 0xFFFF ]);
        map (fun a -> Insn.S_abs (Insn.Lit a)) scratch_addr;
        map (fun o -> Insn.S_idx (Insn.Lit o, 12)) off;
        return (Insn.S_ind 12);
      ]
  in
  let dst =
    oneof
      [
        map (fun r -> Insn.D_reg r) reg;
        map (fun a -> Insn.D_abs (Insn.Lit a)) scratch_addr;
        map (fun o -> Insn.D_idx (Insn.Lit o, 12)) off;
      ]
  in
  let op1 =
    oneofl Insn.[ MOV; ADD; ADDC; SUBC; SUB; CMP; BIT; BIC; BIS; XOR; AND ]
  in
  let insn =
    frequency
      [
        (8, map3 (fun op s d -> Insn.I1 (op, s, d)) op1 src dst);
        ( 2,
          map2
            (fun op r -> Insn.I2 (op, Insn.S_reg r))
            (oneofl Insn.[ RRC; SWPB; RRA; SXT ])
            reg );
        (1, map (fun r -> Insn.I2 (Insn.PUSH, Insn.S_reg r)) reg);
        (1, map (fun r -> Insn.pop r) reg);
        ( 1,
          map2
            (fun r v ->
              Insn.I1 (Insn.MOV, Insn.S_imm (Insn.Lit v), Insn.D_reg r))
            reg (int_range 0 0xFFFF) );
      ]
  in
  let* setup =
    let* vals = list_repeat 9 (int_range 0 0xFFFF) in
    return
      (List.mapi (fun k v -> mov_imm v (4 + k)) (List.filteri (fun k _ -> k < 8) vals)
      @ [ mov_imm scratch 12 ])
  in
  let* body = list_size (int_range 5 40) (map i insn) in
  return (setup @ body)

let random_lockstep =
  QCheck2.Test.make ~count:60 ~name:"random programs: cpu == iss" gen_program
    (fun body ->
      let img = Tsupport.assemble_body ~name:"rand" (Tsupport.prologue @ body) in
      let ok = ref true in
      let fail _msg = ok := false in
      let r = Tsupport.lockstep ~fail img in
      if r.Tsupport.cpu_cycles <> r.Tsupport.iss_cycles + 1 then ok := false;
      !ok)

let () =
  Alcotest.run "cpu"
    [
      ( "structure",
        [ Alcotest.test_case "netlist shape" `Quick test_netlist_shape ] );
      ( "lockstep",
        [
          Alcotest.test_case "alu" `Quick test_basic_alu;
          Alcotest.test_case "memory modes" `Quick test_memory_modes;
          Alcotest.test_case "stack and call" `Quick test_stack_and_call;
          Alcotest.test_case "jumps and loops" `Quick test_jumps_loop;
          Alcotest.test_case "format II" `Quick test_fmt2_ops;
          Alcotest.test_case "multiplier" `Quick test_multiplier;
          Alcotest.test_case "sr as destination" `Quick test_sr_as_dst;
          Alcotest.test_case "watchdog and ports" `Quick test_watchdog_and_ports;
        ] );
      ("random", [ QCheck_alcotest.to_alcotest random_lockstep ]);
    ]
