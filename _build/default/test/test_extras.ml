(* Tests for the tooling extensions: disassembly listings, Verilog and
   Liberty export, the Chapter-6 multi-program/interrupt combinators,
   and the microarchitectural WCEC baseline. *)

let cpu = Tsupport.the_cpu ()
let pa = lazy (Core.Analyze.poweran_for cpu)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---- listing ---- *)

let test_listing_roundtrip () =
  let b = Benchprogs.Bench.find "intAVG" in
  let img = Benchprogs.Bench.assemble b in
  let lines = Isa.Listing.lines img in
  (* every image word is covered exactly once *)
  let covered = Hashtbl.create 64 in
  List.iter
    (fun (l : Isa.Listing.line) ->
      List.iteri
        (fun k _ ->
          let a = l.Isa.Listing.addr + (2 * k) in
          Alcotest.(check bool)
            (Printf.sprintf "no overlap at %04x" a)
            false (Hashtbl.mem covered a);
          Hashtbl.replace covered a ())
        l.Isa.Listing.words)
    lines;
  List.iter
    (fun (a, _) ->
      Alcotest.(check bool) (Printf.sprintf "covered %04x" a) true
        (Hashtbl.mem covered a))
    img.Isa.Asm.words;
  let text = Isa.Listing.to_string img in
  Alcotest.(check bool) "entry label shown" true (contains text "start:");
  Alcotest.(check bool) "halt label shown" true (contains text "_halt:")

let test_listing_decodes_match_source () =
  (* decoded mnemonics reparse and re-encode to the original words *)
  let b = Benchprogs.Bench.find "tea8" in
  let img = Benchprogs.Bench.assemble b in
  List.iter
    (fun (l : Isa.Listing.line) ->
      if not (contains l.Isa.Listing.text ".word") then begin
        let i = Isa.Parse.instr l.Isa.Listing.text in
        let ws =
          Isa.Insn.encode ~lookup:(fun _ -> 0) ~pc:l.Isa.Listing.addr i
        in
        Alcotest.(check (list int))
          (Printf.sprintf "reencode @%04x %s" l.Isa.Listing.addr l.Isa.Listing.text)
          l.Isa.Listing.words ws
      end)
    (Isa.Listing.lines img)

(* ---- verilog / liberty export ---- *)

let test_verilog_export () =
  let text = Verilog_export.file_text cpu.Cpu.netlist in
  Alcotest.(check bool) "has module" true (contains text "module xbound_core");
  Alcotest.(check bool) "has cell models" true (contains text "module X_DFFE");
  Alcotest.(check bool) "has endmodule" true (contains text "endmodule");
  (* one instance per non-input/const gate *)
  let count needle =
    let n = ref 0 in
    String.iteri
      (fun i _ ->
        if
          i + String.length needle <= String.length text
          && String.sub text i (String.length needle) = needle
        then incr n)
      text;
    !n
  in
  let insts = count "  X_" in
  let expected =
    Array.fold_left
      (fun acc (g : Netlist.gate) ->
        match g.Netlist.cell with
        | Netlist.Input | Netlist.Const _ -> acc
        | _ -> acc + 1)
      0 cpu.Cpu.netlist.Netlist.gates
  in
  Alcotest.(check int) "instance count" expected insts;
  (* probe ports present *)
  Alcotest.(check bool) "pc probe" true (contains text "output pc_0_")

let test_liberty_export () =
  let text = Stdcell.liberty_text Stdcell.default in
  Alcotest.(check bool) "library header" true (contains text "library (xbound65gp_1v0)");
  List.iter
    (fun c ->
      Alcotest.(check bool) ("cell " ^ c) true (contains text ("cell (X_" ^ c ^ ")")))
    [ "INV"; "NAND2"; "MUX2"; "DFF"; "DFFE" ]

(* ---- multiprog / interrupts ---- *)

let analyze_bench name =
  let b = Benchprogs.Bench.find name in
  let config =
    {
      Core.Analyze.default_config with
      Core.Analyze.max_paths = b.Benchprogs.Bench.max_paths;
      loop_bound = b.Benchprogs.Bench.loop_bound;
    }
  in
  Core.Analyze.run ~config (Lazy.force pa) cpu (Benchprogs.Bench.assemble b)

let test_multiprog_max () =
  let a1 = analyze_bench "intAVG" in
  let a2 = analyze_bench "tea8" in
  let m = Core.Multiprog.max_peak [ a1; a2 ] in
  Alcotest.(check (float 1e-15)) "max of peaks"
    (Float.max a1.Core.Analyze.peak_power a2.Core.Analyze.peak_power)
    m;
  Alcotest.(check bool) "npe max" true
    (Core.Multiprog.max_npe [ a1; a2 ]
    >= a1.Core.Analyze.peak_energy.Core.Peak_energy.npe)

let test_multiprog_union_dominates () =
  let a1 = analyze_bench "intAVG" in
  let a2 = analyze_bench "tea8" in
  let u =
    Core.Multiprog.union_peak_bound (Lazy.force pa)
      [ a1.Core.Analyze.tree; a2.Core.Analyze.tree ]
  in
  Alcotest.(check bool) "union >= each peak" true
    (u >= a1.Core.Analyze.peak_power -. 1e-12
    && u >= a2.Core.Analyze.peak_power -. 1e-12)

let test_isr_combination () =
  let main = analyze_bench "intAVG" in
  let isr = analyze_bench "ConvEn" in
  let c =
    Core.Multiprog.combine_isr ~main ~isr ~max_invocations:3
      ~detection_power:1e-5
  in
  Alcotest.(check bool) "peak covers both" true
    (c.Core.Multiprog.peak_power
    >= Float.max main.Core.Analyze.peak_power isr.Core.Analyze.peak_power);
  Alcotest.(check bool) "energy covers main + 3 isr" true
    (Float.abs
       (c.Core.Multiprog.peak_energy
       -. (main.Core.Analyze.peak_energy.Core.Peak_energy.energy
          +. (3. *. isr.Core.Analyze.peak_energy.Core.Peak_energy.energy)))
    < 1e-15)

(* ---- WCEC baseline ---- *)

let test_wcec_classify () =
  let open Isa in
  Alcotest.(check bool) "alu" true
    (Baselines.Wcec.classify (Insn.I1 (Insn.ADD, Insn.S_reg 4, Insn.D_reg 5))
    = Baselines.Wcec.K_alu);
  Alcotest.(check bool) "load" true
    (Baselines.Wcec.classify
       (Insn.I1 (Insn.MOV, Insn.S_idx (Insn.Lit 2, 4), Insn.D_reg 5))
    = Baselines.Wcec.K_load);
  Alcotest.(check bool) "mul access" true
    (Baselines.Wcec.classify
       (Insn.I1 (Insn.MOV, Insn.S_reg 4, Insn.D_abs (Insn.Lit Memmap.op2)))
    = Baselines.Wcec.K_mul_access);
  Alcotest.(check bool) "jump" true
    (Baselines.Wcec.classify (Insn.J (Insn.JMP, Insn.Lit 0)) = Baselines.Wcec.K_jump)

let test_wcec_estimate_looser_than_gate_level () =
  (* the microarchitectural model has no gate-level visibility, so its
     bound should be looser (higher NPE) than the co-analysis bound *)
  let b = Benchprogs.Bench.find "tea8" in
  let img = Benchprogs.Bench.assemble b in
  let w =
    Baselines.Wcec.of_program (Lazy.force pa) img
      ~input_sets:
        [ b.Benchprogs.Bench.gen_inputs ~seed:2; b.Benchprogs.Bench.gen_inputs ~seed:8 ]
  in
  let a = analyze_bench "tea8" in
  Alcotest.(check bool) "wcec energy positive" true (w.Baselines.Wcec.energy > 0.);
  Alcotest.(check bool) "wcec npe looser than x-based" true
    (w.Baselines.Wcec.npe > a.Core.Analyze.peak_energy.Core.Peak_energy.npe)

(* ---- asynchronous peripheral analysis (Chapter 6) ---- *)

let test_async_analysis () =
  (* a toy 4-bit free-running-when-enabled counter with unknown enable *)
  let c = Rtl.create () in
  let reset = Rtl.input c in
  let en = Rtl.input c in
  let cnt = Rtl.reg c ~width:4 in
  Rtl.connect c cnt ~reset ~reset_to:0 ~enable:en (Rtl.inc c (Rtl.q cnt));
  let gnd0 = Rtl.gnd c in
  let nl = Rtl.freeze c in
  let ports =
    {
      Gatesim.Engine.reset;
      port_in = [| en |];
      mem_addr = [| gnd0 |];
      mem_rdata = [||];
      mem_wdata = [| gnd0 |];
      mem_ren = gnd0;
      mem_wen = gnd0;
      pc = [| gnd0 |];
      state = [| gnd0 |];
      ir = [| gnd0 |];
      fork_net = None;
    }
  in
  let pa2 = Poweran.create nl Stdcell.default ~period:1e-8 in
  let r = Core.Async.analyze pa2 ~ports ~cycles:256 in
  Alcotest.(check bool) "saturates" true r.Core.Async.saturated;
  Alcotest.(check bool) "above base" true
    (r.Core.Async.peak_power > Poweran.base_power pa2);
  Alcotest.(check bool) "npe <= peak energy rate" true
    (r.Core.Async.npe <= r.Core.Async.peak_power *. 1e-8 +. 1e-18);
  (* composition is additive *)
  Alcotest.(check (float 1e-18)) "add_to" (1.0 +. r.Core.Async.peak_power)
    (Core.Async.add_to ~cpu_bound:1.0 ~peripherals:[ r ])

let () =
  Alcotest.run "extras"
    [
      ( "listing",
        [
          Alcotest.test_case "coverage" `Quick test_listing_roundtrip;
          Alcotest.test_case "reencode" `Quick test_listing_decodes_match_source;
        ] );
      ( "export",
        [
          Alcotest.test_case "verilog" `Quick test_verilog_export;
          Alcotest.test_case "liberty" `Quick test_liberty_export;
        ] );
      ( "multiprog",
        [
          Alcotest.test_case "max" `Quick test_multiprog_max;
          Alcotest.test_case "union dominates" `Quick test_multiprog_union_dominates;
          Alcotest.test_case "isr" `Quick test_isr_combination;
        ] );
      ( "wcec",
        [
          Alcotest.test_case "classify" `Quick test_wcec_classify;
          Alcotest.test_case "looser than gate-level" `Quick
            test_wcec_estimate_looser_than_gate_level;
        ] );
      ("async", [ Alcotest.test_case "peripheral bound" `Quick test_async_analysis ]);
    ]
