(* Tests for the ISA layer: encode/decode roundtrip, the assembler, and
   the reference ISS's architectural semantics. *)

open Isa

let lookup_empty s = failwith ("no symbol " ^ s)

(* --- encode/decode roundtrip --- *)

let qgen_reg = QCheck2.Gen.int_range 4 15

let qgen_src =
  QCheck2.Gen.(
    oneof
      [
        map (fun r -> Insn.S_reg r) qgen_reg;
        map2 (fun v r -> Insn.S_idx (Insn.Lit v, r)) (int_range 0 0xFFFF) qgen_reg;
        map (fun r -> Insn.S_ind r) qgen_reg;
        map (fun r -> Insn.S_ind_inc r) qgen_reg;
        map (fun v -> Insn.S_imm (Insn.Lit v)) (int_range 0 0xFFFF);
        map (fun v -> Insn.S_abs (Insn.Lit v)) (int_range 0 0xFFFF);
      ])

let qgen_dst =
  QCheck2.Gen.(
    oneof
      [
        map (fun r -> Insn.D_reg r) qgen_reg;
        map2 (fun v r -> Insn.D_idx (Insn.Lit v, r)) (int_range 0 0xFFFF) qgen_reg;
        map (fun v -> Insn.D_abs (Insn.Lit v)) (int_range 0 0xFFFF);
      ])

let qgen_op1 =
  QCheck2.Gen.oneofl
    Insn.[ MOV; ADD; ADDC; SUBC; SUB; CMP; BIT; BIC; BIS; XOR; AND ]

let qgen_instr =
  QCheck2.Gen.(
    oneof
      [
        map3 (fun op s d -> Insn.I1 (op, s, d)) qgen_op1 qgen_src qgen_dst;
        map2
          (fun op s -> Insn.I2 (op, s))
          (oneofl Insn.[ RRC; SWPB; RRA; SXT; PUSH ])
          (oneof
             [
               map (fun r -> Insn.S_reg r) qgen_reg;
               map (fun r -> Insn.S_ind r) qgen_reg;
             ]);
        map2
          (fun c off ->
            Insn.J (c, Insn.Lit ((0x1000 + (2 * off)) land 0xFFFF)))
          (oneofl Insn.[ JNE; JEQ; JNC; JC; JN; JGE; JL; JMP ])
          (int_range (-500) 500);
        return Insn.RETI;
      ])

(* Normalize: immediates that hit the constant generator decode back as
   S_imm of the same literal, so roundtripping is exact on our
   generator's space except PUSH #cg forms we don't generate. *)
let roundtrip =
  QCheck2.Test.make ~count:1000 ~name:"encode/decode roundtrip" qgen_instr
    (fun i ->
      let pc = 0x1000 in
      let ws = Insn.encode ~lookup:lookup_empty ~pc i in
      match ws with
      | [] -> false
      | w :: ext ->
        let ext1 = match ext with e :: _ -> e | [] -> 0 in
        let ext2 = match ext with _ :: e :: _ -> e | _ -> 0 in
        let d = Insn.decode w ~ext1 ~ext2 ~pc in
        d.Insn.n_ext = List.length ext && d.Insn.instr = i)

let size_words_matches_encode =
  QCheck2.Test.make ~count:1000 ~name:"size_words = |encode|" qgen_instr
    (fun i ->
      List.length (Insn.encode ~lookup:lookup_empty ~pc:0x1000 i)
      = Insn.size_words i)

let test_cg_encodings () =
  (* MOV #1, r5 must use the constant generator: single word *)
  List.iter
    (fun n ->
      let i = Insn.I1 (Insn.MOV, Insn.S_imm (Insn.Lit n), Insn.D_reg 5) in
      Alcotest.(check int)
        (Printf.sprintf "cg imm %d one word" n)
        1
        (List.length (Insn.encode ~lookup:lookup_empty ~pc:0 i)))
    [ 0; 1; 2; 4; 8; 0xFFFF ];
  let i = Insn.I1 (Insn.MOV, Insn.S_imm (Insn.Lit 3), Insn.D_reg 5) in
  Alcotest.(check int) "imm 3 needs ext" 2
    (List.length (Insn.encode ~lookup:lookup_empty ~pc:0 i))

let test_jump_range () =
  let far = Insn.J (Insn.JMP, Insn.Lit 0x3000) in
  Alcotest.check_raises "jump out of range"
    (Insn.Encode_error "jump offset 4095 out of range (target 0x3000)")
    (fun () -> ignore (Insn.encode ~lookup:lookup_empty ~pc:0x1000 far))

(* --- assembler --- *)

let tiny_program body =
  {
    Asm.name = "tiny";
    entry = "start";
    sections =
      [ { Asm.org = Memmap.rom_base; items = (Asm.Label "start" :: body) @ Asm.halt_items } ];
  }

let test_asm_layout () =
  let img =
    Asm.assemble
      (tiny_program
         [
           Asm.I (Insn.I1 (Insn.MOV, Insn.S_imm (Insn.Lit 0x1234), Insn.D_reg 4));
           Asm.I Insn.nop;
           Asm.Label "data_follows";
           Asm.Words [ 0xAAAA; 0x5555 ];
         ])
  in
  Alcotest.(check int) "entry" Memmap.rom_base img.Asm.entry_addr;
  (* mov #imm,r4 = 2 words; nop = 1 word *)
  Alcotest.(check int) "label addr"
    (Memmap.rom_base + 6)
    (Asm.lookup img "data_follows");
  Alcotest.(check int) "halt label"
    (Memmap.rom_base + 10)
    (Asm.lookup img "_halt");
  (* reset vector present *)
  Alcotest.(check int) "reset vector" img.Asm.entry_addr
    (List.assoc Memmap.reset_vector img.Asm.words)

let test_asm_duplicate_label () =
  Alcotest.check_raises "duplicate"
    (Asm.Asm_error "tiny: duplicate label start") (fun () ->
      ignore (Asm.assemble (tiny_program [ Asm.Label "start" ])))

let test_asm_undefined_symbol () =
  let p = tiny_program [ Asm.I (Insn.J (Insn.JMP, Insn.Sym "nowhere")) ] in
  Alcotest.check_raises "undefined"
    (Asm.Asm_error "tiny: undefined symbol nowhere") (fun () ->
      ignore (Asm.assemble p))

(* --- ISS semantics --- *)

let run_iss body =
  let img = Asm.assemble (tiny_program body) in
  let t = Iss.create img in
  Iss.run t;
  t

let mov_imm n r = Asm.I (Insn.I1 (Insn.MOV, Insn.S_imm (Insn.Lit n), Insn.D_reg r))

let test_iss_mov_add () =
  let t =
    run_iss
      [
        mov_imm 40 4;
        mov_imm 2 5;
        Asm.I (Insn.I1 (Insn.ADD, Insn.S_reg 5, Insn.D_reg 4));
      ]
  in
  Alcotest.(check int) "r4" 42 t.Iss.regs.(4)

let test_iss_flags_carry () =
  let t =
    run_iss
      [
        mov_imm 0xFFFF 4;
        Asm.I (Insn.I1 (Insn.ADD, Insn.S_imm (Insn.Lit 1), Insn.D_reg 4));
      ]
  in
  Alcotest.(check int) "r4 wrapped" 0 t.Iss.regs.(4);
  Alcotest.(check bool) "carry" true (Iss.flag_c t);
  Alcotest.(check bool) "zero" true (Iss.flag_z t);
  Alcotest.(check bool) "neg" false (Iss.flag_n t)

let test_iss_overflow () =
  let t =
    run_iss
      [
        mov_imm 0x7FFF 4;
        Asm.I (Insn.I1 (Insn.ADD, Insn.S_imm (Insn.Lit 1), Insn.D_reg 4));
      ]
  in
  Alcotest.(check bool) "overflow" true (Iss.flag_v t);
  Alcotest.(check bool) "neg" true (Iss.flag_n t)

let test_iss_sub_cmp () =
  let t =
    run_iss
      [
        mov_imm 5 4;
        Asm.I (Insn.I1 (Insn.CMP, Insn.S_imm (Insn.Lit 5), Insn.D_reg 4));
      ]
  in
  Alcotest.(check bool) "z after cmp equal" true (Iss.flag_z t);
  Alcotest.(check bool) "c after cmp equal" true (Iss.flag_c t);
  Alcotest.(check int) "cmp does not write" 5 t.Iss.regs.(4)

let test_iss_memory () =
  let addr = Memmap.ram_base + 0x10 in
  let t =
    run_iss
      [
        mov_imm 0xBEEF 4;
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_reg 4, Insn.D_abs (Insn.Lit addr)));
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit addr), Insn.D_reg 5));
      ]
  in
  Alcotest.(check int) "loaded back" 0xBEEF t.Iss.regs.(5)

let test_iss_indexed () =
  let base = Memmap.ram_base + 0x20 in
  let t =
    run_iss
      [
        mov_imm base 4;
        mov_imm 0x1111 5;
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_reg 5, Insn.D_idx (Insn.Lit 4, 4)));
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_idx (Insn.Lit 4, 4), Insn.D_reg 6));
      ]
  in
  Alcotest.(check int) "indexed store/load" 0x1111 t.Iss.regs.(6)

let test_iss_autoincrement () =
  let base = Memmap.ram_base in
  let t =
    run_iss
      [
        mov_imm base 4;
        mov_imm 7 5;
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_reg 5, Insn.D_abs (Insn.Lit base)));
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_ind_inc 4, Insn.D_reg 6));
      ]
  in
  Alcotest.(check int) "value" 7 t.Iss.regs.(6);
  Alcotest.(check int) "r4 incremented" (base + 2) t.Iss.regs.(4)

let test_iss_push_pop () =
  let t =
    run_iss
      [
        mov_imm (Memmap.ram_limit) 1;
        mov_imm 0xCAFE 4;
        Asm.I (Insn.I2 (Insn.PUSH, Insn.S_reg 4));
        Asm.I (Insn.pop 5);
      ]
  in
  Alcotest.(check int) "popped" 0xCAFE t.Iss.regs.(5);
  Alcotest.(check int) "sp restored" Memmap.ram_limit t.Iss.regs.(1)

let test_iss_call_ret () =
  let t =
    run_iss
      [
        mov_imm (Memmap.ram_limit) 1;
        Asm.I (Insn.I2 (Insn.CALL, Insn.S_imm (Insn.Sym "fn")));
        Asm.I (Insn.J (Insn.JMP, Insn.Sym "_halt"));
        Asm.Label "fn";
        mov_imm 99 4;
        Asm.I Insn.ret;
      ]
  in
  Alcotest.(check int) "fn ran" 99 t.Iss.regs.(4);
  Alcotest.(check int) "sp balanced" Memmap.ram_limit t.Iss.regs.(1)

let test_iss_jumps () =
  let t =
    run_iss
      [
        mov_imm 3 4;
        mov_imm 0 5;
        Asm.Label "loop";
        Asm.I (Insn.I1 (Insn.ADD, Insn.S_reg 4, Insn.D_reg 5));
        Asm.I (Insn.dec_r 4);
        Asm.I (Insn.J (Insn.JNE, Insn.Sym "loop"));
      ]
  in
  Alcotest.(check int) "loop sum 3+2+1" 6 t.Iss.regs.(5);
  Alcotest.(check int) "counter exhausted" 0 t.Iss.regs.(4)

let test_iss_signed_jumps () =
  (* JL: -1 < 1 *)
  let t =
    run_iss
      [
        mov_imm 0xFFFF 4;
        Asm.I (Insn.I1 (Insn.CMP, Insn.S_imm (Insn.Lit 1), Insn.D_reg 4));
        Asm.I (Insn.J (Insn.JL, Insn.Sym "less"));
        mov_imm 0 5;
        Asm.I (Insn.J (Insn.JMP, Insn.Sym "_halt"));
        Asm.Label "less";
        mov_imm 1 5;
      ]
  in
  Alcotest.(check int) "jl taken" 1 t.Iss.regs.(5)

let test_iss_multiplier () =
  let t =
    run_iss
      [
        mov_imm 1234 4;
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_reg 4, Insn.D_abs (Insn.Lit Memmap.mpy)));
        mov_imm 5678 5;
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_reg 5, Insn.D_abs (Insn.Lit Memmap.op2)));
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.reslo), Insn.D_reg 6));
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.reshi), Insn.D_reg 7));
      ]
  in
  let p = 1234 * 5678 in
  Alcotest.(check int) "reslo" (p land 0xFFFF) t.Iss.regs.(6);
  Alcotest.(check int) "reshi" (p lsr 16) t.Iss.regs.(7)

let test_iss_signed_multiplier () =
  let t =
    run_iss
      [
        mov_imm 0xFFFE 4 (* -2 *);
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_reg 4, Insn.D_abs (Insn.Lit Memmap.mpys)));
        mov_imm 3 5;
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_reg 5, Insn.D_abs (Insn.Lit Memmap.op2)));
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.reslo), Insn.D_reg 6));
        Asm.I (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.reshi), Insn.D_reg 7));
      ]
  in
  (* -6 = 0xFFFFFFFA *)
  Alcotest.(check int) "reslo" 0xFFFA t.Iss.regs.(6);
  Alcotest.(check int) "reshi" 0xFFFF t.Iss.regs.(7)

let test_iss_rra_rrc_swpb_sxt () =
  let t =
    run_iss
      [
        mov_imm 0x8004 4;
        Asm.I (Insn.I2 (Insn.RRA, Insn.S_reg 4));
        mov_imm 0x1234 5;
        Asm.I (Insn.I2 (Insn.SWPB, Insn.S_reg 5));
        mov_imm 0x0080 6;
        Asm.I (Insn.I2 (Insn.SXT, Insn.S_reg 6));
      ]
  in
  Alcotest.(check int) "rra keeps sign" 0xC002 t.Iss.regs.(4);
  Alcotest.(check int) "swpb" 0x3412 t.Iss.regs.(5);
  Alcotest.(check int) "sxt" 0xFF80 t.Iss.regs.(6)

let test_iss_cycles () =
  (* mov #n,r (ext) = 3; add r,r = 2; plus 4 reset cycles; the halt
     self-jump is detected at fetch and never charged *)
  let t =
    run_iss
      [
        mov_imm 1000 4;
        Asm.I (Insn.I1 (Insn.ADD, Insn.S_reg 4, Insn.D_reg 5));
      ]
  in
  Alcotest.(check int) "cycle count" (4 + 3 + 2) t.Iss.cycles

let test_iss_watchdog_stop () =
  let t =
    run_iss
      [
        Asm.I
          (Insn.I1
             ( Insn.MOV,
               Insn.S_imm (Insn.Lit 0x5A80),
               Insn.D_abs (Insn.Lit Memmap.wdtctl) ));
      ]
  in
  Alcotest.(check int) "wdt hold bit stored" 0x80 t.Iss.wdt

let () =
  Alcotest.run "isa"
    [
      ( "encode",
        [
          QCheck_alcotest.to_alcotest roundtrip;
          QCheck_alcotest.to_alcotest size_words_matches_encode;
          Alcotest.test_case "constant generator" `Quick test_cg_encodings;
          Alcotest.test_case "jump range" `Quick test_jump_range;
        ] );
      ( "asm",
        [
          Alcotest.test_case "layout" `Quick test_asm_layout;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "undefined symbol" `Quick test_asm_undefined_symbol;
        ] );
      ( "iss",
        [
          Alcotest.test_case "mov/add" `Quick test_iss_mov_add;
          Alcotest.test_case "carry/zero" `Quick test_iss_flags_carry;
          Alcotest.test_case "overflow" `Quick test_iss_overflow;
          Alcotest.test_case "cmp" `Quick test_iss_sub_cmp;
          Alcotest.test_case "memory" `Quick test_iss_memory;
          Alcotest.test_case "indexed" `Quick test_iss_indexed;
          Alcotest.test_case "autoincrement" `Quick test_iss_autoincrement;
          Alcotest.test_case "push/pop" `Quick test_iss_push_pop;
          Alcotest.test_case "call/ret" `Quick test_iss_call_ret;
          Alcotest.test_case "loop" `Quick test_iss_jumps;
          Alcotest.test_case "signed jump" `Quick test_iss_signed_jumps;
          Alcotest.test_case "multiplier" `Quick test_iss_multiplier;
          Alcotest.test_case "signed multiplier" `Quick test_iss_signed_multiplier;
          Alcotest.test_case "format II" `Quick test_iss_rra_rrc_swpb_sxt;
          Alcotest.test_case "cycle accounting" `Quick test_iss_cycles;
          Alcotest.test_case "watchdog stop" `Quick test_iss_watchdog_stop;
        ] );
    ]
