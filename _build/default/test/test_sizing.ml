(* Sizing-model tests: table data, conversion formulas, and the
   reduction arithmetic behind Tables 5.1/5.2. *)

let test_battery_tables () =
  Alcotest.(check int) "six battery types" 6 (List.length Sizing.Battery.all);
  let li = Sizing.Battery.find "Li-ion" in
  Alcotest.(check (float 1e-9)) "li-ion density" 1.152
    li.Sizing.Battery.energy_density;
  Alcotest.check_raises "unknown battery"
    (Invalid_argument "Sizing.Battery.find: unobtainium") (fun () ->
      ignore (Sizing.Battery.find "unobtainium"))

let test_harvester_tables () =
  Alcotest.(check int) "four harvesters" 4 (List.length Sizing.Harvester.all);
  let pv = Sizing.Harvester.find "Photovoltaic (sun)" in
  (* 1 W at 100 mW/cm^2 -> 10 cm^2 *)
  Alcotest.(check (float 1e-9)) "area" 10.
    (Sizing.Harvester.area_cm2 pv ~power_w:1.0)

let test_battery_volume () =
  let li = Sizing.Battery.find "Li-ion" in
  (* 1.152 MJ fits in exactly one liter *)
  Alcotest.(check (float 1e-9)) "volume" 1.0
    (Sizing.Battery.volume_l li ~energy_j:1.152e6)

let test_reduction_formula () =
  (* no improvement -> no reduction *)
  Alcotest.(check (float 1e-12)) "equal" 0.
    (Sizing.reduction_pct ~baseline:2. ~ours:2. ~fraction:1.0);
  (* halving the requirement at 100% contribution halves the component *)
  Alcotest.(check (float 1e-9)) "half" 50.
    (Sizing.reduction_pct ~baseline:2. ~ours:1. ~fraction:1.0);
  (* contribution scales linearly *)
  Alcotest.(check (float 1e-9)) "quarter share" 12.5
    (Sizing.reduction_pct ~baseline:2. ~ours:1. ~fraction:0.25);
  Alcotest.(check (float 1e-12)) "degenerate baseline" 0.
    (Sizing.reduction_pct ~baseline:0. ~ours:1. ~fraction:1.0)

let reduction_props =
  [
    QCheck2.Test.make ~count:500 ~name:"reduction in [0,100] when ours<=baseline"
      QCheck2.Gen.(triple (float_range 0.1 10.) (float_range 0. 1.) (float_range 0. 1.))
      (fun (baseline, ratio, fraction) ->
        let ours = baseline *. ratio in
        let r = Sizing.reduction_pct ~baseline ~ours ~fraction in
        r >= -1e-9 && r <= 100. +. 1e-9);
    QCheck2.Test.make ~count:500 ~name:"reduction monotone in tightening"
      QCheck2.Gen.(triple (float_range 1. 10.) (float_range 0.1 0.9) (float_range 0.05 1.))
      (fun (baseline, ratio, fraction) ->
        let tighter = Sizing.reduction_pct ~baseline ~ours:(baseline *. ratio *. 0.5) ~fraction in
        let looser = Sizing.reduction_pct ~baseline ~ours:(baseline *. ratio) ~fraction in
        tighter >= looser -. 1e-9);
  ]

let test_sensor_node () =
  let area, vol =
    Sizing.sensor_node_savings ~baseline_peak:2. ~x_peak:1.5 ~baseline_energy:2.
      ~x_energy:1.5
  in
  (* 25% tighter bound -> a quarter of 32.6 cm^2 and 6.95 mm^3 *)
  Alcotest.(check (float 1e-6)) "area saved" (32.6 *. 0.25) area;
  Alcotest.(check (float 1e-6)) "volume saved" (6.95 *. 0.25) vol

let () =
  Alcotest.run "sizing"
    [
      ( "tables",
        [
          Alcotest.test_case "batteries" `Quick test_battery_tables;
          Alcotest.test_case "harvesters" `Quick test_harvester_tables;
          Alcotest.test_case "volume" `Quick test_battery_volume;
        ] );
      ( "reduction",
        Alcotest.test_case "formula" `Quick test_reduction_formula
        :: List.map QCheck_alcotest.to_alcotest reduction_props );
      ("sensor-node", [ Alcotest.test_case "worked example" `Quick test_sensor_node ]);
    ]
