(* Power-analysis properties on the real CPU netlist: mode ordering,
   breakdown consistency, energy accounting, and the calibration
   knobs. *)

let cpu = Tsupport.the_cpu ()
let nl = cpu.Cpu.netlist
let period = 1e-8
let pa = lazy (Core.Analyze.poweran_for ~period cpu)

(* random synthetic cycle records over real nets *)
let gen_cycle =
  QCheck2.Gen.(
    let n = Netlist.gate_count nl in
    let* n_deltas = int_range 0 60 in
    let* n_x = int_range 0 40 in
    let* deltas =
      list_size (return n_deltas)
        (let* net = int_range 0 (n - 1) in
         let* old_v = int_range 0 2 in
         let* new_v = int_range 0 2 in
         let new_v = if new_v = old_v then (new_v + 1) mod 3 else new_v in
         return (Gatesim.Trace.pack ~net ~old_v ~new_v))
    in
    let* x_active = list_size (return n_x) (int_range 0 (n - 1)) in
    return
      {
        Gatesim.Trace.deltas = Array.of_list deltas;
        x_active = Array.of_list x_active;
        pc = Tri.Word.all_x ~width:16;
        state = Tri.Word.all_x ~width:16;
        ir = Tri.Word.all_x ~width:16;
      })

let max_dominates_observed =
  QCheck2.Test.make ~count:300 ~name:"max mode >= observed mode" gen_cycle
    (fun cy ->
      Poweran.cycle_power_max (Lazy.force pa) cy
      >= Poweran.cycle_power_observed (Lazy.force pa) cy -. 1e-18)

let breakdown_sums =
  QCheck2.Test.make ~count:200 ~name:"module breakdown sums to cycle power"
    gen_cycle (fun cy ->
      let pa = Lazy.force pa in
      let check mode total =
        let sum =
          List.fold_left
            (fun acc (_, p) -> acc +. p)
            0.
            (Poweran.module_breakdown pa ~mode cy)
        in
        Float.abs (sum -. total) < 1e-9 *. Float.max 1. total
      in
      check `Max (Poweran.cycle_power_max pa cy)
      && check `Observed (Poweran.cycle_power_observed pa cy))

let base_is_floor =
  QCheck2.Test.make ~count:200 ~name:"base power is the floor" gen_cycle
    (fun cy ->
      Poweran.cycle_power_observed (Lazy.force pa) cy
      >= Poweran.base_power (Lazy.force pa) -. 1e-18)

let peak_of_props =
  QCheck2.Test.make ~count:300 ~name:"peak_of returns the max and its index"
    QCheck2.Gen.(array_size (int_range 1 50) (float_range 0. 10.))
    (fun arr ->
      let p, i = Poweran.peak_of arr in
      Array.for_all (fun v -> v <= p) arr && arr.(i) = p)

let test_trace_energy () =
  let pa = Lazy.force pa in
  let cycles =
    Array.init 5 (fun _ ->
        {
          Gatesim.Trace.deltas = [||];
          x_active = [||];
          pc = Tri.Word.all_x ~width:16;
          state = Tri.Word.all_x ~width:16;
          ir = Tri.Word.all_x ~width:16;
        })
  in
  (* quiet cycles: energy = 5 * base * T *)
  let e = Poweran.trace_energy pa ~mode:`Observed cycles in
  Alcotest.(check bool) "quiet trace energy" true
    (Float.abs (e -. (5. *. Poweran.base_power pa *. period)) < 1e-15)

let test_bus_cap_raises_energy () =
  let plain = Poweran.create nl Stdcell.default ~period in
  let bused =
    Poweran.create ~bus:cpu.Cpu.bus_nets ~bus_cap:1e-12 nl Stdcell.default ~period
  in
  (* a delta on a bus net costs more with the bus cap *)
  let net = cpu.Cpu.bus_nets.(0) in
  let cy =
    {
      Gatesim.Trace.deltas = [| Gatesim.Trace.pack ~net ~old_v:0 ~new_v:1 |];
      x_active = [||];
      pc = Tri.Word.all_x ~width:16;
      state = Tri.Word.all_x ~width:16;
      ir = Tri.Word.all_x ~width:16;
    }
  in
  Alcotest.(check bool) "bus cap adds energy" true
    (Poweran.cycle_power_observed bused cy > Poweran.cycle_power_observed plain cy)

let test_module_scale () =
  let plain = Poweran.create nl Stdcell.default ~period in
  let scaled =
    Poweran.create ~module_scale:[ ("multiplier", 2.0) ] nl Stdcell.default ~period
  in
  (* find a multiplier net *)
  let net = ref (-1) in
  Array.iteri
    (fun id (_ : Netlist.gate) ->
      if !net < 0 && Netlist.module_of nl id = "multiplier"
         && not (Netlist.is_sequential nl.Netlist.gates.(id).Netlist.cell)
         && nl.Netlist.gates.(id).Netlist.cell <> Netlist.Input
      then net := id)
    nl.Netlist.gates;
  let cy =
    {
      Gatesim.Trace.deltas = [| Gatesim.Trace.pack ~net:!net ~old_v:0 ~new_v:1 |];
      x_active = [||];
      pc = Tri.Word.all_x ~width:16;
      state = Tri.Word.all_x ~width:16;
      ir = Tri.Word.all_x ~width:16;
    }
  in
  let d p = Poweran.cycle_power_observed p cy -. Poweran.base_power p in
  Alcotest.(check bool) "scaled multiplier net costs 2x" true
    (Float.abs ((d scaled /. d plain) -. 2.0) < 1e-6)

let () =
  Alcotest.run "poweran"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest max_dominates_observed;
          QCheck_alcotest.to_alcotest breakdown_sums;
          QCheck_alcotest.to_alcotest base_is_floor;
          QCheck_alcotest.to_alcotest peak_of_props;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "trace energy" `Quick test_trace_energy;
          Alcotest.test_case "bus capacitance" `Quick test_bus_cap_raises_energy;
          Alcotest.test_case "module scale" `Quick test_module_scale;
        ] );
    ]
