(* VCD writer/parser tests: identifier codes, document structure, and a
   write/parse/replay roundtrip property. *)

let test_id_codes () =
  Alcotest.(check string) "0" "!" (Vcd.id_code 0);
  Alcotest.(check string) "93" "~" (Vcd.id_code 93);
  Alcotest.(check string) "94" "!!" (Vcd.id_code 94);
  List.iter
    (fun n -> Alcotest.(check int) "roundtrip" n (Vcd.of_id_code (Vcd.id_code n)))
    [ 0; 1; 93; 94; 95; 1000; 8835; 8836; 123456 ]

let id_roundtrip =
  QCheck2.Test.make ~count:1000 ~name:"id_code roundtrip"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun n -> Vcd.of_id_code (Vcd.id_code n) = n)

let test_write_parse () =
  let names = [| "a"; "b"; "c" |] in
  let initial = [| Tri.Zero; Tri.X; Tri.One |] in
  let changes =
    [|
      [ (0, Tri.One) ];
      [];
      [ (1, Tri.Zero); (2, Tri.X) ];
    |]
  in
  let doc = Vcd.parse (Vcd.write_trace ~names ~initial ~changes) in
  Alcotest.(check (option string)) "timescale" (Some "10 ns") doc.Vcd.timescale;
  Alcotest.(check int) "vars" 3 (List.length doc.Vcd.var_names);
  Alcotest.(check int) "initial" 3 (List.length doc.Vcd.initial);
  let replayed = Vcd.replay doc ~nets:3 in
  (* time 1: a flipped; time 3: b -> 0, c -> x *)
  let at t =
    match List.assoc_opt t replayed with
    | Some v -> v
    | None -> Alcotest.fail (Printf.sprintf "no step at %d" t)
  in
  Alcotest.(check char) "a at 1" '1' (Tri.to_char (at 1).(0));
  Alcotest.(check char) "b at 3" '0' (Tri.to_char (at 3).(1));
  Alcotest.(check char) "c at 3" 'x' (Tri.to_char (at 3).(2))

let test_parse_error () =
  (try
     ignore (Vcd.parse "#0\nqq\n");
     Alcotest.fail "expected parse error"
   with Vcd.Parse_error _ -> ());
  try
    ignore (Vcd.parse "1! \n");
    Alcotest.fail "expected error for change before timestamp"
  with Vcd.Parse_error _ -> ()

let gen_trace =
  QCheck2.Gen.(
    let* nets = int_range 1 20 in
    let* cycles = int_range 0 30 in
    let* initial = array_size (return nets) (map Tri.of_int (int_range 0 2)) in
    let* changes =
      array_size (return cycles)
        (list_size (int_range 0 5)
           (pair (int_range 0 (nets - 1)) (map Tri.of_int (int_range 0 2))))
    in
    return (nets, initial, changes))

let roundtrip_replay =
  QCheck2.Test.make ~count:200 ~name:"write/parse/replay equals direct replay"
    gen_trace
    (fun (nets, initial, changes) ->
      let names = Array.init nets (fun i -> Printf.sprintf "n%d" i) in
      let doc = Vcd.parse (Vcd.write_trace ~names ~initial ~changes) in
      let replayed = Vcd.replay doc ~nets in
      (* direct replay *)
      let v = Array.copy initial in
      let ok = ref true in
      Array.iteri
        (fun c deltas ->
          (* last change to a net within a cycle wins *)
          List.iter (fun (n, t) -> v.(n) <- t) deltas;
          if deltas <> [] then begin
            match List.assoc_opt (c + 1) replayed with
            | None -> ok := false
            | Some arr ->
              if not (Array.for_all2 (fun a b -> Tri.equal a b) arr v) then
                ok := false
          end)
        changes;
      !ok)

let () =
  Alcotest.run "vcd"
    [
      ( "codes",
        [
          Alcotest.test_case "id codes" `Quick test_id_codes;
          QCheck_alcotest.to_alcotest id_roundtrip;
        ] );
      ( "documents",
        [
          Alcotest.test_case "write/parse" `Quick test_write_parse;
          Alcotest.test_case "parse errors" `Quick test_parse_error;
          QCheck_alcotest.to_alcotest roundtrip_replay;
        ] );
    ]
