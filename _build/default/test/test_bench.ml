(* Benchmark suite validation:
   - functional correctness of every kernel on the ISS against its OCaml
     reference model, over several input seeds;
   - gate-level CPU lockstep equivalence on every kernel;
   - symbolic analyzability: Algorithm 1 terminates within the declared
     path budget and the X-based peak power bound dominates concrete
     runs (the Section 3.4 validation, on the real suite). *)

let cpu = Tsupport.the_cpu ()
let pa = lazy (Core.Analyze.poweran_for cpu)

let poke_inputs_iss iss inputs =
  List.iteri
    (fun k w -> Isa.Iss.write_word iss (Benchprogs.Bench.input_base + (2 * k)) w)
    inputs

let read_outputs_iss iss n =
  List.init n (fun k ->
      Isa.Iss.read_word iss (Benchprogs.Bench.output_base + (2 * k)))

let test_reference b () =
  let img = Benchprogs.Bench.assemble b in
  List.iter
    (fun seed ->
      let iss = Isa.Iss.create img in
      let inputs = b.Benchprogs.Bench.gen_inputs ~seed in
      Alcotest.(check int)
        (Printf.sprintf "%s input count" b.Benchprogs.Bench.name)
        b.Benchprogs.Bench.input_words (List.length inputs);
      poke_inputs_iss iss inputs;
      Isa.Iss.run iss;
      let got = read_outputs_iss iss b.Benchprogs.Bench.output_words in
      let want = b.Benchprogs.Bench.reference inputs in
      Alcotest.(check (list int))
        (Printf.sprintf "%s outputs (seed %d)" b.Benchprogs.Bench.name seed)
        want got)
    [ 1; 2; 3; 5; 8; 13; 21; 42 ]

let test_lockstep b () =
  let img = Benchprogs.Bench.assemble b in
  let inputs = b.Benchprogs.Bench.gen_inputs ~seed:7 in
  (* lockstep starts from zeroed RAM on both sides; poke the same
     inputs into both models *)
  let e = Tsupport.fresh_engine img in
  ignore e;
  (* reuse Tsupport.lockstep but with inputs: assemble a variant whose
     inputs are materialized as stores at the start *)
  let init_items =
    List.concat
      (List.mapi
         (fun k w ->
           [
             Benchprogs.Bench.E.mov
               (Benchprogs.Bench.E.imm w)
               (Benchprogs.Bench.E.dabs (Benchprogs.Bench.input_base + (2 * k)));
           ])
         inputs)
  in
  let img2 =
    Tsupport.assemble_body ~name:b.Benchprogs.Bench.name
      (Tsupport.prologue @ init_items @ b.Benchprogs.Bench.body)
  in
  let r = Tsupport.lockstep ~max_insns:100_000 ~fail:Alcotest.fail img2 in
  Alcotest.(check int)
    (Printf.sprintf "%s cycle accounting" b.Benchprogs.Bench.name)
    (r.Tsupport.iss_cycles + 1) r.Tsupport.cpu_cycles

let analysis_cache : (string, Core.Analyze.t) Hashtbl.t = Hashtbl.create 16

let analyze b =
  match Hashtbl.find_opt analysis_cache b.Benchprogs.Bench.name with
  | Some a -> a
  | None ->
    let img = Benchprogs.Bench.assemble b in
    let config =
      {
        Core.Analyze.default_config with
        Core.Analyze.loop_bound = b.Benchprogs.Bench.loop_bound;
        max_paths = b.Benchprogs.Bench.max_paths;
      }
    in
    let a = Core.Analyze.run ~config (Lazy.force pa) cpu img in
    Hashtbl.replace analysis_cache b.Benchprogs.Bench.name a;
    a

let test_symbolic b () =
  let a = analyze b in
  Alcotest.(check bool)
    (Printf.sprintf "%s within path budget" b.Benchprogs.Bench.name)
    true
    (a.Core.Analyze.sym_stats.Gatesim.Sym.paths <= b.Benchprogs.Bench.max_paths);
  Alcotest.(check bool)
    (Printf.sprintf "%s nonempty trace" b.Benchprogs.Bench.name)
    true
    (Array.length a.Core.Analyze.power_trace > 20);
  (* the bound dominates concrete peaks for several input sets *)
  let img = Benchprogs.Bench.assemble b in
  List.iter
    (fun seed ->
      let inputs = b.Benchprogs.Bench.gen_inputs ~seed in
      let _, ctrace =
        Core.Analyze.run_concrete (Lazy.force pa) cpu img
          ~inputs:[ (Benchprogs.Bench.input_base, inputs) ]
      in
      let cpk, _ = Poweran.peak_of ctrace in
      Alcotest.(check bool)
        (Printf.sprintf "%s bound >= concrete (seed %d)" b.Benchprogs.Bench.name
           seed)
        true
        (a.Core.Analyze.peak_power >= cpk -. 1e-15))
    [ 11; 23 ];
  (* peak energy is a sensible positive quantity *)
  Alcotest.(check bool)
    (Printf.sprintf "%s energy positive" b.Benchprogs.Bench.name)
    true
    (a.Core.Analyze.peak_energy.Core.Peak_energy.energy > 0.)

let per_bench ?(benches = Benchprogs.Bench.all) kind f =
  List.map
    (fun b ->
      Alcotest.test_case
        (Printf.sprintf "%s %s" b.Benchprogs.Bench.name kind)
        `Quick (f b))
    benches

let () =
  Alcotest.run "bench"
    [
      ("reference", per_bench "ref" test_reference);
      ("lockstep", per_bench "lockstep" test_lockstep);
      ("symbolic", per_bench "symbolic" test_symbolic);
      ( "extended-reference",
        per_bench ~benches:Benchprogs.Extended.all "ref" test_reference );
      ( "extended-lockstep",
        per_bench ~benches:Benchprogs.Extended.all "lockstep" test_lockstep );
      ( "extended-symbolic",
        per_bench ~benches:Benchprogs.Extended.all "symbolic" test_symbolic );
    ]
