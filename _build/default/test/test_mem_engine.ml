(* Focused tests for the symbolic memory model and engine state
   management (snapshot/restore, forking corner cases), plus
   Chapter-6-style analyses: unknown peripheral input pins. *)

open Isa

let i x = Asm.I x
let mov_imm n r = i (Insn.I1 (Insn.MOV, Insn.S_imm (Insn.Lit n), Insn.D_reg r))
let input_addr = Memmap.ram_base + 0x80

(* ---- Mem ---- *)

let mk_mem () =
  Gatesim.Mem.create
    ~rom:[ (0xE000, 0x1234); (0xFFFE, 0xE000) ]
    ~ram_base:Memmap.ram_base ~ram_bytes:Memmap.ram_size

let w16 n = Tri.Word.of_int ~width:16 n
let xw = Tri.Word.all_x ~width:16

let tri_word = Alcotest.testable Tri.Word.pp Tri.Word.equal

let test_mem_rom_and_ram () =
  let m = mk_mem () in
  Alcotest.check tri_word "rom read" (w16 0x1234) (Gatesim.Mem.read m (w16 0xE000));
  Alcotest.check tri_word "vector" (w16 0xE000) (Gatesim.Mem.read m (w16 0xFFFE));
  Alcotest.check tri_word "uninitialized ram is X" xw
    (Gatesim.Mem.read m (w16 Memmap.ram_base));
  Gatesim.Mem.poke m Memmap.ram_base 0xBEEF;
  Alcotest.check tri_word "poked" (w16 0xBEEF) (Gatesim.Mem.read m (w16 Memmap.ram_base));
  (* unmapped: X *)
  Alcotest.check tri_word "unmapped" xw (Gatesim.Mem.read m (w16 0x4000))

let test_mem_write_strobes () =
  let m = mk_mem () in
  let a = w16 (Memmap.ram_base + 4) in
  Gatesim.Mem.write m ~strobe:Tri.One a (w16 0x1111);
  Alcotest.check tri_word "write one" (w16 0x1111) (Gatesim.Mem.read m a);
  Gatesim.Mem.write m ~strobe:Tri.Zero a (w16 0x2222);
  Alcotest.check tri_word "strobe zero ignored" (w16 0x1111) (Gatesim.Mem.read m a);
  (* X strobe: merge old and new *)
  Gatesim.Mem.write m ~strobe:Tri.X a (w16 0x1110);
  let v = Gatesim.Mem.read m a in
  Alcotest.(check bool) "merged has X on differing bit" true
    (Tri.is_x (Tri.Word.bit v 0));
  Alcotest.check Alcotest.char "agreeing bit stays" '1'
    (Tri.to_char (Tri.Word.bit v 4))

let test_mem_x_address_smears () =
  let m = mk_mem () in
  Gatesim.Mem.poke m Memmap.ram_base 0xAAAA;
  Gatesim.Mem.poke m (Memmap.ram_base + 10) 0x5555;
  Gatesim.Mem.write m ~strobe:Tri.One xw (w16 0x1234);
  (* every RAM word must now be unknown (any address could alias) *)
  Alcotest.check tri_word "smeared" xw (Gatesim.Mem.read m (w16 Memmap.ram_base));
  Alcotest.check tri_word "smeared 2" xw
    (Gatesim.Mem.read m (w16 (Memmap.ram_base + 10)));
  (* ROM unaffected *)
  Alcotest.check tri_word "rom intact" (w16 0x1234) (Gatesim.Mem.read m (w16 0xE000))

let test_mem_snapshot_restore () =
  let m = mk_mem () in
  Gatesim.Mem.poke m Memmap.ram_base 0x7777;
  let snap = Gatesim.Mem.snapshot m in
  let d1 = Gatesim.Mem.digest m in
  Gatesim.Mem.write m ~strobe:Tri.One xw (w16 0) (* smear *);
  Alcotest.(check bool) "digest changed" true (Gatesim.Mem.digest m <> d1);
  Gatesim.Mem.restore m snap;
  Alcotest.(check string) "digest restored" d1 (Gatesim.Mem.digest m);
  Alcotest.check tri_word "content restored" (w16 0x7777)
    (Gatesim.Mem.read m (w16 Memmap.ram_base))

let test_mem_x_word_count () =
  let m = mk_mem () in
  let total = Memmap.ram_size / 2 in
  Alcotest.(check int) "all X initially" total (Gatesim.Mem.x_word_count m);
  Gatesim.Mem.poke m Memmap.ram_base 1;
  Alcotest.(check int) "one concretized" (total - 1) (Gatesim.Mem.x_word_count m)

(* ---- engine snapshot/restore across a fork ---- *)

let branch_program =
  Tsupport.prologue
  @ [
      i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit input_addr), Insn.D_reg 4));
      i (Insn.tst 4);
      i (Insn.J (Insn.JEQ, Insn.Sym "z"));
      mov_imm 1 5;
      i (Insn.J (Insn.JMP, Insn.Sym "_halt"));
      Asm.Label "z";
      mov_imm 2 5;
    ]

let test_engine_snapshot_roundtrip () =
  let img = Tsupport.assemble_body branch_program in
  let e = Tsupport.fresh_engine ~concrete:false img in
  Gatesim.Engine.set_reset e Tri.One;
  ignore (Gatesim.Engine.step e);
  ignore (Gatesim.Engine.step e);
  Gatesim.Engine.set_reset e Tri.Zero;
  (* run to the fork *)
  let rec to_fork n =
    if n > 200 then Alcotest.fail "no fork found";
    match Gatesim.Engine.begin_cycle e with
    | `Ok ->
      ignore (Gatesim.Engine.finish_cycle e);
      to_fork (n + 1)
    | `Fork -> ()
  in
  to_fork 0;
  let snap = Gatesim.Engine.snapshot e in
  Gatesim.Engine.force_fork e Tri.Zero;
  let c0 = Gatesim.Engine.finish_cycle e in
  let d0 = Gatesim.Engine.arch_digest e in
  (* restore and take the same branch again: identical results *)
  Gatesim.Engine.restore e snap;
  Gatesim.Engine.force_fork e Tri.Zero;
  let c0' = Gatesim.Engine.finish_cycle e in
  let d0' = Gatesim.Engine.arch_digest e in
  Alcotest.(check string) "same digest" d0 d0';
  Alcotest.(check int) "same delta count"
    (Array.length c0.Gatesim.Trace.deltas)
    (Array.length c0'.Gatesim.Trace.deltas);
  (* the other branch must differ *)
  Gatesim.Engine.restore e snap;
  Gatesim.Engine.force_fork e Tri.One;
  ignore (Gatesim.Engine.finish_cycle e);
  let d1 = Gatesim.Engine.arch_digest e in
  Alcotest.(check bool) "branches diverge" true (d0 <> d1)

let test_force_without_fork_rejected () =
  let img = Tsupport.assemble_body (Tsupport.prologue @ [ mov_imm 1 4 ]) in
  let e = Tsupport.fresh_engine img in
  Alcotest.check_raises "not mid-cycle"
    (Invalid_argument "Engine.force_fork: not mid-cycle") (fun () ->
      Gatesim.Engine.force_fork e Tri.Zero)

(* ---- unknown peripheral pins (paper, Chapter 6) ---- *)

let test_port_pin_x_forks () =
  (* polling an external pin: under symbolic analysis the pin is X, so
     both the loop and the exit are explored *)
  let body =
    Tsupport.prologue
    @ [
        i (Insn.I1 (Insn.MOV, Insn.S_abs (Insn.Lit Memmap.p1in), Insn.D_reg 4));
        i (Insn.I1 (Insn.AND, Insn.S_imm (Insn.Lit 1), Insn.D_reg 4));
        i (Insn.J (Insn.JEQ, Insn.Sym "low"));
        mov_imm 1 5;
        i (Insn.J (Insn.JMP, Insn.Sym "_halt"));
        Asm.Label "low";
        mov_imm 0 5;
      ]
  in
  let img = Tsupport.assemble_body body in
  let e = Tsupport.fresh_engine ~concrete:false img in
  let cfg =
    Gatesim.Sym.default_config
      ~is_end:(Cpu.is_end_cycle ~halt_addr:img.Asm.halt_addr)
  in
  let _, stats = Gatesim.Sym.run e cfg in
  Alcotest.(check int) "pin value forks" 2 stats.Gatesim.Sym.paths;
  (* concretely driving the pin resolves the branch *)
  let e2 = Tsupport.fresh_engine ~concrete:true img in
  Gatesim.Engine.set_port_in e2
    (Array.init 16 (fun k -> if k = 0 then Tri.One else Tri.Zero));
  let cycles, _ =
    Gatesim.Sym.run_concrete e2
      ~is_end:(Cpu.is_end_cycle ~halt_addr:img.Asm.halt_addr)
      ~max_cycles:1000
  in
  Alcotest.(check bool) "concrete run completes" true (Array.length cycles > 10)

let () =
  Alcotest.run "mem-engine"
    [
      ( "mem",
        [
          Alcotest.test_case "rom/ram/unmapped" `Quick test_mem_rom_and_ram;
          Alcotest.test_case "write strobes" `Quick test_mem_write_strobes;
          Alcotest.test_case "x address smear" `Quick test_mem_x_address_smears;
          Alcotest.test_case "snapshot/restore" `Quick test_mem_snapshot_restore;
          Alcotest.test_case "x word count" `Quick test_mem_x_word_count;
        ] );
      ( "engine",
        [
          Alcotest.test_case "snapshot across fork" `Quick
            test_engine_snapshot_roundtrip;
          Alcotest.test_case "force guard" `Quick test_force_without_fork_rejected;
        ] );
      ( "pins",
        [ Alcotest.test_case "x pin forks" `Quick test_port_pin_x_forks ] );
    ]
