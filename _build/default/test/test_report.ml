(* Report-layer tests: renderers, the experiment registry, and a few
   cheap end-to-end experiment runs. *)

let test_table_render () =
  let s =
    Report.Render.table ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "four lines + trailing" 5 (List.length lines);
  Alcotest.(check bool) "contains separator" true
    (String.length (List.nth lines 1) > 0 && (List.nth lines 1).[0] = '-');
  Alcotest.(check bool) "pads to widest cell" true
    (String.length (List.nth lines 0) >= String.length "a    bb")

let test_series_render () =
  Alcotest.(check string) "empty" "(empty)" (Report.Render.series [||]);
  let flat = Report.Render.series ~width:8 (Array.make 20 1.0) in
  Alcotest.(check int) "bucketed width" 8 (String.length flat);
  let ramp = Report.Render.series ~width:10 (Array.init 10 float_of_int) in
  Alcotest.(check int) "one char per point" 10 (String.length ramp);
  (* last bucket is the maximum *)
  Alcotest.(check char) "max mark" '@' ramp.[9]

let test_units () =
  Alcotest.(check string) "mw" "1.234" (Report.Render.mw 1.234e-3);
  Alcotest.(check string) "pj" "2.50" (Report.Render.pj 2.5e-12)

let test_registry_unique_ids () =
  let ids = List.map (fun (i, _, _) -> i) Report.Experiments.all in
  Alcotest.(check int) "all ids unique"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check int) "24 experiments" 24 (List.length ids);
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Experiments.find: unknown experiment nope") (fun () ->
      ignore (Report.Experiments.find "nope" : Report.Context.t -> string))

let ctx = lazy (Report.Context.create ~log:(fun _ -> ()) ())

let test_static_experiments () =
  let c = Lazy.force ctx in
  List.iter
    (fun id ->
      let out = Report.Experiments.find id c in
      Alcotest.(check bool) (id ^ " nonempty") true (String.length out > 80))
    [ "table-1.1"; "table-1.2"; "table-6.1"; "fig-3.2"; "fig-5.3" ]

let test_fig_3_2_contents () =
  let out = Report.Experiments.find "fig-3.2" (Lazy.force ctx) in
  (* the even table must realize the paper's all-rise cycle 6 *)
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions even" true (contains out "maximize even cycles")

let test_context_caching () =
  let c = Lazy.force ctx in
  let b = Benchprogs.Bench.find "intAVG" in
  let a1 = Report.Context.analysis c b in
  let a2 = Report.Context.analysis c b in
  Alcotest.(check bool) "same analysis object" true (a1 == a2)

let test_optrun_on_small_bench () =
  let c = Lazy.force ctx in
  let b = Benchprogs.Bench.find "intAVG" in
  let o = Report.Context.optimization c b in
  Alcotest.(check bool) "opt peak <= base peak" true
    (o.Report.Optrun.opt_peak <= o.Report.Optrun.base_peak +. 1e-15);
  Alcotest.(check bool) "perf cost bounded" true
    (Report.Optrun.perf_degradation_pct o <= 6.01);
  Alcotest.(check bool) "cycles positive" true (o.Report.Optrun.base_cycles > 0)

let () =
  Alcotest.run "report"
    [
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "series" `Quick test_series_render;
          Alcotest.test_case "units" `Quick test_units;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry" `Quick test_registry_unique_ids;
          Alcotest.test_case "static outputs" `Quick test_static_experiments;
          Alcotest.test_case "fig 3.2 contents" `Quick test_fig_3_2_contents;
        ] );
      ( "context",
        [
          Alcotest.test_case "caching" `Quick test_context_caching;
          Alcotest.test_case "optimization run" `Quick test_optrun_on_small_bench;
        ] );
    ]
