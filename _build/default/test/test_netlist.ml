(* Structural tests for the netlist IR and the RTL builder, plus
   standard-cell library sanity checks. Functional (simulation-based)
   checks of the RTL combinators live in test_gatesim.ml. *)

let build_simple () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_input b in
  let c = Netlist.Builder.add_input b in
  let n = Netlist.Builder.add_gate b Netlist.And2 [| a; c |] in
  let inv = Netlist.Builder.add_gate b Netlist.Inv [| n |] in
  Netlist.Builder.name_net b "out" inv;
  Netlist.Builder.freeze b

let test_topo_order () =
  let nl = build_simple () in
  (* every combinational gate appears after its fanins *)
  let pos = Array.make (Netlist.gate_count nl) (-1) in
  Array.iteri (fun i id -> pos.(id) <- i) nl.Netlist.topo;
  Array.iter
    (fun id ->
      let g = nl.Netlist.gates.(id) in
      if not (Netlist.is_sequential g.Netlist.cell || g.Netlist.cell = Netlist.Input)
      then
        Array.iter
          (fun f ->
            let fg = nl.Netlist.gates.(f) in
            if
              not
                (Netlist.is_sequential fg.Netlist.cell
                || fg.Netlist.cell = Netlist.Input
                ||
                match fg.Netlist.cell with Netlist.Const _ -> true | _ -> false)
            then
              Alcotest.(check bool)
                (Printf.sprintf "gate %d after fanin %d" id f)
                true
                (pos.(f) >= 0 && pos.(f) < pos.(id)))
          g.Netlist.fanins)
    nl.Netlist.topo

let test_find_net () =
  let nl = build_simple () in
  Alcotest.(check int) "named net" 3 (Netlist.find_net nl "out");
  Alcotest.check_raises "missing net"
    (Invalid_argument "Netlist.find_net: no net \"nope\"") (fun () ->
      ignore (Netlist.find_net nl "nope"))

let test_loop_detection () =
  let b = Netlist.Builder.create () in
  let i = Netlist.Builder.add_input b in
  (* combinational loop through a dff-less path: use set_dff_input trick
     is not possible for combinational gates, so build a self-feeding
     gate via a dff replaced by direct id arithmetic: create gate that
     references itself is rejected at add time, so build a 2-gate loop
     via dff patching misuse instead. *)
  let d = Netlist.Builder.add_dff b in
  ignore (Netlist.Builder.add_gate b Netlist.And2 [| i; d |]);
  Netlist.Builder.set_dff_input b d i;
  (* this netlist is fine: dff breaks the cycle *)
  ignore (Netlist.Builder.freeze b);
  (* now a true combinational loop: forward fanin refs are rejected *)
  let b2 = Netlist.Builder.create () in
  let x = Netlist.Builder.add_input b2 in
  Alcotest.check_raises "forward ref rejected"
    (Invalid_argument "Netlist.Builder.add_gate: forward combinational fanin 2")
    (fun () -> ignore (Netlist.Builder.add_gate b2 Netlist.And2 [| x; 2 |]))

let test_fanouts () =
  let nl = build_simple () in
  (* input 0 feeds gate 2; gate 2 feeds gate 3 *)
  Alcotest.(check (array int)) "fanout of and" [| 3 |] nl.Netlist.fanouts.(2);
  Alcotest.(check (array int)) "fanout of input" [| 2 |] nl.Netlist.fanouts.(0);
  Alcotest.(check (array int)) "fanout of out" [||] nl.Netlist.fanouts.(3)

let test_stats () =
  let nl = build_simple () in
  let s = Netlist.Stats.compute nl in
  Alcotest.(check int) "total" 4 s.Netlist.Stats.total;
  Alcotest.(check int) "seq" 0 s.Netlist.Stats.sequential;
  Alcotest.(check (list (pair string int)))
    "cells"
    [ ("and2", 1); ("input", 2); ("inv", 1) ]
    s.Netlist.Stats.by_cell

let test_module_attribution () =
  let ctx = Rtl.create () in
  Rtl.set_module ctx "alpha";
  let a = Rtl.input ctx and b = Rtl.input ctx in
  let _ = Rtl.and_ ctx a b in
  Rtl.set_module ctx "beta";
  let _ = Rtl.or_ ctx a b in
  let nl = Rtl.freeze ctx in
  let s = Netlist.Stats.compute nl in
  Alcotest.(check (list (pair string int)))
    "modules"
    [ ("alpha", 3); ("beta", 1) ]
    s.Netlist.Stats.by_module

let test_rtl_const_folding () =
  let ctx = Rtl.create () in
  let a = Rtl.input ctx in
  let t = Rtl.vdd ctx and f = Rtl.gnd ctx in
  (* all of these should fold, creating no new gates *)
  let n0 = Netlist.Builder.create () in
  ignore n0;
  Alcotest.(check int) "and with vdd folds" a (Rtl.and_ ctx a t);
  Alcotest.(check int) "and with gnd folds" f (Rtl.and_ ctx a f);
  Alcotest.(check int) "or with gnd folds" a (Rtl.or_ ctx a f);
  Alcotest.(check int) "or with vdd folds" t (Rtl.or_ ctx a t);
  Alcotest.(check int) "xor with gnd folds" a (Rtl.xor_ ctx a f);
  Alcotest.(check int) "a and a" a (Rtl.and_ ctx a a);
  Alcotest.(check int) "mux same" a (Rtl.mux ctx ~sel:(Rtl.input ctx) a a)

let test_rtl_register_rules () =
  let ctx = Rtl.create () in
  let r = Rtl.reg ctx ~width:4 in
  let d = Rtl.const ctx ~width:4 5 in
  Rtl.connect ctx r d;
  Alcotest.check_raises "double connect"
    (Invalid_argument "Rtl.connect: register already connected") (fun () ->
      Rtl.connect ctx r d);
  let r2 = Rtl.reg ctx ~width:4 in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Rtl.connect: width mismatch") (fun () ->
      Rtl.connect ctx r2 (Rtl.const ctx ~width:3 0))

let test_stdcell_monotone () =
  (* max_transition must pick the costlier direction *)
  let ctx = Rtl.create () in
  let a = Rtl.input ctx and b = Rtl.input ctx in
  let n = Rtl.and_ ctx a b in
  let _sink = Rtl.and_ ctx n b in
  let nl = Rtl.freeze ctx in
  let lib = Stdcell.default in
  let e_max = Stdcell.max_switch_energy lib nl n in
  let er = Stdcell.switch_energy lib nl n ~rising:true in
  let ef = Stdcell.switch_energy lib nl n ~rising:false in
  Alcotest.(check bool) "max is max" true (e_max >= er && e_max >= ef);
  let t1, t2 = Stdcell.max_transition lib nl n in
  let dir_rising = t1 = Tri.Zero && t2 = Tri.One in
  Alcotest.(check bool) "direction matches"
    (er >= ef)
    dir_rising

let test_stdcell_load () =
  let ctx = Rtl.create () in
  let a = Rtl.input ctx and b = Rtl.input ctx in
  let n = Rtl.and_ ctx a b in
  let _s1 = Rtl.not_ ctx n in
  let _s2 = Rtl.not_ ctx n in
  let nl = Rtl.freeze ctx in
  let lib = Stdcell.default in
  (* two fanouts load more than zero fanouts *)
  Alcotest.(check bool) "fanout load positive" true
    (Stdcell.load_cap lib nl n > 0.);
  Alcotest.(check bool) "leakage positive" true
    (Stdcell.leakage_power lib nl > 0.);
  (* scale doubles energies *)
  let lib2 = Stdcell.scale lib 2.0 in
  let e1 = Stdcell.switch_energy lib nl n ~rising:true in
  let e2 = Stdcell.switch_energy lib2 nl n ~rising:true in
  Alcotest.(check bool) "scaled internal grows" true (e2 > e1)

let () =
  Alcotest.run "netlist"
    [
      ( "ir",
        [
          Alcotest.test_case "topo order" `Quick test_topo_order;
          Alcotest.test_case "find_net" `Quick test_find_net;
          Alcotest.test_case "loops" `Quick test_loop_detection;
          Alcotest.test_case "fanouts" `Quick test_fanouts;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "rtl",
        [
          Alcotest.test_case "module attribution" `Quick test_module_attribution;
          Alcotest.test_case "const folding" `Quick test_rtl_const_folding;
          Alcotest.test_case "register rules" `Quick test_rtl_register_rules;
        ] );
      ( "stdcell",
        [
          Alcotest.test_case "max transition" `Quick test_stdcell_monotone;
          Alcotest.test_case "load model" `Quick test_stdcell_load;
        ] );
    ]
