(* Microarchitectural-model worst-case energy estimation, as in the
   WCEC literature the paper compares against (Jayaseelan et al.,
   Wägemann et al.): each instruction class is assigned a fixed
   worst-case energy from an instruction-level model, and the program
   bound is the instruction stream's sum. No gate-level state is
   consulted, so the model must assume the worst class energy per
   instruction — the paper's point is that gate-level co-analysis is
   tighter because instruction energy really depends on pipeline state
   and operand values. *)

type klass = K_alu | K_load | K_store | K_jump | K_mul_access | K_stack

let classify (i : Isa.Insn.instr) =
  match i with
  | Isa.Insn.J _ -> K_jump
  | Isa.Insn.RETI -> K_stack
  | Isa.Insn.I2 ((Isa.Insn.PUSH | Isa.Insn.CALL), _) -> K_stack
  | Isa.Insn.I2 (_, s) -> (
    match s with Isa.Insn.S_reg _ -> K_alu | _ -> K_load)
  | Isa.Insn.I1 (_, s, d) -> (
    let mul_addr v =
      match v with
      | Isa.Insn.Lit a -> a >= Isa.Memmap.mpy && a <= Isa.Memmap.sumext
      | _ -> false
    in
    match d with
    | Isa.Insn.D_abs v when mul_addr v -> K_mul_access
    | Isa.Insn.D_abs _ | Isa.Insn.D_idx _ -> K_store
    | Isa.Insn.D_reg _ -> (
      match s with
      | Isa.Insn.S_abs v when mul_addr v -> K_mul_access
      | Isa.Insn.S_reg _ | Isa.Insn.S_imm _ -> K_alu
      | _ -> K_load))

(* Worst-case per-cycle power of each class, as an instruction-level
   model would tabulate it: anchored on the design library's rated
   per-cycle power for the structures the class exercises. *)
let class_power pa = function
  | K_alu -> Poweran.base_power pa *. 1.9
  | K_load | K_store -> Poweran.base_power pa *. 2.2
  | K_jump -> Poweran.base_power pa *. 1.8
  | K_mul_access -> Poweran.base_power pa *. 2.6
  | K_stack -> Poweran.base_power pa *. 2.2

(* Worst-case energy of one instruction: cycles * worst class power. *)
let instr_energy pa i =
  float_of_int (Isa.Insn.cycles i) *. Poweran.period pa *. class_power pa (classify i)

type result = {
  energy : float;  (** J, worst observed instruction stream *)
  cycles : int;
  npe : float;
}

(* Estimate over the observed worst instruction stream (the WCEC
   literature bounds the worst path statically; our kernels have
   input-independent instruction counts up to branching, so the max
   over profiled inputs stands in for the static worst path). *)
let of_program pa (img : Isa.Asm.image) ~input_sets =
  let one inputs =
    let t = Isa.Iss.create img in
    List.iteri
      (fun k w -> Isa.Iss.write_word t (Benchprogs.Bench.input_base + (2 * k)) w)
      inputs;
    let energy = ref 0. in
    let budget = ref 1_000_000 in
    while (not t.Isa.Iss.halted) && !budget > 0 do
      decr budget;
      let pc = t.Isa.Iss.regs.(0) in
      if pc <> img.Isa.Asm.halt_addr then begin
        let safe a = if Isa.Memmap.in_rom a then Isa.Iss.read_word t a else 0 in
        let w = safe pc in
        let ext1 = safe ((pc + 2) land 0xFFFF) in
        let ext2 = safe ((pc + 4) land 0xFFFF) in
        match Isa.Insn.decode w ~ext1 ~ext2 ~pc with
        | { Isa.Insn.instr; _ } -> energy := !energy +. instr_energy pa instr
        | exception Isa.Insn.Decode_error _ -> ()
      end;
      Isa.Iss.step t
    done;
    (!energy, t.Isa.Iss.cycles)
  in
  let results = List.map one input_sets in
  let energy = List.fold_left (fun acc (e, _) -> Float.max acc e) 0. results in
  let cycles = List.fold_left (fun acc (_, c) -> max acc c) 0 results in
  {
    energy;
    cycles;
    npe = (if cycles = 0 then 0. else energy /. float_of_int cycles);
  }
