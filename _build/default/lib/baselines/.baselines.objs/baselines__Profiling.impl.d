lib/baselines/profiling.ml: Array Benchprogs Core Float List Poweran
