lib/baselines/wcec.ml: Array Benchprogs Float Isa List Poweran
