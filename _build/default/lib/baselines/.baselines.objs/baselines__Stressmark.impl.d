lib/baselines/stressmark.ml: Array Benchprogs Core Float Isa List Poweran
