(* Gate-level MSP430-subset processor.

   Micro-architecture: a multi-cycle state machine
     RESET -> VECTOR -> FETCH -> [SRC_EXT] -> [SRC_READ] -> [DST_EXT]
           -> [DST_READ] -> EXEC -> [WRITE] -> FETCH
   with POP1/POP2 for RETI. One shared ALU adder, plus small dedicated,
   operand-isolated adders: the PC incrementer, the address generator
   (indexed modes), the +/-2 incrementer (auto-increment, stack), and
   the jump-target adder. The operand isolation matters for the paper's
   peak-power optimizations: OPT1 (indexed loads light up the address
   generator in the same cycle as the memory read) and OPT2 (POP drives
   bus and incrementer simultaneously) are real activity phenomena here,
   not modelling artifacts. *)

let st_reset = 0
let st_vector = 1
let st_fetch = 2
let st_src_ext = 3
let st_src_read = 4
let st_dst_ext = 5
let st_dst_read = 6
let st_exec = 7
let st_write = 8
let st_pop1 = 9
let st_pop2 = 10
let n_states = 11

let state_name = function
  | 0 -> "RESET"
  | 1 -> "VECTOR"
  | 2 -> "FETCH"
  | 3 -> "SRC_EXT"
  | 4 -> "SRC_READ"
  | 5 -> "DST_EXT"
  | 6 -> "DST_READ"
  | 7 -> "EXEC"
  | 8 -> "WRITE"
  | 9 -> "POP1"
  | 10 -> "POP2"
  | n -> Printf.sprintf "STATE_%d" n

type t = {
  netlist : Netlist.t;
  ports : Gatesim.Engine.ports;
  reg_nets : int array array;
  sr_nets : int array;
  state_nets : int array;
  mult_active_net : int;
  bus_nets : int array;
}

let build () =
  let c = Rtl.create () in
  let open Rtl in
  (* ---------------- external interface ---------------- *)
  set_module c "mem_backbone";
  let reset = input c in
  let ext_rdata = input_bus c 16 in
  set_module c "sfr";
  let port_in = input_bus c 16 in

  (* ---------------- registers (created first for feedback) -------- *)
  set_module c "frontend";
  let pc = reg c ~width:16 in
  let state = reg c ~width:4 in
  let ir = reg c ~width:16 in
  let ext_s = reg c ~width:16 in
  let ext_d = reg c ~width:16 in
  set_module c "exec_unit";
  let sr = reg c ~width:16 in
  let tmp_s = reg c ~width:16 in
  let tmp_d = reg c ~width:16 in
  let res = reg c ~width:16 in
  (* register file: r1 (SP), r3..r15; r0 is the PC, r2 the SR *)
  let rf = Array.make 16 None in
  for i = 0 to 15 do
    if i <> 0 && i <> 2 then rf.(i) <- Some (reg c ~width:16)
  done;
  let rf_q i =
    match rf.(i) with Some r -> q r | None -> invalid_arg "rf_q"
  in
  let sp_val = rf_q 1 in

  (* ---------------- decode (frontend) ---------------- *)
  set_module c "frontend";
  let irq = q ir in
  let stq = q state in
  let pcq = q pc in
  let st = Array.init n_states (fun i -> eq_const c stq i) in
  (* Fetch bypass: during FETCH the next-state logic must decode the
     word being fetched (the IR only latches at the cycle's end).
     Instructions always come from program ROM, never peripherals, so
     the bypass taps the external read-data bus directly. *)
  let dec = bmux c ~sel:st.(st_fetch) irq ext_rdata in
  let is_jump = eq_const c (slice dec 13 3) 0b001 in
  let is_fmt2 = eq_const c (slice dec 10 6) 0b000100 in
  let op2f = slice dec 7 3 in
  let is_reti = and_ c is_fmt2 (eq_const c op2f 6) in
  let is_fmt2_op = and_ c is_fmt2 (not_ c (eq_const c (slice dec 8 2) 0b11)) in
  (* fmt2 with op2f in 0..5 *)
  let op1 = slice dec 12 4 in
  let is_fmt1 =
    (* top nibble >= 4 *)
    and_many c
      [
        or_many c [ dec.(15); dec.(14); and_ c dec.(13) dec.(12) ];
        not_ c is_jump;
        not_ c is_fmt2;
      ]
  in
  let rs_f = slice dec 8 4 in
  let ad = dec.(7) in
  let as_f = slice dec 4 2 in
  let rd_f = slice dec 0 4 in
  (* unified operand register field: fmt2's single operand lives in the
     dst field *)
  let o_rs = bmux c ~sel:is_fmt2 rs_f rd_f in
  let ors_eq2 = eq_const c o_rs 2 in
  let ors_eq3 = eq_const c o_rs 3 in
  let ors_eq0 = eq_const c o_rs 0 in
  let as00 = eq_const c as_f 0b00 in
  let as01 = eq_const c as_f 0b01 in
  let as10 = eq_const c as_f 0b10 in
  let as11 = eq_const c as_f 0b11 in
  let src_is_cg =
    or_ c ors_eq3 (and_ c ors_eq2 as_f.(1))
  in
  let src_is_imm = and_ c ors_eq0 as11 in
  let src_is_abs = and_ c ors_eq2 as01 in
  let src_is_idx = and_many c [ as01; not_ c src_is_abs; not_ c ors_eq3 ] in
  let src_is_ind = and_ c as10 (not_ c src_is_cg) in
  let src_is_indinc =
    and_many c [ as11; not_ c src_is_cg; not_ c src_is_imm ]
  in
  let src_is_reg = and_ c as00 (not_ c ors_eq3) in
  let cg_val =
    (* index = as + 4*rs3: [_; _; 4; 8; 0; 1; 2; -1] *)
    mux_tree c
      (concat [ as_f; [| ors_eq3 |] ])
      [|
        const c ~width:16 0;
        const c ~width:16 0;
        const c ~width:16 4;
        const c ~width:16 8;
        const c ~width:16 0;
        const c ~width:16 1;
        const c ~width:16 2;
        const c ~width:16 0xFFFF;
      |]
  in
  let has_operand = or_ c is_fmt1 is_fmt2_op in
  let needs_src_ext =
    and_ c has_operand (or_many c [ src_is_imm; src_is_abs; src_is_idx ])
  in
  let needs_src_read =
    and_ c has_operand
      (or_many c [ src_is_abs; src_is_idx; src_is_ind; src_is_indinc ])
  in
  let rd_eq0 = eq_const c rd_f 0 in
  let rd_eq2 = eq_const c rd_f 2 in
  let dst_is_abs = and_many c [ is_fmt1; ad; rd_eq2 ] in
  let dst_is_idx = and_many c [ is_fmt1; ad; not_ c rd_eq2 ] in
  let needs_dst_ext = and_ c is_fmt1 ad in
  let op_is_mov = eq_const c op1 0x4 in
  let op_is_cmp = eq_const c op1 0x9 in
  let op_is_bit = eq_const c op1 0xB in
  let op_reads_dst = not_ c op_is_mov in
  let op_writes = nor_ c op_is_cmp op_is_bit in
  let needs_dst_read = and_ c needs_dst_ext op_reads_dst in
  let fmt2_is_push = and_ c is_fmt2 (eq_const c op2f 4) in
  let fmt2_is_call = and_ c is_fmt2 (eq_const c op2f 5) in
  let fmt2_rmw = and_ c is_fmt2 (not_ c (or_many c [ fmt2_is_push; fmt2_is_call; is_reti ])) in
  let fmt2_mem_operand =
    and_ c fmt2_rmw (or_many c [ src_is_idx; src_is_abs; src_is_ind ])
  in
  let push_or_call = or_ c fmt2_is_push fmt2_is_call in
  let writes_mem =
    or_many c
      [
        and_many c [ is_fmt1; ad; op_writes ];
        fmt2_mem_operand;
        push_or_call;
      ]
  in

  (* ---------------- next state ---------------- *)
  let sconst v = const c ~width:4 v in
  let after_operand_src =
    (* once the source is in hand *)
    pmux c
      [ (needs_dst_ext, sconst st_dst_ext) ]
      (sconst st_exec)
  in
  let after_fetch =
    pmux c
      [
        (is_reti, sconst st_pop1);
        (is_jump, sconst st_exec);
        (needs_src_ext, sconst st_src_ext);
        (needs_src_read, sconst st_src_read);
        (needs_dst_ext, sconst st_dst_ext);
      ]
      (sconst st_exec)
  in
  let state_next =
    pmux c
      [
        (st.(st_reset), sconst st_vector);
        (st.(st_vector), sconst st_fetch);
        (st.(st_fetch), after_fetch);
        ( st.(st_src_ext),
          pmux c [ (needs_src_read, sconst st_src_read) ] after_operand_src );
        (st.(st_src_read), after_operand_src);
        ( st.(st_dst_ext),
          pmux c [ (needs_dst_read, sconst st_dst_read) ] (sconst st_exec) );
        (st.(st_dst_read), sconst st_exec);
        ( st.(st_exec),
          pmux c [ (writes_mem, sconst st_write) ] (sconst st_fetch) );
        (st.(st_write), sconst st_fetch);
        (st.(st_pop1), sconst st_pop2);
        (st.(st_pop2), sconst st_fetch);
      ]
      (sconst st_fetch)
  in
  connect c state ~reset ~reset_to:st_reset state_next;

  (* ---------------- register file read (exec_unit) ---------------- *)
  set_module c "exec_unit";
  let srq = q sr in
  let read_port sel =
    let entries =
      Array.init 16 (fun i ->
          if i = 0 then pcq else if i = 2 then srq else rf_q i)
    in
    mux_tree c sel entries
  in
  let o_rs_val = read_port o_rs in
  let rd_val = read_port rd_f in

  (* ---------------- dedicated adders (frontend) ---------------- *)
  set_module c "frontend";
  let zero16 = const c ~width:16 0 in
  (* PC incrementer *)
  let pc_inc_use = or_many c [ st.(st_fetch); st.(st_src_ext); st.(st_dst_ext) ] in
  let pc_plus2 =
    add c (bmux c ~sel:pc_inc_use zero16 pcq) (const c ~width:16 2)
  in
  (* +/-2 incrementer: auto-increment, RETI pops, PUSH/CALL stack *)
  let indinc_now = and_ c st.(st_src_read) src_is_indinc in
  let sp_dec_now = and_ c st.(st_exec) push_or_call in
  let sp_inc_now = or_ c st.(st_pop1) st.(st_pop2) in
  let inc2_in =
    pmux c
      [ (indinc_now, o_rs_val); (or_ c sp_dec_now sp_inc_now, sp_val) ]
      zero16
  in
  let inc2_addend =
    bmux c ~sel:sp_dec_now (const c ~width:16 2) (const c ~width:16 0xFFFE)
  in
  let inc2_out = add c inc2_in inc2_addend in
  (* jump target adder *)
  let jmp_use = and_ c st.(st_exec) is_jump in
  let jmp_off =
    (* sign-extended 10-bit word offset, times two *)
    concat [ [| gnd c |]; sext c (slice dec 0 10) 15 ]
  in
  let jmp_target =
    add c (bmux c ~sel:jmp_use zero16 pcq) (bmux c ~sel:jmp_use zero16 jmp_off)
  in
  (* address generator for indexed modes *)
  let use_agen_src =
    and_ c
      (or_ c st.(st_src_read) (and_ c st.(st_write) fmt2_mem_operand))
      src_is_idx
  in
  let use_agen_dst =
    and_ c (or_ c st.(st_dst_read) (and_ c st.(st_write) is_fmt1)) dst_is_idx
  in
  let agen_a = pmux c [ (use_agen_src, o_rs_val); (use_agen_dst, rd_val) ] zero16 in
  let agen_b =
    pmux c [ (use_agen_src, q ext_s); (use_agen_dst, q ext_d) ] zero16
  in
  let agen_sum = add c agen_a agen_b in

  (* ---------------- ALU (exec_unit) ---------------- *)
  set_module c "exec_unit";
  let src_operand =
    pmux c
      [
        (src_is_cg, cg_val);
        (src_is_imm, q ext_s);
        (src_is_reg, o_rs_val);
      ]
      (q tmp_s)
  in
  let dst_operand = bmux c ~sel:ad rd_val (q tmp_d) in
  let a = src_operand and b = dst_operand in
  let c_flag = srq.(0) in
  let op_is_addc = eq_const c op1 0x6 in
  let op_is_subc = eq_const c op1 0x7 in
  let op_is_sub = eq_const c op1 0x8 in
  let sub_type = or_many c [ op_is_subc; op_is_sub; op_is_cmp ] in
  let adder_a = bmux c ~sel:sub_type a (bnot c a) in
  let adder_cin =
    pmux c
      [
        (or_ c op_is_addc op_is_subc, [| c_flag |]);
        (or_ c op_is_sub op_is_cmp, [| vdd c |]);
      ]
      [| gnd c |]
  in
  let sum, cout = adder c adder_a b ~cin:adder_cin.(0) in
  let and_ab = band c a b in
  let xor_ab = bxor c a b in
  let bic_ab = band c b (bnot c a) in
  let bis_ab = bor c a b in
  let alu_result =
    mux_tree c op1
      [|
        a; a; a; a;
        (* 4 MOV *) a;
        (* 5..9 arithmetic *) sum; sum; sum; sum; sum;
        (* A unused *) a;
        (* B BIT *) and_ab;
        (* C BIC *) bic_ab;
        (* D BIS *) bis_ab;
        (* E XOR *) xor_ab;
        (* F AND *) and_ab;
      |]
  in
  let alu_z = is_zero c alu_result in
  let alu_n = alu_result.(15) in
  let v_add =
    and_ c (not_ c (xor_ c a.(15) b.(15))) (xor_ c b.(15) sum.(15))
  in
  let v_sub = and_ c (xor_ c a.(15) b.(15)) (xor_ c b.(15) sum.(15)) in
  let op_is_add = eq_const c op1 0x5 in
  let op_is_xor = eq_const c op1 0xE in
  let op_is_and = eq_const c op1 0xF in
  let add_type = or_ c op_is_add op_is_addc in
  let logic_flags = or_many c [ op_is_and; op_is_bit; op_is_xor ] in
  let new_c =
    pmux c
      [
        (add_type, [| cout |]);
        (sub_type, [| cout |]);
        (logic_flags, [| not_ c alu_z |]);
      ]
      [| c_flag |]
  in
  let new_v =
    pmux c
      [
        (add_type, [| v_add |]);
        (sub_type, [| v_sub |]);
        (op_is_xor, [| and_ c a.(15) b.(15) |]);
        (logic_flags, [| gnd c |]);
      ]
      [| srq.(8) |]
  in
  let sets_flags_fmt1 =
    and_ c is_fmt1
      (or_many c [ add_type; sub_type; logic_flags ])
  in

  (* fmt2 unit *)
  let o = src_operand in
  let rrc_res = Array.append (slice o 1 15) [| c_flag |] in
  let rra_res = Array.append (slice o 1 15) [| o.(15) |] in
  let swpb_res = concat [ slice o 8 8; slice o 0 8 ] in
  let sxt_res = concat [ slice o 0 8; repeat o.(7) 8 ] in
  let f2_result =
    mux_tree c op2f [| rrc_res; swpb_res; rra_res; sxt_res; o; o; o; o |]
  in
  let f2_z = is_zero c f2_result in
  let f2_n = f2_result.(15) in
  let op2_is_rr = not_ c (or_ c op2f.(1) op2f.(0)) in
  (* 0 RRC *)
  let op2_is_rra = and_ c op2f.(1) (not_ c op2f.(0)) in
  (* 2 *)
  let op2_is_swpb = and_ c op2f.(0) (not_ c op2f.(1)) in
  (* 1 *)
  let f2_sets_flags =
    and_ c fmt2_rmw (not_ c (and_ c op2_is_swpb (not_ c op2f.(2))))
  in
  let f2_shift = or_ c (and_ c op2_is_rr (not_ c op2f.(2))) (and_ c op2_is_rra (not_ c op2f.(2))) in
  let f2_c = bmux c ~sel:f2_shift [| not_ c f2_z |] [| o.(0) |] in

  (* ---------------- condition codes / jump decision --------------- *)
  set_module c "frontend";
  let z_flag = srq.(1) and n_flag = srq.(2) and v_flag = srq.(8) in
  let cond = slice dec 10 3 in
  let cond_met =
    (mux_tree c cond
       [|
         [| not_ c z_flag |];
         [| z_flag |];
         [| not_ c c_flag |];
         [| c_flag |];
         [| n_flag |];
         [| xnor_ c n_flag v_flag |];
         [| xor_ c n_flag v_flag |];
         [| vdd c |];
       |]).(0)
  in
  let jump_sel = and_many c [ st.(st_exec); is_jump; cond_met; not_ c reset ] in

  (* ---------------- peripherals ---------------- *)
  (* Multiplier: memory-mapped, 2-cycle latency after OP2 is written.
     The 17x17 array is operand-isolated behind the s2 strobe, so its
     (large) activity lands exactly one/two cycles after the triggering
     store -- the overlap targeted by OPT3. *)
  (* Two-cycle multiplier: writing OP2 (cycle t) latches the operands
     into the compute stage at t+1, and the 17x17 signed array burns its
     (large) switching energy during t+2, with results registered at the
     end of t+2. There is no return-to-zero gating, so the array
     switches exactly once per multiply — the single high-power cycle
     that OPT3 moves off the next instruction's bus activity. *)
  set_module c "multiplier";
  let mpy_op1 = reg c ~width:16 in
  let mpy_op2 = reg c ~width:16 in
  let mpy_signed = reg c ~width:1 in
  let mpy_s1 = reg c ~width:1 in
  let mpy_s2 = reg c ~width:1 in
  let mpy_a = reg c ~width:17 in
  let mpy_b = reg c ~width:17 in
  let mpy_reslo = reg c ~width:16 in
  let mpy_reshi = reg c ~width:16 in
  let mpy_sumext = reg c ~width:16 in
  let s1 = (q mpy_s1).(0) in
  let s2 = (q mpy_s2).(0) in
  let sext17 signed_bit bus = Array.append bus [| and_ c signed_bit bus.(15) |] in
  connect c mpy_a ~reset ~reset_to:0 ~enable:s1 (sext17 (q mpy_signed).(0) (q mpy_op1));
  connect c mpy_b ~reset ~reset_to:0 ~enable:s1 (sext17 (q mpy_signed).(0) (q mpy_op2));
  let prod34 = mul_array_signed c (q mpy_a) (q mpy_b) in
  let prod = slice prod34 0 32 in

  (* Watchdog *)
  set_module c "watchdog";
  let wdt_ctl = reg c ~width:8 in
  let wdt_cnt = reg c ~width:16 in
  let wdt_hold = (q wdt_ctl).(7) in

  (* Clock module: reset synchronizer and clock-gate qualifier. A
     free-running divider would defeat Algorithm 1's state dedup (no two
     visits to a loop head would ever compare equal), so the background
     activity budget lives in the watchdog counter instead, which
     benchmarks stop explicitly. *)
  set_module c "clk_module";
  let rst_sync = reg c ~width:2 in
  connect c rst_sync ~reset ~reset_to:3
    (concat [ [| gnd c |]; [| (q rst_sync).(0) |] ]);
  let _mclk_ok = nor_ c (q rst_sync).(0) (q rst_sync).(1) in

  (* SFR + port 1 *)
  set_module c "sfr";
  let sfr_ie1 = reg c ~width:16 in
  let sfr_ifg1 = reg c ~width:16 in
  let p1out = reg c ~width:16 in

  (* Debug unit: idle hardware breakpoint comparator *)
  set_module c "dbg";
  let dbg_bp = reg c ~width:16 in
  connect c dbg_bp ~reset ~reset_to:0 ~enable:(gnd c) (q dbg_bp);
  let _dbg_hit = eq c (q dbg_bp) pcq in

  (* ---------------- memory backbone ---------------- *)
  set_module c "mem_backbone";
  let src_addr =
    pmux c [ (src_is_idx, agen_sum); (src_is_abs, q ext_s) ] o_rs_val
  in
  let dst_addr = pmux c [ (dst_is_abs, q ext_d) ] agen_sum in
  let write_addr =
    pmux c [ (push_or_call, sp_val); (fmt2_mem_operand, src_addr) ] dst_addr
  in
  let mab =
    pmux c
      [
        (st.(st_vector), const c ~width:16 Isa.Memmap.reset_vector);
        (or_many c [ st.(st_fetch); st.(st_src_ext); st.(st_dst_ext) ], pcq);
        (st.(st_src_read), src_addr);
        (st.(st_dst_read), dst_addr);
        (st.(st_write), write_addr);
        (or_ c st.(st_pop1) st.(st_pop2), sp_val);
      ]
      pcq
  in
  let ren =
    or_many c
      [
        st.(st_vector);
        st.(st_fetch);
        st.(st_src_ext);
        st.(st_dst_ext);
        st.(st_src_read);
        st.(st_dst_read);
        st.(st_pop1);
        st.(st_pop2);
      ]
  in
  let wen = st.(st_write) in
  let hit addr = eq_const c mab addr in
  let hit_ie1 = hit Isa.Memmap.sfr_ie1 in
  let hit_ifg1 = hit Isa.Memmap.sfr_ifg1 in
  let hit_p1in = hit Isa.Memmap.p1in in
  let hit_p1out = hit Isa.Memmap.p1out in
  let hit_wdt = hit Isa.Memmap.wdtctl in
  let hit_mpy = hit Isa.Memmap.mpy in
  let hit_mpys = hit Isa.Memmap.mpys in
  let hit_op2 = hit Isa.Memmap.op2 in
  let hit_reslo = hit Isa.Memmap.reslo in
  let hit_reshi = hit Isa.Memmap.reshi in
  let hit_sumext = hit Isa.Memmap.sumext in
  let periph_hit =
    or_many c
      [
        hit_ie1; hit_ifg1; hit_p1in; hit_p1out; hit_wdt; hit_mpy; hit_mpys;
        hit_op2; hit_reslo; hit_reshi; hit_sumext;
      ]
  in
  let wdt_read =
    concat [ q wdt_ctl; const c ~width:8 0x69 ]
  in
  let periph_rdata =
    pmux c
      [
        (hit_p1in, port_in);
        (hit_p1out, q p1out);
        (hit_wdt, wdt_read);
        (hit_ie1, q sfr_ie1);
        (hit_ifg1, q sfr_ifg1);
        (or_ c hit_mpy hit_mpys, q mpy_op1);
        (hit_op2, q mpy_op2);
        (hit_reslo, q mpy_reslo);
        (hit_reshi, q mpy_reshi);
        (hit_sumext, q mpy_sumext);
      ]
      zero16
  in
  let rdata_final = bmux c ~sel:periph_hit ext_rdata periph_rdata in
  (* Bus strobes are gated by reset: before the state machine leaves its
     X initial value the strobes must be driven inactive, or the first
     cycle would look like a write at an unknown address. *)
  let ext_ren = and_many c [ ren; not_ c periph_hit; not_ c reset ] in
  let ext_wen = and_many c [ wen; not_ c periph_hit; not_ c reset ] in
  let wdata = q res in

  (* ---------------- register next-state ---------------- *)
  set_module c "frontend";
  let dst_is_pc = and_many c [ is_fmt1; not_ c ad; rd_eq0; op_writes ] in
  let pc_next =
    pmux c
      [
        (st.(st_vector), rdata_final);
        (pc_inc_use, pc_plus2);
        (jump_sel, jmp_target);
        (and_ c st.(st_exec) dst_is_pc, alu_result);
        (and_ c st.(st_write) fmt2_is_call, src_operand);
        (st.(st_pop2), rdata_final);
      ]
      pcq
  in
  connect c pc ~reset ~reset_to:0 pc_next;
  connect c ir ~enable:st.(st_fetch) rdata_final;
  connect c ext_s ~enable:st.(st_src_ext) rdata_final;
  connect c ext_d ~enable:st.(st_dst_ext) rdata_final;

  set_module c "exec_unit";
  connect c tmp_s ~enable:st.(st_src_read) rdata_final;
  connect c tmp_d ~enable:st.(st_dst_read) rdata_final;
  let res_next =
    pmux c
      [
        (fmt2_is_push, src_operand);
        (fmt2_is_call, pcq);
        (is_fmt2, f2_result);
      ]
      alu_result
  in
  connect c res ~enable:(and_ c st.(st_exec) writes_mem) res_next;

  (* register file write port *)
  let f2_reg_write =
    and_many c [ fmt2_rmw; src_is_reg ]
  in
  let rf_write_exec =
    and_many c
      [ is_fmt1; not_ c ad; op_writes; not_ c rd_eq0; not_ c rd_eq2 ]
  in
  let wr_cases =
    [
      (indinc_now, (o_rs, inc2_out));
      (and_ c st.(st_exec) rf_write_exec, (rd_f, alu_result));
      (and_ c st.(st_exec) f2_reg_write, (o_rs, f2_result));
      (and_ c st.(st_exec) push_or_call, (const c ~width:4 1, inc2_out));
      (sp_inc_now, (const c ~width:4 1, inc2_out));
    ]
  in
  let wr_en = or_many c (List.map fst wr_cases) in
  let wr_sel =
    pmux c (List.map (fun (g, (s, _)) -> (g, s)) wr_cases) (const c ~width:4 0)
  in
  let wr_data =
    pmux c (List.map (fun (g, (_, d)) -> (g, d)) wr_cases) zero16
  in
  let wr_onehot = decode c wr_sel in
  for i = 0 to 15 do
    match rf.(i) with
    | None -> ()
    | Some r ->
      let en = and_ c wr_en wr_onehot.(i) in
      connect c r ~enable:en wr_data
  done;

  (* status register *)
  let flags_fmt1 =
    let b = Array.copy srq in
    b.(0) <- new_c.(0);
    b.(1) <- alu_z;
    b.(2) <- alu_n;
    b.(8) <- new_v.(0);
    b
  in
  let flags_fmt2 =
    let b = Array.copy srq in
    b.(0) <- f2_c.(0);
    b.(1) <- f2_z;
    b.(2) <- f2_n;
    b.(8) <- gnd c;
    b
  in
  let sr_write_dst =
    and_many c [ is_fmt1; not_ c ad; rd_eq2; op_writes ]
  in
  let sr_cases =
    [
      (st.(st_pop1), rdata_final);
      (and_ c st.(st_exec) sr_write_dst, alu_result);
      ( and_ c st.(st_exec) (and_ c sets_flags_fmt1 (not_ c sr_write_dst)),
        flags_fmt1 );
      (and_ c st.(st_exec) (and_ c f2_sets_flags is_fmt2), flags_fmt2);
    ]
  in
  let sr_next = pmux c sr_cases srq in
  connect c sr ~enable:(or_many c (List.map fst sr_cases)) sr_next;

  (* ---------------- peripheral register next-state ---------------- *)
  set_module c "multiplier";
  let w_mpy = and_ c st.(st_write) hit_mpy in
  let w_mpys = and_ c st.(st_write) hit_mpys in
  let w_op2 = and_ c st.(st_write) hit_op2 in
  (* Peripheral registers have power-on reset (as on real silicon); the
     first multiply's switching is then proportional to the operands'
     weight rather than a full-swing X transient. *)
  connect c mpy_op1 ~reset ~reset_to:0 ~enable:(or_ c w_mpy w_mpys) wdata;
  connect c mpy_op2 ~reset ~reset_to:0 ~enable:w_op2 wdata;
  connect c mpy_signed ~reset ~reset_to:0 ~enable:(or_ c w_mpy w_mpys) [| w_mpys |];
  connect c mpy_s1 ~reset ~reset_to:0 [| w_op2 |];
  connect c mpy_s2 ~reset ~reset_to:0 (q mpy_s1);
  connect c mpy_reslo ~reset ~reset_to:0 ~enable:s2 (slice prod 0 16);
  connect c mpy_reshi ~reset ~reset_to:0 ~enable:s2 (slice prod 16 16);
  connect c mpy_sumext ~reset ~reset_to:0 ~enable:s2
    (repeat (and_ c (q mpy_signed).(0) prod.(31)) 16);

  set_module c "watchdog";
  let w_wdt = and_ c st.(st_write) hit_wdt in
  connect c wdt_ctl ~reset ~reset_to:0 ~enable:w_wdt (slice wdata 0 8);
  connect c wdt_cnt ~reset ~reset_to:0 ~enable:(not_ c wdt_hold)
    (inc c (q wdt_cnt));

  set_module c "sfr";
  connect c sfr_ie1 ~reset ~reset_to:0
    ~enable:(and_ c st.(st_write) hit_ie1)
    wdata;
  connect c sfr_ifg1 ~reset ~reset_to:0
    ~enable:(and_ c st.(st_write) hit_ifg1)
    wdata;
  connect c p1out ~reset ~reset_to:0
    ~enable:(and_ c st.(st_write) hit_p1out)
    wdata;

  (* ---------------- naming and ports ---------------- *)
  name_bus c "pc" pcq;
  name_bus c "state" stq;
  name_bus c "ir" irq;
  name_bus c "sr" srq;
  name_bus c "mab" mab;
  name_signal c "jump_sel" jump_sel;
  name_signal c "mult_active" s2;
  name_signal c "mem_ren" ext_ren;
  name_signal c "mem_wen" ext_wen;
  let netlist = freeze c in
  let reg_nets =
    Array.init 16 (fun i ->
        if i = 0 then pcq else if i = 2 then srq else rf_q i)
  in
  {
    netlist;
    ports =
      {
        Gatesim.Engine.reset;
        port_in;
        mem_addr = mab;
        mem_rdata = ext_rdata;
        mem_wdata = wdata;
        mem_ren = ext_ren;
        mem_wen = ext_wen;
        pc = pcq;
        state = stq;
        ir = irq;
        fork_net = Some jump_sel;
      };
    reg_nets;
    sr_nets = srq;
    state_nets = stq;
    mult_active_net = s2;
    bus_nets = Array.concat [ mab; ext_rdata; wdata ];
  }

let is_end_cycle ~halt_addr (cy : Gatesim.Trace.cycle) =
  (match Tri.Word.to_int cy.Gatesim.Trace.state with
  | Some s -> s = st_fetch
  | None -> false)
  &&
  match Tri.Word.to_int cy.Gatesim.Trace.pc with
  | Some p -> p = halt_addr
  | None -> false

let mem_of_image (img : Isa.Asm.image) =
  Gatesim.Mem.create ~rom:img.Isa.Asm.words ~ram_base:Isa.Memmap.ram_base
    ~ram_bytes:Isa.Memmap.ram_size

let zero_ram mem =
  let open Isa.Memmap in
  let a = ref ram_base in
  while !a < ram_limit do
    Gatesim.Mem.poke mem !a 0;
    a := !a + 2
  done
