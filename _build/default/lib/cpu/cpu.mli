(** The ultra-low-power processor, as a gate-level netlist.

    A multi-cycle implementation of the MSP430-subset ISA ({!Isa.Insn}),
    elaborated from {!Rtl} combinators into a flat {!Netlist.t}. The
    module inventory mirrors the openMSP430 breakdown used by the
    paper's per-module power analysis: [clk_module], [dbg], [exec_unit],
    [frontend], [mem_backbone], [multiplier], [sfr] (incl. port 1) and
    [watchdog].

    The micro-architecture is the state machine documented in
    {!Isa.Insn.cycles}: RESET, VECTOR, FETCH, SRC_EXT, SRC_READ,
    DST_EXT, DST_READ, EXEC, WRITE, POP1, POP2. {!Isa.Iss} is its
    executable specification; the two are kept in lockstep by the test
    suite. *)

type t = {
  netlist : Netlist.t;
  ports : Gatesim.Engine.ports;
  reg_nets : int array array;  (** [reg_nets.(r)] = net ids of register r *)
  sr_nets : int array;
  state_nets : int array;
  mult_active_net : int;  (** multiplier array-active strobe (s2) *)
  bus_nets : int array;
      (** address/data bus nets that drive the memory macros; power
          analysis puts the lumped flash/SRAM access capacitance here *)
}

(** FSM state encodings (value of the [state] probe bus). *)

val st_reset : int
val st_vector : int
val st_fetch : int
val st_src_ext : int
val st_src_read : int
val st_dst_ext : int
val st_dst_read : int
val st_exec : int
val st_write : int
val st_pop1 : int
val st_pop2 : int

val state_name : int -> string

(** Elaborate the processor. The result is deterministic; building twice
    gives identical netlists. *)
val build : unit -> t

(** [is_end_cycle ~halt_addr cycle] — the standard end-of-application
    predicate: fetching the halt self-jump. *)
val is_end_cycle : halt_addr:int -> Gatesim.Trace.cycle -> bool

(** [mem_of_image image] — a {!Gatesim.Mem.t} loaded with an assembled
    program (ROM + reset vector), RAM all X. *)
val mem_of_image : Isa.Asm.image -> Gatesim.Mem.t

(** [zero_ram mem] — concretize all RAM words to 0 (ISS-equivalent
    baseline for concrete runs). *)
val zero_ram : Gatesim.Mem.t -> unit
